// Ablation: subdomain reuse on vs. off (§III-B).
//
// The paper's claim: without reuse a full scan needs ~800 zone files of 5M
// names each (a minute of load pause apiece); with reuse, 4. This bench runs
// the same scaled 2018 campaign both ways and reports zone loads, names
// consumed, and time lost to zone loading.
#include "bench_common.h"

using namespace orp;

namespace {

struct AblationResult {
  prober::ScanStats scan;
  zone::ClusterStats clusters;
  std::uint64_t zone_loads = 0;
  double load_seconds = 0;
};

AblationResult run(const bench::BenchOptions& opts, bool reuse) {
  const core::PopulationSpec spec =
      core::build_population(core::paper_2018(), opts.scale, opts.seed);
  core::InternetConfig net_cfg;
  net_cfg.seed = opts.seed;
  net_cfg.scan_seed = util::mix64(opts.seed + 2018);
  core::SimulatedInternet internet(spec, net_cfg);

  prober::ScanConfig scan_cfg;
  scan_cfg.seed = net_cfg.scan_seed;
  scan_cfg.rate_pps = spec.rate_pps;
  scan_cfg.raw_steps = spec.raw_steps;
  scan_cfg.rotate_pause = net::SimTime::seconds(spec.zone_load_seconds);
  scan_cfg.subdomain_reuse = reuse;
  prober::Scanner scanner(internet.network(), internet.prober_address(),
                          scan_cfg, internet.scheme());
  scanner.set_rotate_callback(
      [&](std::uint32_t c) { internet.auth().load_cluster(c); });
  scanner.start([] {});
  internet.loop().run();

  AblationResult r;
  r.scan = scanner.stats();
  r.clusters = scanner.clusters().stats();
  r.zone_loads = internet.auth().stats().cluster_loads;
  r.load_seconds = internet.auth().load_time_total().as_seconds();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Ablation — subdomain reuse on vs off",
                      "paper §III-B 'Subdomain Reuse' (800 clusters -> 4)");

  std::printf("... with reuse\n");
  const AblationResult with_reuse = run(opts, true);
  std::printf("... without reuse\n");
  const AblationResult without = run(opts, false);

  util::TextTable t({"", "with reuse", "without reuse"});
  auto row = [&](const char* label, std::uint64_t a, std::uint64_t b) {
    t.add_row({label, util::with_commas(a), util::with_commas(b)});
  };
  row("probes sent", with_reuse.scan.q1_sent, without.scan.q1_sent);
  row("zone loads", with_reuse.zone_loads, without.zone_loads);
  row("fresh subdomains consumed", with_reuse.clusters.subdomains_issued,
      without.clusters.subdomains_issued);
  row("subdomains reused", with_reuse.clusters.subdomains_reused,
      without.clusters.subdomains_reused);
  t.add_row({"zone-load time",
             util::human_duration(with_reuse.load_seconds),
             util::human_duration(without.load_seconds)});
  std::printf("%s", t.render().c_str());

  std::printf(
      "\nshape check: reuse cuts zone loads by ~%.0fx (paper: 800 -> 4, "
      "i.e. 200x at full scale)\nand eliminates ~%s zone-file generations; "
      "responses collected are identical either way.\n",
      static_cast<double>(without.zone_loads) /
          static_cast<double>(std::max<std::uint64_t>(1, with_reuse.zone_loads)),
      util::with_commas(without.zone_loads - with_reuse.zone_loads).c_str());
  return 0;
}
