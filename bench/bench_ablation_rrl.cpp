// Ablation: response-rate limiting on the reflector.
//
// §II-C's amplification attack assumes the open resolver answers a spoofed
// flood at full size, query after query. This bench floods an open resolver
// with spoofed-source ANY queries for a record-rich name, with RRL off and
// on, and measures what actually lands on the victim.
#include "bench_common.h"

#include "dns/builder.h"
#include "dns/edns.h"
#include "resolver/root_tld.h"
#include "resolver/scripted_resolver.h"

using namespace orp;

namespace {

struct FloodResult {
  std::uint64_t queries = 0;
  std::uint64_t responses = 0;
  std::uint64_t victim_bytes = 0;
  std::uint64_t rrl_dropped = 0;
  std::uint64_t rrl_slipped = 0;
};

FloodResult flood(bool rrl_enabled) {
  net::EventLoop loop;
  net::Network network(loop, 41);
  const dns::DnsName sld = dns::DnsName::must_parse("ucfsealresearch.net");
  const zone::SubdomainScheme scheme(sld, 1000, 5);
  authns::AuthServer auth(network, net::IPv4Addr(45, 76, 18, 21), scheme,
                          net::SimTime::nanos(0));
  for (int i = 0; i < 8; ++i) {
    auth.add_record(dns::ResourceRecord{
        sld, dns::RRType::kTXT, dns::RRClass::kIN, 3600,
        dns::TxtRdata{{"v=spf1 include:spf" + std::to_string(i) +
                       ".ucfsealresearch.net ~all padding padding"}}});
  }
  const auto hierarchy =
      resolver::build_hierarchy(network, sld, sld.child("ns1"),
                                auth.address(), 2);
  resolver::EngineConfig engine_config;
  engine_config.hints = hierarchy.hints;

  resolver::BehaviorProfile profile;
  profile.answer = resolver::AnswerMode::kRecursive;
  profile.rrl.enabled = rrl_enabled;
  profile.rrl.responses_per_second = 5;
  profile.rrl.burst = 10;
  resolver::ResolverHost reflector(network, net::IPv4Addr(66, 77, 3, 3),
                                   profile, engine_config, 1);

  FloodResult result;
  const net::Endpoint victim{net::IPv4Addr(203, 113, 0, 99), 33333};
  network.bind(victim, [&result](const net::Datagram& d) {
    ++result.responses;
    result.victim_bytes += d.payload.size();
  });

  // 200 spoofed ANY queries over 10 simulated seconds (20 qps, well past the
  // 5 rps RRL budget). Each uses EDNS so the full payload would reflect.
  constexpr int kQueries = 200;
  for (int i = 0; i < kQueries; ++i) {
    loop.schedule_at(net::SimTime::millis(50 * i), [&network, &reflector,
                                                    victim, &sld, i]() {
      dns::Message q = dns::make_query(static_cast<std::uint16_t>(i), sld,
                                       dns::RRType::kANY);
      dns::set_edns(q, dns::EdnsInfo{.udp_payload_size = 4096});
      network.send(net::Datagram{
          victim, net::Endpoint{reflector.address(), net::kDnsPort},
          dns::encode(q)});
    });
  }
  loop.run();
  result.queries = kQueries;
  result.rrl_dropped = reflector.stats().rrl_dropped;
  result.rrl_slipped = reflector.stats().rrl_slipped;
  return result;
}

}  // namespace

int main() {
  bench::print_header("Ablation — response-rate limiting on the reflector",
                      "paper §II-C (amplification) + BIND RRL mitigation");

  const FloodResult off = flood(false);
  const FloodResult on = flood(true);

  util::TextTable t({"", "RRL off", "RRL on"});
  t.add_row({"spoofed ANY queries", util::with_commas(off.queries),
             util::with_commas(on.queries)});
  t.add_row({"responses reaching the victim", util::with_commas(off.responses),
             util::with_commas(on.responses)});
  t.add_row({"bytes reaching the victim", util::with_commas(off.victim_bytes),
             util::with_commas(on.victim_bytes)});
  t.add_row({"suppressed (dropped)", util::with_commas(off.rrl_dropped),
             util::with_commas(on.rrl_dropped)});
  t.add_row({"suppressed (TC=1 slip)", util::with_commas(off.rrl_slipped),
             util::with_commas(on.rrl_slipped)});
  std::printf("%s", t.render().c_str());

  const double reduction =
      off.victim_bytes == 0
          ? 0.0
          : 100.0 * (1.0 - static_cast<double>(on.victim_bytes) /
                               static_cast<double>(off.victim_bytes));
  std::printf(
      "\nshape check: RRL cuts the amplification payload at the victim by "
      "%.1f%%; the\nresidual traffic is dominated by minimal TC=1 slips a "
      "real client would convert\ninto a TCP retry — which a spoofed victim "
      "never sends.\n",
      reduction);
  return 0;
}
