// Ablation: unique-per-probe qnames vs a repeated qname.
//
// The probing methodology generates a fresh subdomain for every target so
// that no resolver can answer from cache (§III-B). This bench shows what a
// repeated-qname survey would measure instead: after the first resolution
// the resolver answers from cache, the authoritative server sees nothing,
// and the survey can no longer distinguish live behavior from cache state —
// nor match flows (the qname stops identifying the probe).
#include "bench_common.h"
#include "resolver/root_tld.h"
#include "resolver/scripted_resolver.h"

using namespace orp;

int main() {
  bench::print_header("Ablation — unique vs repeated probe names",
                      "paper §III-B (cache-defeating subdomain generation)");

  net::EventLoop loop;
  net::Network network(loop, 31);
  const zone::SubdomainScheme scheme(
      dns::DnsName::must_parse("ucfsealresearch.net"), 100000, 9);
  authns::AuthServer auth(network, net::IPv4Addr(45, 76, 18, 21), scheme,
                          net::SimTime::nanos(0));
  const auto hierarchy = resolver::build_hierarchy(
      network, scheme.sld(), scheme.sld().child("ns1"), auth.address(), 3);
  resolver::EngineConfig engine_config;
  engine_config.hints = hierarchy.hints;
  resolver::BehaviorProfile honest;
  honest.answer = resolver::AnswerMode::kRecursive;
  resolver::ResolverHost open_resolver(network, net::IPv4Addr(66, 77, 2, 2),
                                       honest, engine_config, 1);

  const net::Endpoint prober{net::IPv4Addr(132, 170, 3, 44), 54321};
  std::uint64_t responses = 0;
  network.bind(prober, [&](const net::Datagram&) { ++responses; });

  constexpr int kProbes = 200;

  auto probe_many = [&](bool unique) {
    const std::uint64_t before = auth.stats().queries_received;
    for (int i = 0; i < kProbes; ++i) {
      const zone::SubdomainId id{1, unique ? static_cast<std::uint32_t>(i)
                                           : 0u};
      network.send(net::Datagram{
          prober, net::Endpoint{open_resolver.address(), net::kDnsPort},
          dns::encode(dns::make_query(static_cast<std::uint16_t>(i),
                                      scheme.qname(id)))});
      // Space probes out past the network RTT so caching can engage.
      loop.run();
    }
    return auth.stats().queries_received - before;
  };

  auth.load_cluster(1, /*initial=*/true);
  const std::uint64_t q2_unique = probe_many(true);
  const std::uint64_t q2_repeated = probe_many(false);

  util::TextTable t({"probing mode", "probes", "R2", "Q2 at auth",
                     "behavior observed live"});
  t.set_align(4, util::Align::kLeft);
  t.add_row({"unique subdomains", std::to_string(kProbes),
             std::to_string(kProbes), util::with_commas(q2_unique),
             "every probe: full recursion"});
  t.add_row({"repeated qname", std::to_string(kProbes),
             std::to_string(kProbes), util::with_commas(q2_repeated),
             "first probe only; rest from cache"});
  std::printf("%s", t.render().c_str());

  std::printf(
      "\nshape check: with a repeated name the authoritative server sees "
      "%s recursion(s)\nfor %d probes — a cached answer says nothing about "
      "the resolver's live behavior, and\na poisoned cache would be "
      "indistinguishable from a manipulating resolver. Unique\nnames also "
      "make the qname a flow key (the 16-bit DNS ID cannot be, at 100k "
      "pps).\n",
      util::with_commas(q2_repeated).c_str(), kProbes);
  return 0;
}
