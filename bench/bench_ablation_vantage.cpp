// Ablation: single-vantage (prober-only) vs two-vantage measurement.
//
// §V of the paper criticizes Censys/Rapid7-style scans: "if the measurement
// is conducted only at the prober, we cannot catch the packet flow of R1 and
// Q2, which makes it difficult to investigate the behavior of open resolvers
// in-depth." This bench quantifies that: with only the prober's view, an
// answer's provenance (real recursion vs fabrication) is unknowable; with
// the authoritative-server capture, every fabricated answer is provable.
#include "analysis/flow.h"
#include "bench_common.h"
#include "net/capture.h"

using namespace orp;

int main(int argc, char** argv) {
  auto opts = bench::parse_options(argc, argv);
  if (argc <= 1 && std::getenv("ORP_BENCH_SCALE") == nullptr)
    opts.scale = 4096;  // payload-retaining captures; keep the run modest
  bench::print_header("Ablation — prober-only vs two-vantage measurement",
                      "paper §V 'Discussion' (Censys/Rapid7 critique)");

  const core::PopulationSpec spec =
      core::build_population(core::paper_2018(), opts.scale, opts.seed);
  core::InternetConfig net_cfg;
  net_cfg.seed = opts.seed;
  net_cfg.scan_seed = util::mix64(opts.seed + 2018);
  core::SimulatedInternet internet(spec, net_cfg);

  net::Capture auth_capture(internet.auth_address());
  auth_capture.attach(internet.network());

  prober::ScanConfig scan_cfg;
  scan_cfg.seed = net_cfg.scan_seed;
  scan_cfg.rate_pps = spec.rate_pps;
  scan_cfg.raw_steps = spec.raw_steps;
  scan_cfg.rotate_pause = net::SimTime::seconds(spec.zone_load_seconds);
  prober::Scanner scanner(internet.network(), internet.prober_address(),
                          scan_cfg, internet.scheme());
  scanner.set_rotate_callback(
      [&](std::uint32_t c) { internet.auth().load_cluster(c); });
  scanner.start([] {});
  internet.loop().run();

  // ---- Prober-only view ------------------------------------------------------
  std::uint64_t ra_open = 0;        // RA=1 responses: the flag-only estimate
  std::uint64_t answers = 0;
  std::uint64_t wrong_answers = 0;  // detectable: we own the ground truth
  analysis::FlowGrouper grouper(internet.scheme());
  for (const auto& rec : scanner.responses()) {
    const analysis::R2View v = analysis::classify_r2(rec, internet.scheme());
    if (!v.has_question) continue;
    if (v.ra) ++ra_open;
    if (v.has_answer()) ++answers;
    if (v.has_answer() && !(v.form == analysis::AnswerForm::kIp && v.correct))
      ++wrong_answers;
    if (v.subdomain) {
      const auto qname = internet.scheme().qname(*v.subdomain);
      grouper.add_probe(qname, rec.resolver);
      grouper.add_r2(v, qname);
    }
  }

  // ---- Add the authoritative vantage ------------------------------------------
  for (const auto& pkt : auth_capture.inbound())
    grouper.add_auth_packet(pkt, /*inbound=*/true);
  for (const auto& pkt : auth_capture.outbound())
    grouper.add_auth_packet(pkt, /*inbound=*/false);

  std::uint64_t proven_fabricated = 0;
  std::uint64_t recursion_backed = 0;
  std::uint64_t q2_total = 0;
  for (const auto& [key, flow] : grouper.flows()) {
    q2_total += flow.q2_count;
    if (!flow.r2 || !flow.r2->has_answer()) continue;
    if (flow.q2_count == 0)
      ++proven_fabricated;
    else
      ++recursion_backed;
  }

  util::TextTable t({"capability", "prober-only", "two-vantage"});
  t.set_align(0, util::Align::kLeft);
  t.add_row({"R2 responses observed",
             util::with_commas(scanner.stats().r2_received),
             util::with_commas(scanner.stats().r2_received)});
  t.add_row({"RA-flag open-resolver estimate", util::with_commas(ra_open),
             util::with_commas(ra_open)});
  t.add_row({"wrong answers detected (own ground truth)",
             util::with_commas(wrong_answers), util::with_commas(wrong_answers)});
  t.add_row({"Q2/R1 recursion flows observed", "0 (blind)",
             util::with_commas(q2_total)});
  t.add_row({"answers proven fabricated", "0 (cannot)",
             util::with_commas(proven_fabricated)});
  t.add_row({"answers proven recursion-backed", "0 (cannot)",
             util::with_commas(recursion_backed)});
  std::printf("%s", t.render().c_str());

  std::printf(
      "\nshape check: the prober alone sees *that* answers are wrong but not "
      "*why*; only the\nauthoritative vantage separates fabrication (%s "
      "answers, zero recursion) from honest\nresolution gone wrong — the "
      "paper's §IV-C2 manipulation argument needs both captures.\n",
      util::with_commas(proven_fabricated).c_str());
  return 0;
}
