// Shared plumbing for the table/figure reproduction benches.
//
// Every bench_tableNN binary runs the measurement pipeline for the year(s)
// its table covers and prints the paper's published row next to the measured
// row (scaled by 1/scale). Scale and seed come from argv or the environment:
//
//   ./bench_table03_answer_correctness [scale] [seed]
//   ORP_BENCH_SCALE=512 ./bench_table03_answer_correctness
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/paper_data.h"
#include "core/pipeline.h"
#include "util/strings.h"
#include "util/table.h"

namespace orp::bench {

struct BenchOptions {
  std::uint64_t scale = 1024;
  std::uint64_t seed = 42;
};

inline BenchOptions parse_options(int argc, char** argv) {
  BenchOptions opts;
  if (const char* env = std::getenv("ORP_BENCH_SCALE"))
    opts.scale = std::strtoull(env, nullptr, 10);
  if (const char* env = std::getenv("ORP_BENCH_SEED"))
    opts.seed = std::strtoull(env, nullptr, 10);
  if (argc > 1) opts.scale = std::strtoull(argv[1], nullptr, 10);
  if (argc > 2) opts.seed = std::strtoull(argv[2], nullptr, 10);
  if (opts.scale == 0) opts.scale = 1;
  return opts;
}

inline core::ScanOutcome run_year(const core::PaperYear& year,
                                  const BenchOptions& opts) {
  std::printf("... running the %d campaign at scale 1/%llu (seed %llu)\n",
              year.year, static_cast<unsigned long long>(opts.scale),
              static_cast<unsigned long long>(opts.seed));
  std::fflush(stdout);
  core::PipelineConfig cfg;
  cfg.scale = opts.scale;
  cfg.seed = opts.seed;
  return core::run_measurement(year, cfg);
}

/// "paper 123,456 -> scaled 121 | measured 119".
inline std::string vs(std::uint64_t paper, std::uint64_t scaled,
                      std::uint64_t measured) {
  return util::with_commas(paper) + " -> " + util::with_commas(scaled) +
         " | " + util::with_commas(measured);
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("%s", util::section_title(title).c_str());
  std::printf("reproduces: %s\n", paper_ref);
  std::printf(
      "columns: paper value -> paper scaled to this run | measured\n\n");
}

}  // namespace orp::bench
