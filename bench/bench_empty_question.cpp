// §IV-B4: the 494 responses with an empty question section.
//
// Runs at a finer default scale than the other benches (the sub-population
// is only 494 packets at full scale).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace orp;
  auto opts = bench::parse_options(argc, argv);
  if (argc <= 1 && std::getenv("ORP_BENCH_SCALE") == nullptr)
    opts.scale = 64;  // ~8 empty-question responders
  bench::print_header("§IV-B4 — responses with empty dns_question",
                      "paper §IV-B4 (2018 only)");

  const core::ScanOutcome o18 = bench::run_year(core::paper_2018(), opts);
  const auto& p = core::paper_2018().empty_q;
  const auto& m = o18.analysis.empty_question;

  util::TextTable t({"", "paper", "paper/scale", "measured"});
  auto row = [&](const char* label, std::uint64_t paper, std::uint64_t meas) {
    t.add_row({label, util::with_commas(paper),
               util::with_commas(o18.expect(paper)), util::with_commas(meas)});
  };
  row("total", p.total, m.total);
  row("with answer", p.with_answer, m.with_answer);
  row("  private-network answers", p.private_answers, m.private_answers);
  row("  malformed answers", p.malformed_answers, m.malformed_answers);
  row("  whois-unknown answers", p.unknown_org, m.unknown_org);
  row("correct answers", 0, m.correct);
  row("RA=1", p.ra1, m.ra1);
  row("AA=1", p.aa1, m.aa1);
  row("rcode ServFail", p.rcode[2], m.rcode[2]);
  row("rcode Refused", p.rcode[5], m.rcode[5]);
  row("rcode NoError", p.rcode[0], m.rcode[0]);
  std::printf("%s", t.render().c_str());

  std::printf(
      "\nshape checks: none of the answers is ever correct; failure "
      "(ServFail) and refusal\ndominate the rcodes — the paper's \"major "
      "reasons for the blank dns_question\".\nNote the paper's own "
      "sub-counts disagree (RA rows sum to 487, rcodes to 493, of 494).\n");
  return 0;
}
