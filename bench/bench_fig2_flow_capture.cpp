// Fig. 2: the Q1/Q2/R1/R2 measurement flow, validated with captures at both
// vantage points (prober and authoritative server) and grouped by qname.
//
// This bench also demonstrates the paper's manipulation discriminator: an R2
// that carries an answer although the authoritative server never saw a Q2
// for its qname cannot be a cached or recursive result — it is fabricated.
#include "analysis/flow.h"
#include "bench_common.h"
#include "net/capture.h"
#include "prober/scanner.h"

int main(int argc, char** argv) {
  using namespace orp;
  auto opts = bench::parse_options(argc, argv);
  if (argc <= 1 && std::getenv("ORP_BENCH_SCALE") == nullptr)
    opts.scale = 8192;  // captures retain payloads; keep the run modest
  bench::print_header("Fig. 2 — measurement flow capture",
                      "paper §III-A, Fig. 2");

  // Build the 2018 internet but drive the scanner manually so we can attach
  // captures to both vantage points.
  const core::PopulationSpec spec =
      core::build_population(core::paper_2018(), opts.scale, opts.seed);
  core::InternetConfig net_cfg;
  net_cfg.seed = opts.seed;
  net_cfg.scan_seed = util::mix64(opts.seed + 2018);
  core::SimulatedInternet internet(spec, net_cfg);

  net::Capture auth_capture(internet.auth_address());
  auth_capture.attach(internet.network());

  prober::ScanConfig scan_cfg;
  scan_cfg.seed = net_cfg.scan_seed;
  scan_cfg.rate_pps = spec.rate_pps;
  scan_cfg.raw_steps = spec.raw_steps;
  scan_cfg.rotate_pause = net::SimTime::seconds(spec.zone_load_seconds);
  prober::Scanner scanner(internet.network(), internet.prober_address(),
                          scan_cfg, internet.scheme());
  scanner.set_rotate_callback(
      [&](std::uint32_t c) { internet.auth().load_cluster(c); });
  scanner.start([] {});
  internet.loop().run();

  std::printf("prober vantage:  Q1 sent %s, R2 received %s\n",
              util::with_commas(scanner.stats().q1_sent).c_str(),
              util::with_commas(scanner.stats().r2_received).c_str());
  std::printf("authns vantage:  Q2 captured %s, R1 captured %s\n",
              util::with_commas(auth_capture.inbound_count()).c_str(),
              util::with_commas(auth_capture.outbound_count()).c_str());

  // Group all four packet kinds by qname (the §III-B matching method).
  analysis::FlowGrouper grouper(internet.scheme());
  for (const auto& pkt : auth_capture.inbound())
    grouper.add_auth_packet(pkt, /*inbound=*/true);
  for (const auto& pkt : auth_capture.outbound())
    grouper.add_auth_packet(pkt, /*inbound=*/false);
  std::uint64_t answered = 0;
  std::uint64_t answered_with_recursion = 0;
  std::uint64_t fabricated = 0;
  for (const auto& rec : scanner.responses()) {
    const analysis::R2View view = analysis::classify_r2(rec, internet.scheme());
    if (!view.has_question || !view.subdomain) continue;
    const auto qname = internet.scheme().qname(*view.subdomain);
    grouper.add_probe(qname, rec.resolver);
    grouper.add_r2(view, qname);
    if (!view.has_answer()) continue;
    ++answered;
  }
  for (const auto& [key, flow] : grouper.flows()) {
    if (!flow.has_r2 || !flow.r2 || !flow.r2->has_answer()) continue;
    if (flow.q2_count > 0)
      ++answered_with_recursion;
    else
      ++fabricated;
  }

  util::TextTable t({"flow class", "count"});
  t.add_row({"answered R2 (grouped by qname)", util::with_commas(answered)});
  t.add_row({"  backed by observed Q2/R1 recursion",
             util::with_commas(answered_with_recursion)});
  t.add_row({"  fabricated (answer with zero Q2) ",
             util::with_commas(fabricated)});
  std::printf("\n%s", t.render().c_str());
  std::printf(
      "\nshape checks: every incorrect answer in the calibrated population "
      "is fabricated\n(no auth contact) and every correct answer is backed "
      "by real recursion — the\nexact argument of §IV-C2 \"DNS "
      "Manipulation\".\n");
  return 0;
}
