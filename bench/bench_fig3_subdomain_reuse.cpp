// Fig. 3 / §III-B: the two-tier subdomain structure and the effect of
// subdomain reuse on zone-load count (theoretical ~800 clusters -> single
// digits).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace orp;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Fig. 3 — subdomain clusters and reuse",
                      "paper §III-B, Fig. 3");

  std::printf("naming: or<cluster:3>.<index:7>.<sld>, e.g. %s\n\n",
              zone::SubdomainScheme(
                  dns::DnsName::must_parse("ucfsealresearch.net"), 5'000'000,
                  1)
                  .qname({12, 34567})
                  .to_string()
                  .c_str());

  const core::ScanOutcome o18 = bench::run_year(core::paper_2018(), opts);

  const std::uint64_t theoretical =
      (o18.scan.q1_sent + o18.spec.cluster_size - 1) / o18.spec.cluster_size;
  util::TextTable t({"", "value"});
  t.add_row({"cluster size (names per zone load)",
             util::with_commas(o18.spec.cluster_size)});
  t.add_row({"probes sent", util::with_commas(o18.scan.q1_sent)});
  t.add_row({"theoretical clusters without reuse (paper: ~800)",
             util::with_commas(theoretical)});
  t.add_row({"zone loads with reuse (paper: 4)",
             util::with_commas(o18.cluster_loads)});
  t.add_row({"subdomains issued fresh",
             util::with_commas(o18.clusters.subdomains_issued)});
  t.add_row({"subdomains reused",
             util::with_commas(o18.clusters.subdomains_reused)});
  t.add_row({"names retired by answers (never reused)",
             util::with_commas(o18.scan.r2_matched)});
  t.add_row({"zone-load time spent (paper: ~1 min per 5M names)",
             util::human_duration(
                 o18.clusters.load_time_total.as_seconds())});
  std::printf("%s", t.render().c_str());

  std::printf(
      "\nshape check: reuse collapses ~%s zone loads to %s — two orders of "
      "magnitude,\nmatching the paper's 800 -> 4. The residual loads come "
      "from names permanently\nretired by answered probes plus the "
      "in-flight window at each rotation.\n",
      util::with_commas(theoretical).c_str(),
      util::with_commas(o18.cluster_loads).c_str());
  return 0;
}
