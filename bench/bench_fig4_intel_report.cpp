// Fig. 4: the threat-intel report card for the most-referenced malicious
// address (the paper screenshots Cymon's page for 208.91.197.91).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace orp;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Fig. 4 — threat-intel report for a malicious answer",
                      "paper §IV-C1, Fig. 4");

  // Build the 2018 internet; its ThreatDb is the Cymon stand-in.
  const core::PopulationSpec spec =
      core::build_population(core::paper_2018(), opts.scale, opts.seed);
  core::InternetConfig cfg;
  cfg.seed = opts.seed;
  cfg.scan_seed = util::mix64(opts.seed + 2018);
  core::SimulatedInternet internet(spec, cfg);

  const auto fig4_addr = *net::IPv4Addr::parse("208.91.197.91");
  std::printf("report card (paper: ransomware/malware, phishing, botnet "
              "reports on file):\n\n%s\n",
              internet.threats().report_card(fig4_addr).c_str());

  // The paper's surrounding analysis: 22,805 R2 packets point at the three
  // reported head addresses.
  std::uint64_t head_r2 = 0;
  for (const char* addr : {"74.220.199.15", "208.91.197.91", "141.8.225.68"}) {
    const auto parsed = *net::IPv4Addr::parse(addr);
    std::uint64_t count = 0;
    for (const auto& h : spec.hosts)
      if (h.profile.fixed_answer == parsed) ++count;
    head_r2 += count;
    std::printf("resolvers redirecting to %s: %s\n", addr,
                util::with_commas(count).c_str());
  }
  std::printf(
      "\ntotal redirections to reported head addresses: %s "
      "(paper: 22,805 -> scaled %s)\n",
      util::with_commas(head_r2).c_str(),
      util::with_commas((22'805 + opts.scale / 2) / opts.scale).c_str());

  std::printf("\ndatabase coverage: %s reported addresses on file (paper "
              "Cymon hits: 335 unique)\n",
              util::with_commas(internet.threats().reported_address_count())
                  .c_str());
  return 0;
}
