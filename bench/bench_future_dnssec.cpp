// Extension: counting DNSSEC-validating resolvers (§VI cites Fukuda et al.
// and Yu et al.'s validator censuses).
//
// A validating resolver sets the DNSSEC-OK (DO) bit on its upstream queries;
// since the measurement owns the authoritative server, the fraction of Q2
// traffic carrying DO is a free census of validator deployment among the
// open resolvers that performed real recursion.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace orp;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Extension — DNSSEC validator census at the auth server",
                      "paper §VI (validator-counting references [43,44])");

  const core::ScanOutcome o18 = bench::run_year(core::paper_2018(), opts);

  const auto& s = o18.auth;
  util::TextTable t({"metric", "value"});
  t.set_align(0, util::Align::kLeft);
  t.add_row({"Q2 queries at the authoritative server",
             util::with_commas(s.queries_received)});
  t.add_row({"  carrying EDNS(0)", util::with_commas(s.edns_queries)});
  t.add_row({"  carrying the DO bit", util::with_commas(s.dnssec_do_queries)});
  t.add_row({"DO share of EDNS queries",
             util::fixed(util::percent(s.dnssec_do_queries, s.edns_queries),
                         1) +
                 "%"});
  std::printf("%s", t.render().c_str());

  std::printf(
      "\nreading: roughly one in eight recursion-performing open resolvers "
      "sets DO upstream\n(population calibrated to the paper-era validator "
      "censuses). DNSSEC validation would\nblock the manipulated answers of "
      "§IV-C for signed zones — but at this deployment\nlevel, \"DNSSEC did "
      "not yet completely replace DNS, which leaves a threat\" (§VI).\n");
  return 0;
}
