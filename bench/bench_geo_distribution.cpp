// §IV-C2 "Distribution of Malicious Resolvers": country breakdown.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace orp;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Geo — distribution of malicious resolvers",
                      "paper §IV-C2 in-text country lists");

  for (const auto* year : {&core::paper_2013(), &core::paper_2018()}) {
    const core::ScanOutcome o = bench::run_year(*year, opts);
    std::printf("\n--- %d ---\n", year->year);
    util::TextTable t(
        {"Country", "paper #R2", "paper share", "measured #R2", "meas share"});
    std::uint64_t shown = 0;
    for (std::size_t i = 0; i < 8 && i < year->countries.size(); ++i) {
      const auto& pc = year->countries[i];
      std::uint64_t measured = 0;
      for (const auto& mc : o.analysis.geo.countries)
        if (mc.country == pc.country) measured = mc.r2;
      t.add_row({pc.country, util::with_commas(pc.r2),
                 util::fixed(util::percent(pc.r2, year->malicious_r2), 1) + "%",
                 util::with_commas(measured),
                 util::fixed(util::percent(measured, o.analysis.geo.total), 1) +
                     "%"});
      shown += pc.r2;
    }
    std::printf("%s", t.render().c_str());
    std::printf("countries with malicious resolvers: paper %zu, measured %zu\n",
                year->countries.size(), o.analysis.geo.country_count());
  }

  std::printf(
      "\nshape checks: the US dominates both years but its share falls "
      "98%% -> 81%% as IN,\nHK, VG, AE and CN grow ~10x; the measured "
      "country count shrinks with scale\n(a 1/N sample cannot retain every "
      "1-resolver country).\n");
  return 0;
}
