// Streaming vs post-hoc behavioral analysis: wall time and peak memory.
//
// The streaming path classifies each R2 at capture time and folds it into
// per-shard partial tables; the post-hoc path retains every R2 payload,
// materializes every view, sorts them canonically and analyzes in one pass.
// This bench runs the full campaign both ways at several scales and records
// wall seconds plus peak RSS into BENCH_analysis.json.
//
// Peak RSS is a *process-wide* high-water mark, so each configuration runs
// in a forked child: the child executes the campaign and reports wall/counts
// through a pipe, the parent reads the child's ru_maxrss from wait4. Running
// both modes in one process would let whichever ran first set the high-water
// mark for both.
//
// --ci: one streaming run at scale 256, JSON to BENCH_analysis.ci.json —
// the pre-merge gate's memory-ceiling probe (see scripts/check_all.sh).
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "core/paper_data.h"
#include "core/pipeline.h"

namespace {

using namespace orp;

/// What the child ships back over the pipe. Campaign outputs are
/// deterministic per configuration; only the wall varies run to run.
struct ChildReport {
  double wall_seconds = 0;
  std::uint64_t events = 0;
  std::uint64_t r2 = 0;
  std::uint64_t correct = 0;
  std::uint64_t analysis_bytes = 0;
};

struct RunResult {
  ChildReport report;
  long peak_rss_kb = 0;  // ru_maxrss of the child (Linux: kilobytes)
  bool ok = false;
};

RunResult run_forked(std::uint64_t scale, bool posthoc) {
  RunResult result;
  int fds[2];
  if (pipe(fds) != 0) return result;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return result;
  }
  if (pid == 0) {
    close(fds[0]);
    core::PipelineConfig cfg;
    cfg.scale = scale;
    cfg.seed = 42;
    cfg.threads = 1;
    cfg.posthoc_analysis = posthoc;
    const auto t0 = std::chrono::steady_clock::now();
    const core::ScanOutcome o = core::run_measurement(core::paper_2018(), cfg);
    const auto t1 = std::chrono::steady_clock::now();
    ChildReport r;
    r.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
    r.events = o.events_executed;
    r.r2 = o.scan.r2_received;
    r.correct = o.analysis.answers.correct;
    r.analysis_bytes = o.analysis_bytes;
    const ssize_t n = write(fds[1], &r, sizeof(r));
    _exit(n == sizeof(r) ? 0 : 1);
  }
  close(fds[1]);
  ssize_t got = 0;
  while (got < static_cast<ssize_t>(sizeof(ChildReport))) {
    const ssize_t n =
        read(fds[0], reinterpret_cast<char*>(&result.report) + got,
             sizeof(ChildReport) - static_cast<std::size_t>(got));
    if (n <= 0) break;
    got += n;
  }
  close(fds[0]);
  int status = 0;
  struct rusage ru;
  std::memset(&ru, 0, sizeof(ru));
  if (wait4(pid, &status, 0, &ru) != pid) return result;
  result.peak_rss_kb = ru.ru_maxrss;
  result.ok = got == sizeof(ChildReport) && WIFEXITED(status) &&
              WEXITSTATUS(status) == 0;
  return result;
}

/// Best-of-N: minimum wall (the unloaded estimate on a shared container)
/// and minimum RSS (fork-time noise — page-cache sharing — only inflates).
RunResult best_of(std::uint64_t scale, bool posthoc, int runs) {
  RunResult best;
  for (int i = 0; i < runs; ++i) {
    const RunResult r = run_forked(scale, posthoc);
    if (!r.ok) continue;
    if (!best.ok || r.report.wall_seconds < best.report.wall_seconds)
      best.report = r.report;
    if (!best.ok || r.peak_rss_kb < best.peak_rss_kb)
      best.peak_rss_kb = r.peak_rss_kb;
    best.ok = true;
  }
  return best;
}

bool emit_json(const char* path, const std::string& json) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro_analysis: cannot open %s\n", path);
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed)
    std::fprintf(stderr, "bench_micro_analysis: short write to %s\n", path);
  return ok && closed;
}

/// CI probe: one streaming campaign at scale 256, minimal JSON. The gate
/// reads peak_rss_kb and enforces the memory ceiling.
int run_ci(const char* path) {
  const RunResult r = run_forked(256, /*posthoc=*/false);
  if (!r.ok) {
    std::fprintf(stderr, "bench_micro_analysis: ci campaign failed\n");
    return 1;
  }
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "{\n  \"bench\": \"analysis_streaming_ci\",\n"
                "  \"scale\": 256,\n  \"mode\": \"streaming\",\n"
                "  \"wall_seconds\": %.3f,\n  \"peak_rss_kb\": %ld,\n"
                "  \"analysis_bytes\": %llu,\n  \"r2\": %llu\n}\n",
                r.report.wall_seconds, r.peak_rss_kb,
                static_cast<unsigned long long>(r.report.analysis_bytes),
                static_cast<unsigned long long>(r.report.r2));
  std::printf("ci: scale=256 streaming  wall=%.3fs  peak_rss=%ld KB  "
              "analysis_bytes=%llu\n",
              r.report.wall_seconds, r.peak_rss_kb,
              static_cast<unsigned long long>(r.report.analysis_bytes));
  return emit_json(path, buf) ? 0 : 1;
}

int run_full(const char* path) {
  constexpr int kRuns = 5;
  const unsigned cores = std::thread::hardware_concurrency();
  std::string json =
      "{\n  \"bench\": \"analysis_streaming\",\n  \"year\": 2018,\n"
      "  \"seed\": 42,\n  \"threads\": 1,\n  \"runs_per_point\": " +
      std::to_string(kRuns) +
      ",\n  \"wall_seconds_is\": \"best_of_runs\",\n"
      "  \"peak_rss_is\": \"child_ru_maxrss_kb_min_of_runs\",\n"
      "  \"analysis_bytes_is\": \"bytes_retained_to_produce_the_tables\",\n"
      "  \"hardware_concurrency\": " +
      std::to_string(cores) + ",\n  \"results\": [\n";
  double rss_ratio_256 = 0, wall_ratio_256 = 0, bytes_ratio_256 = 0;
  bool first = true;
  for (const std::uint64_t scale : {1024u, 256u, 64u}) {
    double wall[2] = {0, 0};
    long rss[2] = {0, 0};
    std::uint64_t bytes[2] = {0, 0};
    for (const bool posthoc : {false, true}) {
      const RunResult r = best_of(scale, posthoc, kRuns);
      if (!r.ok) {
        std::fprintf(stderr, "bench_micro_analysis: campaign failed "
                             "(scale %llu, posthoc %d)\n",
                     static_cast<unsigned long long>(scale), posthoc);
        return 1;
      }
      wall[posthoc] = r.report.wall_seconds;
      rss[posthoc] = r.peak_rss_kb;
      bytes[posthoc] = r.report.analysis_bytes;
      char row[512];
      std::snprintf(
          row, sizeof(row),
          "%s    {\"scale\": %llu, \"mode\": \"%s\", "
          "\"wall_seconds\": %.3f, \"peak_rss_kb\": %ld, "
          "\"analysis_bytes\": %llu, \"events\": %llu, \"r2\": %llu}",
          first ? "" : ",\n", static_cast<unsigned long long>(scale),
          posthoc ? "posthoc" : "streaming", r.report.wall_seconds,
          r.peak_rss_kb,
          static_cast<unsigned long long>(r.report.analysis_bytes),
          static_cast<unsigned long long>(r.report.events),
          static_cast<unsigned long long>(r.report.r2));
      json += row;
      first = false;
      std::printf("scale=%-5llu %-9s  wall=%.3fs  peak_rss=%ld KB  "
                  "analysis_bytes=%llu  r2=%llu\n",
                  static_cast<unsigned long long>(scale),
                  posthoc ? "posthoc" : "streaming", r.report.wall_seconds,
                  r.peak_rss_kb,
                  static_cast<unsigned long long>(r.report.analysis_bytes),
                  static_cast<unsigned long long>(r.report.r2));
    }
    if (scale == 256) {
      rss_ratio_256 = static_cast<double>(rss[1]) / rss[0];
      wall_ratio_256 = wall[1] / wall[0];
      bytes_ratio_256 = static_cast<double>(bytes[1]) /
                        static_cast<double>(std::max<std::uint64_t>(bytes[0], 1));
    }
  }
  char tail[384];
  std::snprintf(tail, sizeof(tail),
                "\n  ],\n  \"scale256_rss_posthoc_over_streaming\": %.2f,\n"
                "  \"scale256_wall_posthoc_over_streaming\": %.2f,\n"
                "  \"scale256_analysis_bytes_posthoc_over_streaming\": %.1f\n"
                "}\n",
                rss_ratio_256, wall_ratio_256, bytes_ratio_256);
  json += tail;
  if (!emit_json(path, json)) return 1;
  std::printf("wrote %s (scale 256 posthoc/streaming: rss x%.2f, wall x%.2f, "
              "analysis bytes x%.1f)\n",
              path, rss_ratio_256, wall_ratio_256, bytes_ratio_256);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--ci")
      return run_ci("BENCH_analysis.ci.json");
  return run_full("BENCH_analysis.json");
}
