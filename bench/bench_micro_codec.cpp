// Microbenchmarks: DNS wire codec throughput — the per-packet cost floor of
// both the prober (3.7B encodes per campaign) and the analysis re-decode.
#include <benchmark/benchmark.h>

#include "dns/builder.h"
#include "dns/codec.h"
#include "zone/cluster.h"

namespace {

using namespace orp;

dns::Message probe_query() {
  const zone::SubdomainScheme scheme(
      dns::DnsName::must_parse("ucfsealresearch.net"), 5'000'000, 7);
  return dns::make_query(0x4242, scheme.qname({3, 1234567}));
}

dns::Message full_response() {
  dns::Message m = probe_query();
  m.header.flags.qr = true;
  m.header.flags.ra = true;
  m.answers.push_back(dns::ResourceRecord{
      m.questions[0].qname, dns::RRType::kA, dns::RRClass::kIN, 300,
      dns::ARdata{net::IPv4Addr(93, 184, 216, 34)}});
  m.authority.push_back(dns::ResourceRecord{
      dns::DnsName::must_parse("ucfsealresearch.net"), dns::RRType::kNS,
      dns::RRClass::kIN, 172800,
      dns::NameRdata{dns::DnsName::must_parse("ns1.ucfsealresearch.net")}});
  m.additional.push_back(dns::ResourceRecord{
      dns::DnsName::must_parse("ns1.ucfsealresearch.net"), dns::RRType::kA,
      dns::RRClass::kIN, 172800, dns::ARdata{net::IPv4Addr(45, 76, 18, 21)}});
  return m;
}

void BM_EncodeQuery(benchmark::State& state) {
  const dns::Message q = probe_query();
  for (auto _ : state) benchmark::DoNotOptimize(dns::encode(q));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeQuery);

void BM_EncodeResponseCompressed(benchmark::State& state) {
  const dns::Message r = full_response();
  for (auto _ : state)
    benchmark::DoNotOptimize(dns::encode(r, {.compress = true}));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeResponseCompressed);

void BM_EncodeResponseUncompressed(benchmark::State& state) {
  const dns::Message r = full_response();
  for (auto _ : state)
    benchmark::DoNotOptimize(dns::encode(r, {.compress = false}));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeResponseUncompressed);

void BM_DecodeResponse(benchmark::State& state) {
  const auto wire = dns::encode(full_response());
  for (auto _ : state) {
    auto decoded = dns::decode(wire);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_DecodeResponse);

void BM_DecodePartialMalformed(benchmark::State& state) {
  dns::Message r = probe_query();
  r.header.flags.qr = true;
  r.header.qdcount = 1;
  r.header.ancount = 1;  // lies: the undecodable-answer shape
  const auto wire = dns::encode_raw_counts(r);
  for (auto _ : state) {
    auto decoded = dns::decode_partial(wire);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodePartialMalformed);

void BM_QnameRoundTrip(benchmark::State& state) {
  const zone::SubdomainScheme scheme(
      dns::DnsName::must_parse("ucfsealresearch.net"), 5'000'000, 7);
  std::uint32_t i = 0;
  for (auto _ : state) {
    const auto name = scheme.qname({i & 0x3FF, i % 5'000'000});
    auto parsed = scheme.parse(name);
    benchmark::DoNotOptimize(parsed);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QnameRoundTrip);

}  // namespace

BENCHMARK_MAIN();
