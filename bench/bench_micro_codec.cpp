// Microbenchmarks: DNS wire codec throughput — the per-packet cost floor of
// both the prober (3.7B encodes per campaign) and the analysis re-decode.
//
// Besides the google-benchmark suite, the binary measures ns/op and
// allocations/op for the hot wire operations — encode, decode, classify,
// and template stamping — on both the full path ("before": fresh buffers
// per encode, decode_partial into a Message, Message-walking classifier,
// build+encode per packet) and the fast path ("after": per-shard
// EncodeBuffer scratch, zero-copy DecodeView, view-walking classifier,
// WireTemplate::stamp), and writes BENCH_codec.json so the delta is
// machine-readable.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <variant>

#include "analysis/flow.h"
#include "dns/builder.h"
#include "dns/codec.h"
#include "dns/decode_view.h"
#include "dns/edns.h"
#include "dns/wire_template.h"
#include "zone/cluster.h"

// ---- allocation counter ---------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};
}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace orp;

dns::Message probe_query() {
  const zone::SubdomainScheme scheme(
      dns::DnsName::must_parse("ucfsealresearch.net"), 5'000'000, 7);
  return dns::make_query(0x4242, scheme.qname({3, 1234567}));
}

dns::Message full_response() {
  dns::Message m = probe_query();
  m.header.flags.qr = true;
  m.header.flags.ra = true;
  m.answers.push_back(dns::ResourceRecord{
      m.questions[0].qname, dns::RRType::kA, dns::RRClass::kIN, 300,
      dns::ARdata{net::IPv4Addr(93, 184, 216, 34)}});
  m.authority.push_back(dns::ResourceRecord{
      dns::DnsName::must_parse("ucfsealresearch.net"), dns::RRType::kNS,
      dns::RRClass::kIN, 172800,
      dns::NameRdata{dns::DnsName::must_parse("ns1.ucfsealresearch.net")}});
  m.additional.push_back(dns::ResourceRecord{
      dns::DnsName::must_parse("ns1.ucfsealresearch.net"), dns::RRType::kA,
      dns::RRClass::kIN, 172800, dns::ARdata{net::IPv4Addr(45, 76, 18, 21)}});
  return m;
}

dns::Message txt_response() {
  dns::Message m = probe_query();
  m.header.flags.qr = true;
  m.answers.push_back(dns::ResourceRecord{
      m.questions[0].qname, dns::RRType::kTXT, dns::RRClass::kIN, 60,
      dns::TxtRdata{{"a deliberately long garbage answer", "second chunk"}}});
  return m;
}

// ---- google-benchmark suite ----------------------------------------------

void BM_EncodeQuery(benchmark::State& state) {
  const dns::Message q = probe_query();
  for (auto _ : state) benchmark::DoNotOptimize(dns::encode(q));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeQuery);

void BM_EncodeQueryWarmScratch(benchmark::State& state) {
  const dns::Message q = probe_query();
  dns::EncodeBuffer scratch;
  for (auto _ : state)
    benchmark::DoNotOptimize(dns::encode_into(q, scratch).size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeQueryWarmScratch);

void BM_EncodeResponseCompressed(benchmark::State& state) {
  const dns::Message r = full_response();
  for (auto _ : state)
    benchmark::DoNotOptimize(dns::encode(r, {.compress = true}));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeResponseCompressed);

void BM_EncodeResponseWarmScratch(benchmark::State& state) {
  const dns::Message r = full_response();
  dns::EncodeBuffer scratch;
  for (auto _ : state)
    benchmark::DoNotOptimize(dns::encode_into(r, scratch).size());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeResponseWarmScratch);

void BM_EncodeResponseUncompressed(benchmark::State& state) {
  const dns::Message r = full_response();
  for (auto _ : state)
    benchmark::DoNotOptimize(dns::encode(r, {.compress = false}));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EncodeResponseUncompressed);

void BM_DecodeResponse(benchmark::State& state) {
  const auto wire = dns::encode(full_response());
  for (auto _ : state) {
    auto decoded = dns::decode(wire);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_DecodeResponse);

void BM_DecodeViewResponse(benchmark::State& state) {
  const auto wire = dns::encode(full_response());
  for (auto _ : state) {
    const dns::DecodeView v = dns::DecodeView::parse(wire);
    benchmark::DoNotOptimize(v.answers_parsed);
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(wire.size()));
}
BENCHMARK(BM_DecodeViewResponse);

void BM_DecodePartialMalformed(benchmark::State& state) {
  dns::Message r = probe_query();
  r.header.flags.qr = true;
  r.header.qdcount = 1;
  r.header.ancount = 1;  // lies: the undecodable-answer shape
  const auto wire = dns::encode_raw_counts(r);
  for (auto _ : state) {
    auto decoded = dns::decode_partial(wire);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodePartialMalformed);

void BM_ClassifyR2(benchmark::State& state) {
  const zone::SubdomainScheme scheme(
      dns::DnsName::must_parse("ucfsealresearch.net"), 5'000'000, 7);
  const auto wire = dns::encode(full_response());
  const prober::R2Record rec{net::SimTime{}, net::IPv4Addr(8, 8, 8, 8), wire};
  for (auto _ : state) {
    const auto view = analysis::classify_r2(rec, scheme);
    benchmark::DoNotOptimize(view.correct);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ClassifyR2);

void BM_StampProbeQuery(benchmark::State& state) {
  const zone::SubdomainScheme scheme(
      dns::DnsName::must_parse("ucfsealresearch.net"), 5'000'000, 7);
  dns::EncodeBuffer scratch;
  const dns::WireTemplate tpl = dns::WireTemplate::derive(
      [&](const dns::StampVars& v) {
        return dns::make_query(v.txn, scheme.qname({v.cluster, v.index}));
      },
      scratch);
  std::uint32_t i = 0;
  for (auto _ : state) {
    const dns::StampVars v{static_cast<std::uint16_t>(i), i % 1000,
                           i % 5'000'000, 0, 0};
    benchmark::DoNotOptimize(tpl.stamp(v, scratch).back());
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StampProbeQuery);

void BM_QnameRoundTrip(benchmark::State& state) {
  const zone::SubdomainScheme scheme(
      dns::DnsName::must_parse("ucfsealresearch.net"), 5'000'000, 7);
  std::uint32_t i = 0;
  for (auto _ : state) {
    const auto name = scheme.qname({i & 0x3FF, i % 5'000'000});
    auto parsed = scheme.parse(name);
    benchmark::DoNotOptimize(parsed);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_QnameRoundTrip);

// ---- before/after alloc+latency table ------------------------------------

/// The pre-refactor classifier, retained verbatim as the "before" reference:
/// materialize a Message via decode_partial, then judge the first answer by
/// walking the rdata variant. (classify_r2 in src/analysis now produces the
/// same R2View from a DecodeView; the differential fuzz suite pins the
/// equivalence.)
analysis::R2View classify_r2_materialized(const prober::R2Record& record,
                                          const zone::SubdomainScheme& scheme) {
  analysis::R2View view;
  view.resolver = record.resolver;
  view.time = record.time;
  const dns::PartialDecode partial = dns::decode_partial(record.payload);
  if (partial.failed_at == dns::DecodeStage::kHeader) {
    view.header_decoded = false;
    return view;
  }
  const dns::Message& m = partial.message;
  view.ra = m.header.flags.ra;
  view.aa = m.header.flags.aa;
  view.rcode = m.header.flags.rcode;
  view.has_question = !m.questions.empty();
  if (view.has_question) view.subdomain = scheme.parse(m.questions[0].qname);
  if (partial.failed_at == dns::DecodeStage::kQuestion) {
    view.has_question = false;
    return view;
  }
  if (partial.failed_at == dns::DecodeStage::kAnswer) {
    view.form = analysis::AnswerForm::kUndecodable;
    return view;
  }
  if (m.answers.empty()) {
    view.form = analysis::AnswerForm::kNone;
    return view;
  }
  const dns::ResourceRecord& rr = m.answers.front();
  if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata)) {
    view.form = analysis::AnswerForm::kIp;
    view.answer_ip = a->addr;
    if (view.subdomain)
      view.correct = (a->addr == scheme.ground_truth(*view.subdomain));
  } else if (const auto* n = std::get_if<dns::NameRdata>(&rr.rdata)) {
    view.form = analysis::AnswerForm::kUrl;
    view.answer_text = n->name.to_string();
  } else if (const auto* t = std::get_if<dns::TxtRdata>(&rr.rdata)) {
    view.form = analysis::AnswerForm::kString;
    for (const auto& s : t->strings) {
      if (!view.answer_text.empty()) view.answer_text += " ";
      view.answer_text += s;
    }
  } else if (const auto* raw = std::get_if<dns::RawRdata>(&rr.rdata)) {
    view.form = analysis::AnswerForm::kString;
    static constexpr char kHex[] = "0123456789abcdef";
    for (const std::uint8_t b : raw->bytes) {
      view.answer_text.push_back(kHex[b >> 4]);
      view.answer_text.push_back(kHex[b & 0xF]);
    }
  } else {
    view.form = analysis::AnswerForm::kString;
  }
  return view;
}

struct OpCost {
  double ns_per_op = 0;
  double allocs_per_op = 0;
};

/// Time + count allocations over `iters` calls of `f`.
template <typename F>
OpCost measure(int iters, F&& f) {
  f();  // warm caches and any lazy buffers before the clock starts
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) f();
  const auto t1 = std::chrono::steady_clock::now();
  g_counting.store(false, std::memory_order_relaxed);
  const double ns = std::chrono::duration<double, std::nano>(t1 - t0).count();
  return OpCost{ns / iters,
                static_cast<double>(g_alloc_count.load()) / iters};
}

void write_bench_codec_json(const char* path) {
  constexpr int kIters = 200'000;
  const zone::SubdomainScheme scheme(
      dns::DnsName::must_parse("ucfsealresearch.net"), 5'000'000, 7);
  const dns::Message query = probe_query();
  const dns::Message response = full_response();
  const auto response_wire = dns::encode(response);
  const prober::R2Record rec_a{net::SimTime{}, net::IPv4Addr(8, 8, 8, 8),
                               response_wire};
  const auto txt_wire = dns::encode(txt_response());
  const prober::R2Record rec_txt{net::SimTime{}, net::IPv4Addr(8, 8, 8, 8),
                                 txt_wire};
  dns::EncodeBuffer scratch;

  // The wire templates this PR's producers stamp from: the scanner's probe
  // query, and the auth server's A answer to a Q2 (RD=0 + EDNS) query.
  // "Before" is the warm full path those call sites previously ran — build
  // the message (qname render included) and encode into warm scratch.
  const auto probe_factory = [&scheme](const dns::StampVars& v) {
    return dns::make_query(v.txn, scheme.qname({v.cluster, v.index}));
  };
  const auto q2_factory = [&scheme](const dns::StampVars& v) {
    dns::Message q =
        dns::make_query(v.txn, scheme.qname({v.cluster, v.index}));
    q.header.flags.rd = false;
    dns::set_edns(q, dns::EdnsInfo{.udp_payload_size = 4096});
    return q;
  };
  const auto answer_factory = [&](const dns::StampVars& v) {
    dns::Message r = dns::make_a_response(q2_factory(v), net::IPv4Addr{v.addr},
                                          v.ttl, /*ra=*/false, /*aa=*/true);
    dns::set_edns(r, dns::EdnsInfo{.udp_payload_size = 4096});
    return r;
  };
  const dns::WireTemplate probe_tpl =
      dns::WireTemplate::derive(probe_factory, scratch);
  const dns::WireTemplate answer_tpl =
      dns::WireTemplate::derive(answer_factory, scratch);
  const auto vars_at = [](std::uint32_t i) {
    return dns::StampVars{static_cast<std::uint16_t>(i), i % 1000,
                          i % 5'000'000, 300, 0xC0A80000u + i};
  };

  struct Row {
    const char* op;
    OpCost before, after;
  };
  std::uint8_t sink = 0;
  std::uint32_t seq_a = 0, seq_b = 0, seq_c = 0, seq_d = 0;
  const Row rows[] = {
      {"encode_probe_query",
       measure(kIters, [&] { sink ^= dns::encode(query).back(); }),
       measure(kIters,
               [&] { sink ^= dns::encode_into(query, scratch).back(); })},
      {"encode_full_response",
       measure(kIters, [&] { sink ^= dns::encode(response).back(); }),
       measure(kIters,
               [&] { sink ^= dns::encode_into(response, scratch).back(); })},
      {"decode_full_response",
       measure(kIters,
               [&] {
                 sink ^= static_cast<std::uint8_t>(
                     dns::decode_partial(response_wire).message.answers.size());
               }),
       measure(kIters,
               [&] {
                 sink ^= static_cast<std::uint8_t>(
                     dns::DecodeView::parse(response_wire).answers_parsed);
               })},
      {"classify_r2_a_answer",
       measure(kIters,
               [&] { sink ^= classify_r2_materialized(rec_a, scheme).correct; }),
       measure(kIters,
               [&] { sink ^= analysis::classify_r2(rec_a, scheme).correct; })},
      {"stamp_probe_query",
       measure(kIters,
               [&] {
                 sink ^=
                     dns::encode_into(probe_factory(vars_at(seq_a++)), scratch)
                         .back();
               }),
       measure(kIters,
               [&] { sink ^= probe_tpl.stamp(vars_at(seq_b++), scratch).back(); })},
      {"stamp_full_response",
       measure(kIters,
               [&] {
                 sink ^=
                     dns::encode_into(answer_factory(vars_at(seq_c++)), scratch)
                         .back();
               }),
       measure(kIters,
               [&] {
                 sink ^= answer_tpl.stamp(vars_at(seq_d++), scratch).back();
               })},
      {"classify_r2_txt_answer",
       measure(kIters,
               [&] {
                 sink ^= static_cast<std::uint8_t>(
                     classify_r2_materialized(rec_txt, scheme).answer_text.size());
               }),
       measure(kIters,
               [&] {
                 sink ^= static_cast<std::uint8_t>(
                     analysis::classify_r2(rec_txt, scheme).answer_text.size());
               })},
  };

  std::string json =
      "{\n  \"bench\": \"codec_alloc\",\n  \"iters\": " +
      std::to_string(kIters) +
      ",\n  \"before\": \"cold buffers / decode_partial / Message walk\","
      "\n  \"after\": \"shard scratch / DecodeView / view walk\","
      "\n  \"rows\": [\n";
  const std::size_t n_rows = sizeof(rows) / sizeof(rows[0]);
  for (std::size_t i = 0; i < n_rows; ++i) {
    const Row& r = rows[i];
    char line[320];
    std::snprintf(line, sizeof(line),
                  "    {\"op\": \"%s\", \"before_ns\": %.1f, "
                  "\"before_allocs\": %.2f, \"after_ns\": %.1f, "
                  "\"after_allocs\": %.2f, \"speedup\": %.2f, "
                  "\"alloc_reduction\": %.1f}%s\n",
                  r.op, r.before.ns_per_op, r.before.allocs_per_op,
                  r.after.ns_per_op, r.after.allocs_per_op,
                  r.before.ns_per_op / r.after.ns_per_op,
                  r.after.allocs_per_op > 0
                      ? r.before.allocs_per_op / r.after.allocs_per_op
                      : r.before.allocs_per_op,
                  i + 1 == n_rows ? "" : ",");
    json += line;
    std::printf("%-24s before %8.1f ns %6.2f allocs | after %8.1f ns "
                "%6.2f allocs\n",
                r.op, r.before.ns_per_op, r.before.allocs_per_op,
                r.after.ns_per_op, r.after.allocs_per_op);
  }
  json += "  ]\n}\n";
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s (sink=%u)\n", path, sink);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_bench_codec_json("BENCH_codec.json");
  return 0;
}
