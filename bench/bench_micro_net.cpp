// Microbenchmarks: the simulation core's per-packet cost — event scheduling,
// datagram delivery, and capture, the loop under all 3.7B probes and 76M
// responses of a full-scale campaign.
//
// Besides the google-benchmark suite, the binary measures ns/packet and
// allocations/packet on both the pre-refactor core ("before": std::function
// actions in a std::priority_queue, per-hop std::vector payload copies,
// per-record capture buffers — retained here as a reference implementation)
// and the pooled core ("after": fixed-budget InlineAction on an explicit
// binary heap, recycled PayloadRef slabs, append-only capture arena), and
// writes BENCH_net.json so the delta is machine-readable.
#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <new>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/builder.h"
#include "dns/codec.h"
#include "net/capture_store.h"
#include "net/event_loop.h"
#include "net/transport.h"
#include "obs/metrics.h"
#include "prober/r2_store.h"
#include "util/hash.h"
#include "util/rng.h"
#include "zone/cluster.h"

// ---- allocation counter ---------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<bool> g_counting{false};
}  // namespace

void* operator new(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed))
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace orp;

std::vector<std::uint8_t> probe_wire() {
  const zone::SubdomainScheme scheme(
      dns::DnsName::must_parse("ucfsealresearch.net"), 5'000'000, 7);
  return dns::encode(dns::make_query(0x4242, scheme.qname({3, 1234567})));
}

// ---- the pre-refactor core, retained as the "before" reference ------------
//
// This is the simulation core as it stood before the zero-allocation rework:
// every scheduled event boxed its closure in a std::function, the queue was a
// std::priority_queue (whose const top() forced a const_cast to move events
// out), each network hop carried its payload in a per-datagram std::vector,
// and the capture copied every retained payload into a fresh buffer. The
// behavior is identical to the current core (test_net.cpp pins the event
// ordering; the capture digest is unchanged) — only the allocation profile
// differs, which is exactly what this bench exists to show.

class LegacyLoop {
 public:
  using Action = std::function<void()>;

  net::SimTime now() const noexcept { return now_; }

  void schedule_in(net::SimTime delay, Action action) {
    net::SimTime at = now_ + delay;
    if (at < now_) at = now_;
    queue_.push(Event{at, next_seq_++, std::move(action)});
  }

  std::uint64_t run() {
    std::uint64_t n = 0;
    while (!queue_.empty()) {
      const Event& top = queue_.top();
      now_ = top.at;
      Action action = std::move(const_cast<Event&>(top).action);
      queue_.pop();
      action();
      ++n;
    }
    return n;
  }

 private:
  struct Event {
    net::SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return b.at < a.at;
      return b.seq < a.seq;
    }
  };

  net::SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

struct LegacyDatagram {
  net::Endpoint src;
  net::Endpoint dst;
  std::vector<std::uint8_t> payload;
};

class LegacyNetwork {
 public:
  using Handler = std::function<void(const LegacyDatagram&)>;
  using Tap = std::function<void(net::SimTime, const LegacyDatagram&)>;

  explicit LegacyNetwork(LegacyLoop& loop, std::uint64_t seed = 1)
      : loop_(loop), rng_(seed) {}

  void bind(net::Endpoint ep, Handler handler) {
    handlers_[key(ep)] = std::move(handler);
  }
  void add_tap(Tap tap) { taps_.push_back(std::move(tap)); }

  void send(LegacyDatagram d) {
    for (const auto& tap : taps_) tap(loop_.now(), d);
    if (handlers_.find(key(d.dst)) == handlers_.end()) return;
    const net::SimTime delay =
        latency_.base +
        net::SimTime::nanos(static_cast<std::int64_t>(rng_.bounded(
            static_cast<std::uint64_t>(latency_.jitter.as_nanos()))));
    loop_.schedule_in(delay, [this, d = std::move(d)]() {
      auto it = handlers_.find(key(d.dst));
      if (it == handlers_.end()) return;
      Handler h = it->second;
      h(d);
    });
  }

 private:
  static std::uint64_t key(net::Endpoint e) noexcept {
    return (std::uint64_t{e.addr.value()} << 16) | e.port;
  }

  LegacyLoop& loop_;
  util::Rng rng_;
  net::LatencyModel latency_{};
  std::unordered_map<std::uint64_t, Handler> handlers_;
  std::vector<Tap> taps_;
};

/// The pre-arena capture: one owning payload vector per retained record.
class LegacyCapture {
 public:
  struct Record {
    net::SimTime time;
    net::Endpoint src;
    net::Endpoint dst;
    std::vector<std::uint8_t> payload;
  };

  void retain(net::SimTime t, const LegacyDatagram& d) {
    digest_ += util::mix64(util::Fnv1a()
                               .word_bytes(d.src.addr.value())
                               .word_bytes(d.src.port)
                               .word_bytes(d.dst.addr.value())
                               .word_bytes(d.dst.port)
                               .bytes(d.payload)
                               .value());
    records_.push_back(Record{t, d.src, d.dst, d.payload});
  }

  std::size_t size() const noexcept { return records_.size(); }
  std::uint64_t digest() const noexcept { return digest_; }
  void clear() {
    records_.clear();
    digest_ = 0;
  }

 private:
  std::vector<Record> records_;
  std::uint64_t digest_ = 0;
};

// ---- google-benchmark suite (current core only) ---------------------------

void BM_ScheduleFire(benchmark::State& state) {
  net::EventLoop loop;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i)
      loop.schedule_in(net::SimTime::micros(i), [&fired] { ++fired; });
    loop.run();
  }
  benchmark::DoNotOptimize(fired);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_ScheduleFire);

void BM_SendDeliver(benchmark::State& state) {
  const auto wire = probe_wire();
  net::EventLoop loop;
  net::Network net{loop, 1};
  const net::Endpoint prober{net::IPv4Addr(1, 1, 1, 1), 54321};
  const net::Endpoint resolver{net::IPv4Addr(2, 2, 2, 2), net::kDnsPort};
  std::uint64_t handled = 0;
  net.bind(resolver, [&handled](const net::Datagram&) { ++handled; });
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) net.send(prober, resolver, wire);
    loop.run();
  }
  benchmark::DoNotOptimize(handled);
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SendDeliver);

void BM_SendDeliverTapCapture(benchmark::State& state) {
  const auto wire = probe_wire();
  net::EventLoop loop;
  net::Network net{loop, 1};
  const net::Endpoint prober{net::IPv4Addr(1, 1, 1, 1), 54321};
  const net::Endpoint resolver{net::IPv4Addr(2, 2, 2, 2), net::kDnsPort};
  std::uint64_t handled = 0;
  net.bind(resolver, [&handled](const net::Datagram&) { ++handled; });
  net::CaptureStore store;
  store.attach(net, resolver.addr);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) net.send(prober, resolver, wire);
    loop.run();
  }
  benchmark::DoNotOptimize(handled);
  benchmark::DoNotOptimize(store.packet_count());
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SendDeliverTapCapture);

/// The same full path with the metrics registry attached to the loop — the
/// per-event cost of the observability layer (acceptance: < 5% overhead).
void BM_SendDeliverTapCaptureMetrics(benchmark::State& state) {
  const auto wire = probe_wire();
  net::EventLoop loop;
  obs::Metrics metrics(obs::builtin().schema);
  loop.set_metrics(&metrics);
  net::Network net{loop, 1};
  const net::Endpoint prober{net::IPv4Addr(1, 1, 1, 1), 54321};
  const net::Endpoint resolver{net::IPv4Addr(2, 2, 2, 2), net::kDnsPort};
  std::uint64_t handled = 0;
  net.bind(resolver, [&handled](const net::Datagram&) { ++handled; });
  net::CaptureStore store;
  store.attach(net, resolver.addr);
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) net.send(prober, resolver, wire);
    loop.run();
  }
  benchmark::DoNotOptimize(handled);
  benchmark::DoNotOptimize(store.packet_count());
  state.SetItemsProcessed(state.iterations() * 64);
}
BENCHMARK(BM_SendDeliverTapCaptureMetrics);

// ---- before/after alloc+latency table ------------------------------------

struct PacketCost {
  double ns = 0;
  double allocs = 0;
};

/// Time + count allocations over `iters` calls of `f`, each of which moves
/// `batch` packets (or events); reports the per-packet cost. Wall time is
/// the best of seven repetitions — on a shared 1-vCPU container a single
/// timed pass swings by 30%+, which would make the before/after ratios in
/// BENCH_net.json lottery draws. Allocations are exact and taken once.
template <typename F>
PacketCost measure(int iters, int batch, F&& f) {
  f();  // warm pools, heap storage, and handler maps before the clock starts
  g_alloc_count.store(0, std::memory_order_relaxed);
  g_counting.store(true, std::memory_order_relaxed);
  const double per = static_cast<double>(iters) * batch;
  double best_ns = 0;
  for (int rep = 0; rep < 7; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) f();
    const auto t1 = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count();
    if (rep == 0 || ns < best_ns) best_ns = ns;
  }
  g_counting.store(false, std::memory_order_relaxed);
  return PacketCost{best_ns / per,
                    static_cast<double>(g_alloc_count.load()) / (per * 7)};
}

void write_bench_net_json(const char* path) {
  constexpr int kIters = 2'000;
  constexpr int kBatch = 256;
  const auto wire = probe_wire();
  const net::Endpoint prober{net::IPv4Addr(1, 1, 1, 1), 54321};
  const net::Endpoint resolver{net::IPv4Addr(2, 2, 2, 2), net::kDnsPort};

  struct Row {
    const char* op;
    PacketCost before, after;
  };
  std::vector<Row> rows;

  {  // event scheduling alone: closure storage + queue maintenance
    LegacyLoop legacy_loop;
    std::uint64_t fired = 0;
    const auto before = measure(kIters, kBatch, [&] {
      for (int i = 0; i < kBatch; ++i)
        legacy_loop.schedule_in(net::SimTime::micros(i), [&fired] { ++fired; });
      legacy_loop.run();
    });
    net::EventLoop loop;
    const auto after = measure(kIters, kBatch, [&] {
      for (int i = 0; i < kBatch; ++i)
        loop.schedule_in(net::SimTime::micros(i), [&fired] { ++fired; });
      loop.run();
    });
    rows.push_back({"event_schedule_fire", before, after});
  }

  {  // heap churn: interleaved deadlines with 4-deep same-deadline runs —
     // every pop walks a full leaf path and every drain crosses a batch of
     // equal timestamps, the pattern the Floyd pop + batch-drain rework
     // targets (the plain ascending case above barely exercises either).
    LegacyLoop legacy_loop;
    std::uint64_t fired = 0;
    const auto churn_deadline = [](int i) {
      return net::SimTime::micros((i * 37) % (kBatch / 4));
    };
    const auto before = measure(kIters, kBatch, [&] {
      for (int i = 0; i < kBatch; ++i)
        legacy_loop.schedule_in(churn_deadline(i), [&fired] { ++fired; });
      legacy_loop.run();
    });
    net::EventLoop loop;
    const auto after = measure(kIters, kBatch, [&] {
      for (int i = 0; i < kBatch; ++i)
        loop.schedule_in(churn_deadline(i), [&fired] { ++fired; });
      loop.run();
    });
    rows.push_back({"event_heap_churn", before, after});
  }

  {  // delivery without capture: payload buffers + delivery closures
    LegacyLoop legacy_loop;
    LegacyNetwork legacy_net{legacy_loop, 1};
    std::uint64_t handled = 0;
    legacy_net.bind(resolver, [&handled](const LegacyDatagram&) { ++handled; });
    const auto before = measure(kIters, kBatch, [&] {
      for (int i = 0; i < kBatch; ++i)
        legacy_net.send(LegacyDatagram{prober, resolver, wire});
      legacy_loop.run();
    });
    net::EventLoop loop;
    net::Network net{loop, 1};
    net.bind(resolver, [&handled](const net::Datagram&) { ++handled; });
    const auto after = measure(kIters, kBatch, [&] {
      for (int i = 0; i < kBatch; ++i) net.send(prober, resolver, wire);
      loop.run();
    });
    rows.push_back({"send_deliver", before, after});
  }

  {  // the full steady-state path the campaign lives in: every accepted
     // packet is tapped into the capture and every delivered response is
     // retained by the receiver, the way the scanner stores R2s
    LegacyLoop legacy_loop;
    LegacyNetwork legacy_net{legacy_loop, 1};
    struct LegacyR2 {
      net::SimTime time;
      net::IPv4Addr resolver;
      std::vector<std::uint8_t> payload;  // one owning buffer per response
    };
    std::vector<LegacyR2> legacy_responses;
    legacy_net.bind(resolver, [&](const LegacyDatagram& d) {
      legacy_responses.push_back(LegacyR2{legacy_loop.now(), d.src.addr,
                                          d.payload});
    });
    LegacyCapture legacy_cap;
    legacy_net.add_tap([&](net::SimTime t, const LegacyDatagram& d) {
      if (d.dst.addr == resolver.addr) legacy_cap.retain(t, d);
    });
    const auto before = measure(kIters, kBatch, [&] {
      legacy_cap.clear();
      legacy_responses.clear();
      for (int i = 0; i < kBatch; ++i)
        legacy_net.send(LegacyDatagram{prober, resolver, wire});
      legacy_loop.run();
    });
    net::EventLoop loop;
    net::Network net{loop, 1};
    prober::R2Store responses;
    net.bind(resolver, [&](const net::Datagram& d) {
      responses.add(loop.now(), d.src.addr, d.payload);
    });
    net::CaptureStore store;
    store.attach(net, resolver.addr);
    store.reserve(kBatch, kBatch * wire.size());
    const auto after = measure(kIters, kBatch, [&] {
      store.clear();
      responses.clear();
      for (int i = 0; i < kBatch; ++i) net.send(prober, resolver, wire);
      loop.run();
    });
    rows.push_back({"send_deliver_tap_capture_retain", before, after});
  }

  // The observability tax on the same full path: identical work, but the
  // loop records into an attached Metrics instance (per-event counter bump,
  // time-in-queue histogram observe, queue-peak gauge on schedule).
  PacketCost plain, instrumented;
  {
    net::EventLoop loop;
    net::Network net{loop, 1};
    std::uint64_t handled = 0;
    net.bind(resolver, [&handled](const net::Datagram&) { ++handled; });
    net::CaptureStore store;
    store.attach(net, resolver.addr);
    store.reserve(kBatch, kBatch * wire.size());
    plain = measure(kIters, kBatch, [&] {
      store.clear();
      for (int i = 0; i < kBatch; ++i) net.send(prober, resolver, wire);
      loop.run();
    });
    obs::Metrics metrics(obs::builtin().schema);
    loop.set_metrics(&metrics);
    instrumented = measure(kIters, kBatch, [&] {
      store.clear();
      for (int i = 0; i < kBatch; ++i) net.send(prober, resolver, wire);
      loop.run();
    });
  }
  const double metrics_overhead_pct =
      (instrumented.ns - plain.ns) / plain.ns * 100.0;
  std::printf("%-26s plain  %8.1f ns %6.2f allocs | metrics %7.1f ns "
              "%6.2f allocs (%.1f%% overhead)\n",
              "metrics_on_full_path", plain.ns, plain.allocs, instrumented.ns,
              instrumented.allocs, metrics_overhead_pct);

  std::string json =
      "{\n  \"bench\": \"net_alloc\",\n  \"iters\": " + std::to_string(kIters) +
      ",\n  \"batch\": " + std::to_string(kBatch) +
      ",\n  \"unit\": \"per delivered packet\","
      "\n  \"before\": \"std::function + priority_queue / vector payloads / "
      "per-record capture buffers\","
      "\n  \"after\": \"InlineAction + binary heap / pooled PayloadRef / "
      "capture arena\",\n  \"rows\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char line[320];
    std::snprintf(line, sizeof(line),
                  "    {\"op\": \"%s\", \"before_ns\": %.1f, "
                  "\"before_allocs\": %.2f, \"after_ns\": %.1f, "
                  "\"after_allocs\": %.2f, \"speedup\": %.2f}%s\n",
                  r.op, r.before.ns, r.before.allocs, r.after.ns,
                  r.after.allocs, r.before.ns / r.after.ns,
                  i + 1 == rows.size() ? "" : ",");
    json += line;
    std::printf("%-26s before %8.1f ns %6.2f allocs | after %8.1f ns "
                "%6.2f allocs\n",
                r.op, r.before.ns, r.before.allocs, r.after.ns,
                r.after.allocs);
  }
  char obs_line[256];
  std::snprintf(obs_line, sizeof(obs_line),
                "  ],\n  \"metrics_on_full_path\": {\"plain_ns\": %.1f, "
                "\"instrumented_ns\": %.1f, \"instrumented_allocs\": %.2f, "
                "\"overhead_pct\": %.1f}\n}\n",
                plain.ns, instrumented.ns, instrumented.allocs,
                metrics_overhead_pct);
  json += obs_line;
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path);
  }
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  write_bench_net_json("BENCH_net.json");
  return 0;
}
