// Microbenchmarks: scanning substrate — permutation stepping, exclusion
// checks, rate limiting, and the end-to-end event throughput of a scaled
// campaign. These bound how close to ZMap's "IPv4 in one hour" envelope the
// simulated prober can get.
#include <benchmark/benchmark.h>

#include "core/paper_data.h"
#include "core/pipeline.h"
#include "net/reserved.h"
#include "prober/permutation.h"
#include "prober/rate_limiter.h"
#include "resolver/cache.h"

namespace {

using namespace orp;

void BM_PermutationStep(benchmark::State& state) {
  prober::CyclicPermutation perm(42);
  for (auto _ : state) benchmark::DoNotOptimize(perm.next_raw());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PermutationStep);

void BM_PermutationRandomAccess(benchmark::State& state) {
  const prober::CyclicPermutation perm(42);
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm.raw_at(k));
    k = (k + 0x9E3779B9) & 0xFFFFFFFF;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PermutationRandomAccess);

void BM_ReservedCheck(benchmark::State& state) {
  prober::CyclicPermutation perm(42);
  for (auto _ : state) {
    const auto addr = perm.next_address();
    benchmark::DoNotOptimize(net::is_reserved(*addr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReservedCheck);

void BM_RateLimiter(benchmark::State& state) {
  prober::RateLimiter limiter(1e9, 1024);
  net::SimTime now;
  net::SimTime ready;
  for (auto _ : state) {
    now += net::SimTime::micros(1);
    benchmark::DoNotOptimize(limiter.try_acquire(64, now, ready));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RateLimiter);

void BM_DnsCacheHit(benchmark::State& state) {
  resolver::DnsCache cache(1024);
  const auto name = dns::DnsName::must_parse("www.example.net");
  cache.put(name, dns::RRType::kA,
            {dns::ResourceRecord{name, dns::RRType::kA, dns::RRClass::kIN,
                                 3600, dns::ARdata{net::IPv4Addr(1, 2, 3, 4)}}},
            net::SimTime::seconds(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.get(name, dns::RRType::kA, net::SimTime::seconds(1)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DnsCacheHit);

/// Full campaign at a coarse scale: measures simulated-packets per real
/// second across the entire pipeline (population, planting, scan, analysis).
void BM_FullCampaign2018(benchmark::State& state) {
  const auto scale = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t probes = 0;
  for (auto _ : state) {
    core::PipelineConfig cfg;
    cfg.scale = scale;
    cfg.seed = 42;
    const core::ScanOutcome o = core::run_measurement(core::paper_2018(), cfg);
    probes += o.scan.q1_sent;
    benchmark::DoNotOptimize(o.analysis.answers.correct);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(probes));
  state.counters["probes_per_s"] = benchmark::Counter(
      static_cast<double>(probes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullCampaign2018)->Arg(16384)->Arg(8192)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
