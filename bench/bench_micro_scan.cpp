// Microbenchmarks: scanning substrate — permutation stepping, exclusion
// checks, rate limiting, and the end-to-end event throughput of a scaled
// campaign. These bound how close to ZMap's "IPv4 in one hour" envelope the
// simulated prober can get.
//
// Besides the google-benchmark suite, the binary runs a threads-axis sweep
// of the full campaign (threads = 1/2/4/8 at the default 1/1024 scale) and
// writes BENCH_scan.json so future PRs have a machine-readable perf
// trajectory to compare against.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>

#include "core/paper_data.h"
#include "core/pipeline.h"
#include "net/reserved.h"
#include "prober/permutation.h"
#include "prober/rate_limiter.h"
#include "resolver/cache.h"

namespace {

using namespace orp;

void BM_PermutationStep(benchmark::State& state) {
  prober::CyclicPermutation perm(42);
  for (auto _ : state) benchmark::DoNotOptimize(perm.next_raw());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PermutationStep);

void BM_PermutationRandomAccess(benchmark::State& state) {
  const prober::CyclicPermutation perm(42);
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(perm.raw_at(k));
    k = (k + 0x9E3779B9) & 0xFFFFFFFF;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PermutationRandomAccess);

void BM_ReservedCheck(benchmark::State& state) {
  prober::CyclicPermutation perm(42);
  for (auto _ : state) {
    const auto addr = perm.next_address();
    benchmark::DoNotOptimize(net::is_reserved(*addr));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReservedCheck);

void BM_RateLimiter(benchmark::State& state) {
  prober::RateLimiter limiter(1e9, 1024);
  net::SimTime now;
  net::SimTime ready;
  for (auto _ : state) {
    now += net::SimTime::micros(1);
    benchmark::DoNotOptimize(limiter.try_acquire(64, now, ready));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RateLimiter);

void BM_DnsCacheHit(benchmark::State& state) {
  resolver::DnsCache cache(1024);
  const auto name = dns::DnsName::must_parse("www.example.net");
  cache.put(name, dns::RRType::kA,
            {dns::ResourceRecord{name, dns::RRType::kA, dns::RRClass::kIN,
                                 3600, dns::ARdata{net::IPv4Addr(1, 2, 3, 4)}}},
            net::SimTime::seconds(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        cache.get(name, dns::RRType::kA, net::SimTime::seconds(1)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DnsCacheHit);

/// Full campaign at a coarse scale: measures simulated-packets per real
/// second across the entire pipeline (population, planting, scan, analysis).
void BM_FullCampaign2018(benchmark::State& state) {
  const auto scale = static_cast<std::uint64_t>(state.range(0));
  std::uint64_t probes = 0;
  for (auto _ : state) {
    core::PipelineConfig cfg;
    cfg.scale = scale;
    cfg.seed = 42;
    const core::ScanOutcome o = core::run_measurement(core::paper_2018(), cfg);
    probes += o.scan.q1_sent;
    benchmark::DoNotOptimize(o.analysis.answers.correct);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(probes));
  state.counters["probes_per_s"] = benchmark::Counter(
      static_cast<double>(probes), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullCampaign2018)->Arg(16384)->Arg(8192)->Unit(benchmark::kMillisecond);

/// Sharded campaign at the default scale, threads on the x-axis.
void BM_FullCampaignThreads(benchmark::State& state) {
  const auto threads = static_cast<unsigned>(state.range(0));
  std::uint64_t events = 0;
  for (auto _ : state) {
    core::PipelineConfig cfg;
    cfg.scale = 8192;
    cfg.seed = 42;
    cfg.threads = threads;
    const core::ScanOutcome o = core::run_measurement(core::paper_2018(), cfg);
    events += o.events_executed;
    benchmark::DoNotOptimize(o.capture_digest);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
  state.counters["events_per_s"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FullCampaignThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// One timed campaign run; returns (wall seconds, events executed).
/// `instrumented` turns the full observability layer on (metrics + 1/64 flow
/// tracing) — the delta against the plain run is the instrumentation tax.
std::pair<double, std::uint64_t> timed_campaign(unsigned threads,
                                                bool instrumented = false) {
  core::PipelineConfig cfg;
  cfg.scale = 1024;  // the default scale the acceptance target is set at
  cfg.seed = 42;
  cfg.threads = threads;
  if (instrumented) {
    cfg.obs.metrics = true;
    cfg.obs.trace_sample_every = 64;
  }
  const auto t0 = std::chrono::steady_clock::now();
  const core::ScanOutcome o = core::run_measurement(core::paper_2018(), cfg);
  const auto t1 = std::chrono::steady_clock::now();
  const double wall = std::chrono::duration<double>(t1 - t0).count();
  return {wall, o.events_executed};
}

/// Write `json` to `path`; false (and a message on stderr) on any emit
/// error, so CI can gate on the artifact actually landing.
bool emit_json(const char* path, const std::string& json) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_micro_scan: cannot open %s for write\n", path);
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  const bool closed = std::fclose(f) == 0;
  if (!ok || !closed)
    std::fprintf(stderr, "bench_micro_scan: short write to %s\n", path);
  return ok && closed;
}

/// CI smoke mode (--quick): one single-shard campaign, minimal JSON, no
/// google-benchmark sweep. Exists so the pre-merge gate exercises the whole
/// bench path (campaign + JSON emit) in seconds.
bool write_bench_scan_quick_json(const char* path) {
  const auto [wall, events] = timed_campaign(1);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\n  \"bench\": \"scan_threads_quick\",\n  \"threads\": 1,\n"
                "  \"wall_seconds\": %.3f,\n  \"events\": %llu,\n"
                "  \"events_per_sec\": %.0f\n}\n",
                wall, static_cast<unsigned long long>(events),
                static_cast<double>(events) / wall);
  std::printf("quick: threads=1  wall=%.3fs  events/s=%.0f\n", wall,
              static_cast<double>(events) / wall);
  return emit_json(path, buf);
}

/// The machine-readable perf trajectory: threads -> wall-seconds, events/s.
/// hardware_concurrency is recorded because the speedup column is only
/// meaningful relative to the cores the run actually had — on a 1-vCPU
/// container every thread count serializes and the walls are near-flat.
bool write_bench_scan_json(const char* path) {
  // Best-of-N per thread count: on a shared container a single wall-clock
  // sample swings by 10%+ with neighbor load, which is larger than most of
  // the deltas this file exists to record. The minimum of N runs estimates
  // the unloaded cost; N is recorded so readers know what the numbers are.
  constexpr int kRuns = 5;
  const unsigned cores = std::thread::hardware_concurrency();
  std::string json = "{\n  \"bench\": \"scan_threads\",\n"
                     "  \"year\": 2018,\n  \"scale\": 1024,\n"
                     "  \"seed\": 42,\n  \"runs_per_point\": " +
                     std::to_string(kRuns) +
                     ",\n  \"wall_seconds_is\": \"best_of_runs\","
                     "\n  \"hardware_concurrency\": " +
                     std::to_string(cores) + ",\n  \"results\": [\n";
  double wall_t1 = 0, wall_t4 = 0;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    double wall = 1e9;
    std::uint64_t events = 0;
    for (int run = 0; run < kRuns; ++run) {
      const auto [w, e] = timed_campaign(threads);
      wall = std::min(wall, w);
      events = e;  // deterministic for a fixed thread count
    }
    if (threads == 1) wall_t1 = wall;
    if (threads == 4) wall_t4 = wall;
    char row[256];
    std::snprintf(row, sizeof(row),
                  "    {\"threads\": %u, \"wall_seconds\": %.3f, "
                  "\"events\": %llu, \"events_per_sec\": %.0f}%s\n",
                  threads, wall, static_cast<unsigned long long>(events),
                  static_cast<double>(events) / wall,
                  threads == 8 ? "" : ",");
    json += row;
    std::printf("threads=%u  best-of-%d wall=%.3fs  events/s=%.0f\n", threads,
                kRuns, wall, static_cast<double>(events) / wall);
  }
  // The instrumentation tax: the same campaign with the observability layer
  // fully on (metrics + 1/64 flow tracing), single-shard so the comparison
  // is not muddied by scheduling noise. Interleaved best-of-7 on both sides
  // — single runs on a shared container swing by 10%+, which would drown
  // the signal. Acceptance: ≤ 5%.
  double best_plain = wall_t1, wall_obs = 1e9;
  std::uint64_t events_obs = 0;
  for (int i = 0; i < 7; ++i) {
    best_plain = std::min(best_plain, timed_campaign(1).first);
    const auto [wall, events] = timed_campaign(1, /*instrumented=*/true);
    if (wall < wall_obs) {
      wall_obs = wall;
      events_obs = events;
    }
  }
  const double overhead_pct = (wall_obs - best_plain) / best_plain * 100.0;
  std::printf("threads=1 (obs on)  wall=%.3fs  events/s=%.0f  "
              "overhead=%.1f%%\n",
              wall_obs, static_cast<double>(events_obs) / wall_obs,
              overhead_pct);
  char tail[256];
  std::snprintf(tail, sizeof(tail),
                "  ],\n  \"speedup_t4_vs_t1\": %.2f,\n"
                "  \"instrumented\": {\"threads\": 1, \"wall_seconds\": %.3f, "
                "\"overhead_pct\": %.1f}\n}\n",
                wall_t1 / wall_t4, wall_obs, overhead_pct);
  json += tail;
  if (!emit_json(path, json)) return false;
  std::printf("wrote %s (speedup t4 vs t1: %.2fx)\n", path,
              wall_t1 / wall_t4);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our own flag before benchmark::Initialize sees the argv —
  // ReportUnrecognizedArguments treats anything it doesn't know as fatal.
  bool quick = false;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--quick")
      quick = true;
    else
      argv[kept++] = argv[i];
  }
  argc = kept;
  argv[argc] = nullptr;
  if (quick) return write_bench_scan_quick_json("BENCH_scan.quick.json") ? 0 : 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return write_bench_scan_json("BENCH_scan.json") ? 0 : 1;
}
