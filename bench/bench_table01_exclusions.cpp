// Table I: the RFC-reserved blocks excluded from probing.
//
// No scan needed — this bench verifies the exclusion-table arithmetic
// (including the paper's own Total-row slip) and measures the cost of the
// membership test the scanner pays per generated target.
#include <chrono>

#include "bench_common.h"
#include "net/reserved.h"
#include "prober/permutation.h"

int main() {
  using namespace orp;
  bench::print_header("Table I — excluded address blocks",
                      "paper §III-A1, Table I");

  util::TextTable t({"Address Block", "RFC", "#"});
  t.set_align(1, util::Align::kLeft);
  for (const auto& block : net::reserved_blocks()) {
    t.add_row({block.prefix.to_string(), std::string(block.rfc),
               util::with_commas(block.prefix.size())});
  }
  t.add_separator();
  t.add_row({"Total (paper, misprinted)", "-",
             util::with_commas(net::paper_table1_total())});
  t.add_row({"Total (recomputed)", "-",
             util::with_commas(net::reserved_address_count())});
  t.add_row({"Unique reserved (255/32 overlaps 240/4)", "-",
             util::with_commas(net::reserved_address_count() - 1)});
  t.add_row({"Probeable = 2^32 - unique", "-",
             util::with_commas(net::probeable_address_count())});
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nnote: the paper's printed total is short by exactly one /8 "
      "(16,777,216); the\nprobeable count equals Table II's 2018 Q1 of "
      "3,702,258,432 to the packet.\n\n");

  // Membership-test throughput over the scanner's own address stream.
  orp::prober::CyclicPermutation perm(1);
  constexpr int kProbes = 4'000'000;
  std::uint64_t reserved = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kProbes; ++i) {
    const auto addr = perm.next_address();
    if (addr && net::is_reserved(*addr)) ++reserved;
  }
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  std::printf(
      "is_reserved() over %s permuted addresses: %.2f Mops/s "
      "(%.1f%% reserved; expect 13.80%%)\n",
      util::with_commas(kProbes).c_str(), kProbes / elapsed / 1e6,
      100.0 * static_cast<double>(reserved) / kProbes);
  return 0;
}
