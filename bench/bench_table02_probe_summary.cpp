// Table II: the probing summary — Q1 / Q2,R1 / R2 counts, percentages, and
// campaign duration for both years.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace orp;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Table II — open-resolver probing summary",
                      "paper §IV, Table II");

  const core::ScanOutcome o13 = bench::run_year(core::paper_2013(), opts);
  const core::ScanOutcome o18 = bench::run_year(core::paper_2018(), opts);

  util::TextTable t({"", "Duration", "Q1", "Q2,R1 (%)", "R2 (%)"});
  auto row = [&](const char* label, double dur_s, std::uint64_t q1,
                 std::uint64_t q2, std::uint64_t r2) {
    t.add_row({label, util::human_duration(dur_s), util::with_commas(q1),
               util::with_commas(q2) + " (" +
                   util::fixed(util::percent(q2, q1), 4) + ")",
               util::with_commas(r2) + " (" +
                   util::fixed(util::percent(r2, q1), 4) + ")"});
  };
  const auto& p13 = core::paper_2013();
  const auto& p18 = core::paper_2018();
  row("2013 paper", p13.duration_seconds, p13.q1, p13.q2_r1, p13.r2);
  row("2013 paper/scale", p13.duration_seconds, o13.expect(p13.q1),
      o13.expect(p13.q2_r1), o13.expect(p13.r2));
  row("2013 measured", o13.sim_duration_seconds, o13.scan.q1_sent,
      o13.auth.queries_received, o13.scan.r2_received);
  t.add_separator();
  row("2018 paper", p18.duration_seconds, p18.q1, p18.q2_r1, p18.r2);
  row("2018 paper/scale", p18.duration_seconds, o18.expect(p18.q1),
      o18.expect(p18.q2_r1), o18.expect(p18.r2));
  row("2018 measured", o18.sim_duration_seconds, o18.scan.q1_sent,
      o18.auth.queries_received, o18.scan.r2_received);
  std::printf("%s", t.render().c_str());

  std::printf(
      "\nshape checks: Q2/Q1 ratio falls ~3x from 2013 to 2018 (paper: "
      "1.04%% -> 0.35%%),\nR2/Q1 falls ~2.6x (0.45%% -> 0.18%%); the "
      "simulated durations recover the paper's\nweek-long 2013 scan vs the "
      "half-day 2018 scan from the same rate arithmetic.\n");
  std::printf("\n2013 measured Q2/Q1 = %.4f%%, R2/Q1 = %.4f%%\n",
              util::percent(o13.auth.queries_received, o13.scan.q1_sent),
              util::percent(o13.scan.r2_received, o13.scan.q1_sent));
  std::printf("2018 measured Q2/Q1 = %.4f%%, R2/Q1 = %.4f%%\n",
              util::percent(o18.auth.queries_received, o18.scan.q1_sent),
              util::percent(o18.scan.r2_received, o18.scan.q1_sent));
  return 0;
}
