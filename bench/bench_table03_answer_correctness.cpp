// Table III: presence and correctness of dns_answer in R2.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace orp;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Table III — answer presence and correctness",
                      "paper §IV-A, Table III");

  const core::ScanOutcome o13 = bench::run_year(core::paper_2013(), opts);
  const core::ScanOutcome o18 = bench::run_year(core::paper_2018(), opts);

  analysis::AnswerRows rows;
  auto scaled = [](const analysis::AnswerBreakdown& b, const core::ScanOutcome& o) {
    analysis::AnswerBreakdown s;
    s.r2 = o.expect(b.r2);
    s.without_answer = o.expect(b.without_answer);
    s.correct = o.expect(b.correct);
    s.incorrect = o.expect(b.incorrect);
    return s;
  };
  rows.emplace_back("2013 paper", core::paper_2013().answers);
  rows.emplace_back("2013 paper/scale",
                    scaled(core::paper_2013().answers, o13));
  rows.emplace_back("2013 measured", o13.analysis.answers);
  rows.emplace_back("2018 paper", core::paper_2018().answers);
  rows.emplace_back("2018 paper/scale",
                    scaled(core::paper_2018().answers, o18));
  rows.emplace_back("2018 measured", o18.analysis.answers);
  std::printf("%s", analysis::render_answer_table(rows).c_str());

  std::printf(
      "\nshape check: the error rate roughly quadruples 2013 -> 2018 "
      "(paper 1.029%% -> 3.879%%;\nmeasured %.3f%% -> %.3f%%) while the "
      "incorrect-answer volume stays near constant.\n",
      o13.analysis.answers.err_percent(), o18.analysis.answers.err_percent());
  return 0;
}
