// Table IV: the Recursion Available flag vs answer correctness.
#include "bench_common.h"

#include "core/contrast.h"

int main(int argc, char** argv) {
  using namespace orp;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Table IV — RA flag behavior",
                      "paper §IV-B1, Table IV");

  const core::ScanOutcome o13 = bench::run_year(core::paper_2013(), opts);
  const core::ScanOutcome o18 = bench::run_year(core::paper_2018(), opts);

  analysis::FlagRows rows;
  rows.emplace_back("2013 paper", core::paper_2013().ra);
  rows.emplace_back("2013 measured", o13.analysis.ra);
  rows.emplace_back("2018 paper", core::paper_2018().ra);
  rows.emplace_back("2018 measured", o18.analysis.ra);
  std::printf("%s", analysis::render_flag_table(rows, "RA").c_str());

  std::printf(
      "\nshape checks (2018): RA=0 responses that still carry an answer are "
      "~94%% wrong\n(measured %.1f%%); RA=1 answers are ~1.6%% wrong "
      "(measured %.1f%%).\n",
      o18.analysis.ra.bit0.err_percent(), o18.analysis.ra.bit1.err_percent());

  // §IV-B1's three open-resolver estimates.
  const auto est13 = core::estimate_open_resolvers(o13.analysis);
  const auto est18 = core::estimate_open_resolvers(o18.analysis);
  util::TextTable t({"Open-resolver estimate", "2013", "2018"});
  t.add_row({"strict (RA=1 & correct) paper", "11,505,481", "2,748,568"});
  t.add_row({"strict measured", util::with_commas(est13.strict),
             util::with_commas(est18.strict)});
  t.add_row({"RA flag only paper", "12,270,335", "3,002,183"});
  t.add_row({"RA flag only measured", util::with_commas(est13.ra_flag_only),
             util::with_commas(est18.ra_flag_only)});
  t.add_row({"correct only paper", "11,671,589", "2,752,562"});
  t.add_row({"correct only measured", util::with_commas(est13.correct_only),
             util::with_commas(est18.correct_only)});
  std::printf("\n%s", t.render().c_str());
  return 0;
}
