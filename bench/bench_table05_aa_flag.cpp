// Table V: the Authoritative Answer flag vs answer correctness.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace orp;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Table V — AA flag behavior", "paper §IV-B2, Table V");

  const core::ScanOutcome o13 = bench::run_year(core::paper_2013(), opts);
  const core::ScanOutcome o18 = bench::run_year(core::paper_2018(), opts);

  analysis::FlagRows rows;
  rows.emplace_back("2013 paper", core::paper_2013().aa);
  rows.emplace_back("2013 measured", o13.analysis.aa);
  rows.emplace_back("2018 paper", core::paper_2018().aa);
  rows.emplace_back("2018 measured", o18.analysis.aa);
  std::printf("%s", analysis::render_flag_table(rows, "AA").c_str());

  std::printf(
      "\nshape checks: only the measurement's own authoritative server may "
      "truthfully set AA=1,\nyet thousands of responses claim it; their "
      "error rate doubles 2013 -> 2018\n(paper 20.5%% -> 78.9%%; measured "
      "%.1f%% -> %.1f%%). AA=0 answers stay ~99%% correct.\n",
      o13.analysis.aa.bit1.err_percent(), o18.analysis.aa.bit1.err_percent());
  return 0;
}
