// Table VI: response-code distribution split by answer presence.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace orp;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Table VI — rcode distribution", "paper §IV-B3, Table VI");

  const core::ScanOutcome o13 = bench::run_year(core::paper_2013(), opts);
  const core::ScanOutcome o18 = bench::run_year(core::paper_2018(), opts);

  analysis::RcodeRows rows;
  rows.emplace_back("2013 paper", core::paper_2013().rcodes);
  rows.emplace_back("2013 measured", o13.analysis.rcodes);
  rows.emplace_back("2018 paper", core::paper_2018().rcodes);
  rows.emplace_back("2018 measured", o18.analysis.rcodes);
  std::printf("%s", analysis::render_rcode_table(rows).c_str());

  std::printf(
      "\nanomaly checks the paper calls out:\n"
      "  error-rcode WITH answer (paper 14,005 in 2013; 2,715 in 2018): "
      "measured %s / %s\n"
      "  NoError WITHOUT answer (paper 1,198,772 / 377,803): measured %s / "
      "%s\n"
      "  NotAuth grows 11 -> 80,032: measured %s -> %s\n",
      util::with_commas(o13.analysis.rcodes.error_rcode_with_answer()).c_str(),
      util::with_commas(o18.analysis.rcodes.error_rcode_with_answer()).c_str(),
      util::with_commas(o13.analysis.rcodes.noerror_without_answer()).c_str(),
      util::with_commas(o18.analysis.rcodes.noerror_without_answer()).c_str(),
      util::with_commas(
          o13.analysis.rcodes.row(dns::Rcode::kNotAuth).total())
          .c_str(),
      util::with_commas(
          o18.analysis.rcodes.row(dns::Rcode::kNotAuth).total())
          .c_str());
  return 0;
}
