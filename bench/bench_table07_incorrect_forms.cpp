// Table VII: the form of incorrect answers (IP / URL / string / N-A).
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace orp;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Table VII — incorrect answer forms",
                      "paper §IV-C, Table VII");

  const core::ScanOutcome o13 = bench::run_year(core::paper_2013(), opts);
  const core::ScanOutcome o18 = bench::run_year(core::paper_2018(), opts);

  analysis::IncorrectRows rows;
  rows.emplace_back("2013 paper", core::paper_2013().incorrect);
  rows.emplace_back("2013 measured", o13.analysis.incorrect);
  rows.emplace_back("2018 paper", core::paper_2018().incorrect);
  rows.emplace_back("2018 measured", o18.analysis.incorrect);
  std::printf("%s", analysis::render_incorrect_table(rows).c_str());

  std::printf(
      "\nshape checks: wrong-IP answers dominate (>99%% of incorrect "
      "responses in both years);\nURL and garbage-string answers are rare "
      "but persistent; undecodable answers (N/A)\nappear only in the 2013 "
      "corpus (paper 8,764; measured %s in 2013, %s in 2018).\n"
      "note: unique-value counts shrink with the sample (a 1/N sample of "
      "R2 responses\ncannot retain all distinct tail values), so #unique is "
      "a lower bound at scale.\n",
      util::with_commas(o13.analysis.incorrect.na.r2).c_str(),
      util::with_commas(o18.analysis.incorrect.na.r2).c_str());
  return 0;
}
