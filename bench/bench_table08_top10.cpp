// Table VIII: the top-10 addresses appearing in incorrect DNS responses,
// with org attribution and threat-intel hits.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace orp;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Table VIII — top-10 incorrect-answer addresses",
                      "paper §IV-C1, Table VIII (+ §IV-C1 prose for 2013)");

  for (const auto* year : {&core::paper_2013(), &core::paper_2018()}) {
    const core::ScanOutcome o = bench::run_year(*year, opts);

    std::printf("\n--- %d paper ---\n", year->year);
    util::TextTable t({"IP address", "#", "Org Name", "Reports"});
    t.set_align(2, util::Align::kLeft);
    std::uint64_t total = 0;
    for (const auto& e : year->top10) {
      total += e.count;
      t.add_row({e.addr + (e.reconstructed ? " *" : ""),
                 util::with_commas(e.count), e.org,
                 e.reported == '-' ? "N/A" : std::string(1, e.reported)});
    }
    t.add_separator();
    t.add_row({"Total", util::with_commas(total), "-", "-"});
    std::printf("%s", t.render().c_str());
    if (year->year == 2013)
      std::printf("(* = count reconstructed from prose; see DESIGN.md)\n");

    std::printf("\n--- %d measured (at 1/%llu scale) ---\n", year->year,
                static_cast<unsigned long long>(opts.scale));
    std::printf("%s", analysis::render_top10_table(o.analysis.top10).c_str());
  }
  std::printf(
      "\nshape checks: the head address carries ~20%% of all incorrect "
      "answers; private\naddresses (192.168/16, 10/8, 172.16/12) fill "
      "several slots; the reported-Y rows\n(74.220.199.15, 208.91.197.91, "
      "141.8.225.68 in 2018) are the malicious heads.\n");
  return 0;
}
