// Table IX: malicious IP addresses in R2 packets, by threat category.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace orp;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Table IX — malicious answers by category",
                      "paper §IV-C2, Table IX");

  const core::ScanOutcome o13 = bench::run_year(core::paper_2013(), opts);
  const core::ScanOutcome o18 = bench::run_year(core::paper_2018(), opts);

  // Paper rows rebuilt as MaliciousSummary structs for uniform rendering.
  auto paper_summary = [](const core::PaperYear& y) {
    analysis::MaliciousSummary s;
    for (const auto& c : y.categories) {
      s.categories[static_cast<std::size_t>(c.category)] =
          analysis::CategoryRow{c.unique_ips, c.r2};
    }
    s.total_ips = y.malicious_ips;
    s.total_r2 = y.malicious_r2;
    return s;
  };

  analysis::MaliciousRows rows;
  rows.emplace_back("2013 paper", paper_summary(core::paper_2013()));
  rows.emplace_back("2013 meas", o13.analysis.malicious);
  rows.emplace_back("2018 paper", paper_summary(core::paper_2018()));
  rows.emplace_back("2018 meas", o18.analysis.malicious);
  std::printf("%s", analysis::render_malicious_table(rows).c_str());

  std::printf(
      "\nshape checks: malware holds ~86%% of malicious R2 in both years; "
      "phishing's share of\nunique addresses doubles 2013 -> 2018 (19%% -> "
      "37%%); total malicious R2 roughly\ndoubles (paper 12,874 -> 26,926; "
      "measured %s -> %s at this scale) while the\noverall resolver count "
      "falls — the paper's headline finding.\n",
      util::with_commas(o13.analysis.malicious.total_r2).c_str(),
      util::with_commas(o18.analysis.malicious.total_r2).c_str());
  return 0;
}
