// Table X: RA/AA flags on the malicious responses.
#include "bench_common.h"

int main(int argc, char** argv) {
  using namespace orp;
  const auto opts = bench::parse_options(argc, argv);
  bench::print_header("Table X — header flags on malicious responses",
                      "paper §IV-C3, Table X");

  const core::ScanOutcome o18 = bench::run_year(core::paper_2018(), opts);
  const core::ScanOutcome o13 = bench::run_year(core::paper_2013(), opts);

  auto paper_summary = [](const core::PaperYear& y) {
    analysis::MaliciousSummary s;
    s.total_r2 = y.malicious_r2;
    s.ra0 = y.mal_ra0;
    s.ra1 = y.mal_ra1;
    s.aa0 = y.mal_aa0;
    s.aa1 = y.mal_aa1;
    s.rcode_noerror = y.malicious_r2;  // §IV-C3: all NoError
    return s;
  };

  analysis::MaliciousRows rows;
  rows.emplace_back("2018 paper (Table X)", paper_summary(core::paper_2018()));
  rows.emplace_back("2018 measured", o18.analysis.malicious);
  rows.emplace_back("2013 extrapolated*", paper_summary(core::paper_2013()));
  rows.emplace_back("2013 measured", o13.analysis.malicious);
  std::printf("%s", analysis::render_malicious_flags_table(rows).c_str());
  std::printf(
      "(* Table X is published for 2018 only; the 2013 row extrapolates "
      "pro-rata the\n   2013 incorrect-answer flag distribution — see "
      "paper_data.cpp)\n");

  std::printf(
      "\nshape checks (2018): malicious responses invert the flag norms — "
      "~72%% claim RA=0\nwhile still answering, ~72%% claim AA=1 for a zone "
      "they do not serve, and 100%%\ncarry rcode NoError to look "
      "trustworthy. Measured: RA0 %.1f%%, AA1 %.1f%%, NoError %s/%s.\n",
      util::percent(o18.analysis.malicious.ra0,
                    o18.analysis.malicious.total_r2),
      util::percent(o18.analysis.malicious.aa1,
                    o18.analysis.malicious.total_r2),
      util::with_commas(o18.analysis.malicious.rcode_noerror).c_str(),
      util::with_commas(o18.analysis.malicious.total_r2).c_str());
  return 0;
}
