// bench_tcp_fallback: the amplification-resiliency study behind the stream
// transport (DESIGN.md "Stream transport").
//
// The paper's §II-C threat is reflection: a spoofed UDP query to an open
// resolver lands an amplified answer on the victim. The classic defense
// pair is server-side truncation (cap UDP answers, TC=1) plus DoTCP
// fallback (RFC 7766): the reflected stub is small, and the full answer
// moves to a transport that requires return-routability. This bench runs
// the same probe campaign against each resolver profile twice —
//
//   leg 1, UDP-only: truncation off. amp = UDP bytes out / bytes in,
//     the classic reflector factor, measured at the resolver by a tap.
//   leg 2, defended: server-side UDP cap (and, per variant, TCP service),
//     scanner DoTCP fallback on. The reflected (spoofable) UDP bytes come
//     from the tap; the TCP bytes come from the scanner's per-connection
//     accounting and are reported as attacker cost, never amplification.
//
// Emits BENCH_tcp.json and exits non-zero if any truncating profile fails
// to reduce spoofable amplification versus its UDP-only leg — that drop is
// the acceptance criterion, checked here rather than by a reader.
//
//   ./bench_tcp_fallback [out.json] [hosts_per_profile] [seed]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "analysis/amplification.h"
#include "authns/auth_server.h"
#include "prober/permutation.h"
#include "prober/scanner.h"
#include "resolver/scripted_resolver.h"
#include "zone/cluster.h"

using namespace orp;

namespace {

struct Variant {
  const char* label;
  bool fat_answers;    // garbage-TXT answers (~310 B) vs small A (~70 B)
  std::uint16_t cap;   // defended-leg server-side UDP limit
  bool tcp_service;    // defended-leg resolver listens on TCP
};

// An ad-style TXT payload near the 255-byte character-string ceiling: the
// fattest single answer a manipulating resolver in the modeled population
// returns (Table VII "string" answers are this shape).
std::string fat_text() {
  std::string t;
  while (t.size() < 230) t += "BUY-NOW.example/offer?id=1337&ref=dns ";
  t.resize(230);
  return t;
}

resolver::BehaviorProfile profile_for(const Variant& v, bool defended) {
  resolver::BehaviorProfile p;
  if (v.fat_answers) {
    p.answer = resolver::AnswerMode::kGarbageString;
    p.text_answer = fat_text();
  } else {
    p.answer = resolver::AnswerMode::kFixedIp;
    p.fixed_answer = net::IPv4Addr(203, 0, 113, 77);
  }
  if (defended) {
    p.udp_limit = v.cap;
    p.tcp = v.tcp_service;
  }
  return p;
}

struct LegResult {
  analysis::ByteLeg udp;      // at the resolver: in = queries, out = answers
  prober::ScanStats stats;
};

/// One self-contained simulated world: `hosts` resolvers with `profile`
/// planted on the scan order, probed by one scanner. The tap accounts every
/// UDP byte that crosses the planted resolvers' port 53.
LegResult run_leg(const resolver::BehaviorProfile& profile, int hosts,
                  std::uint64_t seed, bool fallback) {
  net::EventLoop loop;
  net::Network net(loop, seed);
  net.set_latency({net::SimTime::millis(2), net::SimTime::millis(1)});
  const zone::SubdomainScheme scheme(
      dns::DnsName::must_parse("ucfsealresearch.net"), 64, 7);
  authns::AuthServer auth(net, net::IPv4Addr(45, 76, 18, 21), scheme,
                          net::SimTime::nanos(0));
  const auto hierarchy = resolver::build_hierarchy(
      net, scheme.sld(), scheme.sld().child("ns1"), auth.address(), 1);
  resolver::EngineConfig engine_config;
  engine_config.hints = hierarchy.hints;

  const auto params = prober::derive_params(seed);
  const prober::CyclicPermutation perm(params.generator, params.start);
  std::vector<std::unique_ptr<resolver::ResolverHost>> planted;
  std::unordered_set<std::uint32_t> planted_addrs;
  std::uint64_t k = 50;
  for (int i = 0; i < hosts; ++i, ++k) {
    std::uint64_t raw = perm.raw_at(k);
    while (raw >= (std::uint64_t{1} << 32) ||
           net::is_reserved(net::IPv4Addr(static_cast<std::uint32_t>(raw))) ||
           net.bound(net::Endpoint{net::IPv4Addr(static_cast<std::uint32_t>(raw)),
                                   net::kDnsPort}))
      raw = perm.raw_at(++k);
    const net::IPv4Addr addr(static_cast<std::uint32_t>(raw));
    planted.push_back(std::make_unique<resolver::ResolverHost>(
        net, addr, profile, engine_config, planted.size() + 1));
    planted_addrs.insert(addr.value());
  }

  LegResult leg;
  net.add_tap([&](net::SimTime, const net::Datagram& d) {
    if (d.dst.port == net::kDnsPort && planted_addrs.count(d.dst.addr.value()))
      leg.udp.bytes_in += d.payload.size();
    if (d.src.port == net::kDnsPort && planted_addrs.count(d.src.addr.value()))
      leg.udp.bytes_out += d.payload.size();
  });

  prober::ScanConfig cfg;
  cfg.seed = seed;
  cfg.rate_pps = 100000;
  cfg.raw_steps = k + 50;  // covers every planted position
  cfg.response_timeout = net::SimTime::seconds(2.0);
  cfg.reap_interval = net::SimTime::millis(500);
  cfg.tcp_fallback = fallback;
  cfg.tcp_timeout = net::SimTime::seconds(3.0);
  prober::Scanner scanner(net, net::IPv4Addr(132, 170, 3, 44), cfg, scheme);
  scanner.start([] {});
  loop.run();
  leg.stats = scanner.stats();
  return leg;
}

}  // namespace

int main(int argc, char** argv) {
  const char* out_path = argc > 1 ? argv[1] : "BENCH_tcp.json";
  const int hosts = argc > 2 ? std::atoi(argv[2]) : 12;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 1;

  const Variant variants[] = {
      {"small A answers, cap 512 + DoTCP", false, 512, true},
      {"fat TXT answers, cap 128 + DoTCP", true, 128, true},
      {"fat TXT answers, cap 200 + DoTCP", true, 200, true},
      {"fat TXT answers, cap 128, no TCP service", true, 128, false},
  };

  analysis::AmplificationReport report;
  bool ok = true;
  for (const Variant& v : variants) {
    const LegResult udp_only =
        run_leg(profile_for(v, /*defended=*/false), hosts, seed, false);
    const LegResult defended =
        run_leg(profile_for(v, /*defended=*/true), hosts, seed, true);

    analysis::AmplificationRow& row = report.row(v.label);
    row.udp_only = udp_only.udp;
    row.post_udp = defended.udp;
    row.post_tcp.bytes_in = defended.stats.tcp_bytes_sent;
    row.post_tcp.bytes_out = defended.stats.tcp_bytes_received;
    row.queries = defended.stats.q1_sent;
    row.truncated = defended.stats.tc_seen;
    row.tcp_retries = defended.stats.tcp_retries;
    row.tcp_answers = defended.stats.tcp_answers;

    // The study's claim, enforced: whenever truncation engaged, the
    // spoofable amplification must drop versus the UDP-only leg. The
    // control profile (never truncated) must instead hold steady.
    if (row.truncated > 0) {
      if (row.amp_post_fallback() >= row.amp_udp_only()) {
        std::fprintf(stderr,
                     "bench_tcp_fallback: FAIL %s: post-fallback amp %.2f "
                     ">= udp-only amp %.2f\n",
                     v.label, row.amp_post_fallback(), row.amp_udp_only());
        ok = false;
      }
    } else if (v.fat_answers) {
      std::fprintf(stderr,
                   "bench_tcp_fallback: FAIL %s: expected truncation never "
                   "engaged\n",
                   v.label);
      ok = false;
    }
  }

  std::printf("%s", report.render().c_str());
  std::printf(
      "\nTCP bytes are attacker cost, not amplification: the handshake\n"
      "proves return-routability, so nothing on that leg reaches a spoofed\n"
      "victim (RFC 7766; DESIGN.md \"Stream transport\").\n");

  std::string json = "{\n  \"bench\": \"tcp_fallback\",\n";
  json += "  \"hosts_per_profile\": " + std::to_string(hosts) + ",\n";
  json += "  \"seed\": " + std::to_string(seed) + ",\n";
  json += "  \"profiles\": " + report.to_json() + "\n}\n";
  std::FILE* f = std::fopen(out_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_tcp_fallback: cannot open %s\n", out_path);
    return 1;
  }
  const bool wrote = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  if (std::fclose(f) != 0 || !wrote) {
    std::fprintf(stderr, "bench_tcp_fallback: short write to %s\n", out_path);
    return 1;
  }
  std::printf("\nwrote %s\n", out_path);
  return ok ? 0 : 1;
}
