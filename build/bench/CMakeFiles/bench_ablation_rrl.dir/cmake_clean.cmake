file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rrl.dir/bench_ablation_rrl.cpp.o"
  "CMakeFiles/bench_ablation_rrl.dir/bench_ablation_rrl.cpp.o.d"
  "bench_ablation_rrl"
  "bench_ablation_rrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
