# Empty dependencies file for bench_ablation_rrl.
# This may be replaced when dependencies are built.
