file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_unique_names.dir/bench_ablation_unique_names.cpp.o"
  "CMakeFiles/bench_ablation_unique_names.dir/bench_ablation_unique_names.cpp.o.d"
  "bench_ablation_unique_names"
  "bench_ablation_unique_names.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_unique_names.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
