# Empty compiler generated dependencies file for bench_ablation_unique_names.
# This may be replaced when dependencies are built.
