file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vantage.dir/bench_ablation_vantage.cpp.o"
  "CMakeFiles/bench_ablation_vantage.dir/bench_ablation_vantage.cpp.o.d"
  "bench_ablation_vantage"
  "bench_ablation_vantage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vantage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
