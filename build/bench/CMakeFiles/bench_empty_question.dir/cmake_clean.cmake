file(REMOVE_RECURSE
  "CMakeFiles/bench_empty_question.dir/bench_empty_question.cpp.o"
  "CMakeFiles/bench_empty_question.dir/bench_empty_question.cpp.o.d"
  "bench_empty_question"
  "bench_empty_question.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_empty_question.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
