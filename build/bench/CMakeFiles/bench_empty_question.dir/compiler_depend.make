# Empty compiler generated dependencies file for bench_empty_question.
# This may be replaced when dependencies are built.
