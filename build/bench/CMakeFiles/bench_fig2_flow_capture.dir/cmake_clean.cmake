file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_flow_capture.dir/bench_fig2_flow_capture.cpp.o"
  "CMakeFiles/bench_fig2_flow_capture.dir/bench_fig2_flow_capture.cpp.o.d"
  "bench_fig2_flow_capture"
  "bench_fig2_flow_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_flow_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
