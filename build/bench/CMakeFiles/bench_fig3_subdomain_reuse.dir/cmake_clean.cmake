file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_subdomain_reuse.dir/bench_fig3_subdomain_reuse.cpp.o"
  "CMakeFiles/bench_fig3_subdomain_reuse.dir/bench_fig3_subdomain_reuse.cpp.o.d"
  "bench_fig3_subdomain_reuse"
  "bench_fig3_subdomain_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_subdomain_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
