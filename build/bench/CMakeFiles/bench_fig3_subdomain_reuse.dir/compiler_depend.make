# Empty compiler generated dependencies file for bench_fig3_subdomain_reuse.
# This may be replaced when dependencies are built.
