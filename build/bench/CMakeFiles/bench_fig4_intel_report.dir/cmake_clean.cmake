file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_intel_report.dir/bench_fig4_intel_report.cpp.o"
  "CMakeFiles/bench_fig4_intel_report.dir/bench_fig4_intel_report.cpp.o.d"
  "bench_fig4_intel_report"
  "bench_fig4_intel_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_intel_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
