# Empty compiler generated dependencies file for bench_fig4_intel_report.
# This may be replaced when dependencies are built.
