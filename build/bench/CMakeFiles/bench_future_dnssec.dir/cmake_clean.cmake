file(REMOVE_RECURSE
  "CMakeFiles/bench_future_dnssec.dir/bench_future_dnssec.cpp.o"
  "CMakeFiles/bench_future_dnssec.dir/bench_future_dnssec.cpp.o.d"
  "bench_future_dnssec"
  "bench_future_dnssec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_future_dnssec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
