# Empty dependencies file for bench_future_dnssec.
# This may be replaced when dependencies are built.
