file(REMOVE_RECURSE
  "CMakeFiles/bench_geo_distribution.dir/bench_geo_distribution.cpp.o"
  "CMakeFiles/bench_geo_distribution.dir/bench_geo_distribution.cpp.o.d"
  "bench_geo_distribution"
  "bench_geo_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_geo_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
