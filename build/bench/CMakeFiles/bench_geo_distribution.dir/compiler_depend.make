# Empty compiler generated dependencies file for bench_geo_distribution.
# This may be replaced when dependencies are built.
