file(REMOVE_RECURSE
  "CMakeFiles/bench_table01_exclusions.dir/bench_table01_exclusions.cpp.o"
  "CMakeFiles/bench_table01_exclusions.dir/bench_table01_exclusions.cpp.o.d"
  "bench_table01_exclusions"
  "bench_table01_exclusions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table01_exclusions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
