# Empty dependencies file for bench_table01_exclusions.
# This may be replaced when dependencies are built.
