# Empty compiler generated dependencies file for bench_table02_probe_summary.
# This may be replaced when dependencies are built.
