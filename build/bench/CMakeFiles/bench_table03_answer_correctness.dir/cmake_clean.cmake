file(REMOVE_RECURSE
  "CMakeFiles/bench_table03_answer_correctness.dir/bench_table03_answer_correctness.cpp.o"
  "CMakeFiles/bench_table03_answer_correctness.dir/bench_table03_answer_correctness.cpp.o.d"
  "bench_table03_answer_correctness"
  "bench_table03_answer_correctness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table03_answer_correctness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
