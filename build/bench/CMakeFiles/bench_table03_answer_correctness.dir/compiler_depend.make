# Empty compiler generated dependencies file for bench_table03_answer_correctness.
# This may be replaced when dependencies are built.
