file(REMOVE_RECURSE
  "CMakeFiles/bench_table04_ra_flag.dir/bench_table04_ra_flag.cpp.o"
  "CMakeFiles/bench_table04_ra_flag.dir/bench_table04_ra_flag.cpp.o.d"
  "bench_table04_ra_flag"
  "bench_table04_ra_flag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table04_ra_flag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
