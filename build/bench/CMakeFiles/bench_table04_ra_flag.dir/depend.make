# Empty dependencies file for bench_table04_ra_flag.
# This may be replaced when dependencies are built.
