file(REMOVE_RECURSE
  "CMakeFiles/bench_table05_aa_flag.dir/bench_table05_aa_flag.cpp.o"
  "CMakeFiles/bench_table05_aa_flag.dir/bench_table05_aa_flag.cpp.o.d"
  "bench_table05_aa_flag"
  "bench_table05_aa_flag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table05_aa_flag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
