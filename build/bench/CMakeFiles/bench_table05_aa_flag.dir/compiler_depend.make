# Empty compiler generated dependencies file for bench_table05_aa_flag.
# This may be replaced when dependencies are built.
