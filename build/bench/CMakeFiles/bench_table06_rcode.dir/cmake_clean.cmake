file(REMOVE_RECURSE
  "CMakeFiles/bench_table06_rcode.dir/bench_table06_rcode.cpp.o"
  "CMakeFiles/bench_table06_rcode.dir/bench_table06_rcode.cpp.o.d"
  "bench_table06_rcode"
  "bench_table06_rcode.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table06_rcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
