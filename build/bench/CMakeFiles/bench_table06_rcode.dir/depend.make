# Empty dependencies file for bench_table06_rcode.
# This may be replaced when dependencies are built.
