file(REMOVE_RECURSE
  "CMakeFiles/bench_table07_incorrect_forms.dir/bench_table07_incorrect_forms.cpp.o"
  "CMakeFiles/bench_table07_incorrect_forms.dir/bench_table07_incorrect_forms.cpp.o.d"
  "bench_table07_incorrect_forms"
  "bench_table07_incorrect_forms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table07_incorrect_forms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
