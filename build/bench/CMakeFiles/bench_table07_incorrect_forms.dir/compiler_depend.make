# Empty compiler generated dependencies file for bench_table07_incorrect_forms.
# This may be replaced when dependencies are built.
