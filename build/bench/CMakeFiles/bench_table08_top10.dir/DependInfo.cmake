
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table08_top10.cpp" "bench/CMakeFiles/bench_table08_top10.dir/bench_table08_top10.cpp.o" "gcc" "bench/CMakeFiles/bench_table08_top10.dir/bench_table08_top10.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/orp_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/orp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/prober/CMakeFiles/orp_prober.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/orp_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/authns/CMakeFiles/orp_authns.dir/DependInfo.cmake"
  "/root/repo/build/src/intel/CMakeFiles/orp_intel.dir/DependInfo.cmake"
  "/root/repo/build/src/zone/CMakeFiles/orp_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/orp_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/orp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/orp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
