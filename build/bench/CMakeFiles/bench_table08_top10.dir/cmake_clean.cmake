file(REMOVE_RECURSE
  "CMakeFiles/bench_table08_top10.dir/bench_table08_top10.cpp.o"
  "CMakeFiles/bench_table08_top10.dir/bench_table08_top10.cpp.o.d"
  "bench_table08_top10"
  "bench_table08_top10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table08_top10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
