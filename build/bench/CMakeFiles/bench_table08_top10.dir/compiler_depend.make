# Empty compiler generated dependencies file for bench_table08_top10.
# This may be replaced when dependencies are built.
