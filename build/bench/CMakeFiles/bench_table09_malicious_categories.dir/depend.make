# Empty dependencies file for bench_table09_malicious_categories.
# This may be replaced when dependencies are built.
