file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_malicious_flags.dir/bench_table10_malicious_flags.cpp.o"
  "CMakeFiles/bench_table10_malicious_flags.dir/bench_table10_malicious_flags.cpp.o.d"
  "bench_table10_malicious_flags"
  "bench_table10_malicious_flags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_malicious_flags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
