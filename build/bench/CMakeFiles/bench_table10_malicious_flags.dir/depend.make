# Empty dependencies file for bench_table10_malicious_flags.
# This may be replaced when dependencies are built.
