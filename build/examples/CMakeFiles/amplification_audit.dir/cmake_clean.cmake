file(REMOVE_RECURSE
  "CMakeFiles/amplification_audit.dir/amplification_audit.cpp.o"
  "CMakeFiles/amplification_audit.dir/amplification_audit.cpp.o.d"
  "amplification_audit"
  "amplification_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amplification_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
