# Empty compiler generated dependencies file for amplification_audit.
# This may be replaced when dependencies are built.
