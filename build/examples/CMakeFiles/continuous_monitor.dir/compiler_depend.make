# Empty compiler generated dependencies file for continuous_monitor.
# This may be replaced when dependencies are built.
