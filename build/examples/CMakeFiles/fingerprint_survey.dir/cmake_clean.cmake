file(REMOVE_RECURSE
  "CMakeFiles/fingerprint_survey.dir/fingerprint_survey.cpp.o"
  "CMakeFiles/fingerprint_survey.dir/fingerprint_survey.cpp.o.d"
  "fingerprint_survey"
  "fingerprint_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fingerprint_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
