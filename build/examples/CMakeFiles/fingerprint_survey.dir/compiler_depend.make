# Empty compiler generated dependencies file for fingerprint_survey.
# This may be replaced when dependencies are built.
