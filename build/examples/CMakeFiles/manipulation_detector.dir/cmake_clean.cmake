file(REMOVE_RECURSE
  "CMakeFiles/manipulation_detector.dir/manipulation_detector.cpp.o"
  "CMakeFiles/manipulation_detector.dir/manipulation_detector.cpp.o.d"
  "manipulation_detector"
  "manipulation_detector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manipulation_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
