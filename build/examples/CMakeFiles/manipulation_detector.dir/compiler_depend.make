# Empty compiler generated dependencies file for manipulation_detector.
# This may be replaced when dependencies are built.
