file(REMOVE_RECURSE
  "CMakeFiles/orpscan.dir/orpscan.cpp.o"
  "CMakeFiles/orpscan.dir/orpscan.cpp.o.d"
  "orpscan"
  "orpscan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orpscan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
