# Empty dependencies file for orpscan.
# This may be replaced when dependencies are built.
