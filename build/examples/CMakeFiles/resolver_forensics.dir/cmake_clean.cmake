file(REMOVE_RECURSE
  "CMakeFiles/resolver_forensics.dir/resolver_forensics.cpp.o"
  "CMakeFiles/resolver_forensics.dir/resolver_forensics.cpp.o.d"
  "resolver_forensics"
  "resolver_forensics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resolver_forensics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
