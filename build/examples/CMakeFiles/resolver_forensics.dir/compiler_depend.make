# Empty compiler generated dependencies file for resolver_forensics.
# This may be replaced when dependencies are built.
