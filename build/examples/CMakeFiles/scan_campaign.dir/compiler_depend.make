# Empty compiler generated dependencies file for scan_campaign.
# This may be replaced when dependencies are built.
