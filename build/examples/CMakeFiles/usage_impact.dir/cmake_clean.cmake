file(REMOVE_RECURSE
  "CMakeFiles/usage_impact.dir/usage_impact.cpp.o"
  "CMakeFiles/usage_impact.dir/usage_impact.cpp.o.d"
  "usage_impact"
  "usage_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/usage_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
