# Empty dependencies file for usage_impact.
# This may be replaced when dependencies are built.
