
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/answer_analysis.cpp" "src/analysis/CMakeFiles/orp_analysis.dir/answer_analysis.cpp.o" "gcc" "src/analysis/CMakeFiles/orp_analysis.dir/answer_analysis.cpp.o.d"
  "/root/repo/src/analysis/empty_question.cpp" "src/analysis/CMakeFiles/orp_analysis.dir/empty_question.cpp.o" "gcc" "src/analysis/CMakeFiles/orp_analysis.dir/empty_question.cpp.o.d"
  "/root/repo/src/analysis/export.cpp" "src/analysis/CMakeFiles/orp_analysis.dir/export.cpp.o" "gcc" "src/analysis/CMakeFiles/orp_analysis.dir/export.cpp.o.d"
  "/root/repo/src/analysis/flow.cpp" "src/analysis/CMakeFiles/orp_analysis.dir/flow.cpp.o" "gcc" "src/analysis/CMakeFiles/orp_analysis.dir/flow.cpp.o.d"
  "/root/repo/src/analysis/geo_analysis.cpp" "src/analysis/CMakeFiles/orp_analysis.dir/geo_analysis.cpp.o" "gcc" "src/analysis/CMakeFiles/orp_analysis.dir/geo_analysis.cpp.o.d"
  "/root/repo/src/analysis/header_analysis.cpp" "src/analysis/CMakeFiles/orp_analysis.dir/header_analysis.cpp.o" "gcc" "src/analysis/CMakeFiles/orp_analysis.dir/header_analysis.cpp.o.d"
  "/root/repo/src/analysis/incorrect_answers.cpp" "src/analysis/CMakeFiles/orp_analysis.dir/incorrect_answers.cpp.o" "gcc" "src/analysis/CMakeFiles/orp_analysis.dir/incorrect_answers.cpp.o.d"
  "/root/repo/src/analysis/malicious.cpp" "src/analysis/CMakeFiles/orp_analysis.dir/malicious.cpp.o" "gcc" "src/analysis/CMakeFiles/orp_analysis.dir/malicious.cpp.o.d"
  "/root/repo/src/analysis/report.cpp" "src/analysis/CMakeFiles/orp_analysis.dir/report.cpp.o" "gcc" "src/analysis/CMakeFiles/orp_analysis.dir/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/intel/CMakeFiles/orp_intel.dir/DependInfo.cmake"
  "/root/repo/build/src/zone/CMakeFiles/orp_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/orp_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/orp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/orp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
