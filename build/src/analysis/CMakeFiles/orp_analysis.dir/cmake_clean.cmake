file(REMOVE_RECURSE
  "CMakeFiles/orp_analysis.dir/answer_analysis.cpp.o"
  "CMakeFiles/orp_analysis.dir/answer_analysis.cpp.o.d"
  "CMakeFiles/orp_analysis.dir/empty_question.cpp.o"
  "CMakeFiles/orp_analysis.dir/empty_question.cpp.o.d"
  "CMakeFiles/orp_analysis.dir/export.cpp.o"
  "CMakeFiles/orp_analysis.dir/export.cpp.o.d"
  "CMakeFiles/orp_analysis.dir/flow.cpp.o"
  "CMakeFiles/orp_analysis.dir/flow.cpp.o.d"
  "CMakeFiles/orp_analysis.dir/geo_analysis.cpp.o"
  "CMakeFiles/orp_analysis.dir/geo_analysis.cpp.o.d"
  "CMakeFiles/orp_analysis.dir/header_analysis.cpp.o"
  "CMakeFiles/orp_analysis.dir/header_analysis.cpp.o.d"
  "CMakeFiles/orp_analysis.dir/incorrect_answers.cpp.o"
  "CMakeFiles/orp_analysis.dir/incorrect_answers.cpp.o.d"
  "CMakeFiles/orp_analysis.dir/malicious.cpp.o"
  "CMakeFiles/orp_analysis.dir/malicious.cpp.o.d"
  "CMakeFiles/orp_analysis.dir/report.cpp.o"
  "CMakeFiles/orp_analysis.dir/report.cpp.o.d"
  "liborp_analysis.a"
  "liborp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
