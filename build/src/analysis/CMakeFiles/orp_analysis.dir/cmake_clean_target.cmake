file(REMOVE_RECURSE
  "liborp_analysis.a"
)
