# Empty dependencies file for orp_analysis.
# This may be replaced when dependencies are built.
