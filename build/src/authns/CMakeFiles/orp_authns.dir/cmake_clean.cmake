file(REMOVE_RECURSE
  "CMakeFiles/orp_authns.dir/auth_server.cpp.o"
  "CMakeFiles/orp_authns.dir/auth_server.cpp.o.d"
  "CMakeFiles/orp_authns.dir/static_auth.cpp.o"
  "CMakeFiles/orp_authns.dir/static_auth.cpp.o.d"
  "liborp_authns.a"
  "liborp_authns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_authns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
