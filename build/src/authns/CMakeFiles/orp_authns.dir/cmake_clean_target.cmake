file(REMOVE_RECURSE
  "liborp_authns.a"
)
