# Empty compiler generated dependencies file for orp_authns.
# This may be replaced when dependencies are built.
