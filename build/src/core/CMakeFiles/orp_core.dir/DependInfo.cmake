
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/contrast.cpp" "src/core/CMakeFiles/orp_core.dir/contrast.cpp.o" "gcc" "src/core/CMakeFiles/orp_core.dir/contrast.cpp.o.d"
  "/root/repo/src/core/internet_builder.cpp" "src/core/CMakeFiles/orp_core.dir/internet_builder.cpp.o" "gcc" "src/core/CMakeFiles/orp_core.dir/internet_builder.cpp.o.d"
  "/root/repo/src/core/ipf.cpp" "src/core/CMakeFiles/orp_core.dir/ipf.cpp.o" "gcc" "src/core/CMakeFiles/orp_core.dir/ipf.cpp.o.d"
  "/root/repo/src/core/monitor.cpp" "src/core/CMakeFiles/orp_core.dir/monitor.cpp.o" "gcc" "src/core/CMakeFiles/orp_core.dir/monitor.cpp.o.d"
  "/root/repo/src/core/paper_data.cpp" "src/core/CMakeFiles/orp_core.dir/paper_data.cpp.o" "gcc" "src/core/CMakeFiles/orp_core.dir/paper_data.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/orp_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/orp_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/population.cpp" "src/core/CMakeFiles/orp_core.dir/population.cpp.o" "gcc" "src/core/CMakeFiles/orp_core.dir/population.cpp.o.d"
  "/root/repo/src/core/reconcile.cpp" "src/core/CMakeFiles/orp_core.dir/reconcile.cpp.o" "gcc" "src/core/CMakeFiles/orp_core.dir/reconcile.cpp.o.d"
  "/root/repo/src/core/usage_study.cpp" "src/core/CMakeFiles/orp_core.dir/usage_study.cpp.o" "gcc" "src/core/CMakeFiles/orp_core.dir/usage_study.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/orp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/prober/CMakeFiles/orp_prober.dir/DependInfo.cmake"
  "/root/repo/build/src/resolver/CMakeFiles/orp_resolver.dir/DependInfo.cmake"
  "/root/repo/build/src/authns/CMakeFiles/orp_authns.dir/DependInfo.cmake"
  "/root/repo/build/src/intel/CMakeFiles/orp_intel.dir/DependInfo.cmake"
  "/root/repo/build/src/zone/CMakeFiles/orp_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/orp_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/orp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/orp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
