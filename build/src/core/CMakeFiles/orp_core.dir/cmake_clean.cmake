file(REMOVE_RECURSE
  "CMakeFiles/orp_core.dir/contrast.cpp.o"
  "CMakeFiles/orp_core.dir/contrast.cpp.o.d"
  "CMakeFiles/orp_core.dir/internet_builder.cpp.o"
  "CMakeFiles/orp_core.dir/internet_builder.cpp.o.d"
  "CMakeFiles/orp_core.dir/ipf.cpp.o"
  "CMakeFiles/orp_core.dir/ipf.cpp.o.d"
  "CMakeFiles/orp_core.dir/monitor.cpp.o"
  "CMakeFiles/orp_core.dir/monitor.cpp.o.d"
  "CMakeFiles/orp_core.dir/paper_data.cpp.o"
  "CMakeFiles/orp_core.dir/paper_data.cpp.o.d"
  "CMakeFiles/orp_core.dir/pipeline.cpp.o"
  "CMakeFiles/orp_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/orp_core.dir/population.cpp.o"
  "CMakeFiles/orp_core.dir/population.cpp.o.d"
  "CMakeFiles/orp_core.dir/reconcile.cpp.o"
  "CMakeFiles/orp_core.dir/reconcile.cpp.o.d"
  "CMakeFiles/orp_core.dir/usage_study.cpp.o"
  "CMakeFiles/orp_core.dir/usage_study.cpp.o.d"
  "liborp_core.a"
  "liborp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
