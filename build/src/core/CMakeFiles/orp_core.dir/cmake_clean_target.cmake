file(REMOVE_RECURSE
  "liborp_core.a"
)
