file(REMOVE_RECURSE
  "CMakeFiles/orp_dns.dir/builder.cpp.o"
  "CMakeFiles/orp_dns.dir/builder.cpp.o.d"
  "CMakeFiles/orp_dns.dir/codec.cpp.o"
  "CMakeFiles/orp_dns.dir/codec.cpp.o.d"
  "CMakeFiles/orp_dns.dir/edns.cpp.o"
  "CMakeFiles/orp_dns.dir/edns.cpp.o.d"
  "CMakeFiles/orp_dns.dir/message.cpp.o"
  "CMakeFiles/orp_dns.dir/message.cpp.o.d"
  "CMakeFiles/orp_dns.dir/name.cpp.o"
  "CMakeFiles/orp_dns.dir/name.cpp.o.d"
  "CMakeFiles/orp_dns.dir/types.cpp.o"
  "CMakeFiles/orp_dns.dir/types.cpp.o.d"
  "liborp_dns.a"
  "liborp_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
