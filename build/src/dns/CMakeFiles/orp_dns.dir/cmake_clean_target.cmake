file(REMOVE_RECURSE
  "liborp_dns.a"
)
