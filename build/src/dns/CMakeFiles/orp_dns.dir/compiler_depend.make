# Empty compiler generated dependencies file for orp_dns.
# This may be replaced when dependencies are built.
