file(REMOVE_RECURSE
  "CMakeFiles/orp_intel.dir/geo_db.cpp.o"
  "CMakeFiles/orp_intel.dir/geo_db.cpp.o.d"
  "CMakeFiles/orp_intel.dir/org_db.cpp.o"
  "CMakeFiles/orp_intel.dir/org_db.cpp.o.d"
  "CMakeFiles/orp_intel.dir/threat_db.cpp.o"
  "CMakeFiles/orp_intel.dir/threat_db.cpp.o.d"
  "liborp_intel.a"
  "liborp_intel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_intel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
