file(REMOVE_RECURSE
  "liborp_intel.a"
)
