# Empty compiler generated dependencies file for orp_intel.
# This may be replaced when dependencies are built.
