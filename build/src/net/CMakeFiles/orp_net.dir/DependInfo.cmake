
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/capture.cpp" "src/net/CMakeFiles/orp_net.dir/capture.cpp.o" "gcc" "src/net/CMakeFiles/orp_net.dir/capture.cpp.o.d"
  "/root/repo/src/net/event_loop.cpp" "src/net/CMakeFiles/orp_net.dir/event_loop.cpp.o" "gcc" "src/net/CMakeFiles/orp_net.dir/event_loop.cpp.o.d"
  "/root/repo/src/net/ipv4.cpp" "src/net/CMakeFiles/orp_net.dir/ipv4.cpp.o" "gcc" "src/net/CMakeFiles/orp_net.dir/ipv4.cpp.o.d"
  "/root/repo/src/net/pcap.cpp" "src/net/CMakeFiles/orp_net.dir/pcap.cpp.o" "gcc" "src/net/CMakeFiles/orp_net.dir/pcap.cpp.o.d"
  "/root/repo/src/net/reserved.cpp" "src/net/CMakeFiles/orp_net.dir/reserved.cpp.o" "gcc" "src/net/CMakeFiles/orp_net.dir/reserved.cpp.o.d"
  "/root/repo/src/net/sim_time.cpp" "src/net/CMakeFiles/orp_net.dir/sim_time.cpp.o" "gcc" "src/net/CMakeFiles/orp_net.dir/sim_time.cpp.o.d"
  "/root/repo/src/net/transport.cpp" "src/net/CMakeFiles/orp_net.dir/transport.cpp.o" "gcc" "src/net/CMakeFiles/orp_net.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/orp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
