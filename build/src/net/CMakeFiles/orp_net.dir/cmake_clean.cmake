file(REMOVE_RECURSE
  "CMakeFiles/orp_net.dir/capture.cpp.o"
  "CMakeFiles/orp_net.dir/capture.cpp.o.d"
  "CMakeFiles/orp_net.dir/event_loop.cpp.o"
  "CMakeFiles/orp_net.dir/event_loop.cpp.o.d"
  "CMakeFiles/orp_net.dir/ipv4.cpp.o"
  "CMakeFiles/orp_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/orp_net.dir/pcap.cpp.o"
  "CMakeFiles/orp_net.dir/pcap.cpp.o.d"
  "CMakeFiles/orp_net.dir/reserved.cpp.o"
  "CMakeFiles/orp_net.dir/reserved.cpp.o.d"
  "CMakeFiles/orp_net.dir/sim_time.cpp.o"
  "CMakeFiles/orp_net.dir/sim_time.cpp.o.d"
  "CMakeFiles/orp_net.dir/transport.cpp.o"
  "CMakeFiles/orp_net.dir/transport.cpp.o.d"
  "liborp_net.a"
  "liborp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
