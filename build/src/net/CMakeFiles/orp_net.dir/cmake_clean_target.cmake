file(REMOVE_RECURSE
  "liborp_net.a"
)
