# Empty compiler generated dependencies file for orp_net.
# This may be replaced when dependencies are built.
