
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prober/permutation.cpp" "src/prober/CMakeFiles/orp_prober.dir/permutation.cpp.o" "gcc" "src/prober/CMakeFiles/orp_prober.dir/permutation.cpp.o.d"
  "/root/repo/src/prober/rate_limiter.cpp" "src/prober/CMakeFiles/orp_prober.dir/rate_limiter.cpp.o" "gcc" "src/prober/CMakeFiles/orp_prober.dir/rate_limiter.cpp.o.d"
  "/root/repo/src/prober/scanner.cpp" "src/prober/CMakeFiles/orp_prober.dir/scanner.cpp.o" "gcc" "src/prober/CMakeFiles/orp_prober.dir/scanner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/zone/CMakeFiles/orp_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/orp_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/orp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/orp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
