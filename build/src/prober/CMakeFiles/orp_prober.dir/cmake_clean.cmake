file(REMOVE_RECURSE
  "CMakeFiles/orp_prober.dir/permutation.cpp.o"
  "CMakeFiles/orp_prober.dir/permutation.cpp.o.d"
  "CMakeFiles/orp_prober.dir/rate_limiter.cpp.o"
  "CMakeFiles/orp_prober.dir/rate_limiter.cpp.o.d"
  "CMakeFiles/orp_prober.dir/scanner.cpp.o"
  "CMakeFiles/orp_prober.dir/scanner.cpp.o.d"
  "liborp_prober.a"
  "liborp_prober.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_prober.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
