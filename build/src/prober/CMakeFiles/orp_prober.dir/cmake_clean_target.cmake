file(REMOVE_RECURSE
  "liborp_prober.a"
)
