# Empty compiler generated dependencies file for orp_prober.
# This may be replaced when dependencies are built.
