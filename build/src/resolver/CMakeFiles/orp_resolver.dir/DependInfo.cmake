
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/resolver/behavior.cpp" "src/resolver/CMakeFiles/orp_resolver.dir/behavior.cpp.o" "gcc" "src/resolver/CMakeFiles/orp_resolver.dir/behavior.cpp.o.d"
  "/root/repo/src/resolver/cache.cpp" "src/resolver/CMakeFiles/orp_resolver.dir/cache.cpp.o" "gcc" "src/resolver/CMakeFiles/orp_resolver.dir/cache.cpp.o.d"
  "/root/repo/src/resolver/recursive_resolver.cpp" "src/resolver/CMakeFiles/orp_resolver.dir/recursive_resolver.cpp.o" "gcc" "src/resolver/CMakeFiles/orp_resolver.dir/recursive_resolver.cpp.o.d"
  "/root/repo/src/resolver/root_tld.cpp" "src/resolver/CMakeFiles/orp_resolver.dir/root_tld.cpp.o" "gcc" "src/resolver/CMakeFiles/orp_resolver.dir/root_tld.cpp.o.d"
  "/root/repo/src/resolver/rrl.cpp" "src/resolver/CMakeFiles/orp_resolver.dir/rrl.cpp.o" "gcc" "src/resolver/CMakeFiles/orp_resolver.dir/rrl.cpp.o.d"
  "/root/repo/src/resolver/scripted_resolver.cpp" "src/resolver/CMakeFiles/orp_resolver.dir/scripted_resolver.cpp.o" "gcc" "src/resolver/CMakeFiles/orp_resolver.dir/scripted_resolver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/authns/CMakeFiles/orp_authns.dir/DependInfo.cmake"
  "/root/repo/build/src/zone/CMakeFiles/orp_zone.dir/DependInfo.cmake"
  "/root/repo/build/src/dns/CMakeFiles/orp_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/orp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/orp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
