file(REMOVE_RECURSE
  "CMakeFiles/orp_resolver.dir/behavior.cpp.o"
  "CMakeFiles/orp_resolver.dir/behavior.cpp.o.d"
  "CMakeFiles/orp_resolver.dir/cache.cpp.o"
  "CMakeFiles/orp_resolver.dir/cache.cpp.o.d"
  "CMakeFiles/orp_resolver.dir/recursive_resolver.cpp.o"
  "CMakeFiles/orp_resolver.dir/recursive_resolver.cpp.o.d"
  "CMakeFiles/orp_resolver.dir/root_tld.cpp.o"
  "CMakeFiles/orp_resolver.dir/root_tld.cpp.o.d"
  "CMakeFiles/orp_resolver.dir/rrl.cpp.o"
  "CMakeFiles/orp_resolver.dir/rrl.cpp.o.d"
  "CMakeFiles/orp_resolver.dir/scripted_resolver.cpp.o"
  "CMakeFiles/orp_resolver.dir/scripted_resolver.cpp.o.d"
  "liborp_resolver.a"
  "liborp_resolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
