file(REMOVE_RECURSE
  "liborp_resolver.a"
)
