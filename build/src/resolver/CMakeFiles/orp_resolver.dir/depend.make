# Empty dependencies file for orp_resolver.
# This may be replaced when dependencies are built.
