file(REMOVE_RECURSE
  "CMakeFiles/orp_util.dir/apportion.cpp.o"
  "CMakeFiles/orp_util.dir/apportion.cpp.o.d"
  "CMakeFiles/orp_util.dir/rng.cpp.o"
  "CMakeFiles/orp_util.dir/rng.cpp.o.d"
  "CMakeFiles/orp_util.dir/strings.cpp.o"
  "CMakeFiles/orp_util.dir/strings.cpp.o.d"
  "CMakeFiles/orp_util.dir/table.cpp.o"
  "CMakeFiles/orp_util.dir/table.cpp.o.d"
  "liborp_util.a"
  "liborp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
