file(REMOVE_RECURSE
  "liborp_util.a"
)
