# Empty dependencies file for orp_util.
# This may be replaced when dependencies are built.
