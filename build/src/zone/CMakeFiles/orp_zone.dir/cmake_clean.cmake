file(REMOVE_RECURSE
  "CMakeFiles/orp_zone.dir/cluster.cpp.o"
  "CMakeFiles/orp_zone.dir/cluster.cpp.o.d"
  "CMakeFiles/orp_zone.dir/master_file.cpp.o"
  "CMakeFiles/orp_zone.dir/master_file.cpp.o.d"
  "CMakeFiles/orp_zone.dir/zone.cpp.o"
  "CMakeFiles/orp_zone.dir/zone.cpp.o.d"
  "liborp_zone.a"
  "liborp_zone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orp_zone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
