file(REMOVE_RECURSE
  "liborp_zone.a"
)
