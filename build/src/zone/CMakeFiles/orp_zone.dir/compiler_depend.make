# Empty compiler generated dependencies file for orp_zone.
# This may be replaced when dependencies are built.
