file(REMOVE_RECURSE
  "CMakeFiles/test_authns.dir/test_authns.cpp.o"
  "CMakeFiles/test_authns.dir/test_authns.cpp.o.d"
  "test_authns"
  "test_authns.pdb"
  "test_authns[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_authns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
