# Empty compiler generated dependencies file for test_authns.
# This may be replaced when dependencies are built.
