# Empty dependencies file for test_intel.
# This may be replaced when dependencies are built.
