file(REMOVE_RECURSE
  "CMakeFiles/test_ipf_property.dir/test_ipf_property.cpp.o"
  "CMakeFiles/test_ipf_property.dir/test_ipf_property.cpp.o.d"
  "test_ipf_property"
  "test_ipf_property.pdb"
  "test_ipf_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ipf_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
