# Empty compiler generated dependencies file for test_ipf_property.
# This may be replaced when dependencies are built.
