file(REMOVE_RECURSE
  "CMakeFiles/test_master_file.dir/test_master_file.cpp.o"
  "CMakeFiles/test_master_file.dir/test_master_file.cpp.o.d"
  "test_master_file"
  "test_master_file.pdb"
  "test_master_file[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_master_file.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
