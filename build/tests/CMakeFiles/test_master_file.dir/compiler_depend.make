# Empty compiler generated dependencies file for test_master_file.
# This may be replaced when dependencies are built.
