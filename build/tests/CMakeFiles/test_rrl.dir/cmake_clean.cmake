file(REMOVE_RECURSE
  "CMakeFiles/test_rrl.dir/test_rrl.cpp.o"
  "CMakeFiles/test_rrl.dir/test_rrl.cpp.o.d"
  "test_rrl"
  "test_rrl.pdb"
  "test_rrl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
