# Empty dependencies file for test_rrl.
# This may be replaced when dependencies are built.
