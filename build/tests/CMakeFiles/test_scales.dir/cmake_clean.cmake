file(REMOVE_RECURSE
  "CMakeFiles/test_scales.dir/test_scales.cpp.o"
  "CMakeFiles/test_scales.dir/test_scales.cpp.o.d"
  "test_scales"
  "test_scales.pdb"
  "test_scales[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scales.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
