# Empty dependencies file for test_scales.
# This may be replaced when dependencies are built.
