# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_pcap[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_failure[1]_include.cmake")
include("/root/repo/build/tests/test_dns[1]_include.cmake")
include("/root/repo/build/tests/test_edns[1]_include.cmake")
include("/root/repo/build/tests/test_zone[1]_include.cmake")
include("/root/repo/build/tests/test_master_file[1]_include.cmake")
include("/root/repo/build/tests/test_authns[1]_include.cmake")
include("/root/repo/build/tests/test_resolver[1]_include.cmake")
include("/root/repo/build/tests/test_rrl[1]_include.cmake")
include("/root/repo/build/tests/test_intel[1]_include.cmake")
include("/root/repo/build/tests/test_prober[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_export[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_ipf_property[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_scales[1]_include.cmake")
include("/root/repo/build/tests/test_usage[1]_include.cmake")
include("/root/repo/build/tests/test_monitor[1]_include.cmake")
