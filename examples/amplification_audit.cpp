// amplification_audit: quantify the DNS-amplification exposure of open
// resolvers (§II-C). Publishes a deliberately record-rich name under the
// measurement SLD, then compares response sizes for A vs ANY queries issued
// through an open resolver with a spoofed-source scenario in mind: the
// bandwidth amplification factor is |response| / |query|.
#include <cstdio>

#include "authns/auth_server.h"
#include "dns/builder.h"
#include "dns/edns.h"
#include "resolver/root_tld.h"
#include "resolver/scripted_resolver.h"
#include "util/strings.h"
#include "util/table.h"
#include "zone/zone.h"

using namespace orp;

int main() {
  net::EventLoop loop;
  net::Network network(loop, 21);
  const dns::DnsName sld = dns::DnsName::must_parse("ucfsealresearch.net");
  const zone::SubdomainScheme scheme(sld, 1000, 5);
  authns::AuthServer auth(network, net::IPv4Addr(45, 76, 18, 21), scheme,
                          net::SimTime::nanos(0));
  const auto hierarchy = resolver::build_hierarchy(
      network, sld, sld.child("ns1"), auth.address(), 3);

  // A record-rich apex, the shape that makes ANY queries profitable for
  // attackers: SPF/DKIM-style TXT records, multiple MX hosts, extra NS.
  for (int i = 0; i < 6; ++i) {
    auth.add_record(dns::ResourceRecord{
        sld, dns::RRType::kTXT, dns::RRClass::kIN, 3600,
        dns::TxtRdata{{"v=spf1 include:_spf" + std::to_string(i) +
                       ".ucfsealresearch.net ip4:45.76.18.0/24 ~all"}}});
  }
  for (int i = 0; i < 4; ++i) {
    auth.add_record(dns::ResourceRecord{
        sld, dns::RRType::kMX, dns::RRClass::kIN, 3600,
        dns::MxRdata{static_cast<std::uint16_t>(10 * (i + 1)),
                     dns::DnsName::must_parse(
                         "mx" + std::to_string(i) + ".ucfsealresearch.net")}});
  }

  resolver::EngineConfig engine_config;
  engine_config.hints = hierarchy.hints;
  resolver::BehaviorProfile honest;
  honest.answer = resolver::AnswerMode::kRecursive;
  resolver::ResolverHost open_resolver(network, net::IPv4Addr(66, 77, 1, 1),
                                       honest, engine_config, 1);

  // The victim's address — where spoofed-source responses would land.
  const net::Endpoint victim{net::IPv4Addr(203, 113, 0, 99), 53000};

  struct Variant {
    const char* label;
    dns::RRType qtype;
    const dns::DnsName* qname;
    std::uint16_t edns;  // 0 = classic DNS (512-byte responses)
  };
  const dns::DnsName sub_a = scheme.qname({0, 1});
  const dns::DnsName sub_any = scheme.qname({0, 2});
  const Variant probes[] = {
      {"A, probe subdomain, classic", dns::RRType::kA, &sub_a, 0},
      {"ANY, probe subdomain, classic", dns::RRType::kANY, &sub_any, 0},
      {"ANY, record-rich apex, classic", dns::RRType::kANY, &sld, 0},
      {"ANY, record-rich apex, EDNS 4096", dns::RRType::kANY, &sld, 4096},
  };

  util::TextTable t(
      {"query", "query bytes", "response bytes", "TC", "factor"});
  double worst = 0;
  for (const auto& probe : probes) {
    dns::Message query = dns::make_query(7, *probe.qname, probe.qtype);
    if (probe.edns != 0)
      dns::set_edns(query, dns::EdnsInfo{.udp_payload_size = probe.edns});
    const auto query_wire = dns::encode(query);
    std::size_t response_size = 0;
    bool tc = false;
    network.bind(victim, [&](const net::Datagram& d) {
      response_size = d.payload.size();
      if (const auto decoded = dns::decode(d.payload))
        tc = decoded->header.flags.tc;
    });
    // Spoofed source: the query claims to come from the victim.
    network.send(net::Datagram{
        victim, net::Endpoint{open_resolver.address(), net::kDnsPort},
        query_wire});
    loop.run();
    network.unbind(victim);
    const double factor =
        static_cast<double>(response_size) / query_wire.size();
    worst = std::max(worst, factor);
    t.add_row({probe.label, std::to_string(query_wire.size()),
               std::to_string(response_size), tc ? "1" : "0",
               util::fixed(factor, 2) + "x"});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nclassic DNS caps the reflection at 512 bytes (TC=1 and records "
      "dropped); EDNS(0)\nlifts the cap — \"due to recent update it is now "
      "possible to have more than 512 bytes\"\n(paper §II-C, RFC 6891).\n");

  // Fleet arithmetic from the paper's 2018 estimate: ~3M open resolvers.
  const double resolvers = 3'000'000;
  const double pps_per_resolver = 10;  // modest per-reflector query rate
  const double query_bytes = 60;
  const double victim_gbps =
      resolvers * pps_per_resolver * query_bytes * worst * 8 / 1e9;
  std::printf(
      "\nfleet estimate: %.0f open resolvers x %.0f spoofed queries/s at "
      "%.2fx amplification\n-> %.1f Gbps at the victim (the CloudFlare 2013 "
      "attack the paper cites peaked at 75 Gbps).\n",
      resolvers, pps_per_resolver, worst, victim_gbps);
  std::printf(
      "\nresponses land at the spoofed source because plain DNS has no "
      "source authentication;\nthe resolver is a blind amplifier (§II-C).\n");
  return 0;
}
