// amplification_audit: quantify the DNS-amplification exposure of open
// resolvers (§II-C). Publishes a deliberately record-rich name under the
// measurement SLD, then compares response sizes for A vs ANY queries issued
// through an open resolver with a spoofed-source scenario in mind: the
// bandwidth amplification factor is |response| / |query|.
//
// Default mode runs the resiliency study: every probe is fired at two
// resolvers — one wide open, one defending itself with server-side
// truncation (UDP answers capped at 512 B, TC=1) plus DNS-over-TCP service
// (RFC 7766) — and the result is an analysis::AmplificationReport. The
// spoofed victim only ever receives the truncated stub; the full answer is
// re-fetched over TCP by a *legitimate* client, whose handshake proves
// return-routability, so those bytes are attacker cost, not amplification.
//
//   ./amplification_audit              # the truncation + DoTCP study
//   ./amplification_audit --udp-only   # the classic reflector table only
#include <cstdio>
#include <cstring>

#include "analysis/amplification.h"
#include "authns/auth_server.h"
#include "dns/builder.h"
#include "dns/edns.h"
#include "net/stream.h"
#include "resolver/root_tld.h"
#include "resolver/scripted_resolver.h"
#include "util/strings.h"
#include "util/table.h"
#include "zone/zone.h"

using namespace orp;

namespace {

struct Probe {
  const char* label;
  dns::RRType qtype;
  const dns::DnsName* qname;
  std::uint16_t edns;  // 0 = classic DNS (512-byte responses)
};

/// One-shot DoTCP client: connect, ask, record the answer, close. Mirrors
/// what a legitimate stub does after receiving TC=1.
class TcpRetryClient : public net::StreamHandler {
 public:
  TcpRetryClient(net::StreamNet& streams, std::vector<std::uint8_t> query)
      : streams_(streams), query_(std::move(query)) {}

  void on_established(net::ConnId c) override {
    streams_.send_message(c, query_);
  }
  void on_message(net::ConnId c, net::SimTime,
                  const net::PayloadRef& msg) override {
    answer_size = msg.size();
    // Wire bytes both ways, banked while the connection is still live.
    bytes_sent = streams_.conn_bytes_sent(c);
    bytes_received = streams_.conn_bytes_received(c);
    streams_.close(c);
  }

  std::size_t answer_size = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;

 private:
  net::StreamNet& streams_;
  std::vector<std::uint8_t> query_;
};

}  // namespace

int main(int argc, char** argv) {
  const bool udp_only =
      argc > 1 && std::strcmp(argv[1], "--udp-only") == 0;

  net::EventLoop loop;
  net::Network network(loop, 21);
  const dns::DnsName sld = dns::DnsName::must_parse("ucfsealresearch.net");
  const zone::SubdomainScheme scheme(sld, 1000, 5);
  authns::AuthServer auth(network, net::IPv4Addr(45, 76, 18, 21), scheme,
                          net::SimTime::nanos(0));
  const auto hierarchy = resolver::build_hierarchy(
      network, sld, sld.child("ns1"), auth.address(), 3);

  // A record-rich apex, the shape that makes ANY queries profitable for
  // attackers: SPF/DKIM-style TXT records, multiple MX hosts, extra NS.
  for (int i = 0; i < 6; ++i) {
    auth.add_record(dns::ResourceRecord{
        sld, dns::RRType::kTXT, dns::RRClass::kIN, 3600,
        dns::TxtRdata{{"v=spf1 include:_spf" + std::to_string(i) +
                       ".ucfsealresearch.net ip4:45.76.18.0/24 ~all"}}});
  }
  for (int i = 0; i < 4; ++i) {
    auth.add_record(dns::ResourceRecord{
        sld, dns::RRType::kMX, dns::RRClass::kIN, 3600,
        dns::MxRdata{static_cast<std::uint16_t>(10 * (i + 1)),
                     dns::DnsName::must_parse(
                         "mx" + std::to_string(i) + ".ucfsealresearch.net")}});
  }

  resolver::EngineConfig engine_config;
  engine_config.hints = hierarchy.hints;
  resolver::BehaviorProfile honest;
  honest.answer = resolver::AnswerMode::kRecursive;
  resolver::ResolverHost open_resolver(network, net::IPv4Addr(66, 77, 1, 1),
                                       honest, engine_config, 1);

  // The defended twin: same honest recursion, but UDP answers are capped at
  // the classic 512 bytes (whole-record cut, TC=1) and port 53 TCP serves
  // the full answer to anyone who can complete a handshake.
  resolver::BehaviorProfile defended = honest;
  defended.udp_limit = 512;
  defended.tcp = true;
  resolver::ResolverHost defended_resolver(
      network, net::IPv4Addr(66, 77, 1, 2), defended, engine_config, 2);

  // The victim's address — where spoofed-source responses would land.
  const net::Endpoint victim{net::IPv4Addr(203, 113, 0, 99), 53000};
  // The legitimate client retrying over TCP (its real, routable address).
  const net::Endpoint client{net::IPv4Addr(198, 51, 100, 7), 49152};

  const dns::DnsName sub_a = scheme.qname({0, 1});
  const dns::DnsName sub_any = scheme.qname({0, 2});
  const Probe probes[] = {
      {"A, probe subdomain, classic", dns::RRType::kA, &sub_a, 0},
      {"ANY, probe subdomain, classic", dns::RRType::kANY, &sub_any, 0},
      {"ANY, record-rich apex, classic", dns::RRType::kANY, &sld, 0},
      {"ANY, record-rich apex, EDNS 4096", dns::RRType::kANY, &sld, 4096},
  };

  /// Fire one spoofed query at `resolver`; returns {response bytes, TC}.
  const auto spoofed_exchange = [&](net::IPv4Addr resolver,
                                    const std::vector<std::uint8_t>& wire) {
    std::size_t response_size = 0;
    bool tc = false;
    network.bind(victim, [&](const net::Datagram& d) {
      response_size = d.payload.size();
      if (const auto decoded = dns::decode(d.payload))
        tc = decoded->header.flags.tc;
    });
    network.send(net::Datagram{
        victim, net::Endpoint{resolver, net::kDnsPort}, wire});
    loop.run();
    network.unbind(victim);
    return std::pair<std::size_t, bool>{response_size, tc};
  };

  if (udp_only) {
    // The legacy reflector table: the undefended resolver only.
    util::TextTable t(
        {"query", "query bytes", "response bytes", "TC", "factor"});
    double worst = 0;
    for (const Probe& probe : probes) {
      dns::Message query = dns::make_query(7, *probe.qname, probe.qtype);
      if (probe.edns != 0)
        dns::set_edns(query, dns::EdnsInfo{.udp_payload_size = probe.edns});
      const auto query_wire = dns::encode(query);
      const auto [response_size, tc] =
          spoofed_exchange(open_resolver.address(), query_wire);
      const double factor =
          static_cast<double>(response_size) / query_wire.size();
      worst = std::max(worst, factor);
      t.add_row({probe.label, std::to_string(query_wire.size()),
                 std::to_string(response_size), tc ? "1" : "0",
                 util::fixed(factor, 2) + "x"});
    }
    std::printf("%s", t.render().c_str());
    std::printf(
        "\nclassic DNS caps the reflection at 512 bytes (TC=1 and records "
        "dropped); EDNS(0)\nlifts the cap — \"due to recent update it is now "
        "possible to have more than 512 bytes\"\n(paper §II-C, RFC 6891).\n");

    // Fleet arithmetic from the paper's 2018 estimate: ~3M open resolvers.
    const double resolvers = 3'000'000;
    const double pps_per_resolver = 10;  // modest per-reflector query rate
    const double query_bytes = 60;
    const double victim_gbps =
        resolvers * pps_per_resolver * query_bytes * worst * 8 / 1e9;
    std::printf(
        "\nfleet estimate: %.0f open resolvers x %.0f spoofed queries/s at "
        "%.2fx amplification\n-> %.1f Gbps at the victim (the CloudFlare 2013 "
        "attack the paper cites peaked at 75 Gbps).\n",
        resolvers, pps_per_resolver, worst, victim_gbps);
    std::printf(
        "\nresponses land at the spoofed source because plain DNS has no "
        "source authentication;\nthe resolver is a blind amplifier "
        "(§II-C).\n");
    return 0;
  }

  // The resiliency study: same probes, open vs defended resolver, one
  // report row per probe shape.
  analysis::AmplificationReport report;
  for (const Probe& probe : probes) {
    dns::Message query = dns::make_query(7, *probe.qname, probe.qtype);
    if (probe.edns != 0)
      dns::set_edns(query, dns::EdnsInfo{.udp_payload_size = probe.edns});
    const auto query_wire = dns::encode(query);

    analysis::AmplificationRow& row = report.row(probe.label);
    row.queries = 1;

    const auto [full_size, full_tc] =
        spoofed_exchange(open_resolver.address(), query_wire);
    (void)full_tc;
    row.udp_only.bytes_in = query_wire.size();
    row.udp_only.bytes_out = full_size;

    const auto [stub_size, stub_tc] =
        spoofed_exchange(defended_resolver.address(), query_wire);
    row.post_udp.bytes_in = query_wire.size();
    row.post_udp.bytes_out = stub_size;
    if (stub_tc) {
      row.truncated = 1;
      // The legitimate client's RFC 7766 retry — the part of the flow a
      // spoofing attacker cannot perform.
      TcpRetryClient retry(network.streams(), query_wire);
      network.streams().connect(
          client, net::Endpoint{defended_resolver.address(), net::kDnsPort},
          &retry);
      ++row.tcp_retries;
      loop.run();
      if (retry.answer_size > 0) ++row.tcp_answers;
      row.post_tcp.bytes_in = retry.bytes_sent;
      row.post_tcp.bytes_out = retry.bytes_received;
    }
  }

  std::printf("%s", report.render().c_str());
  std::printf(
      "\nthe spoofed victim only ever receives the truncated stub; the full "
      "answer moves to\nTCP, where the handshake proves return-routability "
      "(RFC 7766). TCP bytes are the\nlegitimate client's cost — an attacker "
      "with a spoofed source never sees them.\nRun with --udp-only for the "
      "classic reflector table.\n");
  return 0;
}
