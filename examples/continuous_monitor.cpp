// continuous_monitor: the standing observatory §V calls for.
//
// The Open Resolver Project stopped publishing in January 2017 — right as,
// per the paper's temporal contrast, malicious open resolvers were doubling.
// This example replays what a continuous monitor would have recorded across
// the 2013-10 .. 2018-04 gap: periodic scaled scans over a drifting
// population, surfacing the decline of open resolvers *and* the growth of
// the malicious subpopulation that a raw count alone hides.
//
//   ./continuous_monitor [snapshots] [scale] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/monitor.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace orp;
  core::MonitoringConfig config;
  config.snapshots = argc > 1 ? std::atoi(argv[1]) : 6;
  config.scale = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2048;
  config.seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 42;

  std::printf("%s", util::section_title(
                        "Continuous open-resolver observatory (§V)")
                        .c_str());
  std::printf("%d scans at scale 1/%llu across the 2013-10 .. 2018-04 drift\n\n",
              config.snapshots,
              static_cast<unsigned long long>(config.scale));

  const core::MonitoringSeries series = core::run_monitoring(config);
  std::printf("%s", core::render_monitoring(series).c_str());

  std::printf(
      "\nreading: the open-resolver count falls steadily (what "
      "openresolverproject.org saw\nbefore discontinuing), while the "
      "malicious-response series rises — the divergence is\nonly visible "
      "with behavioral analysis per scan, which is the paper's case for a\n"
      "monitor that does more than count responders.\n");
  return 0;
}
