// fingerprint_survey: the software side of the ecosystem (§VI cites Takano
// et al.'s version survey). Runs a scaled 2018 scan, then sends a second
// wave of CHAOS-class "version.bind TXT" queries to every responder and
// tallies the banners — the fingerprinting surface operators forget to mask.
//
//   ./fingerprint_survey [scale] [seed]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "core/internet_builder.h"
#include "core/paper_data.h"
#include "prober/scanner.h"
#include "util/strings.h"
#include "util/table.h"

using namespace orp;

int main(int argc, char** argv) {
  const std::uint64_t scale =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4096;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  const core::PopulationSpec spec =
      core::build_population(core::paper_2018(), scale, seed);
  core::InternetConfig net_cfg;
  net_cfg.seed = seed;
  net_cfg.scan_seed = util::mix64(seed + 2018);
  core::SimulatedInternet internet(spec, net_cfg);

  // Wave 1: the normal open-resolver discovery scan.
  prober::ScanConfig scan_cfg;
  scan_cfg.seed = net_cfg.scan_seed;
  scan_cfg.rate_pps = spec.rate_pps;
  scan_cfg.raw_steps = spec.raw_steps;
  scan_cfg.rotate_pause = net::SimTime::seconds(spec.zone_load_seconds);
  prober::Scanner scanner(internet.network(), internet.prober_address(),
                          scan_cfg, internet.scheme());
  scanner.set_rotate_callback(
      [&internet](std::uint32_t c) { internet.auth().load_cluster(c); });
  scanner.start([] {});
  internet.loop().run();
  std::printf("discovery scan: %s responders\n\n",
              util::with_commas(scanner.stats().r2_received).c_str());

  // Wave 2: version.bind against every responder.
  std::map<std::string, std::uint64_t> banners;
  std::uint64_t refused = 0;
  const dns::DnsName version_bind = dns::DnsName::must_parse("version.bind");
  const net::Endpoint prober{internet.prober_address(), 54444};
  internet.network().bind(prober, [&](const net::Datagram& d) {
    const auto decoded = dns::decode(d.payload);
    if (!decoded) return;
    if (!decoded->has_answer()) {
      ++refused;
      return;
    }
    if (const auto* txt =
            std::get_if<dns::TxtRdata>(&decoded->answers[0].rdata)) {
      if (!txt->strings.empty()) ++banners[txt->strings[0]];
    }
  });
  std::uint16_t txn = 1;
  for (const auto& rec : scanner.responses()) {
    dns::Message q = dns::make_query(txn++, version_bind, dns::RRType::kTXT);
    q.questions[0].qclass = dns::RRClass::kCH;
    internet.network().send(net::Datagram{
        prober, net::Endpoint{rec.resolver, net::kDnsPort}, dns::encode(q)});
  }
  internet.loop().run();

  std::uint64_t disclosed = 0;
  for (const auto& [banner, n] : banners) disclosed += n;
  std::printf("version.bind results: %s disclosed a banner, %s refused\n\n",
              util::with_commas(disclosed).c_str(),
              util::with_commas(refused).c_str());

  std::vector<std::pair<std::uint64_t, std::string>> ranked;
  for (const auto& [banner, n] : banners) ranked.emplace_back(n, banner);
  std::sort(ranked.rbegin(), ranked.rend());
  util::TextTable t({"software banner", "responders", "share"});
  t.set_align(0, util::Align::kLeft);
  for (std::size_t i = 0; i < ranked.size() && i < 12; ++i) {
    t.add_row({ranked[i].second, util::with_commas(ranked[i].first),
               util::fixed(util::percent(ranked[i].first, disclosed), 1) + "%"});
  }
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nreading: BIND dominates genuine recursives, dnsmasq marks the CPE "
      "forwarder\npopulation, and the manipulating resolvers "
      "overwhelmingly hide their version —\na disclosed banner is itself a "
      "(weak) honesty signal.\n");
  return 0;
}
