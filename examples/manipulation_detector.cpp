// manipulation_detector: the paper's §IV-C pipeline as a standalone tool.
//
// Runs a scaled 2018 scan, then hunts manipulated answers three ways:
//   1. ground-truth mismatch (wrong A record for our own subdomain),
//   2. threat-intel validation of the answer address (Cymon-style),
//   3. the recursion discriminator — answers for fresh subdomains that the
//      authoritative server never saw a query for cannot be cached or
//      resolved; they are fabricated.
// Prints each detected manipulator with geolocation and intel category.
//
//   ./manipulation_detector [scale] [seed]
#include <cstdio>
#include <cstdlib>

#include "analysis/flow.h"
#include "core/paper_data.h"
#include "core/pipeline.h"
#include "net/capture.h"
#include "util/strings.h"
#include "util/table.h"

using namespace orp;

int main(int argc, char** argv) {
  const std::uint64_t scale =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8192;
  const std::uint64_t seed =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  // Build + scan manually so a capture can watch the auth server.
  const core::PopulationSpec spec =
      core::build_population(core::paper_2018(), scale, seed);
  core::InternetConfig net_cfg;
  net_cfg.seed = seed;
  net_cfg.scan_seed = util::mix64(seed + 2018);
  core::SimulatedInternet internet(spec, net_cfg);

  net::Capture auth_capture(internet.auth_address());
  auth_capture.attach(internet.network());

  prober::ScanConfig scan_cfg;
  scan_cfg.seed = net_cfg.scan_seed;
  scan_cfg.rate_pps = spec.rate_pps;
  scan_cfg.raw_steps = spec.raw_steps;
  scan_cfg.rotate_pause = net::SimTime::seconds(spec.zone_load_seconds);
  prober::Scanner scanner(internet.network(), internet.prober_address(),
                          scan_cfg, internet.scheme());
  scanner.set_rotate_callback(
      [&](std::uint32_t c) { internet.auth().load_cluster(c); });
  scanner.start([] {});
  internet.loop().run();

  std::printf("scan done: %s probes, %s responses\n\n",
              util::with_commas(scanner.stats().q1_sent).c_str(),
              util::with_commas(scanner.stats().r2_received).c_str());

  // Recursion evidence, grouped by qname.
  analysis::FlowGrouper grouper(internet.scheme());
  for (const auto& pkt : auth_capture.inbound())
    grouper.add_auth_packet(pkt, /*inbound=*/true);
  for (const auto& pkt : auth_capture.outbound())
    grouper.add_auth_packet(pkt, /*inbound=*/false);

  util::TextTable findings(
      {"resolver", "country", "answer", "intel", "evidence"});
  findings.set_align(4, util::Align::kLeft);
  std::uint64_t manipulated = 0;
  std::uint64_t fabricated_confirmed = 0;
  for (const auto& rec : scanner.responses()) {
    const analysis::R2View v = analysis::classify_r2(rec, internet.scheme());
    if (!v.has_question || !v.subdomain) continue;
    const auto qname = internet.scheme().qname(*v.subdomain);
    grouper.add_probe(qname, rec.resolver);
    grouper.add_r2(v, qname);
    if (!v.has_answer() || (v.form == analysis::AnswerForm::kIp && v.correct))
      continue;
    ++manipulated;
    const auto& flow = grouper.flows().at(qname.canonical_key());
    const bool no_recursion = flow.q2_count == 0;
    if (no_recursion) ++fabricated_confirmed;
    if (findings.row_count() >= 15) continue;  // keep the sample printable

    std::string answer;
    std::string intel = "-";
    switch (v.form) {
      case analysis::AnswerForm::kIp: {
        answer = v.answer_ip->to_string();
        if (const auto cat = internet.threats().dominant_category(*v.answer_ip))
          intel = std::string(intel::to_string(*cat));
        else if (net::is_private_address(*v.answer_ip))
          intel = "private net";
        break;
      }
      case analysis::AnswerForm::kUrl:
      case analysis::AnswerForm::kString: answer = v.answer_text; break;
      case analysis::AnswerForm::kUndecodable: answer = "<garbled>"; break;
      default: break;
    }
    findings.add_row({rec.resolver.to_string(),
                      internet.geo().country_of(rec.resolver), answer, intel,
                      no_recursion ? "no recursion observed" : "recursed"});
  }

  std::printf("manipulated answers: %s (sample below)\n",
              util::with_commas(manipulated).c_str());
  std::printf("confirmed fabrications (answer with zero auth contact): %s\n\n",
              util::with_commas(fabricated_confirmed).c_str());
  std::printf("%s", findings.render().c_str());
  std::printf(
      "\ncache poisoning is ruled out by construction: every probe uses a "
      "subdomain that\nnever existed before the scan, so a manipulated "
      "answer implies the resolver\nitself is hostile (§IV-C2).\n");
  return 0;
}
