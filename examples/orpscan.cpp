// orpscan: the survey as a command-line tool.
//
//   orpscan [options]
//     --year 2013|2018      population to scan            (default 2018)
//     --scale N             1/N-scale campaign            (default 2048)
//     --seed N              deterministic seed            (default 42)
//     --loss P              injected packet-loss rate     (default 0)
//     --csv PATH            per-response CSV export
//     --summary-csv PATH    key/value summary CSV export
//     --pcap PATH           R2 capture in libpcap format
//     --quiet               suppress the table printout
//
// Exit status: 0 on success, 2 on bad usage.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "analysis/export.h"
#include "core/contrast.h"
#include "core/paper_data.h"
#include "core/pipeline.h"
#include "net/pcap.h"
#include "util/strings.h"

using namespace orp;

namespace {

struct Options {
  int year = 2018;
  std::uint64_t scale = 2048;
  std::uint64_t seed = 42;
  double loss = 0.0;
  std::string csv_path;
  std::string summary_csv_path;
  std::string pcap_path;
  bool quiet = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--year 2013|2018] [--scale N] [--seed N] "
               "[--loss P] [--csv PATH] [--summary-csv PATH] [--pcap PATH] "
               "[--quiet]\n",
               argv0);
  return 2;
}

bool parse_options(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--year") {
      const char* v = next();
      if (!v) return false;
      opts.year = std::atoi(v);
      if (opts.year != 2013 && opts.year != 2018) return false;
    } else if (arg == "--scale") {
      const char* v = next();
      if (!v) return false;
      opts.scale = std::strtoull(v, nullptr, 10);
      if (opts.scale == 0) return false;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      opts.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--loss") {
      const char* v = next();
      if (!v) return false;
      opts.loss = std::atof(v);
      if (opts.loss < 0 || opts.loss > 1) return false;
    } else if (arg == "--csv") {
      const char* v = next();
      if (!v) return false;
      opts.csv_path = v;
    } else if (arg == "--summary-csv") {
      const char* v = next();
      if (!v) return false;
      opts.summary_csv_path = v;
    } else if (arg == "--pcap") {
      const char* v = next();
      if (!v) return false;
      opts.pcap_path = v;
    } else if (arg == "--quiet") {
      opts.quiet = true;
    } else {
      return false;
    }
  }
  return true;
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_options(argc, argv, opts)) return usage(argv[0]);

  const core::PaperYear& year =
      opts.year == 2013 ? core::paper_2013() : core::paper_2018();
  core::PipelineConfig cfg;
  cfg.scale = opts.scale;
  cfg.seed = opts.seed;
  cfg.loss_rate = opts.loss;
  // Per-response CSV export needs the materialized views; everything else
  // (summary tables, --summary-csv) comes from the streamed tables, so the
  // debugging knob stays off unless the rows are actually wanted.
  cfg.retain_views = !opts.csv_path.empty();

  if (!opts.quiet)
    std::printf("orpscan: %d population, scale 1/%llu, seed %llu%s\n",
                opts.year, static_cast<unsigned long long>(opts.scale),
                static_cast<unsigned long long>(opts.seed),
                opts.loss > 0 ? " (lossy)" : "");

  // The scanner's raw R2 payloads are needed for --pcap; run the pipeline
  // manually when exporting packets, otherwise take the packaged path.
  const core::ScanOutcome outcome = core::run_measurement(year, cfg);

  if (!opts.quiet) {
    const auto& a = outcome.analysis;
    std::printf(
        "scan: %s probes, %s responses in %s simulated\n"
        "answers: %s correct, %s incorrect (err %.3f%%), %s empty\n"
        "malicious: %s responses across %s addresses\n",
        util::with_commas(outcome.scan.q1_sent).c_str(),
        util::with_commas(outcome.scan.r2_received).c_str(),
        util::human_duration(outcome.sim_duration_seconds).c_str(),
        util::with_commas(a.answers.correct).c_str(),
        util::with_commas(a.answers.incorrect).c_str(),
        a.answers.err_percent(),
        util::with_commas(a.answers.without_answer).c_str(),
        util::with_commas(a.malicious.total_r2).c_str(),
        util::with_commas(a.malicious.total_ips).c_str());
    const auto est = core::estimate_open_resolvers(a);
    std::printf("open resolvers (strict/RA-only/correct-only): %s / %s / %s\n",
                util::with_commas(est.strict).c_str(),
                util::with_commas(est.ra_flag_only).c_str(),
                util::with_commas(est.correct_only).c_str());
  }

  if (!opts.csv_path.empty()) {
    if (!write_file(opts.csv_path, analysis::views_to_csv(outcome.views))) {
      std::fprintf(stderr, "orpscan: cannot write %s\n",
                   opts.csv_path.c_str());
      return 1;
    }
    if (!opts.quiet)
      std::printf("wrote %zu response rows to %s\n", outcome.views.size(),
                  opts.csv_path.c_str());
  }
  if (!opts.summary_csv_path.empty()) {
    if (!write_file(opts.summary_csv_path,
                    analysis::analysis_to_csv(outcome.analysis))) {
      std::fprintf(stderr, "orpscan: cannot write %s\n",
                   opts.summary_csv_path.c_str());
      return 1;
    }
    if (!opts.quiet)
      std::printf("wrote summary to %s\n", opts.summary_csv_path.c_str());
  }
  if (!opts.pcap_path.empty()) {
    // Re-run with a raw-payload capture path: the packaged outcome keeps
    // decoded views only, so rebuild the R2 packets from them is lossy;
    // instead drive the scanner directly.
    const core::PopulationSpec spec =
        core::build_population(year, opts.scale, opts.seed);
    core::InternetConfig net_cfg;
    net_cfg.seed = opts.seed;
    net_cfg.scan_seed = util::mix64(opts.seed + year.year);
    net_cfg.loss_rate = opts.loss;
    core::SimulatedInternet internet(spec, net_cfg);
    prober::ScanConfig scan_cfg;
    scan_cfg.seed = net_cfg.scan_seed;
    scan_cfg.rate_pps = spec.rate_pps;
    scan_cfg.raw_steps = spec.raw_steps;
    scan_cfg.rotate_pause = net::SimTime::seconds(spec.zone_load_seconds);
    prober::Scanner scanner(internet.network(), internet.prober_address(),
                            scan_cfg, internet.scheme());
    scanner.set_rotate_callback(
        [&internet](std::uint32_t c) { internet.auth().load_cluster(c); });
    scanner.start([] {});
    internet.loop().run();

    std::vector<net::CapturedPacket> packets;
    packets.reserve(scanner.responses().size());
    for (const auto& rec : scanner.responses()) {
      net::CapturedPacket pkt;
      pkt.time = rec.time;
      pkt.src = net::Endpoint{rec.resolver, net::kDnsPort};
      pkt.dst = net::Endpoint{internet.prober_address(), 54321};
      pkt.payload.assign(rec.payload.begin(), rec.payload.end());
      packets.push_back(std::move(pkt));
    }
    if (!net::write_pcap_file(opts.pcap_path, packets)) {
      std::fprintf(stderr, "orpscan: cannot write %s\n",
                   opts.pcap_path.c_str());
      return 1;
    }
    if (!opts.quiet)
      std::printf("wrote %zu R2 packets to %s\n", packets.size(),
                  opts.pcap_path.c_str());
  }
  return 0;
}
