// Quickstart: run a scaled-down replica of the paper's 2018 campaign and
// print the headline numbers.
//
//   ./quickstart [scale] [seed]
//
// scale defaults to 8192 (a ~450k-probe scan that finishes in a second or
// two); scale=1024 reproduces every table at 1/1024 of the paper's packet
// counts.
#include <cstdio>
#include <cstdlib>

#include "core/contrast.h"
#include "core/paper_data.h"
#include "core/pipeline.h"
#include "util/strings.h"

int main(int argc, char** argv) {
  orp::core::PipelineConfig config;
  config.scale = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8192;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  const auto& paper = orp::core::paper_2018();
  std::printf("probing a 1/%llu-scale simulated Internet (2018 population)...\n",
              static_cast<unsigned long long>(config.scale));

  const orp::core::ScanOutcome outcome =
      orp::core::run_measurement(paper, config);

  using orp::util::with_commas;
  std::printf("\nscan finished in %s of simulated time (%llu events)\n",
              orp::util::human_duration(outcome.sim_duration_seconds).c_str(),
              static_cast<unsigned long long>(outcome.events_executed));
  std::printf("  Q1 sent:       %12s   (paper/scale: %s)\n",
              with_commas(outcome.scan.q1_sent).c_str(),
              with_commas(outcome.expect(paper.q1)).c_str());
  std::printf("  Q2=R1 at auth: %12s   (paper/scale: %s)\n",
              with_commas(outcome.auth.queries_received).c_str(),
              with_commas(outcome.expect(paper.q2_r1)).c_str());
  std::printf("  R2 received:   %12s   (paper/scale: %s)\n",
              with_commas(outcome.scan.r2_received).c_str(),
              with_commas(outcome.expect(paper.r2)).c_str());

  const auto& a = outcome.analysis;
  std::printf("\nanswer correctness (Table III shape):\n");
  std::printf("  with answer %s (correct %s, incorrect %s), err %.3f%% "
              "(paper: 3.879%%)\n",
              with_commas(a.answers.with_answer()).c_str(),
              with_commas(a.answers.correct).c_str(),
              with_commas(a.answers.incorrect).c_str(),
              a.answers.err_percent());
  std::printf("  RA=0 yet answering: %s responses, err %.1f%% (paper: 94.2%%)\n",
              with_commas(a.ra.bit0.with_answer()).c_str(),
              a.ra.bit0.err_percent());
  std::printf("  AA=1 claimed: %s responses, err %.1f%% (paper: 78.9%%)\n",
              with_commas(a.aa.bit1.total()).c_str(),
              a.aa.bit1.err_percent());
  std::printf("  malicious answers: %s responses across %s addresses\n",
              with_commas(a.malicious.total_r2).c_str(),
              with_commas(a.malicious.total_ips).c_str());

  const auto est = orp::core::estimate_open_resolvers(a);
  std::printf("\nopen-resolver estimates (§IV-B1, scaled):\n");
  std::printf("  strict (RA=1 & correct): %s\n", with_commas(est.strict).c_str());
  std::printf("  RA flag only:            %s\n",
              with_commas(est.ra_flag_only).c_str());
  std::printf("  correct answer only:     %s\n",
              with_commas(est.correct_only).c_str());

  std::printf("\nsubdomain clusters: %llu zone loads, %s subdomains reused\n",
              static_cast<unsigned long long>(outcome.cluster_loads),
              with_commas(outcome.clusters.subdomains_reused).c_str());
  return 0;
}
