// resolver_forensics: interrogate individual resolvers and print a
// conformance report — the single-host version of the paper's behavioral
// analysis. Builds a small zoo of resolver profiles (one per taxon §IV
// documents), probes each with a fresh subdomain, and judges the response
// against RFC 1034/1035 expectations.
#include <cstdio>

#include "analysis/flow.h"
#include "authns/auth_server.h"
#include "dns/builder.h"
#include "resolver/root_tld.h"
#include "resolver/scripted_resolver.h"
#include "util/strings.h"
#include "util/table.h"

using namespace orp;

namespace {

struct ZooEntry {
  const char* name;
  resolver::BehaviorProfile profile;
};

std::vector<ZooEntry> make_zoo() {
  using resolver::AnswerMode;
  using resolver::BehaviorProfile;
  std::vector<ZooEntry> zoo;

  BehaviorProfile honest;
  honest.answer = AnswerMode::kRecursive;
  zoo.push_back({"honest open resolver", honest});

  BehaviorProfile ra_liar = honest;
  ra_liar.ra = false;
  zoo.push_back({"answers but claims RA=0", ra_liar});

  BehaviorProfile aa_liar = honest;
  aa_liar.aa = true;
  zoo.push_back({"claims authority (AA=1)", aa_liar});

  BehaviorProfile servfail_with_answer = honest;
  servfail_with_answer.rcode = dns::Rcode::kServFail;
  zoo.push_back({"answer with rcode=ServFail", servfail_with_answer});

  BehaviorProfile refuser;
  refuser.answer = AnswerMode::kNone;
  refuser.ra = false;
  refuser.rcode = dns::Rcode::kRefused;
  zoo.push_back({"refuser", refuser});

  BehaviorProfile noerror_empty;
  noerror_empty.answer = AnswerMode::kNone;
  noerror_empty.ra = true;
  zoo.push_back({"RA=1 but empty NoError", noerror_empty});

  BehaviorProfile manipulator;
  manipulator.answer = AnswerMode::kFixedIp;
  manipulator.fixed_answer = *net::IPv4Addr::parse("208.91.197.91");
  manipulator.ra = false;
  manipulator.aa = true;
  zoo.push_back({"manipulator -> ransomware IP", manipulator});

  BehaviorProfile home_router;
  home_router.answer = AnswerMode::kFixedIp;
  home_router.fixed_answer = net::IPv4Addr(192, 168, 1, 1);
  zoo.push_back({"redirect to private address", home_router});

  BehaviorProfile url_answerer;
  url_answerer.answer = AnswerMode::kUrl;
  url_answerer.text_answer = "u.dcoin.co";
  zoo.push_back({"URL instead of address", url_answerer});

  BehaviorProfile garbage;
  garbage.answer = AnswerMode::kGarbageString;
  garbage.text_answer = "wild";
  zoo.push_back({"garbage string answer", garbage});

  BehaviorProfile broken;
  broken.answer = AnswerMode::kUndecodable;
  zoo.push_back({"undecodable answer bytes", broken});

  BehaviorProfile headless;
  headless.answer = AnswerMode::kNone;
  headless.omit_question = true;
  headless.rcode = dns::Rcode::kServFail;
  zoo.push_back({"empty question section", headless});
  return zoo;
}

std::string verdict(const analysis::R2View& v) {
  std::vector<std::string> findings;
  if (!v.has_question) findings.push_back("question section missing");
  if (v.has_answer() && !v.ra)
    findings.push_back("answered while advertising RA=0");
  if (!v.has_answer() && v.ra && v.rcode == dns::Rcode::kNoError)
    findings.push_back("RA=1 NoError yet no answer");
  if (v.aa) findings.push_back("false authority claim (AA=1)");
  if (v.has_answer() && v.rcode != dns::Rcode::kNoError)
    findings.push_back("answer carried by error rcode");
  if (v.form == analysis::AnswerForm::kIp && !v.correct && v.has_question)
    findings.push_back("wrong A record");
  if (v.form == analysis::AnswerForm::kUrl)
    findings.push_back("name-valued answer to an A query");
  if (v.form == analysis::AnswerForm::kString)
    findings.push_back("non-address answer payload");
  if (v.form == analysis::AnswerForm::kUndecodable)
    findings.push_back("answer section does not parse");
  if (v.answer_ip && net::is_private_address(*v.answer_ip))
    findings.push_back("answer points into private space");
  if (findings.empty()) return "conforms";
  return util::join(findings, "; ");
}

}  // namespace

int main() {
  net::EventLoop loop;
  net::Network network(loop, 11);
  const zone::SubdomainScheme scheme(
      dns::DnsName::must_parse("ucfsealresearch.net"), 100000, 3);
  authns::AuthServer auth(network, net::IPv4Addr(45, 76, 18, 21), scheme,
                          net::SimTime::nanos(0));
  const auto hierarchy = resolver::build_hierarchy(
      network, scheme.sld(), scheme.sld().child("ns1"), auth.address(), 3);
  resolver::EngineConfig engine_config;
  engine_config.hints = hierarchy.hints;

  std::printf("interrogating %zu resolver profiles with fresh probe "
              "subdomains...\n\n",
              make_zoo().size());

  util::TextTable report({"resolver", "RA", "AA", "rcode", "answer", "verdict"});
  report.set_align(5, util::Align::kLeft);

  std::uint32_t index = 0;
  std::vector<std::unique_ptr<resolver::ResolverHost>> hosts;
  const net::Endpoint prober{net::IPv4Addr(132, 170, 3, 44), 54321};

  for (const auto& entry : make_zoo()) {
    const net::IPv4Addr addr(66, 77, 0, static_cast<std::uint8_t>(index));
    hosts.push_back(std::make_unique<resolver::ResolverHost>(
        network, addr, entry.profile, engine_config, index + 1));

    const zone::SubdomainId id{0, index};
    std::optional<prober::R2Record> r2;
    // R2Record::payload is a borrowed span; keep the bytes in an owned
    // buffer that outlives the datagram's pooled slab.
    std::vector<std::uint8_t> r2_wire;
    network.bind(prober, [&](const net::Datagram& d) {
      r2_wire = d.payload.to_vector();
      r2 = prober::R2Record{loop.now(), d.src.addr, r2_wire};
    });
    network.send(net::Datagram{
        prober, net::Endpoint{addr, net::kDnsPort},
        dns::encode(dns::make_query(static_cast<std::uint16_t>(index + 1),
                                    scheme.qname(id)))});
    loop.run();
    network.unbind(prober);

    if (!r2) {
      report.add_row({entry.name, "-", "-", "-", "(silent)", "no response"});
    } else {
      const analysis::R2View v = analysis::classify_r2(*r2, scheme);
      std::string answer;
      switch (v.form) {
        case analysis::AnswerForm::kNone: answer = "(none)"; break;
        case analysis::AnswerForm::kIp:
          answer = v.answer_ip->to_string() + (v.correct ? " (correct)" : "");
          break;
        case analysis::AnswerForm::kUrl:
        case analysis::AnswerForm::kString: answer = v.answer_text; break;
        case analysis::AnswerForm::kUndecodable: answer = "<garbled>"; break;
      }
      report.add_row({entry.name, v.ra ? "1" : "0", v.aa ? "1" : "0",
                      std::string(dns::to_string(v.rcode)), answer,
                      verdict(v)});
    }
    ++index;
  }

  std::printf("%s", report.render().c_str());
  std::printf("\nauth server saw %llu recursive queries — only the honest "
              "profiles ever contact it;\nmanipulated answers arrive without "
              "any recursion, the paper's key discriminator.\n",
              static_cast<unsigned long long>(auth.stats().queries_received));
  return 0;
}
