// scan_campaign: the full study in one binary — run both measurement
// campaigns (2013 and 2018 populations) at a chosen scale, print every
// behavioral table, and close with the temporal contrast of §IV.
//
// Runs with the observability layer on: live progress on stderr while the
// shards scan, and a post-run snapshot of the merged campaign metrics and
// sampled flow traces written beside the binary:
//
//   obs_snapshot.prom   prometheus text exposition of every metric
//   obs_snapshot.jsonl  the same snapshot, one JSON object per metric
//   obs_traces.jsonl    sampled Q1->Q2->R1->R2 span timelines (2018 run)
//
//   ./scan_campaign [scale] [seed] [threads]
#include <cstdio>
#include <cstdlib>

#include "analysis/report.h"
#include "core/contrast.h"
#include "core/paper_data.h"
#include "core/pipeline.h"
#include "obs/export.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace orp;
  core::PipelineConfig config;
  config.scale = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2048;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  config.threads =
      argc > 3 ? static_cast<unsigned>(std::strtoul(argv[3], nullptr, 10)) : 1;
  config.obs.metrics = true;
  config.obs.trace_sample_every = 64;
  config.obs.progress_interval_s = 1.0;

  std::printf("%s", util::section_title("Open-resolver behavioral survey")
                        .c_str());
  std::printf("scale 1/%llu, seed %llu, threads %u\n\n",
              static_cast<unsigned long long>(config.scale),
              static_cast<unsigned long long>(config.seed), config.threads);

  const core::ScanOutcome o13 =
      core::run_measurement(core::paper_2013(), config);
  std::printf("2013 campaign: %s simulated, %s probes, %s responses\n",
              util::human_duration(o13.sim_duration_seconds).c_str(),
              util::with_commas(o13.scan.q1_sent).c_str(),
              util::with_commas(o13.scan.r2_received).c_str());
  const core::ScanOutcome o18 =
      core::run_measurement(core::paper_2018(), config);
  std::printf("2018 campaign: %s simulated, %s probes, %s responses\n\n",
              util::human_duration(o18.sim_duration_seconds).c_str(),
              util::with_commas(o18.scan.q1_sent).c_str(),
              util::with_commas(o18.scan.r2_received).c_str());

  std::printf("%s", util::section_title("Answer correctness (Table III)")
                        .c_str());
  std::printf("%s\n", analysis::render_answer_table(
                          {{"2013", o13.analysis.answers},
                           {"2018", o18.analysis.answers}})
                          .c_str());

  std::printf("%s", util::section_title("RA flag (Table IV)").c_str());
  std::printf("%s\n", analysis::render_flag_table({{"2013", o13.analysis.ra},
                                                   {"2018", o18.analysis.ra}},
                                                  "RA")
                          .c_str());

  std::printf("%s", util::section_title("AA flag (Table V)").c_str());
  std::printf("%s\n", analysis::render_flag_table({{"2013", o13.analysis.aa},
                                                   {"2018", o18.analysis.aa}},
                                                  "AA")
                          .c_str());

  std::printf("%s", util::section_title("Response codes (Table VI)").c_str());
  std::printf("%s\n", analysis::render_rcode_table(
                          {{"2013", o13.analysis.rcodes},
                           {"2018", o18.analysis.rcodes}})
                          .c_str());

  std::printf("%s",
              util::section_title("Incorrect answers (Table VII)").c_str());
  std::printf("%s\n", analysis::render_incorrect_table(
                          {{"2013", o13.analysis.incorrect},
                           {"2018", o18.analysis.incorrect}})
                          .c_str());

  std::printf("%s",
              util::section_title("Top incorrect addresses (Table VIII)")
                  .c_str());
  std::printf("2018:\n%s\n",
              analysis::render_top10_table(o18.analysis.top10).c_str());

  std::printf("%s",
              util::section_title("Malicious answers (Tables IX-X)").c_str());
  std::printf("%s\n", analysis::render_malicious_table(
                          {{"2013", o13.analysis.malicious},
                           {"2018", o18.analysis.malicious}})
                          .c_str());
  std::printf("%s\n", analysis::render_malicious_flags_table(
                          {{"2013", o13.analysis.malicious},
                           {"2018", o18.analysis.malicious}})
                          .c_str());

  std::printf("%s", util::section_title("Geography of malicious resolvers")
                        .c_str());
  std::printf("2018:\n%s\n",
              analysis::render_geo_summary(o18.analysis.geo).c_str());

  std::printf("%s",
              util::section_title("Empty-question responses (§IV-B4)").c_str());
  std::printf("%s\n", analysis::render_empty_question_summary(
                          o18.analysis.empty_question)
                          .c_str());

  std::printf("%s", util::section_title("Temporal contrast").c_str());
  const core::TemporalContrast c =
      core::contrast(o13.analysis, o18.analysis);
  std::printf("%s", core::render_contrast(c, 2013, 2018).c_str());

  // The live-campaign snapshot: merged metrics of both campaigns (one
  // Metrics instance folds the other — the same deterministic merge the
  // shards use), plus the 2018 run's sampled flow timelines.
  std::printf("%s", util::section_title("Observability snapshot").c_str());
  obs::Metrics merged = o13.metrics;
  merged += o18.metrics;
  obs::write_text_file("obs_snapshot.prom", obs::to_prometheus(merged));
  obs::write_text_file("obs_snapshot.jsonl", obs::to_jsonl(merged));
  obs::write_text_file("obs_traces.jsonl", obs::traces_to_jsonl(o18.traces));
  const obs::Builtin& b = obs::builtin();
  std::printf("events run        %s (queue peak %s)\n",
              util::with_commas(merged.counter(b.loop_events_run)).c_str(),
              util::with_commas(merged.gauge(b.loop_queue_peak)).c_str());
  std::printf("packets           %s sent, %s delivered, %s dropped\n",
              util::with_commas(merged.counter(b.net_sent)).c_str(),
              util::with_commas(merged.counter(b.net_delivered)).c_str(),
              util::with_commas(merged.counter(b.net_dropped_loss) +
                                merged.counter(b.net_dropped_unbound))
                  .c_str());
  std::printf("resolver cache    %s bypasses (unique probe names defeat "
              "caching by design)\n",
              util::with_commas(merged.counter(b.resolver_cache_bypass))
                  .c_str());
  std::printf("flow traces       %s flows sampled (1/%llu), %s span records "
              "(2018: %zu records)\n",
              util::with_commas(merged.counter(b.trace_flows_sampled)).c_str(),
              static_cast<unsigned long long>(config.obs.trace_sample_every),
              util::with_commas(merged.counter(b.trace_records)).c_str(),
              o18.traces.records().size());
  std::printf("wrote obs_snapshot.prom, obs_snapshot.jsonl, "
              "obs_traces.jsonl\n");
  return 0;
}
