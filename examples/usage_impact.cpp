// usage_impact: the paper's §V future work, realized — how much legitimate
// user traffic do malicious open resolvers actually capture?
//
// Synthesizes a DITL-like workload (Zipf domain popularity, Zipf resolver
// market share) over a resolver pool whose malicious fraction matches the
// 2018 calibration, and sweeps that fraction to show how impact scales.
//
//   ./usage_impact [clients] [seed]
#include <cstdio>
#include <cstdlib>

#include "core/usage_study.h"
#include "util/strings.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace orp;
  core::UsageStudyConfig config;
  config.clients = argc > 1 ? std::atoi(argv[1]) : 1000;
  config.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  std::printf("%s", util::section_title(
                        "Usage impact of malicious open resolvers (§V)")
                        .c_str());

  std::printf("\nbaseline: 2018-calibrated malicious fraction (0.9%% of the "
              "pool)\n\n");
  const core::UsageStudyResult baseline = core::run_usage_study(config);
  std::printf("%s", core::render_usage_study(baseline).c_str());

  std::printf(
      "\nsweep: misdirection vs malicious-resolver share of the pool\n\n");
  util::TextTable sweep({"malicious share", "clients exposed",
                         "queries misdirected"});
  for (const double fraction : {0.0, 0.003, 0.009, 0.03, 0.10}) {
    core::UsageStudyConfig c = config;
    c.malicious_fraction = fraction;
    c.clients = config.clients / 2;  // keep the sweep quick
    const auto r = core::run_usage_study(c);
    sweep.add_row({util::fixed(100.0 * fraction, 1) + "%",
                   util::fixed(r.client_exposure_rate(), 2) + "%",
                   util::fixed(r.misdirection_rate(), 2) + "%"});
  }
  std::printf("%s", sweep.render().c_str());

  std::printf(
      "\nreading: a malicious open resolver only matters when clients are "
      "configured to use\nit — \"if no user queries the malicious open "
      "resolver, the manipulated DNS record is\nessentially meaningless\" "
      "(§V). Impact scales with the resolvers' market share, not\njust "
      "their count; the study quantifies the exposure the paper could only "
      "pose as an\nopen question.\n");
  return 0;
}
