#!/usr/bin/env bash
# The one-command pre-merge gate: tier-1 build + full ctest suite, then both
# sanitizer presets (wire path under asan+ubsan, net/pipeline under asan).
#
#   scripts/check_all.sh                 # everything (tier-1 + sanitizers)
#   ORP_SKIP_SANITIZE=1 scripts/check_all.sh   # tier-1 only (fast loop)
#
# Build trees: build/ for tier-1, build-sanitize/ for the sanitizer presets
# (both scripts share it — same flags, one configure).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

echo "==== tier-1: configure + build ===="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)"

echo "==== tier-1: ctest ===="
ctest --test-dir "$BUILD_DIR" --output-on-failure

echo "==== tier-1: bench smoke ===="
# One single-shard campaign through the bench binary's JSON-emit path —
# fails the gate if the campaign or the artifact write breaks. Seconds, not
# the full threads sweep.
"$BUILD_DIR/bench/bench_micro_scan" --quick
rm -f BENCH_scan.quick.json

if [[ "${ORP_SKIP_SANITIZE:-0}" != "1" ]]; then
  echo "==== sanitize: wire path ===="
  scripts/sanitize_wire_tests.sh
  echo "==== sanitize: net + pipeline ===="
  scripts/sanitize_net_tests.sh
fi

echo "==== check_all: OK ===="
