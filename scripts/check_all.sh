#!/usr/bin/env bash
# The one-command pre-merge gate: tier-1 build + full ctest suite, then both
# sanitizer presets (wire path under asan+ubsan, net/pipeline under asan).
#
#   scripts/check_all.sh                 # everything (tier-1 + sanitizers)
#   ORP_SKIP_SANITIZE=1 scripts/check_all.sh   # tier-1 only (fast loop)
#
# Build trees: build/ for tier-1, build-sanitize/ for the sanitizer presets
# (both scripts share it — same flags, one configure).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"

echo "==== tier-1: configure + build ===="
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j"$(nproc)"

echo "==== tier-1: ctest ===="
ctest --test-dir "$BUILD_DIR" --output-on-failure

echo "==== tier-1: bench smoke + perf floor ===="
# Single-shard campaigns through the bench binary's JSON-emit path — fails
# the gate if the campaign or the artifact write breaks. Seconds, not the
# full threads sweep. Best-of-3 guards the floor check against a loaded
# neighbor; the floor (250k events/sec at threads=1) is set well under the
# ~346k the template-stamped path records, so tripping it means a real
# regression (e.g. the wire-template fast path went dead), not noise.
PERF_FLOOR_EPS=250000
best_eps=0
for _ in 1 2 3; do
  "$BUILD_DIR/bench/bench_micro_scan" --quick
  eps=$(sed -n 's/.*"events_per_sec": \([0-9]*\).*/\1/p' BENCH_scan.quick.json)
  rm -f BENCH_scan.quick.json
  [[ "$eps" -gt "$best_eps" ]] && best_eps=$eps
done
echo "perf floor: best events/sec = $best_eps (floor $PERF_FLOOR_EPS)"
if [[ "$best_eps" -lt "$PERF_FLOOR_EPS" ]]; then
  echo "check_all: FAIL — threads=1 campaign below the perf floor" >&2
  exit 1
fi

echo "==== tier-1: amplification-resiliency study ===="
# The stream-transport acceptance row: the bench itself exits non-zero if
# any truncating profile's post-fallback (spoofable) amplification fails to
# drop below its UDP-only leg, so a plain run IS the check. The grep just
# confirms the artifact carries the per-profile rows downstream readers
# parse. Small host count — this is a smoke row, not the full study.
"$BUILD_DIR/bench/bench_tcp_fallback" BENCH_tcp.json 6
profile_rows=$(grep -c '"profile":' BENCH_tcp.json || true)
rm -f BENCH_tcp.json
echo "amplification study: $profile_rows profile rows, truncating profiles all dropped"
if [[ "$profile_rows" -lt 4 ]]; then
  echo "check_all: FAIL — BENCH_tcp.json missing profile rows" >&2
  exit 1
fi

echo "==== tier-1: streaming-analysis memory ceiling ===="
# One forked streaming campaign at scale 256; the child's ru_maxrss is the
# whole-process peak. The ceiling (128 MB) sits ~2.7x above the ~46 MB a
# healthy streaming run peaks at — tripping it means per-response state is
# being retained again (the O(probes) view buffer the streaming analyzer
# exists to eliminate), not noise. BENCH_analysis.ci.json also records
# analysis_bytes: the bytes retained to produce the tables, which should
# stay in the KB range while posthoc runs carry MBs.
RSS_CEILING_KB=131072
"$BUILD_DIR/bench/bench_micro_analysis" --ci
rss_kb=$(sed -n 's/.*"peak_rss_kb": \([0-9]*\).*/\1/p' BENCH_analysis.ci.json)
echo "memory ceiling: scale-256 streaming peak RSS = ${rss_kb} KB (ceiling $RSS_CEILING_KB)"
if [[ -z "$rss_kb" || "$rss_kb" -gt "$RSS_CEILING_KB" ]]; then
  echo "check_all: FAIL — streaming campaign peak RSS above the ceiling" >&2
  exit 1
fi

if [[ "${ORP_SKIP_SANITIZE:-0}" != "1" ]]; then
  echo "==== sanitize: wire path ===="
  scripts/sanitize_wire_tests.sh
  echo "==== sanitize: net + pipeline ===="
  scripts/sanitize_net_tests.sh
fi

echo "==== check_all: OK ===="
