#!/usr/bin/env bash
# Run the simulation-core test suites under AddressSanitizer +
# UndefinedBehaviorSanitizer, and the sharded-pipeline suite under
# ThreadSanitizer.
#
# The zero-allocation core trades owned buffers for shared ones: pooled
# PayloadRef slabs are refcounted across in-flight events, taps, and the
# receiving handler; CaptureStore and R2Store records are {offset,len} /
# span views into append-only arenas; InlineAction relocates closures inside
# a fixed buffer during heap sifts. A lifetime or aliasing mistake in any of
# those would corrupt memory rather than fail a value assertion, and a
# missed happens-before edge between shard loops would corrupt the merge —
# this preset makes both loud. The batched dispatch path (EventLoop batch
# drain, Network DatagramBatch pools, endpoint batch handlers, RRL
# check_batch) rides along via test_net / test_pipeline / test_rrl, and the
# stream transport (pooled connection slots, segment queues reusing the same
# PayloadRef slabs, reassembly across capacity classes) via test_stream plus
# the DoTCP-retry suites in test_prober / test_alloc_budget. Usage:
#
#   scripts/sanitize_net_tests.sh          # configure, build, run both
#   BUILD_DIR=build-asan TSAN_BUILD_DIR=build-tsan scripts/sanitize_net_tests.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-sanitize}"
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
TESTS=(test_net test_stream test_prober test_pipeline test_alloc_budget test_obs test_rrl)

status=0

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DORP_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j"$(nproc)" --target "${TESTS[@]}"

for t in "${TESTS[@]}"; do
  echo "==== $t (asan+ubsan) ===="
  "$BUILD_DIR/tests/$t" || status=1
done

# TSan is incompatible with ASan, so the cross-thread checks (S shard loops
# running concurrently, merged on the coordinator; obs beacons published by
# shards while the progress reporter thread reads them) need their own tree.
cmake -B "$TSAN_BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DORP_SANITIZE=thread
cmake --build "$TSAN_BUILD_DIR" -j"$(nproc)" --target test_pipeline test_obs

# PipelineSharding.* includes TcpFallbackSweepIsPinned, so the stream
# transport runs under TSan with DoTCP fallback engaged across the
# threads x batch-cap sweep, not just in single-threaded unit tests.
echo "==== test_pipeline PipelineSharding.* (tsan) ===="
"$TSAN_BUILD_DIR/tests/test_pipeline" --gtest_filter='PipelineSharding.*' ||
  status=1

echo "==== test_obs ObsPipeline.* (tsan) ===="
"$TSAN_BUILD_DIR/tests/test_obs" --gtest_filter='ObsPipeline.*' || status=1

exit $status
