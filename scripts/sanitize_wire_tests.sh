#!/usr/bin/env bash
# Run the DNS wire-path and analysis test suites under AddressSanitizer +
# UndefinedBehaviorSanitizer.
#
# The allocation-light wire path trades materialized copies for borrowed
# spans (DecodeView) and reused scratch buffers (EncodeBuffer), so lifetime
# or aliasing mistakes there would corrupt memory rather than fail a value
# assertion. This preset makes those mistakes loud. Usage:
#
#   scripts/sanitize_wire_tests.sh          # configure, build, run
#   BUILD_DIR=build-asan scripts/sanitize_wire_tests.sh
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-sanitize}"
TESTS=(test_dns test_edns test_fuzz test_wire_template test_alloc_budget test_analysis)

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DORP_SANITIZE=address,undefined
cmake --build "$BUILD_DIR" -j"$(nproc)" --target "${TESTS[@]}"

status=0
for t in "${TESTS[@]}"; do
  echo "==== $t (asan+ubsan) ===="
  "$BUILD_DIR/tests/$t" || status=1
done
exit $status
