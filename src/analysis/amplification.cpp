#include "analysis/amplification.h"

#include <cstdio>

#include "util/table.h"

namespace orp::analysis {

namespace {

double ratio(std::uint64_t out, std::uint64_t in) noexcept {
  return in == 0 ? 0.0 : static_cast<double>(out) / static_cast<double>(in);
}

std::string fixed2(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", v);
  return buf;
}

}  // namespace

double AmplificationRow::amp_udp_only() const noexcept {
  return ratio(udp_only.bytes_out, udp_only.bytes_in);
}

double AmplificationRow::amp_post_fallback() const noexcept {
  return ratio(post_udp.bytes_out, post_udp.bytes_in);
}

AmplificationRow& AmplificationReport::row(std::string label) {
  for (AmplificationRow& r : rows_)
    if (r.label == label) return r;
  rows_.emplace_back();
  rows_.back().label = std::move(label);
  return rows_.back();
}

std::string AmplificationReport::render() const {
  util::TextTable t({"profile", "udp-only B out/in", "amp", "reflected B",
                     "tcp B out/in", "amp post", "cut"});
  for (std::size_t c = 1; c < 7; ++c) t.set_align(c, util::Align::kRight);
  for (const AmplificationRow& r : rows_) {
    const double before = r.amp_udp_only();
    const double after = r.amp_post_fallback();
    const double cut =
        before <= 0.0 ? 0.0 : 100.0 * (1.0 - after / before);
    t.add_row({r.label,
               std::to_string(r.udp_only.bytes_out) + "/" +
                   std::to_string(r.udp_only.bytes_in),
               fixed2(before) + "x", std::to_string(r.post_udp.bytes_out),
               std::to_string(r.post_tcp.bytes_out) + "/" +
                   std::to_string(r.post_tcp.bytes_in),
               fixed2(after) + "x", fixed2(cut) + "%"});
  }
  return t.render();
}

std::string AmplificationReport::to_json() const {
  std::string json = "[\n";
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    const AmplificationRow& r = rows_[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  {\"profile\": \"%s\",\n"
        "   \"udp_only\": {\"bytes_in\": %llu, \"bytes_out\": %llu,"
        " \"amplification\": %.4f},\n"
        "   \"post_fallback\": {\"udp_bytes_in\": %llu,"
        " \"udp_bytes_out\": %llu, \"tcp_bytes_in\": %llu,"
        " \"tcp_bytes_out\": %llu, \"amplification\": %.4f},\n"
        "   \"queries\": %llu, \"truncated\": %llu,"
        " \"tcp_retries\": %llu, \"tcp_answers\": %llu}",
        r.label.c_str(),
        static_cast<unsigned long long>(r.udp_only.bytes_in),
        static_cast<unsigned long long>(r.udp_only.bytes_out),
        r.amp_udp_only(),
        static_cast<unsigned long long>(r.post_udp.bytes_in),
        static_cast<unsigned long long>(r.post_udp.bytes_out),
        static_cast<unsigned long long>(r.post_tcp.bytes_in),
        static_cast<unsigned long long>(r.post_tcp.bytes_out),
        r.amp_post_fallback(),
        static_cast<unsigned long long>(r.queries),
        static_cast<unsigned long long>(r.truncated),
        static_cast<unsigned long long>(r.tcp_retries),
        static_cast<unsigned long long>(r.tcp_answers));
    json += buf;
    json += i + 1 < rows_.size() ? ",\n" : "\n";
  }
  json += "]";
  return json;
}

}  // namespace orp::analysis
