// Amplification-resiliency accounting for the stream-transport study.
//
// The paper's §V warning is that open resolvers are reflector fuel: a small
// spoofed UDP query yields a large UDP answer aimed at the victim. The
// classic mitigation pair is truncation (cap UDP answers, set TC=1) plus
// DoTCP fallback (RFC 7766) — the truncated reflection is small, and the
// full answer moves to a transport that requires return-routability, which a
// spoofing attacker does not have.
//
// This module is the pure accounting side of that experiment: per measured
// profile it holds two legs,
//
//   * UDP-only       — no truncation: every answer is reflected in full.
//                      amp = udp_bytes_out / udp_bytes_in, the classic
//                      amplification factor.
//   * post-fallback  — truncation + DoTCP: amp counts only the *reflected*
//                      (spoofable) UDP bytes. TCP bytes are reported beside
//                      it as attacker cost context, never as amplification —
//                      a TCP handshake proves return-routability, so those
//                      bytes reach the attacker, not the victim.
//
// For any truncating profile, post-fallback amplification is lower than
// UDP-only by construction (the reflected answer is a prefix of the full
// one); the bench asserts exactly that. Measurement (byte taps, connection
// accounting) lives with the harnesses — this file depends only on util.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace orp::analysis {

/// Byte totals for one transport direction pair, as seen at the resolver:
/// `in` is attacker->resolver query bytes, `out` is resolver->victim (UDP)
/// or resolver->prober (TCP) response bytes.
struct ByteLeg {
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

/// One measured profile: the same query load with and without the
/// truncation + DoTCP defenses.
struct AmplificationRow {
  std::string label;

  /// Defense off: full answers over UDP.
  ByteLeg udp_only;

  /// Defense on: `post_udp` is the reflected (truncated) UDP traffic,
  /// `post_tcp` the DoTCP retry traffic that replaced the cut bytes.
  ByteLeg post_udp;
  ByteLeg post_tcp;

  /// Flow counts for the defended leg.
  std::uint64_t queries = 0;
  std::uint64_t truncated = 0;
  std::uint64_t tcp_retries = 0;
  std::uint64_t tcp_answers = 0;

  /// Classic reflector factor (0 when no query bytes were seen).
  double amp_udp_only() const noexcept;
  /// Spoofable amplification with the defense on: reflected UDP bytes out
  /// over UDP bytes in. TCP bytes are deliberately excluded (see header).
  double amp_post_fallback() const noexcept;
};

/// The study's result table: one row per profile, rendered in insertion
/// order (deterministic — no map reordering).
class AmplificationReport {
 public:
  AmplificationRow& row(std::string label);
  const std::vector<AmplificationRow>& rows() const noexcept { return rows_; }

  /// Paper-style ASCII table: both legs' bytes, both factors, and the
  /// factor reduction.
  std::string render() const;

  /// Machine-readable form for BENCH_tcp.json (stable key order).
  std::string to_json() const;

 private:
  std::vector<AmplificationRow> rows_;
};

}  // namespace orp::analysis
