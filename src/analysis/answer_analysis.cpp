#include "analysis/answer_analysis.h"

namespace orp::analysis {

AnswerBreakdown analyze_answers(std::span<const R2View> views) {
  AnswerBreakdown out;
  for (const R2View& v : views) {
    if (!v.has_question) continue;
    ++out.r2;
    if (!v.has_answer()) {
      ++out.without_answer;
    } else if (v.form == AnswerForm::kIp && v.correct) {
      ++out.correct;
    } else {
      ++out.incorrect;
    }
  }
  return out;
}

}  // namespace orp::analysis
