// Table III: presence and correctness of the answer section.
//
// Convention followed throughout the analyzers (as in the paper, §IV): only
// R2 packets whose question section is present participate; the
// empty-question packets get their own analysis (§IV-B4 /
// empty_question.h). "Incorrect" means an answer section is present but its
// content is not the ground truth — wrong IP, URL instead of an address,
// garbage string, or undecodable bytes.
#pragma once

#include <cstdint>
#include <span>

#include "analysis/flow.h"
#include "util/apportion.h"

namespace orp::analysis {

struct AnswerBreakdown {
  std::uint64_t r2 = 0;              // responses with a question section
  std::uint64_t without_answer = 0;  // "W/O"
  std::uint64_t correct = 0;         // "W_Corr"
  std::uint64_t incorrect = 0;       // "W_Incorr"

  std::uint64_t with_answer() const noexcept { return correct + incorrect; }
  double err_percent() const noexcept {
    return util::percent(incorrect, with_answer());
  }

  /// Shard merge for the streaming analysis path (counters sum).
  AnswerBreakdown& operator+=(const AnswerBreakdown& o) noexcept {
    r2 += o.r2;
    without_answer += o.without_answer;
    correct += o.correct;
    incorrect += o.incorrect;
    return *this;
  }
};

AnswerBreakdown analyze_answers(std::span<const R2View> views);

}  // namespace orp::analysis
