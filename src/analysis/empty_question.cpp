#include "analysis/empty_question.h"

namespace orp::analysis {

EmptyQuestionSummary analyze_empty_question(std::span<const R2View> views,
                                            const intel::OrgDb& orgs) {
  EmptyQuestionSummary out;
  for (const R2View& v : views) {
    if (v.has_question || !v.header_decoded) continue;
    ++out.total;
    ++out.rcode[static_cast<std::size_t>(v.rcode)];
    if (v.ra)
      ++out.ra1;
    else
      ++out.ra0;
    if (v.aa) ++out.aa1;

    if (v.has_answer()) {
      ++out.with_answer;
      // With no question there is no subdomain to derive ground truth from;
      // nothing can be judged correct (matching the paper: 0 of 19).
      if (v.correct) ++out.correct;
      if (v.form == AnswerForm::kIp && v.answer_ip) {
        if (net::is_private_address(*v.answer_ip))
          ++out.private_answers;
        else if (orgs.org_of(*v.answer_ip) == "unknown")
          ++out.unknown_org;
      } else {
        ++out.malformed_answers;
      }
      if (!v.ra) ++out.ra0_with_answer;
    } else if (v.ra) {
      ++out.ra1_without_answer;
    }
  }
  return out;
}

}  // namespace orp::analysis
