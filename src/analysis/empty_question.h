// §IV-B4: the R2 packets that came back with no question section at all —
// unmatchable to their probes and excluded from the main tables, but still
// behaviorally interesting (the paper gives them their own sub-analysis).
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "analysis/flow.h"
#include "intel/org_db.h"

namespace orp::analysis {

struct EmptyQuestionSummary {
  std::uint64_t total = 0;
  std::uint64_t with_answer = 0;
  std::uint64_t correct = 0;  // the paper found zero
  std::uint64_t private_answers = 0;    // 192.168/16, 10/8, ...
  std::uint64_t malformed_answers = 0;  // non-IP garbage
  std::uint64_t unknown_org = 0;        // answer IP absent from Whois

  std::uint64_t ra1 = 0;
  std::uint64_t ra0 = 0;
  std::uint64_t ra1_without_answer = 0;
  std::uint64_t ra0_with_answer = 0;  // the paper found zero
  std::uint64_t aa1 = 0;

  std::array<std::uint64_t, dns::kRcodeCount> rcode{};

  /// Shard merge for the streaming analysis path (every field is a count).
  EmptyQuestionSummary& operator+=(const EmptyQuestionSummary& o) noexcept {
    total += o.total;
    with_answer += o.with_answer;
    correct += o.correct;
    private_answers += o.private_answers;
    malformed_answers += o.malformed_answers;
    unknown_org += o.unknown_org;
    ra1 += o.ra1;
    ra0 += o.ra0;
    ra1_without_answer += o.ra1_without_answer;
    ra0_with_answer += o.ra0_with_answer;
    aa1 += o.aa1;
    for (std::size_t i = 0; i < rcode.size(); ++i) rcode[i] += o.rcode[i];
    return *this;
  }
};

EmptyQuestionSummary analyze_empty_question(std::span<const R2View> views,
                                            const intel::OrgDb& orgs);

}  // namespace orp::analysis
