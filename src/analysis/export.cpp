#include "analysis/export.h"

#include <sstream>

namespace orp::analysis {

std::string csv_escape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

std::string views_to_csv(std::span<const R2View> views) {
  std::ostringstream out;
  out << "resolver,time_s,has_question,ra,aa,rcode,form,answer,correct\n";
  for (const R2View& v : views) {
    out << v.resolver.to_string() << ',' << v.time.as_seconds() << ','
        << (v.has_question ? 1 : 0) << ',' << (v.ra ? 1 : 0) << ','
        << (v.aa ? 1 : 0) << ',' << dns::to_string(v.rcode) << ','
        << to_string(v.form) << ',';
    if (v.answer_ip)
      out << v.answer_ip->to_string();
    else
      out << csv_escape(v.answer_text);
    out << ',' << (v.correct ? 1 : 0) << '\n';
  }
  return out.str();
}

std::string analysis_to_csv(const ScanAnalysis& a) {
  std::ostringstream out;
  out << "metric,value\n";
  auto row = [&out](std::string_view key, std::uint64_t value) {
    out << key << ',' << value << '\n';
  };
  row("r2_total", a.r2_total);
  row("answers_without", a.answers.without_answer);
  row("answers_correct", a.answers.correct);
  row("answers_incorrect", a.answers.incorrect);
  out << "error_rate_percent," << a.answers.err_percent() << '\n';
  row("ra0_without", a.ra.bit0.without_answer);
  row("ra0_correct", a.ra.bit0.correct);
  row("ra0_incorrect", a.ra.bit0.incorrect);
  row("ra1_without", a.ra.bit1.without_answer);
  row("ra1_correct", a.ra.bit1.correct);
  row("ra1_incorrect", a.ra.bit1.incorrect);
  row("aa1_total", a.aa.bit1.total());
  row("aa1_incorrect", a.aa.bit1.incorrect);
  for (std::size_t rc = 0; rc < a.rcodes.rows.size(); ++rc) {
    const auto& r = a.rcodes.rows[rc];
    if (r.total() == 0) continue;
    out << "rcode_" << dns::to_string(static_cast<dns::Rcode>(rc))
        << "_with," << r.with_answer << '\n';
    out << "rcode_" << dns::to_string(static_cast<dns::Rcode>(rc))
        << "_without," << r.without_answer << '\n';
  }
  row("incorrect_ip", a.incorrect.ip.r2);
  row("incorrect_url", a.incorrect.url.r2);
  row("incorrect_string", a.incorrect.str.r2);
  row("incorrect_undecodable", a.incorrect.na.r2);
  row("malicious_r2", a.malicious.total_r2);
  row("malicious_ips", a.malicious.total_ips);
  row("malicious_ra0", a.malicious.ra0);
  row("malicious_aa1", a.malicious.aa1);
  for (std::size_t c = 0; c < a.malicious.categories.size(); ++c) {
    const auto& cat = a.malicious.categories[c];
    if (cat.r2 == 0) continue;
    out << "malicious_"
        << csv_escape(std::string(
               intel::to_string(static_cast<intel::ThreatCategory>(c))))
        << ',' << cat.r2 << '\n';
  }
  for (const auto& country : a.geo.countries)
    out << "geo_" << country.country << ',' << country.r2 << '\n';
  row("empty_question_total", a.empty_question.total);
  return out.str();
}

}  // namespace orp::analysis
