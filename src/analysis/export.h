// Tabular export of scan results (CSV) for downstream tooling — the role
// the public Censys/Rapid7 data dumps play for their scans (§V).
#pragma once

#include <span>
#include <string>

#include "analysis/flow.h"
#include "analysis/report.h"

namespace orp::analysis {

/// One CSV row per R2: resolver, header bits, rcode, answer form/value,
/// correctness. RFC 4180-style quoting.
std::string views_to_csv(std::span<const R2View> views);

/// A key/value summary CSV of the full analysis (one metric per row).
std::string analysis_to_csv(const ScanAnalysis& analysis);

/// Quote one CSV field (exposed for tests).
std::string csv_escape(std::string_view field);

}  // namespace orp::analysis
