#include "analysis/flow.h"

#include <algorithm>
#include <unordered_map>

#include "util/rng.h"

namespace orp::analysis {

std::string_view to_string(AnswerForm f) noexcept {
  switch (f) {
    case AnswerForm::kNone: return "none";
    case AnswerForm::kIp: return "IP";
    case AnswerForm::kUrl: return "URL";
    case AnswerForm::kString: return "string";
    case AnswerForm::kUndecodable: return "N/A";
  }
  return "?";
}

R2View classify_r2(const prober::R2Record& record,
                   const zone::SubdomainScheme& scheme) {
  R2View view;
  view.resolver = record.resolver;
  view.time = record.time;

  const dns::PartialDecode partial = dns::decode_partial(record.payload);
  if (partial.failed_at == dns::DecodeStage::kHeader) {
    view.header_decoded = false;
    return view;
  }
  const dns::Message& msg = partial.message;
  view.ra = msg.header.flags.ra;
  view.aa = msg.header.flags.aa;
  view.rcode = msg.header.flags.rcode;
  view.has_question = !msg.questions.empty();

  if (view.has_question)
    view.subdomain = scheme.parse(msg.questions.front().qname);

  // Answer-section failure after a clean question: the Table VII N/A class.
  if (partial.failed_at == dns::DecodeStage::kQuestion) {
    view.has_question = false;
    return view;
  }
  if (partial.failed_at == dns::DecodeStage::kAnswer) {
    view.form = AnswerForm::kUndecodable;
    return view;
  }

  if (msg.answers.empty()) {
    view.form = AnswerForm::kNone;
    return view;
  }

  // Judge the first answer record, as the paper's single-question probes do.
  const dns::ResourceRecord& rr = msg.answers.front();
  if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata)) {
    view.form = AnswerForm::kIp;
    view.answer_ip = a->addr;
    if (view.subdomain)
      view.correct = (a->addr == scheme.ground_truth(*view.subdomain));
    return view;
  }
  if (const auto* n = std::get_if<dns::NameRdata>(&rr.rdata)) {
    view.form = AnswerForm::kUrl;
    view.answer_text = n->name.to_string();
    return view;
  }
  if (const auto* t = std::get_if<dns::TxtRdata>(&rr.rdata)) {
    view.form = AnswerForm::kString;
    for (const auto& s : t->strings) {
      if (!view.answer_text.empty()) view.answer_text += " ";
      view.answer_text += s;
    }
    return view;
  }
  // Anything else (raw bytes, OPT, ...) is a garbage-string answer.
  view.form = AnswerForm::kString;
  if (const auto* raw = std::get_if<dns::RawRdata>(&rr.rdata)) {
    static constexpr char kHex[] = "0123456789abcdef";
    for (const std::uint8_t b : raw->bytes) {
      view.answer_text.push_back(kHex[b >> 4]);
      view.answer_text.push_back(kHex[b & 0xF]);
    }
  }
  return view;
}

std::vector<R2View> classify_all(const std::vector<prober::R2Record>& records,
                                 const zone::SubdomainScheme& scheme) {
  std::vector<R2View> views;
  views.reserve(records.size());
  for (const auto& rec : records) views.push_back(classify_r2(rec, scheme));
  return views;
}

std::vector<R2View> merge_views(std::vector<std::vector<R2View>> shards) {
  std::vector<R2View> merged;
  std::size_t total = 0;
  for (const auto& s : shards) total += s.size();
  merged.reserve(total);
  for (auto& s : shards)
    merged.insert(merged.end(), std::make_move_iterator(s.begin()),
                  std::make_move_iterator(s.end()));
  std::stable_sort(merged.begin(), merged.end(),
                   [](const R2View& a, const R2View& b) {
                     return a.resolver.value() < b.resolver.value();
                   });
  return merged;
}

std::uint64_t behavior_digest(const std::vector<R2View>& views) {
  std::uint64_t digest = 0;
  for (const R2View& v : views) {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    const auto fold = [&h](std::uint64_t x) {
      h = (h ^ x) * 0x100000001b3ULL;
    };
    fold(v.resolver.value());
    fold(v.header_decoded);
    fold(v.has_question);
    fold(v.ra);
    fold(v.aa);
    fold(static_cast<std::uint64_t>(v.rcode));
    fold(static_cast<std::uint64_t>(v.form));
    fold(v.correct);
    // A *correct* answer IP is the ground truth of whichever probe name the
    // scanner happened to allocate — an ordering artifact, excluded. An
    // incorrect one is the resolver's own rewrite target — behavior, folded.
    if (v.answer_ip && !v.correct) fold(v.answer_ip->value());
    fold(util::fnv1a64(v.answer_text));
    // Wrapping sum: commutative, so the digest ignores view order entirely.
    digest += util::mix64(h);
  }
  return digest;
}

void FlowGrouper::add_probe(const dns::DnsName& qname, net::IPv4Addr target) {
  Flow& flow = flows_[qname.canonical_key()];
  flow.qname_key = qname.canonical_key();
  flow.probed_target = target;
}

void FlowGrouper::add_auth_packet(const net::CapturedPacket& pkt,
                                  bool inbound) {
  const dns::PartialDecode partial = dns::decode_partial(pkt.payload);
  if (partial.message.questions.empty()) return;
  const auto key = partial.message.questions.front().qname.canonical_key();
  const auto it = flows_.find(key);
  // Auth-side traffic for unknown qnames (background noise) is not a flow.
  if (it == flows_.end()) return;
  if (inbound)
    ++it->second.q2_count;
  else
    ++it->second.r1_count;
}

void FlowGrouper::add_r2(const R2View& view, const dns::DnsName& qname) {
  const auto it = flows_.find(qname.canonical_key());
  if (it == flows_.end()) return;
  it->second.has_r2 = true;
  it->second.r2 = view;
}

std::vector<const Flow*> FlowGrouper::answered_without_recursion() const {
  std::vector<const Flow*> result;
  for (const auto& [key, flow] : flows_) {
    if (flow.has_r2 && flow.r2 && flow.r2->has_answer() && flow.q2_count == 0)
      result.push_back(&flow);
  }
  return result;
}

}  // namespace orp::analysis
