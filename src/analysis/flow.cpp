#include "analysis/flow.h"

#include <algorithm>
#include <unordered_map>

#include "dns/decode_view.h"
#include "util/hash.h"
#include "util/rng.h"

namespace orp::analysis {

std::string_view to_string(AnswerForm f) noexcept {
  switch (f) {
    case AnswerForm::kNone: return "none";
    case AnswerForm::kIp: return "IP";
    case AnswerForm::kUrl: return "URL";
    case AnswerForm::kString: return "string";
    case AnswerForm::kUndecodable: return "N/A";
  }
  return "?";
}

R2View classify_r2(const prober::R2Record& record,
                   const zone::SubdomainScheme& scheme) {
  R2View view;
  classify_r2_into(record.payload, record.resolver, record.time, scheme, view);
  return view;
}

void classify_r2_into(std::span<const std::uint8_t> payload,
                      net::IPv4Addr resolver, net::SimTime time,
                      const zone::SubdomainScheme& scheme, R2View& view) {
  view.resolver = resolver;
  view.time = time;
  view.header_decoded = true;
  view.has_question = false;
  view.ra = false;
  view.aa = false;
  view.rcode = dns::Rcode::kNoError;
  view.form = AnswerForm::kNone;
  view.answer_ip.reset();
  view.answer_text.clear();  // keeps capacity — the scratch-reuse contract
  view.subdomain.reset();
  view.correct = false;

  // Zero-copy decode: same validation rules and stages as decode_partial
  // (the differential fuzz suite pins the equivalence), but nothing is
  // materialized — names and rdata stay offsets into the payload.
  const dns::DecodeView v = dns::DecodeView::parse(payload);
  if (v.failed_at == dns::DecodeStage::kHeader) {
    view.header_decoded = false;
    return;
  }
  view.ra = v.header.flags.ra;
  view.aa = v.header.flags.aa;
  view.rcode = v.header.flags.rcode;
  view.has_question = v.questions_parsed > 0;

  if (view.has_question) view.subdomain = scheme.parse(v.qname);

  // Answer-section failure after a clean question: the Table VII N/A class.
  if (v.failed_at == dns::DecodeStage::kQuestion) {
    view.has_question = false;
    return;
  }
  if (v.failed_at == dns::DecodeStage::kAnswer) {
    view.form = AnswerForm::kUndecodable;
    return;
  }

  if (v.answers_parsed == 0) {
    view.form = AnswerForm::kNone;
    return;
  }

  // Judge the first answer record, as the paper's single-question probes do.
  const dns::AnswerRecordView& rr = v.first_answer;
  switch (rr.type) {
    case dns::RRType::kA: {
      view.form = AnswerForm::kIp;
      view.answer_ip = net::IPv4Addr(
          (static_cast<std::uint32_t>(rr.rdata[0]) << 24) |
          (static_cast<std::uint32_t>(rr.rdata[1]) << 16) |
          (static_cast<std::uint32_t>(rr.rdata[2]) << 8) | rr.rdata[3]);
      if (view.subdomain)
        view.correct = (*view.answer_ip == scheme.ground_truth(*view.subdomain));
      return;
    }
    case dns::RRType::kNS:
    case dns::RRType::kCNAME:
    case dns::RRType::kPTR: {
      view.form = AnswerForm::kUrl;
      // Presentation form built in place, byte-identical to
      // NameView::to_string (labels joined by '.', "." for the root) but
      // reusing the scratch string's capacity.
      if (rr.rdata_name.is_root()) {
        view.answer_text.assign(1, '.');
        return;
      }
      view.answer_text.reserve(rr.rdata_name.wire_length() - 2);
      for (std::size_t i = 0; i < rr.rdata_name.label_count(); ++i) {
        if (!view.answer_text.empty()) view.answer_text.push_back('.');
        const std::string_view label = rr.rdata_name.label(i);
        view.answer_text.append(label.data(), label.size());
      }
      return;
    }
    case dns::RRType::kTXT: {
      view.form = AnswerForm::kString;
      // Space-join the character-strings; size the result first so the
      // join is a single allocation. A separator lands exactly where the
      // accumulated text is already non-empty.
      std::size_t joined = 0;
      for (std::size_t p = 0; p < rr.rdata.size();) {
        const std::uint8_t len = rr.rdata[p];
        if (joined > 0) ++joined;
        joined += len;
        p += 1 + static_cast<std::size_t>(len);
      }
      view.answer_text.reserve(joined);
      for (std::size_t p = 0; p < rr.rdata.size();) {
        const std::uint8_t len = rr.rdata[p];
        if (!view.answer_text.empty()) view.answer_text += ' ';
        view.answer_text.append(
            reinterpret_cast<const char*>(rr.rdata.data() + p + 1), len);
        p += 1 + static_cast<std::size_t>(len);
      }
      return;
    }
    case dns::RRType::kSOA:
    case dns::RRType::kMX:
    case dns::RRType::kAAAA: {
      // Structured but non-text rdata: a string-form answer with no text,
      // exactly as the Message-based classifier judged these.
      view.form = AnswerForm::kString;
      return;
    }
    default: {
      // Anything else (raw bytes, OPT, ...) is a garbage-string answer.
      view.form = AnswerForm::kString;
      static constexpr char kHex[] = "0123456789abcdef";
      view.answer_text.reserve(rr.rdata.size() * 2);
      for (const std::uint8_t b : rr.rdata) {
        view.answer_text.push_back(kHex[b >> 4]);
        view.answer_text.push_back(kHex[b & 0xF]);
      }
      return;
    }
  }
}

std::vector<R2View> classify_all(const prober::R2Store& records,
                                 const zone::SubdomainScheme& scheme) {
  std::vector<R2View> views;
  views.reserve(records.size());
  for (const auto& rec : records) views.push_back(classify_r2(rec, scheme));
  return views;
}

std::vector<R2View> merge_views(std::vector<std::vector<R2View>> shards) {
  std::vector<R2View> merged;
  std::size_t total = 0;
  for (const auto& s : shards) total += s.size();
  merged.reserve(total);
  for (auto& s : shards)
    merged.insert(merged.end(), std::make_move_iterator(s.begin()),
                  std::make_move_iterator(s.end()));
  std::stable_sort(merged.begin(), merged.end(),
                   [](const R2View& a, const R2View& b) {
                     return a.resolver.value() < b.resolver.value();
                   });
  return merged;
}

std::uint64_t behavior_digest(const std::vector<R2View>& views) {
  std::uint64_t digest = 0;
  for (const R2View& v : views) {
    util::Fnv1a h;
    h.word(v.resolver.value())
        .word(v.header_decoded)
        .word(v.has_question)
        .word(v.ra)
        .word(v.aa)
        .word(static_cast<std::uint64_t>(v.rcode))
        .word(static_cast<std::uint64_t>(v.form))
        .word(v.correct);
    // A *correct* answer IP is the ground truth of whichever probe name the
    // scanner happened to allocate — an ordering artifact, excluded. An
    // incorrect one is the resolver's own rewrite target — behavior, folded.
    if (v.answer_ip && !v.correct) h.word(v.answer_ip->value());
    h.word(util::fnv1a64(v.answer_text));
    // Wrapping sum: commutative, so the digest ignores view order entirely.
    digest += util::mix64(h.value());
  }
  return digest;
}

void FlowGrouper::add_probe(const dns::DnsName& qname, net::IPv4Addr target) {
  char key_buf[dns::kMaxNameLength];
  const std::string_view key = qname.canonical_key_into(key_buf);
  auto it = flows_.find(key);
  if (it == flows_.end())
    it = flows_.emplace(std::string(key), Flow{}).first;
  Flow& flow = it->second;
  if (flow.qname_key.empty()) flow.qname_key = it->first;
  flow.probed_target = target;
}

void FlowGrouper::add_auth_packet(std::span<const std::uint8_t> payload,
                                  bool inbound) {
  const dns::DecodeView v = dns::DecodeView::parse(payload);
  if (v.questions_parsed == 0) return;
  char key_buf[dns::kMaxNameLength];
  const auto it = flows_.find(v.qname.canonical_key_into(key_buf));
  // Auth-side traffic for unknown qnames (background noise) is not a flow.
  if (it == flows_.end()) return;
  if (inbound)
    ++it->second.q2_count;
  else
    ++it->second.r1_count;
}

void FlowGrouper::add_r2(const R2View& view, const dns::DnsName& qname) {
  char key_buf[dns::kMaxNameLength];
  const auto it = flows_.find(qname.canonical_key_into(key_buf));
  if (it == flows_.end()) return;
  it->second.has_r2 = true;
  it->second.r2 = view;
}

std::vector<const Flow*> FlowGrouper::answered_without_recursion() const {
  std::vector<const Flow*> result;
  for (const auto& [key, flow] : flows_) {
    if (flow.has_r2 && flow.r2 && flow.r2->has_answer() && flow.q2_count == 0)
      result.push_back(&flow);
  }
  return result;
}

}  // namespace orp::analysis
