// R2 classification and Q1/Q2/R1/R2 flow grouping — the front end of the
// paper's behavioral analysis (§III-B, §IV).
//
// Every collected R2 is re-decoded from wire bytes and reduced to the
// features the paper's tables are built from: header flags, rcode, answer
// presence/form, correctness against the ground truth derivable from the
// probe qname, and decodability.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/codec.h"
#include "net/capture.h"
#include "prober/scanner.h"
#include "util/strings.h"
#include "zone/cluster.h"

namespace orp::analysis {

/// Answer-section form, Table VII rows.
enum class AnswerForm : std::uint8_t {
  kNone = 0,     // no answer section
  kIp,           // A record
  kUrl,          // name-valued answer (CNAME/NS/PTR)
  kString,       // text/garbage answer
  kUndecodable,  // ancount > 0 but bytes do not parse (Table VII "N/A")
};

std::string_view to_string(AnswerForm f) noexcept;

/// One decoded-and-judged R2.
struct R2View {
  net::IPv4Addr resolver;
  net::SimTime time;

  bool header_decoded = true;
  bool has_question = false;

  // Header fields under study.
  bool ra = false;
  bool aa = false;
  dns::Rcode rcode = dns::Rcode::kNoError;

  AnswerForm form = AnswerForm::kNone;
  bool has_answer() const noexcept { return form != AnswerForm::kNone; }

  std::optional<net::IPv4Addr> answer_ip;  // for kIp
  std::string answer_text;                 // for kUrl / kString

  std::optional<zone::SubdomainId> subdomain;  // parsed from the question
  /// For kIp with a matchable question: does the answer equal the ground
  /// truth the authoritative server published for that subdomain?
  bool correct = false;
};

/// Decode + judge one captured R2 against the probe subdomain scheme.
R2View classify_r2(const prober::R2Record& record,
                   const zone::SubdomainScheme& scheme);

/// The same classification written into a caller-owned scratch view. `out`
/// is fully reset first, but its string keeps its capacity — the streaming
/// analyzer reuses one scratch per shard so the steady-state per-R2 cost is
/// zero allocations (text answers build in place; the alloc-budget suite
/// pins this).
void classify_r2_into(std::span<const std::uint8_t> payload,
                      net::IPv4Addr resolver, net::SimTime time,
                      const zone::SubdomainScheme& scheme, R2View& out);

/// Classify a whole scan's worth.
std::vector<R2View> classify_all(const prober::R2Store& records,
                                 const zone::SubdomainScheme& scheme);

/// Merge per-shard view sets into one canonically-ordered set: stable sort
/// by resolver address (each planted host responds at most once, so the key
/// is unique in practice; ties keep shard-local arrival order). Applied for
/// every shard count — including 1 — so the merged output is a function of
/// *which* resolvers responded, never of how the scan was partitioned.
std::vector<R2View> merge_views(std::vector<std::vector<R2View>> shards);

/// Order-insensitive digest over the behavioral content of a view set. A
/// resolver's R2 behavior (flags, rcode, answer form/correctness, rewrite
/// target) is a pure function of its profile and seed; the probe qname, DNS
/// txn id and arrival time are allocation-order artifacts. The digest folds
/// only the former, so it is byte-identical across thread counts and is the
/// pipeline's cross-shard determinism check.
std::uint64_t behavior_digest(const std::vector<R2View>& views);

/// A grouped measurement flow (Fig. 2): the probe (Q1), the recursive
/// queries observed at the authoritative server (Q2/R1), and the resolver's
/// response (R2), all keyed by the probe qname.
struct Flow {
  std::string qname_key;
  std::optional<net::IPv4Addr> probed_target;  // Q1 destination
  std::uint64_t q2_count = 0;                  // auth-side queries seen
  std::uint64_t r1_count = 0;                  // auth-side responses seen
  bool has_r2 = false;
  std::optional<R2View> r2;
};

/// Groups prober- and authns-side captures by qname. Used by the Fig. 2
/// bench and integration tests to validate the capture architecture; the
/// statistical tables only need the R2 views.
class FlowGrouper {
 public:
  /// Heterogeneous map: lookups take a string_view key built in a stack
  /// buffer, so grouping a packet allocates nothing unless it opens a flow.
  using FlowMap = std::unordered_map<std::string, Flow,
                                     util::TransparentStringHash,
                                     std::equal_to<>>;

  explicit FlowGrouper(const zone::SubdomainScheme& scheme)
      : scheme_(scheme) {}

  void add_probe(const dns::DnsName& qname, net::IPv4Addr target);
  /// Feed one authns-side packet payload (inbound = Q2, outbound = R1).
  void add_auth_packet(std::span<const std::uint8_t> payload, bool inbound);
  void add_auth_packet(const net::CapturedPacket& pkt, bool inbound) {
    add_auth_packet(std::span<const std::uint8_t>(pkt.payload), inbound);
  }
  void add_r2(const R2View& view, const dns::DnsName& qname);

  const FlowMap& flows() const noexcept { return flows_; }

  /// Flows where the resolver answered without ever contacting the
  /// authoritative server — the paper's manipulation discriminator (§IV-C2):
  /// a fresh subdomain cannot be in any cache, so an answer with no Q2 is a
  /// fabrication.
  std::vector<const Flow*> answered_without_recursion() const;

 private:
  const zone::SubdomainScheme& scheme_;
  FlowMap flows_;
};

}  // namespace orp::analysis
