#include "analysis/geo_analysis.h"

#include <algorithm>
#include <map>

namespace orp::analysis {

GeoSummary malicious_by_country(std::span<const R2View> malicious_views,
                                const intel::GeoDb& geo) {
  GeoSummary out;
  std::map<std::string, std::uint64_t> counts;
  for (const R2View& v : malicious_views) {
    ++counts[geo.country_of(v.resolver)];
    ++out.total;
  }
  out.countries.reserve(counts.size());
  for (const auto& [country, count] : counts)
    out.countries.push_back(CountryCount{country, count});
  std::sort(out.countries.begin(), out.countries.end(),
            [](const CountryCount& a, const CountryCount& b) {
              if (a.r2 != b.r2) return a.r2 > b.r2;
              return a.country < b.country;
            });
  return out;
}

}  // namespace orp::analysis
