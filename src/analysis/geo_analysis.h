// §IV-C2 "Distribution of Malicious Resolvers": geolocation of the
// *resolvers* (not the answer addresses) behind malicious responses.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/flow.h"
#include "intel/geo_db.h"

namespace orp::analysis {

struct CountryCount {
  std::string country;  // ISO 3166-1 alpha-2; "??" for unresolvable
  std::uint64_t r2 = 0;

  double share(std::uint64_t total) const noexcept {
    return total == 0 ? 0.0
                      : 100.0 * static_cast<double>(r2) /
                            static_cast<double>(total);
  }
};

struct GeoSummary {
  std::vector<CountryCount> countries;  // descending by count
  std::uint64_t total = 0;
  std::size_t country_count() const noexcept { return countries.size(); }
};

/// Geolocate the sender of each malicious R2.
GeoSummary malicious_by_country(std::span<const R2View> malicious_views,
                                const intel::GeoDb& geo);

}  // namespace orp::analysis
