#include "analysis/header_analysis.h"

namespace orp::analysis {
namespace {

void tally(FlagBreakdown& row, const R2View& v) {
  if (!v.has_answer()) {
    ++row.without_answer;
  } else if (v.form == AnswerForm::kIp && v.correct) {
    ++row.correct;
  } else {
    ++row.incorrect;
  }
}

}  // namespace

FlagTable analyze_ra(std::span<const R2View> views) {
  FlagTable out;
  for (const R2View& v : views) {
    if (!v.has_question) continue;
    tally(v.ra ? out.bit1 : out.bit0, v);
  }
  return out;
}

FlagTable analyze_aa(std::span<const R2View> views) {
  FlagTable out;
  for (const R2View& v : views) {
    if (!v.has_question) continue;
    tally(v.aa ? out.bit1 : out.bit0, v);
  }
  return out;
}

RcodeTable analyze_rcodes(std::span<const R2View> views) {
  RcodeTable out;
  for (const R2View& v : views) {
    if (!v.has_question) continue;
    RcodeRow& row = out.rows[static_cast<std::size_t>(v.rcode)];
    if (v.has_answer())
      ++row.with_answer;
    else
      ++row.without_answer;
  }
  return out;
}

std::uint64_t RcodeTable::error_rcode_with_answer() const noexcept {
  std::uint64_t total = 0;
  for (std::size_t i = 1; i < rows.size(); ++i) total += rows[i].with_answer;
  return total;
}

}  // namespace orp::analysis
