// Tables IV-VI: DNS header conformance analysis.
//
// The paper's key behavioral findings live here: resolvers that answer while
// claiming recursion is unavailable (RA=0 with dns_answer, 94% wrong in
// 2018), resolvers claiming authority over a zone they do not serve (AA=1,
// 79% wrong), and rcodes inconsistent with the presence of an answer.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "analysis/flow.h"
#include "util/apportion.h"

namespace orp::analysis {

/// One row of Table IV/V: responses with the flag at a given value.
struct FlagBreakdown {
  std::uint64_t without_answer = 0;
  std::uint64_t correct = 0;
  std::uint64_t incorrect = 0;

  std::uint64_t with_answer() const noexcept { return correct + incorrect; }
  std::uint64_t total() const noexcept {
    return without_answer + with_answer();
  }
  double err_percent() const noexcept {
    return util::percent(incorrect, with_answer());
  }

  FlagBreakdown& operator+=(const FlagBreakdown& o) noexcept {
    without_answer += o.without_answer;
    correct += o.correct;
    incorrect += o.incorrect;
    return *this;
  }
};

struct FlagTable {
  FlagBreakdown bit0;
  FlagBreakdown bit1;

  /// Shard merge for the streaming analysis path.
  FlagTable& operator+=(const FlagTable& o) noexcept {
    bit0 += o.bit0;
    bit1 += o.bit1;
    return *this;
  }
};

FlagTable analyze_ra(std::span<const R2View> views);  // Table IV
FlagTable analyze_aa(std::span<const R2View> views);  // Table V

/// Table VI: rcode distribution split by answer presence.
struct RcodeRow {
  std::uint64_t with_answer = 0;     // "W"
  std::uint64_t without_answer = 0;  // "W/O"
  std::uint64_t total() const noexcept { return with_answer + without_answer; }

  RcodeRow& operator+=(const RcodeRow& o) noexcept {
    with_answer += o.with_answer;
    without_answer += o.without_answer;
    return *this;
  }
};

struct RcodeTable {
  std::array<RcodeRow, dns::kRcodeCount> rows{};

  /// Shard merge for the streaming analysis path.
  RcodeTable& operator+=(const RcodeTable& o) noexcept {
    for (std::size_t i = 0; i < rows.size(); ++i) rows[i] += o.rows[i];
    return *this;
  }

  const RcodeRow& row(dns::Rcode rc) const noexcept {
    return rows[static_cast<std::size_t>(rc)];
  }
  /// Abnormal combinations the paper calls out: nonzero rcode carrying an
  /// answer, and NoError without one.
  std::uint64_t error_rcode_with_answer() const noexcept;
  std::uint64_t noerror_without_answer() const noexcept {
    return rows[0].without_answer;
  }
};

RcodeTable analyze_rcodes(std::span<const R2View> views);

}  // namespace orp::analysis
