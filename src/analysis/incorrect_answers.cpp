#include "analysis/incorrect_answers.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace orp::analysis {

IncorrectSummary analyze_incorrect(std::span<const R2View> views) {
  IncorrectSummary out;
  std::unordered_set<std::uint32_t> unique_ips;
  std::unordered_set<std::string> unique_urls;
  std::unordered_set<std::string> unique_strings;

  for (const R2View& v : views) {
    if (!v.has_question || !v.has_answer()) continue;
    switch (v.form) {
      case AnswerForm::kIp:
        if (v.correct) break;
        ++out.ip.r2;
        if (v.answer_ip) {
          unique_ips.insert(v.answer_ip->value());
          if (out.ip.example.empty()) out.ip.example = v.answer_ip->to_string();
        }
        break;
      case AnswerForm::kUrl:
        ++out.url.r2;
        unique_urls.insert(v.answer_text);
        if (out.url.example.empty()) out.url.example = v.answer_text;
        break;
      case AnswerForm::kString:
        ++out.str.r2;
        unique_strings.insert(v.answer_text);
        if (out.str.example.empty()) out.str.example = v.answer_text;
        break;
      case AnswerForm::kUndecodable:
        ++out.na.r2;
        if (out.na.example.empty()) out.na.example = "<0x00>";
        break;
      case AnswerForm::kNone:
        break;
    }
  }
  out.ip.unique = unique_ips.size();
  out.url.unique = unique_urls.size();
  out.str.unique = unique_strings.size();
  return out;
}

PrivateRedirectSummary analyze_private_redirects(
    std::span<const R2View> views) {
  PrivateRedirectSummary out;
  std::unordered_set<std::uint32_t> unique;
  static const net::Prefix kCgn(net::IPv4Addr(100, 64, 0, 0), 10);
  for (const R2View& v : views) {
    if (!v.has_question || v.form != AnswerForm::kIp || v.correct ||
        !v.answer_ip)
      continue;
    if (!net::is_private_address(*v.answer_ip)) continue;
    ++out.r2;
    unique.insert(v.answer_ip->value());
    if (kCgn.contains(*v.answer_ip))
      ++out.cgn;
    else
      ++out.rfc1918;
  }
  out.unique_ips = unique.size();
  return out;
}

std::vector<TopIncorrectEntry> top_incorrect_ips(
    std::span<const R2View> views, std::size_t k, const intel::OrgDb& orgs,
    const intel::ThreatDb& threats) {
  std::unordered_map<std::uint32_t, std::uint64_t> counts;
  for (const R2View& v : views) {
    if (!v.has_question || v.form != AnswerForm::kIp || v.correct ||
        !v.answer_ip)
      continue;
    ++counts[v.answer_ip->value()];
  }
  std::vector<std::pair<std::uint32_t, std::uint64_t>> ranked(counts.begin(),
                                                              counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (ranked.size() > k) ranked.resize(k);

  std::vector<TopIncorrectEntry> out;
  out.reserve(ranked.size());
  for (const auto& [value, count] : ranked) {
    TopIncorrectEntry entry;
    entry.addr = net::IPv4Addr(value);
    entry.count = count;
    entry.org = orgs.org_of(entry.addr);
    if (net::is_private_address(entry.addr))
      entry.reported = '-';
    else
      entry.reported = threats.is_reported(entry.addr) ? 'Y' : 'N';
    out.push_back(std::move(entry));
  }
  return out;
}

}  // namespace orp::analysis
