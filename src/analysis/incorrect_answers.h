// Table VII (form of incorrect answers) and Table VIII (top-10 addresses in
// incorrect responses, with org attribution and threat-intel hits).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "analysis/flow.h"
#include "intel/org_db.h"
#include "intel/threat_db.h"

namespace orp::analysis {

/// One row of Table VII.
struct FormStats {
  std::uint64_t r2 = 0;      // responses carrying this form
  std::uint64_t unique = 0;  // distinct values observed
  std::string example;       // a representative value
};

struct IncorrectSummary {
  FormStats ip;        // wrong A records
  FormStats url;       // name-valued answers
  FormStats str;       // garbage strings
  FormStats na;        // undecodable (2013 corpus)

  std::uint64_t total_r2() const noexcept {
    return ip.r2 + url.r2 + str.r2 + na.r2;
  }
  std::uint64_t total_unique() const noexcept {
    return ip.unique + url.unique + str.unique;
  }
};

IncorrectSummary analyze_incorrect(std::span<const R2View> views);

/// One row of Table VIII.
struct TopIncorrectEntry {
  net::IPv4Addr addr;
  std::uint64_t count = 0;
  std::string org;
  /// 'Y' = threat reports on file, 'N' = none, '-' = private (N/A).
  char reported = 'N';
};

/// The k most frequent addresses in incorrect IP answers, most frequent
/// first; ties broken by address for determinism.
std::vector<TopIncorrectEntry> top_incorrect_ips(std::span<const R2View> views,
                                                 std::size_t k,
                                                 const intel::OrgDb& orgs,
                                                 const intel::ThreatDb& threats);

/// §V "Private Network in Incorrect Information": incorrect answers that
/// point into RFC1918/CGN space — puzzling from an external probe, since the
/// returned address is unreachable from outside the resolver's network
/// (captive-portal/CPE redirection is the paper's leading hypothesis).
struct PrivateRedirectSummary {
  std::uint64_t r2 = 0;          // responses pointing into private space
  std::uint64_t unique_ips = 0;  // distinct private targets
  std::uint64_t rfc1918 = 0;     // 10/8 + 172.16/12 + 192.168/16
  std::uint64_t cgn = 0;         // 100.64/10

  double share_of_incorrect(std::uint64_t incorrect_total) const noexcept {
    return incorrect_total == 0 ? 0.0
                                : 100.0 * static_cast<double>(r2) /
                                      static_cast<double>(incorrect_total);
  }
};

PrivateRedirectSummary analyze_private_redirects(
    std::span<const R2View> views);

}  // namespace orp::analysis
