#include "analysis/malicious.h"

#include <unordered_set>

namespace orp::analysis {

MaliciousSummary analyze_malicious(std::span<const R2View> views,
                                   const intel::ThreatDb& threats) {
  MaliciousSummary out;
  std::array<std::unordered_set<std::uint32_t>, intel::kThreatCategoryCount>
      unique_per_category;
  std::unordered_set<std::uint32_t> unique_total;

  for (const R2View& v : views) {
    if (!v.has_question || v.form != AnswerForm::kIp || v.correct ||
        !v.answer_ip)
      continue;
    const auto category = threats.dominant_category(*v.answer_ip);
    if (!category) continue;

    const auto idx = static_cast<std::size_t>(*category);
    ++out.categories[idx].r2;
    unique_per_category[idx].insert(v.answer_ip->value());
    unique_total.insert(v.answer_ip->value());

    ++out.total_r2;
    if (v.ra)
      ++out.ra1;
    else
      ++out.ra0;
    if (v.aa)
      ++out.aa1;
    else
      ++out.aa0;
    if (v.rcode == dns::Rcode::kNoError) ++out.rcode_noerror;
    out.malicious_views.push_back(v);
  }
  for (std::size_t i = 0; i < unique_per_category.size(); ++i)
    out.categories[i].unique_ips = unique_per_category[i].size();
  out.total_ips = unique_total.size();
  return out;
}

}  // namespace orp::analysis
