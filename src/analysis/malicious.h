// Tables IX and X: malicious answers, validated against threat intel.
//
// An incorrect IP answer is *malicious* when the pointed-to address has
// reports on file; the paper's category attribution rule applies (most
// frequently reported category wins).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "analysis/flow.h"
#include "intel/threat_db.h"

namespace orp::analysis {

struct CategoryRow {
  std::uint64_t unique_ips = 0;  // Table IX "#_IP"
  std::uint64_t r2 = 0;          // Table IX "#_R2"
};

struct MaliciousSummary {
  std::array<CategoryRow, intel::kThreatCategoryCount> categories{};
  std::uint64_t total_ips = 0;
  std::uint64_t total_r2 = 0;

  // Table X: header flags across the malicious R2 population.
  std::uint64_t ra0 = 0;
  std::uint64_t ra1 = 0;
  std::uint64_t aa0 = 0;
  std::uint64_t aa1 = 0;
  std::uint64_t rcode_noerror = 0;  // the paper found all 26,926 at rcode 0

  /// Every malicious R2 view, for downstream geo analysis.
  std::vector<R2View> malicious_views;
};

MaliciousSummary analyze_malicious(std::span<const R2View> views,
                                   const intel::ThreatDb& threats);

}  // namespace orp::analysis
