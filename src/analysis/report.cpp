#include "analysis/report.h"

#include <sstream>

#include "util/strings.h"
#include "util/table.h"

namespace orp::analysis {

using util::fixed;
using util::TextTable;
using util::with_commas;

ScanAnalysis analyze_scan(std::span<const R2View> views,
                          const intel::ThreatDb& threats,
                          const intel::GeoDb& geo, const intel::OrgDb& orgs) {
  ScanAnalysis out;
  out.r2_total = views.size();
  out.answers = analyze_answers(views);
  out.ra = analyze_ra(views);
  out.aa = analyze_aa(views);
  out.rcodes = analyze_rcodes(views);
  out.incorrect = analyze_incorrect(views);
  out.top10 = top_incorrect_ips(views, 10, orgs, threats);
  out.malicious = analyze_malicious(views, threats);
  out.geo = malicious_by_country(out.malicious.malicious_views, geo);
  out.empty_question = analyze_empty_question(views, orgs);
  out.private_redirects = analyze_private_redirects(views);
  return out;
}

std::string render_answer_table(const AnswerRows& rows) {
  TextTable t({"", "R2", "W/O", "W_Corr", "W_Incorr", "Err(%)"});
  for (const auto& [label, b] : rows) {
    t.add_row({label, with_commas(b.r2), with_commas(b.without_answer),
               with_commas(b.correct), with_commas(b.incorrect),
               fixed(b.err_percent())});
  }
  return t.render();
}

std::string render_flag_table(const FlagRows& rows, std::string_view flag) {
  TextTable t({"", "W/O", "W_Corr", "W_Incorr", "Total", "Err(%)"});
  for (const auto& [label, table] : rows) {
    const FlagBreakdown* bits[] = {&table.bit0, &table.bit1};
    for (int bit = 0; bit < 2; ++bit) {
      const FlagBreakdown& b = *bits[bit];
      t.add_row({label + "  " + std::string(flag) + std::to_string(bit),
                 with_commas(b.without_answer), with_commas(b.correct),
                 with_commas(b.incorrect), with_commas(b.total()),
                 fixed(b.err_percent())});
    }
    t.add_separator();
  }
  return t.render();
}

std::string render_rcode_table(const RcodeRows& rows) {
  // Columns follow Table VI: rcodes 0-7 and 9 (8 omitted, absent in data).
  static constexpr dns::Rcode kColumns[] = {
      dns::Rcode::kNoError,  dns::Rcode::kFormErr, dns::Rcode::kServFail,
      dns::Rcode::kNXDomain, dns::Rcode::kNotImp,  dns::Rcode::kRefused,
      dns::Rcode::kYXDomain, dns::Rcode::kYXRRSet, dns::Rcode::kNotAuth};
  std::vector<std::string> headers{""};
  for (const auto rc : kColumns) headers.emplace_back(dns::to_string(rc));
  TextTable t(headers);
  for (const auto& [label, table] : rows) {
    std::vector<std::string> w{label + "  W"};
    std::vector<std::string> wo{label + "  W/O"};
    std::vector<std::string> total{label + "  Total"};
    for (const auto rc : kColumns) {
      const RcodeRow& row = table.row(rc);
      w.push_back(with_commas(row.with_answer));
      wo.push_back(with_commas(row.without_answer));
      total.push_back(with_commas(row.total()));
    }
    t.add_row(std::move(w));
    t.add_row(std::move(wo));
    t.add_row(std::move(total));
    t.add_separator();
  }
  return t.render();
}

std::string render_incorrect_table(const IncorrectRows& rows) {
  TextTable t({"", "Form", "#R2", "#unique", "Example"});
  t.set_align(4, util::Align::kLeft);
  for (const auto& [label, s] : rows) {
    t.add_row({label, "IP", with_commas(s.ip.r2), with_commas(s.ip.unique),
               s.ip.example});
    t.add_row({"", "URL", with_commas(s.url.r2), with_commas(s.url.unique),
               s.url.example});
    t.add_row({"", "string", with_commas(s.str.r2), with_commas(s.str.unique),
               s.str.example});
    if (s.na.r2 > 0)
      t.add_row({"", "N/A", with_commas(s.na.r2), "-", s.na.example});
    t.add_row({"", "Total", with_commas(s.total_r2()),
               with_commas(s.total_unique()), ""});
    t.add_separator();
  }
  return t.render();
}

std::string render_top10_table(const std::vector<TopIncorrectEntry>& entries) {
  TextTable t({"IP address", "#", "Org Name", "Reports"});
  t.set_align(2, util::Align::kLeft);
  std::uint64_t total = 0;
  for (const auto& e : entries) {
    total += e.count;
    t.add_row({e.addr.to_string(), with_commas(e.count), e.org,
               e.reported == '-' ? "N/A" : std::string(1, e.reported)});
  }
  t.add_separator();
  t.add_row({"Total", with_commas(total), "-", "-"});
  return t.render();
}

std::string render_malicious_table(const MaliciousRows& rows) {
  TextTable t({"Report Category"});
  std::vector<std::string> headers{"Report Category"};
  for (const auto& [label, s] : rows) {
    (void)s;
    headers.push_back(label + " #IP");
    headers.push_back("(%IP)");
    headers.push_back(label + " #R2");
    headers.push_back("(%R2)");
  }
  t.set_headers(headers);
  for (std::size_t c = 0; c < intel::kThreatCategoryCount; ++c) {
    std::vector<std::string> row{
        std::string(intel::to_string(static_cast<intel::ThreatCategory>(c)))};
    for (const auto& [label, s] : rows) {
      const CategoryRow& cat = s.categories[c];
      row.push_back(with_commas(cat.unique_ips));
      row.push_back(fixed(util::percent(cat.unique_ips, s.total_ips), 1));
      row.push_back(with_commas(cat.r2));
      row.push_back(fixed(util::percent(cat.r2, s.total_r2), 1));
    }
    t.add_row(std::move(row));
  }
  std::vector<std::string> totals{"Total"};
  for (const auto& [label, s] : rows) {
    totals.push_back(with_commas(s.total_ips));
    totals.push_back("-");
    totals.push_back(with_commas(s.total_r2));
    totals.push_back("-");
  }
  t.add_separator();
  t.add_row(std::move(totals));
  return t.render();
}

std::string render_malicious_flags_table(const MaliciousRows& rows) {
  TextTable t({"", "RA0", "RA1", "AA0", "AA1", "rcode=0"});
  for (const auto& [label, s] : rows) {
    t.add_row({label, with_commas(s.ra0) + " (" +
                          fixed(util::percent(s.ra0, s.total_r2), 1) + "%)",
               with_commas(s.ra1) + " (" +
                   fixed(util::percent(s.ra1, s.total_r2), 1) + "%)",
               with_commas(s.aa0) + " (" +
                   fixed(util::percent(s.aa0, s.total_r2), 1) + "%)",
               with_commas(s.aa1) + " (" +
                   fixed(util::percent(s.aa1, s.total_r2), 1) + "%)",
               with_commas(s.rcode_noerror)});
  }
  return t.render();
}

std::string render_geo_summary(const GeoSummary& geo, std::size_t top_n) {
  std::ostringstream out;
  out << "malicious R2 across " << geo.country_count() << " countries, "
      << with_commas(geo.total) << " responses total\n";
  TextTable t({"Country", "#R2", "Share(%)"});
  for (std::size_t i = 0; i < geo.countries.size() && i < top_n; ++i) {
    const CountryCount& c = geo.countries[i];
    t.add_row({c.country, with_commas(c.r2), fixed(c.share(geo.total), 1)});
  }
  out << t.render();
  return out.str();
}

std::string render_empty_question_summary(const EmptyQuestionSummary& s) {
  std::ostringstream out;
  out << "R2 with empty question: " << with_commas(s.total) << "\n"
      << "  with answer: " << s.with_answer << " (correct: " << s.correct
      << ", private: " << s.private_answers
      << ", malformed: " << s.malformed_answers
      << ", org-unknown: " << s.unknown_org << ")\n"
      << "  RA=1: " << s.ra1 << " (without answer: " << s.ra1_without_answer
      << "), RA=0: " << s.ra0 << " (with answer: " << s.ra0_with_answer
      << "), AA=1: " << s.aa1 << "\n  rcode:";
  for (std::size_t i = 0; i < s.rcode.size(); ++i) {
    if (s.rcode[i] == 0) continue;
    out << " " << dns::to_string(static_cast<dns::Rcode>(i)) << "="
        << s.rcode[i];
  }
  out << "\n";
  return out.str();
}

}  // namespace orp::analysis
