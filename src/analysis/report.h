// Full-scan analysis bundle and paper-style table rendering.
//
// Each render function prints rows in the layout of the corresponding paper
// table; benches pass both the paper's published row and the measured row so
// shapes can be compared line by line.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "analysis/answer_analysis.h"
#include "analysis/empty_question.h"
#include "analysis/geo_analysis.h"
#include "analysis/header_analysis.h"
#include "analysis/incorrect_answers.h"
#include "analysis/malicious.h"
#include "intel/geo_db.h"
#include "intel/org_db.h"
#include "intel/threat_db.h"

namespace orp::analysis {

/// Everything §IV derives from one year's R2 corpus.
struct ScanAnalysis {
  std::uint64_t r2_total = 0;           // including empty-question packets
  AnswerBreakdown answers;              // Table III
  FlagTable ra;                         // Table IV
  FlagTable aa;                         // Table V
  RcodeTable rcodes;                    // Table VI
  IncorrectSummary incorrect;           // Table VII
  std::vector<TopIncorrectEntry> top10; // Table VIII
  MaliciousSummary malicious;           // Tables IX-X
  GeoSummary geo;                       // §IV-C2
  EmptyQuestionSummary empty_question;  // §IV-B4
  PrivateRedirectSummary private_redirects;  // §V discussion
};

ScanAnalysis analyze_scan(std::span<const R2View> views,
                          const intel::ThreatDb& threats,
                          const intel::GeoDb& geo, const intel::OrgDb& orgs);

// ---- Table renderers -------------------------------------------------------

using AnswerRows = std::vector<std::pair<std::string, AnswerBreakdown>>;
std::string render_answer_table(const AnswerRows& rows);

using FlagRows = std::vector<std::pair<std::string, FlagTable>>;
std::string render_flag_table(const FlagRows& rows, std::string_view flag);

using RcodeRows = std::vector<std::pair<std::string, RcodeTable>>;
std::string render_rcode_table(const RcodeRows& rows);

using IncorrectRows = std::vector<std::pair<std::string, IncorrectSummary>>;
std::string render_incorrect_table(const IncorrectRows& rows);

std::string render_top10_table(const std::vector<TopIncorrectEntry>& entries);

using MaliciousRows = std::vector<std::pair<std::string, MaliciousSummary>>;
std::string render_malicious_table(const MaliciousRows& rows);
std::string render_malicious_flags_table(const MaliciousRows& rows);

std::string render_geo_summary(const GeoSummary& geo, std::size_t top_n = 10);

std::string render_empty_question_summary(const EmptyQuestionSummary& s);

}  // namespace orp::analysis
