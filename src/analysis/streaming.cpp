#include "analysis/streaming.h"

#include <algorithm>
#include <vector>

#include "net/ipv4.h"
#include "util/hash.h"
#include "util/rng.h"

namespace orp::analysis {
namespace {

/// The per-view tally shared by Tables III-V (same classification the
/// post-hoc analyze_answers / analyze_ra / analyze_aa apply).
void tally_flag(FlagBreakdown& row, const R2View& v) noexcept {
  if (!v.has_answer()) {
    ++row.without_answer;
  } else if (v.form == AnswerForm::kIp && v.correct) {
    ++row.correct;
  } else {
    ++row.incorrect;
  }
}

/// The per-view digest fold of behavior_digest, verbatim.
std::uint64_t view_digest(const R2View& v) noexcept {
  util::Fnv1a h;
  h.word(v.resolver.value())
      .word(v.header_decoded)
      .word(v.has_question)
      .word(v.ra)
      .word(v.aa)
      .word(static_cast<std::uint64_t>(v.rcode))
      .word(static_cast<std::uint64_t>(v.form))
      .word(v.correct);
  if (v.answer_ip && !v.correct) h.word(v.answer_ip->value());
  h.word(util::fnv1a64(v.answer_text));
  return util::mix64(h.value());
}

}  // namespace

void PartialTables::observe(const R2View& v, const intel::ThreatDb& threats,
                            const intel::GeoDb& geo,
                            const intel::OrgDb& orgs) {
  ++r2_total;
  digest += view_digest(v);

  if (!v.has_question) {
    // §IV-B4 population (header must have decoded to count at all).
    if (!v.header_decoded) return;
    EmptyQuestionSummary& eq = empty_question;
    ++eq.total;
    ++eq.rcode[static_cast<std::size_t>(v.rcode)];
    if (v.ra)
      ++eq.ra1;
    else
      ++eq.ra0;
    if (v.aa) ++eq.aa1;
    if (v.has_answer()) {
      ++eq.with_answer;
      if (v.correct) ++eq.correct;
      if (v.form == AnswerForm::kIp && v.answer_ip) {
        if (net::is_private_address(*v.answer_ip))
          ++eq.private_answers;
        else if (orgs.org_of(*v.answer_ip) == "unknown")
          ++eq.unknown_org;
      } else {
        ++eq.malformed_answers;
      }
      if (!v.ra) ++eq.ra0_with_answer;
    } else if (v.ra) {
      ++eq.ra1_without_answer;
    }
    return;
  }

  // The questioned population: Tables III-VI.
  ++answers.r2;
  if (!v.has_answer()) {
    ++answers.without_answer;
  } else if (v.form == AnswerForm::kIp && v.correct) {
    ++answers.correct;
  } else {
    ++answers.incorrect;
  }
  tally_flag(v.ra ? ra.bit1 : ra.bit0, v);
  tally_flag(v.aa ? aa.bit1 : aa.bit0, v);
  RcodeRow& rc = rcodes.rows[static_cast<std::size_t>(v.rcode)];
  if (v.has_answer())
    ++rc.with_answer;
  else
    ++rc.without_answer;

  if (!v.has_answer()) return;

  // Tables VII-X + §V, incorrect answers only.
  switch (v.form) {
    case AnswerForm::kIp: {
      if (v.correct) break;
      ++ip_r2;
      if (v.answer_ip) {
        const std::uint32_t addr = v.answer_ip->value();
        ++wrong_ip_counts[addr];
        if (ip_example.offer(v.resolver.value(), addr)) ++exemplar_updates;

        static const net::Prefix kCgn(net::IPv4Addr(100, 64, 0, 0), 10);
        if (net::is_private_address(*v.answer_ip)) {
          ++priv_r2;
          priv_unique.insert(addr);
          if (kCgn.contains(*v.answer_ip))
            ++priv_cgn;
          else
            ++priv_rfc1918;
        }

        if (const auto category = threats.dominant_category(*v.answer_ip)) {
          const auto idx = static_cast<std::size_t>(*category);
          ++category_r2[idx];
          category_ips[idx].insert(addr);
          malicious_ips.insert(addr);
          ++mal_r2;
          if (v.ra)
            ++mal_ra1;
          else
            ++mal_ra0;
          if (v.aa)
            ++mal_aa1;
          else
            ++mal_aa0;
          if (v.rcode == dns::Rcode::kNoError) ++mal_rcode_noerror;
          ++malicious_by_country[geo.country_of(v.resolver)];
        }
      }
      break;
    }
    case AnswerForm::kUrl:
      ++url_r2;
      unique_urls.insert(v.answer_text);
      if (url_example.offer(v.resolver.value(), v.answer_text))
        ++exemplar_updates;
      break;
    case AnswerForm::kString:
      ++str_r2;
      unique_strings.insert(v.answer_text);
      if (str_example.offer(v.resolver.value(), v.answer_text))
        ++exemplar_updates;
      break;
    case AnswerForm::kUndecodable:
      ++na_r2;
      break;
    case AnswerForm::kNone:
      break;
  }
}

PartialTables& PartialTables::operator+=(const PartialTables& o) {
  r2_total += o.r2_total;
  answers += o.answers;
  ra += o.ra;
  aa += o.aa;
  rcodes += o.rcodes;

  ip_r2 += o.ip_r2;
  url_r2 += o.url_r2;
  str_r2 += o.str_r2;
  na_r2 += o.na_r2;
  unique_urls.insert(o.unique_urls.begin(), o.unique_urls.end());
  unique_strings.insert(o.unique_strings.begin(), o.unique_strings.end());
  ip_example.merge(o.ip_example);
  url_example.merge(o.url_example);
  str_example.merge(o.str_example);

  for (const auto& [addr, count] : o.wrong_ip_counts)
    wrong_ip_counts[addr] += count;

  for (std::size_t i = 0; i < category_r2.size(); ++i) {
    category_r2[i] += o.category_r2[i];
    category_ips[i].insert(o.category_ips[i].begin(), o.category_ips[i].end());
  }
  malicious_ips.insert(o.malicious_ips.begin(), o.malicious_ips.end());
  mal_r2 += o.mal_r2;
  mal_ra0 += o.mal_ra0;
  mal_ra1 += o.mal_ra1;
  mal_aa0 += o.mal_aa0;
  mal_aa1 += o.mal_aa1;
  mal_rcode_noerror += o.mal_rcode_noerror;
  for (const auto& [country, count] : o.malicious_by_country)
    malicious_by_country[country] += count;

  empty_question += o.empty_question;

  priv_r2 += o.priv_r2;
  priv_rfc1918 += o.priv_rfc1918;
  priv_cgn += o.priv_cgn;
  priv_unique.insert(o.priv_unique.begin(), o.priv_unique.end());

  digest += o.digest;
  exemplar_updates += o.exemplar_updates;
  return *this;
}

ScanAnalysis PartialTables::finalize(const intel::OrgDb& orgs,
                                     const intel::ThreatDb& threats) const {
  ScanAnalysis out;
  out.r2_total = r2_total;
  out.answers = answers;
  out.ra = ra;
  out.aa = aa;
  out.rcodes = rcodes;

  out.incorrect.ip.r2 = ip_r2;
  out.incorrect.ip.unique = wrong_ip_counts.size();
  if (ip_example.set)
    out.incorrect.ip.example = net::IPv4Addr(ip_example.ip).to_string();
  out.incorrect.url.r2 = url_r2;
  out.incorrect.url.unique = unique_urls.size();
  out.incorrect.url.example = url_example.text;
  out.incorrect.str.r2 = str_r2;
  out.incorrect.str.unique = unique_strings.size();
  out.incorrect.str.example = str_example.text;
  out.incorrect.na.r2 = na_r2;
  if (na_r2 > 0) out.incorrect.na.example = "<0x00>";

  // Table VIII: same (count desc, addr asc) total order as the post-hoc
  // ranking — the comparator is strict over the map's unique keys, so the
  // result is independent of the unordered map's iteration order.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> ranked(
      wrong_ip_counts.begin(), wrong_ip_counts.end());
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  constexpr std::size_t kTopK = 10;
  if (ranked.size() > kTopK) ranked.resize(kTopK);
  out.top10.reserve(ranked.size());
  for (const auto& [value, count] : ranked) {
    TopIncorrectEntry entry;
    entry.addr = net::IPv4Addr(value);
    entry.count = count;
    entry.org = orgs.org_of(entry.addr);
    if (net::is_private_address(entry.addr))
      entry.reported = '-';
    else
      entry.reported = threats.is_reported(entry.addr) ? 'Y' : 'N';
    out.top10.push_back(std::move(entry));
  }

  for (std::size_t i = 0; i < category_r2.size(); ++i) {
    out.malicious.categories[i].r2 = category_r2[i];
    out.malicious.categories[i].unique_ips = category_ips[i].size();
  }
  out.malicious.total_ips = malicious_ips.size();
  out.malicious.total_r2 = mal_r2;
  out.malicious.ra0 = mal_ra0;
  out.malicious.ra1 = mal_ra1;
  out.malicious.aa0 = mal_aa0;
  out.malicious.aa1 = mal_aa1;
  out.malicious.rcode_noerror = mal_rcode_noerror;
  // malicious_views intentionally stays empty: the streaming path exists to
  // avoid retaining views, and its only downstream consumer is the geo
  // table below.

  out.geo.total = mal_r2;
  out.geo.countries.reserve(malicious_by_country.size());
  for (const auto& [country, count] : malicious_by_country)
    out.geo.countries.push_back(CountryCount{country, count});
  std::sort(out.geo.countries.begin(), out.geo.countries.end(),
            [](const CountryCount& a, const CountryCount& b) {
              if (a.r2 != b.r2) return a.r2 > b.r2;
              return a.country < b.country;
            });

  out.empty_question = empty_question;

  out.private_redirects.r2 = priv_r2;
  out.private_redirects.unique_ips = priv_unique.size();
  out.private_redirects.rfc1918 = priv_rfc1918;
  out.private_redirects.cgn = priv_cgn;
  return out;
}

std::size_t PartialTables::footprint_bytes() const noexcept {
  std::size_t text = 0;
  for (const std::string& s : unique_urls) text += s.capacity();
  for (const std::string& s : unique_strings) text += s.capacity();
  for (const auto& [country, count] : malicious_by_country)
    text += country.capacity() + sizeof(count);
  std::size_t ips = wrong_ip_counts.size() + malicious_ips.size() +
                    priv_unique.size();
  for (const auto& s : category_ips) ips += s.size();
  // Node-based containers: count ~2 pointers + hash per entry on top of the
  // key/value bytes; close enough for a capacity-planning gauge.
  return sizeof(PartialTables) + text +
         ips * (sizeof(std::uint64_t) * 2 + sizeof(void*) * 2) +
         (unique_urls.size() + unique_strings.size()) *
             (sizeof(std::string) + sizeof(void*) * 2);
}

void StreamingAnalyzer::on_r2(net::SimTime time, net::IPv4Addr resolver,
                              std::span<const std::uint8_t> payload) {
  classify_r2_into(payload, resolver, time, scheme_, scratch_);
  tables_.observe(scratch_, threats_, geo_, orgs_);
}

}  // namespace orp::analysis
