// Streaming behavioral analysis: per-shard partial tables.
//
// The post-hoc analyzer (`analyze_scan`) needs every R2 of the campaign
// materialized as an R2View in one canonically-sorted vector — O(probes)
// peak memory and a single-threaded pass after the shards finish. The
// streaming path classifies each R2 *as it is captured* and folds it into a
// PartialTables accumulator owned by the shard; shards stay share-nothing
// and the pipeline merges the partials with `operator+=` exactly like
// ScanStats. Peak memory drops to O(shards × distinct values + exemplars).
//
// Exactness contract (pinned by PipelineSharding.StreamingAnalysisIsExact):
// the finalized ScanAnalysis is byte-identical to the post-hoc pass for
// every shard layout, batch cap, wire-template setting and loss rate. The
// two non-obvious pieces:
//
//  - Exemplars. The post-hoc example strings are "first view in canonical
//    order with the property", and canonical order is a stable sort by
//    resolver address over shard-order concatenation. So the canonical
//    first is exactly: minimum resolver address, ties broken by (shard
//    index, arrival order). A per-shard exemplar that replaces only on a
//    strictly smaller resolver (keeping the first arrival on equal), merged
//    left-to-right in shard order with the same strict comparison,
//    reproduces it without retaining any view.
//
//  - Top-K / geo sketches. The wrong-IP table keeps the *full* count map
//    (bounded by distinct wrong addresses, not probes) and ranks at
//    finalize with the same (count desc, addr asc) total order the post-hoc
//    pass uses; the geo table keeps an ordered per-country count map. Both
//    merges are commutative sums, so the ranking inputs — and therefore the
//    rendered rows — are independent of the shard layout.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "analysis/report.h"
#include "prober/r2_sink.h"

namespace orp::analysis {

/// "First in canonical view order" for an IP-valued example: the minimum
/// resolver address wins; within one shard the first arrival at that
/// resolver wins (strict `<` on offer), across shards the earlier shard
/// wins (strict `<` on merge, applied in shard order).
struct IpExemplar {
  bool set = false;
  std::uint32_t resolver = 0;
  std::uint32_t ip = 0;

  /// Returns true when the exemplar changed (surfaced as a metric).
  bool offer(std::uint32_t resolver_addr, std::uint32_t ip_value) noexcept {
    if (set && resolver_addr >= resolver) return false;
    set = true;
    resolver = resolver_addr;
    ip = ip_value;
    return true;
  }
  void merge(const IpExemplar& o) {
    if (o.set && (!set || o.resolver < resolver)) *this = o;
  }
};

/// Same selection rule for a text-valued example (URL / garbage string),
/// with one post-hoc quirk preserved: an empty text (SOA/MX/AAAA answers
/// classify as kString with no text) never fills the example slot, so the
/// canonical example is the first *non-empty* value.
struct TextExemplar {
  bool set = false;
  std::uint32_t resolver = 0;
  std::string text;

  bool offer(std::uint32_t resolver_addr, const std::string& value) {
    if (value.empty()) return false;
    if (set && resolver_addr >= resolver) return false;
    set = true;
    resolver = resolver_addr;
    text = value;  // reuses capacity; replacements are rare and bounded
    return true;
  }
  void merge(const TextExemplar& o) {
    if (o.set && (!set || o.resolver < resolver)) {
      set = true;
      resolver = o.resolver;
      text = o.text;
    }
  }
};

/// One shard's worth of streamed table state. Everything is either a flat
/// counter, a distinct-value set/count-map (bounded by distinct values
/// observed, not by probe count), or a canonical-order exemplar; the merge
/// is a commutative fold except for exemplar ties, which `operator+=`
/// resolves in application (shard) order.
struct PartialTables {
  std::uint64_t r2_total = 0;  // every R2, undecodable headers included
  AnswerBreakdown answers;     // Table III
  FlagTable ra;                // Table IV
  FlagTable aa;                // Table V
  RcodeTable rcodes;           // Table VI

  // Table VII: per-form counts, distinct-value sets, canonical exemplars.
  std::uint64_t ip_r2 = 0, url_r2 = 0, str_r2 = 0, na_r2 = 0;
  std::unordered_set<std::string> unique_urls;
  std::unordered_set<std::string> unique_strings;
  IpExemplar ip_example;
  TextExemplar url_example, str_example;

  // Table VIII: the full wrong-IP count map (its key set is also Table
  // VII's distinct wrong-IP count); ranked + attributed at finalize.
  std::unordered_map<std::uint32_t, std::uint64_t> wrong_ip_counts;

  // Tables IX-X: per-category counts + distinct-IP sets, flag split.
  std::array<std::uint64_t, intel::kThreatCategoryCount> category_r2{};
  std::array<std::unordered_set<std::uint32_t>, intel::kThreatCategoryCount>
      category_ips;
  std::unordered_set<std::uint32_t> malicious_ips;
  std::uint64_t mal_r2 = 0;
  std::uint64_t mal_ra0 = 0, mal_ra1 = 0, mal_aa0 = 0, mal_aa1 = 0;
  std::uint64_t mal_rcode_noerror = 0;

  // §IV-C2: resolver country of each malicious R2 (replaces the post-hoc
  // path's retained `malicious_views` vector).
  std::map<std::string, std::uint64_t> malicious_by_country;

  EmptyQuestionSummary empty_question;  // §IV-B4

  // §V private redirects.
  std::uint64_t priv_r2 = 0, priv_rfc1918 = 0, priv_cgn = 0;
  std::unordered_set<std::uint32_t> priv_unique;

  /// Streamed behavior digest: the same commutative per-view fold as
  /// `behavior_digest`, accumulated at observe time and merged by addition.
  std::uint64_t digest = 0;

  /// Times an exemplar replacement fired (arrival-order dependent, so this
  /// is a thread-variant diagnostic, not table content).
  std::uint64_t exemplar_updates = 0;

  /// Fold one classified view in. Exactly mirrors the per-view effect of
  /// the analyze_* passes; allocation-free once every distinct value has
  /// been seen (steady state — pinned by the alloc-budget suite).
  void observe(const R2View& v, const intel::ThreatDb& threats,
               const intel::GeoDb& geo, const intel::OrgDb& orgs);

  /// Deterministic shard merge: counters sum, sets union, count maps add,
  /// exemplars keep the canonical-order winner. Apply in shard order.
  PartialTables& operator+=(const PartialTables& o);

  /// Rank, attribute and package into the post-hoc result type. Byte-
  /// identical to `analyze_scan` over the same views, except
  /// `malicious.malicious_views` stays empty (its only in-tree consumer,
  /// the geo table, is streamed directly).
  ScanAnalysis finalize(const intel::OrgDb& orgs,
                        const intel::ThreatDb& threats) const;

  /// Rough live footprint of the accumulator (containers + strings), for
  /// the obs gauge; exact byte accounting is not worth hashing the heap.
  std::size_t footprint_bytes() const noexcept;
};

/// The per-shard R2 sink: classifies each captured response into a reused
/// scratch view (zero allocations steady-state) and folds it into the
/// shard's PartialTables. Intel lookups use the shard's IntelBundle, which
/// is built from campaign-global inputs only and therefore identical in
/// every shard.
class StreamingAnalyzer final : public prober::R2Sink {
 public:
  StreamingAnalyzer(const zone::SubdomainScheme& scheme,
                    const intel::ThreatDb& threats, const intel::GeoDb& geo,
                    const intel::OrgDb& orgs)
      : scheme_(scheme), threats_(threats), geo_(geo), orgs_(orgs) {}

  void on_r2(net::SimTime time, net::IPv4Addr resolver,
             std::span<const std::uint8_t> payload) override;

  PartialTables& tables() noexcept { return tables_; }
  const PartialTables& tables() const noexcept { return tables_; }

 private:
  const zone::SubdomainScheme& scheme_;
  const intel::ThreatDb& threats_;
  const intel::GeoDb& geo_;
  const intel::OrgDb& orgs_;
  R2View scratch_;
  PartialTables tables_;
};

}  // namespace orp::analysis
