#include "authns/auth_server.h"

#include <cstring>
#include <string_view>

#include "dns/builder.h"
#include "dns/edns.h"
#include "dns/truncate.h"
#include "util/hash.h"

namespace orp::authns {
namespace {

dns::SoaRdata make_soa(const dns::DnsName& sld) {
  dns::SoaRdata soa;
  soa.mname = sld.child("ns1");
  soa.rname = sld.child("hostmaster");
  soa.serial = 2018042601;
  return soa;
}

/// Fixed-width zero-padded decimal (precondition: v fits in `width`, which
/// a WireTemplate match guarantees for the stamped digit runs).
char* put_fixed(char* p, std::uint32_t v, int width) {
  for (int i = width - 1; i >= 0; --i) {
    p[i] = static_cast<char>('0' + v % 10);
    v /= 10;
  }
  return p + width;
}

}  // namespace

AuthServer::AuthServer(net::Network& network, net::IPv4Addr addr,
                       zone::SubdomainScheme scheme,
                       net::SimTime zone_load_latency,
                       dns::EncodeBuffer* codec_scratch, bool wire_templates)
    : network_(network),
      addr_(addr),
      codec_scratch_(codec_scratch != nullptr ? *codec_scratch : own_scratch_),
      scheme_(std::move(scheme)),
      apex_zone_(scheme_.sld(), make_soa(scheme_.sld())),
      zone_load_latency_(zone_load_latency) {
  apex_zone_.add(dns::ResourceRecord{scheme_.sld(), dns::RRType::kNS,
                                     dns::RRClass::kIN, 172800,
                                     dns::NameRdata{scheme_.sld().child("ns1")}});
  apex_zone_.add(dns::ResourceRecord{scheme_.sld().child("ns1"),
                                     dns::RRType::kA, dns::RRClass::kIN,
                                     172800, dns::ARdata{addr_}});
  network_.bind_batch(
      net::Endpoint{addr_, net::kDnsPort},
      [this](const net::Datagram& d) { on_datagram(d); },
      [this](const net::DatagramBatch& b) { on_batch(b); });
  if (wire_templates) {
    // The dominant Q2 shape: an iterative (RD=0) A query for a probe
    // subdomain carrying the engines' default EDNS OPT (4096, DO=0).
    // DNSSEC validators (DO=1), "TCP" retries (65535), and every other
    // variant differ in wire bytes and fall through to the full path, so
    // the edns/do counters stay exact.
    const auto probe_query = [this](const dns::StampVars& v) {
      dns::Message q = dns::make_query(
          v.txn, scheme_.qname({v.cluster, v.index}), dns::RRType::kA);
      q.header.flags.rd = false;
      dns::set_edns(q, dns::EdnsInfo{.udp_payload_size = 4096});
      return q;
    };
    // Responses echo our own OPT, exactly as the slow path negotiates.
    query_tpl_ = dns::WireTemplate::derive(probe_query, codec_scratch_);
    answer_tpl_ = dns::WireTemplate::derive(
        [&](const dns::StampVars& v) {
          dns::Message r = dns::make_a_response(
              probe_query(v), net::IPv4Addr{v.addr}, v.ttl, /*ra=*/false,
              /*aa=*/true);
          dns::set_edns(r, dns::EdnsInfo{.udp_payload_size = 4096});
          return r;
        },
        codec_scratch_);
    nx_tpl_ = dns::WireTemplate::derive(
        [&](const dns::StampVars& v) {
          dns::Message r = dns::make_error_response(
              probe_query(v), dns::Rcode::kNXDomain, /*ra=*/false);
          r.header.flags.aa = true;
          dns::set_edns(r, dns::EdnsInfo{.udp_payload_size = 4096});
          return r;
        },
        codec_scratch_);
    // All three must have derived, and both responses must fit the classic
    // 512-byte budget so truncate_to_fit on the slow path is a no-op for
    // these shapes (the fast path skips it).
    templates_ok_ = query_tpl_.ok() && answer_tpl_.ok() && nx_tpl_.ok() &&
                    answer_tpl_.size() <= 512 && nx_tpl_.size() <= 512;
    // Learn the canonical-key layout for probe_marked(), exactly as the
    // scanner's QnameRenderer does: "or###.#######" + an id-invariant tail.
    const std::string canon0 = scheme_.qname({0, 0}).canonical_key();
    constexpr std::string_view kHead = "or000.0000000";
    canon_ok_ = canon0.size() >= kHead.size() &&
                std::string_view(canon0).substr(0, kHead.size()) == kHead;
    if (canon_ok_) canon_suffix_ = canon0.substr(kHead.size());
  }
  load_cluster(0, /*initial=*/true);
}

AuthServer::~AuthServer() {
  if (tcp_enabled_)
    network_.streams().unlisten(net::Endpoint{addr_, net::kDnsPort});
}

void AuthServer::set_udp_limit(std::uint16_t limit) noexcept {
  udp_limit_ = limit;
  tpl_fit_limit_ =
      limit == 0 || (answer_tpl_.size() <= limit && nx_tpl_.size() <= limit);
}

void AuthServer::enable_tcp() {
  if (tcp_enabled_) return;
  tcp_enabled_ = true;
  network_.streams().listen(net::Endpoint{addr_, net::kDnsPort}, this);
}

void AuthServer::load_cluster(std::uint32_t cluster, bool initial) {
  loaded_cluster_ = cluster;
  ++stats_.cluster_loads;
  load_time_total_ += zone_load_latency_;
  if (!initial)
    load_busy_until_ = network_.loop().now() + zone_load_latency_;
}

void AuthServer::add_record(dns::ResourceRecord rr) {
  apex_zone_.add(std::move(rr));
}

void AuthServer::on_batch(const net::DatagramBatch& b) {
  // Span-order per-query processing; the auth server stays bound for the
  // whole campaign, so this is exactly the per-packet path without the
  // per-item binding re-check.
  for (std::size_t i = 0; i < b.size(); ++i)
    on_datagram(net::Datagram{b.srcs[i], b.dst, b.payloads[i]});
}

std::uint64_t AuthServer::probe_flow(const dns::StampVars& v) const {
  char buf[dns::kMaxNameLength + 32];
  char* p = buf;
  *p++ = 'o';
  *p++ = 'r';
  p = put_fixed(p, v.cluster, 3);
  *p++ = '.';
  p = put_fixed(p, v.index, 7);
  std::memcpy(p, canon_suffix_.data(), canon_suffix_.size());
  p += canon_suffix_.size();
  return util::Fnv1a{}
      .bytes(std::string_view(buf, static_cast<std::size_t>(p - buf)))
      .value();
}

void AuthServer::on_datagram(const net::Datagram& d) {
  ++stats_.queries_received;
  // Probe fast path: a wire-exact in-width A query for the loaded scheme is
  // answered by stamping a pre-encoded response — no decode, no encode.
  // Gated off while a zone reload is in flight (those queries take the full
  // path and its SERVFAIL). Tracer-marked flows stay on the fast path: the
  // Q2/R1 span points are recorded around the stamp, with the same
  // timestamps and peer the full path would record (no simulated time
  // passes inside a handler), so the trace is identical while the marked
  // query still costs one stamp instead of a decode/encode round.
  dns::StampVars v;
  if (templates_ok_ && tpl_fit_limit_ &&
      network_.loop().now() >= load_busy_until_ &&
      query_tpl_.match(d.payload, v) && (tracer_ == nullptr || canon_ok_)) {
    ++stats_.edns_queries;  // the matched shape always carries EDNS, DO=0
    std::uint64_t traced_flow = 0;
    bool traced = false;
    if (tracer_ != nullptr) {
      const std::uint64_t flow = probe_flow(v);
      if (tracer_->marked(flow)) {
        traced_flow = flow;
        traced = true;
        tracer_->record(flow, obs::SpanPoint::kQ2Auth, network_.loop().now(),
                        d.src.addr.value());
      }
    }
    const zone::SubdomainId id{v.cluster, v.index};
    const bool resident =
        id.cluster == loaded_cluster_ ||
        (loaded_cluster_ > 0 && id.cluster == loaded_cluster_ - 1);
    std::span<const std::uint8_t> wire;
    if (resident && id.index < scheme_.cluster_size()) {
      ++stats_.answered;
      v.ttl = 300;
      v.addr = scheme_.ground_truth(id).value();
      wire = answer_tpl_.stamp(v, codec_scratch_);
    } else {
      ++stats_.nxdomain;
      wire = nx_tpl_.stamp(v, codec_scratch_);
    }
    ++stats_.template_stamped;
    ++stats_.responses_sent;
    network_.send(net::Endpoint{addr_, net::kDnsPort}, d.src, wire);
    if (traced)
      tracer_->record(traced_flow, obs::SpanPoint::kR1Sent,
                      network_.loop().now(), d.src.addr.value());
    return;
  }
  ++stats_.template_fallback;
  const auto decoded = dns::decode(d.payload);
  if (!decoded) {
    // RFC 1035: unintelligible query -> FORMERR with whatever id we can read.
    ++stats_.formerr;
    dns::Message err;
    if (d.payload.size() >= 2)
      err.header.id =
          static_cast<std::uint16_t>((d.payload[0] << 8) | d.payload[1]);
    err.header.flags.qr = true;
    err.header.flags.rcode = dns::Rcode::kFormErr;
    ++stats_.responses_sent;
    const auto wire = dns::encode_into(err, codec_scratch_);
    network_.send(net::Endpoint{addr_, net::kDnsPort}, d.src, wire);
    return;
  }
  if (const auto edns = dns::extract_edns(*decoded)) {
    ++stats_.edns_queries;
    if (edns->do_bit) ++stats_.dnssec_do_queries;
  }
  // Sampled-flow tracing: the Q2 span point. One hash-set probe per query;
  // only flows the scanner marked at Q1 are recorded.
  std::uint64_t traced_flow = 0;
  bool traced = false;
  if (tracer_ != nullptr && !decoded->questions.empty()) {
    char key_buf[dns::kMaxNameLength];
    const std::uint64_t flow =
        util::Fnv1a{}
            .bytes(decoded->questions.front().qname.canonical_key_into(key_buf))
            .value();
    if (tracer_->marked(flow)) {
      traced_flow = flow;
      traced = true;
      tracer_->record(flow, obs::SpanPoint::kQ2Auth, network_.loop().now(),
                      d.src.addr.value());
    }
  }
  dns::Message response = answer(*decoded);
  // EDNS negotiation (RFC 6891): echo an OPT advertising our own buffer,
  // and truncate to the client's budget — 512 bytes for classic DNS.
  if (dns::extract_edns(*decoded))
    dns::set_edns(response, dns::EdnsInfo{.udp_payload_size = 4096});
  if (dns::truncate_to_fit(response, dns::response_size_budget(*decoded)))
    ++stats_.truncated;
  ++stats_.responses_sent;
  auto wire = dns::encode_into(response, codec_scratch_);
  // Server-side UDP cap: a wire-level whole-record cut with TC=1 on top of
  // whatever the client's EDNS budget already allowed. The TCP listener
  // (enable_tcp) serves the same query un-cut, which is what makes the
  // TC=1 bit an invitation rather than a dead end.
  if (udp_limit_ != 0 && wire.size() > udp_limit_) {
    std::span<std::uint8_t> mut{codec_scratch_.out.data(), wire.size()};
    const std::size_t cut = dns::Truncator::truncate(mut, udp_limit_);
    if (cut < wire.size()) {
      wire = wire.first(cut);
      ++stats_.truncated;
    }
  }
  network_.send(net::Endpoint{addr_, net::kDnsPort}, d.src, wire);
  if (traced)
    tracer_->record(traced_flow, obs::SpanPoint::kR1Sent,
                    network_.loop().now(), d.src.addr.value());
}

void AuthServer::on_message(net::ConnId c, net::SimTime /*at*/,
                            const net::PayloadRef& msg) {
  ++stats_.queries_received;
  ++stats_.tcp_queries;
  ++stats_.template_fallback;  // streams never take the stamp fast path
  net::StreamNet& streams = network_.streams();
  const auto decoded = dns::decode(msg.span());
  if (!decoded) {
    ++stats_.formerr;
    dns::Message err;
    const auto in = msg.span();
    if (in.size() >= 2)
      err.header.id = static_cast<std::uint16_t>((in[0] << 8) | in[1]);
    err.header.flags.qr = true;
    err.header.flags.rcode = dns::Rcode::kFormErr;
    ++stats_.responses_sent;
    ++stats_.tcp_responses;
    streams.send_message(c, dns::encode_into(err, codec_scratch_));
    return;
  }
  if (const auto edns = dns::extract_edns(*decoded)) {
    ++stats_.edns_queries;
    if (edns->do_bit) ++stats_.dnssec_do_queries;
  }
  dns::Message response = answer(*decoded);
  if (dns::extract_edns(*decoded))
    dns::set_edns(response, dns::EdnsInfo{.udp_payload_size = 4096});
  // No truncate_to_fit and no udp_limit_ cut: the stream carries the whole
  // answer regardless of any advertised datagram budget (RFC 7766).
  ++stats_.responses_sent;
  ++stats_.tcp_responses;
  streams.send_message(c, dns::encode_into(response, codec_scratch_));
}

dns::Message AuthServer::answer(const dns::Message& query) {
  if (query.questions.empty()) {
    ++stats_.formerr;
    dns::Message err = dns::make_error_response(query, dns::Rcode::kFormErr,
                                                /*ra=*/false);
    return err;
  }
  const dns::Question& q = query.questions.front();

  // Mid-reload the server cannot serve the zone.
  if (network_.loop().now() < load_busy_until_) {
    ++stats_.refused;  // counted with failures
    return dns::make_error_response(query, dns::Rcode::kServFail,
                                    /*ra=*/false);
  }

  if (!q.qname.is_subdomain_of(scheme_.sld())) {
    ++stats_.refused;
    return dns::make_error_response(query, dns::Rcode::kRefused, /*ra=*/false);
  }

  // Probe subdomain? Serve the synthetic cluster view. The current and the
  // immediately previous cluster are answerable; anything else was unloaded.
  if (const auto id = scheme_.parse(q.qname)) {
    const bool resident =
        id->cluster == loaded_cluster_ ||
        (loaded_cluster_ > 0 && id->cluster == loaded_cluster_ - 1);
    if (resident && id->index < scheme_.cluster_size() &&
        (q.qtype == dns::RRType::kA || q.qtype == dns::RRType::kANY)) {
      ++stats_.answered;
      dns::Message r = dns::make_a_response(query, scheme_.ground_truth(*id),
                                            /*ttl=*/300, /*ra=*/false,
                                            /*aa=*/true);
      return r;
    }
    ++stats_.nxdomain;
    dns::Message r =
        dns::make_error_response(query, dns::Rcode::kNXDomain, /*ra=*/false);
    r.header.flags.aa = true;
    return r;
  }

  // Static apex data.
  const auto result = apex_zone_.lookup(q.qname, q.qtype);
  switch (result.status) {
    case zone::LookupStatus::kAnswer: {
      ++stats_.answered;
      dns::Message r = dns::make_response(query);
      r.header.flags.aa = true;
      r.header.flags.ra = false;
      r.answers = result.records;
      return r;
    }
    case zone::LookupStatus::kNoData: {
      dns::Message r = dns::make_error_response(query, dns::Rcode::kNoError,
                                                /*ra=*/false);
      r.header.flags.aa = true;
      return r;
    }
    case zone::LookupStatus::kNXDomain:
    default: {
      ++stats_.nxdomain;
      dns::Message r = dns::make_error_response(query, dns::Rcode::kNXDomain,
                                                /*ra=*/false);
      r.header.flags.aa = true;
      return r;
    }
  }
}

}  // namespace orp::authns
