// The measurement's authoritative name server (paper §III-A2).
//
// Serves the controlled SLD: static apex records plus the currently-loaded
// probe-subdomain cluster (whose A records are derived from the
// SubdomainScheme rather than materialized — 5M synthetic names per cluster
// behave identically to a loaded zone file, without the memory).
// Answers with AA=1 and RA=0 (recursion disabled, as the paper's BIND
// configuration). Out-of-zone queries are REFUSED. Every received query and
// sent response is counted (the tcpdump vantage of Fig. 2: Q2 and R1).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "dns/codec.h"
#include "dns/wire_template.h"
#include "net/stream.h"
#include "net/transport.h"
#include "obs/trace.h"
#include "zone/cluster.h"
#include "zone/zone.h"

namespace orp::authns {

struct AuthStats {
  std::uint64_t queries_received = 0;   // Q2 at this vantage
  std::uint64_t responses_sent = 0;     // R1 at this vantage
  std::uint64_t answered = 0;           // NoError with answer
  std::uint64_t nxdomain = 0;
  std::uint64_t refused = 0;
  std::uint64_t formerr = 0;            // undecodable queries
  std::uint64_t truncated = 0;          // TC=1 responses (budget exceeded)
  std::uint64_t edns_queries = 0;       // queries carrying an OPT RR
  std::uint64_t dnssec_do_queries = 0;  // queries with the DO bit set
  std::uint64_t cluster_loads = 0;
  std::uint64_t template_stamped = 0;   // responses stamped from a template
  std::uint64_t template_fallback = 0;  // queries through the full path
  std::uint64_t tcp_queries = 0;        // queries arriving over a stream
  std::uint64_t tcp_responses = 0;      // responses served over a stream

  /// Merge another shard's auth-vantage counters. A sharded campaign runs
  /// one AuthServer instance per shard (each shard's loop is isolated);
  /// the Q2/R1 totals of the campaign are the sum across instances.
  AuthStats& operator+=(const AuthStats& o) noexcept {
    queries_received += o.queries_received;
    responses_sent += o.responses_sent;
    answered += o.answered;
    nxdomain += o.nxdomain;
    refused += o.refused;
    formerr += o.formerr;
    truncated += o.truncated;
    edns_queries += o.edns_queries;
    dnssec_do_queries += o.dnssec_do_queries;
    cluster_loads += o.cluster_loads;
    template_stamped += o.template_stamped;
    template_fallback += o.template_fallback;
    tcp_queries += o.tcp_queries;
    tcp_responses += o.tcp_responses;
    return *this;
  }
};

class AuthServer : private net::StreamHandler {
 public:
  /// The server answers for `scheme.sld()`. `addr` is its public address.
  /// `codec_scratch`, when given, is a shared single-threaded encode buffer
  /// (one per shard's SimulatedInternet); the server owns one otherwise.
  /// `wire_templates` enables the template fast path (recognize a probe
  /// query and stamp its answer without a decode/encode round); either
  /// setting yields bit-identical responses and identical stats, minus the
  /// template_* counters themselves.
  AuthServer(net::Network& network, net::IPv4Addr addr,
             zone::SubdomainScheme scheme, net::SimTime zone_load_latency,
             dns::EncodeBuffer* codec_scratch = nullptr,
             bool wire_templates = true);
  ~AuthServer();

  net::IPv4Addr address() const noexcept { return addr_; }
  const zone::SubdomainScheme& scheme() const noexcept { return scheme_; }
  const AuthStats& stats() const noexcept { return stats_; }

  /// Attach the shard's flow tracer (may be null). This vantage contributes
  /// the Q2/R1 span points — the tcpdump side of Fig. 2.
  void set_obs(obs::FlowTracer* tracer) noexcept { tracer_ = tracer; }

  /// Replace the loaded cluster (one zone file resident at a time, as in the
  /// paper). The load pauses answering for `zone_load_latency` of simulated
  /// time: queries arriving mid-load get SERVFAIL, which is what a BIND
  /// reload under memory pressure produced for the authors. The scanner
  /// coordinates by pausing sends across the load window, as the authors'
  /// pipeline did. `initial` marks the pre-scan load, which completes before
  /// probing starts and therefore opens no busy window.
  void load_cluster(std::uint32_t cluster, bool initial = false);

  std::uint32_t loaded_cluster() const noexcept { return loaded_cluster_; }

  /// Publish an additional static record under the SLD (TXT/MX/etc.) — used
  /// e.g. to study ANY-query amplification against a record-rich apex.
  void add_record(dns::ResourceRecord rr);

  /// Server-side UDP response cap: responses exceeding `limit` bytes are
  /// cut at the largest whole-record boundary with TC=1 (dns::Truncator),
  /// on top of the client's EDNS budget. 0 (default) disables the cap.
  /// Engaged by the truncation/fallback study; the measurement campaign
  /// never sets it.
  void set_udp_limit(std::uint16_t limit) noexcept;

  /// Also answer DNS over TCP on port 53 — full responses, never capped
  /// (RFC 7766 conduct for a truncating authoritative).
  void enable_tcp();
  std::uint16_t udp_limit() const noexcept { return udp_limit_; }

  /// Total simulated time spent loading zones.
  net::SimTime load_time_total() const noexcept { return load_time_total_; }

 private:
  void on_datagram(const net::Datagram& d);
  /// Grouped-delivery entry point: span-order per-query processing,
  /// equivalent to one on_datagram call per item.
  void on_batch(const net::DatagramBatch& b);
  /// DNS-over-TCP entry point (enable_tcp): full answers down the same
  /// connection, exempt from both the EDNS budget and udp_limit_. The
  /// stream vantage is not flow-traced — the TCP span points of a fallback
  /// flow are recorded by the retrying scanner, not here.
  void on_message(net::ConnId c, net::SimTime at,
                  const net::PayloadRef& msg) override;
  dns::Message answer(const dns::Message& query);
  /// Flow key of a matched probe query: renders the probe's canonical qname
  /// from the stamped vars (the template match guarantees in-width digits)
  /// and hashes it — no decode. Marked flows record their Q2/R1 span points
  /// from the fast path itself; diverting them to the full decode/encode
  /// path would make the tracer pay a full codec round per marked query,
  /// and qname reuse makes the marked set cover far more traffic than the
  /// 1-in-N sampling rate suggests.
  std::uint64_t probe_flow(const dns::StampVars& v) const;

  net::Network& network_;
  net::IPv4Addr addr_;
  dns::EncodeBuffer own_scratch_;
  dns::EncodeBuffer& codec_scratch_;
  zone::SubdomainScheme scheme_;
  zone::Zone apex_zone_;
  net::SimTime zone_load_latency_;
  net::SimTime load_busy_until_;
  net::SimTime load_time_total_;
  std::uint32_t loaded_cluster_ = 0;
  std::uint16_t udp_limit_ = 0;
  /// Both response templates fit under udp_limit_ (always true at 0), so
  /// the stamp fast path never needs a truncation pass. Recomputed by
  /// set_udp_limit; checked alongside templates_ok_.
  bool tpl_fit_limit_ = true;
  bool tcp_enabled_ = false;
  AuthStats stats_;
  obs::FlowTracer* tracer_ = nullptr;

  // Probe fast path: recognize an in-width A query for the scheme via
  // query_tpl_.match(), stamp the answer (or NXDOMAIN) from a pre-encoded
  // template. Engaged when the server is not mid-reload; tracer-marked
  // flows stay on it too (their Q2/R1 span points are recorded around the
  // stamp). Everything else (EDNS variants, apex, out-of-zone, FORMERR)
  // can't match the template and takes the full path.
  dns::WireTemplate query_tpl_;
  dns::WireTemplate answer_tpl_;
  dns::WireTemplate nx_tpl_;
  bool templates_ok_ = false;

  // Canonical-key renderer for probe_marked(): canonical bytes after the
  // two numeric labels, mirroring prober::QnameRenderer. canon_ok_ is false
  // if the scheme's canonical form ever deviates from "or###.#######..."
  // (then a tracer disables the fast path entirely, as before).
  std::string canon_suffix_;
  bool canon_ok_ = false;
};

}  // namespace orp::authns
