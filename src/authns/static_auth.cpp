#include "authns/static_auth.h"

#include "dns/builder.h"
#include "dns/edns.h"

namespace orp::authns {

StaticAuthServer::StaticAuthServer(net::Network& network, net::IPv4Addr addr,
                                   zone::Zone zone)
    : network_(network), addr_(addr), zone_(std::move(zone)) {
  network_.bind(net::Endpoint{addr_, net::kDnsPort},
                [this](const net::Datagram& d) { on_datagram(d); });
}

StaticAuthServer::~StaticAuthServer() {
  network_.unbind(net::Endpoint{addr_, net::kDnsPort});
}

void StaticAuthServer::on_datagram(const net::Datagram& d) {
  ++stats_.queries;
  const auto decoded = dns::decode(d.payload);
  if (!decoded || decoded->questions.empty()) return;
  const dns::Question& q = decoded->questions.front();

  dns::Message response;
  const auto result = zone_.lookup(q.qname, q.qtype);
  switch (result.status) {
    case zone::LookupStatus::kAnswer:
      ++stats_.answered;
      response = dns::make_response(*decoded);
      response.header.flags.aa = true;
      response.answers = result.records;
      break;
    case zone::LookupStatus::kNoData:
      response = dns::make_error_response(*decoded, dns::Rcode::kNoError,
                                          /*ra=*/false);
      response.header.flags.aa = true;
      break;
    case zone::LookupStatus::kNXDomain:
      ++stats_.nxdomain;
      response = dns::make_error_response(*decoded, dns::Rcode::kNXDomain,
                                          /*ra=*/false);
      response.header.flags.aa = true;
      break;
    case zone::LookupStatus::kOutOfZone:
      ++stats_.refused;
      response = dns::make_error_response(*decoded, dns::Rcode::kRefused,
                                          /*ra=*/false);
      break;
  }
  if (dns::extract_edns(*decoded))
    dns::set_edns(response, dns::EdnsInfo{.udp_payload_size = 4096});
  dns::truncate_to_fit(response, dns::response_size_budget(*decoded));
  network_.send(net::Datagram{net::Endpoint{addr_, net::kDnsPort}, d.src,
                              dns::encode(response)});
}

}  // namespace orp::authns
