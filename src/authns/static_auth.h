// A general-purpose authoritative server for an arbitrary zone.
//
// The measurement's own AuthServer (auth_server.h) is specialized for the
// probe-subdomain cluster scheme; this one serves any Zone verbatim. It
// powers the simulated "rest of the Internet" — the popular web domains the
// usage-impact study (§V future work) lets clients resolve.
#pragma once

#include <cstdint>

#include "dns/codec.h"
#include "net/transport.h"
#include "zone/zone.h"

namespace orp::authns {

struct StaticAuthStats {
  std::uint64_t queries = 0;
  std::uint64_t answered = 0;
  std::uint64_t nxdomain = 0;
  std::uint64_t refused = 0;
};

class StaticAuthServer {
 public:
  StaticAuthServer(net::Network& network, net::IPv4Addr addr,
                   zone::Zone zone);
  ~StaticAuthServer();

  StaticAuthServer(const StaticAuthServer&) = delete;
  StaticAuthServer& operator=(const StaticAuthServer&) = delete;

  net::IPv4Addr address() const noexcept { return addr_; }
  const zone::Zone& zone() const noexcept { return zone_; }
  zone::Zone& zone() noexcept { return zone_; }
  const StaticAuthStats& stats() const noexcept { return stats_; }

 private:
  void on_datagram(const net::Datagram& d);

  net::Network& network_;
  net::IPv4Addr addr_;
  zone::Zone zone_;
  StaticAuthStats stats_;
};

}  // namespace orp::authns
