#include "core/contrast.h"

#include <cmath>
#include <sstream>

#include "util/strings.h"

namespace orp::core {

OpenResolverEstimates estimate_open_resolvers(
    const analysis::ScanAnalysis& a) {
  OpenResolverEstimates est;
  est.strict = a.ra.bit1.correct;
  est.ra_flag_only = a.ra.bit1.total();
  est.correct_only = a.answers.correct;
  return est;
}

bool TemporalContrast::incorrect_roughly_stable(double tolerance) const noexcept {
  if (incorrect_old == 0) return incorrect_new == 0;
  const double ratio = static_cast<double>(incorrect_new) /
                       static_cast<double>(incorrect_old);
  return std::abs(ratio - 1.0) <= tolerance;
}

TemporalContrast contrast(const analysis::ScanAnalysis& older,
                          const analysis::ScanAnalysis& newer) {
  TemporalContrast c;
  c.est_old = estimate_open_resolvers(older);
  c.est_new = estimate_open_resolvers(newer);
  c.r2_old = older.r2_total;
  c.r2_new = newer.r2_total;
  c.incorrect_old = older.answers.incorrect;
  c.incorrect_new = newer.answers.incorrect;
  c.err_old = older.answers.err_percent();
  c.err_new = newer.answers.err_percent();
  c.malicious_r2_old = older.malicious.total_r2;
  c.malicious_r2_new = newer.malicious.total_r2;
  c.malicious_ips_old = older.malicious.total_ips;
  c.malicious_ips_new = newer.malicious.total_ips;
  return c;
}

std::string render_contrast(const TemporalContrast& c, int year_old,
                            int year_new) {
  using util::fixed;
  using util::with_commas;
  std::ostringstream out;
  out << "Temporal contrast " << year_old << " -> " << year_new << "\n"
      << "  open resolvers (strict: RA=1 & correct): "
      << with_commas(c.est_old.strict) << " -> " << with_commas(c.est_new.strict)
      << "\n"
      << "  open resolvers (RA flag only):           "
      << with_commas(c.est_old.ra_flag_only) << " -> "
      << with_commas(c.est_new.ra_flag_only) << "\n"
      << "  open resolvers (correct answer only):    "
      << with_commas(c.est_old.correct_only) << " -> "
      << with_commas(c.est_new.correct_only) << "\n"
      << "  R2 responses: " << with_commas(c.r2_old) << " -> "
      << with_commas(c.r2_new) << "\n"
      << "  incorrect answers: " << with_commas(c.incorrect_old) << " -> "
      << with_commas(c.incorrect_new) << "  (error rate " << fixed(c.err_old)
      << "% -> " << fixed(c.err_new) << "%)\n"
      << "  malicious responses: " << with_commas(c.malicious_r2_old) << " -> "
      << with_commas(c.malicious_r2_new) << " over "
      << with_commas(c.malicious_ips_old) << " -> "
      << with_commas(c.malicious_ips_new) << " unique addresses\n"
      << "  claims: decrease=" << (c.open_resolvers_decreased() ? "yes" : "no")
      << ", incorrect-stable=" << (c.incorrect_roughly_stable() ? "yes" : "no")
      << ", error-rate-up=" << (c.error_rate_increased() ? "yes" : "no")
      << ", malicious-up=" << (c.malicious_increased() ? "yes" : "no") << "\n";
  return out.str();
}

}  // namespace orp::core
