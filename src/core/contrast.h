// Temporal contrast (the paper's fourth contribution): 2013 vs 2018.
//
// Encodes the comparisons §IV draws — open-resolver population shrink,
// stable incorrect-answer volume, rising error rate, and the growth of
// malicious responders — plus the three open-resolver estimates of §IV-B1
// (strict RA=1-and-correct, RA-flag-only, correct-answer-only).
#pragma once

#include <cstdint>
#include <string>

#include "analysis/report.h"

namespace orp::core {

/// §IV-B1's three ways to count "open resolvers" from one scan.
struct OpenResolverEstimates {
  std::uint64_t strict = 0;        // RA=1 and correct answer
  std::uint64_t ra_flag_only = 0;  // RA=1 regardless of answer
  std::uint64_t correct_only = 0;  // correct answer regardless of RA
};

OpenResolverEstimates estimate_open_resolvers(const analysis::ScanAnalysis& a);

struct TemporalContrast {
  OpenResolverEstimates est_old;
  OpenResolverEstimates est_new;

  std::uint64_t r2_old = 0;
  std::uint64_t r2_new = 0;
  std::uint64_t incorrect_old = 0;
  std::uint64_t incorrect_new = 0;
  double err_old = 0;   // Table III error rates
  double err_new = 0;
  std::uint64_t malicious_r2_old = 0;
  std::uint64_t malicious_r2_new = 0;
  std::uint64_t malicious_ips_old = 0;
  std::uint64_t malicious_ips_new = 0;

  /// The paper's headline claims, as predicates over this contrast.
  bool open_resolvers_decreased() const noexcept {
    return est_new.strict < est_old.strict;
  }
  bool incorrect_roughly_stable(double tolerance = 0.25) const noexcept;
  bool error_rate_increased() const noexcept { return err_new > err_old; }
  bool malicious_increased() const noexcept {
    return malicious_r2_new > malicious_r2_old &&
           malicious_ips_new > malicious_ips_old;
  }
};

TemporalContrast contrast(const analysis::ScanAnalysis& older,
                          const analysis::ScanAnalysis& newer);

std::string render_contrast(const TemporalContrast& c, int year_old,
                            int year_new);

}  // namespace orp::core
