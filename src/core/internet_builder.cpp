#include "core/internet_builder.h"

#include <map>
#include <stdexcept>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "net/reserved.h"
#include "util/rng.h"

namespace orp::core {
namespace {

const dns::DnsName& measurement_sld() {
  static const dns::DnsName sld =
      dns::DnsName::must_parse("ucfsealresearch.net");
  return sld;
}

// Infrastructure addresses (mirroring the paper's setup: the authoritative
// server on a public cloud, the prober in the university network).
constexpr net::IPv4Addr kAuthAddr(45, 76, 18, 21);     // "Vultr" instance
constexpr net::IPv4Addr kProberAddr(132, 170, 3, 44);  // campus prober

}  // namespace

net::IPv4Addr measurement_auth_address() noexcept { return kAuthAddr; }
net::IPv4Addr measurement_prober_address() noexcept { return kProberAddr; }

InternetPlan plan_internet(const PopulationSpec& spec,
                           const InternetConfig& config) {
  // The one builder RNG, consumed in the exact order the pre-shard
  // constructor consumed it — this is what keeps shard (0, 1) bit-identical
  // to the legacy construction.
  util::Rng rng(util::mix64(config.seed ^ 0x17e12e7b01dULL));

  InternetPlan plan;
  plan.scan_params = prober::derive_params(config.scan_seed);
  const prober::CyclicPermutation perm(plan.scan_params.generator,
                                       plan.scan_params.start);

  // Endpoints the live builder would have found bound while drawing:
  // the hierarchy (roots + TLD) and the authoritative server.
  std::unordered_set<std::uint32_t> infra;
  for (const net::IPv4Addr a : resolver::hierarchy_addresses(config.root_count))
    infra.insert(a.value());
  infra.insert(kAuthAddr.value());

  std::unordered_set<std::uint64_t> used_indices;
  std::unordered_set<std::uint32_t> used_addrs;
  struct Drawn {
    std::uint64_t index;
    net::IPv4Addr addr;
  };
  std::vector<Drawn> drawn;
  drawn.reserve(spec.hosts.size());

  if (spec.raw_steps < spec.hosts.size() * 4)
    throw std::invalid_argument(
        "scan slice too small to host the population");
  const std::uint64_t slice = spec.raw_steps;
  for (std::size_t h = 0; h < spec.hosts.size(); ++h) {
    while (true) {
      const std::uint64_t i = rng.bounded(slice);
      if (!used_indices.insert(i).second) continue;
      const std::uint64_t raw = perm.raw_at(i);
      if (raw >= (std::uint64_t{1} << 32)) continue;
      const net::IPv4Addr addr(static_cast<std::uint32_t>(raw));
      if (net::is_reserved(addr)) continue;
      if (addr == kProberAddr || addr == kAuthAddr) continue;
      if (infra.contains(addr.value())) continue;
      if (!used_addrs.insert(addr.value()).second) continue;
      drawn.push_back(Drawn{i, addr});
      break;
    }
  }

  // Upstream pool for forwarders (honest recursive, non-forwarding hosts).
  std::vector<net::IPv4Addr> upstreams;
  for (std::size_t h = 0; h < spec.hosts.size(); ++h)
    if (spec.hosts[h].upstream_candidate) upstreams.push_back(drawn[h].addr);

  plan.hosts.reserve(spec.hosts.size());
  for (std::size_t h = 0; h < spec.hosts.size(); ++h) {
    const HostSpec& hs = spec.hosts[h];
    PlannedHost ph;
    ph.spec_index = h;
    ph.perm_index = drawn[h].index;
    ph.addr = drawn[h].addr;
    ph.profile = hs.profile;
    if (ph.profile.forwarder) {
      if (upstreams.empty()) {
        ph.profile.forwarder = false;  // degenerate tiny population
      } else {
        ph.profile.upstream = upstreams[rng.bounded(upstreams.size())];
        if (ph.profile.upstream == ph.addr && upstreams.size() > 1)
          ph.profile.upstream = upstreams[(rng.bounded(upstreams.size() - 1))];
      }
    }
    ph.engine_seed = rng.fork(h)();
    if (!hs.country.empty())
      ph.geo_asn = 64500 + static_cast<std::uint32_t>(rng.bounded(1000));
    plan.hosts.push_back(std::move(ph));
  }
  return plan;
}

IntelBundle build_intel(const PopulationSpec& spec, const InternetPlan& plan,
                        net::IPv4Addr auth_addr) {
  IntelBundle intel;
  // Geo registration: malicious resolvers carry their calibrated country.
  for (const PlannedHost& ph : plan.hosts) {
    const HostSpec& hs = spec.hosts[ph.spec_index];
    if (!hs.country.empty())
      intel.geo.add_range(ph.addr, ph.addr, hs.country, ph.geo_asn,
                          "AS-" + hs.country);
  }
  for (const ThreatEntry& e : spec.threat_entries)
    intel.threats.add_report(e.addr, e.category, e.source, e.reports);
  // Fig. 4 flavor: the ransomware-tracker address carries multi-category
  // community reports, exactly what the paper screenshots from Cymon.
  if (const auto fig4 = net::IPv4Addr::parse("208.91.197.91");
      fig4 && intel.threats.is_reported(*fig4)) {
    intel.threats.add_report(*fig4, intel::ThreatCategory::kPhishing,
                             "community", 3);
    intel.threats.add_report(*fig4, intel::ThreatCategory::kBotnet,
                             "community", 2);
  }
  for (const OrgEntry& e : spec.org_entries)
    intel.orgs.add_range(e.addr, e.addr, e.org);
  intel.orgs.add_range(auth_addr, auth_addr, "Vultr Holdings");
  intel.orgs.build();
  intel.geo.build();
  return intel;
}

SimulatedInternet::SimulatedInternet(const PopulationSpec& spec,
                                     const InternetConfig& config)
    : SimulatedInternet(spec, config, plan_internet(spec, config),
                        /*shard_id=*/0, /*shard_count=*/1) {}

SimulatedInternet::SimulatedInternet(const PopulationSpec& spec,
                                     const InternetConfig& config,
                                     const InternetPlan& plan,
                                     std::uint32_t shard_id,
                                     std::uint32_t shard_count)
    : shard_id_(shard_id), shard_count_(shard_count) {
  if (shard_count == 0 || shard_id >= shard_count)
    throw std::invalid_argument("bad shard id/count");

  network_ = std::make_unique<net::Network>(
      loop_, shard_seed(config.seed, shard_id));
  network_->set_latency(config.latency);
  network_->set_loss_rate(config.loss_rate);
  loop_.set_batch_cap(config.loop_batch_cap);
  network_->set_delivery_group_cap(config.delivery_group_cap);

  auth_addr_ = kAuthAddr;
  prober_addr_ = kProberAddr;

  scheme_ = std::make_unique<zone::SubdomainScheme>(
      measurement_sld(), spec.cluster_size, util::mix64(config.seed));

  const dns::DnsName auth_ns_name = measurement_sld().child("ns1");
  hierarchy_ = resolver::build_hierarchy(*network_, measurement_sld(),
                                         auth_ns_name, auth_addr_,
                                         config.root_count);
  auth_ = std::make_unique<authns::AuthServer>(
      *network_, auth_addr_, *scheme_,
      net::SimTime::seconds(spec.zone_load_seconds), &codec_scratch_,
      config.wire_templates);

  // Engine configuration for honest resolvers: real root hints.
  resolver::EngineConfig engine_config;
  engine_config.hints = hierarchy_.hints;

  // Response templates are a pure function of the profile's shaping fields
  // (everything that reaches the response bytes), so hosts sharing a shape
  // share one derived set. Profiles the fast path can't serve get null.
  using ShapeKey = std::tuple<int, bool, bool, int, bool, std::uint32_t,
                              std::string>;
  std::map<ShapeKey, const resolver::ResponseTemplates*> tpl_cache;
  const auto templates_for = [&](const resolver::BehaviorProfile& p)
      -> const resolver::ResponseTemplates* {
    if (!config.wire_templates || !p.respond || p.forwarder ||
        p.answer == resolver::AnswerMode::kRecursive)
      return nullptr;
    const ShapeKey key{static_cast<int>(p.answer), p.ra, p.aa,
                       static_cast<int>(p.rcode), p.omit_question,
                       p.fixed_answer.value(), p.text_answer};
    auto it = tpl_cache.find(key);
    if (it == tpl_cache.end()) {
      response_templates_.push_back(
          std::make_unique<resolver::ResponseTemplates>(
              resolver::build_response_templates(
                  p,
                  [this](std::uint32_t c, std::uint32_t i) {
                    return scheme_->qname({c, i});
                  },
                  codec_scratch_)));
      it = tpl_cache.emplace(key, response_templates_.back().get()).first;
    }
    return it->second;
  };

  // Stream-transport shaping: applied identically in both plant loops below
  // (owned hosts and upstream replicas), so a host's shaped profile — and
  // therefore its observable behavior — is independent of the shard layout.
  // Forwarders keep their planned knobs: CPE proxies rarely listen on TCP,
  // so their truncated answers stay terminal (no DoTCP escape hatch).
  const auto shaped = [&config](resolver::BehaviorProfile p) {
    if (p.respond && !p.forwarder) {
      if (config.udp_limit != 0) p.udp_limit = config.udp_limit;
      if (config.tcp) p.tcp = true;
    }
    return p;
  };

  // ---- Plant this shard's slice of the planned population -----------------
  const ShardSlice slice = shard_slice(spec.raw_steps, shard_id, shard_count);
  std::unordered_set<std::uint32_t> planted;
  hosts_.reserve(shard_count == 1 ? plan.hosts.size()
                                  : plan.hosts.size() / shard_count + 8);
  for (const PlannedHost& ph : plan.hosts) {
    if (shard_count > 1 && !slice.contains(ph.perm_index)) continue;
    const resolver::BehaviorProfile profile = shaped(ph.profile);
    hosts_.push_back(std::make_unique<resolver::ResolverHost>(
        *network_, ph.addr, profile, engine_config, ph.engine_seed,
        &codec_scratch_, templates_for(profile)));
    planted.insert(ph.addr.value());
  }

  // Replicate forwarder upstreams planted in other shards: a forwarder's
  // observable behavior must not depend on where its upstream's permutation
  // index landed. Upstreams are honest recursives whose responses are a
  // pure function of (profile, seed), so a replica answers exactly as the
  // home-shard original would. Replicas are never probed here.
  if (shard_count > 1) {
    std::unordered_set<std::uint32_t> needed;
    for (const auto& host : hosts_) {
      const resolver::BehaviorProfile& p = host->profile();
      if (p.forwarder && !planted.contains(p.upstream.value()))
        needed.insert(p.upstream.value());
    }
    for (const PlannedHost& ph : plan.hosts) {
      if (!needed.contains(ph.addr.value())) continue;
      const resolver::BehaviorProfile profile = shaped(ph.profile);
      hosts_.push_back(std::make_unique<resolver::ResolverHost>(
          *network_, ph.addr, profile, engine_config, ph.engine_seed,
          &codec_scratch_, templates_for(profile)));
      needed.erase(ph.addr.value());
    }
  }

  // ---- Intel databases ----------------------------------------------------
  intel_ = build_intel(spec, plan, auth_addr_);
}

}  // namespace orp::core
