#include "core/internet_builder.h"

#include <unordered_set>

#include "net/reserved.h"
#include "util/rng.h"

namespace orp::core {
namespace {

const dns::DnsName& measurement_sld() {
  static const dns::DnsName sld =
      dns::DnsName::must_parse("ucfsealresearch.net");
  return sld;
}

}  // namespace

SimulatedInternet::SimulatedInternet(const PopulationSpec& spec,
                                     const InternetConfig& config) {
  util::Rng rng(util::mix64(config.seed ^ 0x17e12e7b01dULL));
  network_ = std::make_unique<net::Network>(loop_, config.seed);
  network_->set_latency(config.latency);
  network_->set_loss_rate(config.loss_rate);

  // Infrastructure addresses (mirroring the paper's setup: the authoritative
  // server on a public cloud, the prober in the university network).
  auth_addr_ = net::IPv4Addr(45, 76, 18, 21);     // "Vultr" cloud instance
  prober_addr_ = net::IPv4Addr(132, 170, 3, 44);  // campus prober

  scheme_ = std::make_unique<zone::SubdomainScheme>(
      measurement_sld(), spec.cluster_size, util::mix64(config.seed));

  const dns::DnsName auth_ns_name = measurement_sld().child("ns1");
  hierarchy_ = resolver::build_hierarchy(*network_, measurement_sld(),
                                         auth_ns_name, auth_addr_,
                                         config.root_count);
  auth_ = std::make_unique<authns::AuthServer>(
      *network_, auth_addr_, *scheme_,
      net::SimTime::seconds(spec.zone_load_seconds));

  // Engine configuration for honest resolvers: real root hints.
  resolver::EngineConfig engine_config;
  engine_config.hints = hierarchy_.hints;

  // ---- Plant the population inside the scanned permutation slice ----------
  const prober::PermutationParams params =
      prober::derive_params(config.scan_seed);
  const prober::CyclicPermutation perm(params.generator, params.start);

  std::unordered_set<std::uint64_t> used_indices;
  std::unordered_set<std::uint32_t> used_addrs;
  std::vector<net::IPv4Addr> addresses;
  addresses.reserve(spec.hosts.size());

  if (spec.raw_steps < spec.hosts.size() * 4)
    throw std::invalid_argument(
        "scan slice too small to host the population");
  const std::uint64_t slice = spec.raw_steps;
  for (std::size_t h = 0; h < spec.hosts.size(); ++h) {
    net::IPv4Addr addr;
    while (true) {
      const std::uint64_t i = rng.bounded(slice);
      if (!used_indices.insert(i).second) continue;
      const std::uint64_t raw = perm.raw_at(i);
      if (raw >= (std::uint64_t{1} << 32)) continue;
      addr = net::IPv4Addr(static_cast<std::uint32_t>(raw));
      if (net::is_reserved(addr)) continue;
      if (addr == prober_addr_ || addr == auth_addr_) continue;
      if (network_->bound(net::Endpoint{addr, net::kDnsPort})) continue;
      if (!used_addrs.insert(addr.value()).second) continue;
      break;
    }
    addresses.push_back(addr);
  }

  // Upstream pool for forwarders (honest recursive, non-forwarding hosts).
  std::vector<net::IPv4Addr> upstreams;
  for (std::size_t h = 0; h < spec.hosts.size(); ++h)
    if (spec.hosts[h].upstream_candidate) upstreams.push_back(addresses[h]);

  hosts_.reserve(spec.hosts.size());
  for (std::size_t h = 0; h < spec.hosts.size(); ++h) {
    const HostSpec& hs = spec.hosts[h];
    resolver::BehaviorProfile profile = hs.profile;
    if (profile.forwarder) {
      if (upstreams.empty()) {
        profile.forwarder = false;  // degenerate tiny population
      } else {
        profile.upstream = upstreams[rng.bounded(upstreams.size())];
        if (profile.upstream == addresses[h] && upstreams.size() > 1)
          profile.upstream = upstreams[(rng.bounded(upstreams.size() - 1))];
      }
    }
    hosts_.push_back(std::make_unique<resolver::ResolverHost>(
        *network_, addresses[h], std::move(profile), engine_config,
        rng.fork(h)()));

    // Geo registration: malicious resolvers carry their calibrated country.
    if (!hs.country.empty())
      geo_.add_range(addresses[h], addresses[h], hs.country,
                     64500 + static_cast<std::uint32_t>(rng.bounded(1000)),
                     "AS-" + hs.country);
  }

  // ---- Intel databases ------------------------------------------------------
  for (const ThreatEntry& e : spec.threat_entries)
    threats_.add_report(e.addr, e.category, e.source, e.reports);
  // Fig. 4 flavor: the ransomware-tracker address carries multi-category
  // community reports, exactly what the paper screenshots from Cymon.
  if (const auto fig4 = net::IPv4Addr::parse("208.91.197.91");
      fig4 && threats_.is_reported(*fig4)) {
    threats_.add_report(*fig4, intel::ThreatCategory::kPhishing,
                        "community", 3);
    threats_.add_report(*fig4, intel::ThreatCategory::kBotnet, "community", 2);
  }
  for (const OrgEntry& e : spec.org_entries) orgs_.add_range(e.addr, e.addr, e.org);
  orgs_.add_range(auth_addr_, auth_addr_, "Vultr Holdings");
  orgs_.build();
  geo_.build();
}

}  // namespace orp::core
