// Assembly of the simulated Internet: event loop, network, DNS hierarchy
// (roots, .net TLD), the measurement's authoritative server, the intel
// databases, and the calibrated resolver population — planted at addresses
// drawn from the *scanned slice* of the ZMap permutation so that a 1/scale
// scan meets exactly the population built for it.
#pragma once

#include <memory>
#include <vector>

#include "authns/auth_server.h"
#include "core/population.h"
#include "intel/geo_db.h"
#include "intel/org_db.h"
#include "intel/threat_db.h"
#include "net/event_loop.h"
#include "net/transport.h"
#include "prober/permutation.h"
#include "resolver/root_tld.h"
#include "resolver/scripted_resolver.h"
#include "zone/cluster.h"

namespace orp::core {

struct InternetConfig {
  std::uint64_t seed = 42;
  /// The scan seed: planting must use the same permutation the scanner will
  /// walk, and only indices below `raw_steps` are reachable by the scan.
  std::uint64_t scan_seed = 2018;
  net::LatencyModel latency;
  double loss_rate = 0.0;
  int root_count = 3;
};

class SimulatedInternet {
 public:
  SimulatedInternet(const PopulationSpec& spec, const InternetConfig& config);

  SimulatedInternet(const SimulatedInternet&) = delete;
  SimulatedInternet& operator=(const SimulatedInternet&) = delete;

  net::EventLoop& loop() noexcept { return loop_; }
  net::Network& network() noexcept { return *network_; }
  authns::AuthServer& auth() noexcept { return *auth_; }
  const zone::SubdomainScheme& scheme() const noexcept { return *scheme_; }

  const intel::ThreatDb& threats() const noexcept { return threats_; }
  const intel::GeoDb& geo() const noexcept { return geo_; }
  const intel::OrgDb& orgs() const noexcept { return orgs_; }

  net::IPv4Addr prober_address() const noexcept { return prober_addr_; }
  net::IPv4Addr auth_address() const noexcept { return auth_addr_; }

  std::size_t host_count() const noexcept { return hosts_.size(); }
  const std::vector<std::unique_ptr<resolver::ResolverHost>>& hosts()
      const noexcept {
    return hosts_;
  }

 private:
  net::EventLoop loop_;
  std::unique_ptr<net::Network> network_;
  resolver::SimHierarchy hierarchy_;
  std::unique_ptr<zone::SubdomainScheme> scheme_;
  std::unique_ptr<authns::AuthServer> auth_;
  std::vector<std::unique_ptr<resolver::ResolverHost>> hosts_;
  intel::ThreatDb threats_;
  intel::GeoDb geo_;
  intel::OrgDb orgs_;
  net::IPv4Addr prober_addr_;
  net::IPv4Addr auth_addr_;
};

}  // namespace orp::core
