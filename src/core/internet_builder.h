// Assembly of the simulated Internet: event loop, network, DNS hierarchy
// (roots, .net TLD), the measurement's authoritative server, the intel
// databases, and the calibrated resolver population — planted at addresses
// drawn from the *scanned slice* of the ZMap permutation so that a 1/scale
// scan meets exactly the population built for it.
//
// Construction is split in two so a campaign can run sharded:
//
//   plan_internet()      — every random choice (addresses, forwarder
//                          upstreams, per-host seeds) made once, globally,
//                          consuming the builder RNG in the legacy order;
//   SimulatedInternet    — a *shard instance*: its own EventLoop/Network/
//                          hierarchy/auth, populated with the planned hosts
//                          whose permutation index falls in its slice.
//
// Because the plan is global, a host's address, profile, and seed are
// independent of the shard count — shard (0, 1) reproduces the legacy
// single-loop construction bit for bit.
#pragma once

#include <memory>
#include <vector>

#include "authns/auth_server.h"
#include "core/population.h"
#include "intel/geo_db.h"
#include "intel/org_db.h"
#include "intel/threat_db.h"
#include "net/event_loop.h"
#include "net/transport.h"
#include "prober/permutation.h"
#include "resolver/root_tld.h"
#include "resolver/scripted_resolver.h"
#include "util/rng.h"
#include "zone/cluster.h"

namespace orp::core {

struct InternetConfig {
  std::uint64_t seed = 42;
  /// The scan seed: planting must use the same permutation the scanner will
  /// walk, and only indices below `raw_steps` are reachable by the scan.
  std::uint64_t scan_seed = 2018;
  net::LatencyModel latency;
  double loss_rate = 0.0;
  int root_count = 3;
  /// Batch-dispatch knobs, forwarded to EventLoop::set_batch_cap and
  /// Network::set_delivery_group_cap (0 = unbounded). Any value yields a
  /// bit-identical simulation — the determinism suite sweeps them.
  std::size_t loop_batch_cap = 0;
  std::size_t delivery_group_cap = 0;
  /// Pre-encoded wire templates for the auth server and the fabricating
  /// resolver hosts (stamp instead of decode/build/encode per probe).
  /// Either setting yields a bit-identical simulation — templates are
  /// differentially verified against the full encoder at derive time — and
  /// the determinism suite sweeps this knob too.
  bool wire_templates = true;
  /// Stream-transport shaping, applied uniformly to every responding
  /// non-forwarder profile at plant time (forwarders keep their own knobs:
  /// CPE proxies rarely listen on TCP, so their truncated answers stay
  /// terminal). `udp_limit` caps UDP answers (TC=1 beyond it); `tcp` makes
  /// shaped hosts listen on a stream socket. Both defaults reproduce the
  /// pinned UDP-only campaign exactly.
  std::uint16_t udp_limit = 0;
  bool tcp = false;
};

/// One planted host, fully resolved: every random draw already made.
struct PlannedHost {
  std::size_t spec_index = 0;    // into PopulationSpec::hosts
  std::uint64_t perm_index = 0;  // global permutation index of its address
  net::IPv4Addr addr;
  resolver::BehaviorProfile profile;  // forwarder upstream already chosen
  std::uint64_t engine_seed = 0;
  std::uint32_t geo_asn = 0;  // 0 = no geo registration (no country)
};

/// The global planting plan shared by every shard of one campaign.
struct InternetPlan {
  prober::PermutationParams scan_params;
  std::vector<PlannedHost> hosts;
};

/// Make every random planting decision for the campaign. Consumes the
/// builder RNG in exactly the order the pre-shard constructor did, so the
/// plan (and therefore a single-shard run) matches legacy output.
InternetPlan plan_internet(const PopulationSpec& spec,
                           const InternetConfig& config);

/// The half-open global-permutation index range owned by one shard:
/// [shard*total/count, (shard+1)*total/count).
struct ShardSlice {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  std::uint64_t size() const noexcept { return end - begin; }
  bool contains(std::uint64_t i) const noexcept {
    return i >= begin && i < end;
  }
};
constexpr ShardSlice shard_slice(std::uint64_t total, std::uint32_t shard,
                                 std::uint32_t count) noexcept {
  return ShardSlice{total * shard / count, total * (shard + 1) / count};
}

/// Per-shard network RNG substream, splitmix-derived from seed x shard_id.
/// Shard 0 keeps the raw seed so a 1-shard run replays the legacy stream.
constexpr std::uint64_t shard_seed(std::uint64_t seed,
                                   std::uint32_t shard_id) noexcept {
  if (shard_id == 0) return seed;
  std::uint64_t s = seed * shard_id;
  return util::splitmix64_next(s);
}

/// The campaign-global intel databases (threat reports, geolocation,
/// organization ranges), derived from spec + plan with no RNG.
struct IntelBundle {
  intel::ThreatDb threats;
  intel::GeoDb geo;
  intel::OrgDb orgs;
};
IntelBundle build_intel(const PopulationSpec& spec, const InternetPlan& plan,
                        net::IPv4Addr auth_addr);

/// The fixed infrastructure addresses of the measurement (paper §III-A):
/// every shard instance plants them identically.
net::IPv4Addr measurement_auth_address() noexcept;
net::IPv4Addr measurement_prober_address() noexcept;

class SimulatedInternet {
 public:
  /// Legacy single-shard construction: plan + instantiate shard (0, 1).
  SimulatedInternet(const PopulationSpec& spec, const InternetConfig& config);

  /// One shard of a sharded campaign: owns the planned hosts whose
  /// permutation index falls in shard_slice(spec.raw_steps, shard_id,
  /// shard_count), plus *replicas* of any forwarder upstreams planted in
  /// other shards (an upstream's behavior is a pure function of its profile
  /// and seed, so replicating it preserves every forwarder's observable
  /// behavior; replicas are never probed here — their permutation index
  /// belongs to their home shard).
  SimulatedInternet(const PopulationSpec& spec, const InternetConfig& config,
                    const InternetPlan& plan, std::uint32_t shard_id,
                    std::uint32_t shard_count);

  SimulatedInternet(const SimulatedInternet&) = delete;
  SimulatedInternet& operator=(const SimulatedInternet&) = delete;

  net::EventLoop& loop() noexcept { return loop_; }
  net::Network& network() noexcept { return *network_; }
  authns::AuthServer& auth() noexcept { return *auth_; }
  const zone::SubdomainScheme& scheme() const noexcept { return *scheme_; }

  const intel::ThreatDb& threats() const noexcept { return intel_.threats; }
  const intel::GeoDb& geo() const noexcept { return intel_.geo; }
  const intel::OrgDb& orgs() const noexcept { return intel_.orgs; }

  net::IPv4Addr prober_address() const noexcept { return prober_addr_; }
  net::IPv4Addr auth_address() const noexcept { return auth_addr_; }

  std::uint32_t shard_id() const noexcept { return shard_id_; }
  std::uint32_t shard_count() const noexcept { return shard_count_; }

  /// The shard's shared codec scratch. Everything in this instance runs on
  /// one event loop (one thread), so the auth server, every resolver host,
  /// and the shard's scanner can encode through a single reusable buffer.
  dns::EncodeBuffer& codec_scratch() noexcept { return codec_scratch_; }

  /// Planted hosts this shard owns + upstream replicas (replicas last).
  std::size_t host_count() const noexcept { return hosts_.size(); }
  const std::vector<std::unique_ptr<resolver::ResolverHost>>& hosts()
      const noexcept {
    return hosts_;
  }

  /// Distinct response-template sets derived for this shard's population
  /// (one per fabricating-profile shaping key, shared across its hosts).
  std::size_t response_template_count() const noexcept {
    return response_templates_.size();
  }

 private:
  net::EventLoop loop_;
  std::unique_ptr<net::Network> network_;
  resolver::SimHierarchy hierarchy_;
  std::unique_ptr<zone::SubdomainScheme> scheme_;
  dns::EncodeBuffer codec_scratch_;  // before auth_/hosts_: they hold a ref
  std::unique_ptr<authns::AuthServer> auth_;
  // Shared per-profile-shape template sets; before hosts_ (hosts hold
  // non-owning pointers into these).
  std::vector<std::unique_ptr<resolver::ResponseTemplates>> response_templates_;
  std::vector<std::unique_ptr<resolver::ResolverHost>> hosts_;
  IntelBundle intel_;
  net::IPv4Addr prober_addr_;
  net::IPv4Addr auth_addr_;
  std::uint32_t shard_id_ = 0;
  std::uint32_t shard_count_ = 1;
};

}  // namespace orp::core
