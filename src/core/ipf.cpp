#include "core/ipf.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace orp::core {
namespace {

constexpr int kRa = 2;
constexpr int kAa = 2;
constexpr int kRc = dns::kRcodeCount;
constexpr int kCls = kAnsClassCount;
constexpr int kCells = kRa * kAa * kRc * kCls;

constexpr int idx(int ra, int aa, int rc, int cls) {
  return ((ra * kAa + aa) * kRc + rc) * kCls + cls;
}

bool is_answer_class(int cls) { return cls != static_cast<int>(AnsClass::kNone); }

struct Margins {
  // ra_target[bit][cls], aa_target[bit][cls]
  double ra[kRa][kCls] = {};
  double aa[kAa][kCls] = {};
  // rcode_target[rc][0=without, 1=with]
  double rcode[kRc][2] = {};
};

Margins build_margins(const CalibrationTargets& t) {
  Margins m;
  auto fill_flag = [](double out[][kCls], const analysis::FlagTable& table,
                      std::uint64_t mal0, std::uint64_t mal1) {
    const analysis::FlagBreakdown* bits[] = {&table.bit0, &table.bit1};
    const std::uint64_t mal[] = {mal0, mal1};
    for (int b = 0; b < 2; ++b) {
      const auto clamped_mal = std::min(mal[b], bits[b]->incorrect);
      out[b][static_cast<int>(AnsClass::kNone)] =
          static_cast<double>(bits[b]->without_answer);
      out[b][static_cast<int>(AnsClass::kCorrect)] =
          static_cast<double>(bits[b]->correct);
      out[b][static_cast<int>(AnsClass::kIncorrectBenign)] =
          static_cast<double>(bits[b]->incorrect - clamped_mal);
      out[b][static_cast<int>(AnsClass::kIncorrectMalicious)] =
          static_cast<double>(clamped_mal);
    }
  };
  fill_flag(m.ra, t.ra, t.mal_ra0, t.mal_ra1);
  fill_flag(m.aa, t.aa, t.mal_aa0, t.mal_aa1);
  for (int rc = 0; rc < kRc; ++rc) {
    m.rcode[rc][0] = static_cast<double>(t.rcodes.rows[rc].without_answer);
    m.rcode[rc][1] = static_cast<double>(t.rcodes.rows[rc].with_answer);
  }
  return m;
}

}  // namespace

IpfResult calibrate_joint(const CalibrationTargets& targets, double tolerance,
                          int max_iterations) {
  const Margins m = build_margins(targets);

  std::vector<double> cells(kCells, 1.0);
  // Structural zeros: every malicious response in the study carried rcode 0.
  for (int ra = 0; ra < kRa; ++ra)
    for (int aa = 0; aa < kAa; ++aa)
      for (int rc = 1; rc < kRc; ++rc)
        cells[idx(ra, aa, rc, static_cast<int>(AnsClass::kIncorrectMalicious))] =
            0.0;

  auto scale_part = [&cells](const std::vector<int>& part, double target) {
    double sum = 0;
    for (const int i : part) sum += cells[i];
    if (sum <= 0) return;
    const double f = target / sum;
    for (const int i : part) cells[i] *= f;
  };

  // Pre-build the cell index lists for every margin part.
  std::vector<std::vector<int>> ra_parts(kRa * kCls), aa_parts(kAa * kCls),
      rc_parts(kRc * 2);
  for (int ra = 0; ra < kRa; ++ra)
    for (int aa = 0; aa < kAa; ++aa)
      for (int rc = 0; rc < kRc; ++rc)
        for (int cls = 0; cls < kCls; ++cls) {
          const int i = idx(ra, aa, rc, cls);
          ra_parts[ra * kCls + cls].push_back(i);
          aa_parts[aa * kCls + cls].push_back(i);
          rc_parts[rc * 2 + (is_answer_class(cls) ? 1 : 0)].push_back(i);
        }

  auto margin_error = [&]() {
    double worst = 0;
    auto check = [&](const std::vector<int>& part, double target) {
      double sum = 0;
      for (const int i : part) sum += cells[i];
      const double denom = std::max(1.0, target);
      worst = std::max(worst, std::abs(sum - target) / denom);
    };
    for (int b = 0; b < kRa; ++b)
      for (int cls = 0; cls < kCls; ++cls)
        check(ra_parts[b * kCls + cls], m.ra[b][cls]);
    for (int b = 0; b < kAa; ++b)
      for (int cls = 0; cls < kCls; ++cls)
        check(aa_parts[b * kCls + cls], m.aa[b][cls]);
    for (int rc = 0; rc < kRc; ++rc)
      for (int w = 0; w < 2; ++w) check(rc_parts[rc * 2 + w], m.rcode[rc][w]);
    return worst;
  };

  IpfResult result;
  for (int iter = 0; iter < max_iterations; ++iter) {
    for (int b = 0; b < kRa; ++b)
      for (int cls = 0; cls < kCls; ++cls)
        scale_part(ra_parts[b * kCls + cls], m.ra[b][cls]);
    for (int b = 0; b < kAa; ++b)
      for (int cls = 0; cls < kCls; ++cls)
        scale_part(aa_parts[b * kCls + cls], m.aa[b][cls]);
    for (int rc = 0; rc < kRc; ++rc)
      for (int w = 0; w < 2; ++w)
        scale_part(rc_parts[rc * 2 + w], m.rcode[rc][w]);
    result.iterations = iter + 1;
    result.max_margin_error = margin_error();
    if (result.max_margin_error < tolerance) break;
  }

  // Integerize by largest remainder over the surviving cells.
  struct Frac {
    int cell;
    double frac;
  };
  std::vector<Frac> fracs;
  std::vector<std::uint64_t> integer(kCells, 0);
  double fitted_total = 0;
  for (int i = 0; i < kCells; ++i) fitted_total += cells[i];
  const auto target_total =
      static_cast<std::uint64_t>(std::llround(fitted_total));
  std::uint64_t assigned = 0;
  for (int i = 0; i < kCells; ++i) {
    if (cells[i] < 1e-6) continue;
    const double floor_v = std::floor(cells[i]);
    integer[i] = static_cast<std::uint64_t>(floor_v);
    assigned += integer[i];
    fracs.push_back({i, cells[i] - floor_v});
  }
  std::sort(fracs.begin(), fracs.end(), [](const Frac& a, const Frac& b) {
    if (a.frac != b.frac) return a.frac > b.frac;
    return a.cell < b.cell;
  });
  for (std::size_t k = 0; assigned < target_total && !fracs.empty(); ++k) {
    ++integer[fracs[k % fracs.size()].cell];
    ++assigned;
  }

  for (int ra = 0; ra < kRa; ++ra)
    for (int aa = 0; aa < kAa; ++aa)
      for (int rc = 0; rc < kRc; ++rc)
        for (int cls = 0; cls < kCls; ++cls) {
          const std::uint64_t c = integer[idx(ra, aa, rc, cls)];
          if (c == 0) continue;
          result.cells.push_back(JointCell{ra == 1, aa == 1,
                                           static_cast<dns::Rcode>(rc),
                                           static_cast<AnsClass>(cls), c});
          result.total += c;
        }
  return result;
}

analysis::FlagTable IpfResult::ra_margin() const {
  analysis::FlagTable t;
  for (const JointCell& c : cells) {
    analysis::FlagBreakdown& b = c.ra ? t.bit1 : t.bit0;
    switch (c.cls) {
      case AnsClass::kNone: b.without_answer += c.count; break;
      case AnsClass::kCorrect: b.correct += c.count; break;
      default: b.incorrect += c.count; break;
    }
  }
  return t;
}

analysis::FlagTable IpfResult::aa_margin() const {
  analysis::FlagTable t;
  for (const JointCell& c : cells) {
    analysis::FlagBreakdown& b = c.aa ? t.bit1 : t.bit0;
    switch (c.cls) {
      case AnsClass::kNone: b.without_answer += c.count; break;
      case AnsClass::kCorrect: b.correct += c.count; break;
      default: b.incorrect += c.count; break;
    }
  }
  return t;
}

analysis::RcodeTable IpfResult::rcode_margin() const {
  analysis::RcodeTable t;
  for (const JointCell& c : cells) {
    analysis::RcodeRow& row = t.rows[static_cast<std::size_t>(c.rcode)];
    if (c.cls == AnsClass::kNone)
      row.without_answer += c.count;
    else
      row.with_answer += c.count;
  }
  return t;
}

}  // namespace orp::core
