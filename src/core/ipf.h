// Iterative proportional fitting of the behavioral joint distribution.
//
// The paper publishes three 2-way views of the same R2 population — RA x
// answer-class (Table IV), AA x answer-class (Table V), rcode x answer-
// presence (Table VI) — plus the malicious sub-population's RA/AA margins
// (Table X). To synthesize resolvers whose *joint* behavior reproduces all
// of those margins at once, we fit a maximum-entropy contingency table over
//   (RA in {0,1}) x (AA in {0,1}) x (rcode in 0..15) x (answer class)
// with answer class in {none, correct, incorrect-benign, incorrect-
// malicious}, using classic IPF (Deming & Stephan, 1940): repeatedly rescale
// the cells so each margin matches its target, until convergence. Malicious
// cells are structurally zero outside rcode 0 (the paper: all 26,926
// malicious responses had NoError).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/answer_analysis.h"
#include "analysis/header_analysis.h"

namespace orp::core {

enum class AnsClass : std::uint8_t {
  kNone = 0,
  kCorrect,
  kIncorrectBenign,
  kIncorrectMalicious,
};
constexpr int kAnsClassCount = 4;

struct CalibrationTargets {
  analysis::AnswerBreakdown answers;  // authoritative totals (Table III)
  analysis::FlagTable ra;             // reconciled Table IV
  analysis::FlagTable aa;             // reconciled Table V
  analysis::RcodeTable rcodes;        // reconciled Table VI
  std::uint64_t mal_ra0 = 0;          // Table X
  std::uint64_t mal_ra1 = 0;
  std::uint64_t mal_aa0 = 0;
  std::uint64_t mal_aa1 = 0;
};

struct JointCell {
  bool ra = false;
  bool aa = false;
  dns::Rcode rcode = dns::Rcode::kNoError;
  AnsClass cls = AnsClass::kNone;
  std::uint64_t count = 0;
};

struct IpfResult {
  std::vector<JointCell> cells;  // nonzero cells only, integerized
  int iterations = 0;
  double max_margin_error = 0;   // worst relative margin deviation at stop
  std::uint64_t total = 0;       // sum of integerized cells

  /// Recompute a margin from the fitted cells (for tests/benches).
  analysis::FlagTable ra_margin() const;
  analysis::FlagTable aa_margin() const;
  analysis::RcodeTable rcode_margin() const;
};

/// Fit the joint. `tolerance` is the maximum acceptable relative deviation
/// of any fitted margin cell from its target.
IpfResult calibrate_joint(const CalibrationTargets& targets,
                          double tolerance = 1e-10, int max_iterations = 2000);

}  // namespace orp::core
