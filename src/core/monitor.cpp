#include "core/monitor.h"

#include <cmath>
#include <map>

#include "util/strings.h"
#include "util/table.h"

namespace orp::core {
namespace {

std::uint64_t lerp_u64(std::uint64_t a, std::uint64_t b, double t) {
  const double v = static_cast<double>(a) +
                   (static_cast<double>(b) - static_cast<double>(a)) * t;
  return v <= 0 ? 0 : static_cast<std::uint64_t>(std::llround(v));
}

analysis::FlagBreakdown lerp_flag(const analysis::FlagBreakdown& a,
                                  const analysis::FlagBreakdown& b, double t) {
  analysis::FlagBreakdown out;
  out.without_answer = lerp_u64(a.without_answer, b.without_answer, t);
  out.correct = lerp_u64(a.correct, b.correct, t);
  out.incorrect = lerp_u64(a.incorrect, b.incorrect, t);
  return out;
}

analysis::FormStats lerp_form(const analysis::FormStats& a,
                              const analysis::FormStats& b, double t) {
  analysis::FormStats out;
  out.r2 = lerp_u64(a.r2, b.r2, t);
  out.unique = lerp_u64(a.unique, b.unique, t);
  out.example = t < 0.5 ? a.example : b.example;
  return out;
}

/// The observatory's monthly labels: 2013-10 .. 2018-04 is 54 months.
std::string month_label(double t) {
  const int months_total = 54;
  const int offset = static_cast<int>(std::llround(t * months_total));
  const int absolute = (2013 * 12 + 9) + offset;  // 2013-10 is month index 9
  const int year = absolute / 12;
  const int month = absolute % 12 + 1;
  return std::to_string(year) + "-" + util::zero_pad(month, 2);
}

}  // namespace

PaperYear interpolate_year(const PaperYear& from, const PaperYear& to,
                           double t) {
  if (t <= 0) return from;
  if (t >= 1) return to;
  PaperYear y;
  y.year = static_cast<int>(std::llround(
      from.year + (to.year - from.year) * t));

  y.q1 = lerp_u64(from.q1, to.q1, t);
  y.q2_r1 = lerp_u64(from.q2_r1, to.q2_r1, t);
  y.r2 = lerp_u64(from.r2, to.r2, t);
  y.duration_seconds =
      from.duration_seconds + (to.duration_seconds - from.duration_seconds) * t;
  y.probe_rate_pps =
      from.probe_rate_pps + (to.probe_rate_pps - from.probe_rate_pps) * t;

  y.answers.r2 = lerp_u64(from.answers.r2, to.answers.r2, t);
  y.answers.without_answer =
      lerp_u64(from.answers.without_answer, to.answers.without_answer, t);
  y.answers.correct = lerp_u64(from.answers.correct, to.answers.correct, t);
  y.answers.incorrect =
      lerp_u64(from.answers.incorrect, to.answers.incorrect, t);
  // Keep the identity r2 = W/O + W exact after rounding.
  y.answers.r2 =
      y.answers.without_answer + y.answers.correct + y.answers.incorrect;
  y.empty_question = lerp_u64(from.empty_question, to.empty_question, t);
  y.r2 = y.answers.r2 + y.empty_question;

  y.ra.bit0 = lerp_flag(from.ra.bit0, to.ra.bit0, t);
  y.ra.bit1 = lerp_flag(from.ra.bit1, to.ra.bit1, t);
  y.aa.bit0 = lerp_flag(from.aa.bit0, to.aa.bit0, t);
  y.aa.bit1 = lerp_flag(from.aa.bit1, to.aa.bit1, t);
  for (std::size_t i = 0; i < y.rcodes.rows.size(); ++i) {
    y.rcodes.rows[i].with_answer = lerp_u64(from.rcodes.rows[i].with_answer,
                                            to.rcodes.rows[i].with_answer, t);
    y.rcodes.rows[i].without_answer =
        lerp_u64(from.rcodes.rows[i].without_answer,
                 to.rcodes.rows[i].without_answer, t);
  }

  y.incorrect.ip = lerp_form(from.incorrect.ip, to.incorrect.ip, t);
  y.incorrect.url = lerp_form(from.incorrect.url, to.incorrect.url, t);
  y.incorrect.str = lerp_form(from.incorrect.str, to.incorrect.str, t);
  y.incorrect.na = lerp_form(from.incorrect.na, to.incorrect.na, t);

  // Top-10 catalogs: blend by address union, then re-rank.
  std::map<std::string, PaperTopEntry> heads;
  for (const auto& e : from.top10) {
    PaperTopEntry blended = e;
    blended.count = lerp_u64(e.count, 0, t);
    heads[e.addr] = blended;
  }
  for (const auto& e : to.top10) {
    const auto it = heads.find(e.addr);
    if (it == heads.end()) {
      PaperTopEntry blended = e;
      blended.count = lerp_u64(0, e.count, t);
      heads[e.addr] = blended;
    } else {
      it->second.count = lerp_u64(
          // both catalogs carry this address: lerp the real endpoints
          [&] {
            for (const auto& f : from.top10)
              if (f.addr == e.addr) return f.count;
            return std::uint64_t{0};
          }(),
          e.count, t);
      it->second.reported = e.reported;
      it->second.category = e.category;
    }
  }
  for (auto& [addr, entry] : heads)
    if (entry.count > 0) y.top10.push_back(entry);
  std::sort(y.top10.begin(), y.top10.end(),
            [](const PaperTopEntry& a, const PaperTopEntry& b) {
              return a.count > b.count;
            });
  if (y.top10.size() > 10) y.top10.resize(10);

  // Category table: both years enumerate all seven categories.
  for (const auto& fc : from.categories) {
    PaperCategoryRow row = fc;
    for (const auto& tc : to.categories) {
      if (tc.category != fc.category) continue;
      row.unique_ips = lerp_u64(fc.unique_ips, tc.unique_ips, t);
      row.r2 = lerp_u64(fc.r2, tc.r2, t);
    }
    y.categories.push_back(row);
  }
  y.malicious_ips = 0;
  y.malicious_r2 = 0;
  for (const auto& c : y.categories) {
    y.malicious_ips += c.unique_ips;
    y.malicious_r2 += c.r2;
  }

  y.table10_published = false;
  y.mal_ra0 = lerp_u64(from.mal_ra0, to.mal_ra0, t);
  y.mal_ra1 = y.malicious_r2 > y.mal_ra0 ? y.malicious_r2 - y.mal_ra0 : 0;
  y.mal_aa0 = lerp_u64(from.mal_aa0, to.mal_aa0, t);
  y.mal_aa1 = y.malicious_r2 > y.mal_aa0 ? y.malicious_r2 - y.mal_aa0 : 0;

  // Countries: key union, lerped, rescaled to the malicious total by the
  // population builder's apportionment.
  std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> countries;
  for (const auto& c : from.countries) countries[c.country].first = c.r2;
  for (const auto& c : to.countries) countries[c.country].second = c.r2;
  for (const auto& [code, counts] : countries) {
    const std::uint64_t v = lerp_u64(counts.first, counts.second, t);
    if (v > 0) y.countries.push_back(PaperCountryRow{code, v});
  }

  // Empty-question sub-structure follows the 2018 shape, scaled.
  y.empty_q = to.empty_q;
  y.empty_q.total = y.empty_question;
  y.empty_q.with_answer = lerp_u64(0, to.empty_q.with_answer, t);
  return y;
}

bool MonitoringSeries::open_resolver_decline() const {
  if (snapshots.size() < 2) return false;
  return snapshots.back().open_resolvers.strict <
         snapshots.front().open_resolvers.strict;
}

bool MonitoringSeries::malicious_growth() const {
  if (snapshots.size() < 2) return false;
  return snapshots.back().malicious_r2 > snapshots.front().malicious_r2;
}

MonitoringSeries run_monitoring(const MonitoringConfig& config) {
  MonitoringSeries series;
  const int n = std::max(2, config.snapshots);
  for (int i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / (n - 1);
    const PaperYear year = interpolate_year(paper_2013(), paper_2018(), t);
    PipelineConfig cfg;
    cfg.scale = config.scale;
    cfg.seed = config.seed + static_cast<std::uint64_t>(i);
    const ScanOutcome outcome = run_measurement(year, cfg);

    MonitoringSnapshot snap;
    snap.t = t;
    snap.label = month_label(t);
    snap.open_resolvers = estimate_open_resolvers(outcome.analysis);
    snap.r2 = outcome.scan.r2_received;
    snap.incorrect = outcome.analysis.answers.incorrect;
    snap.err_percent = outcome.analysis.answers.err_percent();
    snap.malicious_r2 = outcome.analysis.malicious.total_r2;
    snap.malicious_ips = outcome.analysis.malicious.total_ips;
    series.snapshots.push_back(std::move(snap));
  }
  return series;
}

std::string render_monitoring(const MonitoringSeries& series) {
  util::TextTable t({"snapshot", "open resolvers", "R2", "incorrect",
                     "err(%)", "malicious R2", "malicious IPs"});
  for (const auto& s : series.snapshots) {
    t.add_row({s.label, util::with_commas(s.open_resolvers.strict),
               util::with_commas(s.r2), util::with_commas(s.incorrect),
               util::fixed(s.err_percent, 2),
               util::with_commas(s.malicious_r2),
               util::with_commas(s.malicious_ips)});
  }
  std::string out = t.render();
  out += "trends: open-resolver decline=";
  out += series.open_resolver_decline() ? "yes" : "no";
  out += ", malicious growth=";
  out += series.malicious_growth() ? "yes" : "no";
  out += "\n";
  return out;
}

}  // namespace orp::core
