// Continuous monitoring — the capability §V argues the ecosystem lacks
// ("a systematic and constant follow-up of the behavioral analysis in the
// open resolver ecosystem is a gap in the literature").
//
// The two calibrated campaigns (2013-10 and 2018-04) are treated as
// endpoints of a population drift; interpolate_year() produces a synthetic
// population for any point between them, and run_monitoring() replays the
// periodic scans a standing observatory would have run, yielding the trend
// lines the paper could only sample twice: open-resolver decline vs
// malicious-responder growth.
#pragma once

#include <string>
#include <vector>

#include "core/contrast.h"
#include "core/paper_data.h"
#include "core/pipeline.h"

namespace orp::core {

/// Linear population drift between two calibrated years; t in [0, 1]
/// (0 = `from`, 1 = `to`). Every count lerps; content catalogs (top-10
/// addresses, countries) blend by key union. The population builder's
/// reconciliation step absorbs the rounding, so any t yields a buildable
/// population.
PaperYear interpolate_year(const PaperYear& from, const PaperYear& to,
                           double t);

struct MonitoringSnapshot {
  double t = 0;             // drift position
  std::string label;        // e.g. "2015-03"
  OpenResolverEstimates open_resolvers;
  std::uint64_t r2 = 0;
  std::uint64_t incorrect = 0;
  double err_percent = 0;
  std::uint64_t malicious_r2 = 0;
  std::uint64_t malicious_ips = 0;
};

struct MonitoringSeries {
  std::vector<MonitoringSnapshot> snapshots;

  /// The trends §V predicts a monitor would surface.
  bool open_resolver_decline() const;   // strict estimate falls end-to-end
  bool malicious_growth() const;        // malicious responses rise end-to-end
};

struct MonitoringConfig {
  int snapshots = 6;           // 2013-10 .. 2018-04 inclusive
  std::uint64_t scale = 2048;  // per-snapshot scan scale
  std::uint64_t seed = 42;
};

MonitoringSeries run_monitoring(const MonitoringConfig& config);

std::string render_monitoring(const MonitoringSeries& series);

}  // namespace orp::core
