#include "core/paper_data.h"

namespace orp::core {
namespace {

using intel::ThreatCategory;

analysis::RcodeTable make_rcodes(
    std::initializer_list<std::tuple<dns::Rcode, std::uint64_t, std::uint64_t>>
        rows) {
  analysis::RcodeTable t;
  for (const auto& [rc, with, without] : rows) {
    t.rows[static_cast<std::size_t>(rc)] = analysis::RcodeRow{with, without};
  }
  return t;
}

PaperYear build_2013() {
  PaperYear y;
  y.year = 2013;

  // Table II: 10/28/2013 2PM -> 11/04/2013 6PM, "7d 5h".
  y.q1 = 3'676'724'690;
  y.q2_r1 = 38'079'578;
  y.r2 = 16'660'123;
  y.duration_seconds = 7 * 86400 + 5 * 3600;  // 625,  7d5h
  y.probe_rate_pps = static_cast<double>(y.q1) / y.duration_seconds;  // ~5.9k

  // Table III. The 2013 analysis does not report empty-question exclusions.
  y.answers = analysis::AnswerBreakdown{
      .r2 = 16'660'123,
      .without_answer = 4'867'241,
      .correct = 11'671'589,
      .incorrect = 121'293,
  };
  y.empty_question = 0;

  // Table IV. Internally consistent with Table III to the packet.
  y.ra.bit0 = analysis::FlagBreakdown{
      .without_answer = 4'147'838, .correct = 166'108, .incorrect = 75'842};
  y.ra.bit1 = analysis::FlagBreakdown{
      .without_answer = 719'403, .correct = 11'505'481, .incorrect = 45'451};

  // Table V. Also consistent (W_Incorr for AA0 derived from the row total).
  y.aa.bit0 = analysis::FlagBreakdown{
      .without_answer = 4'717'485, .correct = 11'518'500, .incorrect = 43'014};
  y.aa.bit1 = analysis::FlagBreakdown{
      .without_answer = 149'756, .correct = 153'089, .incorrect = 78'279};

  // Table VI. The W row sums to 11,794,580 (+1,698 vs Table III) and the W/O
  // row to 4,867,229 (-12); the reconciler trues these up for calibration.
  y.rcodes = make_rcodes({
      {dns::Rcode::kNoError, 11'780'575, 1'198'772},
      {dns::Rcode::kFormErr, 0, 453},
      {dns::Rcode::kServFail, 12'723, 354'176},
      {dns::Rcode::kNXDomain, 10, 145'724},
      {dns::Rcode::kNotImp, 0, 38},
      {dns::Rcode::kRefused, 1'272, 3'168'053},
      {dns::Rcode::kYXDomain, 0, 0},
      {dns::Rcode::kYXRRSet, 0, 2},
      {dns::Rcode::kNotAuth, 0, 11},
  });

  // Table VII. The printed "string" row (10 R2, 57 unique) is impossible as
  // written (unique > occurrences); we keep the R2 counts, which sum exactly,
  // and clamp unique to the R2 count.
  y.incorrect.ip = analysis::FormStats{112'270, 28'443, "216.194.64.193"};
  y.incorrect.url = analysis::FormStats{249, 175, "u.dcoin.co"};
  y.incorrect.str = analysis::FormStats{10, 10, "wild"};
  y.incorrect.na = analysis::FormStats{8'764, 0, "<0x00>"};

  // §IV-C1 prose gives six of the ten 2013 counts; the remaining four are
  // reconstructed so the ranking is strictly decreasing and the total is the
  // printed 26,514 (see DESIGN.md "Known paper inconsistencies").
  y.top10 = {
      {"74.220.199.15", 9'651, "Unified Layer", 'Y',
       ThreatCategory::kMalware, false},
      {"192.168.1.254", 5'460, "private network", '-',
       ThreatCategory::kMalware, true},
      {"20.20.20.20", 5'030, "Microsoft", 'N', ThreatCategory::kMalware,
       true},
      {"192.168.2.1", 1'120, "private network", '-', ThreatCategory::kMalware,
       true},
      {"0.0.0.0", 1'032, "unroutable", 'N', ThreatCategory::kMalware, false},
      {"64.94.110.11", 1'005, "Search Guide Inc", 'N',
       ThreatCategory::kMalware, true},
      {"173.192.59.63", 995, "SoftLayer", 'N', ThreatCategory::kMalware,
       false},
      {"221.238.203.46", 811, "Tianjin Telecom", 'N',
       ThreatCategory::kMalware, false},
      {"68.87.91.199", 748, "Comcast", 'N', ThreatCategory::kMalware, false},
      {"192.168.1.1", 662, "private network", '-', ThreatCategory::kMalware,
       true},
  };

  // Table IX, 2013 columns.
  y.categories = {
      {ThreatCategory::kMalware, 65, 11'149},
      {ThreatCategory::kPhishing, 19, 1'092},
      {ThreatCategory::kSpam, 4, 67},
      {ThreatCategory::kSshBruteforce, 2, 2},
      {ThreatCategory::kScan, 8, 493},
      {ThreatCategory::kBotnet, 1, 70},
      {ThreatCategory::kEmailBruteforce, 1, 1},
  };
  y.malicious_ips = 100;
  y.malicious_r2 = 12'874;

  // Table X exists only for 2018. For 2013 we extrapolate the malicious
  // RA/AA split pro rata the 2013 incorrect-answer flag distribution:
  //   RA0 : RA1 = 75,842 : 45,451 over 12,874 -> 8,050 : 4,824
  //   AA0 : AA1 = 43,014 : 78,279 over 12,874 -> 4,565 : 8,309
  y.table10_published = false;
  y.mal_ra0 = 8'050;
  y.mal_ra1 = 4'824;
  y.mal_aa0 = 4'565;
  y.mal_aa1 = 8'309;

  // §IV-C2 country list (sums to 12,874 across 36 countries).
  y.countries = {
      {"US", 12'616}, {"TR", 91}, {"VG", 28}, {"PL", 24}, {"IR", 18},
      {"BR", 9},      {"KR", 8},  {"TW", 8},  {"AR", 7},  {"BG", 6},
      {"ES", 5},      {"PT", 5},  {"AT", 4},  {"CA", 4},  {"DE", 4},
      {"NL", 4},      {"VN", 4},  {"CH", 3},  {"RU", 3},  {"SA", 3},
      {"AU", 2},      {"ID", 2},  {"KE", 2},  {"SE", 2},  {"CN", 1},
      {"FR", 1},      {"GB", 1},  {"HK", 1},  {"MA", 1},  {"NA", 1},
      {"NI", 1},      {"PR", 1},  {"SG", 1},  {"TH", 1},  {"VA", 1},
      {"ZA", 1},
  };
  return y;
}

PaperYear build_2018() {
  PaperYear y;
  y.year = 2018;

  // Table II: 04/26/2018 3PM -> 04/27/2018 2AM ("11h"); §IV prose says the
  // probing itself lasted 10h35m at 100k pps.
  y.q1 = 3'702'258'432;
  y.q2_r1 = 13'049'863;
  y.r2 = 6'506'258;
  y.duration_seconds = 11 * 3600;
  y.probe_rate_pps = 100'000;

  // Table III over the 6,505,764 question-bearing responses; 494 more had an
  // empty question section (§IV-B4).
  y.answers = analysis::AnswerBreakdown{
      .r2 = 6'505'764,
      .without_answer = 3'642'109,
      .correct = 2'752'562,
      .incorrect = 111'093,
  };
  y.empty_question = 494;

  // Table IV. Internally consistent with Table III to the packet.
  y.ra.bit0 = analysis::FlagBreakdown{
      .without_answer = 3'434'415, .correct = 3'994, .incorrect = 65'172};
  y.ra.bit1 = analysis::FlagBreakdown{
      .without_answer = 207'694, .correct = 2'748'568, .incorrect = 45'921};

  // Table V. Sums to 2,752,572 correct / 3,642,099 without (each off by 10
  // against Table III); the reconciler trues these up.
  y.aa.bit0 = analysis::FlagBreakdown{
      .without_answer = 3'512'053, .correct = 2'727'477, .incorrect = 17'041};
  y.aa.bit1 = analysis::FlagBreakdown{
      .without_answer = 130'046, .correct = 25'095, .incorrect = 94'052};

  // Table VI. The W column sums exactly to Table III's 2,863,655; the W/O
  // column sums to 3,642,095 (-14).
  y.rcodes = make_rcodes({
      {dns::Rcode::kNoError, 2'860'940, 377'803},
      {dns::Rcode::kFormErr, 23, 233},
      {dns::Rcode::kServFail, 2'489, 200'320},
      {dns::Rcode::kNXDomain, 10, 48'830},
      {dns::Rcode::kNotImp, 0, 605},
      {dns::Rcode::kRefused, 193, 2'934'269},
      {dns::Rcode::kYXDomain, 0, 1},
      {dns::Rcode::kYXRRSet, 0, 2},
      {dns::Rcode::kNotAuth, 0, 80'032},
  });

  // Table VII (sums exactly: 111,093 R2 over 15,131 unique values).
  y.incorrect.ip = analysis::FormStats{110'790, 15'022, "216.194.64.193"};
  y.incorrect.url = analysis::FormStats{231, 80, "u.dcoin.co"};
  y.incorrect.str = analysis::FormStats{72, 29, "wild"};
  y.incorrect.na = analysis::FormStats{0, 0, ""};

  // Table VIII, verbatim. Categories for the reported rows follow §IV-C1/2:
  // 208.91.197.91 is the ransomware-tracker address of Fig. 4.
  y.top10 = {
      {"216.194.64.193", 23'692, "Tera-byte Dot Com", 'N',
       ThreatCategory::kMalware, false},
      {"74.220.199.15", 13'369, "Unified Layer", 'Y',
       ThreatCategory::kMalware, false},
      {"208.91.197.91", 8'239, "Confluence Network Inc", 'Y',
       ThreatCategory::kMalware, false},
      {"141.8.225.68", 1'197, "Rook Media GmbH", 'Y',
       ThreatCategory::kMalware, false},
      {"192.168.1.1", 1'014, "private network", '-',
       ThreatCategory::kMalware, false},
      {"192.168.2.1", 741, "private network", '-', ThreatCategory::kMalware,
       false},
      {"114.44.34.86", 734, "Chunghwa Telecom", 'N',
       ThreatCategory::kMalware, false},
      {"172.30.1.254", 607, "private network", '-', ThreatCategory::kMalware,
       false},
      {"10.0.0.1", 548, "private network", '-', ThreatCategory::kMalware,
       false},
      {"118.166.1.6", 528, "Chunghwa Telecom", 'N', ThreatCategory::kMalware,
       false},
  };

  // Table IX, 2018 columns.
  y.categories = {
      {ThreatCategory::kMalware, 170, 23'189},
      {ThreatCategory::kPhishing, 125, 2'878},
      {ThreatCategory::kSpam, 15, 44},
      {ThreatCategory::kSshBruteforce, 10, 323},
      {ThreatCategory::kScan, 9, 388},
      {ThreatCategory::kBotnet, 4, 102},
      {ThreatCategory::kEmailBruteforce, 2, 2},
  };
  y.malicious_ips = 335;
  y.malicious_r2 = 26'926;

  // Table X. The AA0 cell is garbled in the text; derived as
  // 26,926 - 19,454 = 7,472 (27.8%).
  y.table10_published = true;
  y.mal_ra0 = 19'534;
  y.mal_ra1 = 7'392;
  y.mal_aa0 = 7'472;
  y.mal_aa1 = 19'454;

  // §IV-C2 country list (sums to 26,926 across 31 countries).
  y.countries = {
      {"US", 21'819}, {"IN", 3'596}, {"HK", 714}, {"VG", 291}, {"AE", 162},
      {"CN", 146},    {"DE", 31},    {"PL", 24},  {"RU", 18},  {"BG", 16},
      {"NL", 14},     {"IE", 12},    {"AU", 11},  {"KY", 11},  {"CA", 8},
      {"FR", 7},      {"GB", 7},     {"JP", 7},   {"CH", 6},   {"PT", 6},
      {"IT", 5},      {"SG", 3},     {"TR", 3},   {"VN", 2},   {"AR", 1},
      {"AT", 1},      {"ES", 1},     {"JO", 1},   {"LT", 1},   {"MY", 1},
      {"UA", 1},
  };

  // §IV-B4: the 494 empty-question responses. The printed sub-counts are
  // themselves inconsistent (RA rows sum to 487, rcode rows to 493); the
  // population builder apportions the gap.
  y.empty_q.total = 494;
  y.empty_q.with_answer = 19;
  y.empty_q.private_answers = 14;   // 13 in 192.168/16, 1 in 10/8
  y.empty_q.answers_10slash8 = 1;
  y.empty_q.malformed_answers = 1;  // the "0000" answer
  y.empty_q.unknown_org = 4;
  y.empty_q.ra1 = 184;
  y.empty_q.aa1 = 2;
  y.empty_q.rcode[static_cast<std::size_t>(dns::Rcode::kNoError)] = 26;
  y.empty_q.rcode[static_cast<std::size_t>(dns::Rcode::kFormErr)] = 1;
  y.empty_q.rcode[static_cast<std::size_t>(dns::Rcode::kServFail)] = 301;
  y.empty_q.rcode[static_cast<std::size_t>(dns::Rcode::kNXDomain)] = 2;
  y.empty_q.rcode[static_cast<std::size_t>(dns::Rcode::kRefused)] = 163;
  return y;
}

}  // namespace

const PaperYear& paper_2013() {
  static const PaperYear y = build_2013();
  return y;
}

const PaperYear& paper_2018() {
  static const PaperYear y = build_2018();
  return y;
}

}  // namespace orp::core
