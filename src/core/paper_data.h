// The published measurements of the paper, transcribed table by table.
//
// These constants serve three purposes: (1) they are the calibration targets
// the synthetic population is fitted to, (2) the benches print them beside
// the measured values, and (3) the reconciler documents where the paper's
// own tables disagree with each other (they do, at the ±10..±1,698 packet
// level — see reconcile.h).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "analysis/answer_analysis.h"
#include "analysis/header_analysis.h"
#include "analysis/incorrect_answers.h"
#include "intel/threat_db.h"

namespace orp::core {

struct PaperTopEntry {
  std::string addr;
  std::uint64_t count = 0;
  std::string org;
  char reported = 'N';  // 'Y', 'N', '-' (private / N-A)
  /// Category when the address is threat-reported.
  intel::ThreatCategory category = intel::ThreatCategory::kMalware;
  /// True where the count is reconstructed from prose rather than printed in
  /// a table (parts of the 2013 top-10; see DESIGN.md).
  bool reconstructed = false;
};

struct PaperCategoryRow {
  intel::ThreatCategory category;
  std::uint64_t unique_ips = 0;
  std::uint64_t r2 = 0;
};

struct PaperCountryRow {
  std::string country;
  std::uint64_t r2 = 0;
};

/// §IV-B4 sub-analysis of the empty-question responses (2018 only).
struct PaperEmptyQuestion {
  std::uint64_t total = 0;
  std::uint64_t with_answer = 0;
  std::uint64_t private_answers = 0;
  std::uint64_t answers_10slash8 = 0;     // of the private answers
  std::uint64_t malformed_answers = 0;
  std::uint64_t unknown_org = 0;
  std::uint64_t ra1 = 0;
  std::uint64_t aa1 = 0;
  std::array<std::uint64_t, dns::kRcodeCount> rcode{};
};

/// One measurement year, fully transcribed.
struct PaperYear {
  int year = 0;

  // Table II.
  std::uint64_t q1 = 0;
  std::uint64_t q2_r1 = 0;  // the paper reports Q2 and R1 as one count
  std::uint64_t r2 = 0;
  double duration_seconds = 0;
  double probe_rate_pps = 0;

  // Table III (question-bearing responses only).
  analysis::AnswerBreakdown answers;
  std::uint64_t empty_question = 0;  // R2 - answers.r2

  // Tables IV and V.
  analysis::FlagTable ra;
  analysis::FlagTable aa;

  // Table VI.
  analysis::RcodeTable rcodes;

  // Table VII.
  analysis::IncorrectSummary incorrect;

  // Table VIII (2013's is reconstructed from §IV-C1 prose).
  std::vector<PaperTopEntry> top10;

  // Table IX.
  std::vector<PaperCategoryRow> categories;
  std::uint64_t malicious_ips = 0;
  std::uint64_t malicious_r2 = 0;

  // Table X (published for 2018; extrapolated for 2013 pro rata the
  // incorrect-answer flag distribution — flagged by `table10_published`).
  bool table10_published = false;
  std::uint64_t mal_ra0 = 0;
  std::uint64_t mal_ra1 = 0;
  std::uint64_t mal_aa0 = 0;
  std::uint64_t mal_aa1 = 0;

  // §IV-C2 country lists.
  std::vector<PaperCountryRow> countries;

  // §IV-B4 (2018 only; zero-initialized for 2013).
  PaperEmptyQuestion empty_q;
};

const PaperYear& paper_2013();
const PaperYear& paper_2018();

}  // namespace orp::core
