#include "core/pipeline.h"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "analysis/flow.h"
#include "analysis/streaming.h"
#include "core/shard.h"
#include "util/rng.h"

namespace orp::core {

std::uint64_t ScanOutcome::expect(std::uint64_t paper_count) const {
  return (paper_count + scale_factor / 2) / scale_factor;
}

ScanOutcome run_measurement(const PaperYear& year,
                            const PipelineConfig& config) {
  ScanOutcome outcome;
  outcome.year = year.year;
  outcome.scale_factor = config.scale;

  // 1. Calibrated population.
  outcome.spec = build_population(year, config.scale, config.seed);

  // 2. The global planting plan: every random choice made once, before any
  // shard exists, so placement is independent of the shard count.
  InternetConfig net_config;
  net_config.seed = config.seed;
  net_config.scan_seed = util::mix64(config.seed + year.year);
  net_config.loss_rate = config.loss_rate;
  net_config.loop_batch_cap = config.loop_batch_cap;
  net_config.delivery_group_cap = config.delivery_group_cap;
  net_config.wire_templates = config.wire_templates;
  net_config.udp_limit = config.udp_limit;
  net_config.tcp = config.tcp_fallback;
  const InternetPlan plan = plan_internet(outcome.spec, net_config);

  // 3. The campaign-level scan parameters (Table II at this run's scale);
  // each shard derives its permutation slice and rate share from these.
  prober::ScanConfig scan_config;
  scan_config.seed = net_config.scan_seed;
  scan_config.rate_pps = outcome.spec.rate_pps;
  scan_config.raw_steps = outcome.spec.raw_steps;
  scan_config.rotate_pause =
      net::SimTime::seconds(outcome.spec.zone_load_seconds);
  scan_config.wire_templates = config.wire_templates;
  scan_config.tcp_fallback = config.tcp_fallback;

  // A shard needs a non-empty slice; more shards than raw steps would only
  // create idle loops.
  std::uint32_t shards = config.threads == 0 ? 1 : config.threads;
  if (shards > outcome.spec.raw_steps)
    shards = static_cast<std::uint32_t>(outcome.spec.raw_steps);
  outcome.threads_used = shards;

  // 4. Run the shards. Each worker touches only its own slot; exceptions
  // are carried back and rethrown on the calling thread.
  //
  // Live progress, when enabled, runs entirely outside the simulation:
  // shards publish into cache-line-private beacons with relaxed stores, and
  // a real-time reporter thread polls them on a wall-clock interval. Nothing
  // about the event streams, RNG draws, or merge order changes — progress
  // output is the one part of the pipeline keyed to real time, and it is
  // write-only (stderr).
  std::unique_ptr<obs::CampaignProgress> progress;
  if (config.obs.progress_interval_s > 0)
    progress = std::make_unique<obs::CampaignProgress>(shards);

  std::mutex reporter_mutex;
  std::condition_variable reporter_cv;
  bool reporter_stop = false;
  std::thread reporter;
  const auto campaign_start = std::chrono::steady_clock::now();
  const auto elapsed_s = [campaign_start]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         campaign_start)
        .count();
  };
  if (progress != nullptr) {
    reporter = std::thread([&]() {
      const auto interval =
          std::chrono::duration<double>(config.obs.progress_interval_s);
      std::unique_lock<std::mutex> lock(reporter_mutex);
      while (!reporter_cv.wait_for(lock, interval,
                                   [&]() { return reporter_stop; })) {
        const std::string line = obs::CampaignProgress::render(
            progress->snapshot(), outcome.spec.raw_steps, elapsed_s());
        std::fprintf(stderr, "%s\n", line.c_str());
      }
    });
  }

  // Streaming vs post-hoc. The default streams: every shard classifies its
  // R2s at capture time into partial tables (and the behavior digest), so
  // nothing per-response survives the scan. posthoc_analysis retains the
  // views and reruns the legacy whole-campaign pass instead — the
  // differential path the determinism suite compares against.
  const bool streaming = !config.posthoc_analysis;
  const bool retain = config.retain_views || config.posthoc_analysis;

  std::vector<ShardResult> results(shards);
  const auto run_shard = [&](std::uint32_t shard_id) {
    ShardContext ctx(outcome.spec, net_config, plan, shard_id, shards,
                     scan_config, config.obs,
                     progress != nullptr ? &progress->shard(shard_id)
                                         : nullptr,
                     streaming, retain);
    results[shard_id] = ctx.run();
  };
  if (shards == 1) {
    run_shard(0);
  } else {
    std::vector<std::exception_ptr> errors(shards);
    std::vector<std::thread> workers;
    workers.reserve(shards);
    for (std::uint32_t i = 0; i < shards; ++i) {
      workers.emplace_back([&, i]() {
        try {
          run_shard(i);
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    for (auto& w : workers) w.join();
    for (const auto& e : errors)
      if (e) std::rethrow_exception(e);
  }
  if (reporter.joinable()) {
    {
      std::lock_guard<std::mutex> lock(reporter_mutex);
      reporter_stop = true;
    }
    reporter_cv.notify_all();
    reporter.join();
    // A closing line so short campaigns leave a trace of the final state.
    const std::string line = obs::CampaignProgress::render(
        progress->snapshot(), outcome.spec.raw_steps, elapsed_s());
    std::fprintf(stderr, "%s\n", line.c_str());
  }

  // 5. Deterministic merge, in shard order for the summed counters and in
  // canonical (resolver-address) order for the views and capture records.
  outcome.scan = results[0].scan;
  outcome.auth = results[0].auth;
  outcome.clusters = results[0].clusters;
  outcome.events_executed = results[0].events_executed;
  outcome.capture = std::move(results[0].capture);
  outcome.metrics = std::move(results[0].metrics);
  outcome.traces = std::move(results[0].traces);
  analysis::PartialTables tables = std::move(results[0].tables);
  std::vector<std::vector<analysis::R2View>> view_shards;
  view_shards.reserve(shards);
  view_shards.push_back(std::move(results[0].views));
  for (std::uint32_t i = 1; i < shards; ++i) {
    outcome.scan += results[i].scan;
    outcome.auth += results[i].auth;
    outcome.clusters += results[i].clusters;
    outcome.events_executed += results[i].events_executed;
    outcome.capture.merge(std::move(results[i].capture));
    outcome.metrics += results[i].metrics;
    outcome.traces.merge(std::move(results[i].traces));
    tables += results[i].tables;
    view_shards.push_back(std::move(results[i].views));
  }
  outcome.capture.sort_canonical();
  outcome.traces.sort_canonical();
  outcome.cluster_loads = outcome.auth.cluster_loads;
  outcome.sim_duration_seconds = outcome.scan.duration().as_seconds();

  if (retain)
    outcome.views = analysis::merge_views(std::move(view_shards));
  outcome.capture_digest = streaming
                               ? tables.digest
                               : analysis::behavior_digest(outcome.views);
  if (streaming) {
    outcome.analysis_bytes = tables.footprint_bytes();
  } else {
    std::size_t bytes = outcome.capture.arena_bytes() +
                        outcome.views.capacity() * sizeof(analysis::R2View);
    for (const analysis::R2View& v : outcome.views)
      bytes += v.answer_text.capacity();
    outcome.analysis_bytes = bytes;
  }

  // 6. Finalize against the campaign-global intel databases (identical to
  // every shard's bundle — build_intel uses only global inputs).
  if (config.analyze) {
    const IntelBundle intel =
        build_intel(outcome.spec, plan, measurement_auth_address());
    outcome.analysis =
        streaming ? tables.finalize(intel.orgs, intel.threats)
                  : analysis::analyze_scan(outcome.views, intel.threats,
                                           intel.geo, intel.orgs);
  }
  return outcome;
}

}  // namespace orp::core
