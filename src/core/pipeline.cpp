#include "core/pipeline.h"

#include "analysis/flow.h"
#include "util/rng.h"

namespace orp::core {

std::uint64_t ScanOutcome::expect(std::uint64_t paper_count) const {
  return (paper_count + scale_factor / 2) / scale_factor;
}

ScanOutcome run_measurement(const PaperYear& year,
                            const PipelineConfig& config) {
  ScanOutcome outcome;
  outcome.year = year.year;
  outcome.scale_factor = config.scale;

  // 1. Calibrated population.
  outcome.spec = build_population(year, config.scale, config.seed);

  // 2. Simulated Internet (planted inside the scan's permutation slice).
  InternetConfig net_config;
  net_config.seed = config.seed;
  net_config.scan_seed = util::mix64(config.seed + year.year);
  net_config.loss_rate = config.loss_rate;
  SimulatedInternet internet(outcome.spec, net_config);

  // 3. The scanner, configured from Table II at this run's scale.
  prober::ScanConfig scan_config;
  scan_config.seed = net_config.scan_seed;
  scan_config.rate_pps = outcome.spec.rate_pps;
  scan_config.raw_steps = outcome.spec.raw_steps;
  scan_config.rotate_pause =
      net::SimTime::seconds(outcome.spec.zone_load_seconds);
  prober::Scanner scanner(internet.network(), internet.prober_address(),
                          scan_config, internet.scheme());
  scanner.set_rotate_callback([&internet](std::uint32_t cluster) {
    internet.auth().load_cluster(cluster);
  });

  bool done = false;
  scanner.start([&done]() { done = true; });
  internet.loop().run();
  (void)done;

  // 4. Collect and analyze.
  outcome.scan = scanner.stats();
  outcome.auth = internet.auth().stats();
  outcome.clusters = scanner.clusters().stats();
  outcome.cluster_loads = internet.auth().stats().cluster_loads;
  outcome.events_executed = internet.loop().executed();
  outcome.sim_duration_seconds = outcome.scan.duration().as_seconds();

  outcome.views =
      analysis::classify_all(scanner.responses(), internet.scheme());
  if (config.analyze) {
    outcome.analysis = analysis::analyze_scan(
        outcome.views, internet.threats(), internet.geo(), internet.orgs());
  }
  return outcome;
}

}  // namespace orp::core
