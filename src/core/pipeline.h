// End-to-end measurement pipeline: population -> simulated Internet ->
// ZMap-style scan -> capture -> behavioral analysis. One call reproduces one
// of the paper's two measurement campaigns at a chosen scale.
//
// The campaign runs as `threads` independent shards (see core/shard.h): one
// global planting plan, S isolated event loops scanning disjoint slices of
// the one ZMap permutation, merged deterministically. The merged tables and
// capture digest are byte-identical for every thread count.
#pragma once

#include <cstdint>

#include "analysis/report.h"
#include "core/internet_builder.h"
#include "core/population.h"
#include "net/capture_store.h"
#include "obs/obs.h"
#include "prober/scanner.h"

namespace orp::core {

struct PipelineConfig {
  /// 1/scale sample of the full campaign. 1 = the paper's full 3.7B-probe
  /// scan (hours of CPU and tens of GB of RAM; scaled runs are the default).
  std::uint64_t scale = 1024;
  std::uint64_t seed = 42;
  /// Skip the analysis pass (benches that only need raw scan stats).
  bool analyze = true;
  /// Uniform packet-loss probability injected into the simulated network
  /// (0 = the calibrated default; loss is for robustness experiments).
  double loss_rate = 0.0;
  /// Shards (worker threads) the scan is split across. Results are merged
  /// deterministically: for a fixed (year, scale, seed) the analysis tables
  /// and capture digest are identical for every value.
  unsigned threads = 1;
  /// Batch-dispatch caps (0 = unbounded): how many same-deadline events one
  /// loop drain may run, and how many packets one grouped delivery may
  /// carry. Purely mechanical knobs — every value produces byte-identical
  /// tables and digests (the determinism suite sweeps them).
  std::size_t loop_batch_cap = 0;
  std::size_t delivery_group_cap = 0;
  /// Stamp hot-path packets (probe queries, auth answers, fabricated
  /// responses) from pre-encoded, differentially verified wire templates.
  /// Either setting produces byte-identical tables and digests — the
  /// determinism suite sweeps this knob alongside the batch caps.
  bool wire_templates = true;
  /// Observability: metrics registry, flow tracing, live progress. All off
  /// by default; enabling any of them changes no simulated behavior — the
  /// tables and digests stay byte-identical (instrumentation is passive).
  obs::ObsConfig obs;
};

struct ScanOutcome {
  int year = 0;
  PopulationSpec spec;                // calibration artifacts
  prober::ScanStats scan;             // prober-side counters (Q1, R2)
  authns::AuthStats auth;             // authns-side counters (Q2, R1)
  zone::ClusterStats clusters;        // Fig. 3 lifecycle
  std::uint64_t cluster_loads = 0;    // zone loads at the auth server(s)
  std::vector<analysis::R2View> views;  // merged, canonical resolver order
  analysis::ScanAnalysis analysis;
  net::CaptureStore capture;          // merged prober-vantage capture
  /// Order-insensitive digest of the views' behavioral content — equal
  /// across thread counts (the shard-determinism check).
  std::uint64_t capture_digest = 0;
  std::uint64_t events_executed = 0;  // summed across shard loops
  double sim_duration_seconds = 0;    // simulated wall-clock of the campaign
  unsigned threads_used = 1;
  /// Merged observability output (inert/empty unless enabled in the config).
  obs::Metrics metrics;
  obs::FlowTracer traces;  // canonically sorted after merge

  /// Scale a paper-published count down to this run's scale for printing
  /// beside measured values.
  std::uint64_t expect(std::uint64_t paper_count) const;
  std::uint64_t scale_factor = 1;
};

/// Run one campaign. `year` is normally paper_2013() or paper_2018().
ScanOutcome run_measurement(const PaperYear& year, const PipelineConfig& config);

}  // namespace orp::core
