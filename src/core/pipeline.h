// End-to-end measurement pipeline: population -> simulated Internet ->
// ZMap-style scan -> capture -> behavioral analysis. One call reproduces one
// of the paper's two measurement campaigns at a chosen scale.
//
// The campaign runs as `threads` independent shards (see core/shard.h): one
// global planting plan, S isolated event loops scanning disjoint slices of
// the one ZMap permutation, merged deterministically. The merged tables and
// capture digest are byte-identical for every thread count.
#pragma once

#include <cstdint>

#include "analysis/report.h"
#include "core/internet_builder.h"
#include "core/population.h"
#include "net/capture_store.h"
#include "obs/obs.h"
#include "prober/scanner.h"

namespace orp::core {

struct PipelineConfig {
  /// 1/scale sample of the full campaign. 1 = the paper's full 3.7B-probe
  /// scan — hours of CPU, but no longer tens of GB of RAM: the default
  /// streaming path classifies each R2 at capture time and keeps only the
  /// partial tables, so peak memory is O(shards x distinct values), not
  /// O(probes). Retaining the per-response views/pcap (retain_views /
  /// posthoc_analysis below) restores the old O(probes) envelope.
  std::uint64_t scale = 1024;
  std::uint64_t seed = 42;
  /// Skip the analysis pass (benches that only need raw scan stats).
  bool analyze = true;
  /// Uniform packet-loss probability injected into the simulated network
  /// (0 = the calibrated default; loss is for robustness experiments).
  double loss_rate = 0.0;
  /// Shards (worker threads) the scan is split across. Results are merged
  /// deterministically: for a fixed (year, scale, seed) the analysis tables
  /// and capture digest are identical for every value.
  unsigned threads = 1;
  /// Batch-dispatch caps (0 = unbounded): how many same-deadline events one
  /// loop drain may run, and how many packets one grouped delivery may
  /// carry. Purely mechanical knobs — every value produces byte-identical
  /// tables and digests (the determinism suite sweeps them).
  std::size_t loop_batch_cap = 0;
  std::size_t delivery_group_cap = 0;
  /// Stamp hot-path packets (probe queries, auth answers, fabricated
  /// responses) from pre-encoded, differentially verified wire templates.
  /// Either setting produces byte-identical tables and digests — the
  /// determinism suite sweeps this knob alongside the batch caps.
  bool wire_templates = true;
  /// Observability: metrics registry, flow tracing, live progress. All off
  /// by default; enabling any of them changes no simulated behavior — the
  /// tables and digests stay byte-identical (instrumentation is passive).
  obs::ObsConfig obs;
  /// Debugging knob: retain every R2 (scanner R2Store + capture arena) and
  /// fill `ScanOutcome::views` in canonical order. Off by default — the
  /// streaming analyzer consumes each response at capture time, so the
  /// default campaign materializes no per-response state. Turn on for
  /// pcap/CSV export (examples/orpscan) or view-level debugging.
  bool retain_views = false;
  /// Differential-testing knob: compute the analysis with the legacy
  /// post-hoc pass (classify_all over retained views + analyze_scan) instead
  /// of merging the shards' streamed partial tables. Implies retention.
  /// The streaming and post-hoc results are byte-identical — the
  /// determinism suite pins this — so there is no reason to turn this on
  /// outside tests and the comparison bench.
  bool posthoc_analysis = false;
  /// Stream-transport experiment (off by default): when `udp_limit` is
  /// non-zero, truncating resolver profiles cap UDP answers at that many
  /// bytes and set TC=1; when `tcp_fallback` is on, those hosts also listen
  /// on TCP and the prober retries matched TC=1 answers over a stream
  /// connection (RFC 7766 DoTCP). Both off reproduces the pinned UDP
  /// campaign byte-for-byte — no stream event is ever scheduled.
  bool tcp_fallback = false;
  std::uint16_t udp_limit = 0;
};

struct ScanOutcome {
  int year = 0;
  PopulationSpec spec;                // calibration artifacts
  prober::ScanStats scan;             // prober-side counters (Q1, R2)
  authns::AuthStats auth;             // authns-side counters (Q2, R1)
  zone::ClusterStats clusters;        // Fig. 3 lifecycle
  std::uint64_t cluster_loads = 0;    // zone loads at the auth server(s)
  /// Merged views in canonical resolver order — populated only when the
  /// config retained them (retain_views / posthoc_analysis); empty on the
  /// default streaming path.
  std::vector<analysis::R2View> views;
  analysis::ScanAnalysis analysis;
  /// Merged prober-vantage capture. Counts and digest are always complete;
  /// payload records are retained only under retain_views/posthoc_analysis.
  net::CaptureStore capture;
  /// Order-insensitive digest of the R2s' behavioral content — equal across
  /// thread counts (the shard-determinism check). Streamed per shard on the
  /// default path; identical to behavior_digest over the retained views.
  std::uint64_t capture_digest = 0;
  /// Bytes retained to produce `analysis`: the merged partial-table
  /// footprint on the streaming path, or the capture arena + materialized
  /// view buffer under posthoc_analysis. The memory axis BENCH_analysis.json
  /// tracks (whole-process RSS is dominated by the simulated internet).
  std::size_t analysis_bytes = 0;
  std::uint64_t events_executed = 0;  // summed across shard loops
  double sim_duration_seconds = 0;    // simulated wall-clock of the campaign
  unsigned threads_used = 1;
  /// Merged observability output (inert/empty unless enabled in the config).
  obs::Metrics metrics;
  obs::FlowTracer traces;  // canonically sorted after merge

  /// Scale a paper-published count down to this run's scale for printing
  /// beside measured values.
  std::uint64_t expect(std::uint64_t paper_count) const;
  std::uint64_t scale_factor = 1;
};

/// Run one campaign. `year` is normally paper_2013() or paper_2018().
ScanOutcome run_measurement(const PaperYear& year, const PipelineConfig& config);

}  // namespace orp::core
