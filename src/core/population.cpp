#include "core/population.h"

#include <algorithm>
#include <cmath>

#include "core/reconcile.h"
#include "net/reserved.h"
#include "prober/permutation.h"
#include "util/apportion.h"
#include "util/rng.h"
#include "util/strings.h"

namespace orp::core {
namespace {

using resolver::AnswerMode;
using resolver::BehaviorProfile;

/// Deterministic synthetic public IPv4 address (outside reserved space).
net::IPv4Addr synth_public_addr(util::Rng& rng) {
  while (true) {
    const net::IPv4Addr addr(static_cast<std::uint32_t>(rng()));
    if (!net::is_reserved(addr)) return addr;
  }
}

/// A multiset of answer values with per-value counts, flattened and
/// shuffled so materialization can pop one value per host.
template <typename T>
class ValuePool {
 public:
  void add(T value, std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) values_.push_back(value);
  }
  void shuffle(util::Rng& rng) { rng.shuffle(values_); }
  bool empty() const noexcept { return values_.empty(); }
  std::size_t size() const noexcept { return values_.size(); }
  T pop() {
    if (values_.empty()) return T{};
    T v = std::move(values_.back());
    values_.pop_back();
    return v;
  }

 private:
  std::vector<T> values_;
};

/// Split `total` across `uniques` values as evenly as integer math allows.
std::vector<std::uint64_t> spread(std::uint64_t total, std::uint64_t uniques) {
  if (uniques == 0) return {};
  std::vector<std::uint64_t> out(uniques, total / uniques);
  for (std::uint64_t i = 0; i < total % uniques; ++i) ++out[i];
  return out;
}

std::uint64_t scale_to(std::uint64_t value, std::uint64_t scale) {
  if (value == 0) return 0;
  return std::max<std::uint64_t>(1, (value + scale / 2) / scale);
}

/// Software banner assignment for the version.bind side channel (Takano et
/// al., cited in §VI). Weights are loosely modeled on that survey: BIND
/// dominates honest recursives, dnsmasq dominates CPE forwarders, and
/// deviant/malicious responders mostly hide or fake their banner.
std::string sample_version(util::Rng& rng, AnswerMode mode, bool forwarder) {
  static const char* kBind[] = {
      "9.9.4-RedHat-9.9.4-61.el7", "9.10.3-P4-Ubuntu", "9.8.2rc1-RedHat",
      "9.11.2", "named"};
  if (forwarder) {
    const double u = rng.uniform01();
    if (u < 0.60) return "dnsmasq-2.76";
    if (u < 0.75) return "dnsmasq-2.40";
    if (u < 0.85) return "";  // hidden
    return kBind[rng.bounded(std::size(kBind))];
  }
  switch (mode) {
    case AnswerMode::kRecursive: {
      const double u = rng.uniform01();
      if (u < 0.45) return kBind[rng.bounded(std::size(kBind))];
      if (u < 0.60) return "unbound 1.6.0";
      if (u < 0.70) return "PowerDNS Recursor 4.1.1";
      if (u < 0.78) return "Microsoft DNS 6.1.7601";
      if (u < 0.88) return "dnsmasq-2.76";
      return "";  // version hidden
    }
    case AnswerMode::kNone:
      return rng.chance(0.25) ? kBind[rng.bounded(std::size(kBind))] : "";
    default:
      // Manipulators and garbage emitters: hidden, or an implausibly old
      // banner to blend in.
      return rng.chance(0.15) ? "9.4.2" : "";
  }
}

}  // namespace

PopulationSpec build_population(const PaperYear& year, std::uint64_t scale,
                                std::uint64_t seed) {
  if (scale == 0) scale = 1;
  PopulationSpec spec;
  spec.year = year.year;
  spec.scale = scale;
  util::Rng rng(util::mix64(seed ^ static_cast<std::uint64_t>(year.year)));

  // ---- 1. Reconcile the published margins to Table III ---------------------
  analysis::AnswerBreakdown answers = year.answers;
  analysis::FlagTable ra = year.ra;
  analysis::FlagTable aa = year.aa;
  analysis::RcodeTable rcodes = year.rcodes;
  spec.reconcile_moved = reconcile_flag_table(ra, answers);
  spec.reconcile_moved += reconcile_flag_table(aa, answers);
  spec.reconcile_moved += reconcile_rcode_table(rcodes, answers);

  // ---- 2. Fit the behavioral joint -----------------------------------------
  CalibrationTargets targets;
  targets.answers = answers;
  targets.ra = ra;
  targets.aa = aa;
  targets.rcodes = rcodes;
  targets.mal_ra0 = year.mal_ra0;
  targets.mal_ra1 = year.mal_ra1;
  targets.mal_aa0 = year.mal_aa0;
  targets.mal_aa1 = year.mal_aa1;
  spec.joint = calibrate_joint(targets);

  // ---- 3. Scale the joint ---------------------------------------------------
  const std::uint64_t scaled_total = scale_to(answers.r2, scale);
  std::vector<std::uint64_t> cell_counts;
  cell_counts.reserve(spec.joint.cells.size());
  for (const JointCell& c : spec.joint.cells) cell_counts.push_back(c.count);
  const std::vector<std::uint64_t> scaled_cells =
      util::apportion(cell_counts, scaled_total, /*keep_nonzero=*/true);

  std::uint64_t scaled_correct = 0;
  std::uint64_t scaled_benign = 0;
  std::uint64_t scaled_malicious = 0;
  for (std::size_t i = 0; i < spec.joint.cells.size(); ++i) {
    switch (spec.joint.cells[i].cls) {
      case AnsClass::kCorrect: scaled_correct += scaled_cells[i]; break;
      case AnsClass::kIncorrectBenign: scaled_benign += scaled_cells[i]; break;
      case AnsClass::kIncorrectMalicious:
        scaled_malicious += scaled_cells[i];
        break;
      case AnsClass::kNone: break;
    }
  }

  // ---- 4. Benign incorrect-answer form quotas (Table VII) ------------------
  const std::uint64_t heads_malicious_r2 = [&] {
    std::uint64_t n = 0;
    for (const auto& e : year.top10)
      if (e.reported == 'Y') n += e.count;
    return n;
  }();
  const std::uint64_t mal_r2_full = std::min(year.malicious_r2,
                                             year.incorrect.ip.r2);
  const std::uint64_t benign_ip_full = year.incorrect.ip.r2 - mal_r2_full;
  const std::vector<std::uint64_t> form_full{
      benign_ip_full, year.incorrect.url.r2, year.incorrect.str.r2,
      year.incorrect.na.r2};
  const std::vector<std::uint64_t> form_scaled =
      util::apportion(form_full, scaled_benign, /*keep_nonzero=*/true);

  // ---- 5a. Benign IP answer pool (Table VIII heads + tail) -----------------
  ValuePool<net::IPv4Addr> benign_ips;
  {
    std::vector<std::uint64_t> counts;
    std::vector<net::IPv4Addr> addrs;
    std::uint64_t head_total = 0;
    std::size_t head_n = 0;
    for (const auto& e : year.top10) {
      if (e.reported == 'Y') continue;  // malicious heads live in 5b
      const auto parsed = net::IPv4Addr::parse(e.addr);
      addrs.push_back(parsed.value_or(synth_public_addr(rng)));
      counts.push_back(e.count);
      head_total += e.count;
      ++head_n;
      if (!net::is_private_address(addrs.back()) && e.addr != "0.0.0.0")
        spec.org_entries.push_back(OrgEntry{addrs.back(), e.org});
    }
    const std::uint64_t tail_total =
        benign_ip_full > head_total ? benign_ip_full - head_total : 0;
    const std::uint64_t tail_unique_full =
        year.incorrect.ip.unique > year.malicious_ips + head_n
            ? year.incorrect.ip.unique - year.malicious_ips - head_n
            : 1;
    counts.push_back(tail_total);  // tail bucket

    std::vector<std::uint64_t> scaled =
        util::apportion(counts, form_scaled[0], /*keep_nonzero=*/true);
    for (std::size_t i = 0; i < addrs.size(); ++i)
      benign_ips.add(addrs[i], scaled[i]);

    const std::uint64_t tail_scaled = scaled.back();
    if (tail_scaled > 0) {
      std::uint64_t tail_uniques = std::max<std::uint64_t>(
          1, tail_unique_full * tail_scaled / std::max<std::uint64_t>(
                                                  1, tail_total));
      tail_uniques = std::min(tail_uniques, tail_scaled);
      for (const std::uint64_t n : spread(tail_scaled, tail_uniques))
        benign_ips.add(synth_public_addr(rng), n);
    }
    benign_ips.shuffle(rng);
  }

  // ---- 5b. Malicious answer pool (Table VIII heads + Table IX tails) -------
  ValuePool<net::IPv4Addr> malicious_ips;
  {
    struct Bucket {
      net::IPv4Addr addr;          // head address, or unset for a tail
      intel::ThreatCategory cat;
      std::uint64_t r2_full;
      std::uint64_t uniques_full;  // 1 for heads
    };
    std::vector<Bucket> buckets;
    std::vector<std::uint64_t> head_r2_by_cat(intel::kThreatCategoryCount, 0);
    std::vector<std::uint64_t> head_ip_by_cat(intel::kThreatCategoryCount, 0);
    for (const auto& e : year.top10) {
      if (e.reported != 'Y') continue;
      const auto parsed = net::IPv4Addr::parse(e.addr);
      const net::IPv4Addr addr = parsed.value_or(synth_public_addr(rng));
      buckets.push_back(Bucket{addr, e.category, e.count, 1});
      head_r2_by_cat[static_cast<std::size_t>(e.category)] += e.count;
      head_ip_by_cat[static_cast<std::size_t>(e.category)] += 1;
      spec.org_entries.push_back(OrgEntry{addr, e.org});
      spec.threat_entries.push_back(ThreatEntry{
          addr, e.category, static_cast<std::uint32_t>(4 + rng.bounded(12)),
          "orp-intel"});
    }
    (void)heads_malicious_r2;
    for (const auto& cat : year.categories) {
      const auto ci = static_cast<std::size_t>(cat.category);
      const std::uint64_t tail_r2 =
          cat.r2 > head_r2_by_cat[ci] ? cat.r2 - head_r2_by_cat[ci] : 0;
      const std::uint64_t tail_ips =
          cat.unique_ips > head_ip_by_cat[ci]
              ? cat.unique_ips - head_ip_by_cat[ci]
              : 0;
      if (tail_r2 == 0 && tail_ips == 0) continue;
      buckets.push_back(Bucket{net::IPv4Addr(), cat.category,
                               std::max<std::uint64_t>(tail_r2, tail_ips),
                               std::max<std::uint64_t>(1, tail_ips)});
    }

    std::vector<std::uint64_t> full_counts;
    full_counts.reserve(buckets.size());
    for (const auto& b : buckets) full_counts.push_back(b.r2_full);
    const std::vector<std::uint64_t> scaled =
        util::apportion(full_counts, scaled_malicious, /*keep_nonzero=*/true);

    for (std::size_t i = 0; i < buckets.size(); ++i) {
      const Bucket& b = buckets[i];
      if (scaled[i] == 0) continue;
      if (b.uniques_full == 1 && b.addr.value() != 0) {
        malicious_ips.add(b.addr, scaled[i]);
        continue;
      }
      // Category tail: synthesize addresses, register threat reports.
      std::uint64_t uniques = std::max<std::uint64_t>(
          1, b.uniques_full * scaled[i] / std::max<std::uint64_t>(1, b.r2_full));
      uniques = std::min(uniques, scaled[i]);
      for (const std::uint64_t n : spread(scaled[i], uniques)) {
        const net::IPv4Addr addr = synth_public_addr(rng);
        malicious_ips.add(addr, n);
        spec.threat_entries.push_back(ThreatEntry{
            addr, b.cat, static_cast<std::uint32_t>(1 + rng.bounded(6)),
            "orp-intel"});
      }
    }
    malicious_ips.shuffle(rng);
  }

  // ---- 5c. Country pool for malicious resolvers (§IV-C2) -------------------
  ValuePool<std::string> countries;
  {
    std::vector<std::uint64_t> counts;
    for (const auto& c : year.countries) counts.push_back(c.r2);
    // Proportional (not keep_nonzero): at small scales the one-resolver
    // countries drop out of the sample, exactly as a 1/N subsample would.
    const std::vector<std::uint64_t> scaled =
        util::apportion(counts, scaled_malicious, /*keep_nonzero=*/false);
    for (std::size_t i = 0; i < scaled.size(); ++i)
      countries.add(year.countries[i].country, scaled[i]);
    countries.shuffle(rng);
  }

  // ---- 5d. URL and garbage-string pools (Table VII) ------------------------
  ValuePool<std::string> urls;
  {
    const std::uint64_t total = form_scaled[1];
    if (total > 0) {
      std::uint64_t uniques = std::max<std::uint64_t>(
          1, year.incorrect.url.unique * total /
                 std::max<std::uint64_t>(1, year.incorrect.url.r2));
      uniques = std::min(uniques, total);
      const auto per = spread(total, uniques);
      for (std::size_t i = 0; i < per.size(); ++i) {
        const std::string url =
            i == 0 ? "u.dcoin.co"
                   : "lp" + std::to_string(i) + ".ad-redirect.net";
        urls.add(url, per[i]);
      }
      urls.shuffle(rng);
    }
  }
  ValuePool<std::string> strings;
  {
    const std::uint64_t total = form_scaled[2];
    if (total > 0) {
      static const char* kExamples[] = {"wild", "OK", "ff", "04b400000000"};
      std::uint64_t uniques = std::max<std::uint64_t>(
          1, year.incorrect.str.unique * total /
                 std::max<std::uint64_t>(1, year.incorrect.str.r2));
      uniques = std::min(uniques, total);
      const auto per = spread(total, uniques);
      for (std::size_t i = 0; i < per.size(); ++i) {
        const std::string s = i < std::size(kExamples)
                                  ? kExamples[i]
                                  : "garbage" + std::to_string(i);
        strings.add(s, per[i]);
      }
      strings.shuffle(rng);
    }
  }

  // Benign form labels: 0 = ip, 1 = url, 2 = string, 3 = undecodable.
  ValuePool<int> benign_forms;
  for (int f = 0; f < 4; ++f) benign_forms.add(f, form_scaled[f]);
  benign_forms.shuffle(rng);

  // ---- 6. Recursion fan (Table II Q2:R2 calibration) ------------------------
  spec.q2_fan_mean = answers.correct > 0
                         ? static_cast<double>(year.q2_r1) /
                               static_cast<double>(answers.correct)
                         : 1.0;
  const int fan_lo = std::max(1, static_cast<int>(spec.q2_fan_mean));
  const int fan_hi = fan_lo + 1;
  const double hi_fraction = spec.q2_fan_mean - fan_lo;
  std::uint64_t hi_remaining = static_cast<std::uint64_t>(
      std::llround(hi_fraction * static_cast<double>(scaled_correct)));

  // ---- 7. Materialize the question-bearing hosts ---------------------------
  constexpr double kForwarderFraction = 0.15;
  spec.hosts.reserve(scaled_total + 8);
  for (std::size_t i = 0; i < spec.joint.cells.size(); ++i) {
    const JointCell& cell = spec.joint.cells[i];
    for (std::uint64_t k = 0; k < scaled_cells[i]; ++k) {
      HostSpec host;
      BehaviorProfile& p = host.profile;
      p.respond = true;
      p.ra = cell.ra;
      p.aa = cell.aa;
      p.rcode = cell.rcode;
      switch (cell.cls) {
        case AnsClass::kNone:
          p.answer = AnswerMode::kNone;
          break;
        case AnsClass::kCorrect:
          p.answer = AnswerMode::kRecursive;
          if (hi_remaining > 0) {
            p.backend_fan = fan_hi;
            --hi_remaining;
          } else {
            p.backend_fan = fan_lo;
          }
          // Validator share per the paper-era censuses (§VI [43,44]):
          // roughly one in eight recursives sets DO upstream.
          p.dnssec_ok = rng.chance(0.12);
          if (rng.chance(kForwarderFraction)) {
            p.forwarder = true;  // upstream assigned by the internet builder
          } else {
            host.upstream_candidate = true;
          }
          break;
        case AnsClass::kIncorrectMalicious:
          p.answer = AnswerMode::kFixedIp;
          p.fixed_answer = malicious_ips.pop();
          host.country = countries.pop();
          break;
        case AnsClass::kIncorrectBenign:
          switch (benign_forms.pop()) {
            case 0:
              p.answer = AnswerMode::kFixedIp;
              p.fixed_answer = benign_ips.pop();
              break;
            case 1:
              p.answer = AnswerMode::kUrl;
              p.text_answer = urls.pop();
              break;
            case 2:
              p.answer = AnswerMode::kGarbageString;
              p.text_answer = strings.pop();
              break;
            default:
              p.answer = AnswerMode::kUndecodable;
              break;
          }
          break;
      }
      p.version = sample_version(rng, p.answer, p.forwarder);
      spec.hosts.push_back(std::move(host));
    }
  }

  // ---- 8. Empty-question responders (§IV-B4) --------------------------------
  if (year.empty_question > 0) {
    const std::uint64_t eq_scaled = scale_to(year.empty_question, scale);
    // Sub-type quotas at full scale: answers first, then the no-answer bulk.
    const std::uint64_t eq_no_answer_full =
        year.empty_question - year.empty_q.with_answer;
    const std::vector<std::uint64_t> eq_full{
        year.empty_q.private_answers - year.empty_q.answers_10slash8,  // 192.168
        year.empty_q.answers_10slash8,                                 // 10/8
        year.empty_q.malformed_answers,
        year.empty_q.unknown_org,
        eq_no_answer_full};
    const std::vector<std::uint64_t> eq_scaled_counts =
        util::apportion(eq_full, eq_scaled, /*keep_nonzero=*/false);

    // rcode mix for the no-answer bulk (NoError share excludes the answers).
    std::vector<double> rcode_cum;
    std::vector<dns::Rcode> rcode_vals;
    {
      double acc = 0;
      for (std::size_t rc = 0; rc < year.empty_q.rcode.size(); ++rc) {
        std::uint64_t n = year.empty_q.rcode[rc];
        if (rc == 0) n = n > year.empty_q.with_answer
                             ? n - year.empty_q.with_answer
                             : 0;
        if (n == 0) continue;
        acc += static_cast<double>(n);
        rcode_cum.push_back(acc);
        rcode_vals.push_back(static_cast<dns::Rcode>(rc));
      }
    }
    const double ra1_no_answer_rate =
        eq_no_answer_full > 0
            ? static_cast<double>(year.empty_q.ra1 - year.empty_q.with_answer) /
                  static_cast<double>(eq_no_answer_full)
            : 0.0;

    auto make_eq = [&](AnswerMode mode, net::IPv4Addr addr, std::string text,
                       bool ra_bit, dns::Rcode rc) {
      HostSpec host;
      BehaviorProfile& p = host.profile;
      p.respond = true;
      p.omit_question = true;
      p.answer = mode;
      p.fixed_answer = addr;
      p.text_answer = std::move(text);
      p.ra = ra_bit;
      p.aa = false;
      p.rcode = rc;
      spec.hosts.push_back(std::move(host));
    };

    for (std::uint64_t k = 0; k < eq_scaled_counts[0]; ++k)
      make_eq(AnswerMode::kFixedIp,
              net::IPv4Addr(192, 168, static_cast<std::uint8_t>(rng.bounded(4)),
                            static_cast<std::uint8_t>(1 + rng.bounded(250))),
              "", true, dns::Rcode::kNoError);
    for (std::uint64_t k = 0; k < eq_scaled_counts[1]; ++k)
      make_eq(AnswerMode::kFixedIp, net::IPv4Addr(10, 0, 0, 3), "", true,
              dns::Rcode::kNoError);
    for (std::uint64_t k = 0; k < eq_scaled_counts[2]; ++k)
      make_eq(AnswerMode::kGarbageString, net::IPv4Addr(), "0000", true,
              dns::Rcode::kNoError);
    for (std::uint64_t k = 0; k < eq_scaled_counts[3]; ++k)
      make_eq(AnswerMode::kFixedIp, synth_public_addr(rng), "", true,
              dns::Rcode::kNoError);
    for (std::uint64_t k = 0; k < eq_scaled_counts[4]; ++k) {
      const dns::Rcode rc =
          rcode_cum.empty()
              ? dns::Rcode::kServFail
              : rcode_vals[util::sample_cumulative(rng, rcode_cum)];
      make_eq(AnswerMode::kNone, net::IPv4Addr(), "",
              rng.chance(ra1_no_answer_rate), rc);
    }
    // The paper saw exactly two AA=1 responses among the 494; mark one host
    // when the scaled sub-population is large enough to carry it.
    if (eq_scaled >= 256 && !spec.hosts.empty())
      spec.hosts.back().profile.aa = true;
  }

  // ---- 9. Shuffle so behaviors land at uncorrelated addresses ---------------
  rng.shuffle(spec.hosts);

  // ---- 10. Scan parameters --------------------------------------------------
  const double coverage = static_cast<double>(year.q1) /
                          static_cast<double>(net::probeable_address_count());
  const double full_raw =
      static_cast<double>(prober::kPermutationPrime - 1) * coverage;
  spec.raw_steps = static_cast<std::uint64_t>(full_raw / static_cast<double>(scale));
  spec.rate_pps = year.probe_rate_pps / static_cast<double>(scale);
  spec.cluster_size = static_cast<std::uint32_t>(
      std::max<std::uint64_t>(64, 5'000'000 / scale));
  spec.zone_load_seconds =
      60.0 * static_cast<double>(spec.cluster_size) / 5'000'000.0;
  return spec;
}

}  // namespace orp::core
