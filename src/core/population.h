// Synthesis of the resolver population from the paper's published margins.
//
// build_population() is the bridge between the paper's tables and a runnable
// simulated Internet:
//   1. reconcile the margins (reconcile.h),
//   2. fit the behavioral joint by IPF (ipf.h),
//   3. scale everything to the requested 1/scale sample
//      (largest-remainder, keeping rare behaviors represented),
//   4. materialize one BehaviorProfile per future R2 — flags and rcode from
//      the joint cell, answer content drawn from pools that reproduce
//      Tables VII-IX (top-10 head, malicious categories, URL/garbage tails),
//      country tags that reproduce the §IV-C2 geography, recursion fan
//      calibrated to Table II's Q2:R2 ratio, and the §IV-B4 empty-question
//      sub-population,
//   5. emit the threat-intel/org entries the analysis layer will consult.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/ipf.h"
#include "core/paper_data.h"
#include "resolver/behavior.h"

namespace orp::core {

struct HostSpec {
  resolver::BehaviorProfile profile;
  /// ISO country tag for the geo database; empty = unconstrained.
  std::string country;
  /// Set on honest recursive hosts eligible to serve as forwarder upstreams.
  bool upstream_candidate = false;
};

struct ThreatEntry {
  net::IPv4Addr addr;
  intel::ThreatCategory category;
  std::uint32_t reports = 1;
  std::string source;
};

struct OrgEntry {
  net::IPv4Addr addr;  // registered as a /32
  std::string org;
};

struct PopulationSpec {
  int year = 0;
  std::uint64_t scale = 1;

  /// One entry per future R2 (probed host that responds).
  std::vector<HostSpec> hosts;

  std::vector<ThreatEntry> threat_entries;
  std::vector<OrgEntry> org_entries;

  /// Scan parameters derived from Table II at this scale.
  double rate_pps = 0;
  std::uint64_t raw_steps = 0;       // permutation elements to consume
  std::uint32_t cluster_size = 0;    // probe subdomains per zone file
  double zone_load_seconds = 0;

  /// Calibration diagnostics.
  IpfResult joint;
  std::uint64_t reconcile_moved = 0;
  double q2_fan_mean = 0;
};

/// `scale` >= 1: build a 1/scale population. `seed` drives every random
/// choice (content assignment, shuffles) deterministically.
PopulationSpec build_population(const PaperYear& year, std::uint64_t scale,
                                std::uint64_t seed);

}  // namespace orp::core
