#include "core/reconcile.h"

#include <cstdlib>

#include "util/apportion.h"

namespace orp::core {
namespace {

/// Apportion a 2-cell column to a target total; returns the L1 adjustment
/// (total packets added or removed across the cells).
std::uint64_t fit_column(std::uint64_t& a, std::uint64_t& b,
                         std::uint64_t target) {
  const std::vector<std::uint64_t> fitted =
      util::apportion({a, b}, target, /*keep_nonzero=*/true);
  std::uint64_t moved = 0;
  moved += static_cast<std::uint64_t>(
      std::llabs(static_cast<long long>(fitted[0]) - static_cast<long long>(a)));
  moved += static_cast<std::uint64_t>(
      std::llabs(static_cast<long long>(fitted[1]) - static_cast<long long>(b)));
  a = fitted[0];
  b = fitted[1];
  return moved;
}

}  // namespace

std::uint64_t reconcile_flag_table(analysis::FlagTable& table,
                                   const analysis::AnswerBreakdown& target) {
  std::uint64_t moved = 0;
  moved += fit_column(table.bit0.without_answer, table.bit1.without_answer,
                      target.without_answer);
  moved += fit_column(table.bit0.correct, table.bit1.correct, target.correct);
  moved +=
      fit_column(table.bit0.incorrect, table.bit1.incorrect, target.incorrect);
  return moved;
}

std::uint64_t reconcile_rcode_table(analysis::RcodeTable& table,
                                    const analysis::AnswerBreakdown& target) {
  std::vector<std::uint64_t> with(table.rows.size());
  std::vector<std::uint64_t> without(table.rows.size());
  for (std::size_t i = 0; i < table.rows.size(); ++i) {
    with[i] = table.rows[i].with_answer;
    without[i] = table.rows[i].without_answer;
  }
  const auto with_fitted =
      util::apportion(with, target.with_answer(), /*keep_nonzero=*/true);
  const auto without_fitted =
      util::apportion(without, target.without_answer, /*keep_nonzero=*/true);
  std::uint64_t moved = 0;
  for (std::size_t i = 0; i < table.rows.size(); ++i) {
    moved += static_cast<std::uint64_t>(
        std::llabs(static_cast<long long>(with_fitted[i]) -
                   static_cast<long long>(with[i])));
    moved += static_cast<std::uint64_t>(
        std::llabs(static_cast<long long>(without_fitted[i]) -
                   static_cast<long long>(without[i])));
    table.rows[i].with_answer = with_fitted[i];
    table.rows[i].without_answer = without_fitted[i];
  }
  return moved;
}

}  // namespace orp::core
