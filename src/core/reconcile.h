// Marginal reconciliation.
//
// The paper's tables disagree with each other at the margin level:
//   * Table V (2018) sums to 2,752,572 correct answers where Table III says
//     2,752,562, and to 3,642,099 no-answer responses where Table III says
//     3,642,109 (both off by 10);
//   * Table VI's 2013 W row sums to 11,794,580 (+1,698 vs Table III) and its
//     W/O rows are short by 12 (2013) and 14 (2018);
//   * the §IV-B4 sub-counts sum to 487 (RA) and 493 (rcode) out of 494.
// A joint distribution can only be fitted to *consistent* margins, so before
// calibration each table's columns are rescaled (largest-remainder) to the
// authoritative Table III totals. The report records how many packets moved,
// so the adjustment is visible rather than silent.
#pragma once

#include <cstdint>
#include <string>

#include "analysis/answer_analysis.h"
#include "analysis/header_analysis.h"

namespace orp::core {

struct ReconcileReport {
  std::uint64_t flag_packets_moved = 0;
  std::uint64_t rcode_packets_moved = 0;

  std::uint64_t total_moved() const noexcept {
    return flag_packets_moved + rcode_packets_moved;
  }
};

/// Rescale a flag table's three columns (W/O, W_Corr, W_Incorr) so each sums
/// to the corresponding Table III total. Returns packets moved (L1/2).
std::uint64_t reconcile_flag_table(analysis::FlagTable& table,
                                   const analysis::AnswerBreakdown& target);

/// Rescale the rcode table's W and W/O columns to Table III's totals.
std::uint64_t reconcile_rcode_table(analysis::RcodeTable& table,
                                    const analysis::AnswerBreakdown& target);

}  // namespace orp::core
