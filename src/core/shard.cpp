#include "core/shard.h"

namespace orp::core {

namespace {

prober::ScanConfig slice_config(const prober::ScanConfig& campaign,
                                std::uint64_t total_raw,
                                std::uint32_t shard_id,
                                std::uint32_t shard_count) {
  prober::ScanConfig cfg = campaign;
  const ShardSlice slice = shard_slice(total_raw, shard_id, shard_count);
  cfg.first_index = slice.begin;
  cfg.raw_steps = slice.size();
  // Splitting the send rate keeps each shard's slice spanning the same
  // simulated campaign duration as the unsharded scan.
  cfg.rate_pps = campaign.rate_pps / shard_count;
  return cfg;
}

}  // namespace

ShardContext::ShardContext(const PopulationSpec& spec,
                           const InternetConfig& net_config,
                           const InternetPlan& plan, std::uint32_t shard_id,
                           std::uint32_t shard_count,
                           const prober::ScanConfig& scan_config,
                           const obs::ObsConfig& obs_config,
                           obs::ShardBeacon* beacon, bool streaming,
                           bool retain_r2)
    : internet_(spec, net_config, plan, shard_id, shard_count),
      scanner_(internet_.network(), internet_.prober_address(),
               slice_config(scan_config, spec.raw_steps, shard_id,
                            shard_count),
               internet_.scheme(), &internet_.codec_scratch()),
      obs_(obs_config),
      retain_r2_(retain_r2) {
  capture_.attach(internet_.network(), internet_.prober_address());
  capture_.set_retain_payloads(retain_r2_);
  scanner_.set_retain_responses(retain_r2_);
  scanner_.set_rotate_callback([this](std::uint32_t cluster) {
    internet_.auth().load_cluster(cluster);
  });

  // Capture-time classification: the shard's IntelBundle is built from
  // campaign-global inputs only (see internet_builder.cpp), so per-shard
  // lookups are identical to the post-hoc pass over the merged views.
  if (streaming) {
    analyzer_ = std::make_unique<analysis::StreamingAnalyzer>(
        internet_.scheme(), internet_.threats(), internet_.geo(),
        internet_.orgs());
    scanner_.set_r2_sink(analyzer_.get());
  }

  const ShardSlice slice = shard_slice(spec.raw_steps, shard_id, shard_count);
  if (retain_r2_) {
    // Pin steady-state storage from the campaign plan: the hosts planted in
    // this shard's permutation slice bound how many R2 responses the
    // scanner and capture vantage can retain, so the record vectors and
    // payload arena never reallocate mid-scan. (The outstanding-probe map
    // is deliberately *not* pre-sized: its bucket evolution feeds the reap
    // sweep's release order and through it the capture digest — see
    // DESIGN.md.) The streaming path retains nothing, so it skips the
    // reservations entirely.
    std::size_t planted = 0;
    for (const PlannedHost& h : plan.hosts)
      if (slice.contains(h.perm_index)) ++planted;
    // Responders answer roughly once each; x2 covers retries/truncation
    // retransmits, and ~256 wire bytes covers a typical R2.
    capture_.reserve(planted * 2, planted * 256);
    scanner_.reserve_responses(planted * 2);
  }

  obs_.beacon = beacon;
  if (obs_.metrics.enabled()) {
    internet_.loop().set_metrics(&obs_.metrics);
    internet_.network().set_metrics(&obs_.metrics);
  }
  if (beacon != nullptr) internet_.loop().set_progress_beacon(&beacon->events);
  obs::FlowTracer* tracer = obs_.tracer.enabled() ? &obs_.tracer : nullptr;
  if (tracer != nullptr) {
    // Pin the trace arena's allocation budget up front: this shard samples
    // at most slice/sample_every flows, each contributing <= 4 span points
    // (Q1 reuse can add more; the vector doubles gracefully if so).
    const std::size_t flows =
        static_cast<std::size_t>(slice.size() / obs_.tracer.sample_every() + 1);
    tracer->reserve(flows, flows * 4);
  }
  scanner_.set_obs(tracer, beacon);
  internet_.auth().set_obs(tracer);
}

ShardResult ShardContext::run() {
  scanner_.start({});
  internet_.loop().run();

  ShardResult result;
  result.scan = scanner_.stats();
  result.auth = internet_.auth().stats();
  result.clusters = scanner_.clusters().stats();
  result.events_executed = internet_.loop().executed();
  if (retain_r2_)
    result.views =
        analysis::classify_all(scanner_.responses(), internet_.scheme());
  if (obs_.metrics.enabled()) collect_metrics();
  if (analyzer_ != nullptr) result.tables = std::move(analyzer_->tables());
  result.capture = std::move(capture_);
  result.metrics = std::move(obs_.metrics);
  result.traces = std::move(obs_.tracer);
  return result;
}

void ShardContext::collect_metrics() {
  const obs::Builtin& b = obs::builtin();
  obs::Metrics& m = obs_.metrics;

  const net::Network& net = internet_.network();
  m.add(b.net_sent, net.sent());
  m.add(b.net_delivered, net.delivered());
  m.add(b.net_dropped_loss, net.dropped_loss());
  m.add(b.net_dropped_unbound, net.dropped_unbound());
  m.add(b.net_batch_fallback_singles, net.batch_fallback_singles());

  const net::BufferPool& pool = internet_.network().pool();
  m.set_max(b.pool_slabs, pool.slab_count());
  m.set_max(b.pool_slabs_free, pool.free_count());
  m.add(b.pool_recycled, pool.recycled_count());

  m.add(b.capture_packets, capture_.packet_count());
  m.add(b.capture_retained, capture_.retained_count());
  m.add(b.capture_arena_bytes, capture_.arena_bytes());

  const prober::ScanStats& s = scanner_.stats();
  m.add(b.scan_q1_sent, s.q1_sent);
  m.add(b.scan_r2_received, s.r2_received);
  m.add(b.scan_r2_matched, s.r2_matched);
  m.add(b.scan_r2_empty_question, s.r2_empty_question);
  m.add(b.scan_r2_unmatched, s.r2_unmatched);
  m.add(b.scan_timeouts_reaped, s.timeouts_reaped);
  m.add(b.scan_skipped_reserved, s.skipped_reserved);
  m.add(b.scan_skipped_overflow, s.skipped_overflow);
  m.set_max(b.scan_outstanding_peak, scanner_.peak_outstanding());
  m.add(b.scan_template_stamped, s.template_stamped);
  m.add(b.scan_template_fallback, s.template_fallback);
  m.add(b.tcp_tc_seen, s.tc_seen);
  m.add(b.tcp_retries, s.tcp_retries);
  m.add(b.tcp_answers, s.tcp_answers);
  m.add(b.tcp_failures, s.tcp_failures);
  m.add(b.tcp_duplicate_r2, s.tcp_duplicate_r2);
  m.add(b.rate_tokens_granted, scanner_.limiter().granted());
  m.add(b.rate_deferred, scanner_.limiter().deferred());

  for (const auto& host : internet_.hosts()) {
    const resolver::HostStats& hs = host->stats();
    m.add(b.resolver_queries, hs.queries);
    m.add(b.resolver_responses, hs.responses);
    m.add(b.resolver_recursions, hs.recursions);
    m.add(b.resolver_forwarded, hs.forwarded);
    m.add(b.resolver_truncated, hs.truncated);
    m.add(b.resolver_rrl_dropped, hs.rrl_dropped);
    m.add(b.resolver_rrl_slipped, hs.rrl_slipped);
    m.add(b.resolver_template_stamped, hs.template_stamped);
    m.add(b.resolver_template_fallback, hs.template_fallback);
    if (const resolver::IterativeEngine* eng = host->engine()) {
      m.add(b.resolver_cache_bypass, eng->cache_bypasses());
      m.add(b.resolver_upstream_queries, eng->upstream_queries());
    }
  }

  const authns::AuthStats& a = internet_.auth().stats();
  m.add(b.auth_q2_received, a.queries_received);
  m.add(b.auth_r1_sent, a.responses_sent);
  m.add(b.auth_answered, a.answered);
  m.add(b.auth_nxdomain, a.nxdomain);
  m.add(b.auth_refused, a.refused);
  m.add(b.auth_formerr, a.formerr);
  m.add(b.auth_truncated, a.truncated);
  m.add(b.auth_edns_queries, a.edns_queries);
  m.add(b.auth_dnssec_do_queries, a.dnssec_do_queries);
  m.add(b.auth_cluster_loads, a.cluster_loads);
  m.add(b.auth_template_stamped, a.template_stamped);
  m.add(b.auth_template_fallback, a.template_fallback);

  m.add(b.trace_flows_sampled, obs_.tracer.flow_count());
  m.add(b.trace_records, obs_.tracer.records().size());

  if (analyzer_ != nullptr) {
    const analysis::PartialTables& t = analyzer_->tables();
    m.add(b.analysis_r2_classified, t.r2_total);
    m.add(b.analysis_r2_incorrect, t.answers.incorrect);
    m.add(b.analysis_r2_malicious, t.mal_r2);
    m.add(b.analysis_exemplar_updates, t.exemplar_updates);
    m.set_max(b.analysis_table_bytes, t.footprint_bytes());
  }
}

}  // namespace orp::core
