#include "core/shard.h"

namespace orp::core {

namespace {

prober::ScanConfig slice_config(const prober::ScanConfig& campaign,
                                std::uint64_t total_raw,
                                std::uint32_t shard_id,
                                std::uint32_t shard_count) {
  prober::ScanConfig cfg = campaign;
  const ShardSlice slice = shard_slice(total_raw, shard_id, shard_count);
  cfg.first_index = slice.begin;
  cfg.raw_steps = slice.size();
  // Splitting the send rate keeps each shard's slice spanning the same
  // simulated campaign duration as the unsharded scan.
  cfg.rate_pps = campaign.rate_pps / shard_count;
  return cfg;
}

}  // namespace

ShardContext::ShardContext(const PopulationSpec& spec,
                           const InternetConfig& net_config,
                           const InternetPlan& plan, std::uint32_t shard_id,
                           std::uint32_t shard_count,
                           const prober::ScanConfig& scan_config)
    : internet_(spec, net_config, plan, shard_id, shard_count),
      scanner_(internet_.network(), internet_.prober_address(),
               slice_config(scan_config, spec.raw_steps, shard_id,
                            shard_count),
               internet_.scheme(), &internet_.codec_scratch()) {
  capture_.attach(internet_.network(), internet_.prober_address());
  scanner_.set_rotate_callback([this](std::uint32_t cluster) {
    internet_.auth().load_cluster(cluster);
  });
}

ShardResult ShardContext::run() {
  scanner_.start({});
  internet_.loop().run();

  ShardResult result;
  result.scan = scanner_.stats();
  result.auth = internet_.auth().stats();
  result.clusters = scanner_.clusters().stats();
  result.events_executed = internet_.loop().executed();
  result.views =
      analysis::classify_all(scanner_.responses(), internet_.scheme());
  result.capture = std::move(capture_);
  return result;
}

}  // namespace orp::core
