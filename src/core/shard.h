// One shard of a sharded measurement campaign.
//
// A ShardContext owns a complete, isolated simulation stack — its own
// EventLoop, Network (splitmix substream of the campaign seed), hierarchy,
// authoritative server, planted population slice, scanner, and prober-side
// capture tap. Shards share no mutable state, so S of them run on S threads
// with zero synchronization; the pipeline merges their ShardResults
// deterministically afterwards.
//
// Each shard scans the slice [i*N/S, (i+1)*N/S) of the one global ZMap
// permutation at rate_pps/S, so every shard's slice spans the same simulated
// campaign wall-clock as the unsharded scan.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/flow.h"
#include "analysis/streaming.h"
#include "core/internet_builder.h"
#include "net/capture_store.h"
#include "obs/obs.h"
#include "prober/scanner.h"

namespace orp::core {

/// Everything a finished shard hands back to the merge step.
struct ShardResult {
  prober::ScanStats scan;
  authns::AuthStats auth;
  zone::ClusterStats clusters;
  std::uint64_t events_executed = 0;
  /// Classified R2 views — populated only when the campaign retains R2
  /// payloads (retain_r2); the streaming path never materializes them.
  std::vector<analysis::R2View> views;
  /// Streamed partial tables — populated on the streaming path; the
  /// pipeline folds them in shard order with `operator+=`.
  analysis::PartialTables tables;
  net::CaptureStore capture;
  obs::Metrics metrics;     // inert unless the campaign enabled metrics
  obs::FlowTracer traces;   // empty unless the campaign enabled tracing
};

class ShardContext {
 public:
  /// `scan_config` carries the campaign-level scan parameters (seed, total
  /// rate and raw_steps, rotate pause); the context derives this shard's
  /// slice and per-shard rate from them.
  /// `obs_config` selects which instruments this shard carries (all off by
  /// default — instrumentation must be opt-in and must not perturb the event
  /// stream); `beacon`, when given, is the campaign-owned progress slot this
  /// shard publishes into.
  ///
  /// `streaming` attaches a StreamingAnalyzer to the scanner so every R2 is
  /// classified at capture time into this shard's PartialTables; `retain_r2`
  /// keeps R2 payloads in the scanner's R2Store and the capture arena (the
  /// post-hoc / differential-testing path). The default pipeline streams
  /// without retention — O(1) shard memory instead of O(responses).
  ShardContext(const PopulationSpec& spec, const InternetConfig& net_config,
               const InternetPlan& plan, std::uint32_t shard_id,
               std::uint32_t shard_count,
               const prober::ScanConfig& scan_config,
               const obs::ObsConfig& obs_config = {},
               obs::ShardBeacon* beacon = nullptr, bool streaming = true,
               bool retain_r2 = true);

  ShardContext(const ShardContext&) = delete;
  ShardContext& operator=(const ShardContext&) = delete;

  /// Run this shard's event loop to completion and collect its results.
  ShardResult run();

  SimulatedInternet& internet() noexcept { return internet_; }
  prober::Scanner& scanner() noexcept { return scanner_; }

 private:
  /// End-of-run sweep: fold the stack's passive counters (network totals,
  /// pool occupancy, capture arena, scan/auth/resolver stats) into the
  /// shard's Metrics instance through the builtin handles.
  void collect_metrics();

  SimulatedInternet internet_;
  prober::Scanner scanner_;
  net::CaptureStore capture_;
  obs::ShardObs obs_;
  bool retain_r2_ = true;
  /// Capture-time classifier; null when the shard runs post-hoc only.
  std::unique_ptr<analysis::StreamingAnalyzer> analyzer_;
};

}  // namespace orp::core
