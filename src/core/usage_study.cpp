#include "core/usage_study.h"

#include <memory>
#include <unordered_set>
#include <vector>

#include "authns/auth_server.h"
#include "authns/static_auth.h"
#include "dns/builder.h"
#include "net/reserved.h"
#include "resolver/root_tld.h"
#include "resolver/scripted_resolver.h"
#include "util/rng.h"
#include "util/strings.h"
#include "util/table.h"

namespace orp::core {
namespace {

net::IPv4Addr fresh_public_addr(util::Rng& rng,
                                std::unordered_set<std::uint32_t>& used) {
  while (true) {
    const net::IPv4Addr addr(static_cast<std::uint32_t>(rng()));
    if (net::is_reserved(addr)) continue;
    if (used.insert(addr.value()).second) return addr;
  }
}

dns::SoaRdata site_soa(const dns::DnsName& origin) {
  dns::SoaRdata soa;
  soa.mname = origin.child("ns1");
  soa.rname = origin.child("hostmaster");
  return soa;
}

}  // namespace

UsageStudyResult run_usage_study(const UsageStudyConfig& config) {
  UsageStudyResult result;
  util::Rng rng(util::mix64(config.seed ^ 0xd17153a1eULL));
  std::unordered_set<std::uint32_t> used_addrs;

  net::EventLoop loop;
  net::Network network(loop, config.seed);
  network.set_latency({net::SimTime::millis(10), net::SimTime::millis(15)});

  // ---- The "rest of the Internet": popular .net sites ------------------------
  // Reuse the measurement hierarchy builder for roots + the .net TLD, then
  // hang the site catalog off the same TLD server.
  const dns::DnsName measurement_sld =
      dns::DnsName::must_parse("ucfsealresearch.net");
  const net::IPv4Addr measurement_auth(45, 76, 18, 21);
  used_addrs.insert(measurement_auth.value());
  resolver::SimHierarchy hierarchy = resolver::build_hierarchy(
      network, measurement_sld, measurement_sld.child("ns1"),
      measurement_auth, 3);

  struct Site {
    dns::DnsName name;
    net::IPv4Addr true_addr;
    std::unique_ptr<authns::StaticAuthServer> ns;
  };
  std::vector<Site> sites;
  sites.reserve(static_cast<std::size_t>(config.popular_domains));
  for (int k = 0; k < config.popular_domains; ++k) {
    Site site;
    site.name = dns::DnsName::must_parse("site" + std::to_string(k) + ".net");
    site.true_addr = fresh_public_addr(rng, used_addrs);
    const net::IPv4Addr ns_addr = fresh_public_addr(rng, used_addrs);
    zone::Zone zone(site.name, site_soa(site.name));
    zone.add(dns::ResourceRecord{site.name.child("www"), dns::RRType::kA,
                                 dns::RRClass::kIN, 300,
                                 dns::ARdata{site.true_addr}});
    zone.add(dns::ResourceRecord{site.name, dns::RRType::kA, dns::RRClass::kIN,
                                 300, dns::ARdata{site.true_addr}});
    site.ns = std::make_unique<authns::StaticAuthServer>(network, ns_addr,
                                                         std::move(zone));
    hierarchy.net_tld->delegate(resolver::DelegationEntry{
        site.name, site.name.child("ns1"), ns_addr});
    sites.push_back(std::move(site));
  }

  // ---- The resolver pool ------------------------------------------------------
  resolver::EngineConfig engine_config;
  engine_config.hints = hierarchy.hints;

  intel::ThreatDb threats;
  const int n_malicious = std::max(
      config.malicious_fraction > 0 ? 1 : 0,
      static_cast<int>(config.malicious_fraction * config.open_resolvers));
  std::vector<std::unique_ptr<resolver::ResolverHost>> resolvers;
  std::vector<bool> is_malicious(
      static_cast<std::size_t>(config.open_resolvers), false);
  for (int i = 0; i < config.open_resolvers; ++i) {
    resolver::BehaviorProfile profile;
    if (i < n_malicious) {
      // Manipulator: every query lands on its scripted address. Categories
      // follow the Table IX mix (malware-heavy, then phishing).
      profile.answer = resolver::AnswerMode::kFixedIp;
      profile.fixed_answer = fresh_public_addr(rng, used_addrs);
      const auto category =
          rng.uniform01() < 0.52
              ? intel::ThreatCategory::kMalware
              : (rng.uniform01() < 0.75 ? intel::ThreatCategory::kPhishing
                                        : intel::ThreatCategory::kBotnet);
      threats.add_report(profile.fixed_answer, category, "orp-intel",
                         static_cast<std::uint32_t>(1 + rng.bounded(9)));
      is_malicious[static_cast<std::size_t>(i)] = true;
    } else {
      profile.answer = resolver::AnswerMode::kRecursive;
    }
    resolvers.push_back(std::make_unique<resolver::ResolverHost>(
        network, fresh_public_addr(rng, used_addrs), profile, engine_config,
        rng.fork(static_cast<std::uint64_t>(i))()));
  }
  result.resolvers_total = resolvers.size();
  result.resolvers_malicious = static_cast<std::uint64_t>(n_malicious);

  // Market share: clients pick resolvers Zipf-ranked, with the ranking
  // decoupled from maliciousness (a hostile resolver can be popular).
  std::vector<std::size_t> rank(resolvers.size());
  for (std::size_t i = 0; i < rank.size(); ++i) rank[i] = i;
  rng.shuffle(rank);
  const util::ZipfSampler resolver_pick(resolvers.size(),
                                        config.resolver_zipf_s);
  const util::ZipfSampler domain_pick(sites.size(), config.domain_zipf_s);

  // ---- Clients ------------------------------------------------------------------
  result.clients_total = static_cast<std::uint64_t>(config.clients);
  const net::IPv4Addr client_base(172, 100, 0, 0);  // synthetic client block
  (void)client_base;
  std::uint16_t next_client_port = 30000;
  for (int c = 0; c < config.clients; ++c) {
    const std::size_t resolver_idx = rank[resolver_pick(rng)];
    if (is_malicious[resolver_idx]) ++result.clients_on_malicious;
    const net::IPv4Addr resolver_addr = resolvers[resolver_idx]->address();
    const net::IPv4Addr client_addr = fresh_public_addr(rng, used_addrs);

    for (int q = 0; q < config.queries_per_client; ++q) {
      const std::size_t site_idx = domain_pick(rng);
      const dns::DnsName qname = sites[site_idx].name.child("www");
      const net::IPv4Addr expected = sites[site_idx].true_addr;
      const net::Endpoint ep{client_addr, next_client_port++};
      if (next_client_port >= 60000) next_client_port = 30000;
      ++result.queries_total;

      network.bind(ep, [&result, &threats, expected, ep,
                        &network](const net::Datagram& d) {
        network.unbind(ep);
        const auto decoded = dns::decode(d.payload);
        if (!decoded || !decoded->first_a_answer()) return;
        ++result.queries_answered;
        const net::IPv4Addr got = *decoded->first_a_answer();
        if (got == expected) return;
        ++result.queries_misdirected;
        if (const auto cat = threats.dominant_category(got))
          ++result.misdirected_by_category[static_cast<std::size_t>(*cat)];
      });
      network.send(net::Datagram{
          ep, net::Endpoint{resolver_addr, net::kDnsPort},
          dns::encode(dns::make_query(static_cast<std::uint16_t>(q + 1),
                                      qname))});
    }
  }

  loop.run();
  return result;
}

std::string render_usage_study(const UsageStudyResult& r) {
  util::TextTable t({"metric", "value"});
  t.set_align(0, util::Align::kLeft);
  t.add_row({"resolver pool", util::with_commas(r.resolvers_total)});
  t.add_row({"  malicious resolvers",
             util::with_commas(r.resolvers_malicious) + " (" +
                 util::fixed(100.0 * static_cast<double>(r.resolvers_malicious) /
                                 static_cast<double>(r.resolvers_total),
                             2) +
                 "%)"});
  t.add_row({"clients", util::with_commas(r.clients_total)});
  t.add_row({"  configured onto a malicious resolver",
             util::with_commas(r.clients_on_malicious) + " (" +
                 util::fixed(r.client_exposure_rate(), 2) + "%)"});
  t.add_row({"queries issued", util::with_commas(r.queries_total)});
  t.add_row({"queries answered", util::with_commas(r.queries_answered)});
  t.add_row({"queries misdirected",
             util::with_commas(r.queries_misdirected) + " (" +
                 util::fixed(r.misdirection_rate(), 2) + "%)"});
  for (std::size_t i = 0; i < r.misdirected_by_category.size(); ++i) {
    if (r.misdirected_by_category[i] == 0) continue;
    t.add_row({"  -> " + std::string(intel::to_string(
                             static_cast<intel::ThreatCategory>(i))),
               util::with_commas(r.misdirected_by_category[i])});
  }
  return t.render();
}

}  // namespace orp::core
