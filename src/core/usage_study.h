// Usage-impact study — the paper's stated future work (§V): "we need to see
// how malicious open resolvers are actually queried by legitimate users...
// we plan to conduct a follow-up analysis with the annual Day In The Life of
// the Internet (DITL) collection".
//
// DITL data is not publicly available, so we synthesize the equivalent
// workload: a population of clients with Zipf-distributed resolver choices
// issues Zipf-distributed queries for popular domains; the resolver pool
// contains a calibrated fraction of manipulating resolvers (the Table IX
// rate). The study measures how much real user traffic a malicious open
// resolver actually captures — the distinction §V draws between the
// *existence* of malicious resolvers and their *impact*.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "intel/threat_db.h"

namespace orp::core {

struct UsageStudyConfig {
  std::uint64_t seed = 42;
  int popular_domains = 100;     // size of the Zipf site catalog
  int open_resolvers = 300;      // resolver pool clients draw from
  /// Fraction of the pool that manipulates answers. The 2018 calibration:
  /// 26,926 malicious responses among 3,002,183 RA=1 resolvers ~ 0.9%.
  double malicious_fraction = 0.009;
  int clients = 1000;
  int queries_per_client = 20;
  double domain_zipf_s = 1.0;    // popularity skew of the site catalog
  double resolver_zipf_s = 1.2;  // resolver market-share skew
};

struct UsageStudyResult {
  std::uint64_t resolvers_total = 0;
  std::uint64_t resolvers_malicious = 0;
  std::uint64_t clients_total = 0;
  std::uint64_t clients_on_malicious = 0;  // configured to a bad resolver
  std::uint64_t queries_total = 0;
  std::uint64_t queries_answered = 0;
  std::uint64_t queries_misdirected = 0;
  std::array<std::uint64_t, intel::kThreatCategoryCount>
      misdirected_by_category{};

  double misdirection_rate() const noexcept {
    return queries_answered == 0
               ? 0.0
               : 100.0 * static_cast<double>(queries_misdirected) /
                     static_cast<double>(queries_answered);
  }
  double client_exposure_rate() const noexcept {
    return clients_total == 0
               ? 0.0
               : 100.0 * static_cast<double>(clients_on_malicious) /
                     static_cast<double>(clients_total);
  }
};

UsageStudyResult run_usage_study(const UsageStudyConfig& config);

std::string render_usage_study(const UsageStudyResult& r);

}  // namespace orp::core
