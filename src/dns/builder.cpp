#include "dns/builder.h"

namespace orp::dns {

Message make_query(std::uint16_t id, const DnsName& qname, RRType qtype) {
  Message msg;
  msg.header.id = id;
  msg.header.flags.qr = false;
  msg.header.flags.rd = true;
  msg.questions.push_back(Question{qname, qtype, RRClass::kIN});
  return msg;
}

Message make_response(const Message& query) {
  Message msg;
  msg.header.id = query.header.id;
  msg.header.flags.qr = true;
  msg.header.flags.opcode = query.header.flags.opcode;
  msg.header.flags.rd = query.header.flags.rd;
  msg.questions = query.questions;
  return msg;
}

Message make_a_response(const Message& query, net::IPv4Addr addr,
                        std::uint32_t ttl, bool ra, bool aa) {
  Message msg = make_response(query);
  msg.header.flags.ra = ra;
  msg.header.flags.aa = aa;
  msg.header.flags.rcode = Rcode::kNoError;
  if (!query.questions.empty()) {
    msg.answers.push_back(ResourceRecord{query.questions.front().qname,
                                         RRType::kA, RRClass::kIN, ttl,
                                         ARdata{addr}});
  }
  return msg;
}

Message make_error_response(const Message& query, Rcode rcode, bool ra) {
  Message msg = make_response(query);
  msg.header.flags.ra = ra;
  msg.header.flags.rcode = rcode;
  return msg;
}

Message make_referral(
    const Message& query, const DnsName& zone,
    const std::vector<std::pair<DnsName, net::IPv4Addr>>& nameservers,
    std::uint32_t ttl) {
  Message msg = make_response(query);
  msg.header.flags.aa = false;
  msg.header.flags.ra = false;
  for (const auto& [ns_name, ns_addr] : nameservers) {
    msg.authority.push_back(ResourceRecord{zone, RRType::kNS, RRClass::kIN,
                                           ttl, NameRdata{ns_name}});
    msg.additional.push_back(ResourceRecord{ns_name, RRType::kA, RRClass::kIN,
                                            ttl, ARdata{ns_addr}});
  }
  return msg;
}

}  // namespace orp::dns
