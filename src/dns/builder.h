// Convenience constructors for common message shapes.
#pragma once

#include <cstdint>

#include "dns/message.h"

namespace orp::dns {

/// A recursive query, as the prober sends: RD=1, one question.
Message make_query(std::uint16_t id, const DnsName& qname,
                   RRType qtype = RRType::kA);

/// Start a response from a query: copies id, question, RD; sets QR=1.
Message make_response(const Message& query);

/// Response carrying one A answer for the query's qname.
Message make_a_response(const Message& query, net::IPv4Addr addr,
                        std::uint32_t ttl = 300, bool ra = true,
                        bool aa = false);

/// Response with an error rcode and no answer section.
Message make_error_response(const Message& query, Rcode rcode, bool ra = true);

/// A referral response: NS records in authority, glue A records additional.
Message make_referral(const Message& query, const DnsName& zone,
                      const std::vector<std::pair<DnsName, net::IPv4Addr>>&
                          nameservers,
                      std::uint32_t ttl = 172800);

}  // namespace orp::dns
