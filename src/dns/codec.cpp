#include "dns/codec.h"

#include <cstring>
#include <string>

#include "dns/wire_scan.h"

namespace orp::dns {
namespace {

char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

// ---- Writer ---------------------------------------------------------------

/// Upper bound on the uncompressed wire size of `msg` — used to size the
/// output buffer once, up front (compression only shrinks it).
std::size_t wire_size_upper_bound(const Message& msg) {
  const auto rdata_bound = [](const Rdata& rd) -> std::size_t {
    return std::visit(
        [](const auto& data) -> std::size_t {
          using T = std::decay_t<decltype(data)>;
          if constexpr (std::is_same_v<T, ARdata>) {
            return 4;
          } else if constexpr (std::is_same_v<T, NameRdata>) {
            return data.name.wire_length();
          } else if constexpr (std::is_same_v<T, SoaRdata>) {
            return data.mname.wire_length() + data.rname.wire_length() + 20;
          } else if constexpr (std::is_same_v<T, MxRdata>) {
            return 2 + data.exchange.wire_length();
          } else if constexpr (std::is_same_v<T, TxtRdata>) {
            std::size_t n = 0;
            for (const auto& s : data.strings)
              n += 1 + std::min<std::size_t>(s.size(), 255);
            return n;
          } else if constexpr (std::is_same_v<T, AAAARdata>) {
            return 16;
          } else {
            return data.bytes.size();
          }
        },
        rd);
  };
  std::size_t bound = 12;
  for (const auto& q : msg.questions) bound += q.qname.wire_length() + 4;
  const auto section = [&](const std::vector<ResourceRecord>& rrs) {
    for (const auto& rr : rrs)
      bound += rr.name.wire_length() + 10 + rdata_bound(rr.rdata);
  };
  section(msg.answers);
  section(msg.authority);
  section(msg.additional);
  return bound;
}

class Writer {
 public:
  Writer(EncodeBuffer& buf, bool compress)
      : bytes_(buf.out), offsets_(buf.name_offsets), compress_(compress) {
    bytes_.clear();
    offsets_.clear();
    // One up-front block instead of 1->2->4 growth on a cold buffer; typical
    // messages record well under 16 compressible suffixes.
    if (offsets_.capacity() < 16) offsets_.reserve(16);
  }

  void reserve(std::size_t n) { bytes_.reserve(n); }

  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void raw(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  void patch_u16(std::size_t offset, std::uint16_t v) {
    bytes_[offset] = static_cast<std::uint8_t>(v >> 8);
    bytes_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  std::size_t size() const noexcept { return bytes_.size(); }

  /// Write a (possibly compressed) domain name. Compression matches each
  /// remaining label suffix case-insensitively against names already in the
  /// output (via the recorded label-start offsets) instead of keeping
  /// per-suffix key strings: a recorded offset only exists where a lookup
  /// missed, so recorded suffixes are pairwise distinct and a first-match
  /// linear scan reproduces the historical map exactly, byte for byte.
  void name(const DnsName& n) {
    const std::string_view flat = n.flat();
    std::size_t off = 0;
    while (off < flat.size()) {
      if (compress_) {
        const std::string_view suffix = flat.substr(off);
        for (const std::uint16_t candidate : offsets_) {
          if (suffix_matches(candidate, suffix)) {
            u16(static_cast<std::uint16_t>(0xC000 | candidate));
            return;
          }
        }
        // Compression pointers can only address offsets < 2^14.
        if (bytes_.size() < (1u << 14))
          offsets_.push_back(static_cast<std::uint16_t>(bytes_.size()));
      }
      // One label: its length octet and bytes are contiguous in `flat`.
      const auto len = static_cast<std::uint8_t>(flat[off]);
      raw({reinterpret_cast<const std::uint8_t*>(flat.data() + off),
           static_cast<std::size_t>(1 + len)});
      off += 1 + static_cast<std::size_t>(len);
    }
    u8(0);  // root
  }

 private:
  /// Does the name written at output offset `pos` equal (ASCII-ci) the flat
  /// label run `suffix`? Follows compression pointers already present in
  /// the output. Offsets recorded for the name currently being written point
  /// at a label run with no terminator yet (Writer::name records each offset
  /// before writing its label), so a walk may reach the write frontier; that
  /// means the candidate is the unfinished current name and must not match —
  /// the old per-suffix map could never self-match either.
  bool suffix_matches(std::size_t pos, std::string_view suffix) const {
    std::size_t s = 0;
    std::size_t cursor = pos;
    while (true) {
      if (cursor >= bytes_.size()) return false;  // hit the write frontier
      const std::uint8_t len = bytes_[cursor];
      if ((len & 0xC0) == 0xC0) {
        if (cursor + 1 >= bytes_.size()) return false;
        cursor = (static_cast<std::size_t>(len & 0x3F) << 8) |
                 bytes_[cursor + 1];
        continue;
      }
      if (len == 0) return s == suffix.size();
      if (s >= suffix.size() ||
          static_cast<std::uint8_t>(suffix[s]) != len)
        return false;
      for (std::size_t b = 0; b < len; ++b) {
        if (ascii_lower(static_cast<char>(bytes_[cursor + 1 + b])) !=
            ascii_lower(suffix[s + 1 + b]))
          return false;
      }
      cursor += 1 + static_cast<std::size_t>(len);
      s += 1 + static_cast<std::size_t>(len);
    }
  }

  std::vector<std::uint8_t>& bytes_;
  std::vector<std::uint16_t>& offsets_;
  bool compress_;
};

void write_rdata(Writer& w, const ResourceRecord& rr) {
  const std::size_t len_at = w.size();
  w.u16(0);  // rdlength, patched below
  const std::size_t start = w.size();
  std::visit(
      [&](const auto& data) {
        using T = std::decay_t<decltype(data)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          w.u32(data.addr.value());
        } else if constexpr (std::is_same_v<T, NameRdata>) {
          w.name(data.name);
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          w.name(data.mname);
          w.name(data.rname);
          w.u32(data.serial);
          w.u32(data.refresh);
          w.u32(data.retry);
          w.u32(data.expire);
          w.u32(data.minimum);
        } else if constexpr (std::is_same_v<T, MxRdata>) {
          w.u16(data.preference);
          w.name(data.exchange);
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          for (const auto& s : data.strings) {
            const std::size_t n = std::min<std::size_t>(s.size(), 255);
            w.u8(static_cast<std::uint8_t>(n));
            w.raw({reinterpret_cast<const std::uint8_t*>(s.data()), n});
          }
        } else if constexpr (std::is_same_v<T, AAAARdata>) {
          w.raw(data.addr);
        } else if constexpr (std::is_same_v<T, RawRdata>) {
          w.raw(data.bytes);
        }
      },
      rr.rdata);
  w.patch_u16(len_at, static_cast<std::uint16_t>(w.size() - start));
}

void write_record(Writer& w, const ResourceRecord& rr) {
  w.name(rr.name);
  w.u16(static_cast<std::uint16_t>(rr.type));
  w.u16(static_cast<std::uint16_t>(rr.rrclass));
  w.u32(rr.ttl);
  write_rdata(w, rr);
}

std::span<const std::uint8_t> encode_impl(const Message& msg,
                                          EncodeBuffer& buf,
                                          const EncodeOptions& opts,
                                          bool trust_header_counts) {
  Writer w(buf, opts.compress);
  w.reserve(wire_size_upper_bound(msg));
  w.u16(msg.header.id);
  w.u16(msg.header.flags.pack());
  if (trust_header_counts) {
    w.u16(msg.header.qdcount);
    w.u16(msg.header.ancount);
    w.u16(msg.header.nscount);
    w.u16(msg.header.arcount);
  } else {
    w.u16(static_cast<std::uint16_t>(msg.questions.size()));
    w.u16(static_cast<std::uint16_t>(msg.answers.size()));
    w.u16(static_cast<std::uint16_t>(msg.authority.size()));
    w.u16(static_cast<std::uint16_t>(msg.additional.size()));
  }
  for (const auto& q : msg.questions) {
    w.name(q.qname);
    w.u16(static_cast<std::uint16_t>(q.qtype));
    w.u16(static_cast<std::uint16_t>(q.qclass));
  }
  for (const auto& rr : msg.answers) write_record(w, rr);
  for (const auto& rr : msg.authority) write_record(w, rr);
  for (const auto& rr : msg.additional) write_record(w, rr);
  return buf.out;
}

// ---- Reader ---------------------------------------------------------------

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> wire) : wire_(wire) {}

  bool u8(std::uint8_t& out) {
    if (pos_ + 1 > wire_.size()) return false;
    out = wire_[pos_++];
    return true;
  }
  bool u16(std::uint16_t& out) {
    if (pos_ + 2 > wire_.size()) return false;
    out = static_cast<std::uint16_t>((wire_[pos_] << 8) | wire_[pos_ + 1]);
    pos_ += 2;
    return true;
  }
  bool u32(std::uint32_t& out) {
    std::uint16_t hi = 0;
    std::uint16_t lo = 0;
    if (!u16(hi) || !u16(lo)) return false;
    out = (static_cast<std::uint32_t>(hi) << 16) | lo;
    return true;
  }
  bool bytes(std::size_t n, std::vector<std::uint8_t>& out) {
    if (pos_ + n > wire_.size()) return false;
    out.assign(wire_.begin() + static_cast<std::ptrdiff_t>(pos_),
               wire_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }

  std::size_t pos() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return wire_.size() - pos_; }

  /// Decode a possibly-compressed name starting at the cursor.
  /// On success the cursor lands after the name's in-place representation.
  /// Validation (bounds, pointers, label octets, length caps) lives in
  /// wire::scan_name, shared with DecodeView; the copy pass below runs only
  /// over an accepted name, into a single pre-sized flat buffer.
  bool name(DnsName& out, DecodeError& err) {
    const wire::NameScan scan = wire::scan_name(wire_, pos_);
    if (!scan.ok) {
      err = scan.error;
      return false;
    }
    out = DnsName();
    out.reserve_flat(static_cast<std::size_t>(scan.name_len) - 1);
    wire::for_each_label(wire_, pos_,
                         [&out](const std::uint8_t* data, std::uint8_t len) {
                           out.append_label(
                               {reinterpret_cast<const char*>(data), len});
                         });
    pos_ = scan.end;
    return true;
  }

 private:
  std::span<const std::uint8_t> wire_;
  std::size_t pos_ = 0;
};

bool read_record(Reader& r, ResourceRecord& rr, DecodeError& err) {
  if (!r.name(rr.name, err)) return false;
  std::uint16_t type = 0;
  std::uint16_t rrclass = 0;
  std::uint32_t ttl = 0;
  std::uint16_t rdlength = 0;
  if (!r.u16(type) || !r.u16(rrclass) || !r.u32(ttl) || !r.u16(rdlength)) {
    err = DecodeError::kTruncatedRecord;
    return false;
  }
  rr.type = static_cast<RRType>(type);
  rr.rrclass = static_cast<RRClass>(rrclass);
  rr.ttl = ttl;
  if (rdlength > r.remaining()) {
    err = DecodeError::kBadRdataLength;
    return false;
  }
  const std::size_t rdata_end = r.pos() + rdlength;

  switch (rr.type) {
    case RRType::kA: {
      if (rdlength != 4) {
        err = DecodeError::kBadRdataLength;
        return false;
      }
      std::uint32_t v = 0;
      r.u32(v);
      rr.rdata = ARdata{net::IPv4Addr(v)};
      return true;
    }
    case RRType::kNS:
    case RRType::kCNAME:
    case RRType::kPTR: {
      NameRdata data;
      if (!r.name(data.name, err)) return false;
      if (r.pos() != rdata_end) {
        err = DecodeError::kBadRdataLength;
        return false;
      }
      rr.rdata = std::move(data);
      return true;
    }
    case RRType::kSOA: {
      SoaRdata data;
      if (!r.name(data.mname, err) || !r.name(data.rname, err)) return false;
      if (!r.u32(data.serial) || !r.u32(data.refresh) || !r.u32(data.retry) ||
          !r.u32(data.expire) || !r.u32(data.minimum)) {
        err = DecodeError::kTruncatedRecord;
        return false;
      }
      if (r.pos() != rdata_end) {
        err = DecodeError::kBadRdataLength;
        return false;
      }
      rr.rdata = std::move(data);
      return true;
    }
    case RRType::kMX: {
      MxRdata data;
      if (!r.u16(data.preference)) {
        err = DecodeError::kTruncatedRecord;
        return false;
      }
      if (!r.name(data.exchange, err)) return false;
      if (r.pos() != rdata_end) {
        err = DecodeError::kBadRdataLength;
        return false;
      }
      rr.rdata = std::move(data);
      return true;
    }
    case RRType::kTXT: {
      TxtRdata data;
      while (r.pos() < rdata_end) {
        std::uint8_t len = 0;
        if (!r.u8(len) || r.pos() + len > rdata_end) {
          err = DecodeError::kBadRdataLength;
          return false;
        }
        std::vector<std::uint8_t> chunk;
        r.bytes(len, chunk);
        data.strings.emplace_back(chunk.begin(), chunk.end());
      }
      rr.rdata = std::move(data);
      return true;
    }
    case RRType::kAAAA: {
      if (rdlength != 16) {
        err = DecodeError::kBadRdataLength;
        return false;
      }
      AAAARdata data;
      std::vector<std::uint8_t> chunk;
      r.bytes(16, chunk);
      std::memcpy(data.addr.data(), chunk.data(), 16);
      rr.rdata = data;
      return true;
    }
    default: {
      RawRdata data;
      data.type = type;
      if (!r.bytes(rdlength, data.bytes)) {
        err = DecodeError::kTruncatedRecord;
        return false;
      }
      rr.rdata = std::move(data);
      return true;
    }
  }
}

}  // namespace

std::string_view to_string(DecodeError e) noexcept {
  switch (e) {
    case DecodeError::kTruncatedHeader: return "truncated header";
    case DecodeError::kTruncatedName: return "truncated name";
    case DecodeError::kLabelTooLong: return "label too long";
    case DecodeError::kBadLabel: return "bad label octet";
    case DecodeError::kNameTooLong: return "name too long";
    case DecodeError::kCompressionLoop: return "compression loop";
    case DecodeError::kForwardPointer: return "forward compression pointer";
    case DecodeError::kTruncatedQuestion: return "truncated question";
    case DecodeError::kTruncatedRecord: return "truncated record";
    case DecodeError::kBadRdataLength: return "bad rdata length";
    case DecodeError::kTrailingGarbage: return "trailing garbage";
  }
  return "unknown decode error";
}

DecodeResult decode(std::span<const std::uint8_t> wire) {
  Reader r(wire);
  Message msg;
  std::uint16_t flags_raw = 0;
  if (!r.u16(msg.header.id) || !r.u16(flags_raw) ||
      !r.u16(msg.header.qdcount) || !r.u16(msg.header.ancount) ||
      !r.u16(msg.header.nscount) || !r.u16(msg.header.arcount)) {
    return DecodeError::kTruncatedHeader;
  }
  msg.header.flags = Flags::unpack(flags_raw);

  DecodeError err{};
  for (std::uint16_t i = 0; i < msg.header.qdcount; ++i) {
    Question q;
    if (!r.name(q.qname, err)) return err;
    std::uint16_t qtype = 0;
    std::uint16_t qclass = 0;
    if (!r.u16(qtype) || !r.u16(qclass))
      return DecodeError::kTruncatedQuestion;
    q.qtype = static_cast<RRType>(qtype);
    q.qclass = static_cast<RRClass>(qclass);
    msg.questions.push_back(std::move(q));
  }
  auto read_section = [&](std::uint16_t count,
                          std::vector<ResourceRecord>& out) -> bool {
    for (std::uint16_t i = 0; i < count; ++i) {
      ResourceRecord rr;
      if (!read_record(r, rr, err)) return false;
      out.push_back(std::move(rr));
    }
    return true;
  };
  if (!read_section(msg.header.ancount, msg.answers)) return err;
  if (!read_section(msg.header.nscount, msg.authority)) return err;
  if (!read_section(msg.header.arcount, msg.additional)) return err;
  return msg;
}

PartialDecode decode_partial(std::span<const std::uint8_t> wire) {
  PartialDecode out;
  Reader r(wire);
  Message& msg = out.message;
  std::uint16_t flags_raw = 0;
  if (!r.u16(msg.header.id) || !r.u16(flags_raw) ||
      !r.u16(msg.header.qdcount) || !r.u16(msg.header.ancount) ||
      !r.u16(msg.header.nscount) || !r.u16(msg.header.arcount)) {
    out.failed_at = DecodeStage::kHeader;
    out.error = DecodeError::kTruncatedHeader;
    return out;
  }
  msg.header.flags = Flags::unpack(flags_raw);

  DecodeError err{};
  for (std::uint16_t i = 0; i < msg.header.qdcount; ++i) {
    Question q;
    if (!r.name(q.qname, err)) {
      out.failed_at = DecodeStage::kQuestion;
      out.error = err;
      return out;
    }
    std::uint16_t qtype = 0;
    std::uint16_t qclass = 0;
    if (!r.u16(qtype) || !r.u16(qclass)) {
      out.failed_at = DecodeStage::kQuestion;
      out.error = DecodeError::kTruncatedQuestion;
      return out;
    }
    q.qtype = static_cast<RRType>(qtype);
    q.qclass = static_cast<RRClass>(qclass);
    msg.questions.push_back(std::move(q));
  }
  auto read_section = [&](std::uint16_t count, std::vector<ResourceRecord>& rrs,
                          DecodeStage stage) -> bool {
    for (std::uint16_t i = 0; i < count; ++i) {
      ResourceRecord rr;
      if (!read_record(r, rr, err)) {
        out.failed_at = stage;
        out.error = err;
        return false;
      }
      rrs.push_back(std::move(rr));
    }
    return true;
  };
  if (!read_section(msg.header.ancount, msg.answers, DecodeStage::kAnswer))
    return out;
  if (!read_section(msg.header.nscount, msg.authority,
                    DecodeStage::kAuthority))
    return out;
  if (!read_section(msg.header.arcount, msg.additional,
                    DecodeStage::kAdditional))
    return out;
  return out;
}

std::span<const std::uint8_t> encode_into(const Message& msg, EncodeBuffer& buf,
                                          const EncodeOptions& opts) {
  return encode_impl(msg, buf, opts, /*trust_header_counts=*/false);
}

std::span<const std::uint8_t> encode_raw_counts_into(const Message& msg,
                                                     EncodeBuffer& buf,
                                                     const EncodeOptions& opts) {
  return encode_impl(msg, buf, opts, /*trust_header_counts=*/true);
}

std::vector<std::uint8_t> encode(const Message& msg, const EncodeOptions& opts) {
  EncodeBuffer buf;
  encode_impl(msg, buf, opts, /*trust_header_counts=*/false);
  return std::move(buf.out);
}

std::vector<std::uint8_t> encode_raw_counts(const Message& msg,
                                            const EncodeOptions& opts) {
  EncodeBuffer buf;
  encode_impl(msg, buf, opts, /*trust_header_counts=*/true);
  return std::move(buf.out);
}

std::vector<std::uint8_t> encode_name(const DnsName& name) {
  EncodeBuffer buf;
  Writer w(buf, /*compress=*/false);
  w.reserve(name.wire_length());
  w.name(name);
  return std::move(buf.out);
}

}  // namespace orp::dns
