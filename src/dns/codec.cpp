#include "dns/codec.h"

#include <cstring>
#include <map>
#include <string>

namespace orp::dns {
namespace {

// ---- Writer ---------------------------------------------------------------

class Writer {
 public:
  explicit Writer(bool compress) : compress_(compress) {}

  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) {
    bytes_.push_back(static_cast<std::uint8_t>(v >> 8));
    bytes_.push_back(static_cast<std::uint8_t>(v));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v >> 16));
    u16(static_cast<std::uint16_t>(v));
  }
  void raw(std::span<const std::uint8_t> data) {
    bytes_.insert(bytes_.end(), data.begin(), data.end());
  }

  void patch_u16(std::size_t offset, std::uint16_t v) {
    bytes_[offset] = static_cast<std::uint8_t>(v >> 8);
    bytes_[offset + 1] = static_cast<std::uint8_t>(v);
  }

  std::size_t size() const noexcept { return bytes_.size(); }

  /// Write a (possibly compressed) domain name.
  void name(const DnsName& n) {
    const auto& labels = n.labels();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      // Key: the remaining suffix starting at label i, lower-cased.
      std::string key;
      for (std::size_t j = i; j < labels.size(); ++j) {
        for (char c : labels[j])
          key.push_back(
              (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c);
        key.push_back('.');
      }
      if (compress_) {
        if (const auto it = offsets_.find(key); it != offsets_.end()) {
          u16(static_cast<std::uint16_t>(0xC000 | it->second));
          return;
        }
        // Compression pointers can only address offsets < 2^14.
        if (bytes_.size() < (1u << 14)) offsets_.emplace(key, bytes_.size());
      }
      u8(static_cast<std::uint8_t>(labels[i].size()));
      raw({reinterpret_cast<const std::uint8_t*>(labels[i].data()),
           labels[i].size()});
    }
    u8(0);  // root
  }

  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  bool compress_;
  std::vector<std::uint8_t> bytes_;
  std::map<std::string, std::size_t> offsets_;
};

void write_rdata(Writer& w, const ResourceRecord& rr) {
  const std::size_t len_at = w.size();
  w.u16(0);  // rdlength, patched below
  const std::size_t start = w.size();
  std::visit(
      [&](const auto& data) {
        using T = std::decay_t<decltype(data)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          w.u32(data.addr.value());
        } else if constexpr (std::is_same_v<T, NameRdata>) {
          w.name(data.name);
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          w.name(data.mname);
          w.name(data.rname);
          w.u32(data.serial);
          w.u32(data.refresh);
          w.u32(data.retry);
          w.u32(data.expire);
          w.u32(data.minimum);
        } else if constexpr (std::is_same_v<T, MxRdata>) {
          w.u16(data.preference);
          w.name(data.exchange);
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          for (const auto& s : data.strings) {
            const std::size_t n = std::min<std::size_t>(s.size(), 255);
            w.u8(static_cast<std::uint8_t>(n));
            w.raw({reinterpret_cast<const std::uint8_t*>(s.data()), n});
          }
        } else if constexpr (std::is_same_v<T, AAAARdata>) {
          w.raw(data.addr);
        } else if constexpr (std::is_same_v<T, RawRdata>) {
          w.raw(data.bytes);
        }
      },
      rr.rdata);
  w.patch_u16(len_at, static_cast<std::uint16_t>(w.size() - start));
}

void write_record(Writer& w, const ResourceRecord& rr) {
  w.name(rr.name);
  w.u16(static_cast<std::uint16_t>(rr.type));
  w.u16(static_cast<std::uint16_t>(rr.rrclass));
  w.u32(rr.ttl);
  write_rdata(w, rr);
}

std::vector<std::uint8_t> encode_impl(const Message& msg,
                                      const EncodeOptions& opts,
                                      bool trust_header_counts) {
  Writer w(opts.compress);
  w.u16(msg.header.id);
  w.u16(msg.header.flags.pack());
  if (trust_header_counts) {
    w.u16(msg.header.qdcount);
    w.u16(msg.header.ancount);
    w.u16(msg.header.nscount);
    w.u16(msg.header.arcount);
  } else {
    w.u16(static_cast<std::uint16_t>(msg.questions.size()));
    w.u16(static_cast<std::uint16_t>(msg.answers.size()));
    w.u16(static_cast<std::uint16_t>(msg.authority.size()));
    w.u16(static_cast<std::uint16_t>(msg.additional.size()));
  }
  for (const auto& q : msg.questions) {
    w.name(q.qname);
    w.u16(static_cast<std::uint16_t>(q.qtype));
    w.u16(static_cast<std::uint16_t>(q.qclass));
  }
  for (const auto& rr : msg.answers) write_record(w, rr);
  for (const auto& rr : msg.authority) write_record(w, rr);
  for (const auto& rr : msg.additional) write_record(w, rr);
  return w.take();
}

// ---- Reader ---------------------------------------------------------------

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> wire) : wire_(wire) {}

  bool u8(std::uint8_t& out) {
    if (pos_ + 1 > wire_.size()) return false;
    out = wire_[pos_++];
    return true;
  }
  bool u16(std::uint16_t& out) {
    if (pos_ + 2 > wire_.size()) return false;
    out = static_cast<std::uint16_t>((wire_[pos_] << 8) | wire_[pos_ + 1]);
    pos_ += 2;
    return true;
  }
  bool u32(std::uint32_t& out) {
    std::uint16_t hi = 0;
    std::uint16_t lo = 0;
    if (!u16(hi) || !u16(lo)) return false;
    out = (static_cast<std::uint32_t>(hi) << 16) | lo;
    return true;
  }
  bool bytes(std::size_t n, std::vector<std::uint8_t>& out) {
    if (pos_ + n > wire_.size()) return false;
    out.assign(wire_.begin() + static_cast<std::ptrdiff_t>(pos_),
               wire_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return true;
  }

  std::size_t pos() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return wire_.size() - pos_; }

  /// Decode a possibly-compressed name starting at the cursor.
  /// On success the cursor lands after the name's in-place representation.
  bool name(DnsName& out, DecodeError& err) {
    std::vector<std::string> labels;
    std::size_t cursor = pos_;
    std::size_t in_place_end = 0;  // set at the first pointer jump
    std::size_t total_len = 1;
    int jumps = 0;
    while (true) {
      if (cursor >= wire_.size()) {
        err = DecodeError::kTruncatedName;
        return false;
      }
      const std::uint8_t len = wire_[cursor];
      if ((len & 0xC0) == 0xC0) {
        if (cursor + 1 >= wire_.size()) {
          err = DecodeError::kTruncatedName;
          return false;
        }
        const std::size_t target =
            (static_cast<std::size_t>(len & 0x3F) << 8) | wire_[cursor + 1];
        if (in_place_end == 0) in_place_end = cursor + 2;
        // RFC 1035 pointers must point backwards; forward pointers enable
        // loops and are rejected (also catches self-pointing).
        if (target >= cursor) {
          err = DecodeError::kForwardPointer;
          return false;
        }
        if (++jumps > 64) {
          err = DecodeError::kCompressionLoop;
          return false;
        }
        cursor = target;
        continue;
      }
      if ((len & 0xC0) != 0) {  // 0x40/0x80 label types are unsupported
        err = DecodeError::kLabelTooLong;
        return false;
      }
      if (len == 0) {
        if (in_place_end == 0) in_place_end = cursor + 1;
        break;
      }
      if (cursor + 1 + len > wire_.size()) {
        err = DecodeError::kTruncatedName;
        return false;
      }
      total_len += 1 + len;
      if (total_len > kMaxNameLength) {
        err = DecodeError::kNameTooLong;
        return false;
      }
      // Wire labels may carry arbitrary octets, but a NUL inside a label
      // would make the parsed name lie to every C-string consumer; treat it
      // as malformed (the DnsName invariant, enforced here rather than by a
      // throw out of the hot decode path).
      for (std::size_t b = 0; b < len; ++b) {
        if (wire_[cursor + 1 + b] == 0) {
          err = DecodeError::kBadLabel;
          return false;
        }
      }
      labels.emplace_back(
          reinterpret_cast<const char*>(wire_.data() + cursor + 1), len);
      cursor += 1 + static_cast<std::size_t>(len);
    }
    pos_ = in_place_end;
    out = DnsName(std::move(labels));
    return true;
  }

 private:
  std::span<const std::uint8_t> wire_;
  std::size_t pos_ = 0;
};

bool read_record(Reader& r, ResourceRecord& rr, DecodeError& err) {
  if (!r.name(rr.name, err)) return false;
  std::uint16_t type = 0;
  std::uint16_t rrclass = 0;
  std::uint32_t ttl = 0;
  std::uint16_t rdlength = 0;
  if (!r.u16(type) || !r.u16(rrclass) || !r.u32(ttl) || !r.u16(rdlength)) {
    err = DecodeError::kTruncatedRecord;
    return false;
  }
  rr.type = static_cast<RRType>(type);
  rr.rrclass = static_cast<RRClass>(rrclass);
  rr.ttl = ttl;
  if (rdlength > r.remaining()) {
    err = DecodeError::kBadRdataLength;
    return false;
  }
  const std::size_t rdata_end = r.pos() + rdlength;

  switch (rr.type) {
    case RRType::kA: {
      if (rdlength != 4) {
        err = DecodeError::kBadRdataLength;
        return false;
      }
      std::uint32_t v = 0;
      r.u32(v);
      rr.rdata = ARdata{net::IPv4Addr(v)};
      return true;
    }
    case RRType::kNS:
    case RRType::kCNAME:
    case RRType::kPTR: {
      NameRdata data;
      if (!r.name(data.name, err)) return false;
      if (r.pos() != rdata_end) {
        err = DecodeError::kBadRdataLength;
        return false;
      }
      rr.rdata = std::move(data);
      return true;
    }
    case RRType::kSOA: {
      SoaRdata data;
      if (!r.name(data.mname, err) || !r.name(data.rname, err)) return false;
      if (!r.u32(data.serial) || !r.u32(data.refresh) || !r.u32(data.retry) ||
          !r.u32(data.expire) || !r.u32(data.minimum)) {
        err = DecodeError::kTruncatedRecord;
        return false;
      }
      if (r.pos() != rdata_end) {
        err = DecodeError::kBadRdataLength;
        return false;
      }
      rr.rdata = std::move(data);
      return true;
    }
    case RRType::kMX: {
      MxRdata data;
      if (!r.u16(data.preference)) {
        err = DecodeError::kTruncatedRecord;
        return false;
      }
      if (!r.name(data.exchange, err)) return false;
      if (r.pos() != rdata_end) {
        err = DecodeError::kBadRdataLength;
        return false;
      }
      rr.rdata = std::move(data);
      return true;
    }
    case RRType::kTXT: {
      TxtRdata data;
      while (r.pos() < rdata_end) {
        std::uint8_t len = 0;
        if (!r.u8(len) || r.pos() + len > rdata_end) {
          err = DecodeError::kBadRdataLength;
          return false;
        }
        std::vector<std::uint8_t> chunk;
        r.bytes(len, chunk);
        data.strings.emplace_back(chunk.begin(), chunk.end());
      }
      rr.rdata = std::move(data);
      return true;
    }
    case RRType::kAAAA: {
      if (rdlength != 16) {
        err = DecodeError::kBadRdataLength;
        return false;
      }
      AAAARdata data;
      std::vector<std::uint8_t> chunk;
      r.bytes(16, chunk);
      std::memcpy(data.addr.data(), chunk.data(), 16);
      rr.rdata = data;
      return true;
    }
    default: {
      RawRdata data;
      data.type = type;
      if (!r.bytes(rdlength, data.bytes)) {
        err = DecodeError::kTruncatedRecord;
        return false;
      }
      rr.rdata = std::move(data);
      return true;
    }
  }
}

}  // namespace

std::string_view to_string(DecodeError e) noexcept {
  switch (e) {
    case DecodeError::kTruncatedHeader: return "truncated header";
    case DecodeError::kTruncatedName: return "truncated name";
    case DecodeError::kLabelTooLong: return "label too long";
    case DecodeError::kBadLabel: return "bad label octet";
    case DecodeError::kNameTooLong: return "name too long";
    case DecodeError::kCompressionLoop: return "compression loop";
    case DecodeError::kForwardPointer: return "forward compression pointer";
    case DecodeError::kTruncatedQuestion: return "truncated question";
    case DecodeError::kTruncatedRecord: return "truncated record";
    case DecodeError::kBadRdataLength: return "bad rdata length";
    case DecodeError::kTrailingGarbage: return "trailing garbage";
  }
  return "unknown decode error";
}

DecodeResult decode(std::span<const std::uint8_t> wire) {
  Reader r(wire);
  Message msg;
  std::uint16_t flags_raw = 0;
  if (!r.u16(msg.header.id) || !r.u16(flags_raw) ||
      !r.u16(msg.header.qdcount) || !r.u16(msg.header.ancount) ||
      !r.u16(msg.header.nscount) || !r.u16(msg.header.arcount)) {
    return DecodeError::kTruncatedHeader;
  }
  msg.header.flags = Flags::unpack(flags_raw);

  DecodeError err{};
  for (std::uint16_t i = 0; i < msg.header.qdcount; ++i) {
    Question q;
    if (!r.name(q.qname, err)) return err;
    std::uint16_t qtype = 0;
    std::uint16_t qclass = 0;
    if (!r.u16(qtype) || !r.u16(qclass))
      return DecodeError::kTruncatedQuestion;
    q.qtype = static_cast<RRType>(qtype);
    q.qclass = static_cast<RRClass>(qclass);
    msg.questions.push_back(std::move(q));
  }
  auto read_section = [&](std::uint16_t count,
                          std::vector<ResourceRecord>& out) -> bool {
    for (std::uint16_t i = 0; i < count; ++i) {
      ResourceRecord rr;
      if (!read_record(r, rr, err)) return false;
      out.push_back(std::move(rr));
    }
    return true;
  };
  if (!read_section(msg.header.ancount, msg.answers)) return err;
  if (!read_section(msg.header.nscount, msg.authority)) return err;
  if (!read_section(msg.header.arcount, msg.additional)) return err;
  return msg;
}

PartialDecode decode_partial(std::span<const std::uint8_t> wire) {
  PartialDecode out;
  Reader r(wire);
  Message& msg = out.message;
  std::uint16_t flags_raw = 0;
  if (!r.u16(msg.header.id) || !r.u16(flags_raw) ||
      !r.u16(msg.header.qdcount) || !r.u16(msg.header.ancount) ||
      !r.u16(msg.header.nscount) || !r.u16(msg.header.arcount)) {
    out.failed_at = DecodeStage::kHeader;
    out.error = DecodeError::kTruncatedHeader;
    return out;
  }
  msg.header.flags = Flags::unpack(flags_raw);

  DecodeError err{};
  for (std::uint16_t i = 0; i < msg.header.qdcount; ++i) {
    Question q;
    if (!r.name(q.qname, err)) {
      out.failed_at = DecodeStage::kQuestion;
      out.error = err;
      return out;
    }
    std::uint16_t qtype = 0;
    std::uint16_t qclass = 0;
    if (!r.u16(qtype) || !r.u16(qclass)) {
      out.failed_at = DecodeStage::kQuestion;
      out.error = DecodeError::kTruncatedQuestion;
      return out;
    }
    q.qtype = static_cast<RRType>(qtype);
    q.qclass = static_cast<RRClass>(qclass);
    msg.questions.push_back(std::move(q));
  }
  auto read_section = [&](std::uint16_t count, std::vector<ResourceRecord>& rrs,
                          DecodeStage stage) -> bool {
    for (std::uint16_t i = 0; i < count; ++i) {
      ResourceRecord rr;
      if (!read_record(r, rr, err)) {
        out.failed_at = stage;
        out.error = err;
        return false;
      }
      rrs.push_back(std::move(rr));
    }
    return true;
  };
  if (!read_section(msg.header.ancount, msg.answers, DecodeStage::kAnswer))
    return out;
  if (!read_section(msg.header.nscount, msg.authority,
                    DecodeStage::kAuthority))
    return out;
  if (!read_section(msg.header.arcount, msg.additional,
                    DecodeStage::kAdditional))
    return out;
  return out;
}

std::vector<std::uint8_t> encode(const Message& msg, const EncodeOptions& opts) {
  return encode_impl(msg, opts, /*trust_header_counts=*/false);
}

std::vector<std::uint8_t> encode_raw_counts(const Message& msg,
                                            const EncodeOptions& opts) {
  return encode_impl(msg, opts, /*trust_header_counts=*/true);
}

std::vector<std::uint8_t> encode_name(const DnsName& name) {
  Writer w(/*compress=*/false);
  w.name(name);
  return w.take();
}

}  // namespace orp::dns
