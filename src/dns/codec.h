// DNS wire-format encoder/decoder (RFC 1035 §4.1), including message
// compression (§4.1.4).
//
// The decoder is written the way the paper's libpcap tooling had to be:
// fully bounds-checked, loop-protected against malicious compression
// pointers, and reporting *why* a packet failed to decode — the 2013 corpus
// contained 8,764 responses whose answer sections could not be parsed, and
// the analysis layer treats "undecodable" as a first-class behavioral
// category (Table VII row "N/A").
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "dns/message.h"
#include "util/expected.h"

namespace orp::dns {

enum class DecodeError {
  kTruncatedHeader,
  kTruncatedName,
  kLabelTooLong,
  kBadLabel,  // NUL octet inside a label (our names are C-string-safe)
  kNameTooLong,
  kCompressionLoop,
  kForwardPointer,
  kTruncatedQuestion,
  kTruncatedRecord,
  kBadRdataLength,
  kTrailingGarbage,
};

std::string_view to_string(DecodeError e) noexcept;

using DecodeResult = util::Expected<Message, DecodeError>;

/// Decode a full DNS message from wire bytes.
DecodeResult decode(std::span<const std::uint8_t> wire);

/// How far a partial decode got before failing.
enum class DecodeStage {
  kComplete,   // no failure
  kHeader,     // could not even read the 12-byte header
  kQuestion,   // failed inside the question section
  kAnswer,     // failed inside the answer section
  kAuthority,
  kAdditional,
};

/// Best-effort decode: parses as far as possible and reports where parsing
/// stopped. This mirrors what the paper's libpcap tooling experienced on the
/// 2013 corpus — 8,764 responses whose header and question parsed fine but
/// whose answer bytes did not ("N/A" in Table VII). `message` holds every
/// section decoded before the failure point.
struct PartialDecode {
  Message message;
  DecodeStage failed_at = DecodeStage::kComplete;
  std::optional<DecodeError> error;

  bool complete() const noexcept { return failed_at == DecodeStage::kComplete; }
};

PartialDecode decode_partial(std::span<const std::uint8_t> wire);

/// Encoding options.
struct EncodeOptions {
  /// Use RFC 1035 name compression for owner names and rdata names.
  bool compress = true;
};

/// Reusable encoder scratch: the output bytes and the compression writer's
/// table of name offsets (label starts < 2^14 usable as pointer targets).
/// Owned by a long-lived single-threaded context — one per ShardContext on
/// the probe path, one per SimulatedInternet for the simulated hosts — so
/// steady-state encodes reuse capacity and allocate nothing.
struct EncodeBuffer {
  std::vector<std::uint8_t> out;
  std::vector<std::uint16_t> name_offsets;
};

/// Encode into `buf`, clearing it first; the returned span aliases
/// `buf.out` and is valid until the next use of `buf`.
std::span<const std::uint8_t> encode_into(const Message& msg,
                                          EncodeBuffer& buf,
                                          const EncodeOptions& opts = {});

/// encode_raw_counts (below), scratch-buffer form.
std::span<const std::uint8_t> encode_raw_counts_into(
    const Message& msg, EncodeBuffer& buf, const EncodeOptions& opts = {});

/// Encode a message to wire bytes. Section counts in the emitted header are
/// taken from the actual section sizes, not `header.qdcount` etc. — except
/// that deliberately inconsistent counts can be forced via
/// `Message::header` when `trust_header_counts` is set (used to synthesize
/// the malformed packets observed in the wild).
std::vector<std::uint8_t> encode(const Message& msg,
                                 const EncodeOptions& opts = {});

/// Encode with header counts taken verbatim from msg.header — this is how
/// the deviant-resolver profiles emit packets whose counts lie about their
/// contents (a real-world failure mode the 2013 parser hit).
std::vector<std::uint8_t> encode_raw_counts(const Message& msg,
                                            const EncodeOptions& opts = {});

/// Encode just a name in uncompressed wire format (for tests and rdata).
std::vector<std::uint8_t> encode_name(const DnsName& name);

}  // namespace orp::dns
