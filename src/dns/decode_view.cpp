#include "dns/decode_view.h"

#include "dns/wire_scan.h"

namespace orp::dns {
namespace {

char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

/// Validate one resource record at `pos`, mirroring read_record in
/// codec.cpp rule for rule (including error precedence). On success `pos`
/// lands just past the record; `out`, when non-null, receives the views.
bool scan_record(std::span<const std::uint8_t> wire, std::size_t& pos,
                 AnswerRecordView* out, DecodeError& err) {
  const wire::NameScan owner = wire::scan_name(wire, pos);
  if (!owner.ok) {
    err = owner.error;
    return false;
  }
  const NameView owner_view(wire, pos, owner.labels, owner.name_len);
  pos = owner.end;

  if (pos + 10 > wire.size()) {  // type, class, ttl, rdlength
    err = DecodeError::kTruncatedRecord;
    return false;
  }
  const auto u16_at = [&wire](std::size_t p) {
    return static_cast<std::uint16_t>((wire[p] << 8) | wire[p + 1]);
  };
  const std::uint16_t type = u16_at(pos);
  const std::uint16_t rrclass = u16_at(pos + 2);
  const std::uint32_t ttl =
      (static_cast<std::uint32_t>(u16_at(pos + 4)) << 16) | u16_at(pos + 6);
  const std::uint16_t rdlength = u16_at(pos + 8);
  pos += 10;

  if (rdlength > wire.size() - pos) {
    err = DecodeError::kBadRdataLength;
    return false;
  }
  const std::size_t rdata_end = pos + rdlength;
  const std::span<const std::uint8_t> rdata = wire.subspan(pos, rdlength);
  NameView rdata_name;

  switch (static_cast<RRType>(type)) {
    case RRType::kA: {
      if (rdlength != 4) {
        err = DecodeError::kBadRdataLength;
        return false;
      }
      pos = rdata_end;
      break;
    }
    case RRType::kNS:
    case RRType::kCNAME:
    case RRType::kPTR: {
      const wire::NameScan n = wire::scan_name(wire, pos);
      if (!n.ok) {
        err = n.error;
        return false;
      }
      rdata_name = NameView(wire, pos, n.labels, n.name_len);
      pos = n.end;
      if (pos != rdata_end) {
        err = DecodeError::kBadRdataLength;
        return false;
      }
      break;
    }
    case RRType::kSOA: {
      const wire::NameScan mname = wire::scan_name(wire, pos);
      if (!mname.ok) {
        err = mname.error;
        return false;
      }
      pos = mname.end;
      const wire::NameScan rname = wire::scan_name(wire, pos);
      if (!rname.ok) {
        err = rname.error;
        return false;
      }
      pos = rname.end;
      if (pos + 20 > wire.size()) {  // serial..minimum
        err = DecodeError::kTruncatedRecord;
        return false;
      }
      pos += 20;
      if (pos != rdata_end) {
        err = DecodeError::kBadRdataLength;
        return false;
      }
      break;
    }
    case RRType::kMX: {
      if (pos + 2 > wire.size()) {
        err = DecodeError::kTruncatedRecord;
        return false;
      }
      pos += 2;
      const wire::NameScan n = wire::scan_name(wire, pos);
      if (!n.ok) {
        err = n.error;
        return false;
      }
      pos = n.end;
      if (pos != rdata_end) {
        err = DecodeError::kBadRdataLength;
        return false;
      }
      break;
    }
    case RRType::kTXT: {
      while (pos < rdata_end) {
        const std::uint8_t len = wire[pos];
        ++pos;
        if (pos + len > rdata_end) {
          err = DecodeError::kBadRdataLength;
          return false;
        }
        pos += len;
      }
      break;
    }
    case RRType::kAAAA: {
      if (rdlength != 16) {
        err = DecodeError::kBadRdataLength;
        return false;
      }
      pos = rdata_end;
      break;
    }
    default: {
      pos = rdata_end;
      break;
    }
  }

  if (out != nullptr) {
    out->name = owner_view;
    out->type = static_cast<RRType>(type);
    out->rrclass = static_cast<RRClass>(rrclass);
    out->ttl = ttl;
    out->rdata = rdata;
    out->rdata_name = rdata_name;
  }
  return true;
}

}  // namespace

std::string_view NameView::label(std::size_t i) const noexcept {
  std::size_t cursor = start_;
  while (true) {
    const std::uint8_t len = wire_[cursor];
    if ((len & 0xC0) == 0xC0) {
      cursor = (static_cast<std::size_t>(len & 0x3F) << 8) | wire_[cursor + 1];
      continue;
    }
    // Root byte: `i >= label_count()` violated the documented precondition.
    // Degrade to an empty label rather than walking past the validated name.
    if (len == 0) return {};
    if (i == 0)
      return std::string_view(
          reinterpret_cast<const char*>(wire_.data() + cursor + 1), len);
    --i;
    cursor += 1 + static_cast<std::size_t>(len);
  }
}

std::string NameView::to_string() const {
  if (count_ == 0) return ".";
  std::string out;
  out.reserve(static_cast<std::size_t>(name_len_) - 2);  // dots for lengths
  wire::for_each_label(wire_, start_,
                       [&out](const std::uint8_t* data, std::uint8_t len) {
                         if (!out.empty()) out.push_back('.');
                         out.append(reinterpret_cast<const char*>(data), len);
                       });
  return out;
}

std::string NameView::canonical_key() const {
  if (count_ == 0) return ".";
  std::string out;
  out.reserve(static_cast<std::size_t>(name_len_) - 2);
  wire::for_each_label(wire_, start_,
                       [&out](const std::uint8_t* data, std::uint8_t len) {
                         if (!out.empty()) out.push_back('.');
                         for (std::size_t i = 0; i < len; ++i)
                           out.push_back(ascii_lower(
                               static_cast<char>(data[i])));
                       });
  return out;
}

std::string_view NameView::canonical_key_into(std::span<char> buf) const
    noexcept {
  if (count_ == 0) {
    buf[0] = '.';
    return {buf.data(), 1};
  }
  std::size_t n = 0;
  wire::for_each_label(wire_, start_,
                       [&buf, &n](const std::uint8_t* data, std::uint8_t len) {
                         if (n > 0) buf[n++] = '.';
                         for (std::size_t i = 0; i < len; ++i)
                           buf[n++] = ascii_lower(static_cast<char>(data[i]));
                       });
  return {buf.data(), n};
}

DnsName NameView::to_name() const {
  DnsName out;
  out.reserve_flat(static_cast<std::size_t>(name_len_) - 1);
  wire::for_each_label(wire_, start_,
                       [&out](const std::uint8_t* data, std::uint8_t len) {
                         out.append_label(
                             {reinterpret_cast<const char*>(data), len});
                       });
  return out;
}

DecodeView DecodeView::parse(std::span<const std::uint8_t> wire) noexcept {
  DecodeView v;
  if (wire.size() < 12) {
    v.failed_at = DecodeStage::kHeader;
    v.error = DecodeError::kTruncatedHeader;
    return v;
  }
  const auto u16_at = [&wire](std::size_t p) {
    return static_cast<std::uint16_t>((wire[p] << 8) | wire[p + 1]);
  };
  v.header.id = u16_at(0);
  v.header.flags = Flags::unpack(u16_at(2));
  v.header.qdcount = u16_at(4);
  v.header.ancount = u16_at(6);
  v.header.nscount = u16_at(8);
  v.header.arcount = u16_at(10);
  std::size_t pos = 12;

  for (std::uint16_t i = 0; i < v.header.qdcount; ++i) {
    const wire::NameScan n = wire::scan_name(wire, pos);
    if (!n.ok) {
      v.failed_at = DecodeStage::kQuestion;
      v.error = n.error;
      return v;
    }
    const NameView qname(wire, pos, n.labels, n.name_len);
    pos = n.end;
    if (pos + 4 > wire.size()) {
      v.failed_at = DecodeStage::kQuestion;
      v.error = DecodeError::kTruncatedQuestion;
      return v;
    }
    if (v.questions_parsed == 0) {
      v.qname = qname;
      v.qtype = static_cast<RRType>(u16_at(pos));
      v.qclass = static_cast<RRClass>(u16_at(pos + 2));
    }
    pos += 4;
    ++v.questions_parsed;
  }

  DecodeError err{};
  for (std::uint16_t i = 0; i < v.header.ancount; ++i) {
    AnswerRecordView* keep = (i == 0) ? &v.first_answer : nullptr;
    if (!scan_record(wire, pos, keep, err)) {
      v.failed_at = DecodeStage::kAnswer;
      v.error = err;
      return v;
    }
    ++v.answers_parsed;
  }
  for (std::uint16_t i = 0; i < v.header.nscount; ++i) {
    if (!scan_record(wire, pos, nullptr, err)) {
      v.failed_at = DecodeStage::kAuthority;
      v.error = err;
      return v;
    }
  }
  for (std::uint16_t i = 0; i < v.header.arcount; ++i) {
    if (!scan_record(wire, pos, nullptr, err)) {
      v.failed_at = DecodeStage::kAdditional;
      v.error = err;
      return v;
    }
  }
  return v;
}

}  // namespace orp::dns
