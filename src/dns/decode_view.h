// Zero-copy DNS decode view (the analysis hot path).
//
// `classify_r2` and the scanner's R2 matcher only ever read the header
// bits, the first question's name, and the first answer record — yet the
// full decoder materializes every section into vectors of owning structs.
// DecodeView validates the wire bytes with exactly the same rules as
// `decode_partial` (same stages, same error precedence) but materializes
// nothing: names stay as offsets into the payload, rdata stays as a span.
//
// Use `DecodeView` when a packet is inspected once and thrown away (per-R2
// classification, flow matching); keep `decode`/`decode_partial` + Message
// for anything that outlives the payload buffer — pcap export, to_string
// forensics, and building responses.
//
// Lifetime: a view borrows the wire buffer it was parsed from; it must not
// outlive those bytes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "dns/codec.h"
#include "dns/message.h"
#include "dns/name.h"
#include "dns/types.h"

namespace orp::dns {

/// A validated name inside a wire buffer: start offset + precomputed label
/// count / uncompressed length. Labels are read straight out of the buffer,
/// following compression pointers (already proven backward and loop-free).
class NameView {
 public:
  NameView() = default;
  NameView(std::span<const std::uint8_t> wire, std::size_t start,
           std::uint8_t count, std::uint8_t name_len) noexcept
      : wire_(wire),
        start_(static_cast<std::uint32_t>(start)),
        count_(count),
        name_len_(name_len) {}

  std::size_t label_count() const noexcept { return count_; }
  bool is_root() const noexcept { return count_ == 0; }

  /// Uncompressed wire length (root byte included), like DnsName.
  std::size_t wire_length() const noexcept { return name_len_; }

  /// The i-th label (0 = leftmost). Precondition: i < label_count().
  std::string_view label(std::size_t i) const noexcept;

  /// Presentation form without trailing dot; "." for the root. Matches
  /// DnsName::to_string byte for byte.
  std::string to_string() const;

  /// Lower-cased presentation form — matches DnsName::canonical_key.
  std::string canonical_key() const;

  /// canonical_key() written into caller storage (allocation-free lookups).
  /// `buf` must hold kMaxNameLength bytes; returns the written prefix.
  std::string_view canonical_key_into(std::span<char> buf) const noexcept;

  /// Materialize an owning DnsName (off the hot path).
  DnsName to_name() const;

 private:
  std::span<const std::uint8_t> wire_{};
  std::uint32_t start_ = 0;
  std::uint8_t count_ = 0;
  std::uint8_t name_len_ = 1;
};

/// The first answer record, by reference into the payload.
struct AnswerRecordView {
  NameView name;
  RRType type = RRType::kA;
  RRClass rrclass = RRClass::kIN;
  std::uint32_t ttl = 0;
  std::span<const std::uint8_t> rdata{};

  /// For NS/CNAME/PTR records: the name the rdata carries.
  NameView rdata_name;
};

/// Validating, non-materializing decode. `failed_at` reports where parsing
/// stopped using the same stages and the same per-record rules as
/// decode_partial — the differential fuzz suite pins the equivalence.
struct DecodeView {
  Header header;  // flags unpacked; counts as claimed by the packet
  DecodeStage failed_at = DecodeStage::kComplete;
  std::optional<DecodeError> error;

  /// Questions successfully parsed (== header.qdcount unless failed_at is
  /// kQuestion or earlier). The first question is retained.
  std::uint16_t questions_parsed = 0;
  NameView qname;  // first question's name; meaningful iff questions_parsed
  RRType qtype = RRType::kA;
  RRClass qclass = RRClass::kIN;

  /// Answer records successfully validated; the first one is retained.
  std::uint16_t answers_parsed = 0;
  AnswerRecordView first_answer;

  bool complete() const noexcept { return failed_at == DecodeStage::kComplete; }
  bool header_ok() const noexcept { return failed_at != DecodeStage::kHeader; }

  static DecodeView parse(std::span<const std::uint8_t> wire) noexcept;
};

}  // namespace orp::dns
