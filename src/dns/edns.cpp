#include "dns/edns.h"

#include <algorithm>

#include "dns/codec.h"

namespace orp::dns {
namespace {

std::uint32_t pack_opt_ttl(const EdnsInfo& info) {
  std::uint32_t ttl = 0;
  ttl |= static_cast<std::uint32_t>(info.extended_rcode) << 24;
  ttl |= static_cast<std::uint32_t>(info.version) << 16;
  if (info.do_bit) ttl |= 0x8000u;
  return ttl;
}

EdnsInfo unpack_opt(const ResourceRecord& rr) {
  EdnsInfo info;
  info.udp_payload_size = static_cast<std::uint16_t>(rr.rrclass);
  info.extended_rcode = static_cast<std::uint8_t>(rr.ttl >> 24);
  info.version = static_cast<std::uint8_t>(rr.ttl >> 16);
  info.do_bit = (rr.ttl & 0x8000u) != 0;
  return info;
}

}  // namespace

std::optional<EdnsInfo> extract_edns(const Message& msg) {
  for (const auto& rr : msg.additional) {
    if (rr.type == RRType::kOPT) return unpack_opt(rr);
  }
  return std::nullopt;
}

void set_edns(Message& msg, const EdnsInfo& info) {
  clear_edns(msg);
  ResourceRecord opt;
  opt.name = DnsName();  // OPT owner is the root
  opt.type = RRType::kOPT;
  opt.rrclass = static_cast<RRClass>(info.udp_payload_size);
  opt.ttl = pack_opt_ttl(info);
  opt.rdata = RawRdata{static_cast<std::uint16_t>(RRType::kOPT), {}};
  msg.additional.push_back(std::move(opt));
}

void clear_edns(Message& msg) {
  std::erase_if(msg.additional, [](const ResourceRecord& rr) {
    return rr.type == RRType::kOPT;
  });
}

std::size_t response_size_budget(const Message& query) {
  if (const auto edns = extract_edns(query)) return edns->response_budget();
  return kClassicUdpLimit;
}

bool truncate_to_fit(Message& response, std::size_t budget) {
  // One scratch for every trial encode in the drop loop — the repeated
  // size probes reuse its capacity instead of allocating per iteration.
  EncodeBuffer scratch;
  if (encode_into(response, scratch).size() <= budget) return false;
  // Drop data sections largest-first until the message fits; the question
  // (and OPT, when present) stay so the client can retry appropriately.
  const auto edns = extract_edns(response);
  response.header.flags.tc = true;
  while (encode_into(response, scratch).size() > budget) {
    if (!response.additional.empty() &&
        !(response.additional.size() == 1 &&
          response.additional[0].type == RRType::kOPT)) {
      // Remove the last non-OPT additional record.
      for (auto it = response.additional.rbegin();
           it != response.additional.rend(); ++it) {
        if (it->type != RRType::kOPT) {
          response.additional.erase(std::next(it).base());
          break;
        }
      }
      continue;
    }
    if (!response.authority.empty()) {
      response.authority.pop_back();
      continue;
    }
    if (!response.answers.empty()) {
      response.answers.pop_back();
      continue;
    }
    break;  // nothing left to drop; header+question exceed budget (absurd)
  }
  if (edns) set_edns(response, *edns);
  return true;
}

}  // namespace orp::dns
