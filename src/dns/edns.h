// EDNS(0) — RFC 6891 extension mechanisms.
//
// The paper's amplification analysis (§II-C) hinges on EDNS: classic DNS
// caps UDP responses at 512 bytes, so a resolver that advertises a larger
// EDNS buffer is a far better amplifier. EDNS rides in an OPT pseudo-RR in
// the additional section: the CLASS field carries the requestor's UDP
// payload size and the TTL field packs extended-rcode/version/flags.
#pragma once

#include <cstdint>
#include <optional>

#include "dns/message.h"

namespace orp::dns {

constexpr std::size_t kClassicUdpLimit = 512;  // RFC 1035 §4.2.1

struct EdnsInfo {
  std::uint16_t udp_payload_size = 1232;
  std::uint8_t extended_rcode = 0;
  std::uint8_t version = 0;
  bool do_bit = false;  // DNSSEC OK

  /// The effective response-size budget this peer advertises.
  std::size_t response_budget() const noexcept {
    return udp_payload_size < kClassicUdpLimit ? kClassicUdpLimit
                                               : udp_payload_size;
  }
};

/// Find and decode the OPT pseudo-RR, if any.
std::optional<EdnsInfo> extract_edns(const Message& msg);

/// Append an OPT pseudo-RR advertising `info`. Replaces any existing OPT.
void set_edns(Message& msg, const EdnsInfo& info);

/// Remove the OPT pseudo-RR (if present).
void clear_edns(Message& msg);

/// The UDP size budget a responder must honor for this query:
/// 512 without EDNS, the advertised size with it.
std::size_t response_size_budget(const Message& query);

/// Truncate `response` to fit `budget` bytes when wire-encoded: drops
/// answer/authority/additional records (keeping the question and OPT) and
/// sets TC=1, exactly the RFC 2181 §9 contract. Returns true if truncation
/// was applied.
bool truncate_to_fit(Message& response, std::size_t budget);

}  // namespace orp::dns
