#include "dns/message.h"

#include <sstream>

namespace orp::dns {

std::uint16_t Flags::pack() const noexcept {
  std::uint16_t raw = 0;
  raw |= static_cast<std::uint16_t>(qr ? 1 : 0) << 15;
  raw |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(opcode) & 0xF)
         << 11;
  raw |= static_cast<std::uint16_t>(aa ? 1 : 0) << 10;
  raw |= static_cast<std::uint16_t>(tc ? 1 : 0) << 9;
  raw |= static_cast<std::uint16_t>(rd ? 1 : 0) << 8;
  raw |= static_cast<std::uint16_t>(ra ? 1 : 0) << 7;
  raw |= static_cast<std::uint16_t>((z & 0x1)) << 6;
  raw |= static_cast<std::uint16_t>(ad ? 1 : 0) << 5;
  raw |= static_cast<std::uint16_t>(cd ? 1 : 0) << 4;
  raw |= static_cast<std::uint16_t>(static_cast<std::uint8_t>(rcode) & 0xF);
  return raw;
}

Flags Flags::unpack(std::uint16_t raw) noexcept {
  Flags f;
  f.qr = (raw >> 15) & 1;
  f.opcode = static_cast<Opcode>((raw >> 11) & 0xF);
  f.aa = (raw >> 10) & 1;
  f.tc = (raw >> 9) & 1;
  f.rd = (raw >> 8) & 1;
  f.ra = (raw >> 7) & 1;
  f.z = static_cast<std::uint8_t>((raw >> 6) & 0x1);
  f.ad = (raw >> 5) & 1;
  f.cd = (raw >> 4) & 1;
  f.rcode = static_cast<Rcode>(raw & 0xF);
  return f;
}

std::optional<net::IPv4Addr> Message::first_a_answer() const {
  for (const auto& rr : answers) {
    if (rr.type != RRType::kA) continue;
    if (const auto* a = std::get_if<ARdata>(&rr.rdata)) return a->addr;
  }
  return std::nullopt;
}

std::string to_string(const ResourceRecord& rr) {
  std::ostringstream out;
  out << rr.name.to_string() << " " << rr.ttl << " " << to_string(rr.rrclass)
      << " " << to_string(rr.type) << " ";
  std::visit(
      [&](const auto& data) {
        using T = std::decay_t<decltype(data)>;
        if constexpr (std::is_same_v<T, ARdata>) {
          out << data.addr.to_string();
        } else if constexpr (std::is_same_v<T, NameRdata>) {
          out << data.name.to_string() << ".";
        } else if constexpr (std::is_same_v<T, SoaRdata>) {
          out << data.mname.to_string() << ". " << data.rname.to_string()
              << ". " << data.serial << " " << data.refresh << " "
              << data.retry << " " << data.expire << " " << data.minimum;
        } else if constexpr (std::is_same_v<T, MxRdata>) {
          out << data.preference << " " << data.exchange.to_string() << ".";
        } else if constexpr (std::is_same_v<T, TxtRdata>) {
          for (std::size_t i = 0; i < data.strings.size(); ++i) {
            if (i != 0) out << " ";
            out << '"' << data.strings[i] << '"';
          }
        } else if constexpr (std::is_same_v<T, AAAARdata>) {
          out << "<aaaa>";
        } else if constexpr (std::is_same_v<T, RawRdata>) {
          out << "\\# " << data.bytes.size();
        }
      },
      rr.rdata);
  return out.str();
}

std::string Message::to_string() const {
  std::ostringstream out;
  const auto& f = header.flags;
  out << ";; id " << header.id << "  " << (f.qr ? "response" : "query")
      << "  rcode " << orp::dns::to_string(f.rcode) << "\n;; flags:";
  if (f.qr) out << " qr";
  if (f.aa) out << " aa";
  if (f.tc) out << " tc";
  if (f.rd) out << " rd";
  if (f.ra) out << " ra";
  out << "\n";
  if (!questions.empty()) {
    out << ";; QUESTION\n";
    for (const auto& q : questions)
      out << ";  " << q.qname.to_string() << " " << orp::dns::to_string(q.qclass)
          << " " << orp::dns::to_string(q.qtype) << "\n";
  }
  auto section = [&out](const char* title,
                        const std::vector<ResourceRecord>& rrs) {
    if (rrs.empty()) return;
    out << ";; " << title << "\n";
    for (const auto& rr : rrs) out << "   " << orp::dns::to_string(rr) << "\n";
  };
  section("ANSWER", answers);
  section("AUTHORITY", authority);
  section("ADDITIONAL", additional);
  return out.str();
}

}  // namespace orp::dns
