// DNS message model (RFC 1035 §4): header with flag bits, question section,
// and answer/authority/additional resource-record sections.
//
// The behavioral analysis of the paper centers on exactly these header bits —
// QR, AA, TC, RD, RA — and the rcode, so the model keeps them first-class.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "dns/name.h"
#include "dns/types.h"
#include "net/ipv4.h"

namespace orp::dns {

/// The 16-bit flags word of the DNS header, unpacked.
struct Flags {
  bool qr = false;             // query (0) / response (1)
  Opcode opcode = Opcode::kQuery;
  bool aa = false;             // Authoritative Answer (paper Table V)
  bool tc = false;             // TrunCation
  bool rd = false;             // Recursion Desired (set on all probes)
  bool ra = false;             // Recursion Available (paper Table IV)
  std::uint8_t z = 0;          // reserved, must be zero
  bool ad = false;             // DNSSEC authenticated data
  bool cd = false;             // DNSSEC checking disabled
  Rcode rcode = Rcode::kNoError;

  std::uint16_t pack() const noexcept;
  static Flags unpack(std::uint16_t raw) noexcept;

  friend bool operator==(const Flags&, const Flags&) noexcept = default;
};

struct Header {
  std::uint16_t id = 0;
  Flags flags;
  std::uint16_t qdcount = 0;
  std::uint16_t ancount = 0;
  std::uint16_t nscount = 0;
  std::uint16_t arcount = 0;
};

struct Question {
  DnsName qname;
  RRType qtype = RRType::kA;
  RRClass qclass = RRClass::kIN;
};

// ---- RDATA variants ------------------------------------------------------

struct ARdata {
  net::IPv4Addr addr;
};

struct NameRdata {  // NS, CNAME, PTR
  DnsName name;
};

struct SoaRdata {
  DnsName mname;
  DnsName rname;
  std::uint32_t serial = 0;
  std::uint32_t refresh = 3600;
  std::uint32_t retry = 600;
  std::uint32_t expire = 86400;
  std::uint32_t minimum = 300;
};

struct MxRdata {
  std::uint16_t preference = 10;
  DnsName exchange;
};

struct TxtRdata {
  std::vector<std::string> strings;
};

struct AAAARdata {
  std::array<std::uint8_t, 16> addr{};
};

/// Anything we do not model structurally — kept as raw bytes so deviant
/// resolvers can emit arbitrary (even malformed) rdata, as observed in the
/// wild ("wild", "OK", "ff", 0x00 bytes — paper Table VII).
struct RawRdata {
  std::uint16_t type = 0;
  std::vector<std::uint8_t> bytes;
};

using Rdata =
    std::variant<ARdata, NameRdata, SoaRdata, MxRdata, TxtRdata, AAAARdata,
                 RawRdata>;

struct ResourceRecord {
  DnsName name;
  RRType type = RRType::kA;
  RRClass rrclass = RRClass::kIN;
  std::uint32_t ttl = 0;
  Rdata rdata;
};

struct Message {
  Header header;
  std::vector<Question> questions;
  std::vector<ResourceRecord> answers;
  std::vector<ResourceRecord> authority;
  std::vector<ResourceRecord> additional;

  /// Convenience accessors used throughout the analysis layer.
  bool has_question() const noexcept { return !questions.empty(); }
  bool has_answer() const noexcept { return !answers.empty(); }

  /// First A record in the answer section, if any.
  std::optional<net::IPv4Addr> first_a_answer() const;

  /// Human-readable dump (dig-style) for examples and forensics output.
  std::string to_string() const;
};

/// Render one RR as presentation text ("name ttl IN A 1.2.3.4").
std::string to_string(const ResourceRecord& rr);

}  // namespace orp::dns
