#include "dns/name.h"

#include <cstdlib>
#include <stdexcept>

namespace orp::dns {
namespace {

bool valid_label(std::string_view label) noexcept {
  if (label.empty() || label.size() > kMaxLabelLength) return false;
  for (const char c : label)
    if (c == '\0') return false;
  return true;
}

char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

// Case-insensitive equality over two flat label runs. Length octets are
// 0..63 and therefore outside the 'A'..'Z' fold range, so folding every
// byte — structure octets included — is exact: two runs are equal iff they
// have the same label structure and ci-equal label bytes.
bool flat_equals_ci(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  return true;
}

}  // namespace

bool label_equals_ci(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  return true;
}

DnsName::DnsName(const std::vector<std::string>& labels) {
  std::size_t wire = 1;
  for (const auto& l : labels) {
    if (!valid_label(l)) throw std::invalid_argument("invalid DNS label");
    wire += 1 + l.size();
  }
  if (wire > kMaxNameLength) throw std::invalid_argument("DNS name too long");
  flat_.reserve(wire - 1);
  for (const auto& l : labels) {
    flat_.push_back(static_cast<char>(l.size()));
    flat_.append(l);
  }
  count_ = static_cast<std::uint8_t>(labels.size());
}

std::optional<DnsName> DnsName::parse(std::string_view text) {
  if (text == "." || text.empty()) return DnsName();
  if (text.back() == '.') text.remove_suffix(1);
  DnsName name;
  // One length octet per label plus the label bytes: text.size() + 1 exactly
  // (each dot becomes a length octet, plus the leading one).
  name.flat_.reserve(text.size() + 1);
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t dot = text.find('.', start);
    const std::string_view label =
        dot == std::string_view::npos ? text.substr(start)
                                      : text.substr(start, dot - start);
    if (!name.append_label(label)) return std::nullopt;
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return name;
}

DnsName DnsName::must_parse(std::string_view text) {
  auto parsed = parse(text);
  if (!parsed) std::abort();
  return *std::move(parsed);
}

std::string_view DnsName::label(std::size_t i) const noexcept {
  std::size_t off = 0;
  while (i-- > 0) off += 1 + static_cast<std::uint8_t>(flat_[off]);
  const auto len = static_cast<std::uint8_t>(flat_[off]);
  return std::string_view(flat_).substr(off + 1, len);
}

std::string DnsName::to_string() const {
  if (count_ == 0) return ".";
  std::string out;
  out.reserve(flat_.size() - 1);  // dots replace length octets, minus one
  std::size_t off = 0;
  while (off < flat_.size()) {
    const auto len = static_cast<std::uint8_t>(flat_[off]);
    if (off != 0) out.push_back('.');
    out.append(flat_, off + 1, len);
    off += 1 + len;
  }
  return out;
}

bool DnsName::equals(const DnsName& other) const noexcept {
  return flat_equals_ci(flat_, other.flat_);
}

bool DnsName::is_subdomain_of(const DnsName& ancestor) const noexcept {
  if (ancestor.count_ > count_) return false;
  std::size_t off = 0;
  for (std::size_t skip = count_ - ancestor.count_; skip > 0; --skip)
    off += 1 + static_cast<std::uint8_t>(flat_[off]);
  return flat_equals_ci(std::string_view(flat_).substr(off), ancestor.flat_);
}

DnsName DnsName::parent(std::size_t n) const {
  DnsName out;
  if (n >= count_) return out;
  std::size_t off = 0;
  for (std::size_t skip = n; skip > 0; --skip)
    off += 1 + static_cast<std::uint8_t>(flat_[off]);
  out.flat_.assign(flat_, off, std::string::npos);
  out.count_ = static_cast<std::uint8_t>(count_ - n);
  return out;
}

DnsName DnsName::child(std::string_view label) const {
  return prefixed({label});
}

DnsName DnsName::prefixed(std::initializer_list<std::string_view> labels) const {
  std::size_t extra = 0;
  for (const auto l : labels) {
    if (!valid_label(l)) throw std::invalid_argument("invalid DNS label");
    extra += 1 + l.size();
  }
  if (flat_.size() + extra + 1 > kMaxNameLength)
    throw std::invalid_argument("DNS name too long");
  DnsName out;
  out.flat_.reserve(flat_.size() + extra);
  for (const auto l : labels) {
    out.flat_.push_back(static_cast<char>(l.size()));
    out.flat_.append(l);
  }
  out.flat_.append(flat_);
  out.count_ = static_cast<std::uint8_t>(count_ + labels.size());
  return out;
}

bool DnsName::append_label(std::string_view label) {
  if (!valid_label(label)) return false;
  if (flat_.size() + 1 + label.size() + 1 > kMaxNameLength) return false;
  flat_.push_back(static_cast<char>(label.size()));
  flat_.append(label);
  ++count_;
  return true;
}

std::string DnsName::canonical_key() const {
  if (count_ == 0) return ".";
  std::string key;
  key.reserve(flat_.size() - 1);
  std::size_t off = 0;
  while (off < flat_.size()) {
    const auto len = static_cast<std::uint8_t>(flat_[off]);
    if (off != 0) key.push_back('.');
    for (std::size_t i = 0; i < len; ++i)
      key.push_back(ascii_lower(flat_[off + 1 + i]));
    off += 1 + len;
  }
  return key;
}

std::string_view DnsName::canonical_key_into(std::span<char> buf) const
    noexcept {
  if (count_ == 0) {
    buf[0] = '.';
    return {buf.data(), 1};
  }
  std::size_t n = 0;
  std::size_t off = 0;
  while (off < flat_.size()) {
    const auto len = static_cast<std::uint8_t>(flat_[off]);
    if (off != 0) buf[n++] = '.';
    for (std::size_t i = 0; i < len; ++i)
      buf[n++] = ascii_lower(flat_[off + 1 + i]);
    off += 1 + len;
  }
  return {buf.data(), n};
}

}  // namespace orp::dns
