#include "dns/name.h"

#include <cctype>
#include <cstdlib>
#include <stdexcept>

#include "util/strings.h"

namespace orp::dns {
namespace {

bool valid_label(std::string_view label) noexcept {
  if (label.empty() || label.size() > kMaxLabelLength) return false;
  for (const char c : label)
    if (c == '\0') return false;
  return true;
}

char ascii_lower(char c) noexcept {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

bool label_equals_ci(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (ascii_lower(a[i]) != ascii_lower(b[i])) return false;
  return true;
}

}  // namespace

DnsName::DnsName(std::vector<std::string> labels) : labels_(std::move(labels)) {
  std::size_t wire = 1;
  for (const auto& l : labels_) {
    if (!valid_label(l)) throw std::invalid_argument("invalid DNS label");
    wire += 1 + l.size();
  }
  if (wire > kMaxNameLength) throw std::invalid_argument("DNS name too long");
}

std::optional<DnsName> DnsName::parse(std::string_view text) {
  if (text == "." || text.empty()) return DnsName();
  if (text.back() == '.') text.remove_suffix(1);
  std::vector<std::string> labels;
  std::size_t wire = 1;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t dot = text.find('.', start);
    const std::string_view label =
        dot == std::string_view::npos ? text.substr(start)
                                      : text.substr(start, dot - start);
    if (!valid_label(label)) return std::nullopt;
    wire += 1 + label.size();
    if (wire > kMaxNameLength) return std::nullopt;
    labels.emplace_back(label);
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  DnsName name;
  name.labels_ = std::move(labels);
  return name;
}

DnsName DnsName::must_parse(std::string_view text) {
  auto parsed = parse(text);
  if (!parsed) std::abort();
  return *std::move(parsed);
}

std::size_t DnsName::wire_length() const noexcept {
  std::size_t len = 1;
  for (const auto& l : labels_) len += 1 + l.size();
  return len;
}

std::string DnsName::to_string() const {
  if (labels_.empty()) return ".";
  std::string out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i != 0) out.push_back('.');
    out += labels_[i];
  }
  return out;
}

bool DnsName::equals(const DnsName& other) const noexcept {
  if (labels_.size() != other.labels_.size()) return false;
  for (std::size_t i = 0; i < labels_.size(); ++i)
    if (!label_equals_ci(labels_[i], other.labels_[i])) return false;
  return true;
}

bool DnsName::is_subdomain_of(const DnsName& ancestor) const noexcept {
  if (ancestor.labels_.size() > labels_.size()) return false;
  const std::size_t offset = labels_.size() - ancestor.labels_.size();
  for (std::size_t i = 0; i < ancestor.labels_.size(); ++i)
    if (!label_equals_ci(labels_[offset + i], ancestor.labels_[i]))
      return false;
  return true;
}

DnsName DnsName::parent(std::size_t n) const {
  DnsName out;
  if (n >= labels_.size()) return out;
  out.labels_.assign(labels_.begin() + static_cast<std::ptrdiff_t>(n),
                     labels_.end());
  return out;
}

DnsName DnsName::child(std::string_view label) const {
  std::vector<std::string> labels;
  labels.reserve(labels_.size() + 1);
  labels.emplace_back(label);
  labels.insert(labels.end(), labels_.begin(), labels_.end());
  return DnsName(std::move(labels));
}

std::string DnsName::canonical_key() const {
  std::string key = util::to_lower(to_string());
  return key;
}

}  // namespace orp::dns
