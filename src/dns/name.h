// DNS domain names (RFC 1035 §3.1): sequences of labels, case-insensitive,
// with the 63-octet-per-label and 255-octet-total limits enforced.
//
// Storage is one flat buffer holding the uncompressed wire form minus the
// terminating root byte — `[len][bytes]` per label — plus a label count.
// A short name ("x.example.net" is 15 wire bytes) lives entirely in the
// string's SSO buffer: no heap allocation, and equality/suffix checks are
// single contiguous scans instead of per-label string compares.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace orp::dns {

/// Case-insensitive (ASCII) equality of two label byte ranges.
bool label_equals_ci(std::string_view a, std::string_view b) noexcept;

class DnsName {
 public:
  /// The root name (zero labels).
  DnsName() = default;

  /// Build from pre-validated labels (throws std::invalid_argument on limit
  /// violations — construction is not a hot path).
  explicit DnsName(const std::vector<std::string>& labels);

  /// Parse presentation format ("www.example.com", trailing dot optional).
  /// Returns nullopt on empty labels, oversize labels/name, or embedded NUL.
  static std::optional<DnsName> parse(std::string_view text);

  /// Parse, aborting on failure. For literals known to be valid.
  static DnsName must_parse(std::string_view text);

  std::size_t label_count() const noexcept { return count_; }
  bool is_root() const noexcept { return count_ == 0; }

  /// The i-th label (0 = leftmost / most specific). Precondition: i < count.
  std::string_view label(std::size_t i) const noexcept;

  /// The flat `[len][bytes]...` label run — exactly the uncompressed wire
  /// form of the name without the trailing root byte.
  std::string_view flat() const noexcept { return flat_; }

  /// Wire-format length: sum of (1 + len) per label, plus root byte.
  std::size_t wire_length() const noexcept { return flat_.size() + 1; }

  /// Presentation format without trailing dot; "." for the root.
  std::string to_string() const;

  /// Case-insensitive equality (RFC 1035 §2.3.3).
  bool equals(const DnsName& other) const noexcept;

  /// True if this name is `ancestor` or underneath it (case-insensitive).
  bool is_subdomain_of(const DnsName& ancestor) const noexcept;

  /// Name with the first `n` labels removed ("a.b.c" -> parent() = "b.c").
  DnsName parent(std::size_t n = 1) const;

  /// New name with `label` prepended.
  DnsName child(std::string_view label) const;

  /// New name with several labels prepended in one allocation:
  /// prefixed({"a", "b"}) on "c.d" yields "a.b.c.d". Throws
  /// std::invalid_argument on limit violations, like the label-vector ctor.
  DnsName prefixed(std::initializer_list<std::string_view> labels) const;

  /// Append one label at the *end* (toward the root): used by the wire
  /// decoder, which discovers labels left to right. Returns false (leaving
  /// the name unchanged) on an invalid label or a name-length overflow.
  bool append_label(std::string_view label);

  /// Capacity hint for decoders that know the final wire length.
  void reserve_flat(std::size_t bytes) { flat_.reserve(bytes); }

  /// Canonical (lower-case) form for use as a map key.
  std::string canonical_key() const;

  /// canonical_key() written into caller storage (allocation-free lookups
  /// against heterogeneous maps). `buf` must hold kMaxNameLength bytes;
  /// returns the written prefix.
  std::string_view canonical_key_into(std::span<char> buf) const noexcept;

  friend bool operator==(const DnsName& a, const DnsName& b) noexcept {
    return a.equals(b);
  }

 private:
  std::string flat_;        // [len][bytes] per label, no root byte
  std::uint8_t count_ = 0;  // number of labels (≤ 127 given the 255 limit)
};

constexpr std::size_t kMaxLabelLength = 63;
constexpr std::size_t kMaxNameLength = 255;

}  // namespace orp::dns
