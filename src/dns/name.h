// DNS domain names (RFC 1035 §3.1): sequences of labels, case-insensitive,
// with the 63-octet-per-label and 255-octet-total limits enforced.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace orp::dns {

class DnsName {
 public:
  /// The root name (zero labels).
  DnsName() = default;

  /// Build from pre-validated labels (throws std::invalid_argument on limit
  /// violations — construction is not a hot path).
  explicit DnsName(std::vector<std::string> labels);

  /// Parse presentation format ("www.example.com", trailing dot optional).
  /// Returns nullopt on empty labels, oversize labels/name, or embedded NUL.
  static std::optional<DnsName> parse(std::string_view text);

  /// Parse, aborting on failure. For literals known to be valid.
  static DnsName must_parse(std::string_view text);

  const std::vector<std::string>& labels() const noexcept { return labels_; }
  std::size_t label_count() const noexcept { return labels_.size(); }
  bool is_root() const noexcept { return labels_.empty(); }

  /// Wire-format length: sum of (1 + len) per label, plus root byte.
  std::size_t wire_length() const noexcept;

  /// Presentation format without trailing dot; "." for the root.
  std::string to_string() const;

  /// Case-insensitive equality (RFC 1035 §2.3.3).
  bool equals(const DnsName& other) const noexcept;

  /// True if this name is `ancestor` or underneath it (case-insensitive).
  bool is_subdomain_of(const DnsName& ancestor) const noexcept;

  /// Name with the first `n` labels removed ("a.b.c" -> parent() = "b.c").
  DnsName parent(std::size_t n = 1) const;

  /// New name with `label` prepended.
  DnsName child(std::string_view label) const;

  /// Canonical (lower-case) form for use as a map key.
  std::string canonical_key() const;

  friend bool operator==(const DnsName& a, const DnsName& b) noexcept {
    return a.equals(b);
  }

 private:
  std::vector<std::string> labels_;
};

constexpr std::size_t kMaxLabelLength = 63;
constexpr std::size_t kMaxNameLength = 255;

}  // namespace orp::dns
