#include "dns/truncate.h"

#include "dns/wire_scan.h"

namespace orp::dns {

namespace {

constexpr std::uint16_t read16(std::span<const std::uint8_t> wire,
                               std::size_t pos) noexcept {
  return static_cast<std::uint16_t>((wire[pos] << 8) | wire[pos + 1]);
}

constexpr void write16(std::span<std::uint8_t> wire, std::size_t pos,
                       std::uint16_t v) noexcept {
  wire[pos] = static_cast<std::uint8_t>(v >> 8);
  wire[pos + 1] = static_cast<std::uint8_t>(v & 0xFF);
}

}  // namespace

TruncationCut Truncator::plan(std::span<const std::uint8_t> wire,
                              std::size_t budget) noexcept {
  TruncationCut cut;
  if (wire.size() < kHeaderSize || budget < kHeaderSize) return cut;
  const std::uint16_t counts[4] = {read16(wire, 4), read16(wire, 6),
                                   read16(wire, 8), read16(wire, 10)};
  cut.len = kHeaderSize;

  // Walk every section in wire order, advancing a candidate cut after each
  // whole record that still fits the budget. Survivor counts freeze once a
  // record overflows (everything later is past the cut even if a later,
  // smaller record would have fit — the cut is a prefix, not a knapsack).
  std::uint16_t survivors[4] = {0, 0, 0, 0};
  std::size_t cursor = kHeaderSize;
  bool over = false;
  for (int section = 0; section < 4; ++section) {
    for (std::uint16_t i = 0; i < counts[section]; ++i) {
      const wire::NameScan name = wire::scan_name(wire, cursor);
      if (!name.ok) return cut;  // malformed: refuse to plan
      std::size_t end;
      if (section == 0) {
        end = name.end + 4;  // qtype + qclass
      } else {
        if (name.end + 10 > wire.size()) return cut;
        end = name.end + 10 + read16(wire, name.end + 8);
      }
      if (end > wire.size()) return cut;
      cursor = end;
      if (!over && end <= budget) {
        cut.len = end;
        ++survivors[section];
      } else {
        over = true;
      }
    }
  }

  cut.valid = true;
  cut.needed = wire.size() > budget;
  if (!cut.needed) {
    cut.len = wire.size();
    cut.qdcount = counts[0];
    cut.ancount = counts[1];
    cut.nscount = counts[2];
    cut.arcount = counts[3];
  } else {
    cut.qdcount = survivors[0];
    cut.ancount = survivors[1];
    cut.nscount = survivors[2];
    cut.arcount = survivors[3];
  }
  return cut;
}

std::size_t Truncator::apply(std::span<std::uint8_t> wire,
                             const TruncationCut& cut) noexcept {
  if (!cut.valid || !cut.needed) return wire.size();
  wire[2] |= 0x02;  // TC
  write16(wire, 4, cut.qdcount);
  write16(wire, 6, cut.ancount);
  write16(wire, 8, cut.nscount);
  write16(wire, 10, cut.arcount);
  return cut.len;
}

}  // namespace orp::dns
