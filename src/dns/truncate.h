// Wire-level whole-record truncation (TC=1).
//
// A resolver that caps its UDP responses does not re-plan the message: it
// cuts the encoded packet at a record boundary, fixes the section counts,
// and sets TC (RFC 2181 §9 — a responder must not send partial RRsets
// without TC, and never a partial RR). Truncator reproduces that on the
// already-encoded wire image, which is what the truncating host profiles
// apply after the encoder (or the template stamper) has produced the full
// answer.
//
// The cut is always decodable: RFC 1035 compression pointers point
// backwards, so removing a suffix of the packet can never orphan a name an
// earlier record references.
//
// Relationship to dns::truncate_to_fit (edns.h): that helper re-plans at
// the *message* level (drops whole RRs largest-section-first, keeps OPT)
// before encoding — the EDNS-negotiation path. Truncator is the wire-level
// analogue for hosts that size-cap after encoding; the two intentionally
// produce different survivor sets (prefix order vs section preference).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace orp::dns {

/// A planned cut: keep the first `len` bytes, rewrite the header counts to
/// the survivors, set TC. `valid` means the wire walked cleanly enough to
/// plan (header present, record boundaries consistent, budget >= header);
/// `needed` means the packet actually exceeded the budget.
struct TruncationCut {
  std::size_t len = 0;
  std::uint16_t qdcount = 0;
  std::uint16_t ancount = 0;
  std::uint16_t nscount = 0;
  std::uint16_t arcount = 0;
  bool needed = false;
  bool valid = false;
};

class Truncator {
 public:
  static constexpr std::size_t kHeaderSize = 12;

  /// Plan the largest whole-record prefix of `wire` that fits in `budget`
  /// bytes. Questions count as records (a cut never splits one); a budget
  /// of exactly kHeaderSize keeps only the header. Returns valid=false on
  /// a malformed packet (counts lying about the payload) or budget <
  /// kHeaderSize — callers then leave the packet alone.
  static TruncationCut plan(std::span<const std::uint8_t> wire,
                            std::size_t budget) noexcept;

  /// Patch `wire` in place per `cut` (survivor counts + TC bit) and return
  /// the new packet length. No-op (returns wire.size()) unless
  /// cut.valid && cut.needed.
  static std::size_t apply(std::span<std::uint8_t> wire,
                           const TruncationCut& cut) noexcept;

  /// plan + apply in one call: returns the packet's (possibly reduced)
  /// length. Malformed or already-fitting packets come back untouched.
  static std::size_t truncate(std::span<std::uint8_t> wire,
                              std::size_t budget) noexcept {
    return apply(wire, plan(wire, budget));
  }
};

}  // namespace orp::dns
