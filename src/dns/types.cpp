#include "dns/types.h"

#include <array>

namespace orp::dns {
namespace {

constexpr std::array<std::string_view, 16> kRcodeNames{
    "NoError",  "FormErr",  "ServFail", "NXDomain", "NotImp",   "Refused",
    "YXDomain", "YXRRSet",  "NXRRSet",  "NotAuth",  "NotZone",  "Rcode11",
    "Rcode12",  "Rcode13",  "Rcode14",  "Rcode15"};

}  // namespace

std::string_view to_string(RRType t) noexcept {
  switch (t) {
    case RRType::kA: return "A";
    case RRType::kNS: return "NS";
    case RRType::kCNAME: return "CNAME";
    case RRType::kSOA: return "SOA";
    case RRType::kPTR: return "PTR";
    case RRType::kMX: return "MX";
    case RRType::kTXT: return "TXT";
    case RRType::kAAAA: return "AAAA";
    case RRType::kOPT: return "OPT";
    case RRType::kANY: return "ANY";
  }
  return "TYPE?";
}

std::string_view to_string(RRClass c) noexcept {
  switch (c) {
    case RRClass::kIN: return "IN";
    case RRClass::kCH: return "CH";
    case RRClass::kANY: return "ANY";
  }
  return "CLASS?";
}

std::string_view to_string(Rcode r) noexcept {
  const auto idx = static_cast<std::size_t>(r);
  if (idx < kRcodeNames.size()) return kRcodeNames[idx];
  return "Rcode?";
}

bool rcode_from_string(std::string_view name, Rcode& out) noexcept {
  for (std::size_t i = 0; i < kRcodeNames.size(); ++i) {
    if (kRcodeNames[i] == name) {
      out = static_cast<Rcode>(i);
      return true;
    }
  }
  return false;
}

}  // namespace orp::dns
