// Core DNS protocol enumerations (RFC 1035, RFC 6895).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace orp::dns {

/// Resource record types used in this study. 'ANY' (QTYPE *) is the
/// amplification-attack workhorse analyzed in §II-C of the paper.
enum class RRType : std::uint16_t {
  kA = 1,
  kNS = 2,
  kCNAME = 5,
  kSOA = 6,
  kPTR = 12,
  kMX = 15,
  kTXT = 16,
  kAAAA = 28,
  kOPT = 41,   // EDNS0 pseudo-RR (RFC 6891)
  kANY = 255,  // QTYPE only
};

enum class RRClass : std::uint16_t {
  kIN = 1,
  kCH = 3,
  kANY = 255,
};

enum class Opcode : std::uint8_t {
  kQuery = 0,
  kIQuery = 1,
  kStatus = 2,
  kNotify = 4,
  kUpdate = 5,
};

/// Response codes per RFC 6895 (the paper's Table VI enumerates 0-9).
enum class Rcode : std::uint8_t {
  kNoError = 0,
  kFormErr = 1,
  kServFail = 2,
  kNXDomain = 3,
  kNotImp = 4,
  kRefused = 5,
  kYXDomain = 6,
  kYXRRSet = 7,
  kNXRRSet = 8,
  kNotAuth = 9,
  kNotZone = 10,
};

constexpr int kRcodeCount = 16;

std::string_view to_string(RRType t) noexcept;
std::string_view to_string(RRClass c) noexcept;
std::string_view to_string(Rcode r) noexcept;

/// Parse an rcode name ("NoError", "ServFail", ...) back to its value.
bool rcode_from_string(std::string_view name, Rcode& out) noexcept;

}  // namespace orp::dns
