// Shared low-level name scanner for the DNS wire decoders.
//
// `scan_name` validates a (possibly compressed) name in place — bounds,
// pointer direction, jump budget, label octets, total length — without
// materializing anything; it is the single source of truth for name
// validity, used by both the full decoder (codec.cpp) and the zero-copy
// DecodeView. `for_each_label` then walks a name scan_name accepted, so it
// can skip every check.
#pragma once

#include <cstdint>
#include <span>

#include "dns/codec.h"
#include "dns/name.h"

namespace orp::dns::wire {

struct NameScan {
  bool ok = false;
  DecodeError error = DecodeError::kTruncatedName;
  std::size_t end = 0;        // cursor just past the in-place representation
  std::uint8_t labels = 0;    // label count (≤ 127 under the 255-octet cap)
  std::uint8_t name_len = 1;  // uncompressed wire length, root byte included
};

/// Validate the name starting at `pos`. Mirrors the historical Reader::name
/// checks bit for bit (error precedence included): truncation, forward /
/// self pointers, a 64-jump budget, unsupported label types, NUL octets
/// inside labels, and the 255-octet total.
inline NameScan scan_name(std::span<const std::uint8_t> wire,
                          std::size_t pos) noexcept {
  NameScan out;
  std::size_t cursor = pos;
  std::size_t in_place_end = 0;  // set at the first pointer jump
  std::size_t total_len = 1;
  std::size_t labels = 0;
  int jumps = 0;
  while (true) {
    if (cursor >= wire.size()) {
      out.error = DecodeError::kTruncatedName;
      return out;
    }
    const std::uint8_t len = wire[cursor];
    if ((len & 0xC0) == 0xC0) {
      if (cursor + 1 >= wire.size()) {
        out.error = DecodeError::kTruncatedName;
        return out;
      }
      const std::size_t target =
          (static_cast<std::size_t>(len & 0x3F) << 8) | wire[cursor + 1];
      if (in_place_end == 0) in_place_end = cursor + 2;
      // RFC 1035 pointers must point backwards; forward pointers enable
      // loops and are rejected (also catches self-pointing).
      if (target >= cursor) {
        out.error = DecodeError::kForwardPointer;
        return out;
      }
      if (++jumps > 64) {
        out.error = DecodeError::kCompressionLoop;
        return out;
      }
      cursor = target;
      continue;
    }
    if ((len & 0xC0) != 0) {  // 0x40/0x80 label types are unsupported
      out.error = DecodeError::kLabelTooLong;
      return out;
    }
    if (len == 0) {
      if (in_place_end == 0) in_place_end = cursor + 1;
      break;
    }
    if (cursor + 1 + len > wire.size()) {
      out.error = DecodeError::kTruncatedName;
      return out;
    }
    total_len += 1 + len;
    if (total_len > kMaxNameLength) {
      out.error = DecodeError::kNameTooLong;
      return out;
    }
    // Wire labels may carry arbitrary octets, but a NUL inside a label
    // would make the parsed name lie to every C-string consumer; treat it
    // as malformed (the DnsName invariant, enforced here rather than by a
    // throw out of the hot decode path).
    for (std::size_t b = 0; b < len; ++b) {
      if (wire[cursor + 1 + b] == 0) {
        out.error = DecodeError::kBadLabel;
        return out;
      }
    }
    ++labels;
    cursor += 1 + static_cast<std::size_t>(len);
  }
  out.ok = true;
  out.end = in_place_end;
  out.labels = static_cast<std::uint8_t>(labels);
  out.name_len = static_cast<std::uint8_t>(total_len);
  return out;
}

/// Walk the labels of a name `scan_name` already accepted, following
/// pointers, calling `f(label_bytes, label_len)` left to right.
template <typename F>
inline void for_each_label(std::span<const std::uint8_t> wire, std::size_t pos,
                           F&& f) {
  std::size_t cursor = pos;
  while (true) {
    const std::uint8_t len = wire[cursor];
    if ((len & 0xC0) == 0xC0) {
      cursor = (static_cast<std::size_t>(len & 0x3F) << 8) | wire[cursor + 1];
      continue;
    }
    if (len == 0) return;
    f(wire.data() + cursor + 1, len);
    cursor += 1 + static_cast<std::size_t>(len);
  }
}

}  // namespace orp::dns::wire
