#include "dns/wire_template.h"

#include <cstring>

namespace orp::dns {
namespace {

/// One fingerprint per field, each with pairwise-distinct bytes, none of
/// which equals its base-point byte (digits avoid '0', the others avoid
/// 0x00) — so moving one field to its fingerprint changes *every* byte the
/// field occupies, and each changed byte's value names the byte's position
/// within the field.
constexpr std::uint16_t kFpTxn = 0xA5C3;
constexpr std::uint32_t kFpCluster = 123;       // digits 1 2 3
constexpr std::uint32_t kFpIndex = 4'567'891;   // digits 4 5 6 7 8 9 1
constexpr std::uint32_t kFpTtl = 0xB1B2B3B4;
constexpr std::uint32_t kFpAddr = 0xC1C2C3C4;

// The verification point: unrelated to base and fingerprints, exercising
// every field at once.
constexpr StampVars kVerify{0x7E31, 987, 1'029'384, 0x00015180, 0x0A141E28};

std::uint8_t digit_char(std::uint32_t v, int width, int pos) noexcept {
  for (int i = width - 1 - pos; i > 0; --i) v /= 10;
  return static_cast<std::uint8_t>('0' + v % 10);
}

std::uint8_t be_byte(std::uint32_t v, int pos) noexcept {
  return static_cast<std::uint8_t>(v >> (8 * (3 - pos)));
}

/// The byte field `f` places at position `pos` under assignment `v`.
std::uint8_t field_byte(const StampVars& v, int f, int pos) noexcept {
  switch (f) {
    case 0:
      return static_cast<std::uint8_t>(pos == 0 ? v.txn >> 8 : v.txn & 0xff);
    case 1:
      return digit_char(v.cluster, 3, pos);
    case 2:
      return digit_char(v.index, 7, pos);
    case 3:
      return be_byte(v.ttl, pos);
    default:
      return be_byte(v.addr, pos);
  }
}

constexpr int kFieldWidth[5] = {2, 3, 7, 4, 4};

}  // namespace

WireTemplate WireTemplate::derive(const Factory& make, EncodeBuffer& scratch,
                                  bool raw_counts) {
  WireTemplate t;
  const auto encode = [&](const StampVars& v) {
    const Message m = make(v);
    const auto wire = raw_counts ? encode_raw_counts_into(m, scratch)
                                 : encode_into(m, scratch);
    return std::vector<std::uint8_t>(wire.begin(), wire.end());
  };

  const StampVars base{};
  t.bytes_ = encode(base);

  // One fingerprint encoding per field; diff against base.
  for (int f = 0; f < 5; ++f) {
    StampVars fp = base;
    switch (f) {
      case 0: fp.txn = kFpTxn; break;
      case 1: fp.cluster = kFpCluster; break;
      case 2: fp.index = kFpIndex; break;
      case 3: fp.ttl = kFpTtl; break;
      case 4: fp.addr = kFpAddr; break;
    }
    const std::vector<std::uint8_t> wire = encode(fp);
    if (wire.size() != t.bytes_.size()) return t;  // shape not stampable
    for (std::size_t off = 0; off < wire.size(); ++off) {
      if (wire[off] == t.bytes_[off]) continue;
      // Which byte of the field moved here? The fingerprint's bytes are
      // pairwise distinct, so at most one position can match — and its
      // base-point byte must match what the base encoding shows.
      int found = -1;
      for (int pos = 0; pos < kFieldWidth[f]; ++pos) {
        if (field_byte(fp, f, pos) == wire[off] &&
            field_byte(base, f, pos) == t.bytes_[off]) {
          found = pos;
          break;
        }
      }
      if (found < 0) return t;  // byte changed in an unexplained way
      t.patches_.push_back(Patch{static_cast<std::uint16_t>(off),
                                 static_cast<Field>(f),
                                 static_cast<std::uint8_t>(found)});
    }
  }

  // Full differential verification at an unrelated point. Any factory
  // nonlinearity the probing missed (a var steering compression layout, a
  // length change, byte coupling) fails here and the template declines.
  const std::vector<std::uint8_t> expect = encode(kVerify);
  if (expect.size() != t.bytes_.size()) return t;
  std::vector<std::uint8_t> got(t.bytes_);
  t.stamp_at(kVerify, got.data());
  if (std::memcmp(got.data(), expect.data(), expect.size()) != 0) return t;

  t.build_segments();
  t.ok_ = true;
  return t;
}

void WireTemplate::build_segments() {
  std::vector<std::uint8_t> patched(bytes_.size(), 0);
  for (const Patch& p : patches_) patched[p.off] = 1;
  segments_.clear();
  std::size_t i = 0;
  while (i < bytes_.size()) {
    if (patched[i]) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < bytes_.size() && !patched[j]) ++j;
    segments_.push_back(Segment{static_cast<std::uint16_t>(i),
                                static_cast<std::uint16_t>(j - i)});
    i = j;
  }
}

void WireTemplate::stamp_at(const StampVars& v, std::uint8_t* out) const {
  for (const Patch& p : patches_)
    out[p.off] = field_byte(v, static_cast<int>(p.field), p.pos);
}

std::span<const std::uint8_t> WireTemplate::stamp(const StampVars& v,
                                                  EncodeBuffer& scratch) const {
  scratch.out.assign(bytes_.begin(), bytes_.end());
  stamp_at(v, scratch.out.data());
  return scratch.out;
}

void WireTemplate::stamp_append(const StampVars& v,
                                std::vector<std::uint8_t>& arena) const {
  const std::size_t off = arena.size();
  arena.insert(arena.end(), bytes_.begin(), bytes_.end());
  stamp_at(v, arena.data() + off);
}

bool WireTemplate::match(std::span<const std::uint8_t> wire,
                         StampVars& out) const {
  if (!ok_ || wire.size() != bytes_.size()) return false;
  // Literal bytes first: one memcmp per unpatched run.
  for (const Segment& s : segments_)
    if (std::memcmp(wire.data() + s.off, bytes_.data() + s.off, s.len) != 0)
      return false;
  out = StampVars{};
  std::uint32_t seen[5] = {};  // bitmask of positions recovered per field
  for (const Patch& p : patches_) {
    const std::uint8_t b = wire[p.off];
    const int f = static_cast<int>(p.field);
    if (f == 1 || f == 2) {
      if (b < '0' || b > '9') return false;
    }
    const std::uint32_t bit = 1u << p.pos;
    if (seen[f] & bit) {
      // A compression-duplicated copy: must agree with the first one.
      if (field_byte(out, f, p.pos) != b) return false;
      continue;
    }
    seen[f] |= bit;
    switch (p.field) {
      case Field::kTxn:
        out.txn |= static_cast<std::uint16_t>(b << (p.pos == 0 ? 8 : 0));
        break;
      case Field::kCluster:
        out.cluster += static_cast<std::uint32_t>(b - '0') *
                       (p.pos == 0 ? 100u : p.pos == 1 ? 10u : 1u);
        break;
      case Field::kIndex: {
        std::uint32_t scale = 1;
        for (int i = 6 - p.pos; i > 0; --i) scale *= 10;
        out.index += static_cast<std::uint32_t>(b - '0') * scale;
        break;
      }
      case Field::kTtl:
        out.ttl |= static_cast<std::uint32_t>(b) << (8 * (3 - p.pos));
        break;
      case Field::kAddr:
        out.addr |= static_cast<std::uint32_t>(b) << (8 * (3 - p.pos));
        break;
    }
  }
  return true;
}

}  // namespace orp::dns
