// Pre-encoded wire templates for hot message shapes.
//
// PR 6 moved the per-event cost floor onto per-packet work; the largest
// producer-side term left is running the full wire encoder for messages
// whose bytes are almost entirely invariant: every probe query, every
// authoritative A answer/NXDOMAIN, and every scripted-resolver response of
// one behavior profile differ from their siblings only in the transaction
// id, the two digit runs of the probe subdomain, and (for the auth answer)
// the TTL and A rdata. A WireTemplate captures that: the full encoding of
// one representative message plus a *patch plan* — the byte offsets where
// those fields live — so producing the next packet of the same shape is a
// memcpy plus a handful of byte pokes.
//
// The plan is not hand-derived from wire-format knowledge; it is *learned*
// by differential probing at derive() time and then verified:
//
//   1. encode the factory's message at a base point (all vars zero);
//   2. re-encode with one var at a time moved to a fingerprint value whose
//      bytes are pairwise distinct — every byte that changed belongs to
//      that var, and the changed byte's value identifies *which* byte of
//      the var lives there (compression may duplicate a field; each copy
//      gets its own patch entry);
//   3. stamp an unrelated assignment and memcmp it against the factory's
//      full encoding of the same assignment.
//
// Any ambiguity, length change, or verification mismatch marks the template
// not-ok and callers keep the full encode path — a template can therefore
// never produce bytes that differ from `encode_into`, it can only decline.
//
// match() runs the plan in reverse: recognize a wire packet as a stamped
// instance of this template and recover its vars without a DNS decode. The
// auth server and scripted resolvers use this to classify probe queries at
// memcmp cost.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "dns/codec.h"
#include "dns/message.h"

namespace orp::dns {

/// The fields a template instance can vary in. Digit runs are the probe
/// subdomain's zero-padded decimal labels ("or<CCC>.<NNNNNNN>"); ttl/addr
/// cover an answer record's TTL and A rdata. A factory that ignores a var
/// simply yields a template with no patches of that kind.
struct StampVars {
  std::uint16_t txn = 0;
  std::uint32_t cluster = 0;  // 3-digit run
  std::uint32_t index = 0;    // 7-digit run
  std::uint32_t ttl = 0;
  std::uint32_t addr = 0;     // A rdata, host order (poked big-endian)
};

class WireTemplate {
 public:
  static constexpr std::uint32_t kClusterLimit = 1000;       // 3 digits
  static constexpr std::uint32_t kIndexLimit = 10'000'000;   // 7 digits

  using Factory = std::function<Message(const StampVars&)>;

  WireTemplate() = default;

  /// Learn a template for `make`'s message shape (see file comment). With
  /// `raw_counts`, encodings go through encode_raw_counts_into — for shapes
  /// whose header counts deliberately lie (AnswerMode::kUndecodable).
  static WireTemplate derive(const Factory& make, EncodeBuffer& scratch,
                             bool raw_counts = false);

  bool ok() const noexcept { return ok_; }
  std::size_t size() const noexcept { return bytes_.size(); }

  /// Whether `v` fits the patchable widths. Out-of-width ids (cluster >=
  /// 1000, index >= 10^7) widen the rendered name and need the full path.
  bool covers(const StampVars& v) const noexcept {
    return ok_ && v.cluster < kClusterLimit && v.index < kIndexLimit;
  }

  /// Stamp into `scratch.out` (cleared first, like encode_into); the span
  /// aliases scratch and is valid until its next use.
  std::span<const std::uint8_t> stamp(const StampVars& v,
                                      EncodeBuffer& scratch) const;

  /// Stamp appended to `arena` (the scanner's staging buffer).
  void stamp_append(const StampVars& v, std::vector<std::uint8_t>& arena) const;

  /// Recognize `wire` as a stamped instance of this template: every byte
  /// outside the patch plan must equal the template, every patched byte
  /// must be a plausible var byte (digits in digit runs, consistent across
  /// compression-duplicated copies). On success the recovered vars are the
  /// unique assignment with stamp(out) == wire.
  bool match(std::span<const std::uint8_t> wire, StampVars& out) const;

 private:
  // kind/pos of one patched byte. pos counts from the most significant
  // byte/digit of the var (txn pos 0 = high byte; cluster pos 0 = hundreds).
  enum class Field : std::uint8_t { kTxn, kCluster, kIndex, kTtl, kAddr };
  struct Patch {
    std::uint16_t off = 0;
    Field field = Field::kTxn;
    std::uint8_t pos = 0;
  };

  void stamp_at(const StampVars& v, std::uint8_t* out) const;
  void build_segments();

  std::vector<std::uint8_t> bytes_;
  std::vector<Patch> patches_;
  /// Maximal literal (unpatched) runs, for match()'s memcmp sweep.
  struct Segment {
    std::uint16_t off = 0;
    std::uint16_t len = 0;
  };
  std::vector<Segment> segments_;
  bool ok_ = false;
};

}  // namespace orp::dns
