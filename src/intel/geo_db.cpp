#include "intel/geo_db.h"

#include <algorithm>
#include <stdexcept>

namespace orp::intel {

void GeoDb::add_range(net::IPv4Addr first, net::IPv4Addr last,
                      std::string_view country, std::uint32_t asn,
                      std::string_view as_name) {
  if (first.value() > last.value())
    throw std::invalid_argument("GeoDb range: first > last");
  entries_.push_back(GeoEntry{first.value(), last.value(),
                              std::string(country), asn,
                              std::string(as_name)});
  built_ = false;
}

void GeoDb::add_prefix(net::Prefix prefix, std::string_view country,
                       std::uint32_t asn, std::string_view as_name) {
  add_range(net::IPv4Addr(prefix.first()), net::IPv4Addr(prefix.last()),
            country, asn, as_name);
}

void GeoDb::build() {
  // Sort by range start, then by size descending so that for equal starts the
  // wider (outer) range precedes the narrower (inner) one.
  std::sort(entries_.begin(), entries_.end(),
            [](const GeoEntry& a, const GeoEntry& b) {
              if (a.first != b.first) return a.first < b.first;
              return (a.last - a.first) > (b.last - b.first);
            });
  built_ = true;
}

std::optional<GeoEntry> GeoDb::lookup(net::IPv4Addr addr) const {
  if (!built_ || entries_.empty()) return std::nullopt;
  const std::uint32_t v = addr.value();
  // Walk back from the insertion point, keeping the narrowest covering
  // range. Because entries are sorted by start, every candidate lies to the
  // left; we stop early once a covering range is found and the remaining
  // candidates' starts are so far left that only *wider* ranges could cover
  // v (a range starting earlier and still covering v is at least as wide as
  // the distance from its start to v).
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), v,
      [](std::uint32_t value, const GeoEntry& e) { return value < e.first; });
  std::optional<GeoEntry> best;
  std::uint64_t best_width = ~std::uint64_t{0};
  while (it != entries_.begin()) {
    --it;
    if (best && std::uint64_t{v} - it->first > best_width) break;
    if (it->last >= v) {
      const std::uint64_t width = std::uint64_t{it->last} - it->first;
      if (width < best_width) {
        best = *it;
        best_width = width;
      }
    }
  }
  return best;
}

std::string GeoDb::country_of(net::IPv4Addr addr) const {
  const auto entry = lookup(addr);
  return entry ? entry->country : "??";
}

}  // namespace orp::intel
