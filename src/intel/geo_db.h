// Geolocation / AS database — stand-in for the ip2location service used in
// §IV-C2 ("Distribution of Malicious Resolvers"). Range-based longest-match
// lookup from IPv4 ranges to ISO country code and autonomous system.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/ipv4.h"

namespace orp::intel {

struct GeoEntry {
  std::uint32_t first = 0;  // inclusive range, host byte order
  std::uint32_t last = 0;
  std::string country;      // ISO 3166-1 alpha-2
  std::uint32_t asn = 0;
  std::string as_name;
};

class GeoDb {
 public:
  /// Ranges may nest; lookup returns the narrowest covering range
  /// (allocation-within-allocation, the normal shape of registry data).
  void add_range(net::IPv4Addr first, net::IPv4Addr last,
                 std::string_view country, std::uint32_t asn = 0,
                 std::string_view as_name = "");
  void add_prefix(net::Prefix prefix, std::string_view country,
                  std::uint32_t asn = 0, std::string_view as_name = "");

  /// Must be called after all ranges are added and before lookups.
  void build();

  std::optional<GeoEntry> lookup(net::IPv4Addr addr) const;

  /// Country only; "??" when unknown (the paper's Whois-miss case).
  std::string country_of(net::IPv4Addr addr) const;

  std::size_t size() const noexcept { return entries_.size(); }

 private:
  std::vector<GeoEntry> entries_;
  bool built_ = false;
};

}  // namespace orp::intel
