#include "intel/org_db.h"

#include <algorithm>
#include <stdexcept>

namespace orp::intel {

void OrgDb::add_range(net::IPv4Addr first, net::IPv4Addr last,
                      std::string_view org) {
  if (first.value() > last.value())
    throw std::invalid_argument("OrgDb range: first > last");
  entries_.push_back(Entry{first.value(), last.value(), std::string(org)});
  built_ = false;
}

void OrgDb::add_prefix(net::Prefix prefix, std::string_view org) {
  add_range(net::IPv4Addr(prefix.first()), net::IPv4Addr(prefix.last()), org);
}

void OrgDb::build() {
  std::sort(entries_.begin(), entries_.end(),
            [](const Entry& a, const Entry& b) {
              if (a.first != b.first) return a.first < b.first;
              return (a.last - a.first) > (b.last - b.first);
            });
  built_ = true;
}

std::string OrgDb::org_of(net::IPv4Addr addr) const {
  if (net::is_private_address(addr)) return "private network";
  if (!built_) return "unknown";
  const std::uint32_t v = addr.value();
  auto it = std::upper_bound(
      entries_.begin(), entries_.end(), v,
      [](std::uint32_t value, const Entry& e) { return value < e.first; });
  const Entry* best = nullptr;
  std::uint64_t best_width = ~std::uint64_t{0};
  while (it != entries_.begin()) {
    --it;
    if (best && std::uint64_t{v} - it->first > best_width) break;
    if (it->last >= v) {
      const std::uint64_t width = std::uint64_t{it->last} - it->first;
      if (width < best_width) {
        best = &*it;
        best_width = width;
      }
    }
  }
  return best ? best->org : "unknown";
}

}  // namespace orp::intel
