// Organization attribution — stand-in for the Whois lookups behind
// Table VIII's "Org Name" column. Private-network addresses answer with
// "private network" without consulting the database, as the paper renders
// them.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "net/ipv4.h"

namespace orp::intel {

class OrgDb {
 public:
  void add_range(net::IPv4Addr first, net::IPv4Addr last,
                 std::string_view org);
  void add_prefix(net::Prefix prefix, std::string_view org);
  void build();

  /// "private network" for RFC1918/CGN space, the registered org name when
  /// covered, "unknown" otherwise (the paper's Whois-miss case, §IV-B4).
  std::string org_of(net::IPv4Addr addr) const;

  std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    std::uint32_t first;
    std::uint32_t last;
    std::string org;
  };
  std::vector<Entry> entries_;
  bool built_ = false;
};

}  // namespace orp::intel
