#include "intel/threat_db.h"

#include <array>
#include <sstream>

namespace orp::intel {

std::string_view to_string(ThreatCategory c) noexcept {
  switch (c) {
    case ThreatCategory::kMalware: return "Malware";
    case ThreatCategory::kPhishing: return "Phishing";
    case ThreatCategory::kSpam: return "Spam";
    case ThreatCategory::kSshBruteforce: return "SSH Bruteforce";
    case ThreatCategory::kScan: return "Scan";
    case ThreatCategory::kBotnet: return "Botnet";
    case ThreatCategory::kEmailBruteforce: return "Email Bruteforce";
  }
  return "Unknown";
}

void ThreatDb::add_report(net::IPv4Addr addr, ThreatCategory category,
                          std::string_view source, std::uint32_t count) {
  auto& reports = db_[addr];
  for (auto& r : reports) {
    if (r.category == category && r.source == source) {
      r.count += count;
      return;
    }
  }
  reports.push_back(ThreatReport{category, std::string(source), count});
}

bool ThreatDb::is_reported(net::IPv4Addr addr) const {
  return db_.contains(addr);
}

std::vector<ThreatReport> ThreatDb::lookup(net::IPv4Addr addr) const {
  const auto it = db_.find(addr);
  if (it == db_.end()) return {};
  return it->second;
}

std::optional<ThreatCategory> ThreatDb::dominant_category(
    net::IPv4Addr addr) const {
  const auto it = db_.find(addr);
  if (it == db_.end()) return std::nullopt;
  std::array<std::uint64_t, kThreatCategoryCount> totals{};
  for (const auto& r : it->second)
    totals[static_cast<std::size_t>(r.category)] += r.count;
  std::size_t best = 0;
  for (std::size_t i = 1; i < totals.size(); ++i)
    if (totals[i] > totals[best]) best = i;
  if (totals[best] == 0) return std::nullopt;
  return static_cast<ThreatCategory>(best);
}

std::string ThreatDb::report_card(net::IPv4Addr addr) const {
  std::ostringstream out;
  out << addr.to_string() << "\n";
  const auto it = db_.find(addr);
  if (it == db_.end()) {
    out << "  no reports on file\n";
    return out.str();
  }
  std::array<std::uint64_t, kThreatCategoryCount> totals{};
  for (const auto& r : it->second)
    totals[static_cast<std::size_t>(r.category)] += r.count;
  for (std::size_t i = 0; i < totals.size(); ++i) {
    if (totals[i] == 0) continue;
    out << "  " << to_string(static_cast<ThreatCategory>(i)) << ": "
        << totals[i] << " report(s)\n";
  }
  if (const auto dom = dominant_category(addr))
    out << "  dominant category: " << to_string(*dom) << "\n";
  return out.str();
}

}  // namespace orp::intel
