// Threat-intelligence database — the stand-in for the Cymon API the paper
// queries (§IV-C2). Maps IP addresses to community reports in the seven
// categories of Table IX. Lookup semantics mirror the paper's: an address is
// "malicious" if it has at least one report, and when reports span multiple
// categories the most frequently reported category wins.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "net/ipv4.h"

namespace orp::intel {

/// Report categories, in Table IX order.
enum class ThreatCategory : std::uint8_t {
  kMalware = 0,
  kPhishing,
  kSpam,
  kSshBruteforce,
  kScan,
  kBotnet,
  kEmailBruteforce,
};

constexpr std::size_t kThreatCategoryCount = 7;

std::string_view to_string(ThreatCategory c) noexcept;

struct ThreatReport {
  ThreatCategory category = ThreatCategory::kMalware;
  std::string source;        // reporting feed, e.g. "ransomware-tracker"
  std::uint32_t count = 1;   // number of community reports in this category
};

class ThreatDb {
 public:
  void add_report(net::IPv4Addr addr, ThreatCategory category,
                  std::string_view source = "feed", std::uint32_t count = 1);

  bool is_reported(net::IPv4Addr addr) const;

  /// All reports for an address (empty if unreported).
  std::vector<ThreatReport> lookup(net::IPv4Addr addr) const;

  /// The paper's tie-break: category with the largest report count.
  std::optional<ThreatCategory> dominant_category(net::IPv4Addr addr) const;

  /// Fig. 4-style report card ("208.91.197.91 — malware x12, phishing x3…").
  std::string report_card(net::IPv4Addr addr) const;

  std::size_t reported_address_count() const noexcept { return db_.size(); }

 private:
  struct AddrHash {
    std::size_t operator()(net::IPv4Addr a) const noexcept {
      return std::hash<std::uint32_t>{}(a.value());
    }
  };
  std::unordered_map<net::IPv4Addr, std::vector<ThreatReport>, AddrHash> db_;
};

}  // namespace orp::intel
