#include "net/buffer_pool.h"

namespace orp::net {

BufferPool::~BufferPool() {
  // References can legally outlive the pool (e.g. events still queued in a
  // loop that is destroyed after its Network). Orphan any live slab: mark it
  // heap-owned and release vector ownership, so the last PayloadRef deletes
  // it instead of calling back into a destroyed free list.
  for (auto& slab : slabs_) {
    if (slab->refs > 0) {
      slab->owner = nullptr;
      slab.release();
    }
  }
}

PayloadRef BufferPool::acquire(std::span<const std::uint8_t> bytes) {
  PayloadSlab* s;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
  } else {
    slabs_.push_back(std::make_unique<PayloadSlab>());
    s = slabs_.back().get();
    s->owner = this;
  }
  s->bytes.assign(bytes.begin(), bytes.end());
  s->refs = 1;
  return PayloadRef(s);
}

}  // namespace orp::net
