#include "net/buffer_pool.h"

#include <atomic>

namespace orp::net {

namespace {
// Process-wide because the orphaning pool is mid-destruction when the count
// becomes interesting; relaxed is enough for a monotonically-read telemetry
// counter.
std::atomic<std::uint64_t> g_orphaned_slabs{0};
}  // namespace

std::uint64_t BufferPool::orphaned_total() noexcept {
  return g_orphaned_slabs.load(std::memory_order_relaxed);
}

BufferPool::~BufferPool() {
  // References can legally outlive the pool (e.g. events still queued in a
  // loop that is destroyed after its Network). Orphan any live slab: mark it
  // heap-owned and release vector ownership, so the last PayloadRef deletes
  // it instead of calling back into a destroyed free list.
  for (auto& slab : slabs_) {
    if (slab->refs > 0) {
      slab->owner = nullptr;
      slab.release();
      g_orphaned_slabs.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

PayloadRef BufferPool::acquire(std::span<const std::uint8_t> bytes) {
  const std::size_t want = class_for_size(bytes.size());
  PayloadSlab* s = nullptr;
  // Pop from the smallest class that fits; any larger class also fits (its
  // slabs' capacities are at least their own class size).
  for (std::size_t b = want; b < kNumClasses; ++b) {
    if (!free_[b].empty()) {
      s = free_[b].back();
      free_[b].pop_back();
      break;
    }
  }
  if (s == nullptr) {
    slabs_.push_back(std::make_unique<PayloadSlab>());
    s = slabs_.back().get();
    s->owner = this;
    // Reserve the whole class up front: capacity never shrinks, so this
    // slab serves every future acquire of its class without regrowing.
    const std::size_t cap = class_size(want);
    s->bytes.reserve(cap < bytes.size() ? bytes.size() : cap);
  }
  s->bytes.assign(bytes.begin(), bytes.end());
  s->refs = 1;
  return PayloadRef(s);
}

}  // namespace orp::net
