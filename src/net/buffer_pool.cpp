#include "net/buffer_pool.h"

#include <atomic>

namespace orp::net {

namespace {
// Process-wide because the orphaning pool is mid-destruction when the count
// becomes interesting; relaxed is enough for a monotonically-read telemetry
// counter.
std::atomic<std::uint64_t> g_orphaned_slabs{0};
}  // namespace

std::uint64_t BufferPool::orphaned_total() noexcept {
  return g_orphaned_slabs.load(std::memory_order_relaxed);
}

BufferPool::~BufferPool() {
  // References can legally outlive the pool (e.g. events still queued in a
  // loop that is destroyed after its Network). Orphan any live slab: mark it
  // heap-owned and release vector ownership, so the last PayloadRef deletes
  // it instead of calling back into a destroyed free list.
  for (auto& slab : slabs_) {
    if (slab->refs > 0) {
      slab->owner = nullptr;
      slab.release();
      g_orphaned_slabs.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

PayloadRef BufferPool::acquire(std::span<const std::uint8_t> bytes) {
  PayloadSlab* s;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
  } else {
    slabs_.push_back(std::make_unique<PayloadSlab>());
    s = slabs_.back().get();
    s->owner = this;
  }
  s->bytes.assign(bytes.begin(), bytes.end());
  s->refs = 1;
  return PayloadRef(s);
}

}  // namespace orp::net
