// Shard-local recycled payload buffers.
//
// A campaign pushes millions of datagrams through Network::send, and before
// this pool every hop — the in-flight event, each tap, the receiving handler —
// held its own std::vector copy of the payload. A PayloadRef is a ref-counted
// handle to one PayloadSlab; the sender's bytes are written once and shared by
// everyone on the path. When the last reference drops, a pooled slab returns
// to its BufferPool's free list with its vector capacity intact, so the
// steady-state send path stops touching the allocator entirely.
//
// Threading: shards are single-threaded by construction (one event loop per
// shard, pool owned by the shard's Network), so the refcount is a plain
// integer. A PayloadRef must never cross shards; merged artifacts
// (CaptureStore arenas, R2Store chunks) copy bytes out instead.
#pragma once

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <memory>
#include <span>
#include <utility>
#include <vector>

namespace orp::net {

class BufferPool;

/// One payload buffer plus its intrusive refcount. `owner == nullptr` marks a
/// standalone heap slab (from the vector-adopting PayloadRef constructors);
/// it is deleted at the last release instead of recycled.
struct PayloadSlab {
  std::vector<std::uint8_t> bytes;
  std::uint32_t refs = 0;
  BufferPool* owner = nullptr;
};

/// Shared immutable view of a payload. Copy = refcount bump; the bytes
/// themselves are never duplicated. Implicitly constructible from a vector or
/// initializer list so one-shot senders (tests, examples, client hosts) can
/// keep writing `Datagram{src, dst, dns::encode(q)}` — the vector is adopted,
/// not copied.
class PayloadRef {
 public:
  PayloadRef() noexcept = default;

  PayloadRef(std::vector<std::uint8_t> bytes)  // NOLINT: implicit by design
      : slab_(new PayloadSlab{std::move(bytes), 1, nullptr}) {}

  PayloadRef(std::initializer_list<std::uint8_t> bytes)  // NOLINT
      : PayloadRef(std::vector<std::uint8_t>(bytes)) {}

  PayloadRef(const PayloadRef& o) noexcept : slab_(o.slab_) {
    if (slab_) ++slab_->refs;
  }
  PayloadRef(PayloadRef&& o) noexcept : slab_(std::exchange(o.slab_, nullptr)) {}
  PayloadRef& operator=(const PayloadRef& o) noexcept {
    if (this != &o) {
      release();
      slab_ = o.slab_;
      if (slab_) ++slab_->refs;
    }
    return *this;
  }
  PayloadRef& operator=(PayloadRef&& o) noexcept {
    if (this != &o) {
      release();
      slab_ = std::exchange(o.slab_, nullptr);
    }
    return *this;
  }
  ~PayloadRef() { release(); }

  const std::uint8_t* data() const noexcept {
    return slab_ ? slab_->bytes.data() : nullptr;
  }
  std::size_t size() const noexcept { return slab_ ? slab_->bytes.size() : 0; }
  bool empty() const noexcept { return size() == 0; }
  const std::uint8_t* begin() const noexcept { return data(); }
  const std::uint8_t* end() const noexcept { return data() + size(); }
  std::uint8_t operator[](std::size_t i) const noexcept { return data()[i]; }

  std::span<const std::uint8_t> span() const noexcept {
    return {data(), size()};
  }
  operator std::span<const std::uint8_t>() const noexcept {  // NOLINT
    return span();
  }

  std::vector<std::uint8_t> to_vector() const {
    return {begin(), end()};
  }

 private:
  friend class BufferPool;
  explicit PayloadRef(PayloadSlab* slab) noexcept : slab_(slab) {}
  void release() noexcept;

  PayloadSlab* slab_ = nullptr;
};

/// Free-list of PayloadSlabs. acquire() copies the caller's bytes into a
/// recycled slab (no allocation once the free lists cover the in-flight
/// high-water mark).
///
/// The free list is segregated into power-of-two capacity classes
/// (256 B … 64 KiB). Mixed traffic — mss-sized stream segments interleaved
/// with whole reassembled DNS messages — would otherwise churn a single LIFO
/// list: a large acquire that pops a small-capacity slab regrows it, paying
/// an allocation that warm-up can never fully retire. With classes, an
/// acquire only ever pops a slab whose capacity already fits, and a new slab
/// reserves its whole class up front, so the steady state is allocation-free
/// regardless of how sizes interleave.
class BufferPool {
 public:
  BufferPool() = default;
  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;
  ~BufferPool();

  PayloadRef acquire(std::span<const std::uint8_t> bytes);

  /// Total slabs ever created (bounded by the per-class in-flight
  /// high-water marks).
  std::size_t slab_count() const noexcept { return slabs_.size(); }
  std::size_t free_count() const noexcept {
    std::size_t n = 0;
    for (const auto& f : free_) n += f.size();
    return n;
  }
  /// Slabs currently referenced somewhere on the packet path.
  std::size_t in_flight_count() const noexcept {
    return slabs_.size() - free_count();
  }
  /// Total recycle events (last reference dropped, slab back on the list).
  std::uint64_t recycled_count() const noexcept { return recycled_; }
  /// Process-wide count of slabs orphaned by pool destruction while still
  /// referenced (see ~BufferPool) — a standing observatory watches this for
  /// teardown-ordering leaks.
  static std::uint64_t orphaned_total() noexcept;

 private:
  friend class PayloadRef;

  /// Capacity classes 256 << 0 … 256 << 8 (= 64 KiB, the DNS/TCP message
  /// ceiling). Sizes above the last class are clamped into it; the giant
  /// slab keeps its real capacity and may regrow on reuse (no such payload
  /// exists on the simulated wire today).
  static constexpr std::size_t kMinClass = 256;
  static constexpr std::size_t kNumClasses = 9;

  static constexpr std::size_t class_size(std::size_t b) noexcept {
    return kMinClass << b;
  }
  /// Smallest class that holds `n` bytes.
  static constexpr std::size_t class_for_size(std::size_t n) noexcept {
    const auto b = static_cast<std::size_t>(std::countr_zero(
                       std::bit_ceil(n < kMinClass ? kMinClass : n))) -
                   8;
    return b < kNumClasses ? b : kNumClasses - 1;
  }
  /// Largest class whose size a slab of `cap` capacity covers — the
  /// invariant: every slab on free_[b] has capacity >= class_size(b).
  static constexpr std::size_t class_for_capacity(std::size_t cap) noexcept {
    const auto b = static_cast<std::size_t>(std::countr_zero(
                       std::bit_floor(cap < kMinClass ? kMinClass : cap))) -
                   8;
    return b < kNumClasses ? b : kNumClasses - 1;
  }

  void recycle(PayloadSlab* s) {
    free_[class_for_capacity(s->bytes.capacity())].push_back(s);
    ++recycled_;
  }

  std::vector<std::unique_ptr<PayloadSlab>> slabs_;
  std::array<std::vector<PayloadSlab*>, kNumClasses> free_;
  std::uint64_t recycled_ = 0;
};

inline void PayloadRef::release() noexcept {
  if (!slab_) return;
  if (--slab_->refs == 0) {
    if (slab_->owner != nullptr)
      slab_->owner->recycle(slab_);
    else
      delete slab_;
  }
  slab_ = nullptr;
}

}  // namespace orp::net
