#include "net/capture.h"

namespace orp::net {

void Capture::attach(Network& net) {
  net.add_tap([this](SimTime t, const Datagram& d) { observe(t, d); });
}

void Capture::observe(SimTime t, const Datagram& d) {
  if (d.dst.addr == host_) {
    ++inbound_count_;
    inbound_.push_back({t, d.src, d.dst, d.payload.to_vector()});
  } else if (d.src.addr == host_) {
    ++outbound_count_;
    if (!count_only_outbound_)
      outbound_.push_back({t, d.src, d.dst, d.payload.to_vector()});
    else
      ++count_only_outbound_count_;
  }
}

void Capture::clear() {
  inbound_.clear();
  outbound_.clear();
  inbound_count_ = 0;
  outbound_count_ = 0;
  count_only_outbound_count_ = 0;
}

}  // namespace orp::net
