// Packet capture: the in-memory analogue of the paper's pcap traces.
//
// The paper captures Q1/R2 at the prober (modified ZMap) and Q2/R1 at the
// authoritative name server (tcpdump). A Capture is a tap over the simulated
// network filtered to one vantage point; records keep raw wire bytes so the
// analysis layer re-decodes them exactly as the paper's libpcap tooling did —
// including failing on the undecodable packets of the 2013 corpus.
#pragma once

#include <cstdint>
#include <vector>

#include "net/sim_time.h"
#include "net/transport.h"

namespace orp::net {

struct CapturedPacket {
  SimTime time;
  Endpoint src;
  Endpoint dst;
  std::vector<std::uint8_t> payload;
};

/// A vantage point: capture every datagram to or from `host`, except that
/// counting-only mode can be enabled for very high-volume directions (the
/// paper does not retain 3.7B Q1 payloads either — ZMap only logs sends).
class Capture {
 public:
  explicit Capture(IPv4Addr host) : host_(host) {}

  /// Attach to a network as a tap.
  void attach(Network& net);

  /// When set, packets *sent by* host_ are counted but payloads not stored.
  void set_count_only_outbound(bool v) noexcept { count_only_outbound_ = v; }
  bool count_only_outbound() const noexcept { return count_only_outbound_; }
  /// Outbound packets seen while in count-only mode (payload dropped) — the
  /// ZMap-style "sends logged, not retained" figure, surfaced read-only for
  /// the metrics layer.
  std::uint64_t count_only_outbound_count() const noexcept {
    return count_only_outbound_count_;
  }

  const std::vector<CapturedPacket>& inbound() const noexcept {
    return inbound_;
  }
  const std::vector<CapturedPacket>& outbound() const noexcept {
    return outbound_;
  }
  std::uint64_t inbound_count() const noexcept { return inbound_count_; }
  std::uint64_t outbound_count() const noexcept { return outbound_count_; }

  void clear();

 private:
  void observe(SimTime t, const Datagram& d);

  IPv4Addr host_;
  bool count_only_outbound_ = false;
  std::vector<CapturedPacket> inbound_;
  std::vector<CapturedPacket> outbound_;
  std::uint64_t inbound_count_ = 0;
  std::uint64_t outbound_count_ = 0;
  std::uint64_t count_only_outbound_count_ = 0;
};

}  // namespace orp::net
