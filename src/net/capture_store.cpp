#include "net/capture_store.h"

#include <algorithm>
#include <compare>
#include <tuple>

#include "util/hash.h"
#include "util/rng.h"

namespace orp::net {

namespace {

std::uint64_t packet_hash(const Datagram& d) {
  return util::Fnv1a()
      .word_bytes(d.src.addr.value())
      .word_bytes(d.src.port)
      .word_bytes(d.dst.addr.value())
      .word_bytes(d.dst.port)
      .bytes(d.payload)
      .value();
}

// The batch digest below computes the same per-packet FNV-1a value as
// packet_hash, restructured from a latency problem into a throughput one:
//
//  * word_bytes() of a 32-bit address (or 16-bit port) folds 4 (or 6)
//    trailing zero bytes; folding a zero is h = (h ^ 0) * p = h * p, so a
//    run of k zeros collapses to one multiply by p^k.
//  * FNV's per-byte step is a serial xor-multiply chain (~3-cycle multiply
//    latency each), but distinct packets' chains are independent — running
//    four packets' chains interleaved keeps the multiplier port busy
//    instead of waiting out each packet's dependency chain.
//
// Both transformations are exact: every packet's folded value is
// bit-identical to packet_hash, and the digest is a wrapping sum, so lane
// completion order cannot change it.
constexpr std::uint64_t fnv_pow(int n) noexcept {
  std::uint64_t r = 1;
  while (n-- > 0) r *= util::kFnv1aPrime;
  return r;
}
constexpr std::uint64_t kP = util::kFnv1aPrime;
constexpr std::uint64_t kP4 = fnv_pow(4);  // the 4 zero bytes above an addr
constexpr std::uint64_t kP6 = fnv_pow(6);  // the 6 zero bytes above a port

/// FNV state resumed after the (src addr, src port) prefix, with the
/// destination and payload still to fold.
struct DigestLane {
  std::uint64_t h = 0;
  std::uint32_t dst_addr = 0;
  std::uint16_t dst_port = 0;
  const std::uint8_t* payload = nullptr;
  std::size_t len = 0;
};

/// Fold one lane's destination fields (zero runs collapsed).
std::uint64_t fold_dst(std::uint64_t h, std::uint32_t addr,
                       std::uint16_t port) noexcept {
  h = (h ^ (addr & 0xff)) * kP;
  h = (h ^ ((addr >> 8) & 0xff)) * kP;
  h = (h ^ ((addr >> 16) & 0xff)) * kP;
  h = (h ^ (addr >> 24)) * kP;
  h *= kP4;
  h = (h ^ (port & 0xff)) * kP;
  h = (h ^ (port >> 8)) * kP;
  h *= kP6;
  return h;
}

std::uint64_t lane_value(const DigestLane& l) noexcept {
  std::uint64_t h = fold_dst(l.h, l.dst_addr, l.dst_port);
  for (std::size_t i = 0; i < l.len; ++i) h = (h ^ l.payload[i]) * kP;
  return util::mix64(h);
}

/// Digest contribution of `count` (≤4) pending lanes. Four equal-length
/// payloads (every templated probe of a batch) run interleaved; anything
/// else falls back to per-lane chains.
std::uint64_t drain_lanes(const DigestLane* l, int count) noexcept {
  if (count == 4 && l[0].len == l[1].len && l[1].len == l[2].len &&
      l[2].len == l[3].len) {
    std::uint64_t h0 = fold_dst(l[0].h, l[0].dst_addr, l[0].dst_port);
    std::uint64_t h1 = fold_dst(l[1].h, l[1].dst_addr, l[1].dst_port);
    std::uint64_t h2 = fold_dst(l[2].h, l[2].dst_addr, l[2].dst_port);
    std::uint64_t h3 = fold_dst(l[3].h, l[3].dst_addr, l[3].dst_port);
    const std::uint8_t* p0 = l[0].payload;
    const std::uint8_t* p1 = l[1].payload;
    const std::uint8_t* p2 = l[2].payload;
    const std::uint8_t* p3 = l[3].payload;
    const std::size_t n = l[0].len;
    for (std::size_t i = 0; i < n; ++i) {
      h0 = (h0 ^ p0[i]) * kP;
      h1 = (h1 ^ p1[i]) * kP;
      h2 = (h2 ^ p2[i]) * kP;
      h3 = (h3 ^ p3[i]) * kP;
    }
    return util::mix64(h0) + util::mix64(h1) + util::mix64(h2) +
           util::mix64(h3);
  }
  std::uint64_t sum = 0;
  for (int i = 0; i < count; ++i) sum += lane_value(l[i]);
  return sum;
}

}  // namespace

void CaptureStore::attach(Network& net, IPv4Addr host) {
  net.add_tap(
      [this, host](SimTime t, const Datagram& d) {
        if (d.dst.addr == host)
          add(t, d);
        else if (d.src.addr == host)
          count_only(t, d);
      },
      [this, host](SimTime t, std::span<const PacketView> pkts) {
        observe_batch(t, pkts, host);
      });
}

void CaptureStore::observe_batch(SimTime t, std::span<const PacketView> pkts,
                                 IPv4Addr host) {
  // The (src addr, src port) digest prefix is identical for every packet of
  // one sender's run — cache the FNV state after those 16 bytes and resume
  // it per packet instead of re-folding them 3.7B times per campaign.
  util::Fnv1a prefix;
  Endpoint prefix_src{};
  bool have_prefix = false;
  DigestLane lanes[4];
  int pending = 0;
  for (const PacketView& p : pkts) {
    if (!have_prefix || prefix_src != p.src) {
      prefix = util::Fnv1a()
                   .word_bytes(p.src.addr.value())
                   .word_bytes(p.src.port);
      prefix_src = p.src;
      have_prefix = true;
    }
    if (p.dst.addr == host) {
      if (retain_payloads_) {
        records_.push_back(
            CaptureRecord{t, p.src, p.dst, arena_.size(),
                          static_cast<std::uint32_t>(p.payload.size())});
        arena_.insert(arena_.end(), p.payload.begin(), p.payload.end());
      }
    } else if (p.src.addr != host) {
      continue;  // not this vantage's traffic
    }
    ++packet_count_;
    lanes[pending++] =
        DigestLane{prefix.value(), p.dst.addr.value(), p.dst.port,
                   p.payload.data(), p.payload.size()};
    if (pending == 4) {
      digest_ += drain_lanes(lanes, 4);
      pending = 0;
    }
  }
  digest_ += drain_lanes(lanes, pending);
}

void CaptureStore::add(SimTime t, const Datagram& d) {
  if (retain_payloads_) {
    records_.push_back(
        CaptureRecord{t, d.src, d.dst, arena_.size(),
                      static_cast<std::uint32_t>(d.payload.size())});
    arena_.insert(arena_.end(), d.payload.begin(), d.payload.end());
  }
  ++packet_count_;
  absorb_digest(d);
}

void CaptureStore::count_only(SimTime t, const Datagram& d) {
  (void)t;
  ++packet_count_;
  absorb_digest(d);
}

void CaptureStore::reserve(std::size_t records, std::size_t arena_bytes) {
  records_.reserve(records);
  arena_.reserve(arena_bytes);
}

void CaptureStore::absorb_digest(const Datagram& d) {
  // Wrapping sum of mixed per-packet hashes: commutative and associative,
  // so merge order (and shard layout) cannot change the result.
  digest_ += util::mix64(packet_hash(d));
}

void CaptureStore::merge(CaptureStore&& other) {
  const std::uint64_t base = arena_.size();
  arena_.insert(arena_.end(), other.arena_.begin(), other.arena_.end());
  records_.reserve(records_.size() + other.records_.size());
  for (const CaptureRecord& r : other.records_)
    records_.push_back(
        CaptureRecord{r.time, r.src, r.dst, r.offset + base, r.len});
  packet_count_ += other.packet_count_;
  digest_ += other.digest_;
  other.clear();
}

void CaptureStore::sort_canonical() {
  std::stable_sort(
      records_.begin(), records_.end(),
      [this](const CaptureRecord& a, const CaptureRecord& b) {
        const auto ka = std::tuple(a.src.addr.value(), a.src.port,
                                   a.dst.addr.value(), a.dst.port);
        const auto kb = std::tuple(b.src.addr.value(), b.src.port,
                                   b.dst.addr.value(), b.dst.port);
        if (ka != kb) return ka < kb;
        const auto pa = payload(a);
        const auto pb = payload(b);
        const auto c = std::lexicographical_compare_three_way(
            pa.begin(), pa.end(), pb.begin(), pb.end());
        if (c != 0) return c < 0;
        return a.time < b.time;
      });
}

void CaptureStore::clear() {
  records_.clear();
  arena_.clear();
  packet_count_ = 0;
  digest_ = 0;
}

}  // namespace orp::net
