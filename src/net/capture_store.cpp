#include "net/capture_store.h"

#include <algorithm>
#include <tuple>

#include "util/rng.h"

namespace orp::net {

namespace {

std::uint64_t packet_hash(const Datagram& d) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto fold = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  fold(d.src.addr.value());
  fold(d.src.port);
  fold(d.dst.addr.value());
  fold(d.dst.port);
  for (const std::uint8_t b : d.payload) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

void CaptureStore::attach(Network& net, IPv4Addr host) {
  net.add_tap([this, host](SimTime t, const Datagram& d) {
    if (d.dst.addr == host)
      add(t, d);
    else if (d.src.addr == host)
      count_only(t, d);
  });
}

void CaptureStore::add(SimTime t, const Datagram& d) {
  records_.push_back(CapturedPacket{t, d.src, d.dst, d.payload});
  ++packet_count_;
  absorb_digest(d);
}

void CaptureStore::count_only(SimTime t, const Datagram& d) {
  (void)t;
  ++packet_count_;
  absorb_digest(d);
}

void CaptureStore::absorb_digest(const Datagram& d) {
  // Wrapping sum of mixed per-packet hashes: commutative and associative,
  // so merge order (and shard layout) cannot change the result.
  digest_ += util::mix64(packet_hash(d));
}

void CaptureStore::merge(CaptureStore&& other) {
  records_.insert(records_.end(),
                  std::make_move_iterator(other.records_.begin()),
                  std::make_move_iterator(other.records_.end()));
  packet_count_ += other.packet_count_;
  digest_ += other.digest_;
  other.clear();
}

void CaptureStore::sort_canonical() {
  std::stable_sort(records_.begin(), records_.end(),
                   [](const CapturedPacket& a, const CapturedPacket& b) {
                     return std::tuple(a.src.addr.value(), a.src.port,
                                       a.dst.addr.value(), a.dst.port,
                                       a.payload, a.time) <
                            std::tuple(b.src.addr.value(), b.src.port,
                                       b.dst.addr.value(), b.dst.port,
                                       b.payload, b.time);
                   });
}

void CaptureStore::clear() {
  records_.clear();
  packet_count_ = 0;
  digest_ = 0;
}

}  // namespace orp::net
