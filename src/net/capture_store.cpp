#include "net/capture_store.h"

#include <algorithm>
#include <compare>
#include <tuple>

#include "util/hash.h"
#include "util/rng.h"

namespace orp::net {

namespace {

std::uint64_t packet_hash(const Datagram& d) {
  return util::Fnv1a()
      .word_bytes(d.src.addr.value())
      .word_bytes(d.src.port)
      .word_bytes(d.dst.addr.value())
      .word_bytes(d.dst.port)
      .bytes(d.payload)
      .value();
}

}  // namespace

void CaptureStore::attach(Network& net, IPv4Addr host) {
  net.add_tap(
      [this, host](SimTime t, const Datagram& d) {
        if (d.dst.addr == host)
          add(t, d);
        else if (d.src.addr == host)
          count_only(t, d);
      },
      [this, host](SimTime t, std::span<const PacketView> pkts) {
        observe_batch(t, pkts, host);
      });
}

void CaptureStore::observe_batch(SimTime t, std::span<const PacketView> pkts,
                                 IPv4Addr host) {
  // The (src addr, src port) digest prefix is identical for every packet of
  // one sender's run — cache the FNV state after those 16 bytes and resume
  // it per packet instead of re-folding them 3.7B times per campaign.
  util::Fnv1a prefix;
  Endpoint prefix_src{};
  bool have_prefix = false;
  for (const PacketView& p : pkts) {
    if (!have_prefix || prefix_src != p.src) {
      prefix = util::Fnv1a()
                   .word_bytes(p.src.addr.value())
                   .word_bytes(p.src.port);
      prefix_src = p.src;
      have_prefix = true;
    }
    if (p.dst.addr == host) {
      records_.push_back(
          CaptureRecord{t, p.src, p.dst, arena_.size(),
                        static_cast<std::uint32_t>(p.payload.size())});
      arena_.insert(arena_.end(), p.payload.begin(), p.payload.end());
    } else if (p.src.addr != host) {
      continue;  // not this vantage's traffic
    }
    ++packet_count_;
    digest_ += util::mix64(util::Fnv1a(prefix)
                               .word_bytes(p.dst.addr.value())
                               .word_bytes(p.dst.port)
                               .bytes(p.payload)
                               .value());
  }
}

void CaptureStore::add(SimTime t, const Datagram& d) {
  records_.push_back(CaptureRecord{t, d.src, d.dst, arena_.size(),
                                   static_cast<std::uint32_t>(d.payload.size())});
  arena_.insert(arena_.end(), d.payload.begin(), d.payload.end());
  ++packet_count_;
  absorb_digest(d);
}

void CaptureStore::count_only(SimTime t, const Datagram& d) {
  (void)t;
  ++packet_count_;
  absorb_digest(d);
}

void CaptureStore::reserve(std::size_t records, std::size_t arena_bytes) {
  records_.reserve(records);
  arena_.reserve(arena_bytes);
}

void CaptureStore::absorb_digest(const Datagram& d) {
  // Wrapping sum of mixed per-packet hashes: commutative and associative,
  // so merge order (and shard layout) cannot change the result.
  digest_ += util::mix64(packet_hash(d));
}

void CaptureStore::merge(CaptureStore&& other) {
  const std::uint64_t base = arena_.size();
  arena_.insert(arena_.end(), other.arena_.begin(), other.arena_.end());
  records_.reserve(records_.size() + other.records_.size());
  for (const CaptureRecord& r : other.records_)
    records_.push_back(
        CaptureRecord{r.time, r.src, r.dst, r.offset + base, r.len});
  packet_count_ += other.packet_count_;
  digest_ += other.digest_;
  other.clear();
}

void CaptureStore::sort_canonical() {
  std::stable_sort(
      records_.begin(), records_.end(),
      [this](const CaptureRecord& a, const CaptureRecord& b) {
        const auto ka = std::tuple(a.src.addr.value(), a.src.port,
                                   a.dst.addr.value(), a.dst.port);
        const auto kb = std::tuple(b.src.addr.value(), b.src.port,
                                   b.dst.addr.value(), b.dst.port);
        if (ka != kb) return ka < kb;
        const auto pa = payload(a);
        const auto pb = payload(b);
        const auto c = std::lexicographical_compare_three_way(
            pa.begin(), pa.end(), pb.begin(), pb.end());
        if (c != 0) return c < 0;
        return a.time < b.time;
      });
}

void CaptureStore::clear() {
  records_.clear();
  arena_.clear();
  packet_count_ = 0;
  digest_ = 0;
}

}  // namespace orp::net
