// Merge-friendly packet capture for sharded scans.
//
// A sharded campaign runs one event loop per shard, so a single Capture tap
// cannot observe the whole scan. CaptureStore is the shard-local vantage
// whose contents *merge*: records concatenate, counts sum, and the digest is
// an order-insensitive (commutative) hash, so the merged value is identical
// no matter how the campaign was partitioned or in which order shards land.
//
// Retained payloads live in one append-only byte arena per store; a record is
// {time, src, dst, offset, len}. That keeps the shard's whole R2 pcap in a
// single growing allocation instead of one vector per packet, and merging is
// an arena concatenation plus an offset shift.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "net/sim_time.h"
#include "net/transport.h"

namespace orp::net {

/// One retained packet; the payload bytes live in the owning store's arena
/// and are read back through CaptureStore::payload().
struct CaptureRecord {
  SimTime time;
  Endpoint src;
  Endpoint dst;
  std::uint64_t offset = 0;
  std::uint32_t len = 0;
};

/// Shard-local capture at one vantage host: inbound payloads are retained
/// (the R2 pcap), outbound packets are counted and digested only (ZMap does
/// not retain 3.7B Q1 payloads either).
class CaptureStore {
 public:
  /// Install a tap pair on `net` observing traffic to/from `host`: the
  /// single half covers per-packet sends, the batch half digests a whole
  /// send_batch() span in one call. The store must outlive the network.
  void attach(Network& net, IPv4Addr host);

  /// Record a packet with payload retained.
  void add(SimTime t, const Datagram& d);
  /// Record a packet as count + digest only.
  void count_only(SimTime t, const Datagram& d);
  /// Batch-tap body: classify a send_batch() span against `host` (inbound
  /// retained, outbound count + digest). Consecutive packets from one
  /// sender share a cached digest prefix over (src addr, src port), so the
  /// scanner's whole probe batch re-hashes only destination and payload.
  void observe_batch(SimTime t, std::span<const PacketView> pkts,
                     IPv4Addr host);

  /// Pre-size the record list and byte arena (e.g. to pin a steady-state
  /// allocation budget in tests).
  void reserve(std::size_t records, std::size_t arena_bytes);

  /// Whether inbound payloads are retained (default: yes). With retention
  /// off, `add` degrades to `count_only` — packet counts and the digest are
  /// maintained exactly as before, but no record or arena bytes are kept.
  /// The streaming pipeline turns this off: the analyzer consumes each R2
  /// at capture time, so the shard never needs its pcap.
  void set_retain_payloads(bool retain) noexcept { retain_payloads_ = retain; }

  /// Fold another shard's store into this one (commutative on the digest
  /// and counts; records concatenate in call order, arenas concatenate and
  /// the moved-in offsets shift).
  void merge(CaptureStore&& other);

  /// Deterministic record order: (src, dst, payload, time). Applied after
  /// merging so the retained pcap is independent of shard count.
  void sort_canonical();

  const std::vector<CaptureRecord>& records() const noexcept {
    return records_;
  }
  std::span<const std::uint8_t> payload(const CaptureRecord& r) const noexcept {
    return {arena_.data() + r.offset, r.len};
  }
  std::span<const std::uint8_t> payload(std::size_t i) const noexcept {
    return payload(records_[i]);
  }

  std::uint64_t packet_count() const noexcept { return packet_count_; }
  std::uint64_t retained_count() const noexcept { return records_.size(); }
  std::size_t arena_bytes() const noexcept { return arena_.size(); }

  /// Order-insensitive digest over (src, dst, payload) of every observed
  /// packet — equal for any shard layout that observed the same packet set.
  std::uint64_t digest() const noexcept { return digest_; }

  void clear();

 private:
  void absorb_digest(const Datagram& d);

  std::vector<CaptureRecord> records_;
  std::vector<std::uint8_t> arena_;
  std::uint64_t packet_count_ = 0;
  std::uint64_t digest_ = 0;
  bool retain_payloads_ = true;
};

}  // namespace orp::net
