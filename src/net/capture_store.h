// Merge-friendly packet capture for sharded scans.
//
// A sharded campaign runs one event loop per shard, so a single Capture tap
// cannot observe the whole scan. CaptureStore is the shard-local vantage
// whose contents *merge*: records concatenate, counts sum, and the digest is
// an order-insensitive (commutative) hash, so the merged value is identical
// no matter how the campaign was partitioned or in which order shards land.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/capture.h"
#include "net/transport.h"

namespace orp::net {

/// Shard-local capture at one vantage host: inbound payloads are retained
/// (the R2 pcap), outbound packets are counted and digested only (ZMap does
/// not retain 3.7B Q1 payloads either).
class CaptureStore {
 public:
  /// Install a tap on `net` observing traffic to/from `host`. The store must
  /// outlive the network.
  void attach(Network& net, IPv4Addr host);

  /// Record a packet with payload retained.
  void add(SimTime t, const Datagram& d);
  /// Record a packet as count + digest only.
  void count_only(SimTime t, const Datagram& d);

  /// Fold another shard's store into this one (commutative on the digest
  /// and counts; records concatenate in call order).
  void merge(CaptureStore&& other);

  /// Deterministic record order: (src, dst, payload, time). Applied after
  /// merging so the retained pcap is independent of shard count.
  void sort_canonical();

  const std::vector<CapturedPacket>& records() const noexcept {
    return records_;
  }
  std::uint64_t packet_count() const noexcept { return packet_count_; }
  std::uint64_t retained_count() const noexcept { return records_.size(); }

  /// Order-insensitive digest over (src, dst, payload) of every observed
  /// packet — equal for any shard layout that observed the same packet set.
  std::uint64_t digest() const noexcept { return digest_; }

  void clear();

 private:
  void absorb_digest(const Datagram& d);

  std::vector<CapturedPacket> records_;
  std::uint64_t packet_count_ = 0;
  std::uint64_t digest_ = 0;
};

}  // namespace orp::net
