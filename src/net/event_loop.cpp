#include "net/event_loop.h"

#include <utility>

namespace orp::net {

void EventLoop::schedule_at(SimTime at, Action action) {
  if (at < now_) at = now_;  // no scheduling into the past
  heap_.push_back(Event{at, next_seq_++, now_, std::move(action)});
  sift_up(heap_.size() - 1);
  if (metrics_ != nullptr) metrics_->set_max(queue_peak_h_, heap_.size());
}

void EventLoop::sift_up(std::size_t i) noexcept {
  Event item = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!earlier(item, heap_[parent])) break;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  }
  heap_[i] = std::move(item);
}

void EventLoop::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  Event item = std::move(heap_[i]);
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
    if (!earlier(heap_[child], item)) break;
    heap_[i] = std::move(heap_[child]);
    i = child;
  }
  heap_[i] = std::move(item);
}

EventLoop::Event EventLoop::pop_top() noexcept {
  Event top = std::move(heap_.front());
  Event last = std::move(heap_.back());
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_.front() = std::move(last);
    sift_down(0);
  }
  return top;
}

std::uint64_t EventLoop::run() {
  std::uint64_t count = 0;
  while (!heap_.empty()) {
    Event ev = pop_top();
    now_ = ev.at;
    if (metrics_ != nullptr) note_executed(ev);
    ev.action();
    ++count;
    ++executed_;
    note_progress();
  }
  return count;
}

std::uint64_t EventLoop::run_until(SimTime deadline) {
  std::uint64_t count = 0;
  while (!heap_.empty() && heap_.front().at <= deadline) {
    Event ev = pop_top();
    now_ = ev.at;
    if (metrics_ != nullptr) note_executed(ev);
    ev.action();
    ++count;
    ++executed_;
    note_progress();
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

}  // namespace orp::net
