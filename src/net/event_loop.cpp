#include "net/event_loop.h"

#include <utility>

namespace orp::net {

void EventLoop::schedule_at(SimTime at, Action action) {
  if (at < now_) at = now_;  // no scheduling into the past
  queue_.push(Event{at, next_seq_++, std::move(action)});
}

std::uint64_t EventLoop::run() {
  std::uint64_t count = 0;
  while (!queue_.empty()) {
    // Move the event out before popping; the action may schedule more events.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.action();
    ++count;
    ++executed_;
  }
  return count;
}

std::uint64_t EventLoop::run_until(SimTime deadline) {
  std::uint64_t count = 0;
  while (!queue_.empty() && queue_.top().at <= deadline) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ev.action();
    ++count;
    ++executed_;
  }
  if (now_ < deadline) now_ = deadline;
  return count;
}

}  // namespace orp::net
