#include "net/event_loop.h"

#include <utility>

namespace orp::net {

void EventLoop::schedule_at(SimTime at, Action action) {
  if (at < now_) at = now_;  // no scheduling into the past
  std::uint32_t wait_us = 0;
  if (metrics_ != nullptr) {  // only the telemetry path reads it
    const std::uint64_t wait = (at - now_).as_nanos() / 1'000;
    wait_us = static_cast<std::uint32_t>(
        wait > 0xFFFFFFFFu ? 0xFFFFFFFFu : wait);
  }
  heap_.push_back(Event{at, next_seq_++, wait_us, std::move(action)});
  sift_up(heap_.size() - 1);
  if (metrics_ != nullptr) metrics_->set_max(queue_peak_h_, heap_.size());
}

void EventLoop::sift_up(std::size_t i) noexcept {
  // Early exit before touching the element: an in-order insert (the common
  // case — schedules overwhelmingly carry later deadlines) costs one
  // comparison and zero Event moves, where the classic move-out/move-back
  // shape pays two full-record moves even for elements that stay put.
  if (i == 0 || !earlier(heap_[i], heap_[(i - 1) / 2])) return;
  Event item = std::move(heap_[i]);
  do {
    const std::size_t parent = (i - 1) / 2;
    heap_[i] = std::move(heap_[parent]);
    i = parent;
  } while (i > 0 && earlier(item, heap_[(i - 1) / 2]));
  heap_[i] = std::move(item);
}

void EventLoop::sift_down(std::size_t i) noexcept {
  const std::size_t n = heap_.size();
  Event item = std::move(heap_[i]);
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && earlier(heap_[child + 1], heap_[child])) ++child;
    if (!earlier(heap_[child], item)) break;
    heap_[i] = std::move(heap_[child]);
    i = child;
  }
  heap_[i] = std::move(item);
}

EventLoop::Event EventLoop::pop_top() noexcept {
  Event top = std::move(heap_.front());
  const std::size_t last = heap_.size() - 1;  // index of the displaced event
  if (last > 0) {
    // Floyd's leaf-path removal: walk the hole down the min-child path with
    // one comparison per level (no comparison against the displaced event),
    // then drop the last element into the leaf hole and sift it up. The
    // displaced element came from the bottom of the heap, so the sift-up
    // almost always terminates immediately — roughly halving the comparison
    // count of the classic sift-down pop on deep heaps.
    std::size_t hole = 0;
    std::size_t child = 1;
    while (child < last) {
      if (child + 1 < last && earlier(heap_[child + 1], heap_[child]))
        ++child;
      heap_[hole] = std::move(heap_[child]);
      hole = child;
      child = 2 * hole + 1;
    }
    if (hole != last) {
      heap_[hole] = std::move(heap_[last]);
      sift_up(hole);
    }
  }
  heap_.pop_back();
  return top;
}

std::size_t EventLoop::fire_batch() {
  // Drain the same-deadline run while the heap is consistent (actions run
  // only after every drained event has left the heap), then fire in (at,
  // seq) order — pop order. Events an action schedules carry larger seqs,
  // so even same-deadline newcomers belong to a later batch; the execution
  // order is identical to popping one event at a time.
  Event first = pop_top();
  if (batch_cap_ == 1 || heap_.empty() || heap_.front().at != first.at) {
    // Singleton run — the common case when deadlines are distinct. Fire in
    // place: the event has already left the heap, so the semantics match
    // the staged path minus one move of the inline-closure record.
    now_ = first.at;
    if (metrics_ != nullptr) {
      metrics_->observe(batch_size_h_, 1);
      note_executed(first);
    }
    first.action();
    ++executed_;
    note_progress();
    return 1;
  }
  batch_.clear();
  batch_.push_back(std::move(first));
  const SimTime at = batch_.front().at;
  while (!heap_.empty() && heap_.front().at == at &&
         (batch_cap_ == 0 || batch_.size() < batch_cap_))
    batch_.push_back(pop_top());
  now_ = at;
  if (metrics_ != nullptr) metrics_->observe(batch_size_h_, batch_.size());
  for (Event& ev : batch_) {
    if (metrics_ != nullptr) note_executed(ev);
    ev.action();
    ++executed_;
    note_progress();
  }
  const std::size_t n = batch_.size();
  batch_.clear();  // destroy actions before the next drain reuses the slots
  return n;
}

std::uint64_t EventLoop::run() {
  std::uint64_t count = 0;
  while (!heap_.empty()) count += fire_batch();
  return count;
}

std::uint64_t EventLoop::run_until(SimTime deadline) {
  std::uint64_t count = 0;
  while (!heap_.empty() && heap_.front().at <= deadline) count += fire_batch();
  if (now_ < deadline) now_ = deadline;
  return count;
}

}  // namespace orp::net
