// A deterministic discrete-event scheduler.
//
// All simulated activity (packet delivery, resolver timeouts, zone loads,
// prober pacing) is expressed as events on one queue. Ties in timestamp are
// broken by insertion sequence so runs are bit-reproducible regardless of
// heap internals.
//
// Two allocation properties are load-bearing for campaign throughput:
//   * Action is a fixed-budget inline callable, not std::function — storing a
//     delivery closure never touches the heap, and a capture that outgrows
//     the budget is a compile error rather than a silent allocation.
//   * The queue is an explicit binary heap over a std::vector, so the top
//     event is moved out legally (std::priority_queue::top() is const and
//     forced a const_cast) and the backing storage stays warm across events.
//
// Every piece of state — clock, tie-break sequence counter, executed count —
// is an instance member (never static), so each shard of a sharded campaign
// owns a fully isolated loop and S loops can run on S threads untouched by
// one another. test_net.cpp pins the tie-break ordering.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "net/sim_time.h"
#include "obs/metrics.h"

namespace orp::net {

/// Move-only callable with a fixed inline buffer and no heap fallback. The
/// budget covers every closure the simulation schedules (delivery events
/// carry a Datagram: two endpoints plus a pooled payload handle); anything
/// larger fails to compile, which is the point — a bigger capture belongs in
/// shared state, not in the per-event hot path.
class InlineAction {
 public:
  static constexpr std::size_t kInlineBytes = 40;

  InlineAction() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineAction> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineAction(F&& f) {  // NOLINT: implicit, mirrors std::function
    using Fn = std::remove_cvref_t<F>;
    static_assert(sizeof(Fn) <= kInlineBytes,
                  "event closure exceeds the inline budget; capture less");
    static_assert(alignof(Fn) <= alignof(void*),
                  "event closure is over-aligned for the inline buffer");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "event closures must be nothrow-movable (heap sift moves)");
    ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
    ops_ = &kOpsFor<Fn>;
  }

  InlineAction(InlineAction&& o) noexcept { take(o); }
  InlineAction& operator=(InlineAction&& o) noexcept {
    if (this != &o) {
      reset();
      take(o);
    }
    return *this;
  }
  InlineAction(const InlineAction&) = delete;
  InlineAction& operator=(const InlineAction&) = delete;
  ~InlineAction() { reset(); }

  void operator()() { ops_->invoke(storage_); }
  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Null for trivially-copyable, trivially-destructible closures: a move
    // is then a raw copy of the inline buffer and destruction is a no-op —
    // the same bit-blast libstdc++'s std::function move does, minus the
    // indirect call per heap sift that made it the hot path's top cost.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename Fn>
  static void invoke_fn(void* s) {
    (*static_cast<Fn*>(s))();
  }
  template <typename Fn>
  static void relocate_fn(void* dst, void* src) noexcept {
    ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
    static_cast<Fn*>(src)->~Fn();
  }
  template <typename Fn>
  static void destroy_fn(void* s) noexcept {
    static_cast<Fn*>(s)->~Fn();
  }

  template <typename Fn>
  static constexpr bool kTrivial =
      std::is_trivially_copyable_v<Fn> && std::is_trivially_destructible_v<Fn>;

  template <typename Fn>
  static constexpr Ops kOpsFor{
      &invoke_fn<Fn>, kTrivial<Fn> ? nullptr : &relocate_fn<Fn>,
      kTrivial<Fn> ? nullptr : &destroy_fn<Fn>};

  void take(InlineAction& o) noexcept {
    if (o.ops_ != nullptr) {
      if (o.ops_->relocate != nullptr)
        o.ops_->relocate(storage_, o.storage_);
      else
        __builtin_memcpy(storage_, o.storage_, kInlineBytes);
      ops_ = std::exchange(o.ops_, nullptr);
    }
  }

  // Pointer alignment, not max_align_t: the static_assert above rejects any
  // over-aligned closure, and the looser alignment keeps Event at 72 bytes
  // (heap sifts move whole Events, so every byte of padding is paid log n
  // times per pop).
  alignas(void*) std::byte storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

class EventLoop {
 public:
  using Action = InlineAction;

  SimTime now() const noexcept { return now_; }

  /// Schedule `action` at absolute simulated time `at` (clamped to now).
  void schedule_at(SimTime at, Action action);

  /// Schedule `action` `delay` after the current simulated time.
  void schedule_in(SimTime delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Run until the queue drains. Returns the number of events executed.
  ///
  /// Dispatch is batched: each iteration drains the full run of events
  /// sharing the minimum deadline (up to the batch cap) into a flat scratch
  /// span and fires them back to back. Because a run's events are removed
  /// before any of them executes, an action scheduling new work at the same
  /// deadline cannot jump the queue — the new event's seq is larger than
  /// every drained seq, so it lands in the *next* batch, exactly where
  /// per-event dispatch would have put it. Execution order is therefore
  /// bit-identical to the one-pop-per-event loop for every cap.
  std::uint64_t run();

  /// Run until the queue drains or simulated time would pass `deadline`
  /// (an event exactly at the deadline still executes).
  std::uint64_t run_until(SimTime deadline);

  /// Cap on how many same-deadline events one batch may drain (0 =
  /// unbounded). Any value yields the same execution order; the knob exists
  /// so the determinism suite can sweep caps {1, 8, 64, unbounded}.
  void set_batch_cap(std::size_t cap) noexcept { batch_cap_ = cap; }
  std::size_t batch_cap() const noexcept { return batch_cap_; }

  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }
  std::uint64_t executed() const noexcept { return executed_; }

  /// Attach an obs::Metrics instance: the loop then counts events run,
  /// tracks the peak queue depth, and records a time-in-queue histogram.
  /// Purely passive — it consumes no RNG, schedules nothing, and allocates
  /// nothing, so an instrumented run is event-for-event identical to an
  /// uninstrumented one. Handles are cached here so the per-event path never
  /// re-resolves obs::builtin().
  void set_metrics(obs::Metrics* m) noexcept {
    metrics_ = m;
    if (m != nullptr) {
      const obs::Builtin& b = obs::builtin();
      events_run_h_ = b.loop_events_run;
      queue_peak_h_ = b.loop_queue_peak;
      time_in_queue_h_ = b.loop_time_in_queue_us;
      batch_size_h_ = b.loop_batch_size;
    }
  }

  /// Publish `executed_` into `beacon` (relaxed) every 256 events — the
  /// shard-side half of the live campaign progress reporter.
  void set_progress_beacon(std::atomic<std::uint64_t>* beacon) noexcept {
    progress_ = beacon;
  }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    // Time-in-queue telemetry, precomputed at schedule time (at - now, in
    // microseconds, saturated). A u32 instead of the enqueue SimTime keeps
    // the Event two cache lines, not three.
    std::uint32_t wait_us;
    Action action;
  };

  static bool earlier(const Event& a, const Event& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  /// Remove and return the minimum event. The caller owns the action, so it
  /// may legally schedule more events (growing the heap) while running.
  /// Uses Floyd's leaf-path removal: the root hole walks the min-child path
  /// to a leaf (one comparison per level), the displaced last element drops
  /// into the hole and sifts *up* the few steps it actually needs — versus
  /// the classic move-last-to-root sift-down, whose two-comparison levels
  /// made pop the most expensive step of the schedule/fire cycle.
  Event pop_top() noexcept;

  /// Drain the run of events sharing the minimum deadline (bounded by
  /// `batch_cap_`) into `batch_` and execute them in (at, seq) order.
  /// Returns the number executed.
  std::size_t fire_batch();

  /// Telemetry for one executed event; called only when metrics_ is set.
  void note_executed(const Event& ev) noexcept {
    metrics_->add(events_run_h_);
    metrics_->observe(time_in_queue_h_, ev.wait_us);
  }
  void note_progress() noexcept {
    if (progress_ != nullptr && (executed_ & 0xFF) == 0)
      progress_->store(executed_, std::memory_order_relaxed);
  }

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Event> heap_;   // min-heap on (at, seq)
  std::vector<Event> batch_;  // reused same-deadline run scratch (flat span)
  std::size_t batch_cap_ = 0;  // 0 = unbounded
  obs::Metrics* metrics_ = nullptr;
  std::atomic<std::uint64_t>* progress_ = nullptr;
  obs::CounterHandle events_run_h_;
  obs::GaugeHandle queue_peak_h_;
  obs::HistogramHandle time_in_queue_h_;
  obs::HistogramHandle batch_size_h_;
};

}  // namespace orp::net
