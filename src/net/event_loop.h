// A deterministic discrete-event scheduler.
//
// All simulated activity (packet delivery, resolver timeouts, zone loads,
// prober pacing) is expressed as events on one queue. Ties in timestamp are
// broken by insertion sequence so runs are bit-reproducible regardless of
// std::priority_queue internals.
//
// Every piece of state — clock, tie-break sequence counter, executed count —
// is an instance member (never static), so each shard of a sharded campaign
// owns a fully isolated loop and S loops can run on S threads untouched by
// one another. test_net.cpp pins the tie-break ordering.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "net/sim_time.h"

namespace orp::net {

class EventLoop {
 public:
  using Action = std::function<void()>;

  SimTime now() const noexcept { return now_; }

  /// Schedule `action` at absolute simulated time `at` (clamped to now).
  void schedule_at(SimTime at, Action action);

  /// Schedule `action` `delay` after the current simulated time.
  void schedule_in(SimTime delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  /// Run until the queue drains. Returns the number of events executed.
  std::uint64_t run();

  /// Run until the queue drains or simulated time would pass `deadline`.
  std::uint64_t run_until(SimTime deadline);

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Event {
    SimTime at;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace orp::net
