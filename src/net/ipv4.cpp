#include "net/ipv4.h"

#include <charconv>

namespace orp::net {

std::string IPv4Addr::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i != 0) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::optional<IPv4Addr> IPv4Addr::parse(std::string_view s) {
  std::uint32_t value = 0;
  const char* p = s.data();
  const char* end = s.data() + s.size();
  for (int i = 0; i < 4; ++i) {
    if (i != 0) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
    unsigned octet = 0;
    const auto [next, ec] = std::from_chars(p, end, octet);
    if (ec != std::errc{} || next == p || octet > 255) return std::nullopt;
    // Reject leading zeros like "01" (ambiguous octal forms).
    if (next - p > 1 && *p == '0') return std::nullopt;
    value = (value << 8) | octet;
    p = next;
  }
  if (p != end) return std::nullopt;
  return IPv4Addr(value);
}

std::optional<Prefix> Prefix::parse(std::string_view cidr) {
  const auto slash = cidr.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = IPv4Addr::parse(cidr.substr(0, slash));
  if (!addr) return std::nullopt;
  int length = -1;
  const auto len_str = cidr.substr(slash + 1);
  const auto [next, ec] =
      std::from_chars(len_str.data(), len_str.data() + len_str.size(), length);
  if (ec != std::errc{} || next != len_str.data() + len_str.size() ||
      length < 0 || length > 32)
    return std::nullopt;
  return Prefix(*addr, length);
}

std::string Prefix::to_string() const {
  return base().to_string() + "/" + std::to_string(length_);
}

bool is_private_address(IPv4Addr a) noexcept {
  static constexpr Prefix kPrivate[] = {
      Prefix(IPv4Addr(10, 0, 0, 0), 8),
      Prefix(IPv4Addr(172, 16, 0, 0), 12),
      Prefix(IPv4Addr(192, 168, 0, 0), 16),
      Prefix(IPv4Addr(100, 64, 0, 0), 10),
  };
  for (const auto& p : kPrivate)
    if (p.contains(a)) return true;
  return false;
}

}  // namespace orp::net
