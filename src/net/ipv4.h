// IPv4 address and CIDR prefix value types.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace orp::net {

/// An IPv4 address as a value type; host byte order internally.
class IPv4Addr {
 public:
  constexpr IPv4Addr() = default;
  constexpr explicit IPv4Addr(std::uint32_t value) noexcept : value_(value) {}
  constexpr IPv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d) noexcept
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const noexcept { return value_; }
  constexpr std::uint8_t octet(int i) const noexcept {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  std::string to_string() const;
  /// Parse dotted-quad notation; rejects out-of-range octets and junk.
  static std::optional<IPv4Addr> parse(std::string_view s);

  friend constexpr auto operator<=>(IPv4Addr, IPv4Addr) noexcept = default;

 private:
  std::uint32_t value_ = 0;
};

/// A CIDR prefix, e.g. 192.168.0.0/16.
class Prefix {
 public:
  constexpr Prefix() = default;
  /// `base` is masked down to the prefix boundary.
  constexpr Prefix(IPv4Addr base, int length) noexcept
      : base_(base.value() & mask_for(length)), length_(length) {}

  static std::optional<Prefix> parse(std::string_view cidr);

  constexpr IPv4Addr base() const noexcept { return IPv4Addr(base_); }
  constexpr int length() const noexcept { return length_; }

  constexpr std::uint32_t first() const noexcept { return base_; }
  constexpr std::uint32_t last() const noexcept {
    return base_ | ~mask_for(length_);
  }
  /// Number of addresses covered (up to 2^32, hence 64-bit).
  constexpr std::uint64_t size() const noexcept {
    return std::uint64_t{1} << (32 - length_);
  }
  constexpr bool contains(IPv4Addr a) const noexcept {
    return (a.value() & mask_for(length_)) == base_;
  }

  std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) noexcept =
      default;

 private:
  static constexpr std::uint32_t mask_for(int length) noexcept {
    return length == 0 ? 0 : ~std::uint32_t{0} << (32 - length);
  }

  std::uint32_t base_ = 0;
  int length_ = 0;
};

/// Well-known private-network membership (RFC1918 + RFC6598 CGN), used by the
/// analysis layer to flag answers pointing into private space (Table VIII).
bool is_private_address(IPv4Addr a) noexcept;

}  // namespace orp::net
