#include "net/pcap.h"

#include <cstdio>
#include <cstring>

namespace orp::net {
namespace {

constexpr std::uint32_t kMagic = 0xa1b2c3d4;  // microsecond timestamps
constexpr std::uint32_t kLinkTypeRaw = 101;   // packets begin with the IP header
constexpr std::size_t kIpHeaderLen = 20;
constexpr std::size_t kUdpHeaderLen = 8;

void put_u16be(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v));
}

void put_u32be(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16be(out, static_cast<std::uint16_t>(v >> 16));
  put_u16be(out, static_cast<std::uint16_t>(v));
}

void put_u16le(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32le(std::vector<std::uint8_t>& out, std::uint32_t v) {
  put_u16le(out, static_cast<std::uint16_t>(v));
  put_u16le(out, static_cast<std::uint16_t>(v >> 16));
}

std::uint16_t get_u16be(const std::uint8_t* p) {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t get_u32le(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

}  // namespace

std::string_view to_string(PcapError e) noexcept {
  switch (e) {
    case PcapError::kIoError: return "I/O error";
    case PcapError::kBadMagic: return "bad magic";
    case PcapError::kTruncatedHeader: return "truncated header";
    case PcapError::kTruncatedPacket: return "truncated packet";
    case PcapError::kUnsupportedLinkType: return "unsupported link type";
    case PcapError::kMalformedIp: return "malformed IP header";
    case PcapError::kNotUdp: return "not a UDP packet";
  }
  return "unknown";
}

std::uint16_t internet_checksum(const std::uint8_t* data, std::size_t len) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < len; i += 2)
    sum += static_cast<std::uint32_t>((data[i] << 8) | data[i + 1]);
  if (len & 1) sum += static_cast<std::uint32_t>(data[len - 1] << 8);
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::vector<std::uint8_t> to_pcap(const std::vector<CapturedPacket>& packets) {
  std::vector<std::uint8_t> out;
  // Global header.
  put_u32le(out, kMagic);
  put_u16le(out, 2);   // version major
  put_u16le(out, 4);   // version minor
  put_u32le(out, 0);   // thiszone
  put_u32le(out, 0);   // sigfigs
  put_u32le(out, 65535);  // snaplen
  put_u32le(out, kLinkTypeRaw);

  for (const CapturedPacket& pkt : packets) {
    const std::size_t frame_len =
        kIpHeaderLen + kUdpHeaderLen + pkt.payload.size();
    const auto nanos = static_cast<std::uint64_t>(pkt.time.as_nanos());
    put_u32le(out, static_cast<std::uint32_t>(nanos / 1'000'000'000));
    put_u32le(out, static_cast<std::uint32_t>((nanos % 1'000'000'000) / 1000));
    put_u32le(out, static_cast<std::uint32_t>(frame_len));  // incl_len
    put_u32le(out, static_cast<std::uint32_t>(frame_len));  // orig_len

    // IPv4 header.
    std::vector<std::uint8_t> ip;
    ip.reserve(kIpHeaderLen);
    ip.push_back(0x45);  // version 4, IHL 5
    ip.push_back(0);     // DSCP/ECN
    put_u16be(ip, static_cast<std::uint16_t>(frame_len));
    put_u16be(ip, 0);       // identification
    put_u16be(ip, 0x4000);  // don't fragment
    ip.push_back(64);       // TTL
    ip.push_back(17);       // UDP
    put_u16be(ip, 0);       // checksum placeholder
    put_u32be(ip, pkt.src.addr.value());
    put_u32be(ip, pkt.dst.addr.value());
    const std::uint16_t checksum = internet_checksum(ip.data(), ip.size());
    ip[10] = static_cast<std::uint8_t>(checksum >> 8);
    ip[11] = static_cast<std::uint8_t>(checksum);
    out.insert(out.end(), ip.begin(), ip.end());

    // UDP header (checksum 0 = not computed, legal for IPv4).
    put_u16be(out, pkt.src.port);
    put_u16be(out, pkt.dst.port);
    put_u16be(out,
              static_cast<std::uint16_t>(kUdpHeaderLen + pkt.payload.size()));
    put_u16be(out, 0);
    out.insert(out.end(), pkt.payload.begin(), pkt.payload.end());
  }
  return out;
}

util::Expected<std::vector<CapturedPacket>, PcapError> from_pcap(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < 24) return PcapError::kTruncatedHeader;
  if (get_u32le(bytes.data()) != kMagic) return PcapError::kBadMagic;
  if (get_u32le(bytes.data() + 20) != kLinkTypeRaw)
    return PcapError::kUnsupportedLinkType;

  std::vector<CapturedPacket> packets;
  std::size_t pos = 24;
  while (pos + 16 <= bytes.size()) {
    const std::uint32_t ts_sec = get_u32le(bytes.data() + pos);
    const std::uint32_t ts_usec = get_u32le(bytes.data() + pos + 4);
    const std::uint32_t incl_len = get_u32le(bytes.data() + pos + 8);
    pos += 16;
    if (pos + incl_len > bytes.size()) return PcapError::kTruncatedPacket;
    const std::uint8_t* frame = bytes.data() + pos;
    pos += incl_len;

    if (incl_len < kIpHeaderLen + kUdpHeaderLen) return PcapError::kMalformedIp;
    if ((frame[0] >> 4) != 4) return PcapError::kMalformedIp;
    const std::size_t ihl = static_cast<std::size_t>(frame[0] & 0xF) * 4;
    if (ihl < kIpHeaderLen || incl_len < ihl + kUdpHeaderLen)
      return PcapError::kMalformedIp;
    if (frame[9] != 17) return PcapError::kNotUdp;

    CapturedPacket pkt;
    pkt.time = SimTime::nanos(static_cast<std::int64_t>(ts_sec) * 1'000'000'000 +
                              static_cast<std::int64_t>(ts_usec) * 1000);
    pkt.src.addr = IPv4Addr((static_cast<std::uint32_t>(frame[12]) << 24) |
                            (static_cast<std::uint32_t>(frame[13]) << 16) |
                            (static_cast<std::uint32_t>(frame[14]) << 8) |
                            frame[15]);
    pkt.dst.addr = IPv4Addr((static_cast<std::uint32_t>(frame[16]) << 24) |
                            (static_cast<std::uint32_t>(frame[17]) << 16) |
                            (static_cast<std::uint32_t>(frame[18]) << 8) |
                            frame[19]);
    const std::uint8_t* udp = frame + ihl;
    pkt.src.port = get_u16be(udp);
    pkt.dst.port = get_u16be(udp + 2);
    const std::size_t udp_len = get_u16be(udp + 4);
    if (udp_len < kUdpHeaderLen || ihl + udp_len > incl_len)
      return PcapError::kNotUdp;
    pkt.payload.assign(udp + kUdpHeaderLen, udp + udp_len);
    packets.push_back(std::move(pkt));
  }
  return packets;
}

bool write_pcap_file(const std::string& path,
                     const std::vector<CapturedPacket>& packets) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const auto bytes = to_pcap(packets);
  const bool ok = std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
  std::fclose(f);
  return ok;
}

util::Expected<std::vector<CapturedPacket>, PcapError> read_pcap_file(
    const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return PcapError::kIoError;
  std::vector<std::uint8_t> bytes;
  std::uint8_t buffer[4096];
  std::size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0)
    bytes.insert(bytes.end(), buffer, buffer + n);
  std::fclose(f);
  return from_pcap(bytes);
}

}  // namespace orp::net
