// Classic pcap file I/O (the libpcap format, LINKTYPE_RAW).
//
// The authors' 2013 corpus was stored as .pcap and parsed with libpcap-based
// code (§IV-C "Caveats"); this module lets captures from the simulated
// network round-trip through the same on-disk format — each datagram is
// framed as a raw IPv4 + UDP packet with a correct IP header checksum, so
// external tools (tcpdump/wireshark) can open the traces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/capture.h"
#include "util/expected.h"

namespace orp::net {

enum class PcapError {
  kIoError,
  kBadMagic,
  kTruncatedHeader,
  kTruncatedPacket,
  kUnsupportedLinkType,
  kMalformedIp,
  kNotUdp,
};

std::string_view to_string(PcapError e) noexcept;

/// Serialize captured datagrams to pcap bytes (LINKTYPE_RAW, IPv4/UDP).
std::vector<std::uint8_t> to_pcap(const std::vector<CapturedPacket>& packets);

/// Parse pcap bytes back into captured datagrams.
util::Expected<std::vector<CapturedPacket>, PcapError> from_pcap(
    const std::vector<std::uint8_t>& bytes);

/// File convenience wrappers.
bool write_pcap_file(const std::string& path,
                     const std::vector<CapturedPacket>& packets);
util::Expected<std::vector<CapturedPacket>, PcapError> read_pcap_file(
    const std::string& path);

/// RFC 1071 Internet checksum (exposed for tests).
std::uint16_t internet_checksum(const std::uint8_t* data, std::size_t len);

}  // namespace orp::net
