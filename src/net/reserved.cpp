#include "net/reserved.h"

#include <array>

namespace orp::net {
namespace {

// Table I of the paper, verbatim. The text renders some prefixes with a
// truncated octet (e.g. "0.0.0/8"); the RFCs referenced fix the intended
// canonical blocks used here.
constexpr std::array<ReservedBlock, 16> kBlocks{{
    {Prefix(IPv4Addr(0, 0, 0, 0), 8), "RFC1122"},
    {Prefix(IPv4Addr(10, 0, 0, 0), 8), "RFC1918"},
    {Prefix(IPv4Addr(100, 64, 0, 0), 10), "RFC6598"},
    {Prefix(IPv4Addr(127, 0, 0, 0), 8), "RFC1122"},
    {Prefix(IPv4Addr(169, 254, 0, 0), 16), "RFC3927"},
    {Prefix(IPv4Addr(172, 16, 0, 0), 12), "RFC1918"},
    {Prefix(IPv4Addr(192, 0, 0, 0), 24), "RFC6890"},
    {Prefix(IPv4Addr(192, 0, 2, 0), 24), "RFC5737"},
    {Prefix(IPv4Addr(192, 88, 99, 0), 24), "RFC3068"},
    {Prefix(IPv4Addr(192, 168, 0, 0), 16), "RFC1918"},
    {Prefix(IPv4Addr(198, 18, 0, 0), 15), "RFC2544"},
    {Prefix(IPv4Addr(198, 51, 100, 0), 24), "RFC5737"},
    {Prefix(IPv4Addr(203, 0, 113, 0), 24), "RFC5737"},
    {Prefix(IPv4Addr(224, 0, 0, 0), 4), "RFC5771"},
    {Prefix(IPv4Addr(240, 0, 0, 0), 4), "RFC1112"},
    {Prefix(IPv4Addr(255, 255, 255, 255), 32), "RFC919"},
}};

constexpr std::uint64_t compute_blocks_sum() {
  std::uint64_t total = 0;
  for (const auto& b : kBlocks) total += b.prefix.size();
  return total;
}

// The true sum of the 16 Table I block sizes. The paper's printed total
// (575,931,649) does not match its own rows — it is short by exactly one /8
// (16,777,216), an arithmetic slip in the paper. The real sum matters: after
// removing the one overlapping address (255.255.255.255/32 lies inside
// 240.0.0.0/4), 2^32 - 592,708,864 = 3,702,258,432 — *exactly* the paper's
// 2018 Q1 packet count (Table II), confirming the probed set was "everything
// outside Table I".
constexpr std::uint64_t kBlocksSum = compute_blocks_sum();
static_assert(kBlocksSum == 592708865ULL);

// 255.255.255.255/32 lies inside 240.0.0.0/4, so the count of *unique*
// reserved addresses is one less than the sum of block sizes.
constexpr std::uint64_t kUniqueReserved = kBlocksSum - 1;

constexpr std::array<std::uint8_t, 256> make_first_octet_class() {
  std::array<std::uint8_t, 256> t{};  // kOctetClear
  for (const auto& b : kBlocks) {
    const std::uint32_t first = b.prefix.first() >> 24;
    const std::uint32_t last = b.prefix.last() >> 24;
    for (std::uint32_t o = first; o <= last; ++o) {
      const bool whole = b.prefix.first() <= (o << 24) &&
                         b.prefix.last() >= ((o << 24) | 0xFFFFFFu);
      if (whole)
        t[o] = kOctetReserved;
      else if (t[o] == kOctetClear)
        t[o] = kOctetPartial;
    }
  }
  return t;
}

}  // namespace

std::span<const ReservedBlock> reserved_blocks() noexcept { return kBlocks; }

std::uint64_t reserved_address_count() noexcept { return kBlocksSum; }

std::uint64_t paper_table1_total() noexcept { return 575931649ULL; }

std::uint64_t probeable_address_count() noexcept {
  // 2^32 - 592,708,864 = 3,702,258,432, matching the paper's 2018 Q1 count.
  return (std::uint64_t{1} << 32) - kUniqueReserved;
}

const std::array<std::uint8_t, 256> kFirstOctetClass = make_first_octet_class();

bool is_reserved_slow(IPv4Addr a) noexcept {
  for (const auto& b : kBlocks)
    if (b.prefix.contains(a)) return true;
  return false;
}

}  // namespace orp::net
