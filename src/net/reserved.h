// The RFC-reserved IPv4 blocks excluded from probing (paper Table I).
//
// The paper excludes 16 address blocks totalling 575,931,649 addresses and
// scans the remaining ~3.7 billion. We reproduce the exact list, expose a
// fast membership test (used on the prober's hot path: one check per
// generated target), and the arithmetic behind Table I.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string_view>

#include "net/ipv4.h"

namespace orp::net {

struct ReservedBlock {
  Prefix prefix;
  std::string_view rfc;
};

/// The 16 blocks of Table I, in the paper's order.
std::span<const ReservedBlock> reserved_blocks() noexcept;

/// True sum of the Table I block sizes: 592,708,865. (The paper prints
/// 575,931,649 in its Total row — short by exactly one /8; see
/// paper_table1_total().)
std::uint64_t reserved_address_count() noexcept;

/// The total the paper printed for Table I (575,931,649), kept so benches
/// can display paper-vs-recomputed side by side.
std::uint64_t paper_table1_total() noexcept;

/// 2^32 minus unique reserved addresses: 3,702,258,432 probeable addresses —
/// exactly the 2018 Q1 count of Table II.
std::uint64_t probeable_address_count() noexcept;

/// First-octet classification backing the is_reserved() fast path. Every
/// Table I block either covers whole /8s (class kOctetReserved) or lies
/// entirely inside one first octet (class kOctetPartial, needing the full
/// block scan); most octets touch no block at all (kOctetClear).
enum : std::uint8_t {
  kOctetClear = 0,
  kOctetReserved = 1,
  kOctetPartial = 2,
};

/// One class byte per first octet, computed from the Table I blocks at
/// compile time.
extern const std::array<std::uint8_t, 256> kFirstOctetClass;

/// Full scan of the Table I blocks; only reachable for the handful of
/// kOctetPartial first octets.
bool is_reserved_slow(IPv4Addr a) noexcept;

/// Membership test against the Table I exclusion list. This sits on the
/// prober's hot path (one check per generated target, ~3.7B per campaign):
/// a single table byte settles all-clear and all-reserved first octets, and
/// only partially covered octets fall through to the block scan.
inline bool is_reserved(IPv4Addr a) noexcept {
  const std::uint8_t c = kFirstOctetClass[a.value() >> 24];
  if (c == kOctetClear) return false;
  if (c == kOctetReserved) return true;
  return is_reserved_slow(a);
}

}  // namespace orp::net
