#include "net/sim_time.h"

#include "util/strings.h"

namespace orp::net {

std::string SimTime::to_string() const {
  return util::human_duration(as_seconds());
}

}  // namespace orp::net
