// Simulated time primitives for the discrete-event network.
//
// The paper's 2018 scan took ~11 wall-clock hours at 100k packets/second;
// we reproduce the pacing arithmetic in *simulated* time so a full-scale
// schedule can be evaluated in seconds of real time.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace orp::net {

/// Nanosecond-resolution simulated timestamp/duration.
class SimTime {
 public:
  constexpr SimTime() = default;

  static constexpr SimTime nanos(std::int64_t n) noexcept { return SimTime(n); }
  static constexpr SimTime micros(std::int64_t u) noexcept {
    return SimTime(u * 1'000);
  }
  static constexpr SimTime millis(std::int64_t m) noexcept {
    return SimTime(m * 1'000'000);
  }
  static constexpr SimTime seconds(double s) noexcept {
    return SimTime(static_cast<std::int64_t>(s * 1e9));
  }

  constexpr std::int64_t as_nanos() const noexcept { return ns_; }
  constexpr double as_seconds() const noexcept {
    return static_cast<double>(ns_) / 1e9;
  }

  constexpr SimTime operator+(SimTime o) const noexcept {
    return SimTime(ns_ + o.ns_);
  }
  constexpr SimTime operator-(SimTime o) const noexcept {
    return SimTime(ns_ - o.ns_);
  }
  constexpr SimTime& operator+=(SimTime o) noexcept {
    ns_ += o.ns_;
    return *this;
  }
  constexpr SimTime operator*(std::int64_t k) const noexcept {
    return SimTime(ns_ * k);
  }

  friend constexpr auto operator<=>(SimTime, SimTime) noexcept = default;

  std::string to_string() const;

 private:
  constexpr explicit SimTime(std::int64_t ns) noexcept : ns_(ns) {}
  std::int64_t ns_ = 0;
};

}  // namespace orp::net
