#include "net/stream.h"

#include <cstring>

namespace orp::net {

StreamNet::StreamNet(EventLoop& loop, BufferPool& pool, std::uint64_t seed)
    : loop_(loop), pool_(pool), rng_(seed) {}

void StreamNet::listen(Endpoint ep, StreamHandler* h) { listeners_[ep] = h; }

void StreamNet::unlisten(Endpoint ep) { listeners_.erase(ep); }

bool StreamNet::listening(Endpoint ep) const {
  return listeners_.find(ep) != listeners_.end();
}

StreamNet::Conn* StreamNet::get(ConnId c) noexcept {
  const std::uint32_t slot = slot_of(c);
  if (slot >= conns_.size()) return nullptr;
  Conn& conn = conns_[slot];
  if (conn.state == State::kFree || conn.gen != gen_of(c)) return nullptr;
  return &conn;
}

const StreamNet::Conn* StreamNet::get(ConnId c) const noexcept {
  return const_cast<StreamNet*>(this)->get(c);
}

ConnId StreamNet::alloc_conn() {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(conns_.size());
    conns_.emplace_back();
  }
  Conn& c = conns_[slot];
  c.local = Endpoint{};
  c.remote = Endpoint{};
  c.peer = kNilConn;
  c.handler = nullptr;
  c.state = State::kSynSent;  // placeholder; caller sets the real state
  c.rx_floor = SimTime{};
  c.bytes_sent = 0;
  c.bytes_received = 0;
  c.user_data = 0;
  c.rx.clear();  // capacity retained
  c.rx_off = 0;
  ++active_;
  return make_id(slot, c.gen);
}

void StreamNet::free_conn(ConnId c) {
  const std::uint32_t slot = slot_of(c);
  Conn& conn = conns_[slot];
  conn.state = State::kFree;
  conn.handler = nullptr;
  ++conn.gen;  // in-flight events toward this id are now inert
  free_slots_.push_back(slot);
  --active_;
}

SimTime StreamNet::sample_latency() {
  const std::int64_t jitter_ns = latency_.jitter.as_nanos();
  if (jitter_ns <= 0) return latency_.base;
  return latency_.base +
         SimTime::nanos(static_cast<std::int64_t>(
             rng_.bounded(static_cast<std::uint64_t>(jitter_ns))));
}

SimTime StreamNet::ordered_arrival(Conn& to) {
  SimTime at = loop_.now() + sample_latency();
  if (at < to.rx_floor) at = to.rx_floor;
  to.rx_floor = at;
  return at;
}

ConnId StreamNet::connect(Endpoint src, Endpoint dst, StreamHandler* h) {
  const ConnId cid = alloc_conn();
  Conn& c = conns_[slot_of(cid)];
  c.local = src;
  c.remote = dst;
  c.handler = h;
  c.state = State::kSynSent;
  ++stats_.connects;
  c.bytes_sent += kSegmentOverhead;  // SYN
  stats_.bytes_sent += kSegmentOverhead;
  if (loss_rate_ > 0.0 && rng_.chance(loss_rate_)) {
    // Lost SYN: nothing ever arrives; the caller's timeout is the only
    // signal (real TCP would retransmit, but a resolver that silently
    // drops TCP behaves exactly like this to the prober).
    ++stats_.syn_lost;
    return cid;
  }
  loop_.schedule_in(sample_latency(), [this, cid]() { syn_arrive(cid); });
  return cid;
}

void StreamNet::syn_arrive(ConnId client) {
  Conn* c = get(client);
  if (c == nullptr || c->state != State::kSynSent) return;  // caller gave up
  const auto it = listeners_.find(c->remote);
  if (it == listeners_.end()) {
    // Connection refused: RST back to the client.
    ++stats_.refused;
    loop_.schedule_in(sample_latency(),
                      [this, client]() { refuse_arrive(client); });
    return;
  }
  const ConnId sid = alloc_conn();
  Conn& s = conns_[slot_of(sid)];
  Conn& cc = conns_[slot_of(client)];  // alloc_conn may have reallocated
  s.local = cc.remote;
  s.remote = cc.local;
  s.handler = it->second;
  s.state = State::kEstablished;
  s.peer = client;
  cc.peer = sid;
  // Server-side handshake accounting: SYN in, SYN-ACK out, final ACK in.
  s.bytes_received += 2 * kSegmentOverhead;
  s.bytes_sent += kSegmentOverhead;
  stats_.bytes_sent += kSegmentOverhead;
  stats_.bytes_received += 2 * kSegmentOverhead;
  ++stats_.accepted;
  loop_.schedule_in(sample_latency(),
                    [this, client]() { synack_arrive(client); });
  s.handler->on_accept(sid, s.remote);
}

void StreamNet::synack_arrive(ConnId client) {
  Conn* c = get(client);
  if (c == nullptr || c->state != State::kSynSent) return;
  c->state = State::kEstablished;
  // SYN-ACK in, final ACK out.
  c->bytes_received += kSegmentOverhead;
  c->bytes_sent += kSegmentOverhead;
  stats_.bytes_sent += kSegmentOverhead;
  stats_.bytes_received += kSegmentOverhead;
  if (c->handler != nullptr) c->handler->on_established(client);
}

void StreamNet::refuse_arrive(ConnId client) {
  Conn* c = get(client);
  if (c == nullptr || c->state != State::kSynSent) return;
  c->bytes_received += kSegmentOverhead;  // RST
  stats_.bytes_received += kSegmentOverhead;
  ++stats_.resets;
  StreamHandler* h = c->handler;
  free_conn(client);
  if (h != nullptr) h->on_closed(client, true);
}

void StreamNet::schedule_segment(ConnId to, std::span<const std::uint8_t> seg) {
  Conn* dst = get(to);
  if (dst == nullptr) return;
  const SimTime at = ordered_arrival(*dst);
  PayloadRef payload = pool_.acquire(seg);
  ++stats_.segments_sent;
  loop_.schedule_at(at, [this, to, payload = std::move(payload)]() {
    segment_arrive(to, payload);
  });
}

bool StreamNet::send_message(ConnId c, std::span<const std::uint8_t> payload) {
  Conn* conn = get(c);
  if (conn == nullptr || conn->state != State::kEstablished ||
      payload.size() > 0xFFFF)
    return false;
  const ConnId peer = conn->peer;
  if (get(peer) == nullptr) return false;  // peer already gone
  ++stats_.messages_sent;

  // First segment carries the 2-byte big-endian length prefix plus the head
  // of the payload; later segments slice the payload span directly.
  const std::size_t head =
      payload.size() < mss_ - 2 ? payload.size() : mss_ - 2;
  seg_scratch_.clear();
  seg_scratch_.push_back(static_cast<std::uint8_t>(payload.size() >> 8));
  seg_scratch_.push_back(static_cast<std::uint8_t>(payload.size() & 0xFF));
  seg_scratch_.insert(seg_scratch_.end(), payload.begin(),
                      payload.begin() + static_cast<std::ptrdiff_t>(head));
  std::uint64_t wire = seg_scratch_.size() + kSegmentOverhead;
  schedule_segment(peer, seg_scratch_);
  for (std::size_t off = head; off < payload.size(); off += mss_) {
    const std::size_t n =
        payload.size() - off < mss_ ? payload.size() - off : mss_;
    wire += n + kSegmentOverhead;
    schedule_segment(peer, payload.subspan(off, n));
  }
  conn = get(c);  // schedule_segment never frees, but stay defensive
  if (conn != nullptr) conn->bytes_sent += wire;
  stats_.bytes_sent += wire;
  return true;
}

void StreamNet::segment_arrive(ConnId to, const PayloadRef& seg) {
  Conn* c = get(to);
  if (c == nullptr || c->state != State::kEstablished) return;
  c->bytes_received += seg.size() + kSegmentOverhead;
  stats_.bytes_received += seg.size() + kSegmentOverhead;
  c->rx.insert(c->rx.end(), seg.begin(), seg.end());
  deliver_messages(to);
}

void StreamNet::deliver_messages(ConnId to) {
  // Extract every complete [len16][payload] frame. The handler may close
  // the connection from inside on_message, so revalidate per frame.
  while (true) {
    Conn* live = get(to);
    if (live == nullptr || live->state != State::kEstablished) return;
    const std::size_t avail = live->rx.size() - live->rx_off;
    if (avail < 2) break;
    const std::size_t len = (std::size_t{live->rx[live->rx_off]} << 8) |
                            live->rx[live->rx_off + 1];
    if (avail - 2 < len) break;
    const PayloadRef msg =
        pool_.acquire({live->rx.data() + live->rx_off + 2, len});
    live->rx_off += 2 + len;
    ++stats_.messages_delivered;
    live->handler->on_message(to, loop_.now(), msg);
  }
  Conn* live = get(to);
  if (live == nullptr) return;
  if (live->rx_off == live->rx.size()) {
    live->rx.clear();
    live->rx_off = 0;
  } else if (live->rx_off > 0) {
    // Compact the tail of a split frame to the front; capacity retained.
    std::memmove(live->rx.data(), live->rx.data() + live->rx_off,
                 live->rx.size() - live->rx_off);
    live->rx.resize(live->rx.size() - live->rx_off);
    live->rx_off = 0;
  }
}

void StreamNet::close(ConnId c) {
  Conn* conn = get(c);
  if (conn == nullptr) return;
  const ConnId peer = conn->peer;
  if (conn->state == State::kEstablished && get(peer) != nullptr) {
    conn->bytes_sent += kSegmentOverhead;  // FIN
    stats_.bytes_sent += kSegmentOverhead;
    Conn* p = get(peer);
    const SimTime at = ordered_arrival(*p);
    loop_.schedule_at(at, [this, peer]() { fin_arrive(peer); });
  }
  free_conn(c);
}

void StreamNet::fin_arrive(ConnId to) {
  Conn* c = get(to);
  if (c == nullptr) return;
  c->bytes_received += kSegmentOverhead;
  stats_.bytes_received += kSegmentOverhead;
  ++stats_.fins;
  StreamHandler* h = c->handler;
  free_conn(to);
  if (h != nullptr) h->on_closed(to, false);
}

void StreamNet::reset(ConnId c) {
  Conn* conn = get(c);
  if (conn == nullptr) return;
  const ConnId peer = conn->peer;
  if (peer != kNilConn && get(peer) != nullptr) {
    conn->bytes_sent += kSegmentOverhead;  // RST
    stats_.bytes_sent += kSegmentOverhead;
    loop_.schedule_in(sample_latency(), [this, peer]() { rst_arrive(peer); });
  }
  free_conn(c);
}

void StreamNet::rst_arrive(ConnId to) {
  Conn* c = get(to);
  if (c == nullptr) return;
  c->bytes_received += kSegmentOverhead;
  stats_.bytes_received += kSegmentOverhead;
  ++stats_.resets;
  StreamHandler* h = c->handler;
  free_conn(to);
  if (h != nullptr) h->on_closed(to, true);
}

bool StreamNet::established(ConnId c) const noexcept {
  const Conn* conn = get(c);
  return conn != nullptr && conn->state == State::kEstablished;
}

Endpoint StreamNet::local_endpoint(ConnId c) const noexcept {
  const Conn* conn = get(c);
  return conn != nullptr ? conn->local : Endpoint{};
}

Endpoint StreamNet::remote_endpoint(ConnId c) const noexcept {
  const Conn* conn = get(c);
  return conn != nullptr ? conn->remote : Endpoint{};
}

void StreamNet::set_user_data(ConnId c, std::uint64_t v) noexcept {
  Conn* conn = get(c);
  if (conn != nullptr) conn->user_data = v;
}

std::uint64_t StreamNet::user_data(ConnId c) const noexcept {
  const Conn* conn = get(c);
  return conn != nullptr ? conn->user_data : 0;
}

std::uint64_t StreamNet::conn_bytes_sent(ConnId c) const noexcept {
  const Conn* conn = get(c);
  return conn != nullptr ? conn->bytes_sent : 0;
}

std::uint64_t StreamNet::conn_bytes_received(ConnId c) const noexcept {
  const Conn* conn = get(c);
  return conn != nullptr ? conn->bytes_received : 0;
}

}  // namespace orp::net
