// Simulated TCP-style stream transport beside the datagram path.
//
// The DoTCP line of work (PAPERS.md: truncation, fragmentation, and TCP
// fallback on open resolvers) measures what happens *after* a UDP answer
// arrives with TC=1: the client re-asks over a connection. Modeling that
// needs a second transport with connection setup cost, ordered delivery,
// and the 2-byte DNS length prefix — none of which the datagram network
// has or should grow.
//
// StreamNet is that transport. Design rules, in the order they matter:
//
//   * Determinism isolation. StreamNet draws from its OWN Rng substream
//     (forked from the network seed by a fixed label), never from the
//     datagram network's. A campaign with tcp_fallback disabled therefore
//     schedules zero stream events and consumes zero extra draws — the
//     pinned UDP digests are invariant by construction, not by luck.
//   * Pooled everything. Connection records recycle through a free list
//     (generation-counted ids make stale in-flight events inert), segment
//     payloads ride BufferPool slabs, and reassembly buffers keep their
//     capacity across connections: the established-connection
//     send → segment → deliver → reassemble path is zero allocations per
//     message once warm (pinned by test_alloc_budget).
//   * Ordered delivery. Each segment's arrival time is clamped to be no
//     earlier than the previous segment toward the same connection
//     (deliver_at = max(now + latency, rx_floor)); equal times fall back
//     to the event loop's insertion-seq tie-break. Segments therefore
//     arrive in send order — TCP's contract — without modeling seq/ack.
//   * Framing is the transport's job. Callers send and receive whole DNS
//     messages; StreamNet prepends the RFC 1035 §4.2.2 2-byte length on
//     the wire, splits into MSS-sized segments, and reassembles on the
//     far side. A message delivered by on_message is a pooled PayloadRef
//     containing exactly the DNS bytes, prefix stripped.
//
// Loss models SYN drop only: an established connection retransmits
// internally in real TCP, so data segments always arrive; a lost SYN means
// the connect never completes and the caller's timeout fires — exactly the
// failure mode the fallback study needs (TC-then-TCP-timeout).
//
// Wire-byte accounting: every packet (SYN/SYN-ACK/ACK/FIN/RST/segment)
// charges kSegmentOverhead header bytes plus payload to the sending side's
// per-connection counters. The amplification study reads these to compare
// bytes-in/bytes-out with and without fallback; pure data ACKs are not
// modeled (a conservative under-count of the client's TCP cost).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/buffer_pool.h"
#include "net/event_loop.h"
#include "net/transport.h"
#include "util/rng.h"

namespace orp::net {

/// Generation-counted connection handle: {generation:16 | slot:16}. A slot
/// recycles with its generation bumped, so events in flight toward a closed
/// connection validate against the current generation and drop silently.
using ConnId = std::uint32_t;
constexpr ConnId kNilConn = 0xFFFFFFFFu;

/// Per-connection callbacks. A virtual interface, not std::function: one
/// vtable pointer per *role* (scanner, resolver, auth server), zero bytes
/// and zero allocations per connection.
class StreamHandler {
 public:
  virtual ~StreamHandler() = default;
  /// Server side: an inbound connection completed its handshake.
  virtual void on_accept(ConnId c, Endpoint peer) { (void)c, (void)peer; }
  /// Client side: connect() completed (SYN-ACK arrived); send_message is
  /// now legal.
  virtual void on_established(ConnId c) { (void)c; }
  /// One whole length-prefixed DNS message reassembled (prefix stripped).
  virtual void on_message(ConnId c, SimTime at, const PayloadRef& msg) = 0;
  /// The peer closed (reset=false: FIN) or the connection failed/was torn
  /// down (reset=true: RST or connection refused). `c` is invalid after.
  virtual void on_closed(ConnId c, bool reset) { (void)c, (void)reset; }
};

struct StreamStats {
  std::uint64_t connects = 0;        // connect() calls
  std::uint64_t accepted = 0;        // handshakes completed at a listener
  std::uint64_t refused = 0;         // SYN at an endpoint nobody listens on
  std::uint64_t syn_lost = 0;        // SYN eaten by the loss model
  std::uint64_t resets = 0;          // RSTs delivered
  std::uint64_t fins = 0;            // orderly closes delivered
  std::uint64_t messages_sent = 0;   // send_message() calls
  std::uint64_t messages_delivered = 0;
  std::uint64_t segments_sent = 0;
  std::uint64_t bytes_sent = 0;      // wire bytes incl. header overhead
  std::uint64_t bytes_received = 0;

  StreamStats& operator+=(const StreamStats& o) noexcept {
    connects += o.connects;
    accepted += o.accepted;
    refused += o.refused;
    syn_lost += o.syn_lost;
    resets += o.resets;
    fins += o.fins;
    messages_sent += o.messages_sent;
    messages_delivered += o.messages_delivered;
    segments_sent += o.segments_sent;
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    return *this;
  }
};

class StreamNet {
 public:
  /// IPv4 (20) + TCP (20) header bytes charged per simulated packet.
  static constexpr std::size_t kSegmentOverhead = 40;
  /// Client-side handshake cost: SYN + final ACK out, SYN-ACK in.
  static constexpr std::size_t kClientHandshakeBytes = 2 * kSegmentOverhead;
  /// Default maximum segment size (Ethernet-path MSS).
  static constexpr std::size_t kDefaultMss = 1460;

  StreamNet(EventLoop& loop, BufferPool& pool, std::uint64_t seed);

  StreamNet(const StreamNet&) = delete;
  StreamNet& operator=(const StreamNet&) = delete;

  void set_latency(LatencyModel m) noexcept { latency_ = m; }
  void set_loss_rate(double p) noexcept { loss_rate_ = p; }
  void set_mss(std::size_t mss) noexcept { mss_ = mss < 8 ? 8 : mss; }

  /// Register / remove a passive listener. One handler serves every
  /// connection accepted at `ep`.
  void listen(Endpoint ep, StreamHandler* h);
  void unlisten(Endpoint ep);
  bool listening(Endpoint ep) const;

  /// Active open. Returns immediately with the client's ConnId; the
  /// handshake completes (on_established) or fails (on_closed reset=true /
  /// nothing at all if the SYN is lost) in simulated time. The caller owns
  /// its own timeout for the silent-loss case.
  ConnId connect(Endpoint src, Endpoint dst, StreamHandler* h);

  /// Queue one whole DNS message on an established connection. The 2-byte
  /// length prefix is added on the wire and stripped before on_message.
  /// Returns false (and sends nothing) if `c` is stale or not established.
  bool send_message(ConnId c, std::span<const std::uint8_t> dns_payload);

  /// Orderly close: a FIN is delivered to the peer after any in-flight
  /// segments; the local end is released immediately.
  void close(ConnId c);
  /// Abortive close: RST to the peer (unclamped — may overtake data), local
  /// end released immediately.
  void reset(ConnId c);

  bool established(ConnId c) const noexcept;
  Endpoint local_endpoint(ConnId c) const noexcept;
  Endpoint remote_endpoint(ConnId c) const noexcept;

  /// Opaque per-connection caller state (e.g. the scanner's retry-slot
  /// index). Valid for the connection's lifetime; stale ids read 0.
  void set_user_data(ConnId c, std::uint64_t v) noexcept;
  std::uint64_t user_data(ConnId c) const noexcept;

  /// Wire bytes this side of the connection has put on / taken off the
  /// wire, including kSegmentOverhead per packet. Stale ids read 0.
  std::uint64_t conn_bytes_sent(ConnId c) const noexcept;
  std::uint64_t conn_bytes_received(ConnId c) const noexcept;

  const StreamStats& stats() const noexcept { return stats_; }
  /// Connections currently live (any state).
  std::size_t active_conns() const noexcept { return active_; }
  /// Pooled connection records ever created (the high-water mark).
  std::size_t conn_slots() const noexcept { return conns_.size(); }

 private:
  enum class State : std::uint8_t { kFree, kSynSent, kEstablished };

  struct Conn {
    Endpoint local;
    Endpoint remote;
    ConnId peer = kNilConn;
    StreamHandler* handler = nullptr;
    State state = State::kFree;
    std::uint16_t gen = 0;
    /// Ordered delivery: no segment toward this conn may arrive earlier
    /// than the last one scheduled toward it.
    SimTime rx_floor;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t user_data = 0;
    /// Reassembly buffer: [rx_off, rx.size()) is unconsumed wire data.
    /// Keeps its capacity across recycles — steady-state reassembly never
    /// allocates.
    std::vector<std::uint8_t> rx;
    std::size_t rx_off = 0;
  };

  struct EndpointHash {
    std::size_t operator()(const Endpoint& e) const noexcept {
      return static_cast<std::size_t>(
          util::mix64((std::uint64_t{e.addr.value()} << 16) | e.port));
    }
  };

  static constexpr std::uint32_t slot_of(ConnId c) noexcept {
    return c & 0xFFFFu;
  }
  static constexpr std::uint16_t gen_of(ConnId c) noexcept {
    return static_cast<std::uint16_t>(c >> 16);
  }
  static constexpr ConnId make_id(std::uint32_t slot,
                                  std::uint16_t gen) noexcept {
    return (std::uint32_t{gen} << 16) | slot;
  }

  Conn* get(ConnId c) noexcept;
  const Conn* get(ConnId c) const noexcept;
  ConnId alloc_conn();
  void free_conn(ConnId c);
  SimTime sample_latency();
  /// Clamped arrival time toward `to`, advancing its rx_floor.
  SimTime ordered_arrival(Conn& to);
  void schedule_segment(ConnId to, std::span<const std::uint8_t> seg);

  // Event bodies (each validates its ConnId's generation first).
  void syn_arrive(ConnId client);
  void synack_arrive(ConnId client);
  void refuse_arrive(ConnId client);
  void segment_arrive(ConnId to, const PayloadRef& seg);
  void fin_arrive(ConnId to);
  void rst_arrive(ConnId to);
  void deliver_messages(ConnId to);

  EventLoop& loop_;
  BufferPool& pool_;
  util::Rng rng_;
  LatencyModel latency_{};
  double loss_rate_ = 0.0;
  std::size_t mss_ = kDefaultMss;
  std::unordered_map<Endpoint, StreamHandler*, EndpointHash> listeners_;
  std::vector<Conn> conns_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t active_ = 0;
  /// First-segment staging (length prefix + head of the payload); capacity
  /// warms once.
  std::vector<std::uint8_t> seg_scratch_;
  StreamStats stats_;
};

}  // namespace orp::net
