#include "net/transport.h"

#include <utility>

namespace orp::net {

void Network::bind(Endpoint ep, Handler handler) {
  handlers_[ep] = std::move(handler);
}

void Network::unbind(Endpoint ep) { handlers_.erase(ep); }

bool Network::bound(Endpoint ep) const { return handlers_.contains(ep); }

SimTime Network::sample_latency() {
  const auto jitter_ns = latency_.jitter.as_nanos();
  const auto extra =
      jitter_ns > 0
          ? static_cast<std::int64_t>(
                rng_.bounded(static_cast<std::uint64_t>(jitter_ns)))
          : 0;
  return latency_.base + SimTime::nanos(extra);
}

void Network::send(Datagram d) {
  ++sent_;
  for (const auto& tap : taps_) tap(loop_.now(), d);
  if (loss_rate_ > 0.0 && rng_.chance(loss_rate_)) {
    ++dropped_loss_;
    return;
  }
  const auto it = handlers_.find(d.dst);
  if (it == handlers_.end()) {
    ++dropped_unbound_;
    return;
  }
  const SimTime deliver_at = loop_.now() + sample_latency();
  // Copy the handler reference target by key lookup at delivery time, so a
  // host that unbinds mid-flight drops the packet instead of touching a
  // dangling callback.
  loop_.schedule_at(deliver_at, [this, d = std::move(d)]() {
    const auto live = handlers_.find(d.dst);
    if (live == handlers_.end()) {
      ++dropped_unbound_;
      return;
    }
    ++delivered_;
    // Copy before invoking: a handler may unbind itself (one-shot ephemeral
    // ports do), which would otherwise destroy the function mid-call.
    const Handler handler = live->second;
    handler(d);
  });
}

}  // namespace orp::net
