#include "net/transport.h"

#include <utility>

#include "net/stream.h"

namespace orp::net {

Network::Network(EventLoop& loop, std::uint64_t seed)
    : loop_(loop), rng_(seed), seed_(seed) {}

Network::~Network() = default;

void Network::set_latency(LatencyModel m) noexcept {
  latency_ = m;
  if (streams_) streams_->set_latency(m);
}

void Network::set_loss_rate(double p) noexcept {
  loss_rate_ = p;
  if (streams_) streams_->set_loss_rate(p);
}

StreamNet& Network::streams() {
  if (!streams_) {
    // A fixed fork label keeps the stream substream a pure function of the
    // network seed — the datagram rng_ is never consulted.
    streams_ = std::make_unique<StreamNet>(
        loop_, pool_, util::mix64(seed_ ^ 0x7c9df1a35b8e24d6ULL));
    streams_->set_latency(latency_);
    streams_->set_loss_rate(loss_rate_);
  }
  return *streams_;
}

void Network::bind(Endpoint ep, Handler handler) {
  Binding& b = handlers_[ep];
  b.single = std::move(handler);
  b.batch = nullptr;
  note_bound(ep);
}

void Network::bind_batch(Endpoint ep, Handler single, BatchHandler batch) {
  Binding& b = handlers_[ep];
  b.single = std::move(single);
  b.batch = std::move(batch);
  note_bound(ep);
}

void Network::unbind(Endpoint ep) { handlers_.erase(ep); }

bool Network::bound(Endpoint ep) const { return handlers_.contains(ep); }

SimTime Network::sample_latency() {
  const auto jitter_ns = latency_.jitter.as_nanos();
  const auto extra =
      jitter_ns > 0
          ? static_cast<std::int64_t>(
                rng_.bounded(static_cast<std::uint64_t>(jitter_ns)))
          : 0;
  return latency_.base + SimTime::nanos(extra);
}

void Network::send(Datagram d) {
  ++sent_;
  for (const auto& tap : taps_) tap.single(loop_.now(), d);
  if (loss_rate_ > 0.0 && rng_.chance(loss_rate_)) {
    ++dropped_loss_;
    return;
  }
  if (!maybe_bound(d.dst) || !handlers_.contains(d.dst)) {
    ++dropped_unbound_;
    return;
  }
  const SimTime deliver_at = loop_.now() + sample_latency();
  // Copy the handler reference target by key lookup at delivery time, so a
  // host that unbinds mid-flight drops the packet instead of touching a
  // dangling callback.
  loop_.schedule_at(deliver_at, [this, d = std::move(d)]() {
    const auto live = handlers_.find(d.dst);
    if (live == handlers_.end()) {
      ++dropped_unbound_;
      return;
    }
    ++delivered_;
    // Copy before invoking: a handler may unbind itself (one-shot ephemeral
    // ports do), which would otherwise destroy the function mid-call.
    const Handler handler = live->second.single;
    handler(d);
  });
}

void Network::send_batch(std::span<const PacketView> pkts) {
  if (pkts.empty()) return;
  const SimTime now = loop_.now();
  sent_ += pkts.size();
  // Batch-aware taps observe the whole span in one call; taps without a
  // batch half see each packet as a Datagram, which requires materializing
  // a pool buffer per item (only legacy single-tap users pay this).
  bool singles_only_taps = false;
  for (const auto& tap : taps_) {
    if (tap.batch)
      tap.batch(now, pkts);
    else
      singles_only_taps = true;
  }
  if (singles_only_taps) {
    for (const PacketView& p : pkts) {
      const Datagram d{p.src, p.dst, pool_.acquire(p.payload)};
      for (const auto& tap : taps_)
        if (!tap.batch) tap.single(now, d);
    }
  }
  // Per-packet draws in span order, exactly as send() would have made them:
  // loss first, then (bound packets only) latency. Consecutive survivors
  // sharing (dst, deliver time) accumulate into one grouped delivery; the
  // group is scheduled when it closes, which is where the *first* member's
  // per-packet event would have gone — nothing else schedules in between,
  // so every relative event order is preserved.
  DatagramBatch* open = nullptr;
  for (const PacketView& p : pkts) {
    if (loss_rate_ > 0.0 && rng_.chance(loss_rate_)) {
      ++dropped_loss_;
      continue;
    }
    if (!maybe_bound(p.dst) || !handlers_.contains(p.dst)) {
      ++dropped_unbound_;
      continue;
    }
    const SimTime deliver_at = now + sample_latency();
    if (open != nullptr &&
        (open->dst != p.dst || open->at != deliver_at ||
         (group_cap_ != 0 && open->size() >= group_cap_))) {
      schedule_group(open);
      open = nullptr;
    }
    if (open == nullptr) {
      open = acquire_group();
      open->at = deliver_at;
      open->dst = p.dst;
    }
    open->srcs.push_back(p.src);
    open->payloads.push_back(pool_.acquire(p.payload));
  }
  if (open != nullptr) schedule_group(open);
}

DatagramBatch* Network::acquire_group() {
  if (group_free_.empty()) {
    group_store_.push_back(std::make_unique<DatagramBatch>());
    return group_store_.back().get();
  }
  DatagramBatch* b = group_free_.back();
  group_free_.pop_back();
  return b;
}

void Network::schedule_group(DatagramBatch* b) {
  loop_.schedule_at(b->at, [this, b]() { deliver_group(b); });
}

void Network::deliver_group(DatagramBatch* b) {
  const std::size_t n = b->size();
  if (metrics_ != nullptr) metrics_->observe(delivery_batch_h_, n);
  const auto it = handlers_.find(b->dst);
  if (it == handlers_.end()) {
    dropped_unbound_ += n;
  } else if (it->second.batch) {
    delivered_ += n;
    // Copy before invoking, same discipline as the single path.
    const BatchHandler handler = it->second.batch;
    handler(*b);
  } else {
    // Single-packet fallback: re-check the binding before each item — a
    // handler may unbind itself mid-group (one-shot ephemeral ports do),
    // and the per-packet path would have re-checked per delivery event.
    for (std::size_t i = 0; i < n; ++i) {
      const auto live = handlers_.find(b->dst);
      if (live == handlers_.end()) {
        ++dropped_unbound_;
        continue;
      }
      ++delivered_;
      ++batch_fallback_singles_;
      const Handler handler = live->second.single;
      handler(Datagram{b->srcs[i], b->dst, b->payloads[i]});
    }
  }
  release_group(b);
}

void Network::release_group(DatagramBatch* b) {
  b->srcs.clear();
  b->payloads.clear();  // drops the refs, recycling slabs into the pool
  group_free_.push_back(b);
}

}  // namespace orp::net
