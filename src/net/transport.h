// Simulated UDP datagram network.
//
// Hosts register an endpoint (address, port) and receive datagrams through a
// callback. Delivery goes through the event loop with a configurable latency
// model and loss rate. Taps can observe every accepted datagram — this is
// how the prober-side and authns-side captures of Fig. 2 are implemented
// (the paper used modified ZMap output and tcpdump respectively).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/buffer_pool.h"
#include "net/event_loop.h"
#include "net/ipv4.h"
#include "util/rng.h"

namespace orp::net {

constexpr std::uint16_t kDnsPort = 53;

struct Endpoint {
  IPv4Addr addr;
  std::uint16_t port = 0;

  friend constexpr auto operator<=>(const Endpoint&, const Endpoint&) noexcept =
      default;
};

struct Datagram {
  Endpoint src;
  Endpoint dst;
  /// Shared immutable payload: the in-flight event, every tap, and the
  /// receiving handler all see the same bytes, copied exactly once (by the
  /// sender, into a pooled or adopted buffer).
  PayloadRef payload;
};

/// Latency model: base propagation delay plus uniform jitter.
struct LatencyModel {
  SimTime base = SimTime::millis(20);
  SimTime jitter = SimTime::millis(30);
};

class Network {
 public:
  using Handler = std::function<void(const Datagram&)>;
  using Tap = std::function<void(SimTime, const Datagram&)>;

  explicit Network(EventLoop& loop, std::uint64_t seed = 1)
      : loop_(loop), rng_(seed) {}

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  void set_latency(LatencyModel m) noexcept { latency_ = m; }
  void set_loss_rate(double p) noexcept { loss_rate_ = p; }

  /// Bind a handler to an endpoint. Rebinding replaces the previous handler.
  void bind(Endpoint ep, Handler handler);
  void unbind(Endpoint ep);
  bool bound(Endpoint ep) const;

  /// Send a datagram. If nothing is bound at the destination the packet is
  /// silently dropped — exactly how probing a non-resolver address behaves.
  void send(Datagram d);

  /// Hot-path send: copy `payload` into a recycled pool buffer (allocation-
  /// free once warm) instead of making the caller materialize a vector. This
  /// is the path every steady-state sender (scanner probes, resolver and
  /// auth-server responses encoded into per-shard scratch) goes through.
  void send(Endpoint src, Endpoint dst, std::span<const std::uint8_t> payload) {
    send(Datagram{src, dst, pool_.acquire(payload)});
  }

  /// Install a tap observing every datagram accepted into the network
  /// (before loss is applied), stamped with the send time.
  void add_tap(Tap tap) { taps_.push_back(std::move(tap)); }

  std::uint64_t sent() const noexcept { return sent_; }
  std::uint64_t delivered() const noexcept { return delivered_; }
  std::uint64_t dropped_loss() const noexcept { return dropped_loss_; }
  std::uint64_t dropped_unbound() const noexcept { return dropped_unbound_; }

  EventLoop& loop() noexcept { return loop_; }
  BufferPool& pool() noexcept { return pool_; }

 private:
  struct EndpointHash {
    std::size_t operator()(const Endpoint& e) const noexcept {
      return std::hash<std::uint64_t>{}(
          (std::uint64_t{e.addr.value()} << 16) | e.port);
    }
  };

  SimTime sample_latency();

  EventLoop& loop_;
  BufferPool pool_;
  util::Rng rng_;
  LatencyModel latency_{};
  double loss_rate_ = 0.0;
  std::unordered_map<Endpoint, Handler, EndpointHash> handlers_;
  std::vector<Tap> taps_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_loss_ = 0;
  std::uint64_t dropped_unbound_ = 0;
};

}  // namespace orp::net
