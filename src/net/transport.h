// Simulated UDP datagram network.
//
// Hosts register an endpoint (address, port) and receive datagrams through a
// callback. Delivery goes through the event loop with a configurable latency
// model and loss rate. Taps can observe every accepted datagram — this is
// how the prober-side and authns-side captures of Fig. 2 are implemented
// (the paper used modified ZMap output and tcpdump respectively).
//
// Two dispatch shapes share one semantics:
//
//   * send(): one datagram, one delivery event, per-packet tap calls. The
//     reference path — everything below is defined as equivalent to it.
//   * send_batch(): a span of PacketViews accepted in order. Batch-aware
//     taps observe the whole span in one call; per-item RNG draws (loss,
//     then latency for bound packets) happen in exactly the order send()
//     would have made them; consecutive packets sharing (dst, deliver time)
//     group into one struct-of-arrays DatagramBatch and are delivered to
//     the destination host in a single call. Because grouped packets were
//     scheduled consecutively (their delivery events would have carried
//     consecutive tie-break seqs), no other event can order between them —
//     grouping is invisible to the simulation's event order.
//
// An endpoint that registered only a single-packet handler still works under
// batched delivery: the group falls back to per-item dispatch, re-checking
// the binding before each item exactly as the per-packet path does (one-shot
// ephemeral ports unbind themselves mid-flight).
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/buffer_pool.h"
#include "net/event_loop.h"
#include "net/ipv4.h"
#include "obs/metrics.h"
#include "util/rng.h"

namespace orp::net {

class StreamNet;

constexpr std::uint16_t kDnsPort = 53;

struct Endpoint {
  IPv4Addr addr;
  std::uint16_t port = 0;

  friend constexpr auto operator<=>(const Endpoint&, const Endpoint&) noexcept =
      default;
};

struct Datagram {
  Endpoint src;
  Endpoint dst;
  /// Shared immutable payload: the in-flight event, every tap, and the
  /// receiving handler all see the same bytes, copied exactly once (by the
  /// sender, into a pooled or adopted buffer).
  PayloadRef payload;
};

/// One not-yet-accepted packet in a send_batch() span: borrowed payload
/// bytes (still in the sender's scratch), no pool buffer yet. The network
/// copies into a pooled buffer only for packets that are actually going to
/// be delivered — unbound destinations (the overwhelming majority of probes
/// in an internet-scale scan) never touch the pool.
struct PacketView {
  Endpoint src;
  Endpoint dst;
  std::span<const std::uint8_t> payload;
};

/// A group of in-flight datagrams sharing one destination endpoint and one
/// delivery time, laid out struct-of-arrays. Delivered to the destination
/// host in a single call; item i is (srcs[i], dst, payloads[i]).
struct DatagramBatch {
  SimTime at;    // delivery time (one event for the whole group)
  Endpoint dst;  // common destination
  std::vector<Endpoint> srcs;
  std::vector<PayloadRef> payloads;

  std::size_t size() const noexcept { return srcs.size(); }
};

/// Latency model: base propagation delay plus uniform jitter.
struct LatencyModel {
  SimTime base = SimTime::millis(20);
  SimTime jitter = SimTime::millis(30);
};

class Network {
 public:
  using Handler = std::function<void(const Datagram&)>;
  using BatchHandler = std::function<void(const DatagramBatch&)>;
  using Tap = std::function<void(SimTime, const Datagram&)>;
  using BatchTap = std::function<void(SimTime, std::span<const PacketView>)>;

  explicit Network(EventLoop& loop, std::uint64_t seed = 1);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  void set_latency(LatencyModel m) noexcept;
  void set_loss_rate(double p) noexcept;

  /// Bind a handler to an endpoint. Rebinding replaces the previous handler
  /// (and clears any batch entry point from an earlier bind_batch).
  void bind(Endpoint ep, Handler handler);
  /// Bind both entry points: grouped deliveries go to `batch` in one call,
  /// everything else (and batch fallback, never for this binding) to
  /// `single`. Both must be callable.
  void bind_batch(Endpoint ep, Handler single, BatchHandler batch);
  void unbind(Endpoint ep);
  bool bound(Endpoint ep) const;

  /// Send a datagram. If nothing is bound at the destination the packet is
  /// silently dropped — exactly how probing a non-resolver address behaves.
  void send(Datagram d);

  /// Hot-path send: copy `payload` into a recycled pool buffer (allocation-
  /// free once warm) instead of making the caller materialize a vector. This
  /// is the path every steady-state sender (scanner probes, resolver and
  /// auth-server responses encoded into per-shard scratch) goes through.
  void send(Endpoint src, Endpoint dst, std::span<const std::uint8_t> payload) {
    send(Datagram{src, dst, pool_.acquire(payload)});
  }

  /// Accept a span of packets in order, equivalent to calling send() on
  /// each. Differences are purely mechanical: batch taps see the span in
  /// one call, pool buffers are acquired only for bound destinations, and
  /// consecutive packets with equal (dst, deliver time) share one grouped
  /// delivery event. RNG draw order (per-packet loss, then latency for
  /// bound packets) is identical to the per-packet path, so a batched
  /// sender produces a bit-identical simulation.
  void send_batch(std::span<const PacketView> pkts);

  /// Install a tap observing every datagram accepted into the network
  /// (before loss is applied), stamped with the send time. A tap installed
  /// without a batch half sees batched sends item by item (each packet
  /// materialized into a pool buffer first — fine for tests and benches,
  /// but the campaign vantage registers both halves).
  void add_tap(Tap tap) { taps_.push_back(TapEntry{std::move(tap), nullptr}); }
  void add_tap(Tap single, BatchTap batch) {
    taps_.push_back(TapEntry{std::move(single), std::move(batch)});
  }

  /// Cap on how many packets one grouped delivery may carry (0 =
  /// unbounded). Any value yields the same delivery order and times; the
  /// knob exists so the determinism suite can sweep caps.
  void set_delivery_group_cap(std::size_t cap) noexcept { group_cap_ = cap; }
  std::size_t delivery_group_cap() const noexcept { return group_cap_; }

  /// Attach an obs::Metrics instance: grouped deliveries then record a
  /// batch-size histogram. Passive — no RNG, no scheduling, no allocation.
  void set_metrics(obs::Metrics* m) noexcept {
    metrics_ = m;
    if (m != nullptr)
      delivery_batch_h_ = obs::builtin().net_delivery_batch_size;
  }

  std::uint64_t sent() const noexcept { return sent_; }
  std::uint64_t delivered() const noexcept { return delivered_; }
  std::uint64_t dropped_loss() const noexcept { return dropped_loss_; }
  std::uint64_t dropped_unbound() const noexcept { return dropped_unbound_; }
  /// Datagrams that arrived inside a grouped delivery but were dispatched
  /// through the single-packet fallback (no batch entry point bound).
  std::uint64_t batch_fallback_singles() const noexcept {
    return batch_fallback_singles_;
  }

  EventLoop& loop() noexcept { return loop_; }
  BufferPool& pool() noexcept { return pool_; }

  /// The stream (TCP-style) transport sharing this network's loop, pool,
  /// and link model. Created on first use with its own Rng substream
  /// (forked from the network seed by a fixed label), so a campaign that
  /// never touches streams draws nothing extra from the datagram RNG and
  /// every pinned UDP digest is invariant by construction.
  StreamNet& streams();
  /// Null until streams() has been called — lets the metrics sweep skip
  /// campaigns that never opened a connection.
  const StreamNet* streams_or_null() const noexcept { return streams_.get(); }

 private:
  struct Binding {
    Handler single;
    BatchHandler batch;  // empty unless bind_batch registered one
  };
  struct TapEntry {
    Tap single;
    BatchTap batch;  // empty taps observe batched sends per item
  };

  struct EndpointHash {
    std::size_t operator()(const Endpoint& e) const noexcept {
      return std::hash<std::uint64_t>{}(
          (std::uint64_t{e.addr.value()} << 16) | e.port);
    }
  };

  SimTime sample_latency();

  // One-sided Bloom-style filter over bound endpoints. In an internet-scale
  // scan the overwhelming majority of probes go to addresses nothing is
  // bound at; a set bit is only a *hint* (hash collisions, stale bits after
  // unbind), so a hit falls through to the real handlers_ lookup — but a
  // clear bit proves the endpoint was never bound and skips the hash-map
  // probe entirely. 2^18 bits = 32 KiB, resident in L1/L2 on the hot path.
  static constexpr std::size_t kFilterWords = std::size_t{1} << 12;
  static constexpr std::uint64_t filter_hash(Endpoint e) noexcept {
    return util::mix64((std::uint64_t{e.addr.value()} << 16) | e.port) >> 46;
  }
  void note_bound(Endpoint e) noexcept {
    const std::uint64_t h = filter_hash(e);
    bound_filter_[h >> 6] |= std::uint64_t{1} << (h & 63);
  }
  bool maybe_bound(Endpoint e) const noexcept {
    const std::uint64_t h = filter_hash(e);
    return (bound_filter_[h >> 6] >> (h & 63)) & 1;
  }

  DatagramBatch* acquire_group();
  void schedule_group(DatagramBatch* b);
  void deliver_group(DatagramBatch* b);
  void release_group(DatagramBatch* b);

  EventLoop& loop_;
  BufferPool pool_;
  util::Rng rng_;
  std::uint64_t seed_;
  LatencyModel latency_{};
  double loss_rate_ = 0.0;
  std::unique_ptr<StreamNet> streams_;
  std::unordered_map<Endpoint, Binding, EndpointHash> handlers_;
  std::array<std::uint64_t, kFilterWords> bound_filter_{};
  std::vector<TapEntry> taps_;
  std::size_t group_cap_ = 0;  // 0 = unbounded
  // Grouped-delivery records recycle through a free list: the vectors keep
  // their capacity, so the steady-state batch path never allocates.
  std::vector<std::unique_ptr<DatagramBatch>> group_store_;
  std::vector<DatagramBatch*> group_free_;
  obs::Metrics* metrics_ = nullptr;
  obs::HistogramHandle delivery_batch_h_;
  std::uint64_t sent_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_loss_ = 0;
  std::uint64_t dropped_unbound_ = 0;
  std::uint64_t batch_fallback_singles_ = 0;
};

}  // namespace orp::net
