#include "obs/export.h"

#include <cinttypes>
#include <cstdio>

namespace orp::obs {

namespace {

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_ipv4(std::string& out, std::uint32_t addr) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (addr >> 24) & 0xff,
                (addr >> 16) & 0xff, (addr >> 8) & 0xff, addr & 0xff);
  out += buf;
}

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "?";
}

bool skip(const MetricDef& d, bool invariant_only) {
  return invariant_only && d.invariance != Invariance::kThreadInvariant;
}

}  // namespace

std::string to_prometheus(const Metrics& m, bool invariant_only) {
  std::string out;
  if (!m.enabled()) return out;
  const Schema& s = *m.schema();
  const auto values = m.raw();
  for (const MetricDef& d : s.defs()) {
    if (skip(d, invariant_only)) continue;
    out += "# HELP " + d.name + " " + d.help + "\n";
    out += "# TYPE " + d.name + " " + kind_name(d.kind) + "\n";
    if (d.kind != MetricKind::kHistogram) {
      out += d.name + " ";
      append_u64(out, values[d.first_slot]);
      out += "\n";
      continue;
    }
    const auto edges = s.edges(d);
    std::uint64_t cumulative = 0;
    for (std::uint32_t i = 0; i < d.edge_count; ++i) {
      cumulative += values[d.first_slot + i];
      out += d.name + "_bucket{le=\"";
      append_u64(out, edges[i]);
      out += "\"} ";
      append_u64(out, cumulative);
      out += "\n";
    }
    cumulative += values[d.first_slot + d.edge_count];
    out += d.name + "_bucket{le=\"+Inf\"} ";
    append_u64(out, cumulative);
    out += "\n" + d.name + "_sum ";
    append_u64(out, values[d.first_slot + d.edge_count + 1]);
    out += "\n" + d.name + "_count ";
    append_u64(out, cumulative);
    out += "\n";
  }
  return out;
}

std::string to_jsonl(const Metrics& m, bool invariant_only) {
  std::string out;
  if (!m.enabled()) return out;
  const Schema& s = *m.schema();
  const auto values = m.raw();
  for (const MetricDef& d : s.defs()) {
    if (skip(d, invariant_only)) continue;
    out += "{\"name\":\"" + d.name + "\",\"kind\":\"" + kind_name(d.kind) +
           "\"";
    if (d.kind != MetricKind::kHistogram) {
      out += ",\"value\":";
      append_u64(out, values[d.first_slot]);
    } else {
      const auto edges = s.edges(d);
      out += ",\"buckets\":[";
      for (std::uint32_t i = 0; i <= d.edge_count; ++i) {
        if (i > 0) out += ",";
        out += "{\"le\":";
        if (i < d.edge_count)
          append_u64(out, edges[i]);
        else
          out += "\"+Inf\"";
        out += ",\"n\":";
        append_u64(out, values[d.first_slot + i]);
        out += "}";
      }
      out += "],\"sum\":";
      append_u64(out, values[d.first_slot + d.edge_count + 1]);
    }
    out += "}\n";
  }
  return out;
}

std::string traces_to_jsonl(const FlowTracer& t) {
  std::string out;
  for (const TraceRecord& r : t.records()) {
    char head[64];
    std::snprintf(head, sizeof(head), "{\"flow\":\"%016" PRIx64 "\"", r.flow);
    out += head;
    if (r.perm_index != TraceRecord::kNoIndex) {
      out += ",\"perm_index\":";
      append_u64(out, r.perm_index);
    }
    out += ",\"point\":\"";
    out += span_point_name(r.point);
    out += "\",\"t_ns\":";
    char t_buf[24];
    std::snprintf(t_buf, sizeof(t_buf), "%" PRId64, r.time_ns);
    out += t_buf;
    out += ",\"peer\":\"";
    append_ipv4(out, r.peer);
    out += "\"}\n";
  }
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool wrote = std::fwrite(content.data(), 1, content.size(), f) ==
                     content.size();
  const bool closed = std::fclose(f) == 0;
  return wrote && closed;
}

}  // namespace orp::obs
