// Snapshot exporters for the observability subsystem.
//
// Two formats, both text, both deterministic (metrics render in schema
// registration order; traces render in canonical sort order):
//
//   * Prometheus exposition text — what a standing observatory scrapes.
//   * JSON lines — one object per metric / span record, for offline tooling.
//
// `invariant_only` filters to metrics tagged kThreadInvariant, the subset
// whose merged snapshot is byte-identical for every shard count — the form
// the determinism tests compare, mirroring PipelineSharding's rendered-table
// comparison.
#pragma once

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace orp::obs {

std::string to_prometheus(const Metrics& m, bool invariant_only = false);
std::string to_jsonl(const Metrics& m, bool invariant_only = false);
std::string traces_to_jsonl(const FlowTracer& t);

/// Write `content` to `path`; returns false on I/O failure.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace orp::obs
