#include "obs/metrics.h"

namespace orp::obs {

CounterHandle Schema::counter(std::string_view name, std::string_view help,
                              Invariance inv) {
  MetricDef d;
  d.kind = MetricKind::kCounter;
  d.merge = MergeOp::kSum;
  d.invariance = inv;
  d.name = std::string(name);
  d.help = std::string(help);
  d.first_slot = slots_;
  d.slot_count = 1;
  defs_.push_back(std::move(d));
  return CounterHandle{slots_++};
}

GaugeHandle Schema::gauge(std::string_view name, std::string_view help,
                          MergeOp merge, Invariance inv) {
  MetricDef d;
  d.kind = MetricKind::kGauge;
  d.merge = merge;
  d.invariance = inv;
  d.name = std::string(name);
  d.help = std::string(help);
  d.first_slot = slots_;
  d.slot_count = 1;
  defs_.push_back(std::move(d));
  return GaugeHandle{slots_++};
}

HistogramHandle Schema::histogram(std::string_view name, std::string_view help,
                                  std::span<const std::uint64_t> edges,
                                  Invariance inv) {
  MetricDef d;
  d.kind = MetricKind::kHistogram;
  d.merge = MergeOp::kSum;
  d.invariance = inv;
  d.name = std::string(name);
  d.help = std::string(help);
  d.first_slot = slots_;
  d.edge_offset = static_cast<std::uint32_t>(edges_.size());
  d.edge_count = static_cast<std::uint32_t>(edges.size());
  // One count slot per bucket (edges + overflow) plus the value-sum slot.
  d.slot_count = d.edge_count + 2;
  for (std::size_t i = 0; i < edges.size(); ++i) {
    assert(i == 0 || edges[i] > edges[i - 1]);
    edges_.push_back(edges[i]);
  }
  defs_.push_back(d);
  const HistogramHandle h{slots_, d.edge_offset, d.edge_count};
  slots_ += d.slot_count;
  return h;
}

Metrics& Metrics::operator+=(const Metrics& o) {
  if (!o.enabled()) return *this;
  if (!enabled()) {
    *this = o;
    return *this;
  }
  assert(schema_ == o.schema_ && "merge requires one shared schema");
  for (const MetricDef& d : schema_->defs()) {
    for (std::uint32_t s = d.first_slot; s < d.first_slot + d.slot_count;
         ++s) {
      switch (d.kind == MetricKind::kGauge ? d.merge : MergeOp::kSum) {
        case MergeOp::kSum:
          values_[s] += o.values_[s];
          break;
        case MergeOp::kMax:
          if (o.values_[s] > values_[s]) values_[s] = o.values_[s];
          break;
        case MergeOp::kMin:
          if (o.values_[s] < values_[s]) values_[s] = o.values_[s];
          break;
      }
    }
  }
  return *this;
}

const Builtin& builtin() {
  static const Builtin instance = [] {
    Builtin b;
    Schema& s = b.schema;
    using I = Invariance;

    // Queue-delay buckets in microseconds: immediate dispatches (0), the
    // latency-model range (20–50 ms), pacing gaps, and the reap/timeout
    // band (10–30 s) each land in distinct buckets.
    static constexpr std::uint64_t kQueueUs[] = {
        0,         1,          10,          100,         1'000,
        10'000,    100'000,    1'000'000,   10'000'000,  100'000'000};

    b.loop_events_run =
        s.counter("orp_loop_events_run",
                  "events executed by the shard event loop",
                  I::kThreadVariant);
    b.loop_queue_peak = s.gauge("orp_loop_queue_peak",
                                "peak pending events in the shard loop",
                                MergeOp::kMax, I::kThreadVariant);
    b.loop_time_in_queue_us = s.histogram(
        "orp_loop_time_in_queue_us",
        "microseconds between scheduling an event and running it", kQueueUs,
        I::kThreadVariant);

    // Batch-size buckets shared by the loop's same-deadline runs and the
    // network's grouped deliveries: powers of two up to the scanner's
    // 64-probe send batches, with headroom for unbounded caps. Batch
    // *structure* depends on how the campaign was sharded, so both are
    // thread-variant (the per-event totals they decompose stay invariant).
    static constexpr std::uint64_t kBatchSizes[] = {1, 2, 4, 8, 16, 32, 64,
                                                    128, 256};
    b.loop_batch_size = s.histogram(
        "orp_loop_batch_size",
        "same-deadline events drained per batched dispatch", kBatchSizes,
        I::kThreadVariant);

    b.net_sent = s.counter("orp_net_sent",
                           "datagrams accepted into the simulated network",
                           I::kThreadVariant);
    b.net_delivered = s.counter("orp_net_delivered",
                                "datagrams delivered to a bound endpoint",
                                I::kThreadVariant);
    b.net_dropped_loss =
        s.counter("orp_net_dropped_loss",
                  "datagrams dropped by the injected loss model",
                  I::kThreadVariant);
    b.net_dropped_unbound =
        s.counter("orp_net_dropped_unbound",
                  "datagrams to unbound endpoints (non-resolver targets)",
                  I::kThreadVariant);
    b.net_delivery_batch_size = s.histogram(
        "orp_net_delivery_batch_size",
        "datagrams per grouped DatagramBatch delivery", kBatchSizes,
        I::kThreadVariant);
    b.net_batch_fallback_singles = s.counter(
        "orp_net_batch_fallback_singles",
        "batched datagrams delivered via the single-packet fallback",
        I::kThreadVariant);
    b.pool_slabs = s.gauge("orp_pool_slabs",
                           "payload slabs created (in-flight high-water mark)",
                           MergeOp::kSum, I::kThreadVariant);
    b.pool_slabs_free =
        s.gauge("orp_pool_slabs_free", "payload slabs on the free list",
                MergeOp::kSum, I::kThreadVariant);
    b.pool_recycled =
        s.counter("orp_pool_recycled",
                  "payload slabs returned to a pool free list",
                  I::kThreadVariant);

    b.capture_packets =
        s.counter("orp_capture_packets",
                  "packets observed at the prober capture vantage");
    b.capture_retained = s.counter("orp_capture_retained",
                                   "packets retained with payload (R2 pcap)");
    b.capture_arena_bytes = s.counter(
        "orp_capture_arena_bytes", "bytes in the retained-payload arena");

    b.scan_q1_sent = s.counter("orp_scan_q1_sent",
                               "probes sent (Table II Q1)");
    b.scan_r2_received =
        s.counter("orp_scan_r2_received", "responses received (Table II R2)");
    b.scan_r2_matched =
        s.counter("orp_scan_r2_matched", "responses grouped to a probe");
    b.scan_r2_empty_question = s.counter(
        "orp_scan_r2_empty_question", "responses with no question section");
    b.scan_r2_unmatched =
        s.counter("orp_scan_r2_unmatched", "responses matching no probe");
    b.scan_timeouts_reaped =
        s.counter("orp_scan_timeouts_reaped", "probes reaped unanswered");
    b.scan_skipped_reserved = s.counter(
        "orp_scan_skipped_reserved", "addresses skipped by the exclusion list");
    b.scan_skipped_overflow = s.counter(
        "orp_scan_skipped_overflow", "permutation values above 2^32");
    b.scan_outstanding_peak =
        s.gauge("orp_scan_outstanding_peak",
                "peak probes awaiting response in one shard", MergeOp::kMax,
                I::kThreadVariant);
    b.scan_template_stamped =
        s.counter("orp_scan_template_stamped",
                  "probes stamped from the pre-encoded wire template");
    b.scan_template_fallback =
        s.counter("orp_scan_template_fallback",
                  "probes built through the full encoder");
    b.tcp_tc_seen = s.counter("orp_tcp_tc_seen",
                              "matched UDP answers carrying TC=1");
    b.tcp_retries = s.counter("orp_tcp_retries",
                              "TCP retry connections opened after TC=1");
    b.tcp_answers =
        s.counter("orp_tcp_answers", "answers received over a TCP retry");
    b.tcp_failures =
        s.counter("orp_tcp_failures",
                  "TCP retries that timed out, were refused, or reset");
    b.tcp_duplicate_r2 =
        s.counter("orp_tcp_duplicate_r2",
                  "duplicate UDP answers racing a pending TCP retry");
    b.rate_tokens_granted =
        s.counter("orp_rate_tokens_granted",
                  "send tokens granted by the pacing bucket",
                  I::kThreadVariant);
    b.rate_deferred =
        s.counter("orp_rate_deferred",
                  "batch sends deferred until tokens refill",
                  I::kThreadVariant);

    b.resolver_queries = s.counter("orp_resolver_queries",
                                   "queries received by planted resolvers");
    b.resolver_responses = s.counter("orp_resolver_responses",
                                     "responses sent by planted resolvers");
    b.resolver_recursions =
        s.counter("orp_resolver_recursions", "genuine recursive resolutions");
    b.resolver_forwarded =
        s.counter("orp_resolver_forwarded", "queries forwarded upstream");
    b.resolver_truncated =
        s.counter("orp_resolver_truncated",
                  "responses cut to the client's UDP budget");
    b.resolver_rrl_dropped = s.counter(
        "orp_resolver_rrl_dropped", "responses suppressed by RRL");
    b.resolver_rrl_slipped = s.counter(
        "orp_resolver_rrl_slipped", "RRL slip responses (minimal TC=1)");
    b.resolver_cache_bypass = s.counter(
        "orp_resolver_cache_bypass",
        "resolutions that bypassed the final-answer cache (unique probe "
        "names confirming cache-free measurements)");
    b.resolver_upstream_queries =
        s.counter("orp_resolver_upstream_queries",
                  "upstream queries issued by resolver engines",
                  I::kThreadVariant);
    b.resolver_template_stamped =
        s.counter("orp_resolver_template_stamped",
                  "resolver responses stamped from a shared wire template");
    b.resolver_template_fallback =
        s.counter("orp_resolver_template_fallback",
                  "resolver queries through the full decode/encode path");

    b.auth_q2_received =
        s.counter("orp_auth_q2_received", "queries at the auth vantage (Q2)");
    b.auth_r1_sent =
        s.counter("orp_auth_r1_sent", "responses from the auth vantage (R1)");
    b.auth_answered = s.counter("orp_auth_answered",
                                "auth responses with a positive answer");
    b.auth_nxdomain = s.counter("orp_auth_nxdomain", "auth NXDomain responses");
    b.auth_refused = s.counter("orp_auth_refused",
                               "auth REFUSED/SERVFAIL responses");
    b.auth_formerr = s.counter("orp_auth_formerr", "undecodable auth queries");
    b.auth_truncated =
        s.counter("orp_auth_truncated", "auth responses truncated (TC=1)");
    b.auth_edns_queries =
        s.counter("orp_auth_edns_queries", "auth queries carrying EDNS OPT");
    b.auth_dnssec_do_queries = s.counter(
        "orp_auth_dnssec_do_queries", "auth queries with the DO bit set");
    b.auth_cluster_loads =
        s.counter("orp_auth_cluster_loads",
                  "zone cluster loads (counts per shard instance)",
                  I::kThreadVariant);
    // Layout-invariant even with tracing on: marked flows stay on the
    // stamped fast path (their span points are recorded around the stamp),
    // so which queries stamp depends only on the wire shape and the reload
    // windows, not on the shard layout's marked-qname set.
    b.auth_template_stamped = s.counter(
        "orp_auth_template_stamped",
        "auth responses stamped from a wire template");
    b.auth_template_fallback = s.counter(
        "orp_auth_template_fallback",
        "auth queries through the full decode/encode path");

    // The *set of sampled permutation indices* is shard-count-invariant (the
    // sampler keys on the global index — pinned by ObsPipeline), but these
    // totals are not: flow keys hash per-shard qnames, so the distinct-flow
    // count and the reuse-driven extra records depend on the shard layout.
    b.trace_flows_sampled =
        s.counter("orp_trace_flows_sampled", "flows selected by the sampler",
                  I::kThreadVariant);
    b.trace_records =
        s.counter("orp_trace_records", "span records appended to the tracer",
                  I::kThreadVariant);

    // Streaming analysis. The classification totals are per-R2 properties
    // (invariant across shard layouts); exemplar churn and the accumulator
    // footprint depend on arrival order and shard count.
    b.analysis_r2_classified = s.counter(
        "orp_analysis_r2_classified", "R2 responses classified at capture");
    b.analysis_r2_incorrect =
        s.counter("orp_analysis_r2_incorrect",
                  "questioned R2s judged incorrect (Table III)");
    b.analysis_r2_malicious = s.counter(
        "orp_analysis_r2_malicious", "incorrect answers in a threat category");
    b.analysis_exemplar_updates =
        s.counter("orp_analysis_exemplar_updates",
                  "canonical-exemplar replacements (arrival-order dependent)",
                  I::kThreadVariant);
    b.analysis_table_bytes =
        s.gauge("orp_analysis_table_bytes",
                "approximate live bytes in a shard's partial tables",
                MergeOp::kMax, I::kThreadVariant);
    return b;
  }();
  return instance;
}

}  // namespace orp::obs
