// orp::obs — zero-allocation runtime metrics for the sharded pipeline.
//
// The paper's closing argument (§V) is that the open-resolver ecosystem needs
// "systematic and constant follow-up", i.e. a standing observatory rather
// than one-off scans — and an observatory needs runtime telemetry, not just
// end-of-run tables. This registry is the measurement side of that: every
// subsystem of the campaign (event loop, network, prober, resolvers, auth
// server) records into per-shard metric instances that merge exactly like
// ScanStats does.
//
// Three properties are load-bearing:
//
//   * Zero-allocation steady state. Metrics are registered up front into a
//     Schema; a handle is an index into a flat pre-sized slot array, so the
//     record path is an array increment (plus a short edge scan for
//     histograms). Nothing on the increment path can touch the allocator —
//     test_alloc_budget pins the instrumented packet path at 0 allocations.
//
//   * Per-shard, lock-free by construction. Each shard owns a private
//     Metrics instance (same shared immutable Schema), mirroring how shards
//     own their EventLoop/Network. No atomics, no contention.
//
//   * Deterministic merge. operator+= folds another shard's values with the
//     per-metric merge op (counters and histogram slots sum; gauges take
//     max/min/sum as registered), so the merged snapshot is identical for
//     any shard landing order — the same discipline as ScanStats/AuthStats.
//
// Metrics whose merged value is also identical for every *shard count* are
// tagged kThreadInvariant at registration (scan/auth/capture counters — the
// same set PipelineSharding pins); per-shard-structure values (queue peaks,
// pool occupancy, replica-dependent resolver engine traffic) are tagged
// kThreadVariant and excluded from cross-thread-count byte comparisons.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace orp::obs {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// How two shards' values of one gauge fold together (counters and
/// histograms always sum).
enum class MergeOp : std::uint8_t { kSum, kMax, kMin };

/// Whether the merged value is byte-identical for every shard count of the
/// same campaign (threads 1/2/4/... — the PipelineSharding discipline).
enum class Invariance : std::uint8_t { kThreadInvariant, kThreadVariant };

struct CounterHandle {
  std::uint32_t slot = 0;
};
struct GaugeHandle {
  std::uint32_t slot = 0;
};
struct HistogramHandle {
  std::uint32_t first_slot = 0;   // bucket counts, then one value-sum slot
  std::uint32_t edge_offset = 0;  // into Schema's flat edge array
  std::uint32_t edge_count = 0;   // buckets = edge_count + 1 (last = +Inf)
};

/// One registered metric, as the exporters see it.
struct MetricDef {
  MetricKind kind = MetricKind::kCounter;
  MergeOp merge = MergeOp::kSum;
  Invariance invariance = Invariance::kThreadInvariant;
  std::string name;  // prometheus-style, e.g. "orp_scan_q1_sent"
  std::string help;
  std::uint32_t first_slot = 0;
  std::uint32_t slot_count = 1;
  std::uint32_t edge_offset = 0;  // histograms only
  std::uint32_t edge_count = 0;
};

/// The immutable registry every shard's Metrics instance is laid out by.
/// Register everything up front (before any Metrics is constructed), then
/// treat the schema as frozen — instances index into it by slot.
class Schema {
 public:
  CounterHandle counter(std::string_view name, std::string_view help,
                        Invariance inv = Invariance::kThreadInvariant);
  GaugeHandle gauge(std::string_view name, std::string_view help,
                    MergeOp merge = MergeOp::kMax,
                    Invariance inv = Invariance::kThreadVariant);
  /// `edges` are inclusive upper bounds (prometheus `le`), strictly
  /// increasing; one +Inf overflow bucket is appended implicitly.
  HistogramHandle histogram(std::string_view name, std::string_view help,
                            std::span<const std::uint64_t> edges,
                            Invariance inv = Invariance::kThreadVariant);

  std::size_t slot_count() const noexcept { return slots_; }
  const std::vector<MetricDef>& defs() const noexcept { return defs_; }
  const std::uint64_t* edge_data() const noexcept { return edges_.data(); }
  std::span<const std::uint64_t> edges(const MetricDef& d) const noexcept {
    return {edges_.data() + d.edge_offset, d.edge_count};
  }

 private:
  std::vector<MetricDef> defs_;
  std::vector<std::uint64_t> edges_;  // all histogram edges, concatenated
  std::uint32_t slots_ = 0;
};

/// One shard's metric values: a flat slot array laid out by a Schema. The
/// default-constructed instance is inert (no schema, no slots) so disabled
/// runs can carry one by value at zero cost.
class Metrics {
 public:
  Metrics() noexcept = default;
  explicit Metrics(const Schema& schema)
      : schema_(&schema), values_(schema.slot_count(), 0) {}

  bool enabled() const noexcept { return schema_ != nullptr; }
  const Schema* schema() const noexcept { return schema_; }

  void add(CounterHandle h, std::uint64_t n = 1) noexcept {
    values_[h.slot] += n;
  }
  void set(GaugeHandle h, std::uint64_t v) noexcept { values_[h.slot] = v; }
  void set_max(GaugeHandle h, std::uint64_t v) noexcept {
    if (v > values_[h.slot]) values_[h.slot] = v;
  }

  /// Record one observation. Bucket search is a forward scan over the edge
  /// array (histograms here have ~10 buckets; a branchy binary search loses
  /// at that size), then two slot increments. No allocation, ever.
  void observe(HistogramHandle h, std::uint64_t v) noexcept {
    const std::uint64_t* e = schema_->edge_data() + h.edge_offset;
    std::uint32_t b = h.edge_count;  // +Inf overflow bucket
    for (std::uint32_t i = 0; i < h.edge_count; ++i) {
      if (v <= e[i]) {
        b = i;
        break;
      }
    }
    ++values_[h.first_slot + b];
    values_[h.first_slot + h.edge_count + 1] += v;  // value-sum slot
  }

  std::uint64_t counter(CounterHandle h) const noexcept {
    return values_[h.slot];
  }
  std::uint64_t gauge(GaugeHandle h) const noexcept { return values_[h.slot]; }
  std::uint64_t bucket(HistogramHandle h, std::uint32_t i) const noexcept {
    return values_[h.first_slot + i];
  }
  std::uint64_t histogram_sum(HistogramHandle h) const noexcept {
    return values_[h.first_slot + h.edge_count + 1];
  }
  std::uint64_t histogram_count(HistogramHandle h) const noexcept {
    std::uint64_t n = 0;
    for (std::uint32_t i = 0; i <= h.edge_count; ++i)
      n += values_[h.first_slot + i];
    return n;
  }

  std::span<const std::uint64_t> raw() const noexcept { return values_; }

  /// Fold another shard's values into this one (deterministic: the result
  /// depends only on the multiset of operands, per the merge-op table). A
  /// default-constructed (disabled) operand is a no-op; merging into a
  /// disabled instance adopts the operand wholesale.
  Metrics& operator+=(const Metrics& o);

 private:
  const Schema* schema_ = nullptr;
  std::vector<std::uint64_t> values_;
};

/// The pipeline's pre-registered metric set: one shared immutable schema plus
/// the handles every instrumented subsystem records through. Built once on
/// first use (before shards spawn — SimulatedInternet construction touches
/// it), read-only afterwards.
struct Builtin {
  Schema schema;

  // net::EventLoop
  CounterHandle loop_events_run;
  GaugeHandle loop_queue_peak;
  HistogramHandle loop_time_in_queue_us;
  /// Same-deadline run length per batched dispatch (events per fire_batch).
  HistogramHandle loop_batch_size;

  // net::Network + net::BufferPool
  CounterHandle net_sent;
  CounterHandle net_delivered;
  CounterHandle net_dropped_loss;
  CounterHandle net_dropped_unbound;
  /// Datagrams per grouped DatagramBatch delivery.
  HistogramHandle net_delivery_batch_size;
  /// Datagrams delivered through the single-packet fallback because the
  /// bound endpoint registered no batch entry point.
  CounterHandle net_batch_fallback_singles;
  GaugeHandle pool_slabs;
  GaugeHandle pool_slabs_free;
  CounterHandle pool_recycled;

  // net::CaptureStore (prober vantage)
  CounterHandle capture_packets;
  CounterHandle capture_retained;
  CounterHandle capture_arena_bytes;

  // prober::Scanner + prober::RateLimiter
  CounterHandle scan_q1_sent;
  CounterHandle scan_r2_received;
  CounterHandle scan_r2_matched;
  CounterHandle scan_r2_empty_question;
  CounterHandle scan_r2_unmatched;
  CounterHandle scan_timeouts_reaped;
  CounterHandle scan_skipped_reserved;
  CounterHandle scan_skipped_overflow;
  GaugeHandle scan_outstanding_peak;
  CounterHandle scan_template_stamped;
  CounterHandle scan_template_fallback;
  /// DoTCP fallback (prober::Scanner with tcp_fallback on; all zero
  /// otherwise). Per-flow properties, so thread-invariant at loss=0 like
  /// the scan counters above.
  CounterHandle tcp_tc_seen;
  CounterHandle tcp_retries;
  CounterHandle tcp_answers;
  CounterHandle tcp_failures;
  CounterHandle tcp_duplicate_r2;
  CounterHandle rate_tokens_granted;
  CounterHandle rate_deferred;

  // resolver hosts (summed over planted hosts + upstream replicas)
  CounterHandle resolver_queries;
  CounterHandle resolver_responses;
  CounterHandle resolver_recursions;
  CounterHandle resolver_forwarded;
  CounterHandle resolver_truncated;
  CounterHandle resolver_rrl_dropped;
  CounterHandle resolver_rrl_slipped;
  CounterHandle resolver_cache_bypass;
  CounterHandle resolver_upstream_queries;
  CounterHandle resolver_template_stamped;
  CounterHandle resolver_template_fallback;

  // authns::AuthServer (Q2/R1 vantage)
  CounterHandle auth_q2_received;
  CounterHandle auth_r1_sent;
  CounterHandle auth_answered;
  CounterHandle auth_nxdomain;
  CounterHandle auth_refused;
  CounterHandle auth_formerr;
  CounterHandle auth_truncated;
  CounterHandle auth_edns_queries;
  CounterHandle auth_dnssec_do_queries;
  CounterHandle auth_cluster_loads;
  CounterHandle auth_template_stamped;
  CounterHandle auth_template_fallback;

  // obs::FlowTracer
  CounterHandle trace_flows_sampled;
  CounterHandle trace_records;

  // analysis::StreamingAnalyzer (capture-time classification)
  CounterHandle analysis_r2_classified;
  CounterHandle analysis_r2_incorrect;
  CounterHandle analysis_r2_malicious;
  CounterHandle analysis_exemplar_updates;
  GaugeHandle analysis_table_bytes;
};

const Builtin& builtin();

}  // namespace orp::obs
