// The per-campaign observability surface: configuration plus the per-shard
// instrument bundle the pipeline threads through the stack.
#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace orp::obs {

struct ObsConfig {
  /// Record metrics (per-shard, merged deterministically into the outcome).
  bool metrics = false;
  /// Trace one flow in N by global permutation index; 0 disables tracing.
  std::uint64_t trace_sample_every = 0;
  /// Print a live progress line to stderr every interval of *real* seconds
  /// while shards run; 0 disables the reporter.
  double progress_interval_s = 0;

  bool any() const noexcept {
    return metrics || trace_sample_every > 0 || progress_interval_s > 0;
  }
};

/// Everything one shard records into. Owned by the shard (single-threaded,
/// lock-free); moved into the ShardResult and merged by the pipeline.
struct ShardObs {
  Metrics metrics;
  FlowTracer tracer;
  ShardBeacon* beacon = nullptr;  // owned by the campaign, optional

  explicit ShardObs(const ObsConfig& cfg)
      : metrics(cfg.metrics ? Metrics(builtin().schema) : Metrics()),
        tracer(cfg.trace_sample_every) {}
};

}  // namespace orp::obs
