#include "obs/progress.h"

#include <cinttypes>
#include <cstdio>

namespace orp::obs {

std::string CampaignProgress::render(const Snapshot& s,
                                     std::uint64_t probes_expected,
                                     double elapsed_seconds) {
  const double pct =
      probes_expected == 0
          ? 0.0
          : 100.0 * static_cast<double>(s.probes_sent) /
                static_cast<double>(probes_expected);
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "[obs] t=%6.1fs scan %5.1f%% | %" PRIu64 " probes %" PRIu64
                " responses | %.1f Mevents | %u/%u shards done",
                elapsed_seconds, pct, s.probes_sent, s.responses,
                static_cast<double>(s.events) / 1e6, s.shards_done, s.shards);
  return std::string(buf);
}

}  // namespace orp::obs
