// Live campaign progress across shard threads.
//
// A sharded campaign runs S isolated event loops on S threads; between
// "start" and "final tables" the coordinator used to be blind. Each shard
// publishes coarse progress into its own cache-line-aligned beacon with
// relaxed atomic stores (one store per probe batch / every 256 loop events —
// nanoseconds, no contention, and crucially *no* effect on the event stream
// or RNG, so enabling progress cannot perturb determinism). A reporter
// thread in core::pipeline snapshots the beacons on a real-time interval and
// renders a one-line status to stderr.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

namespace orp::obs {

/// One shard's progress publication point. Aligned to its own cache line so
/// S publishing shards never false-share.
struct alignas(64) ShardBeacon {
  std::atomic<std::uint64_t> probes_sent{0};
  std::atomic<std::uint64_t> responses{0};
  std::atomic<std::uint64_t> events{0};
  std::atomic<std::uint32_t> done{0};
};

class CampaignProgress {
 public:
  explicit CampaignProgress(std::uint32_t shards)
      : shards_(shards), beacons_(new ShardBeacon[shards]) {}

  std::uint32_t shard_count() const noexcept { return shards_; }
  ShardBeacon& shard(std::uint32_t i) noexcept { return beacons_[i]; }

  struct Snapshot {
    std::uint64_t probes_sent = 0;
    std::uint64_t responses = 0;
    std::uint64_t events = 0;
    std::uint32_t shards_done = 0;
    std::uint32_t shards = 0;
  };

  Snapshot snapshot() const noexcept {
    Snapshot s;
    s.shards = shards_;
    for (std::uint32_t i = 0; i < shards_; ++i) {
      s.probes_sent += beacons_[i].probes_sent.load(std::memory_order_relaxed);
      s.responses += beacons_[i].responses.load(std::memory_order_relaxed);
      s.events += beacons_[i].events.load(std::memory_order_relaxed);
      s.shards_done += beacons_[i].done.load(std::memory_order_relaxed);
    }
    return s;
  }

  /// "scan 42.0% | 12,345 probes 678 responses | 9 Mevents | 1/4 shards done"
  static std::string render(const Snapshot& s, std::uint64_t probes_expected,
                            double elapsed_seconds);

 private:
  std::uint32_t shards_;
  std::unique_ptr<ShardBeacon[]> beacons_;
};

}  // namespace orp::obs
