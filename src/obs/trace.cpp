#include "obs/trace.h"

namespace orp::obs {

const char* span_point_name(SpanPoint p) noexcept {
  switch (p) {
    case SpanPoint::kQ1Sent:
      return "Q1";
    case SpanPoint::kQ2Auth:
      return "Q2";
    case SpanPoint::kR1Sent:
      return "R1";
    case SpanPoint::kR2Received:
      return "R2";
    case SpanPoint::kTcpRetry:
      return "T1";
    case SpanPoint::kTcpAnswer:
      return "T2";
  }
  return "?";
}

}  // namespace orp::obs
