// Per-flow span tracing for the measurement path of Fig. 2.
//
// The Transparent Forwarders line of work showed that *per-flow path
// evidence* — which hops a probe actually traversed, and when — is what
// separates resolver classes; aggregate counters cannot. A FlowTracer
// records the four span points of one probe's journey:
//
//   kQ1Sent       probe leaves the scanner
//   kQ2Auth       the query surfaces at our authoritative server
//   kR1Sent       the auth server answers
//   kR2Received   the scanner receives and classifies the response
//
// keyed by the FNV-1a hash of the probe qname's canonical key (the same
// flow key §III-B groups by — the DNS ID field is too narrow at 100k pps).
//
// Tracing every flow of a 3.7B-probe campaign is out of the question, so
// flows are sampled 1-in-N *by global permutation index*: the index is a
// property of the campaign plan, not of the shard layout, so every shard
// count samples exactly the same flows (the sampling analogue of the
// byte-identical-merge discipline). Records live in one append-only arena
// of fixed-size PODs per shard — reserve() once and the steady-state record
// path never allocates; merge() concatenates and sort_canonical() imposes a
// shard-count-independent order.
//
// Subdomain reuse caveat: a qname released by the reaper can be re-acquired
// for a later target, so one flow key may carry several Q1 records (each
// with its own permutation index). The timeline is still well-ordered —
// reuse only happens after the previous probe's response window closed.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "net/sim_time.h"

namespace orp::obs {

/// Flat open-addressed set of 64-bit flow keys. The keys are FNV-1a
/// digests already, so one Fibonacci multiply spreads them over a
/// power-of-two slot array probed linearly — no per-element nodes, no
/// malloc on the insert path once reserve() has sized the array. This is
/// the structure behind begin_flow()/marked(): one sampled campaign does
/// tens of thousands of inserts and a membership probe per packet at every
/// downstream vantage, where unordered_set's node allocation and pointer
/// chasing were the dominant tracer cost.
///
/// Key 0 is the empty-slot sentinel; a real zero key (a 1-in-2^64 FNV
/// digest) is carried in a side flag rather than a slot.
class FlowSet {
 public:
  /// Size the slot array for `n` keys (load factor <= 7/8). Never shrinks.
  void reserve(std::size_t n) { rehash(n); }

  /// Insert `key`; returns true if it was not already present.
  bool insert(std::uint64_t key) {
    if (key == 0) {
      const bool fresh = !has_zero_;
      has_zero_ = true;
      if (fresh) ++size_;
      return fresh;
    }
    if ((size_ + 1) * 8 > slots_.size() * 7) rehash(size_ + 1);
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = slot_of(key);
    while (slots_[i] != 0) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask;
    }
    slots_[i] = key;
    ++size_;
    return true;
  }

  bool contains(std::uint64_t key) const noexcept {
    if (key == 0) return has_zero_;
    if (slots_.empty()) return false;
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = slot_of(key);
    while (slots_[i] != 0) {
      if (slots_[i] == key) return true;
      i = (i + 1) & mask;
    }
    return false;
  }

  std::size_t size() const noexcept { return size_; }

  /// Visit every key (order unspecified — callers needing a canonical
  /// order sort what they build from the visit).
  template <typename F>
  void for_each(F&& f) const {
    if (has_zero_) f(std::uint64_t{0});
    for (const std::uint64_t k : slots_)
      if (k != 0) f(k);
  }

  void clear() noexcept {
    std::fill(slots_.begin(), slots_.end(), 0);
    size_ = 0;
    has_zero_ = false;
  }

 private:
  std::size_t slot_of(std::uint64_t key) const noexcept {
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> shift_);
  }

  /// Grow (never shrink) so `need` keys fit under the 7/8 load bound.
  void rehash(std::size_t need) {
    std::size_t cap = slots_.empty() ? 16 : slots_.size();
    while (cap * 7 < need * 8) cap *= 2;
    if (cap == slots_.size()) return;
    std::vector<std::uint64_t> old = std::move(slots_);
    slots_.assign(cap, 0);
    shift_ = 64 - std::countr_zero(cap);
    const std::size_t mask = cap - 1;
    for (const std::uint64_t k : old) {
      if (k == 0) continue;
      std::size_t i = slot_of(k);
      while (slots_[i] != 0) i = (i + 1) & mask;
      slots_[i] = k;
    }
  }

  std::vector<std::uint64_t> slots_;
  std::size_t size_ = 0;  // distinct keys, including a real zero key
  unsigned shift_ = 64;   // 64 - log2(slots_.size())
  bool has_zero_ = false;
};

enum class SpanPoint : std::uint8_t {
  kQ1Sent = 0,
  kQ2Auth = 1,
  kR1Sent = 2,
  kR2Received = 3,
  /// DoTCP fallback (tcp_fallback campaigns only): the scanner opens a TCP
  /// retry after a TC=1 answer ("T1"), and the answer arrives over the
  /// connection ("T2"). A failed retry records T1 without a T2.
  kTcpRetry = 4,
  kTcpAnswer = 5,
};

const char* span_point_name(SpanPoint p) noexcept;

/// One span record. `perm_index` is known only at Q1 (the scanner owns the
/// permutation walk); kNoIndex elsewhere.
struct TraceRecord {
  static constexpr std::uint64_t kNoIndex = ~std::uint64_t{0};

  std::uint64_t flow = 0;        // fnv1a64 of the canonical qname key
  std::uint64_t perm_index = kNoIndex;
  std::int64_t time_ns = 0;      // simulated time
  std::uint32_t peer = 0;        // IPv4 of the other end of this hop
  SpanPoint point = SpanPoint::kQ1Sent;
};

class FlowTracer {
 public:
  /// Disabled tracer: sample() rejects everything, record() is never called.
  FlowTracer() noexcept = default;
  /// Trace one flow in `sample_every` (1 = every flow).
  explicit FlowTracer(std::uint64_t sample_every)
      : sample_every_(sample_every) {}

  bool enabled() const noexcept { return sample_every_ > 0; }
  std::uint64_t sample_every() const noexcept { return sample_every_; }

  /// Deterministic sampling decision by global permutation index.
  bool sample(std::uint64_t perm_index) const noexcept {
    return sample_every_ > 0 && perm_index % sample_every_ == 0;
  }

  /// Mark a sampled flow and record its Q1 span. Marking is what downstream
  /// vantages (auth server, scanner receive path) key on.
  void begin_flow(std::uint64_t flow, std::uint64_t perm_index, net::SimTime t,
                  std::uint32_t peer) {
    marked_.insert(flow);
    records_.push_back(
        TraceRecord{flow, perm_index, t.as_nanos(), peer, SpanPoint::kQ1Sent});
  }

  /// Allocation-free membership probe — the per-packet fast path at every
  /// downstream vantage is one flat-table probe.
  bool marked(std::uint64_t flow) const noexcept {
    return marked_.contains(flow);
  }

  void record(std::uint64_t flow, SpanPoint p, net::SimTime t,
              std::uint32_t peer) {
    records_.push_back(
        TraceRecord{flow, TraceRecord::kNoIndex, t.as_nanos(), peer, p});
  }

  /// Pre-size the record arena and the sampled-flow set (pin an allocation
  /// budget, as CaptureStore::reserve does).
  void reserve(std::size_t flows, std::size_t records) {
    marked_.reserve(flows);
    records_.reserve(records);
  }

  /// Fold another shard's tracer in: records concatenate, marks union.
  void merge(FlowTracer&& o) {
    if (sample_every_ == 0) sample_every_ = o.sample_every_;
    records_.insert(records_.end(), o.records_.begin(), o.records_.end());
    marked_.reserve(marked_.size() + o.marked_.size());
    o.marked_.for_each([this](std::uint64_t flow) { marked_.insert(flow); });
    o.records_.clear();
    o.marked_.clear();
  }

  /// Shard-count-independent record order: (flow, time, point, peer,
  /// perm_index). Apply after merging, before export.
  void sort_canonical() {
    std::sort(records_.begin(), records_.end(),
              [](const TraceRecord& a, const TraceRecord& b) {
                if (a.flow != b.flow) return a.flow < b.flow;
                if (a.time_ns != b.time_ns) return a.time_ns < b.time_ns;
                if (a.point != b.point) return a.point < b.point;
                if (a.peer != b.peer) return a.peer < b.peer;
                return a.perm_index < b.perm_index;
              });
  }

  std::span<const TraceRecord> records() const noexcept { return records_; }
  std::size_t flow_count() const noexcept { return marked_.size(); }

  void clear() {
    records_.clear();
    marked_.clear();
  }

 private:
  std::uint64_t sample_every_ = 0;
  std::vector<TraceRecord> records_;
  FlowSet marked_;
};

}  // namespace orp::obs
