// The scanner's outstanding-probe table.
//
// Functionally this is an unordered map from packed SubdomainId to send
// time — but its *iteration order* is load-bearing: the reap sweep releases
// timed-out subdomains in iteration order, released ids feed the reuse pool
// LIFO, and reused ids become future probe qnames. Iteration order is
// therefore wire-visible, and the capture digest pins it. The previous
// implementation was std::unordered_map with pooled nodes; this table
// replays that container's exact bucket evolution and node placement —
// same hash values (QnameRenderer::hash == std::hash<string_view> of the
// canonical qname), same bucket counts (libstdc++'s _Prime_rehash_policy,
// used directly), same insert-at-bucket-front list splicing, same rehash
// re-bucketing order — so every iteration order it produces is
// byte-identical to the map it replaces. What changes is the cost model:
//
//   * nodes live in one contiguous 32-byte-slot slab addressed by u32
//     index (vs. 48-byte pool nodes behind an allocator), with the reap
//     sweep's fields (next, sent) in the first half-line;
//   * each node stores its bucket index, making erase O(1) pointer surgery
//     (std::unordered_map re-derives the bucket — a 64-bit division — and
//     walks the bucket chain to find the predecessor);
//   * hash→bucket uses a division-free multiply (Lemire's fastmod),
//     replacing the hashtable's per-operation `hash % prime` divide.
//
// On non-libstdc++ builds the growth schedule falls back to doubling
// through a fixed prime table: still deterministic run-to-run, but not
// bit-compatible with libstdc++ goldens (neither is std::hash there).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>  // _Prime_rehash_policy on libstdc++
#include <vector>

#include "net/sim_time.h"

namespace orp::prober {

/// n % d without the divide: Lemire's 128-bit fastmod, exact for every
/// 64-bit n and every d the bucket table can take. The magic constant is
/// ceil(2^128 / d); n % d = floor(((M * n) mod 2^128) * d / 2^128).
struct FastMod {
  unsigned __int128 magic = 0;
  std::uint64_t d = 1;

  void set(std::uint64_t divisor) noexcept {
    d = divisor;
    magic = ~static_cast<unsigned __int128>(0) / divisor + 1;
  }
  std::uint64_t mod(std::uint64_t n) const noexcept {
    const unsigned __int128 low = magic * n;
    const auto lo = static_cast<std::uint64_t>(low);
    const auto hi = static_cast<std::uint64_t>(low >> 64);
    const unsigned __int128 top =
        static_cast<unsigned __int128>(hi) * d +
        ((static_cast<unsigned __int128>(lo) * d) >> 64);
    return static_cast<std::uint64_t>(top >> 64);
  }
};

/// Hasher contract: a callable with `std::uint64_t operator()(key)` whose
/// values match what the replaced std::unordered_map hashed with (the
/// scanner passes QnameRenderer::hash through a thin functor).
template <typename Hasher>
class OutstandingTable {
 public:
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  explicit OutstandingTable(Hasher hasher) : hasher_(hasher) {
#ifdef __GLIBCXX__
    // Exactly the bucket count std::unordered_map(/*bucket_count=*/0, ...)
    // starts from, from the same policy object.
    bucket_count_ = policy_._M_next_bkt(0);
#else
    bucket_count_ = 1;
#endif
    if (bucket_count_ == 0) bucket_count_ = 1;
    fastmod_.set(bucket_count_);
    bucket_first_.assign(bucket_count_, kNil);
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t bucket_count() const noexcept { return bucket_count_; }

  /// Insert (key, sent); no-op if the key is already present (matching
  /// unordered_map::emplace on a duplicate).
  void emplace(std::uint64_t key, net::SimTime sent) {
    const std::uint64_t h = hasher_(key);
    std::uint32_t b = static_cast<std::uint32_t>(fastmod_.mod(h));
    for (std::uint32_t n = bucket_first_[b];
         n != kNil && nodes_[n].bkt == b; n = nodes_[n].next)
      if (nodes_[n].key == key) return;
    if (need_rehash()) {
      rehash_grow();
      b = static_cast<std::uint32_t>(fastmod_.mod(h));
    }
    const std::uint32_t idx = alloc_node();
    Node& nd = nodes_[idx];
    nd.key = key;
    nd.sent = sent;
    nd.bkt = b;
    link_bucket_front(idx, b);
    ++size_;
  }

  /// Handle of `key`'s node, or kNil.
  std::uint32_t find(std::uint64_t key) const noexcept {
    const std::uint64_t h = hasher_(key);
    const auto b = static_cast<std::uint32_t>(fastmod_.mod(h));
    for (std::uint32_t n = bucket_first_[b];
         n != kNil && nodes_[n].bkt == b; n = nodes_[n].next)
      if (nodes_[n].key == key) return n;
    return kNil;
  }

  /// Iteration in the pinned (bucket-list) order.
  std::uint32_t first() const noexcept { return head_; }
  std::uint32_t next(std::uint32_t i) const noexcept { return nodes_[i].next; }

  /// Hint for sweeps: the list order is hash-random over the slab, so each
  /// step is a dependent load — pulling the node after next while the
  /// current one is processed hides most of that latency.
  void prefetch(std::uint32_t i) const noexcept {
    __builtin_prefetch(&nodes_[i]);
  }

  std::uint64_t key_at(std::uint32_t i) const noexcept { return nodes_[i].key; }
  net::SimTime sent_at(std::uint32_t i) const noexcept {
    return nodes_[i].sent;
  }

  /// Erase the node behind handle `i`; returns the next handle in
  /// iteration order (so the reap sweep is erase-while-iterating, exactly
  /// like `it = map.erase(it)`).
  std::uint32_t erase_at(std::uint32_t i) noexcept {
    Node& nd = nodes_[i];
    const std::uint32_t nx = nd.next;
    const std::uint32_t pv = nd.prev;
    const std::uint32_t b = nd.bkt;
    if (bucket_first_[b] == i)
      bucket_first_[b] = (nx != kNil && nodes_[nx].bkt == b) ? nx : kNil;
    if (pv != kNil)
      nodes_[pv].next = nx;
    else
      head_ = nx;
    if (nx != kNil) nodes_[nx].prev = pv;
    nd.next = free_;
    free_ = i;
    --size_;
    return nx;
  }

 private:
  struct Node {
    std::uint32_t next = kNil;  // with `sent` in the first 16 bytes: the
    std::uint32_t bkt = 0;      // reap sweep touches one half-line per node
    net::SimTime sent;
    std::uint64_t key = 0;
    std::uint32_t prev = kNil;
    std::uint32_t pad_ = 0;
  };
  static_assert(sizeof(Node) == 32);

  std::uint32_t alloc_node() {
    if (free_ != kNil) {
      const std::uint32_t idx = free_;
      free_ = nodes_[idx].next;
      return idx;
    }
    nodes_.emplace_back();
    return static_cast<std::uint32_t>(nodes_.size() - 1);
  }

  /// Splice `idx` in front of bucket `b`'s chain segment — the position
  /// _Hashtable::_M_insert_bucket_begin gives a new node: before the
  /// bucket's current first node, or at the global list head for a bucket
  /// that was empty.
  void link_bucket_front(std::uint32_t idx, std::uint32_t b) noexcept {
    const std::uint32_t at =
        bucket_first_[b] != kNil ? bucket_first_[b] : head_;
    Node& nd = nodes_[idx];
    nd.next = at;
    if (at != kNil) {
      nd.prev = nodes_[at].prev;
      nodes_[at].prev = idx;
    } else {
      nd.prev = tail_if_empty_bucket_append();
    }
    if (nd.prev != kNil)
      nodes_[nd.prev].next = idx;
    else
      head_ = idx;
    bucket_first_[b] = idx;
  }

  /// A new node for an empty bucket goes to the global list *head* (like
  /// _Hashtable), so when `at == kNil` the list must have been empty and
  /// the predecessor is nil. Kept as a function to document the invariant.
  std::uint32_t tail_if_empty_bucket_append() const noexcept { return kNil; }

  bool need_rehash() {
#ifdef __GLIBCXX__
    const auto r = policy_._M_need_rehash(bucket_count_, size_, 1);
    pending_bucket_count_ = r.second;
    return r.first;
#else
    pending_bucket_count_ = next_fallback_bucket_count();
    return size_ + 1 > bucket_count_;
#endif
  }

#ifndef __GLIBCXX__
  std::size_t next_fallback_bucket_count() const {
    static constexpr std::size_t kPrimes[] = {
        13,        29,        59,        127,        257,       541,
        1109,      2357,      5087,      10273,      20753,     42043,
        85229,     172933,    351061,    712697,     1447153,   2938679,
        5967347,   12117689,  24607243,  49969847,   101473717, 206062531,
        418438203, 849749479, 1725587117};
    for (const std::size_t p : kPrimes)
      if (p > bucket_count_ * 2) return p;
    return bucket_count_ * 2 + 1;
  }
#endif

  /// Grow to the policy-chosen bucket count, re-bucketing every node in
  /// iteration order with the same bucket-front splice — the order
  /// _Hashtable::_M_rehash leaves behind.
  void rehash_grow() {
    rehash_scratch_.clear();
    for (std::uint32_t n = head_; n != kNil; n = nodes_[n].next)
      rehash_scratch_.push_back(n);
    bucket_count_ = pending_bucket_count_;
    fastmod_.set(bucket_count_);
    bucket_first_.assign(bucket_count_, kNil);
    head_ = kNil;
    for (const std::uint32_t idx : rehash_scratch_) {
      const std::uint64_t h = hasher_(nodes_[idx].key);
      const auto b = static_cast<std::uint32_t>(fastmod_.mod(h));
      nodes_[idx].bkt = b;
      nodes_[idx].prev = kNil;
      nodes_[idx].next = kNil;
      link_bucket_front(idx, b);
    }
  }

  Hasher hasher_;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> bucket_first_;
  std::vector<std::uint32_t> rehash_scratch_;
  std::uint32_t head_ = kNil;
  std::uint32_t free_ = kNil;
  std::size_t size_ = 0;
  std::size_t bucket_count_ = 1;
  std::size_t pending_bucket_count_ = 0;
  FastMod fastmod_;
#ifdef __GLIBCXX__
  std::__detail::_Prime_rehash_policy policy_;
#endif
};

}  // namespace orp::prober
