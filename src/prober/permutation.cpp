#include "prober/permutation.h"

#include "util/rng.h"

namespace orp::prober {

std::vector<std::uint64_t> factorize(std::uint64_t n) {
  std::vector<std::uint64_t> factors;
  for (std::uint64_t f = 2; f * f <= n; f += (f == 2 ? 1 : 2)) {
    if (n % f == 0) {
      factors.push_back(f);
      while (n % f == 0) n /= f;
    }
  }
  if (n > 1) factors.push_back(n);
  return factors;
}

std::uint64_t modpow(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  __uint128_t result = 1;
  __uint128_t b = base % m;
  while (exp > 0) {
    if (exp & 1) result = (result * b) % m;
    b = (b * b) % m;
    exp >>= 1;
  }
  return static_cast<std::uint64_t>(result);
}

bool is_generator(std::uint64_t g) {
  if (g <= 1 || g >= kPermutationPrime) return false;
  // g is a generator iff g^((p-1)/q) != 1 for every prime factor q of p-1.
  static const std::vector<std::uint64_t> kFactors =
      factorize(kPermutationPrime - 1);
  for (const std::uint64_t q : kFactors) {
    if (modpow(g, (kPermutationPrime - 1) / q, kPermutationPrime) == 1)
      return false;
  }
  return true;
}

PermutationParams derive_params(std::uint64_t seed) {
  util::Rng rng(seed);
  PermutationParams params;
  do {
    params.generator = 2 + rng.bounded(kPermutationPrime - 3);
  } while (!is_generator(params.generator));
  params.start = 1 + rng.bounded(kPermutationPrime - 2);
  return params;
}

CyclicPermutation::CyclicPermutation(std::uint64_t seed) {
  const PermutationParams p = derive_params(seed);
  generator_ = p.generator;
  start_ = p.start;
  state_ = p.start;
}

CyclicPermutation::CyclicPermutation(std::uint64_t generator,
                                     std::uint64_t start)
    : generator_(generator), start_(start), state_(start) {}

std::uint64_t CyclicPermutation::next_raw() {
  const std::uint64_t current = state_;
  state_ = static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(state_) * generator_) % kPermutationPrime);
  ++steps_;
  return current;
}

std::optional<net::IPv4Addr> CyclicPermutation::next_address() {
  while (!cycle_complete()) {
    const std::uint64_t raw = next_raw();
    if (raw < (std::uint64_t{1} << 32))
      return net::IPv4Addr(static_cast<std::uint32_t>(raw));
  }
  return std::nullopt;
}

void CyclicPermutation::seek(std::uint64_t k) {
  state_ = raw_at(k);
  steps_ = k;
}

std::uint64_t CyclicPermutation::raw_at(std::uint64_t k) const {
  const __uint128_t v = static_cast<__uint128_t>(start_) *
                        modpow(generator_, k, kPermutationPrime);
  return static_cast<std::uint64_t>(v % kPermutationPrime);
}

}  // namespace orp::prober
