// ZMap-style address-space permutation (Durumeric et al., USENIX Sec'13).
//
// ZMap visits every IPv4 address exactly once, in an order that looks random
// to the network, without keeping per-address state: it iterates the cyclic
// multiplicative group modulo the prime p = 2^32 + 15. Successive states are
// x_{k+1} = g * x_k mod p for a generator g of the group; states >= 2^32 are
// skipped (there are only 14), and state 0 never occurs. One full cycle of
// p - 1 steps therefore covers 1..2^32-1 exactly once.
//
// A *truncated* iteration (the first N outputs) is a uniform pseudo-random
// sample of the space — which is exactly what our scaled scans are, and what
// a partially-completed ZMap run is in reality.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "net/ipv4.h"

namespace orp::prober {

/// The ZMap modulus: the smallest prime above 2^32.
constexpr std::uint64_t kPermutationPrime = 4294967311ULL;  // 2^32 + 15

/// Prime factorization of p-1, needed to test candidate generators.
std::vector<std::uint64_t> factorize(std::uint64_t n);

/// (base^exp) mod m with 128-bit intermediates.
std::uint64_t modpow(std::uint64_t base, std::uint64_t exp, std::uint64_t m);

/// True iff g generates the full multiplicative group mod kPermutationPrime.
bool is_generator(std::uint64_t g);

/// Deterministically derive a generator and a starting state from a seed,
/// as ZMap derives them from its scan seed.
struct PermutationParams {
  std::uint64_t generator = 0;
  std::uint64_t start = 0;  // x_0 in [1, p-1]
};
PermutationParams derive_params(std::uint64_t seed);

/// Iterator over the permutation. Yields raw group elements; callers skip
/// the >= 2^32 values (next_address() does this for you).
class CyclicPermutation {
 public:
  explicit CyclicPermutation(std::uint64_t seed);
  CyclicPermutation(std::uint64_t generator, std::uint64_t start);

  /// The next raw group element in (0, p). Advances the state.
  std::uint64_t next_raw();

  /// The next state that is a valid 32-bit address (skips the <=15 raw
  /// values >= 2^32). Returns nullopt once the cycle is complete.
  std::optional<net::IPv4Addr> next_address();

  /// Random access: the k-th raw element, x_0 * g^k mod p. O(log k).
  std::uint64_t raw_at(std::uint64_t k) const;

  /// Jump to absolute position `k`: the next call to next_raw() returns
  /// raw_at(k). O(log k). This is how ZMap shards one permutation across
  /// threads with zero coordination — shard i seeks to its slice start
  /// i*N/S and consumes its slice length, covering the same global order.
  void seek(std::uint64_t k);

  std::uint64_t generator() const noexcept { return generator_; }
  std::uint64_t start() const noexcept { return start_; }
  std::uint64_t steps() const noexcept { return steps_; }
  bool cycle_complete() const noexcept { return steps_ >= kPermutationPrime - 1; }

 private:
  std::uint64_t generator_;
  std::uint64_t start_;
  std::uint64_t state_;
  std::uint64_t steps_ = 0;
};

}  // namespace orp::prober
