// The scanner's capture-time response hook.
//
// The streaming analysis stage (analysis/streaming.h) consumes R2s as they
// arrive instead of re-reading a retained payload arena after the scan. The
// prober layer cannot see the analysis layer (analysis depends on prober),
// so the hand-off is this one-method interface: the scanner calls it once
// per received R2 datagram, before any grouping bookkeeping, borrowing the
// payload for the duration of the call only.
#pragma once

#include <span>

#include "net/ipv4.h"
#include "net/sim_time.h"

namespace orp::prober {

class R2Sink {
 public:
  virtual ~R2Sink() = default;

  /// One captured R2. `payload` borrows the delivery buffer — consume it
  /// during the call; do not retain the span.
  virtual void on_r2(net::SimTime time, net::IPv4Addr resolver,
                     std::span<const std::uint8_t> payload) = 0;
};

}  // namespace orp::prober
