// Arena-backed storage for collected R2 responses.
//
// A shard's scanner used to keep one heap vector per response; at paper scale
// that is millions of small allocations held until analysis. R2Store copies
// each payload once into fixed-size chunks and hands out spans. Chunks are
// never reallocated or moved once created, so a stored span stays valid for
// the life of the store (moving the store as a whole is fine — the chunk
// memory does not move with it). Records keep shard-local arrival order;
// analysis iterates the store exactly like the vector it replaced.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/ipv4.h"
#include "net/sim_time.h"

namespace orp::prober {

/// One collected R2, as captured at the prober (raw bytes; the analysis
/// layer re-decodes, because decode *failure* is itself a measured behavior).
/// `payload` borrows from the owning R2Store's arena — or from any
/// caller-owned buffer when a record is built directly in tests.
struct R2Record {
  net::SimTime time;
  net::IPv4Addr resolver;
  std::span<const std::uint8_t> payload;
};

class R2Store {
 public:
  R2Store() = default;
  R2Store(R2Store&&) noexcept = default;
  R2Store& operator=(R2Store&&) noexcept = default;
  R2Store(const R2Store&) = delete;
  R2Store& operator=(const R2Store&) = delete;

  void add(net::SimTime t, net::IPv4Addr resolver,
           std::span<const std::uint8_t> payload) {
    const std::span<std::uint8_t> dst = alloc(payload.size());
    std::copy(payload.begin(), payload.end(), dst.begin());
    records_.push_back(R2Record{t, resolver, dst});
  }

  std::size_t size() const noexcept { return records_.size(); }
  bool empty() const noexcept { return records_.empty(); }
  const R2Record& operator[](std::size_t i) const noexcept {
    return records_[i];
  }
  auto begin() const noexcept { return records_.begin(); }
  auto end() const noexcept { return records_.end(); }

  std::size_t arena_bytes() const noexcept {
    return chunks_.empty() ? 0 : (chunks_.size() - 1) * kChunkBytes + used_;
  }

  /// Pre-size the record list (payload chunks are fixed-size and allocate
  /// on demand; only the record vector benefits from a campaign-level hint).
  void reserve(std::size_t records) { records_.reserve(records); }

  void clear() {
    records_.clear();
    chunks_.clear();
    used_ = 0;
    cap_ = 0;
  }

 private:
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  std::span<std::uint8_t> alloc(std::size_t n) {
    if (used_ + n > cap_) {
      cap_ = n > kChunkBytes ? n : kChunkBytes;
      chunks_.push_back(std::make_unique<std::uint8_t[]>(cap_));
      used_ = 0;
    }
    std::uint8_t* p = chunks_.back().get() + used_;
    used_ += n;
    return {p, n};
  }

  std::vector<std::unique_ptr<std::uint8_t[]>> chunks_;
  std::size_t used_ = 0;
  std::size_t cap_ = 0;
  std::vector<R2Record> records_;
};

}  // namespace orp::prober
