#include "prober/rate_limiter.h"

#include <algorithm>
#include <stdexcept>

namespace orp::prober {

RateLimiter::RateLimiter(double rate_pps, std::uint64_t burst)
    : rate_pps_(rate_pps),
      capacity_(static_cast<double>(burst)),
      tokens_(static_cast<double>(burst)) {
  if (rate_pps <= 0) throw std::invalid_argument("rate must be positive");
}

void RateLimiter::refill(net::SimTime now) {
  if (now <= last_refill_) return;
  const double elapsed = (now - last_refill_).as_seconds();
  tokens_ = std::min(capacity_, tokens_ + elapsed * rate_pps_);
  last_refill_ = now;
}

bool RateLimiter::try_acquire(std::uint64_t n, net::SimTime now,
                              net::SimTime& next_ready) {
  refill(now);
  const double need = static_cast<double>(n);
  if (tokens_ + 1e-9 >= need) {
    tokens_ -= need;
    granted_ += n;
    return true;
  }
  ++deferred_;
  const double deficit = need - tokens_;
  // Clamp the wait to a representable step: a sub-nanosecond deficit would
  // otherwise round to "ready now" and livelock the caller's retry loop.
  const net::SimTime wait = std::max(net::SimTime::micros(1),
                                     net::SimTime::seconds(deficit / rate_pps_));
  next_ready = now + wait;
  return false;
}

}  // namespace orp::prober
