// Send pacing for the scanner.
//
// The paper probed at 100k packets/second ("to cope with our limited
// bandwidth, I/O constraints, etc."), i.e. well below ZMap's line rate. We
// model pacing as a token bucket evaluated in simulated time: the scanner
// asks when it may send its next batch and schedules itself accordingly.
#pragma once

#include <cstdint>

#include "net/sim_time.h"

namespace orp::prober {

class RateLimiter {
 public:
  /// `rate_pps` packets per (simulated) second; `burst` is the bucket depth.
  RateLimiter(double rate_pps, std::uint64_t burst = 256);

  /// Try to take `n` tokens at time `now`. Returns true and consumes them if
  /// available; otherwise returns false and `next_ready` is set to the
  /// earliest time the request could succeed.
  bool try_acquire(std::uint64_t n, net::SimTime now, net::SimTime& next_ready);

  double rate() const noexcept { return rate_pps_; }
  std::uint64_t granted() const noexcept { return granted_; }
  /// Requests that found the bucket empty and had to reschedule — the
  /// token-wait pressure signal of the observability layer.
  std::uint64_t deferred() const noexcept { return deferred_; }

 private:
  void refill(net::SimTime now);

  double rate_pps_;
  double capacity_;
  double tokens_;
  net::SimTime last_refill_;
  std::uint64_t granted_ = 0;
  std::uint64_t deferred_ = 0;
};

}  // namespace orp::prober
