#include "prober/scanner.h"

#include <charconv>
#include <cstring>

#include "dns/builder.h"
#include "dns/decode_view.h"
#include "util/hash.h"
#include "util/strings.h"

namespace orp::prober {

namespace {
constexpr std::uint16_t kProberPort = 54321;  // fixed source port, ZMap-style

/// Zero-padded decimal, widening past `min_width` when the value needs it —
/// exactly snprintf("%0*u")'s behavior, which the zone scheme renders with.
char* write_decimal(char* p, std::uint32_t v, int min_width) {
  char tmp[10];
  int n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (int pad = min_width - n; pad > 0; --pad) *p++ = '0';
  while (n > 0) *p++ = tmp[--n];
  return p;
}

/// Fixed-width in-place digit patch (precondition: v fits in `width`).
void patch_digits(std::uint8_t* p, std::uint32_t v, int width) {
  for (int i = width - 1; i >= 0; --i) {
    p[i] = static_cast<std::uint8_t>('0' + v % 10);
    v /= 10;
  }
}

// MurmurHash64A pieces, matching libstdc++'s std::_Hash_bytes on LP64 (the
// function behind std::hash<string_view>). Replicated from the public
// MurmurHash64A algorithm; prepare_hash_plan() differentially verifies the
// replica against std::hash and disables the fast path on any mismatch, so
// a different stdlib degrades to the render-and-hash path, never to wrong
// bucket placement.
constexpr std::uint64_t kMurmurMul = 0xc6a4a7935bd1e995ULL;
constexpr std::uint64_t kMurmurSeed = 0xc70f6907ULL;

std::uint64_t shift_mix(std::uint64_t v) noexcept { return v ^ (v >> 47); }

std::uint64_t load64(const unsigned char* p) noexcept {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

}  // namespace

std::string_view QnameRenderer::render(std::uint64_t key,
                                       std::span<char> buf) const noexcept {
  char* p = buf.data();
  *p++ = 'o';
  *p++ = 'r';
  p = write_decimal(p, static_cast<std::uint32_t>(key >> 32), 3);
  *p++ = '.';
  p = write_decimal(p, static_cast<std::uint32_t>(key), 7);
  std::memcpy(p, suffix.data(), suffix.size());
  p += suffix.size();
  return {buf.data(), static_cast<std::size_t>(p - buf.data())};
}

std::size_t QnameRenderer::hash_slow(std::uint64_t key) const noexcept {
  char buf[dns::kMaxNameLength + 32];
  return std::hash<std::string_view>{}(render(key, buf));
}

std::size_t QnameRenderer::hash(std::uint64_t key) const noexcept {
  const auto cluster = static_cast<std::uint32_t>(key >> 32);
  const auto index = static_cast<std::uint32_t>(key);
  if (!hash_fast_ok_ || cluster >= 1000 || index >= 10'000'000)
    return hash_slow(key);
  // Canonical bytes 0..15 are "or###.#######" + suffix[0..2]: patch the two
  // digit runs into the prototype and run the first two Murmur chunks for
  // real; everything after byte 16 is id-invariant and folds as constants.
  unsigned char buf[16];
  std::memcpy(buf, hash_proto_, 16);
  patch_digits(buf + 2, cluster, 3);
  patch_digits(buf + 6, index, 7);
  std::uint64_t h = hash_h0_;
  h = (h ^ (shift_mix(load64(buf) * kMurmurMul) * kMurmurMul)) * kMurmurMul;
  h = (h ^ (shift_mix(load64(buf + 8) * kMurmurMul) * kMurmurMul)) * kMurmurMul;
  for (const std::uint64_t fold : hash_folds_) h = (h ^ fold) * kMurmurMul;
  if (hash_has_tail_) h = (h ^ hash_tail_) * kMurmurMul;
  return shift_mix(shift_mix(h) * kMurmurMul);
}

void QnameRenderer::prepare_hash_plan() {
  hash_fast_ok_ = false;
  hash_folds_.clear();
  const std::size_t len = 13 + suffix.size();  // "or###.#######" + suffix
  if (suffix.size() < 3 || len > dns::kMaxNameLength + 32) return;
  char canon[dns::kMaxNameLength + 32];
  const std::string_view c0 = render(0, canon);
  if (c0.size() != len) return;
  std::memcpy(hash_proto_, c0.data(), 16);
  hash_h0_ = kMurmurSeed ^ (len * kMurmurMul);
  const auto* bytes = reinterpret_cast<const unsigned char*>(c0.data());
  std::size_t off = 16;
  for (; off + 8 <= len; off += 8)
    hash_folds_.push_back(shift_mix(load64(bytes + off) * kMurmurMul) *
                          kMurmurMul);
  hash_has_tail_ = off < len;
  hash_tail_ = 0;
  for (std::size_t i = len; i > off; --i)
    hash_tail_ = (hash_tail_ << 8) + bytes[i - 1];
  // Differential check: the fast path must reproduce std::hash exactly for
  // ids across both digit widths, or the bucket layout (and through reap
  // order, the capture digest) would silently change.
  hash_fast_ok_ = true;
  constexpr std::uint64_t kProbeIds[] = {
      0, 1, (1ULL << 32) | 1, (999ULL << 32) | 9'999'999,
      (123ULL << 32) | 4'567'890};
  for (const std::uint64_t id : kProbeIds) {
    if (hash(id) != hash_slow(id)) {
      hash_fast_ok_ = false;
      return;
    }
  }
}

Scanner::Scanner(net::Network& network, net::IPv4Addr prober_addr,
                 ScanConfig config, zone::SubdomainScheme scheme,
                 dns::EncodeBuffer* codec_scratch)
    : network_(network),
      addr_(prober_addr),
      config_(config),
      codec_scratch_(codec_scratch != nullptr ? *codec_scratch : own_scratch_),
      clusters_(std::move(scheme), config.rotate_pause),
      permutation_(config.seed),
      limiter_(config.rate_pps, config.batch_size * 4),
      outstanding_(QnameKeyHash{&renderer_}) {
  if (config_.first_index != 0) permutation_.seek(config_.first_index);
  network_.bind_batch(
      net::Endpoint{addr_, kProberPort},
      [this](const net::Datagram& d) { on_datagram(d); },
      [this](const net::DatagramBatch& b) { on_batch(b); });

  // Learn the probe template (verified byte-identical to the encoder by
  // derive itself) and the canonical-key renderer from the id (0, 0) probe.
  if (config_.wire_templates) {
    probe_tpl_ = dns::WireTemplate::derive(
        [this](const dns::StampVars& v) {
          return dns::make_query(
              v.txn, clusters_.scheme().qname({v.cluster, v.index}),
              config_.qtype);
        },
        codec_scratch_);
  }

  const std::string canon0 = clusters_.scheme().qname({0, 0}).canonical_key();
  constexpr std::string_view kHead = "or000.0000000";
  const bool canon_ok =
      canon0.size() >= kHead.size() &&
      std::string_view(canon0).substr(0, kHead.size()) == kHead;
  renderer_.suffix = canon_ok ? canon0.substr(kHead.size()) : canon0;
  if (canon_ok) renderer_.prepare_hash_plan();

  pending_off_.reserve(config_.batch_size);
  pending_len_.reserve(config_.batch_size);
  pending_dst_.reserve(config_.batch_size);
  pending_views_.reserve(config_.batch_size);
  pending_bytes_.reserve(config_.batch_size *
                         std::max<std::size_t>(probe_tpl_.size(), 64));
}

void Scanner::start(DoneCallback done) {
  done_ = std::move(done);
  stats_.started = network_.loop().now();
  network_.loop().schedule_in(net::SimTime::nanos(0),
                              [this]() { send_batch(); });
  network_.loop().schedule_in(config_.reap_interval,
                              [this]() { reap(false); });
}

void Scanner::send_batch() {
  if (sending_done_) return;
  net::SimTime next_ready;
  if (!limiter_.try_acquire(config_.batch_size, network_.loop().now(),
                            next_ready)) {
    network_.loop().schedule_at(next_ready, [this]() { send_batch(); });
    return;
  }

  // The limiter paces *packets on the wire*; excluded addresses cost a
  // permutation step but no send budget (as in ZMap). Probes stage into the
  // pending arena and leave as one bulk hand-off below — nothing in this
  // loop draws network RNG or schedules, so deferring the hand-off keeps
  // every draw and every event seq exactly where per-probe sends put them.
  bool rotated = false;
  std::uint32_t rotated_to = 0;
  for (std::uint64_t sent = 0;
       sent < config_.batch_size && raw_consumed_ < config_.raw_steps;) {
    ++raw_consumed_;
    const std::uint64_t raw = permutation_.next_raw();
    if (raw >= (std::uint64_t{1} << 32)) {
      ++stats_.skipped_overflow;
      continue;
    }
    const net::IPv4Addr target(static_cast<std::uint32_t>(raw));
    if (net::is_reserved(target)) {
      ++stats_.skipped_reserved;
      continue;
    }
    ++sent;
    const std::uint32_t cluster_before = clusters_.current_cluster();
    send_one_probe(target);
    if (clusters_.current_cluster() != cluster_before) {
      // A zone rotation started at the auth server; stop the batch so the
      // send pause covers the reload window.
      rotated = true;
      rotated_to = clusters_.current_cluster();
      break;
    }
  }
  flush_pending();
  if (rotated && on_rotate_) on_rotate_(rotated_to);

  if (beacon_ != nullptr)
    beacon_->probes_sent.store(stats_.q1_sent, std::memory_order_relaxed);

  if (raw_consumed_ >= config_.raw_steps) {
    sending_done_ = true;
    // Final drain: one response window after the last probe, then sweep.
    network_.loop().schedule_in(config_.response_timeout, [this]() {
      reap(true);
      maybe_finish();
    });
    return;
  }
  // Pause across a zone reload so recursions never race the loading server,
  // as the authors' pipeline coordinated prober and name server.
  const net::SimTime delay =
      rotated ? config_.rotate_pause : net::SimTime::nanos(0);
  network_.loop().schedule_in(delay, [this]() { send_batch(); });
}

void Scanner::send_one_probe(net::IPv4Addr target) {
  const zone::SubdomainId id = clusters_.acquire();
  const std::uint16_t txn = next_txn_++;
  if (next_txn_ == 0) next_txn_ = 1;
  outstanding_.emplace(pack(id), network_.loop().now());
  peak_outstanding_ =
      std::max<std::uint64_t>(peak_outstanding_, outstanding_.size());
  ++stats_.q1_sent;
  if (tracer_ != nullptr) {
    // The probe's global permutation index — a property of the campaign
    // plan, not the shard layout, so sampling is shard-count-invariant.
    // Indexes grow monotonically, so the cursor check replaces a per-probe
    // division with a compare; reserved-address skips can jump the index
    // past a sample point, in which case sample() rejects (that index sent
    // no probe) and the cursor re-arms at the next multiple.
    const std::uint64_t index = config_.first_index + raw_consumed_ - 1;
    if (index >= next_trace_index_) {
      if (tracer_->sample(index)) {
        char key_buf[dns::kMaxNameLength + 32];
        const std::uint64_t flow =
            util::Fnv1a{}.bytes(renderer_.render(pack(id), key_buf)).value();
        tracer_->begin_flow(flow, index, network_.loop().now(),
                            target.value());
      }
      const std::uint64_t every = tracer_->sample_every();
      next_trace_index_ = index - index % every + every;
    }
  }
  // Stage the wire bytes. Common ids stamp the pre-encoded template (txn +
  // two fixed-width digit runs); wider ids take the full make_query/encode
  // path, byte-identical to what the stamp produces inside its widths.
  const std::size_t off = pending_bytes_.size();
  const dns::StampVars vars{txn, id.cluster, id.index, 0, 0};
  if (probe_tpl_.covers(vars)) {
    probe_tpl_.stamp_append(vars, pending_bytes_);
    pending_len_.push_back(static_cast<std::uint32_t>(probe_tpl_.size()));
    ++stats_.template_stamped;
  } else {
    const dns::DnsName qname = clusters_.scheme().qname(id);
    const dns::Message query = dns::make_query(txn, qname, config_.qtype);
    const auto wire = dns::encode_into(query, codec_scratch_);
    pending_bytes_.insert(pending_bytes_.end(), wire.begin(), wire.end());
    pending_len_.push_back(static_cast<std::uint32_t>(wire.size()));
    ++stats_.template_fallback;
  }
  pending_off_.push_back(static_cast<std::uint32_t>(off));
  pending_dst_.push_back(target);
}

void Scanner::flush_pending() {
  if (pending_dst_.empty()) return;
  pending_views_.clear();
  const std::uint8_t* base = pending_bytes_.data();
  const net::Endpoint src{addr_, kProberPort};
  for (std::size_t i = 0; i < pending_dst_.size(); ++i)
    pending_views_.push_back(net::PacketView{
        src, net::Endpoint{pending_dst_[i], net::kDnsPort},
        {base + pending_off_[i], pending_len_[i]}});
  network_.send_batch(pending_views_);
  pending_bytes_.clear();
  pending_off_.clear();
  pending_len_.clear();
  pending_dst_.clear();
}

void Scanner::on_batch(const net::DatagramBatch& b) {
  for (std::size_t i = 0; i < b.size(); ++i)
    on_datagram(net::Datagram{b.srcs[i], b.dst, b.payloads[i]});
}

bool Scanner::match_key(std::string_view key, std::uint64_t& packed) const {
  if (key.size() < 4 || key[0] != 'o' || key[1] != 'r') return false;
  const std::size_t dot = key.find('.', 2);
  if (dot == std::string_view::npos || dot == 2) return false;
  const std::string_view suffix = renderer_.suffix;
  if (key.size() < dot + 2 + suffix.size()) return false;
  if (key.substr(key.size() - suffix.size()) != suffix) return false;
  const std::string_view cluster_str = key.substr(2, dot - 2);
  const std::string_view index_str =
      key.substr(dot + 1, key.size() - suffix.size() - (dot + 1));
  if (index_str.empty() || !util::all_digits(cluster_str) ||
      !util::all_digits(index_str))
    return false;
  std::uint32_t cluster = 0;
  std::uint32_t index = 0;
  const auto cr = std::from_chars(
      cluster_str.data(), cluster_str.data() + cluster_str.size(), cluster);
  const auto ir = std::from_chars(
      index_str.data(), index_str.data() + index_str.size(), index);
  if (cr.ec != std::errc{} || ir.ec != std::errc{}) return false;
  packed = pack(zone::SubdomainId{cluster, index});
  // Strict: the send path inserts exactly the canonical render of each id,
  // so anything that does not round-trip (wrong zero padding, overlong
  // digits) cannot be in the map — same verdict string equality gave.
  char buf[dns::kMaxNameLength + 32];
  return renderer_.render(packed, buf) == key;
}

void Scanner::on_datagram(const net::Datagram& d) {
  if (config_.tcp_fallback) {
    // The fallback receive path re-orders classification around the TCP
    // retry; keeping it fully separate leaves the default path below
    // byte-for-byte untouched (the pinned-digest discipline).
    on_datagram_fallback(d);
    return;
  }
  ++stats_.r2_received;
  if (beacon_ != nullptr)
    beacon_->responses.store(stats_.r2_received, std::memory_order_relaxed);
  if (retain_responses_)
    responses_.add(network_.loop().now(), d.src.addr, d.payload);
  if (r2_sink_ != nullptr)
    r2_sink_->on_r2(network_.loop().now(), d.src.addr, d.payload);

  // Group the flow by qname (§III-B): the DNS ID field is too narrow at
  // 100k pps, so the question name is the flow key. A DecodeView is a full
  // validation pass (all four sections, same rules as decode), so
  // `complete()` matches exactly what decode() used to accept — without
  // materializing the message.
  const dns::DecodeView v = dns::DecodeView::parse(d.payload);
  if (v.complete() && v.questions_parsed > 0) {
    char key_buf[dns::kMaxNameLength];
    const std::string_view key = v.qname.canonical_key_into(key_buf);
    std::uint64_t packed = 0;
    constexpr std::uint32_t kNil = OutstandingTable<QnameKeyHash>::kNil;
    const std::uint32_t node =
        match_key(key, packed) ? outstanding_.find(packed) : kNil;
    if (node != kNil) {
      ++stats_.r2_matched;
      if (tracer_ != nullptr) {
        const std::uint64_t flow = util::Fnv1a{}.bytes(key).value();
        if (tracer_->marked(flow))
          tracer_->record(flow, obs::SpanPoint::kR2Received,
                          network_.loop().now(), d.src.addr.value());
      }
      clusters_.retire_answered(unpack(packed));
      outstanding_.erase_at(node);
    } else {
      ++stats_.r2_unmatched;
    }
    return;
  }
  if (v.complete()) {
    // The paper's 494 unmatchable responses: no dns_question to group by.
    ++stats_.r2_empty_question;
    return;
  }
  // Header too mangled even to count a question; still an R2.
  ++stats_.r2_unmatched;
}

void Scanner::on_datagram_fallback(const net::Datagram& d) {
  ++stats_.r2_received;
  if (beacon_ != nullptr)
    beacon_->responses.store(stats_.r2_received, std::memory_order_relaxed);

  const dns::DecodeView v = dns::DecodeView::parse(d.payload);
  if (v.complete() && v.questions_parsed > 0) {
    char key_buf[dns::kMaxNameLength];
    const std::string_view key = v.qname.canonical_key_into(key_buf);
    std::uint64_t packed = 0;
    constexpr std::uint32_t kNil = OutstandingTable<QnameKeyHash>::kNil;
    const bool ours = match_key(key, packed);
    const std::uint32_t node = ours ? outstanding_.find(packed) : kNil;
    if (node != kNil) {
      ++stats_.r2_matched;
      if (tracer_ != nullptr) {
        const std::uint64_t flow = util::Fnv1a{}.bytes(key).value();
        if (tracer_->marked(flow))
          tracer_->record(flow, obs::SpanPoint::kR2Received,
                          network_.loop().now(), d.src.addr.value());
      }
      // The answered subdomain retires either way — the flow *was*
      // answered; what is still open is which payload gets classified.
      clusters_.retire_answered(unpack(packed));
      outstanding_.erase_at(node);
      if (v.header.flags.tc) {
        ++stats_.tc_seen;
        start_tcp_retry(packed, d.src.addr, d.payload);
        return;  // classification deferred until the retry settles
      }
      classify(d.src.addr, d.payload);
      return;
    }
    if (ours && find_retry_by_key(packed) != kNilSlot) {
      // A UDP answer racing the TCP retry (the resolver answered twice,
      // e.g. full answer after the truncated one): counted, never
      // classified — the retry owns this flow's single classification.
      ++stats_.tcp_duplicate_r2;
      return;
    }
    ++stats_.r2_unmatched;
    classify(d.src.addr, d.payload);
    return;
  }
  if (v.complete()) {
    ++stats_.r2_empty_question;
    classify(d.src.addr, d.payload);
    return;
  }
  ++stats_.r2_unmatched;
  classify(d.src.addr, d.payload);
}

void Scanner::classify(net::IPv4Addr from,
                       std::span<const std::uint8_t> payload) {
  if (retain_responses_)
    responses_.add(network_.loop().now(), from, payload);
  if (r2_sink_ != nullptr)
    r2_sink_->on_r2(network_.loop().now(), from, payload);
}

std::uint64_t Scanner::flow_of(std::uint64_t packed) const noexcept {
  char key_buf[dns::kMaxNameLength + 32];
  return util::Fnv1a{}.bytes(renderer_.render(packed, key_buf)).value();
}

std::uint32_t Scanner::find_retry(net::ConnId c) const noexcept {
  for (std::uint32_t i = 0; i < retries_.size(); ++i)
    if (retries_[i].active && retries_[i].conn == c) return i;
  return kNilSlot;
}

std::uint32_t Scanner::find_retry_by_key(std::uint64_t packed) const noexcept {
  for (std::uint32_t i = 0; i < retries_.size(); ++i)
    if (retries_[i].active && retries_[i].packed == packed) return i;
  return kNilSlot;
}

void Scanner::start_tcp_retry(std::uint64_t packed, net::IPv4Addr target,
                              const net::PayloadRef& held) {
  std::uint32_t slot;
  if (!retry_free_.empty()) {
    slot = retry_free_.back();
    retry_free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(retries_.size());
    retries_.emplace_back();
  }
  TcpRetry& r = retries_[slot];
  r.packed = packed;
  r.target = target;
  r.held = held;  // refcount bump; the slab stays pooled
  r.active = true;
  ++retries_active_;
  ++stats_.tcp_retries;
  if (tracer_ != nullptr) {
    const std::uint64_t flow = flow_of(packed);
    if (tracer_->marked(flow))
      tracer_->record(flow, obs::SpanPoint::kTcpRetry, network_.loop().now(),
                      target.value());
  }
  std::uint16_t port = next_tcp_port_++;
  if (next_tcp_port_ == 0) next_tcp_port_ = 49152;
  r.conn = network_.streams().connect(net::Endpoint{addr_, port},
                                      net::Endpoint{target, net::kDnsPort},
                                      this);
  // The only signal for a silently lost SYN — and the cap on a connection
  // that establishes but never answers.
  const std::uint32_t gen = r.gen;
  network_.loop().schedule_in(config_.tcp_timeout, [this, slot, gen]() {
    on_tcp_timeout(slot, gen);
  });
}

void Scanner::on_established(net::ConnId c) {
  const std::uint32_t slot = find_retry(c);
  if (slot == kNilSlot) {
    network_.streams().reset(c);
    return;
  }
  // Re-ask the same probe qname over the stream. Fresh transaction id (a
  // real client's retry is a new transaction); the flow is keyed by qname,
  // so the answer still groups to the same probe.
  const std::uint16_t txn = next_txn_++;
  if (next_txn_ == 0) next_txn_ = 1;
  const dns::DnsName qname =
      clusters_.scheme().qname(unpack(retries_[slot].packed));
  const dns::Message query = dns::make_query(txn, qname, config_.qtype);
  network_.streams().send_message(c, dns::encode_into(query, codec_scratch_));
}

void Scanner::on_message(net::ConnId c, net::SimTime /*at*/,
                         const net::PayloadRef& msg) {
  const std::uint32_t slot = find_retry(c);
  if (slot == kNilSlot) return;
  TcpRetry& r = retries_[slot];
  ++stats_.tcp_answers;
  if (tracer_ != nullptr) {
    const std::uint64_t flow = flow_of(r.packed);
    if (tracer_->marked(flow))
      tracer_->record(flow, obs::SpanPoint::kTcpAnswer, network_.loop().now(),
                      r.target.value());
  }
  classify(r.target, msg);
  finish_retry(slot);
  network_.streams().close(c);
}

void Scanner::on_closed(net::ConnId c, bool /*reset*/) {
  const std::uint32_t slot = find_retry(c);
  if (slot == kNilSlot) return;  // already settled (answer beat the FIN)
  tcp_retry_failed(slot);        // refused, reset, or closed unanswered
}

void Scanner::on_tcp_timeout(std::uint32_t slot, std::uint32_t gen) {
  if (slot >= retries_.size()) return;
  TcpRetry& r = retries_[slot];
  if (!r.active || r.gen != gen) return;  // settled; stale timer
  const net::ConnId c = r.conn;
  tcp_retry_failed(slot);            // banks conn bytes while `c` is live
  network_.streams().reset(c);       // no-op if the SYN was lost
}

void Scanner::tcp_retry_failed(std::uint32_t slot) {
  TcpRetry& r = retries_[slot];
  ++stats_.tcp_failures;
  // The truncated UDP answer is the flow's final word after all.
  classify(r.target, r.held.span());
  finish_retry(slot);
}

void Scanner::finish_retry(std::uint32_t slot) {
  TcpRetry& r = retries_[slot];
  // Bank the connection's wire-byte totals before the id goes stale (a
  // stale or already-torn-down conn reads 0 — see ScanStats).
  stats_.tcp_bytes_sent += network_.streams().conn_bytes_sent(r.conn);
  stats_.tcp_bytes_received += network_.streams().conn_bytes_received(r.conn);
  r.active = false;
  r.conn = net::kNilConn;
  r.held = net::PayloadRef{};  // release the slab back to the pool
  ++r.gen;                     // pending timeout events become inert
  --retries_active_;
  retry_free_.push_back(slot);
  maybe_finish();  // a drained retry may have been the last open work
}

void Scanner::reap(bool final_sweep) {
  const net::SimTime now = network_.loop().now();
  constexpr std::uint32_t kNil = OutstandingTable<QnameKeyHash>::kNil;
  for (std::uint32_t it = outstanding_.first(); it != kNil;) {
    const std::uint32_t ahead = outstanding_.next(it);
    if (ahead != kNil) outstanding_.prefetch(ahead);
    if (final_sweep || now - outstanding_.sent_at(it) >= config_.response_timeout) {
      if (config_.subdomain_reuse)
        clusters_.release_unanswered(unpack(outstanding_.key_at(it)));
      it = outstanding_.erase_at(it);
      ++stats_.timeouts_reaped;
    } else {
      it = outstanding_.next(it);
    }
  }
  if (final_sweep) final_swept_ = true;
  if (!sending_done_) {
    network_.loop().schedule_in(config_.reap_interval,
                                [this]() { reap(false); });
  }
}

void Scanner::maybe_finish() {
  if (finished_ || !sending_done_ || !final_swept_) return;
  // TCP retries opened late in the drain window may still be settling;
  // each one calls back here as it finishes.
  if (retries_active_ > 0) return;
  finished_ = true;
  stats_.finished = network_.loop().now();
  network_.unbind(net::Endpoint{addr_, kProberPort});
  if (beacon_ != nullptr) {
    beacon_->probes_sent.store(stats_.q1_sent, std::memory_order_relaxed);
    beacon_->responses.store(stats_.r2_received, std::memory_order_relaxed);
    beacon_->done.store(1, std::memory_order_relaxed);
  }
  if (done_) done_();
}

}  // namespace orp::prober
