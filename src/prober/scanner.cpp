#include "prober/scanner.h"

#include "dns/builder.h"
#include "dns/decode_view.h"
#include "util/hash.h"

namespace orp::prober {

namespace {
constexpr std::uint16_t kProberPort = 54321;  // fixed source port, ZMap-style
}

Scanner::Scanner(net::Network& network, net::IPv4Addr prober_addr,
                 ScanConfig config, zone::SubdomainScheme scheme,
                 dns::EncodeBuffer* codec_scratch)
    : network_(network),
      addr_(prober_addr),
      config_(config),
      codec_scratch_(codec_scratch != nullptr ? *codec_scratch : own_scratch_),
      clusters_(std::move(scheme), config.rotate_pause),
      permutation_(config.seed),
      limiter_(config.rate_pps, config.batch_size * 4) {
  if (config_.first_index != 0) permutation_.seek(config_.first_index);
  network_.bind(net::Endpoint{addr_, kProberPort},
                [this](const net::Datagram& d) { on_datagram(d); });
}

void Scanner::start(DoneCallback done) {
  done_ = std::move(done);
  stats_.started = network_.loop().now();
  network_.loop().schedule_in(net::SimTime::nanos(0),
                              [this]() { send_batch(); });
  network_.loop().schedule_in(config_.reap_interval,
                              [this]() { reap(false); });
}

void Scanner::send_batch() {
  if (sending_done_) return;
  net::SimTime next_ready;
  if (!limiter_.try_acquire(config_.batch_size, network_.loop().now(),
                            next_ready)) {
    network_.loop().schedule_at(next_ready, [this]() { send_batch(); });
    return;
  }

  // The limiter paces *packets on the wire*; excluded addresses cost a
  // permutation step but no send budget (as in ZMap).
  bool rotated = false;
  for (std::uint64_t sent = 0;
       sent < config_.batch_size && raw_consumed_ < config_.raw_steps;) {
    ++raw_consumed_;
    const std::uint64_t raw = permutation_.next_raw();
    if (raw >= (std::uint64_t{1} << 32)) {
      ++stats_.skipped_overflow;
      continue;
    }
    const net::IPv4Addr target(static_cast<std::uint32_t>(raw));
    if (net::is_reserved(target)) {
      ++stats_.skipped_reserved;
      continue;
    }
    ++sent;
    const std::uint32_t cluster_before = clusters_.current_cluster();
    send_one_probe(target);
    if (clusters_.current_cluster() != cluster_before) {
      // A zone rotation started at the auth server; stop the batch so the
      // send pause covers the reload window.
      rotated = true;
      if (on_rotate_) on_rotate_(clusters_.current_cluster());
      break;
    }
  }

  if (beacon_ != nullptr)
    beacon_->probes_sent.store(stats_.q1_sent, std::memory_order_relaxed);

  if (raw_consumed_ >= config_.raw_steps) {
    sending_done_ = true;
    // Final drain: one response window after the last probe, then sweep.
    network_.loop().schedule_in(config_.response_timeout, [this]() {
      reap(true);
      maybe_finish();
    });
    return;
  }
  // Pause across a zone reload so recursions never race the loading server,
  // as the authors' pipeline coordinated prober and name server.
  const net::SimTime delay =
      rotated ? config_.rotate_pause : net::SimTime::nanos(0);
  network_.loop().schedule_in(delay, [this]() { send_batch(); });
}

void Scanner::send_one_probe(net::IPv4Addr target) {
  const zone::SubdomainId id = clusters_.acquire();
  const dns::DnsName qname = clusters_.scheme().qname(id);
  dns::Message query = dns::make_query(next_txn_++, qname, config_.qtype);
  if (next_txn_ == 0) next_txn_ = 1;
  outstanding_[qname.canonical_key()] =
      Outstanding{id, network_.loop().now()};
  peak_outstanding_ =
      std::max<std::uint64_t>(peak_outstanding_, outstanding_.size());
  ++stats_.q1_sent;
  if (tracer_ != nullptr) {
    // The probe's global permutation index — a property of the campaign
    // plan, not the shard layout, so sampling is shard-count-invariant.
    const std::uint64_t index = config_.first_index + raw_consumed_ - 1;
    if (tracer_->sample(index)) {
      char key_buf[dns::kMaxNameLength];
      const std::uint64_t flow =
          util::Fnv1a{}.bytes(qname.canonical_key_into(key_buf)).value();
      tracer_->begin_flow(flow, index, network_.loop().now(), target.value());
    }
  }
  // Encode through the shared per-shard scratch and send through the pooled
  // path: on a warm pool the probe's whole wire trip is allocation-free.
  const auto wire = dns::encode_into(query, codec_scratch_);
  network_.send(net::Endpoint{addr_, kProberPort},
                net::Endpoint{target, net::kDnsPort}, wire);
}

void Scanner::on_datagram(const net::Datagram& d) {
  ++stats_.r2_received;
  if (beacon_ != nullptr)
    beacon_->responses.store(stats_.r2_received, std::memory_order_relaxed);
  responses_.add(network_.loop().now(), d.src.addr, d.payload);

  // Group the flow by qname (§III-B): the DNS ID field is too narrow at
  // 100k pps, so the question name is the flow key. A DecodeView is a full
  // validation pass (all four sections, same rules as decode), so
  // `complete()` matches exactly what decode() used to accept — without
  // materializing the message.
  const dns::DecodeView v = dns::DecodeView::parse(d.payload);
  if (v.complete() && v.questions_parsed > 0) {
    char key_buf[dns::kMaxNameLength];
    const std::string_view key = v.qname.canonical_key_into(key_buf);
    const auto it = outstanding_.find(key);
    if (it != outstanding_.end()) {
      ++stats_.r2_matched;
      if (tracer_ != nullptr) {
        const std::uint64_t flow = util::Fnv1a{}.bytes(key).value();
        if (tracer_->marked(flow))
          tracer_->record(flow, obs::SpanPoint::kR2Received,
                          network_.loop().now(), d.src.addr.value());
      }
      clusters_.retire_answered(it->second.id);
      outstanding_.erase(it);
    } else {
      ++stats_.r2_unmatched;
    }
    return;
  }
  if (v.complete()) {
    // The paper's 494 unmatchable responses: no dns_question to group by.
    ++stats_.r2_empty_question;
    return;
  }
  // Header too mangled even to count a question; still an R2.
  ++stats_.r2_unmatched;
}

void Scanner::reap(bool final_sweep) {
  const net::SimTime now = network_.loop().now();
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    if (final_sweep || now - it->second.sent >= config_.response_timeout) {
      if (config_.subdomain_reuse)
        clusters_.release_unanswered(it->second.id);
      it = outstanding_.erase(it);
      ++stats_.timeouts_reaped;
    } else {
      ++it;
    }
  }
  if (!sending_done_) {
    network_.loop().schedule_in(config_.reap_interval,
                                [this]() { reap(false); });
  }
}

void Scanner::maybe_finish() {
  if (finished_ || !sending_done_) return;
  finished_ = true;
  stats_.finished = network_.loop().now();
  network_.unbind(net::Endpoint{addr_, kProberPort});
  if (beacon_ != nullptr) {
    beacon_->probes_sent.store(stats_.q1_sent, std::memory_order_relaxed);
    beacon_->responses.store(stats_.r2_received, std::memory_order_relaxed);
    beacon_->done.store(1, std::memory_order_relaxed);
  }
  if (done_) done_();
}

}  // namespace orp::prober
