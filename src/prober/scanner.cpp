#include "prober/scanner.h"

#include <charconv>
#include <cstring>

#include "dns/builder.h"
#include "dns/decode_view.h"
#include "util/hash.h"
#include "util/strings.h"

namespace orp::prober {

namespace {
constexpr std::uint16_t kProberPort = 54321;  // fixed source port, ZMap-style

// Wire offsets inside the probe template: 12-byte header, then the question
// name as [5]"or###" [7]"#######" [sld labels] [0]. Verified against the
// actual encode in the constructor before the patch path is enabled.
constexpr std::size_t kClusterDigitsOff = 12 + 1 + 2;  // after [5] 'o' 'r'
constexpr std::size_t kIndexDigitsOff = 12 + 1 + 5 + 1;

/// Zero-padded decimal, widening past `min_width` when the value needs it —
/// exactly snprintf("%0*u")'s behavior, which the zone scheme renders with.
char* write_decimal(char* p, std::uint32_t v, int min_width) {
  char tmp[10];
  int n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (int pad = min_width - n; pad > 0; --pad) *p++ = '0';
  while (n > 0) *p++ = tmp[--n];
  return p;
}

/// Fixed-width in-place digit patch (precondition: v fits in `width`).
void patch_digits(std::uint8_t* p, std::uint32_t v, int width) {
  for (int i = width - 1; i >= 0; --i) {
    p[i] = static_cast<std::uint8_t>('0' + v % 10);
    v /= 10;
  }
}

}  // namespace

std::string_view QnameRenderer::render(std::uint64_t key,
                                       std::span<char> buf) const noexcept {
  char* p = buf.data();
  *p++ = 'o';
  *p++ = 'r';
  p = write_decimal(p, static_cast<std::uint32_t>(key >> 32), 3);
  *p++ = '.';
  p = write_decimal(p, static_cast<std::uint32_t>(key), 7);
  std::memcpy(p, suffix.data(), suffix.size());
  p += suffix.size();
  return {buf.data(), static_cast<std::size_t>(p - buf.data())};
}

Scanner::Scanner(net::Network& network, net::IPv4Addr prober_addr,
                 ScanConfig config, zone::SubdomainScheme scheme,
                 dns::EncodeBuffer* codec_scratch)
    : network_(network),
      addr_(prober_addr),
      config_(config),
      codec_scratch_(codec_scratch != nullptr ? *codec_scratch : own_scratch_),
      clusters_(std::move(scheme), config.rotate_pause),
      permutation_(config.seed),
      limiter_(config.rate_pps, config.batch_size * 4),
      outstanding_(0, QnameKeyHash{&renderer_}, std::equal_to<std::uint64_t>{},
                   PoolAllocator<std::pair<const std::uint64_t, Outstanding>>{
                       &node_pool_}) {
  if (config_.first_index != 0) permutation_.seek(config_.first_index);
  network_.bind_batch(
      net::Endpoint{addr_, kProberPort},
      [this](const net::Datagram& d) { on_datagram(d); },
      [this](const net::DatagramBatch& b) { on_batch(b); });

  // Build the probe template and the canonical-key renderer from the id
  // (0, 0) probe; every other probe differs only in txn and digit runs.
  const zone::SubdomainId id0{0, 0};
  const dns::DnsName qn0 = clusters_.scheme().qname(id0);
  const dns::Message q0 = dns::make_query(0, qn0, config_.qtype);
  const auto wire0 = dns::encode_into(q0, codec_scratch_);
  template_.assign(wire0.begin(), wire0.end());

  const std::string canon0 = qn0.canonical_key();
  constexpr std::string_view kHead = "or000.0000000";
  const bool canon_ok =
      canon0.size() >= kHead.size() &&
      std::string_view(canon0).substr(0, kHead.size()) == kHead;
  renderer_.suffix = canon_ok ? canon0.substr(kHead.size()) : canon0;
  template_ok_ = canon_ok && template_.size() > kIndexDigitsOff + 7 &&
                 template_[12] == 5 && template_[12 + 1 + 5] == 7;

  pending_off_.reserve(config_.batch_size);
  pending_len_.reserve(config_.batch_size);
  pending_dst_.reserve(config_.batch_size);
  pending_views_.reserve(config_.batch_size);
  pending_bytes_.reserve(config_.batch_size * template_.size());
}

void Scanner::start(DoneCallback done) {
  done_ = std::move(done);
  stats_.started = network_.loop().now();
  network_.loop().schedule_in(net::SimTime::nanos(0),
                              [this]() { send_batch(); });
  network_.loop().schedule_in(config_.reap_interval,
                              [this]() { reap(false); });
}

void Scanner::send_batch() {
  if (sending_done_) return;
  net::SimTime next_ready;
  if (!limiter_.try_acquire(config_.batch_size, network_.loop().now(),
                            next_ready)) {
    network_.loop().schedule_at(next_ready, [this]() { send_batch(); });
    return;
  }

  // The limiter paces *packets on the wire*; excluded addresses cost a
  // permutation step but no send budget (as in ZMap). Probes stage into the
  // pending arena and leave as one bulk hand-off below — nothing in this
  // loop draws network RNG or schedules, so deferring the hand-off keeps
  // every draw and every event seq exactly where per-probe sends put them.
  bool rotated = false;
  std::uint32_t rotated_to = 0;
  for (std::uint64_t sent = 0;
       sent < config_.batch_size && raw_consumed_ < config_.raw_steps;) {
    ++raw_consumed_;
    const std::uint64_t raw = permutation_.next_raw();
    if (raw >= (std::uint64_t{1} << 32)) {
      ++stats_.skipped_overflow;
      continue;
    }
    const net::IPv4Addr target(static_cast<std::uint32_t>(raw));
    if (net::is_reserved(target)) {
      ++stats_.skipped_reserved;
      continue;
    }
    ++sent;
    const std::uint32_t cluster_before = clusters_.current_cluster();
    send_one_probe(target);
    if (clusters_.current_cluster() != cluster_before) {
      // A zone rotation started at the auth server; stop the batch so the
      // send pause covers the reload window.
      rotated = true;
      rotated_to = clusters_.current_cluster();
      break;
    }
  }
  flush_pending();
  if (rotated && on_rotate_) on_rotate_(rotated_to);

  if (beacon_ != nullptr)
    beacon_->probes_sent.store(stats_.q1_sent, std::memory_order_relaxed);

  if (raw_consumed_ >= config_.raw_steps) {
    sending_done_ = true;
    // Final drain: one response window after the last probe, then sweep.
    network_.loop().schedule_in(config_.response_timeout, [this]() {
      reap(true);
      maybe_finish();
    });
    return;
  }
  // Pause across a zone reload so recursions never race the loading server,
  // as the authors' pipeline coordinated prober and name server.
  const net::SimTime delay =
      rotated ? config_.rotate_pause : net::SimTime::nanos(0);
  network_.loop().schedule_in(delay, [this]() { send_batch(); });
}

void Scanner::send_one_probe(net::IPv4Addr target) {
  const zone::SubdomainId id = clusters_.acquire();
  const std::uint16_t txn = next_txn_++;
  if (next_txn_ == 0) next_txn_ = 1;
  outstanding_.emplace(pack(id), Outstanding{id, network_.loop().now()});
  peak_outstanding_ =
      std::max<std::uint64_t>(peak_outstanding_, outstanding_.size());
  ++stats_.q1_sent;
  if (tracer_ != nullptr) {
    // The probe's global permutation index — a property of the campaign
    // plan, not the shard layout, so sampling is shard-count-invariant.
    const std::uint64_t index = config_.first_index + raw_consumed_ - 1;
    if (tracer_->sample(index)) {
      char key_buf[dns::kMaxNameLength + 32];
      const std::uint64_t flow =
          util::Fnv1a{}.bytes(renderer_.render(pack(id), key_buf)).value();
      tracer_->begin_flow(flow, index, network_.loop().now(), target.value());
    }
  }
  // Stage the wire bytes. Common ids patch the pre-encoded template in
  // place (txn + two fixed-width digit runs); wider ids take the full
  // make_query/encode path, byte-identical to what the template patch
  // produces inside its widths.
  const std::size_t off = pending_bytes_.size();
  if (template_ok_ && id.cluster < 1000 && id.index < 10'000'000) {
    pending_bytes_.insert(pending_bytes_.end(), template_.begin(),
                          template_.end());
    std::uint8_t* w = pending_bytes_.data() + off;
    w[0] = static_cast<std::uint8_t>(txn >> 8);
    w[1] = static_cast<std::uint8_t>(txn & 0xff);
    patch_digits(w + kClusterDigitsOff, id.cluster, 3);
    patch_digits(w + kIndexDigitsOff, id.index, 7);
    pending_len_.push_back(static_cast<std::uint32_t>(template_.size()));
  } else {
    const dns::DnsName qname = clusters_.scheme().qname(id);
    const dns::Message query = dns::make_query(txn, qname, config_.qtype);
    const auto wire = dns::encode_into(query, codec_scratch_);
    pending_bytes_.insert(pending_bytes_.end(), wire.begin(), wire.end());
    pending_len_.push_back(static_cast<std::uint32_t>(wire.size()));
  }
  pending_off_.push_back(static_cast<std::uint32_t>(off));
  pending_dst_.push_back(target);
}

void Scanner::flush_pending() {
  if (pending_dst_.empty()) return;
  pending_views_.clear();
  const std::uint8_t* base = pending_bytes_.data();
  const net::Endpoint src{addr_, kProberPort};
  for (std::size_t i = 0; i < pending_dst_.size(); ++i)
    pending_views_.push_back(net::PacketView{
        src, net::Endpoint{pending_dst_[i], net::kDnsPort},
        {base + pending_off_[i], pending_len_[i]}});
  network_.send_batch(pending_views_);
  pending_bytes_.clear();
  pending_off_.clear();
  pending_len_.clear();
  pending_dst_.clear();
}

void Scanner::on_batch(const net::DatagramBatch& b) {
  for (std::size_t i = 0; i < b.size(); ++i)
    on_datagram(net::Datagram{b.srcs[i], b.dst, b.payloads[i]});
}

bool Scanner::match_key(std::string_view key, std::uint64_t& packed) const {
  if (key.size() < 4 || key[0] != 'o' || key[1] != 'r') return false;
  const std::size_t dot = key.find('.', 2);
  if (dot == std::string_view::npos || dot == 2) return false;
  const std::string_view suffix = renderer_.suffix;
  if (key.size() < dot + 2 + suffix.size()) return false;
  if (key.substr(key.size() - suffix.size()) != suffix) return false;
  const std::string_view cluster_str = key.substr(2, dot - 2);
  const std::string_view index_str =
      key.substr(dot + 1, key.size() - suffix.size() - (dot + 1));
  if (index_str.empty() || !util::all_digits(cluster_str) ||
      !util::all_digits(index_str))
    return false;
  std::uint32_t cluster = 0;
  std::uint32_t index = 0;
  const auto cr = std::from_chars(
      cluster_str.data(), cluster_str.data() + cluster_str.size(), cluster);
  const auto ir = std::from_chars(
      index_str.data(), index_str.data() + index_str.size(), index);
  if (cr.ec != std::errc{} || ir.ec != std::errc{}) return false;
  packed = pack(zone::SubdomainId{cluster, index});
  // Strict: the send path inserts exactly the canonical render of each id,
  // so anything that does not round-trip (wrong zero padding, overlong
  // digits) cannot be in the map — same verdict string equality gave.
  char buf[dns::kMaxNameLength + 32];
  return renderer_.render(packed, buf) == key;
}

void Scanner::on_datagram(const net::Datagram& d) {
  ++stats_.r2_received;
  if (beacon_ != nullptr)
    beacon_->responses.store(stats_.r2_received, std::memory_order_relaxed);
  responses_.add(network_.loop().now(), d.src.addr, d.payload);

  // Group the flow by qname (§III-B): the DNS ID field is too narrow at
  // 100k pps, so the question name is the flow key. A DecodeView is a full
  // validation pass (all four sections, same rules as decode), so
  // `complete()` matches exactly what decode() used to accept — without
  // materializing the message.
  const dns::DecodeView v = dns::DecodeView::parse(d.payload);
  if (v.complete() && v.questions_parsed > 0) {
    char key_buf[dns::kMaxNameLength];
    const std::string_view key = v.qname.canonical_key_into(key_buf);
    std::uint64_t packed = 0;
    const auto it = match_key(key, packed) ? outstanding_.find(packed)
                                           : outstanding_.end();
    if (it != outstanding_.end()) {
      ++stats_.r2_matched;
      if (tracer_ != nullptr) {
        const std::uint64_t flow = util::Fnv1a{}.bytes(key).value();
        if (tracer_->marked(flow))
          tracer_->record(flow, obs::SpanPoint::kR2Received,
                          network_.loop().now(), d.src.addr.value());
      }
      clusters_.retire_answered(it->second.id);
      outstanding_.erase(it);
    } else {
      ++stats_.r2_unmatched;
    }
    return;
  }
  if (v.complete()) {
    // The paper's 494 unmatchable responses: no dns_question to group by.
    ++stats_.r2_empty_question;
    return;
  }
  // Header too mangled even to count a question; still an R2.
  ++stats_.r2_unmatched;
}

void Scanner::reap(bool final_sweep) {
  const net::SimTime now = network_.loop().now();
  for (auto it = outstanding_.begin(); it != outstanding_.end();) {
    if (final_sweep || now - it->second.sent >= config_.response_timeout) {
      if (config_.subdomain_reuse)
        clusters_.release_unanswered(it->second.id);
      it = outstanding_.erase(it);
      ++stats_.timeouts_reaped;
    } else {
      ++it;
    }
  }
  if (!sending_done_) {
    network_.loop().schedule_in(config_.reap_interval,
                                [this]() { reap(false); });
  }
}

void Scanner::maybe_finish() {
  if (finished_ || !sending_done_) return;
  finished_ = true;
  stats_.finished = network_.loop().now();
  network_.unbind(net::Endpoint{addr_, kProberPort});
  if (beacon_ != nullptr) {
    beacon_->probes_sent.store(stats_.q1_sent, std::memory_order_relaxed);
    beacon_->responses.store(stats_.r2_received, std::memory_order_relaxed);
    beacon_->done.store(1, std::memory_order_relaxed);
  }
  if (done_) done_();
}

}  // namespace orp::prober
