// The probing system of Fig. 2: a modified-ZMap-style scanner that walks the
// address space in cyclic-permutation order, skips the Table I exclusion
// list, paces itself, stamps each probe with a unique probe subdomain, and
// collects R2 responses — reusing the subdomains of unanswered probes so the
// authoritative server's zone rotations stay rare (§III-B).
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/codec.h"
#include "net/capture.h"
#include "net/reserved.h"
#include "net/transport.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "prober/permutation.h"
#include "prober/r2_store.h"
#include "prober/rate_limiter.h"
#include "util/strings.h"
#include "zone/cluster.h"

namespace orp::prober {

struct ScanConfig {
  std::uint64_t seed = 2018;
  double rate_pps = 100000.0;       // paper: 100k pps
  std::uint64_t batch_size = 64;    // probes per send event
  /// Number of raw permutation elements to consume. The full cycle is
  /// kPermutationPrime - 1; a scaled scan consumes the first (cycle/scale).
  std::uint64_t raw_steps = kPermutationPrime - 1;
  /// Absolute permutation index at which this scanner starts. A sharded
  /// campaign gives shard i the slice [i*N/S, (i+1)*N/S) of the one global
  /// permutation: first_index = i*N/S and raw_steps = the slice length.
  std::uint64_t first_index = 0;
  net::SimTime response_timeout = net::SimTime::seconds(30.0);
  net::SimTime reap_interval = net::SimTime::seconds(10.0);
  net::SimTime rotate_pause;        // send pause per zone rotation
  dns::RRType qtype = dns::RRType::kA;
  /// §III-B subdomain reuse. Disabling it burns a fresh name per probe —
  /// the ~800-zone-load regime the paper engineered away (ablation knob).
  bool subdomain_reuse = true;
};

struct ScanStats {
  std::uint64_t q1_sent = 0;            // probes sent (Table II "Q1")
  std::uint64_t skipped_reserved = 0;   // Table I exclusions hit
  std::uint64_t skipped_overflow = 0;   // raw permutation values >= 2^32
  std::uint64_t r2_received = 0;        // responses (Table II "R2")
  std::uint64_t r2_matched = 0;         // grouped to a probe by qname
  std::uint64_t r2_empty_question = 0;  // §IV-B4 population
  std::uint64_t r2_unmatched = 0;       // question present but not ours
  std::uint64_t timeouts_reaped = 0;
  net::SimTime started;
  net::SimTime finished;

  net::SimTime duration() const noexcept { return finished - started; }

  /// Merge another shard's counters into this one. Counters sum; the time
  /// window is the union (shards run concurrently over the same campaign).
  ScanStats& operator+=(const ScanStats& o) noexcept {
    q1_sent += o.q1_sent;
    skipped_reserved += o.skipped_reserved;
    skipped_overflow += o.skipped_overflow;
    r2_received += o.r2_received;
    r2_matched += o.r2_matched;
    r2_empty_question += o.r2_empty_question;
    r2_unmatched += o.r2_unmatched;
    timeouts_reaped += o.timeouts_reaped;
    started = std::min(started, o.started);
    finished = std::max(finished, o.finished);
    return *this;
  }
};

class Scanner {
 public:
  using DoneCallback = std::function<void()>;
  /// Invoked when the subdomain planner rotates to a new cluster; the
  /// pipeline wires this to AuthServer::load_cluster.
  using RotateCallback = std::function<void(std::uint32_t cluster)>;

  /// `codec_scratch`, when given, is the per-shard encode buffer probes are
  /// built in (shards are single-threaded, so sharing it is race-free); the
  /// scanner falls back to an owned buffer otherwise.
  Scanner(net::Network& network, net::IPv4Addr prober_addr, ScanConfig config,
          zone::SubdomainScheme scheme,
          dns::EncodeBuffer* codec_scratch = nullptr);

  void set_rotate_callback(RotateCallback cb) { on_rotate_ = std::move(cb); }

  /// Begin scanning; `done` fires after the last probe's response window.
  void start(DoneCallback done);

  /// Attach observability sinks (either may be null). The tracer samples
  /// flows by *global* permutation index, so every shard layout traces the
  /// same flows; the beacon is a relaxed-atomic progress mirror polled by a
  /// real-time reporter thread. Neither touches simulated time or RNG state.
  void set_obs(obs::FlowTracer* tracer, obs::ShardBeacon* beacon) noexcept {
    tracer_ = tracer;
    beacon_ = beacon;
  }

  const ScanStats& stats() const noexcept { return stats_; }
  const R2Store& responses() const noexcept { return responses_; }
  const zone::ClusterManager& clusters() const noexcept { return clusters_; }
  const RateLimiter& limiter() const noexcept { return limiter_; }
  /// High-water mark of the outstanding-probe table (Table II's in-flight
  /// window, surfaced for the metrics layer).
  std::uint64_t peak_outstanding() const noexcept { return peak_outstanding_; }
  net::IPv4Addr address() const noexcept { return addr_; }

  /// Release response storage once analysis has consumed it.
  R2Store take_responses() { return std::move(responses_); }

 private:
  void send_batch();
  void send_one_probe(net::IPv4Addr target);
  void on_datagram(const net::Datagram& d);
  void reap(bool final_sweep);
  void maybe_finish();

  net::Network& network_;
  net::IPv4Addr addr_;
  ScanConfig config_;
  dns::EncodeBuffer own_scratch_;
  dns::EncodeBuffer& codec_scratch_;
  zone::ClusterManager clusters_;
  CyclicPermutation permutation_;
  RateLimiter limiter_;
  RotateCallback on_rotate_;
  DoneCallback done_;

  struct Outstanding {
    zone::SubdomainId id;
    net::SimTime sent;
  };
  // qname key; heterogeneous hash so R2 lookups probe with a stack-buffer
  // string_view instead of allocating a key per response.
  std::unordered_map<std::string, Outstanding, util::TransparentStringHash,
                     std::equal_to<>>
      outstanding_;

  std::uint64_t raw_consumed_ = 0;
  std::uint16_t next_txn_ = 1;
  bool sending_done_ = false;
  bool finished_ = false;
  ScanStats stats_;
  R2Store responses_;
  obs::FlowTracer* tracer_ = nullptr;
  obs::ShardBeacon* beacon_ = nullptr;
  std::uint64_t peak_outstanding_ = 0;
};

}  // namespace orp::prober
