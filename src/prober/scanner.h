// The probing system of Fig. 2: a modified-ZMap-style scanner that walks the
// address space in cyclic-permutation order, skips the Table I exclusion
// list, paces itself, stamps each probe with a unique probe subdomain, and
// collects R2 responses — reusing the subdomains of unanswered probes so the
// authoritative server's zone rotations stay rare (§III-B).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <new>
#include <span>
#include <utility>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "dns/codec.h"
#include "net/capture.h"
#include "net/reserved.h"
#include "net/transport.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "prober/permutation.h"
#include "prober/r2_store.h"
#include "prober/rate_limiter.h"
#include "zone/cluster.h"

namespace orp::prober {

/// Renders the canonical key ("or012.0034567.<sld>", lowercased, no
/// trailing dot) of a packed SubdomainId into caller storage, byte-for-byte
/// identical to `scheme.qname(id).canonical_key()` — without constructing
/// the DnsName. The scanner's outstanding-probe map hashes through this, so
/// a 64-bit id key reproduces the exact hash sequence (and therefore bucket
/// layout and iteration order) of the string-keyed map it replaced.
struct QnameRenderer {
  std::string suffix;  // canonical bytes after the two numeric labels
  std::string_view render(std::uint64_t key, std::span<char> buf) const noexcept;
};

struct QnameKeyHash;

}  // namespace orp::prober

#ifdef __GLIBCXX__
namespace std {
/// Tell libstdc++ the qname hasher is *not* cheap (it renders ~26 canonical
/// bytes and murmurs them), so the hashtable caches each node's hash code
/// and erase/rehash skip the re-render. Cached codes change node size only —
/// hash values, bucket counts, and therefore iteration order are untouched,
/// which the reap sweep's digest-visible release order depends on.
template <>
struct __is_fast_hash<orp::prober::QnameKeyHash> : false_type {};
}  // namespace std
#endif

namespace orp::prober {

/// Intrusive same-size freelist for hash-map nodes. The outstanding-probe
/// map churns one node per probe (3.7B insert/erase pairs at paper scale);
/// recycling nodes through this pool removes that malloc/free traffic. Freed
/// nodes store the next-pointer in their own bytes, so the pool itself never
/// allocates. Node *addresses* do not feed libstdc++'s bucket placement or
/// iteration order, so pooling is invisible to the reap sweep's release
/// order (which the capture digest depends on).
class NodePool {
 public:
  NodePool() = default;
  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;
  ~NodePool() {
    while (head_ != nullptr) {
      void* next = *static_cast<void**>(head_);
      ::operator delete(head_);
      head_ = next;
    }
  }

  void* take(std::size_t bytes) {
    if (bytes == size_ && head_ != nullptr) {
      void* p = head_;
      head_ = *static_cast<void**>(p);
      return p;
    }
    if (size_ == 0 && bytes >= sizeof(void*)) size_ = bytes;
    return ::operator new(bytes);
  }

  void give(void* p, std::size_t bytes) noexcept {
    if (bytes != size_) {
      ::operator delete(p);
      return;
    }
    *static_cast<void**>(p) = head_;
    head_ = p;
  }

 private:
  void* head_ = nullptr;     // singly linked through the freed nodes
  std::size_t size_ = 0;     // locked to the first pooled allocation size
};

/// Minimal allocator routing single-element (node) allocations through a
/// NodePool; array allocations (the map's bucket tables) stay on operator
/// new. Equality compares the pool pointer, as containers require.
template <typename T>
struct PoolAllocator {
  using value_type = T;

  NodePool* pool = nullptr;

  PoolAllocator() = default;
  explicit PoolAllocator(NodePool* p) noexcept : pool(p) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& o) noexcept : pool(o.pool) {}

  T* allocate(std::size_t n) {
    if (n == 1 && pool != nullptr)
      return static_cast<T*>(pool->take(sizeof(T)));
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (n == 1 && pool != nullptr)
      pool->give(p, sizeof(T));
    else
      ::operator delete(p);
  }

  template <typename U>
  friend bool operator==(const PoolAllocator& a,
                         const PoolAllocator<U>& b) noexcept {
    return a.pool == b.pool;
  }
};

/// std::hash<std::string_view> over the rendered canonical key: the same
/// value util::TransparentStringHash produced for the string-keyed map.
struct QnameKeyHash {
  const QnameRenderer* renderer = nullptr;
  std::size_t operator()(std::uint64_t key) const noexcept {
    char buf[dns::kMaxNameLength + 32];
    return std::hash<std::string_view>{}(renderer->render(key, buf));
  }
};

struct ScanConfig {
  std::uint64_t seed = 2018;
  double rate_pps = 100000.0;       // paper: 100k pps
  std::uint64_t batch_size = 64;    // probes per send event
  /// Number of raw permutation elements to consume. The full cycle is
  /// kPermutationPrime - 1; a scaled scan consumes the first (cycle/scale).
  std::uint64_t raw_steps = kPermutationPrime - 1;
  /// Absolute permutation index at which this scanner starts. A sharded
  /// campaign gives shard i the slice [i*N/S, (i+1)*N/S) of the one global
  /// permutation: first_index = i*N/S and raw_steps = the slice length.
  std::uint64_t first_index = 0;
  net::SimTime response_timeout = net::SimTime::seconds(30.0);
  net::SimTime reap_interval = net::SimTime::seconds(10.0);
  net::SimTime rotate_pause;        // send pause per zone rotation
  dns::RRType qtype = dns::RRType::kA;
  /// §III-B subdomain reuse. Disabling it burns a fresh name per probe —
  /// the ~800-zone-load regime the paper engineered away (ablation knob).
  bool subdomain_reuse = true;
};

struct ScanStats {
  std::uint64_t q1_sent = 0;            // probes sent (Table II "Q1")
  std::uint64_t skipped_reserved = 0;   // Table I exclusions hit
  std::uint64_t skipped_overflow = 0;   // raw permutation values >= 2^32
  std::uint64_t r2_received = 0;        // responses (Table II "R2")
  std::uint64_t r2_matched = 0;         // grouped to a probe by qname
  std::uint64_t r2_empty_question = 0;  // §IV-B4 population
  std::uint64_t r2_unmatched = 0;       // question present but not ours
  std::uint64_t timeouts_reaped = 0;
  net::SimTime started;
  net::SimTime finished;

  net::SimTime duration() const noexcept { return finished - started; }

  /// Merge another shard's counters into this one. Counters sum; the time
  /// window is the union (shards run concurrently over the same campaign).
  ScanStats& operator+=(const ScanStats& o) noexcept {
    q1_sent += o.q1_sent;
    skipped_reserved += o.skipped_reserved;
    skipped_overflow += o.skipped_overflow;
    r2_received += o.r2_received;
    r2_matched += o.r2_matched;
    r2_empty_question += o.r2_empty_question;
    r2_unmatched += o.r2_unmatched;
    timeouts_reaped += o.timeouts_reaped;
    started = std::min(started, o.started);
    finished = std::max(finished, o.finished);
    return *this;
  }
};

class Scanner {
 public:
  using DoneCallback = std::function<void()>;
  /// Invoked when the subdomain planner rotates to a new cluster; the
  /// pipeline wires this to AuthServer::load_cluster.
  using RotateCallback = std::function<void(std::uint32_t cluster)>;

  /// `codec_scratch`, when given, is the per-shard encode buffer probes are
  /// built in (shards are single-threaded, so sharing it is race-free); the
  /// scanner falls back to an owned buffer otherwise.
  Scanner(net::Network& network, net::IPv4Addr prober_addr, ScanConfig config,
          zone::SubdomainScheme scheme,
          dns::EncodeBuffer* codec_scratch = nullptr);

  void set_rotate_callback(RotateCallback cb) { on_rotate_ = std::move(cb); }

  /// Begin scanning; `done` fires after the last probe's response window.
  void start(DoneCallback done);

  /// Attach observability sinks (either may be null). The tracer samples
  /// flows by *global* permutation index, so every shard layout traces the
  /// same flows; the beacon is a relaxed-atomic progress mirror polled by a
  /// real-time reporter thread. Neither touches simulated time or RNG state.
  void set_obs(obs::FlowTracer* tracer, obs::ShardBeacon* beacon) noexcept {
    tracer_ = tracer;
    beacon_ = beacon;
  }

  const ScanStats& stats() const noexcept { return stats_; }
  const R2Store& responses() const noexcept { return responses_; }
  const zone::ClusterManager& clusters() const noexcept { return clusters_; }
  const RateLimiter& limiter() const noexcept { return limiter_; }
  /// High-water mark of the outstanding-probe table (Table II's in-flight
  /// window, surfaced for the metrics layer).
  std::uint64_t peak_outstanding() const noexcept { return peak_outstanding_; }
  net::IPv4Addr address() const noexcept { return addr_; }

  /// Release response storage once analysis has consumed it.
  R2Store take_responses() { return std::move(responses_); }

  /// Pre-size the R2 record list from a campaign-plan estimate of how many
  /// responders this shard will hear from.
  void reserve_responses(std::size_t n) { responses_.reserve(n); }

 private:
  void send_batch();
  void send_one_probe(net::IPv4Addr target);
  void flush_pending();
  void on_datagram(const net::Datagram& d);
  void on_batch(const net::DatagramBatch& b);
  /// Strict probe-key recognition: parse `key` (a response's canonical
  /// qname) into a packed SubdomainId and require that re-rendering it
  /// reproduces `key` exactly. Accepts precisely the set of keys the send
  /// path can have inserted — the same strings the old string-keyed map
  /// matched by equality.
  bool match_key(std::string_view key, std::uint64_t& packed) const;
  void reap(bool final_sweep);
  void maybe_finish();

  static constexpr std::uint64_t pack(zone::SubdomainId id) noexcept {
    return (std::uint64_t{id.cluster} << 32) | id.index;
  }
  static constexpr zone::SubdomainId unpack(std::uint64_t key) noexcept {
    return zone::SubdomainId{static_cast<std::uint32_t>(key >> 32),
                             static_cast<std::uint32_t>(key)};
  }

  net::Network& network_;
  net::IPv4Addr addr_;
  ScanConfig config_;
  dns::EncodeBuffer own_scratch_;
  dns::EncodeBuffer& codec_scratch_;
  zone::ClusterManager clusters_;
  CyclicPermutation permutation_;
  RateLimiter limiter_;
  RotateCallback on_rotate_;
  DoneCallback done_;

  struct Outstanding {
    zone::SubdomainId id;
    net::SimTime sent;
  };
  // Packed-id key hashed through the canonical-key renderer. Constructed
  // with bucket_count 0 + the stateful hasher, which libstdc++ lays out
  // exactly like the default-constructed string map — so replacing the
  // string keys changes no bucket evolution, no rehash point, and no
  // iteration order (the reap sweep's release order feeds subdomain reuse
  // and through it the Q1 qname stream and capture digest).
  // Declared before the map: destruction runs in reverse, so the map's
  // nodes return to the pool before the pool frees them.
  NodePool node_pool_;
  QnameRenderer renderer_;
  std::unordered_map<std::uint64_t, Outstanding, QnameKeyHash,
                     std::equal_to<std::uint64_t>,
                     PoolAllocator<std::pair<const std::uint64_t, Outstanding>>>
      outstanding_;

  // Pre-encoded probe template (txn 0, subdomain or000.0000000): per probe
  // only the transaction id and the two fixed-width digit runs are patched.
  // Ids outside the template's widths (cluster >= 1000, index >= 10^7) take
  // the full make_query/encode path instead.
  std::vector<std::uint8_t> template_;
  bool template_ok_ = false;

  // Batched-send staging: probe wire bytes accumulate here (offsets, not
  // pointers — the arena reallocates as it grows) and leave as one
  // Network::send_batch call per send event.
  std::vector<std::uint8_t> pending_bytes_;
  std::vector<std::uint32_t> pending_off_;
  std::vector<std::uint32_t> pending_len_;
  std::vector<net::IPv4Addr> pending_dst_;
  std::vector<net::PacketView> pending_views_;

  std::uint64_t raw_consumed_ = 0;
  std::uint16_t next_txn_ = 1;
  bool sending_done_ = false;
  bool finished_ = false;
  ScanStats stats_;
  R2Store responses_;
  obs::FlowTracer* tracer_ = nullptr;
  obs::ShardBeacon* beacon_ = nullptr;
  std::uint64_t peak_outstanding_ = 0;
};

}  // namespace orp::prober
