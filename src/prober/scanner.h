// The probing system of Fig. 2: a modified-ZMap-style scanner that walks the
// address space in cyclic-permutation order, skips the Table I exclusion
// list, paces itself, stamps each probe with a unique probe subdomain, and
// collects R2 responses — reusing the subdomains of unanswered probes so the
// authoritative server's zone rotations stay rare (§III-B).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <utility>
#include <string>
#include <string_view>
#include <vector>

#include "dns/codec.h"
#include "dns/wire_template.h"
#include "net/capture.h"
#include "net/reserved.h"
#include "net/stream.h"
#include "net/transport.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "prober/outstanding_table.h"
#include "prober/permutation.h"
#include "prober/r2_sink.h"
#include "prober/r2_store.h"
#include "prober/rate_limiter.h"
#include "zone/cluster.h"

namespace orp::prober {

/// Renders the canonical key ("or012.0034567.<sld>", lowercased, no
/// trailing dot) of a packed SubdomainId into caller storage, byte-for-byte
/// identical to `scheme.qname(id).canonical_key()` — without constructing
/// the DnsName. The scanner's outstanding-probe map hashes through this, so
/// a 64-bit id key reproduces the exact hash sequence (and therefore bucket
/// layout and iteration order) of the string-keyed map it replaced.
struct QnameRenderer {
  std::string suffix;  // canonical bytes after the two numeric labels
  std::string_view render(std::uint64_t key, std::span<char> buf) const noexcept;

  /// The exact value std::hash<string_view> gives for render(key) — the
  /// bucket-placement hash of the outstanding-probe map. For in-width ids
  /// the value is produced without rendering: only the first 16 canonical
  /// bytes vary per id (two digit runs patched into `hash_proto_`), so the
  /// remaining 8-byte chunks and the tail are folded as precomputed
  /// constants and the per-key cost is two full chunk mixes. The plan is
  /// differentially verified against std::hash at prepare time; any
  /// mismatch (exotic stdlib, short suffix) falls back to render-and-hash.
  std::size_t hash(std::uint64_t key) const noexcept;

  /// Build + verify the fast-hash plan; call after `suffix` is set.
  void prepare_hash_plan();

 private:
  std::size_t hash_slow(std::uint64_t key) const noexcept;

  unsigned char hash_proto_[16] = {};       // canonical bytes 0..15 of id 0
  std::vector<std::uint64_t> hash_folds_;   // chunks 16.. pre-mixed
  std::uint64_t hash_tail_ = 0;             // packed trailing len%8 bytes
  std::uint64_t hash_h0_ = 0;               // seed ^ (len * m)
  bool hash_has_tail_ = false;
  bool hash_fast_ok_ = false;
};

/// std::hash<std::string_view> over the rendered canonical key: the same
/// value util::TransparentStringHash produced for the string-keyed map.
struct QnameKeyHash {
  const QnameRenderer* renderer = nullptr;
  std::size_t operator()(std::uint64_t key) const noexcept {
    return renderer->hash(key);
  }
};

struct ScanConfig {
  std::uint64_t seed = 2018;
  double rate_pps = 100000.0;       // paper: 100k pps
  std::uint64_t batch_size = 64;    // probes per send event
  /// Number of raw permutation elements to consume. The full cycle is
  /// kPermutationPrime - 1; a scaled scan consumes the first (cycle/scale).
  std::uint64_t raw_steps = kPermutationPrime - 1;
  /// Absolute permutation index at which this scanner starts. A sharded
  /// campaign gives shard i the slice [i*N/S, (i+1)*N/S) of the one global
  /// permutation: first_index = i*N/S and raw_steps = the slice length.
  std::uint64_t first_index = 0;
  net::SimTime response_timeout = net::SimTime::seconds(30.0);
  net::SimTime reap_interval = net::SimTime::seconds(10.0);
  net::SimTime rotate_pause;        // send pause per zone rotation
  dns::RRType qtype = dns::RRType::kA;
  /// §III-B subdomain reuse. Disabling it burns a fresh name per probe —
  /// the ~800-zone-load regime the paper engineered away (ablation knob).
  bool subdomain_reuse = true;
  /// Stamp probes from a pre-encoded dns::WireTemplate instead of running
  /// the full encoder per probe. Either setting yields bit-identical wire
  /// bytes (the template is differentially verified against the encoder);
  /// the determinism suite sweeps this knob.
  bool wire_templates = true;
  /// Retry TC=1 answers over TCP (RFC 7766 fallback). Off by default — the
  /// pinned measurement campaign is UDP-only, and with the knob off the
  /// scanner never touches the stream transport at all. When on, a matched
  /// truncated answer defers classification until the retry settles: the
  /// TCP answer wins; on failure (silent SYN loss, refusal, reset, or a
  /// connection that never answers) the held truncated UDP answer is
  /// classified instead. Exactly one classification per flow either way.
  bool tcp_fallback = false;
  /// Give-up window per TCP retry, covering both the silent-SYN-loss case
  /// and an established connection that never answers. Shorter than
  /// response_timeout so retries settle within the scan's final drain.
  net::SimTime tcp_timeout = net::SimTime::seconds(10.0);
};

struct ScanStats {
  std::uint64_t q1_sent = 0;            // probes sent (Table II "Q1")
  std::uint64_t skipped_reserved = 0;   // Table I exclusions hit
  std::uint64_t skipped_overflow = 0;   // raw permutation values >= 2^32
  std::uint64_t r2_received = 0;        // responses (Table II "R2")
  std::uint64_t r2_matched = 0;         // grouped to a probe by qname
  std::uint64_t r2_empty_question = 0;  // §IV-B4 population
  std::uint64_t r2_unmatched = 0;       // question present but not ours
  std::uint64_t timeouts_reaped = 0;
  std::uint64_t template_stamped = 0;   // probes emitted via WireTemplate
  std::uint64_t template_fallback = 0;  // probes through the full encoder
  std::uint64_t tc_seen = 0;            // matched answers carrying TC=1
  std::uint64_t tcp_retries = 0;        // retry connections opened
  std::uint64_t tcp_answers = 0;        // answers received over TCP
  std::uint64_t tcp_failures = 0;       // retries settled on the UDP answer
  std::uint64_t tcp_duplicate_r2 = 0;   // UDP dups racing a pending retry
  /// Wire bytes the scanner's TCP client put on / took off the wire
  /// (per-connection totals banked as each retry settles). Failure paths
  /// where the peer tore the connection down first under-count the lost
  /// handshake — a conservative floor on the attacker-side TCP cost the
  /// amplification study reports.
  std::uint64_t tcp_bytes_sent = 0;
  std::uint64_t tcp_bytes_received = 0;
  net::SimTime started;
  net::SimTime finished;

  net::SimTime duration() const noexcept { return finished - started; }

  /// Merge another shard's counters into this one. Counters sum; the time
  /// window is the union (shards run concurrently over the same campaign).
  ScanStats& operator+=(const ScanStats& o) noexcept {
    q1_sent += o.q1_sent;
    skipped_reserved += o.skipped_reserved;
    skipped_overflow += o.skipped_overflow;
    r2_received += o.r2_received;
    r2_matched += o.r2_matched;
    r2_empty_question += o.r2_empty_question;
    r2_unmatched += o.r2_unmatched;
    timeouts_reaped += o.timeouts_reaped;
    template_stamped += o.template_stamped;
    template_fallback += o.template_fallback;
    tc_seen += o.tc_seen;
    tcp_retries += o.tcp_retries;
    tcp_answers += o.tcp_answers;
    tcp_failures += o.tcp_failures;
    tcp_duplicate_r2 += o.tcp_duplicate_r2;
    tcp_bytes_sent += o.tcp_bytes_sent;
    tcp_bytes_received += o.tcp_bytes_received;
    started = std::min(started, o.started);
    finished = std::max(finished, o.finished);
    return *this;
  }
};

class Scanner : private net::StreamHandler {
 public:
  using DoneCallback = std::function<void()>;
  /// Invoked when the subdomain planner rotates to a new cluster; the
  /// pipeline wires this to AuthServer::load_cluster.
  using RotateCallback = std::function<void(std::uint32_t cluster)>;

  /// `codec_scratch`, when given, is the per-shard encode buffer probes are
  /// built in (shards are single-threaded, so sharing it is race-free); the
  /// scanner falls back to an owned buffer otherwise.
  Scanner(net::Network& network, net::IPv4Addr prober_addr, ScanConfig config,
          zone::SubdomainScheme scheme,
          dns::EncodeBuffer* codec_scratch = nullptr);

  void set_rotate_callback(RotateCallback cb) { on_rotate_ = std::move(cb); }

  /// Begin scanning; `done` fires after the last probe's response window.
  void start(DoneCallback done);

  /// Attach observability sinks (either may be null). The tracer samples
  /// flows by *global* permutation index, so every shard layout traces the
  /// same flows; the beacon is a relaxed-atomic progress mirror polled by a
  /// real-time reporter thread. Neither touches simulated time or RNG state.
  void set_obs(obs::FlowTracer* tracer, obs::ShardBeacon* beacon) noexcept {
    tracer_ = tracer;
    beacon_ = beacon;
    // Prime the sampling cursor: the first multiple of sample_every at or
    // after this shard's slice start. The send path then pays one compare
    // per probe instead of one division (see send_one_probe).
    if (tracer != nullptr && tracer->enabled()) {
      const std::uint64_t every = tracer->sample_every();
      next_trace_index_ = (config_.first_index + every - 1) / every * every;
    }
  }

  /// Attach a capture-time R2 consumer (may be null). The sink sees every
  /// response payload in arrival order, before any retention decision — the
  /// streaming analyzer classifies and folds it into the shard's partial
  /// tables right here, so the campaign needs no post-hoc view pass.
  void set_r2_sink(R2Sink* sink) noexcept { r2_sink_ = sink; }

  /// Whether R2 payloads are retained in the R2Store (default: yes). The
  /// streaming pipeline turns retention off — the sink has already consumed
  /// each payload — collapsing the scanner's O(responses) memory to O(1).
  /// Grouping stats (matched/unmatched/empty-question) are unaffected.
  void set_retain_responses(bool retain) noexcept { retain_responses_ = retain; }

  const ScanStats& stats() const noexcept { return stats_; }
  const R2Store& responses() const noexcept { return responses_; }
  const zone::ClusterManager& clusters() const noexcept { return clusters_; }
  const RateLimiter& limiter() const noexcept { return limiter_; }
  /// High-water mark of the outstanding-probe table (Table II's in-flight
  /// window, surfaced for the metrics layer).
  std::uint64_t peak_outstanding() const noexcept { return peak_outstanding_; }
  net::IPv4Addr address() const noexcept { return addr_; }

  /// Release response storage once analysis has consumed it.
  R2Store take_responses() { return std::move(responses_); }

  /// Pre-size the R2 record list from a campaign-plan estimate of how many
  /// responders this shard will hear from.
  void reserve_responses(std::size_t n) { responses_.reserve(n); }

 private:
  void send_batch();
  void send_one_probe(net::IPv4Addr target);
  void flush_pending();
  void on_datagram(const net::Datagram& d);
  void on_batch(const net::DatagramBatch& b);
  /// Strict probe-key recognition: parse `key` (a response's canonical
  /// qname) into a packed SubdomainId and require that re-rendering it
  /// reproduces `key` exactly. Accepts precisely the set of keys the send
  /// path can have inserted — the same strings the old string-keyed map
  /// matched by equality.
  bool match_key(std::string_view key, std::uint64_t& packed) const;
  void reap(bool final_sweep);
  void maybe_finish();

  // --- DoTCP fallback (config_.tcp_fallback; dead code otherwise) ---
  /// Receive path with retry deferral: a matched TC=1 answer holds its
  /// payload and opens a TCP retry instead of classifying; everything else
  /// behaves exactly like the default path.
  void on_datagram_fallback(const net::Datagram& d);
  /// Hand one settled response to retention + the streaming sink — the
  /// single classification point of a flow in fallback mode.
  void classify(net::IPv4Addr from, std::span<const std::uint8_t> payload);
  void start_tcp_retry(std::uint64_t packed, net::IPv4Addr target,
                       const net::PayloadRef& held);
  void tcp_retry_failed(std::uint32_t slot);
  void finish_retry(std::uint32_t slot);
  void on_tcp_timeout(std::uint32_t slot, std::uint32_t gen);
  std::uint32_t find_retry(net::ConnId c) const noexcept;
  std::uint32_t find_retry_by_key(std::uint64_t packed) const noexcept;
  std::uint64_t flow_of(std::uint64_t packed) const noexcept;
  // StreamHandler (client side of the retries).
  void on_established(net::ConnId c) override;
  void on_message(net::ConnId c, net::SimTime at,
                  const net::PayloadRef& msg) override;
  void on_closed(net::ConnId c, bool reset) override;

  static constexpr std::uint64_t pack(zone::SubdomainId id) noexcept {
    return (std::uint64_t{id.cluster} << 32) | id.index;
  }
  static constexpr zone::SubdomainId unpack(std::uint64_t key) noexcept {
    return zone::SubdomainId{static_cast<std::uint32_t>(key >> 32),
                             static_cast<std::uint32_t>(key)};
  }

  net::Network& network_;
  net::IPv4Addr addr_;
  ScanConfig config_;
  dns::EncodeBuffer own_scratch_;
  dns::EncodeBuffer& codec_scratch_;
  zone::ClusterManager clusters_;
  CyclicPermutation permutation_;
  RateLimiter limiter_;
  RotateCallback on_rotate_;
  DoneCallback done_;

  // Packed-id keys hashed through the canonical-key renderer, stored in the
  // slab-backed replica of libstdc++'s hashtable (see outstanding_table.h):
  // same hash values, same bucket evolution, same iteration order as the
  // std::unordered_map it replaced — the reap sweep's release order feeds
  // subdomain reuse and through it the Q1 qname stream and capture digest.
  QnameRenderer renderer_;
  OutstandingTable<QnameKeyHash> outstanding_;

  // Pre-encoded probe template: per probe only the transaction id and the
  // two fixed-width digit runs are patched. Ids outside the template's
  // widths (cluster >= 1000, index >= 10^7) take the full
  // make_query/encode path instead, producing identical bytes.
  dns::WireTemplate probe_tpl_;

  // Batched-send staging: probe wire bytes accumulate here (offsets, not
  // pointers — the arena reallocates as it grows) and leave as one
  // Network::send_batch call per send event.
  std::vector<std::uint8_t> pending_bytes_;
  std::vector<std::uint32_t> pending_off_;
  std::vector<std::uint32_t> pending_len_;
  std::vector<net::IPv4Addr> pending_dst_;
  std::vector<net::PacketView> pending_views_;

  // Pooled retry slots: a free list plus linear scans (the active set is
  // the handful of in-flight retries, and the steady-state path must not
  // touch an allocating map). Slot generations make stale timeout events
  // inert, mirroring StreamNet's connection ids.
  struct TcpRetry {
    std::uint64_t packed = 0;         // the flow's SubdomainId key
    net::IPv4Addr target;             // the truncating resolver
    net::ConnId conn = net::kNilConn;
    net::PayloadRef held;             // the TC=1 UDP answer, kept pooled
    std::uint32_t gen = 0;
    bool active = false;
  };
  static constexpr std::uint32_t kNilSlot = 0xFFFFFFFFu;
  std::vector<TcpRetry> retries_;
  std::vector<std::uint32_t> retry_free_;
  std::size_t retries_active_ = 0;
  std::uint16_t next_tcp_port_ = 49152;  // ephemeral client ports
  bool final_swept_ = false;

  std::uint64_t raw_consumed_ = 0;
  std::uint16_t next_txn_ = 1;
  bool sending_done_ = false;
  bool finished_ = false;
  ScanStats stats_;
  R2Store responses_;
  R2Sink* r2_sink_ = nullptr;
  bool retain_responses_ = true;
  obs::FlowTracer* tracer_ = nullptr;
  /// Next global permutation index the tracer would sample — probes below
  /// it skip the sampling check with a single compare. Indexes only grow
  /// (raw steps are consumed in order), so the cursor re-arms by rounding
  /// the current index up to the next sample_every multiple.
  std::uint64_t next_trace_index_ = 0;
  obs::ShardBeacon* beacon_ = nullptr;
  std::uint64_t peak_outstanding_ = 0;
};

}  // namespace orp::prober
