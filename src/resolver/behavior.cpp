#include "resolver/behavior.h"

namespace orp::resolver {

std::string_view to_string(AnswerMode m) noexcept {
  switch (m) {
    case AnswerMode::kNone: return "none";
    case AnswerMode::kRecursive: return "recursive";
    case AnswerMode::kFixedIp: return "fixed-ip";
    case AnswerMode::kUrl: return "url";
    case AnswerMode::kGarbageString: return "garbage-string";
    case AnswerMode::kUndecodable: return "undecodable";
  }
  return "?";
}

}  // namespace orp::resolver
