// Behavior profiles for the open-resolver population.
//
// §IV of the paper is a taxonomy of how resolvers *actually* answer: honest
// recursion, recursion with mis-set RA/AA bits, refusals, server failures,
// fabricated ("manipulated") answers pointing at fixed/malicious/private
// addresses, URL and garbage-string answers, responses with no question
// section, and answers that do not decode at all. A BehaviorProfile is the
// machine-readable version of one taxon; the calibrated population is a
// multiset of profiles.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "dns/types.h"
#include "net/ipv4.h"
#include "net/sim_time.h"
#include "resolver/rrl.h"

namespace orp::resolver {

enum class AnswerMode : std::uint8_t {
  kNone = 0,        // respond without an answer section
  kRecursive,       // genuinely recurse; return the real result
  kFixedIp,         // fabricate a fixed A record (manipulation/redirect)
  kUrl,             // fabricate a CNAME-style name answer (Table VII "URL")
  kGarbageString,   // fabricate a TXT/garbage answer (Table VII "string")
  kUndecodable,     // emit an answer section that fails to decode (2013 N/A)
};

std::string_view to_string(AnswerMode m) noexcept;

struct BehaviorProfile {
  /// False models a host that is not an open resolver (or is firewalled):
  /// the probe simply never comes back. ~99.8% of the address space.
  bool respond = true;

  AnswerMode answer = AnswerMode::kRecursive;

  /// Header bits/fields stamped on R2 — *not* necessarily truthful, which is
  /// the paper's central observation (Tables IV-VI).
  bool ra = true;
  bool aa = false;
  dns::Rcode rcode = dns::Rcode::kNoError;

  /// Omit the question section from R2 (the 494 packets of §IV-B4).
  bool omit_question = false;

  /// Payloads for the fabricating modes.
  net::IPv4Addr fixed_answer;
  std::string text_answer;

  /// Number of parallel backend resolutions per client query (resolver
  /// farms / retry amplification). Calibrated so the fleet-wide Q2:R2 ratio
  /// matches Table II (~4.7 per answering resolver in 2018).
  int backend_fan = 1;

  /// Forwarder (CPE proxy): relay the query to `upstream` and pass the
  /// answer back, restamping the header per this profile.
  bool forwarder = false;
  net::IPv4Addr upstream;

  /// Local processing latency before the response leaves.
  net::SimTime response_delay = net::SimTime::millis(30);

  /// Response-rate limiting (disabled by default; see rrl.h). An operator
  /// mitigation, not a behavior the paper's population exhibits.
  RrlConfig rrl;

  /// DNSSEC-validation capability: sets the DO bit on upstream queries,
  /// which the authoritative server can count (the check-repeat-style
  /// validator census of §VI).
  bool dnssec_ok = false;

  /// Software banner served for CHAOS-class "version.bind" TXT queries
  /// (the fingerprinting surface Takano et al. surveyed; §VI). Empty =
  /// the query is REFUSED, as hardened deployments configure.
  std::string version;

  /// Server-side UDP response cap (bytes). Responses whose encoded form
  /// exceeds it are cut at the largest whole-record boundary with TC=1
  /// (dns::Truncator) — on top of the client's EDNS-advertised budget,
  /// which is honored either way. 0 = no server-side cap. This is the
  /// truncation knob of the DoTCP fallback study.
  std::uint16_t udp_limit = 0;

  /// Also serve DNS over TCP on port 53 (full answers, never truncated).
  /// Forwarder profiles ignore this — CPE proxies in the wild rarely
  /// listen on TCP, which is exactly what makes their truncated answers
  /// terminal.
  bool tcp = false;
};

}  // namespace orp::resolver
