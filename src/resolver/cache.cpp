#include "resolver/cache.h"

#include <algorithm>

namespace orp::resolver {

std::string DnsCache::key(const dns::DnsName& qname, dns::RRType qtype) {
  return qname.canonical_key() + "/" +
         std::to_string(static_cast<std::uint16_t>(qtype));
}

void DnsCache::put(const dns::DnsName& qname, dns::RRType qtype,
                   std::vector<dns::ResourceRecord> records, net::SimTime now) {
  if (capacity_ == 0) return;
  std::uint32_t min_ttl = ~std::uint32_t{0};
  for (const auto& rr : records) min_ttl = std::min(min_ttl, rr.ttl);
  if (records.empty()) min_ttl = 0;
  std::string k = key(qname, qtype);
  if (const auto it = entries_.find(k); it != entries_.end()) {
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
  }
  lru_.push_front(k);
  entries_.emplace(std::move(k),
                   Entry{std::move(records),
                         now + net::SimTime::seconds(min_ttl), lru_.begin()});
  ++stats_.insertions;
  evict_if_needed();
}

std::optional<std::vector<dns::ResourceRecord>> DnsCache::get(
    const dns::DnsName& qname, dns::RRType qtype, net::SimTime now) {
  const auto it = entries_.find(key(qname, qtype));
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  if (it->second.expires <= now) {
    ++stats_.expired;
    ++stats_.misses;
    lru_.erase(it->second.lru_it);
    entries_.erase(it);
    return std::nullopt;
  }
  ++stats_.hits;
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.records;
}

std::size_t DnsCache::purge_expired(net::SimTime now) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires <= now) {
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
      ++removed;
      ++stats_.expired;
    } else {
      ++it;
    }
  }
  return removed;
}

void DnsCache::evict_if_needed() {
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace orp::resolver
