// TTL-bounded DNS cache (RFC 1034 §5) with LRU eviction.
//
// The paper's probing methodology is built around defeating this exact
// component: every probe uses a never-before-seen qname, so a cache can
// never satisfy Q1 and every R2 reflects live resolver behavior. The cache
// still matters for the substrate: NS/glue caching is why real resolvers
// skip root/TLD on repeat business, and the examples demonstrate both the
// hit and the bypass.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/message.h"
#include "net/sim_time.h"

namespace orp::resolver {

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t expired = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
};

class DnsCache {
 public:
  explicit DnsCache(std::size_t capacity = 100000) : capacity_(capacity) {}

  /// Store records under (qname, qtype); entry expires at now + min TTL.
  void put(const dns::DnsName& qname, dns::RRType qtype,
           std::vector<dns::ResourceRecord> records, net::SimTime now);

  /// Lookup; expired entries are dropped lazily.
  std::optional<std::vector<dns::ResourceRecord>> get(const dns::DnsName& qname,
                                                      dns::RRType qtype,
                                                      net::SimTime now);

  /// Drop every expired entry eagerly; returns how many were removed.
  std::size_t purge_expired(net::SimTime now);

  std::size_t size() const noexcept { return entries_.size(); }
  std::size_t capacity() const noexcept { return capacity_; }
  const CacheStats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    std::vector<dns::ResourceRecord> records;
    net::SimTime expires;
    std::list<std::string>::iterator lru_it;
  };

  static std::string key(const dns::DnsName& qname, dns::RRType qtype);
  void evict_if_needed();

  std::size_t capacity_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  CacheStats stats_;
};

}  // namespace orp::resolver
