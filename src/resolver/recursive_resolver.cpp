#include "resolver/recursive_resolver.h"

#include <algorithm>

#include "dns/edns.h"

namespace orp::resolver {

struct IterativeEngine::Resolution
    : std::enable_shared_from_this<IterativeEngine::Resolution> {
  dns::DnsName qname;
  dns::RRType qtype = dns::RRType::kA;
  ResolutionCallback done;

  std::vector<net::IPv4Addr> servers;  // candidates for the current zone
  std::size_t server_index = 0;
  int referrals = 0;
  int retries = 0;
  int cname_chases = 0;
  std::uint16_t port = 0;
  std::uint16_t txn_id = 0;
  std::uint64_t attempt_id = 0;  // guards stale timeout events
  bool finished = false;
  bool tcp_fallback = false;  // retrying a truncated answer at max budget
};

IterativeEngine::IterativeEngine(net::Network& network, net::IPv4Addr host,
                                 EngineConfig config, std::uint64_t seed)
    : network_(network),
      host_(host),
      config_(std::move(config)),
      rng_(seed),
      cache_(/*capacity=*/4096) {}

IterativeEngine::~IterativeEngine() = default;

void IterativeEngine::resolve(const dns::DnsName& qname, dns::RRType qtype,
                              ResolutionCallback done) {
  auto res = std::make_shared<Resolution>();
  res->qname = qname;
  res->qtype = qtype;
  res->done = std::move(done);
  res->txn_id = static_cast<std::uint16_t>(rng_());

  const net::SimTime now = network_.loop().now();

  // Final-answer cache.
  if (auto cached = cache_.get(qname, qtype, now)) {
    ++cache_hits_;
    ResolutionOutcome outcome;
    outcome.success = true;
    outcome.rcode = dns::Rcode::kNoError;
    outcome.answers = *std::move(cached);
    res->done(outcome);
    return;
  }
  ++cache_bypasses_;

  // Deepest cached delegation wins; fall back to the root hints.
  for (std::size_t up = 0; up <= qname.label_count(); ++up) {
    const dns::DnsName zone = qname.parent(up);
    if (auto glue = cache_.get(zone, dns::RRType::kNS, now)) {
      for (const auto& rr : *glue) {
        if (rr.type != dns::RRType::kA) continue;
        if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata))
          res->servers.push_back(a->addr);
      }
      if (!res->servers.empty()) break;
    }
  }
  if (res->servers.empty()) res->servers = config_.hints.roots;
  if (res->servers.empty()) {
    finish(res, ResolutionOutcome{});  // no hints configured
    return;
  }

  // Bind an ephemeral port for this resolution's upstream traffic.
  res->port = next_port_++;
  if (next_port_ >= 60000) next_port_ = 20000;
  auto self = res;
  network_.bind(net::Endpoint{host_, res->port},
                [this, self](const net::Datagram& d) { on_response(self, d); });

  step(res);
}

void IterativeEngine::step(std::shared_ptr<Resolution> res) {
  if (res->finished) return;
  if (res->server_index >= res->servers.size()) {
    finish(res, ResolutionOutcome{});  // exhausted all servers: SERVFAIL
    return;
  }
  send_query(res, res->servers[res->server_index]);
}

void IterativeEngine::send_query(std::shared_ptr<Resolution> res,
                                 net::IPv4Addr server) {
  ++upstream_queries_;
  dns::Message q = dns::make_query(res->txn_id, res->qname, res->qtype);
  q.header.flags.rd = false;  // iterative
  if (res->tcp_fallback) {
    // "TCP" retry: a transport without the UDP size ceiling.
    dns::set_edns(q, dns::EdnsInfo{.udp_payload_size = 65535});
  } else if (config_.edns_payload_size != 0) {
    dns::set_edns(q, dns::EdnsInfo{.udp_payload_size =
                                       config_.edns_payload_size,
                                   .do_bit = config_.dnssec_ok});
  }
  network_.send(net::Datagram{net::Endpoint{host_, res->port},
                              net::Endpoint{server, net::kDnsPort},
                              dns::encode(q)});
  const std::uint64_t attempt = ++res->attempt_id;
  network_.loop().schedule_in(config_.query_timeout, [this, res, attempt]() {
    on_timeout(res, attempt);
  });
}

void IterativeEngine::on_timeout(std::shared_ptr<Resolution> res,
                                 std::uint64_t attempt_id) {
  if (res->finished || res->attempt_id != attempt_id) return;
  if (res->retries < config_.max_retries) {
    ++res->retries;
    send_query(res, res->servers[res->server_index]);
    return;
  }
  res->retries = 0;
  ++res->server_index;
  step(res);
}

void IterativeEngine::on_response(std::shared_ptr<Resolution> res,
                                  const net::Datagram& d) {
  if (res->finished) return;
  const auto decoded = dns::decode(d.payload);
  if (!decoded || decoded->header.id != res->txn_id) return;  // junk/spoof
  ++res->attempt_id;  // cancels the pending timeout

  const dns::Message& msg = *decoded;
  const net::SimTime now = network_.loop().now();

  // Truncated: the full answer did not fit our advertised budget. Fall back
  // to the size-unbounded transport once (TCP, in the real protocol).
  if (msg.header.flags.tc) {
    ++truncated_seen_;
    if (config_.retry_truncated && !res->tcp_fallback) {
      res->tcp_fallback = true;
      res->retries = 0;
      send_query(res, res->servers[res->server_index]);
      return;
    }
    // No fallback allowed: use whatever survived truncation.
  }

  // Authoritative or terminal answers.
  if (msg.has_answer()) {
    // CNAME chase: answer names another owner and lacks the requested type.
    const bool has_wanted = std::any_of(
        msg.answers.begin(), msg.answers.end(),
        [&](const dns::ResourceRecord& rr) { return rr.type == res->qtype; });
    if (!has_wanted && res->qtype != dns::RRType::kCNAME) {
      for (const auto& rr : msg.answers) {
        if (rr.type != dns::RRType::kCNAME) continue;
        const auto* cname = std::get_if<dns::NameRdata>(&rr.rdata);
        if (!cname || res->cname_chases >= 4) break;
        ++res->cname_chases;
        res->qname = cname->name;
        res->referrals = 0;
        res->server_index = 0;
        res->servers = config_.hints.roots;
        step(res);
        return;
      }
    }
    cache_.put(res->qname, res->qtype, msg.answers, now);
    ResolutionOutcome outcome;
    outcome.success = true;
    outcome.rcode = msg.header.flags.rcode;
    outcome.answers = msg.answers;
    finish(res, std::move(outcome));
    return;
  }

  // Referral: NS in authority with glue in additional.
  if (msg.header.flags.rcode == dns::Rcode::kNoError &&
      !msg.authority.empty()) {
    std::vector<net::IPv4Addr> next;
    dns::DnsName referred_zone;
    for (const auto& rr : msg.authority) {
      if (rr.type == dns::RRType::kNS) {
        referred_zone = rr.name;
        break;
      }
    }
    for (const auto& rr : msg.additional) {
      if (rr.type != dns::RRType::kA) continue;
      if (const auto* a = std::get_if<dns::ARdata>(&rr.rdata))
        next.push_back(a->addr);
    }
    if (!next.empty() && !referred_zone.is_root()) {
      if (++res->referrals > config_.max_referrals) {
        finish(res, ResolutionOutcome{});
        return;
      }
      // Cache the delegation (glue A records keyed by the referred zone).
      std::vector<dns::ResourceRecord> glue;
      for (const auto& rr : msg.additional)
        if (rr.type == dns::RRType::kA) glue.push_back(rr);
      cache_.put(referred_zone, dns::RRType::kNS, glue, now);
      res->servers = std::move(next);
      res->server_index = 0;
      res->retries = 0;
      step(res);
      return;
    }
  }

  // Authoritative NoError without data: terminal empty answer (NODATA).
  if (msg.header.flags.rcode == dns::Rcode::kNoError && msg.header.flags.aa) {
    ResolutionOutcome outcome;
    outcome.success = true;
    outcome.rcode = dns::Rcode::kNoError;
    finish(res, std::move(outcome));
    return;
  }

  // Terminal errors (NXDomain, Refused, ...): NXDomain is authoritative and
  // final; others make us try the next server for the zone.
  if (msg.header.flags.rcode == dns::Rcode::kNXDomain) {
    ResolutionOutcome outcome;
    outcome.success = false;
    outcome.rcode = dns::Rcode::kNXDomain;
    finish(res, std::move(outcome));
    return;
  }
  ++res->server_index;
  res->retries = 0;
  step(res);
}

void IterativeEngine::finish(std::shared_ptr<Resolution> res,
                             ResolutionOutcome outcome) {
  if (res->finished) return;
  res->finished = true;
  if (res->port != 0) network_.unbind(net::Endpoint{host_, res->port});
  res->done(outcome);
}

}  // namespace orp::resolver
