// A genuine iterative/recursive DNS resolver (RFC 1034 §5.3.3), the honest
// half of the open-resolver population and the reference implementation of
// Fig. 1: client query -> root referral -> TLD referral -> authoritative
// answer -> cached, RA=1 response.
//
// Asynchronous by construction: every network exchange is event-driven, so a
// resolver host costs nothing while idle and millions can coexist in one
// simulation.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "dns/builder.h"
#include "dns/codec.h"
#include "net/transport.h"
#include "resolver/cache.h"
#include "resolver/root_tld.h"
#include "util/rng.h"

namespace orp::resolver {

struct ResolutionOutcome {
  bool success = false;
  dns::Rcode rcode = dns::Rcode::kServFail;
  std::vector<dns::ResourceRecord> answers;
};

using ResolutionCallback = std::function<void(const ResolutionOutcome&)>;

struct EngineConfig {
  RootHints hints;
  int max_referrals = 16;        // chain-length guard
  int max_retries = 2;           // per-server retransmits
  net::SimTime query_timeout = net::SimTime::seconds(5.0);
  /// EDNS(0) UDP payload size advertised upstream; 0 disables EDNS and
  /// caps responses at the classic 512 bytes.
  std::uint16_t edns_payload_size = 4096;
  /// Set the DNSSEC-OK (DO) bit on upstream queries — the observable marker
  /// of a validation-capable resolver (Fukuda et al. / Yu et al., §VI).
  bool dnssec_ok = false;
  /// On a truncated (TC=1) response, retry the server once with the
  /// maximum buffer — the simulation's stand-in for TCP fallback.
  bool retry_truncated = true;
};

/// Performs iterative resolutions on behalf of one host. Shares a cache and
/// an ephemeral-port allocator across concurrent resolutions.
class IterativeEngine {
 public:
  IterativeEngine(net::Network& network, net::IPv4Addr host,
                  EngineConfig config, std::uint64_t seed);
  ~IterativeEngine();

  IterativeEngine(const IterativeEngine&) = delete;
  IterativeEngine& operator=(const IterativeEngine&) = delete;

  /// Resolve qname/qtype; the callback fires exactly once.
  void resolve(const dns::DnsName& qname, dns::RRType qtype,
               ResolutionCallback done);

  DnsCache& cache() noexcept { return cache_; }
  std::uint64_t upstream_queries() const noexcept { return upstream_queries_; }
  std::uint64_t truncated_seen() const noexcept { return truncated_seen_; }
  /// Resolutions answered straight from the final-answer cache.
  std::uint64_t cache_hits() const noexcept { return cache_hits_; }
  /// Resolutions that missed the final-answer cache and went to the network
  /// — for probe qnames this *confirms* the §III-B design goal that every
  /// unique subdomain bypasses resolver caches.
  std::uint64_t cache_bypasses() const noexcept { return cache_bypasses_; }

 private:
  struct Resolution;

  void step(std::shared_ptr<Resolution> res);
  void send_query(std::shared_ptr<Resolution> res, net::IPv4Addr server);
  void on_response(std::shared_ptr<Resolution> res, const net::Datagram& d);
  void on_timeout(std::shared_ptr<Resolution> res, std::uint64_t attempt_id);
  void finish(std::shared_ptr<Resolution> res, ResolutionOutcome outcome);

  net::Network& network_;
  net::IPv4Addr host_;
  EngineConfig config_;
  util::Rng rng_;
  DnsCache cache_;
  std::uint16_t next_port_ = 20000;
  std::uint64_t upstream_queries_ = 0;
  std::uint64_t truncated_seen_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_bypasses_ = 0;
};

}  // namespace orp::resolver
