#include "resolver/root_tld.h"

#include <algorithm>
#include <iterator>

#include "dns/builder.h"

namespace orp::resolver {
namespace {

// Addresses chosen to echo the real root/gTLD constellation.
constexpr net::IPv4Addr kRootAddrs[] = {
    net::IPv4Addr(198, 41, 0, 4),    // a.root-servers.net
    net::IPv4Addr(199, 9, 14, 201),  // b.root-servers.net
    net::IPv4Addr(192, 33, 4, 12),   // c.root-servers.net
    net::IPv4Addr(199, 7, 91, 13),   // d.root-servers.net
    net::IPv4Addr(192, 203, 230, 10),
    net::IPv4Addr(192, 5, 5, 241),
};
constexpr net::IPv4Addr kTldAddr(192, 5, 6, 30);  // a.gtld-servers.net

}  // namespace

ReferralServer::ReferralServer(net::Network& network, net::IPv4Addr addr,
                               dns::DnsName apex)
    : network_(network), addr_(addr), apex_(std::move(apex)) {
  network_.bind(net::Endpoint{addr_, net::kDnsPort},
                [this](const net::Datagram& d) { on_datagram(d); });
}

void ReferralServer::delegate(DelegationEntry entry) {
  delegations_.push_back(std::move(entry));
}

void ReferralServer::on_datagram(const net::Datagram& d) {
  ++queries_;
  const auto decoded = dns::decode(d.payload);
  if (!decoded || decoded->questions.empty()) return;  // drop junk
  const dns::Question& q = decoded->questions.front();

  dns::Message response;
  if (!q.qname.is_subdomain_of(apex_)) {
    response = dns::make_error_response(*decoded, dns::Rcode::kRefused,
                                        /*ra=*/false);
  } else {
    // Longest-match delegation.
    const DelegationEntry* best = nullptr;
    for (const auto& del : delegations_) {
      if (!q.qname.is_subdomain_of(del.zone)) continue;
      if (!best || del.zone.label_count() > best->zone.label_count())
        best = &del;
    }
    if (best) {
      response = dns::make_referral(*decoded, best->zone,
                                    {{best->ns_name, best->ns_addr}});
    } else {
      response = dns::make_error_response(*decoded, dns::Rcode::kNXDomain,
                                          /*ra=*/false);
      response.header.flags.aa = true;
    }
  }
  network_.send(net::Datagram{net::Endpoint{addr_, net::kDnsPort}, d.src,
                              dns::encode(response)});
}

SimHierarchy build_hierarchy(net::Network& network, const dns::DnsName& sld,
                             const dns::DnsName& auth_ns_name,
                             net::IPv4Addr auth_ns_addr, int root_count) {
  SimHierarchy h;
  const dns::DnsName net_zone = dns::DnsName::must_parse("net");
  const dns::DnsName tld_ns = dns::DnsName::must_parse("a.gtld-servers.net");

  const int n = std::min<int>(root_count, std::size(kRootAddrs));
  for (int i = 0; i < n; ++i) {
    auto root = std::make_unique<ReferralServer>(network, kRootAddrs[i],
                                                 dns::DnsName());
    root->delegate(DelegationEntry{net_zone, tld_ns, kTldAddr});
    h.hints.roots.push_back(kRootAddrs[i]);
    h.roots.push_back(std::move(root));
  }
  h.net_tld = std::make_unique<ReferralServer>(network, kTldAddr, net_zone);
  h.net_tld->delegate(DelegationEntry{sld, auth_ns_name, auth_ns_addr});
  return h;
}

std::vector<net::IPv4Addr> hierarchy_addresses(int root_count) {
  std::vector<net::IPv4Addr> addrs;
  const int n = std::min<int>(root_count, std::size(kRootAddrs));
  for (int i = 0; i < n; ++i) addrs.push_back(kRootAddrs[i]);
  addrs.push_back(kTldAddr);
  return addrs;
}

}  // namespace orp::resolver
