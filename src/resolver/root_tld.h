// Simulated root and TLD name servers (Fig. 1 steps 2-5).
//
// The paper could not build its own root/TLD infrastructure and treated it
// as out of scope; our simulated Internet has to provide it so that honest
// resolvers can genuinely walk the hierarchy: root refers .net queries to
// the TLD server, which refers <sld>.net queries to the measurement's
// authoritative server.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "dns/codec.h"
#include "net/transport.h"

namespace orp::resolver {

struct DelegationEntry {
  dns::DnsName zone;       // e.g. "ucfsealresearch.net"
  dns::DnsName ns_name;    // e.g. "ns1.ucfsealresearch.net"
  net::IPv4Addr ns_addr;   // glue
};

/// A referral-only server: answers every query with a delegation toward the
/// most specific registered zone, or NXDomain when it knows nothing below
/// the apex it serves. One class covers both the root (serving ".", knowing
/// TLDs) and a TLD server (serving "net", knowing SLDs).
class ReferralServer {
 public:
  ReferralServer(net::Network& network, net::IPv4Addr addr, dns::DnsName apex);

  /// Register a child zone delegation.
  void delegate(DelegationEntry entry);

  net::IPv4Addr address() const noexcept { return addr_; }
  const dns::DnsName& apex() const noexcept { return apex_; }
  std::uint64_t queries() const noexcept { return queries_; }

 private:
  void on_datagram(const net::Datagram& d);

  net::Network& network_;
  net::IPv4Addr addr_;
  dns::DnsName apex_;
  std::vector<DelegationEntry> delegations_;
  std::uint64_t queries_ = 0;
};

/// The root hints a resolver is configured with.
struct RootHints {
  std::vector<net::IPv4Addr> roots;
};

/// Builds the standard simulated hierarchy used across tests, examples and
/// the measurement pipeline: `root_count` root servers (all equivalent), a
/// .net TLD server, and the delegation chain down to `auth_ns` for `sld`.
struct SimHierarchy {
  std::vector<std::unique_ptr<ReferralServer>> roots;
  std::unique_ptr<ReferralServer> net_tld;
  RootHints hints;
};

SimHierarchy build_hierarchy(net::Network& network, const dns::DnsName& sld,
                             const dns::DnsName& auth_ns_name,
                             net::IPv4Addr auth_ns_addr, int root_count = 3);

/// The addresses build_hierarchy(root_count) will bind (the clamped root set
/// plus the TLD server). Planting code consults this to avoid drawing a
/// resolver address on top of the hierarchy without needing a live Network.
std::vector<net::IPv4Addr> hierarchy_addresses(int root_count = 3);

}  // namespace orp::resolver
