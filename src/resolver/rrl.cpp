#include "resolver/rrl.h"

#include <algorithm>

namespace orp::resolver {

RrlAction ResponseRateLimiter::check(net::IPv4Addr client, net::SimTime now) {
  if (!config_.enabled) {
    ++sent_;
    return RrlAction::kSend;
  }
  Bucket& bucket = buckets_[client.value()];
  if (!bucket.initialized) {
    bucket.initialized = true;
    bucket.tokens = static_cast<double>(config_.burst);
  } else if (now > bucket.last) {
    bucket.tokens =
        std::min(static_cast<double>(config_.burst),
                 bucket.tokens + (now - bucket.last).as_seconds() *
                                     config_.responses_per_second);
  }
  bucket.last = now;

  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    bucket.suppressed_streak = 0;
    ++sent_;
    return RrlAction::kSend;
  }
  ++bucket.suppressed_streak;
  if (config_.slip > 0 && bucket.suppressed_streak % config_.slip == 0) {
    ++slipped_;
    return RrlAction::kSlip;
  }
  ++dropped_;
  return RrlAction::kDrop;
}

void ResponseRateLimiter::check_batch(net::IPv4Addr client, net::SimTime now,
                                      std::span<RrlAction> out) {
  if (out.empty()) return;
  if (!config_.enabled) {
    sent_ += out.size();
    for (RrlAction& a : out) a = RrlAction::kSend;
    return;
  }
  // One lookup + refill for the burst: repeated check() calls at the same
  // `now` would refill on the first call and see now == last afterwards.
  Bucket& bucket = buckets_[client.value()];
  if (!bucket.initialized) {
    bucket.initialized = true;
    bucket.tokens = static_cast<double>(config_.burst);
  } else if (now > bucket.last) {
    bucket.tokens =
        std::min(static_cast<double>(config_.burst),
                 bucket.tokens + (now - bucket.last).as_seconds() *
                                     config_.responses_per_second);
  }
  bucket.last = now;

  for (RrlAction& a : out) {
    if (bucket.tokens >= 1.0) {
      bucket.tokens -= 1.0;
      bucket.suppressed_streak = 0;
      ++sent_;
      a = RrlAction::kSend;
      continue;
    }
    ++bucket.suppressed_streak;
    if (config_.slip > 0 && bucket.suppressed_streak % config_.slip == 0) {
      ++slipped_;
      a = RrlAction::kSlip;
    } else {
      ++dropped_;
      a = RrlAction::kDrop;
    }
  }
}

}  // namespace orp::resolver
