// Response-Rate Limiting (RRL), the BIND/NSD mitigation for the
// amplification abuse of §II-C.
//
// A reflector is only useful to an attacker if it answers a flood of
// spoofed-source queries at full size. RRL tracks per-client response rates;
// once a client exceeds its budget the server drops most responses and
// "slips" an empty TC=1 answer for the rest — a real client retries over
// TCP (unspoofable) while the spoofed victim just stops receiving
// amplification payload.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "net/ipv4.h"
#include "net/sim_time.h"

namespace orp::resolver {

struct RrlConfig {
  bool enabled = false;
  double responses_per_second = 5.0;  // per-client sustained budget
  std::uint64_t burst = 10;           // bucket depth
  /// Every `slip`-th suppressed response is sent as an empty TC=1 reply
  /// (slip=0 drops everything; slip=1 slips everything).
  int slip = 2;
};

enum class RrlAction {
  kSend,  // under budget: respond normally
  kDrop,  // over budget: say nothing
  kSlip,  // over budget: send the minimal TC=1 nudge
};

class ResponseRateLimiter {
 public:
  explicit ResponseRateLimiter(RrlConfig config) : config_(config) {}

  RrlAction check(net::IPv4Addr client, net::SimTime now);

  /// Evaluate a burst of `out.size()` same-instant responses to one client,
  /// writing the per-response verdicts in order. Bit-identical to calling
  /// check() that many times with the same (client, now) — the bucket is
  /// looked up and refilled once instead of per response, which is the
  /// shape a grouped delivery hands the server.
  void check_batch(net::IPv4Addr client, net::SimTime now,
                   std::span<RrlAction> out);

  std::uint64_t sent() const noexcept { return sent_; }
  std::uint64_t dropped() const noexcept { return dropped_; }
  std::uint64_t slipped() const noexcept { return slipped_; }

 private:
  struct Bucket {
    bool initialized = false;
    double tokens = 0;
    net::SimTime last;
    int suppressed_streak = 0;
  };

  RrlConfig config_;
  std::unordered_map<std::uint32_t, Bucket> buckets_;
  std::uint64_t sent_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t slipped_ = 0;
};

}  // namespace orp::resolver
