#include "resolver/scripted_resolver.h"

#include <memory>

#include "dns/edns.h"
#include "dns/truncate.h"
#include <utility>

namespace orp::resolver {

void stamp_profile(const BehaviorProfile& profile, dns::Message& response) {
  response.header.flags.ra = profile.ra;
  response.header.flags.aa = profile.aa;
  response.header.flags.rcode = profile.rcode;
  if (profile.omit_question) {
    response.questions.clear();
  }
}

dns::Message build_fabricated_response(const BehaviorProfile& profile,
                                       const dns::Message& query,
                                       bool& raw_counts) {
  dns::Message response = dns::make_response(query);
  const dns::DnsName& qname = query.questions.front().qname;
  raw_counts = false;

  switch (profile.answer) {
    case AnswerMode::kNone:
      break;
    case AnswerMode::kFixedIp:
      response.answers.push_back(
          dns::ResourceRecord{qname, dns::RRType::kA, dns::RRClass::kIN, 3600,
                              dns::ARdata{profile.fixed_answer}});
      break;
    case AnswerMode::kUrl: {
      // A CNAME whose target is the "URL" the wild resolvers returned
      // (e.g. u.dcoin.co) instead of a resolved address.
      const auto target = dns::DnsName::parse(profile.text_answer);
      response.answers.push_back(dns::ResourceRecord{
          qname, dns::RRType::kCNAME, dns::RRClass::kIN, 3600,
          dns::NameRdata{target.value_or(dns::DnsName::must_parse("invalid"))}});
      break;
    }
    case AnswerMode::kGarbageString:
      response.answers.push_back(dns::ResourceRecord{
          qname, dns::RRType::kTXT, dns::RRClass::kIN, 3600,
          dns::TxtRdata{{profile.text_answer}}});
      break;
    case AnswerMode::kUndecodable: {
      // Claim one answer record but ship none: the receiving parser runs off
      // the end of the packet mid-record. This reproduces the 8,764
      // undecodable answers of the 2013 corpus (§IV-C "Caveats").
      response.header.qdcount =
          static_cast<std::uint16_t>(response.questions.size());
      response.header.ancount = 1;
      response.header.nscount = 0;
      response.header.arcount = 0;
      raw_counts = true;
      break;
    }
    case AnswerMode::kRecursive:
      break;  // unreachable; handled by respond_recursive
  }

  stamp_profile(profile, response);
  if (raw_counts && profile.omit_question) response.header.qdcount = 0;
  return response;
}

ResponseTemplates build_response_templates(const BehaviorProfile& profile,
                                           const ProbeQnameFactory& qname,
                                           dns::EncodeBuffer& scratch) {
  ResponseTemplates t;
  // Profiles the fast path cannot serve: silence is already free, and
  // forwarders/recursives involve upstream traffic per query.
  if (!profile.respond || profile.forwarder ||
      profile.answer == AnswerMode::kRecursive)
    return t;
  const auto probe_query = [&](const dns::StampVars& v) {
    return dns::make_query(v.txn, qname(v.cluster, v.index), dns::RRType::kA);
  };
  t.raw_counts = profile.answer == AnswerMode::kUndecodable;
  t.query = dns::WireTemplate::derive(probe_query, scratch);
  t.response = dns::WireTemplate::derive(
      [&](const dns::StampVars& v) {
        bool rc = false;
        return build_fabricated_response(profile, probe_query(v), rc);
      },
      scratch, t.raw_counts);
  t.slip = dns::WireTemplate::derive(
      [&](const dns::StampVars& v) {
        bool rc = false;
        dns::Message r = build_fabricated_response(profile, probe_query(v), rc);
        r.answers.clear();
        r.authority.clear();
        r.additional.clear();
        r.header.flags.tc = true;
        return r;
      },
      scratch);
  // Responses must fit the classic 512-byte budget so the slow path's
  // truncate_to_fit is a no-op for matched queries (the fast path skips it).
  t.usable = t.query.ok() && t.response.ok() && t.slip.ok() &&
             t.response.size() <= 512 && t.slip.size() <= 512;
  return t;
}

ResolverHost::ResolverHost(net::Network& network, net::IPv4Addr addr,
                           BehaviorProfile profile, EngineConfig engine_config,
                           std::uint64_t seed, dns::EncodeBuffer* codec_scratch,
                           const ResponseTemplates* templates)
    : network_(network),
      addr_(addr),
      codec_scratch_(codec_scratch != nullptr ? *codec_scratch : own_scratch_),
      profile_(std::move(profile)),
      engine_config_(std::move(engine_config)),
      seed_(seed),
      rrl_(profile_.rrl),
      tpl_(templates != nullptr && templates->ok() &&
                   (profile_.udp_limit == 0 ||
                    (templates->response.size() <= profile_.udp_limit &&
                     templates->slip.size() <= profile_.udp_limit))
               ? templates
               : nullptr) {
  network_.bind_batch(
      net::Endpoint{addr_, net::kDnsPort},
      [this](const net::Datagram& d) { on_query(d); },
      [this](const net::DatagramBatch& b) { on_query_batch(b); });
  // A TCP-capable profile also listens on the stream transport; forwarders
  // never do (CPE proxies in the wild rarely speak TCP — their truncated
  // answers are terminal, which the fallback study measures).
  if (profile_.tcp && profile_.respond && !profile_.forwarder)
    network_.streams().listen(net::Endpoint{addr_, net::kDnsPort}, this);
}

ResolverHost::~ResolverHost() {
  network_.unbind(net::Endpoint{addr_, net::kDnsPort});
  if (profile_.tcp && profile_.respond && !profile_.forwarder)
    network_.streams().unlisten(net::Endpoint{addr_, net::kDnsPort});
}

void ResolverHost::stamp(dns::Message& response) const {
  stamp_profile(profile_, response);
}

void ResolverHost::on_query_batch(const net::DatagramBatch& b) {
  // Queries in one grouped delivery are processed in span order, each
  // through the same path a per-packet delivery takes (the host never
  // unbinds port 53 mid-flight, so skipping the per-item re-bind check the
  // fallback path performs changes nothing observable).
  for (std::size_t i = 0; i < b.size(); ++i)
    on_query(net::Datagram{b.srcs[i], b.dst, b.payloads[i]});
}

void ResolverHost::on_query(const net::Datagram& d) {
  ++stats_.queries;
  if (!profile_.respond) return;
  // Probe fast path: a wire-exact in-width probe query gets its response
  // stamped from the profile's shared template — no decode, no encode.
  // Anything else (CHAOS class, EDNS, odd qtypes, wide ids) fails the
  // byte-exact match and takes the full path below.
  if (tpl_ != nullptr) {
    dns::StampVars v;
    if (tpl_->query.match(d.payload, v)) {
      fast_respond(v, d.src);
      return;
    }
    ++stats_.template_fallback;
  }
  handle_query(d.payload, ReplyTo{d.src});
}

void ResolverHost::on_message(net::ConnId c, net::SimTime /*at*/,
                              const net::PayloadRef& msg) {
  ++stats_.queries;
  ++stats_.tcp_queries;
  // No template fast path over TCP: the stamped wire image is the UDP
  // response shape, and TCP answers must never carry the UDP cap anyway.
  handle_query(msg, ReplyTo{net::Endpoint{}, c});
}

void ResolverHost::handle_query(std::span<const std::uint8_t> wire,
                                ReplyTo to) {
  const auto decoded = dns::decode(wire);
  if (!decoded || decoded->questions.empty()) return;

  // CHAOS-class version.bind: the fingerprinting side channel.
  if (decoded->questions.front().qclass == dns::RRClass::kCH) {
    respond_chaos(*decoded, to);
    return;
  }
  // A forwarder relays regardless of mode: the upstream does the work.
  // (Forwarders never listen on TCP, so `to` is always a UDP client here.)
  if (profile_.forwarder) {
    respond_forwarded(*decoded, to.client);
    return;
  }
  if (profile_.answer == AnswerMode::kRecursive) {
    respond_recursive(*decoded, to);
    return;
  }
  respond_fabricated(*decoded, to);
}

void ResolverHost::respond_chaos(const dns::Message& query, ReplyTo to) {
  const dns::Question& q = query.questions.front();
  const bool is_version_bind =
      q.qname == dns::DnsName::must_parse("version.bind") &&
      (q.qtype == dns::RRType::kTXT || q.qtype == dns::RRType::kANY);
  dns::Message response = dns::make_response(query);
  response.header.flags.ra = profile_.ra;
  if (is_version_bind && !profile_.version.empty()) {
    response.header.flags.aa = true;
    response.answers.push_back(dns::ResourceRecord{
        q.qname, dns::RRType::kTXT, dns::RRClass::kCH, 0,
        dns::TxtRdata{{profile_.version}}});
  } else {
    response.header.flags.rcode = dns::Rcode::kRefused;
  }
  emit(std::move(response), to, false, dns::response_size_budget(query));
}

void ResolverHost::respond_fabricated(const dns::Message& query, ReplyTo to) {
  bool raw_counts = false;
  dns::Message response = build_fabricated_response(profile_, query, raw_counts);
  emit(std::move(response), to, raw_counts, dns::response_size_budget(query));
}

void ResolverHost::fast_respond(const dns::StampVars& v, net::Endpoint client) {
  std::span<const std::uint8_t> wire;
  switch (rrl_.check(client.addr, network_.loop().now())) {
    case RrlAction::kSend:
      wire = tpl_->response.stamp(v, codec_scratch_);
      break;
    case RrlAction::kDrop:
      ++stats_.rrl_dropped;
      return;
    case RrlAction::kSlip:
      ++stats_.rrl_slipped;
      wire = tpl_->slip.stamp(v, codec_scratch_);
      break;
  }
  ++stats_.responses;
  ++stats_.template_stamped;
  // Mirrors emit(): acquire the pooled buffer now, let the delayed event
  // carry only the ref. Truncation is statically a no-op (templates are
  // only usable when both response shapes fit the 512-byte budget).
  net::PayloadRef payload = network_.pool().acquire(wire);
  network_.loop().schedule_in(
      profile_.response_delay,
      [this, client, payload = std::move(payload)]() mutable {
        network_.send(net::Datagram{net::Endpoint{addr_, net::kDnsPort},
                                    client, std::move(payload)});
      });
}

void ResolverHost::respond_recursive(const dns::Message& query, ReplyTo to) {
  if (!engine_) {
    EngineConfig cfg = engine_config_;
    cfg.dnssec_ok = profile_.dnssec_ok;
    engine_ = std::make_unique<IterativeEngine>(network_, addr_, cfg, seed_);
  }
  const dns::Question& q = query.questions.front();
  // Resolver farms: `backend_fan` backends resolve independently; the
  // frontend answers from whichever finishes first. This is the calibrated
  // source of the Q2:R2 inflation seen at the authoritative server.
  auto answered = std::make_shared<bool>(false);
  const int fan = std::max(1, profile_.backend_fan);
  for (int i = 0; i < fan; ++i) {
    ++stats_.recursions;
    engine_->resolve(q.qname, q.qtype,
                     [this, query, to, answered](
                         const ResolutionOutcome& outcome) {
                       if (*answered) return;
                       *answered = true;
                       dns::Message response = dns::make_response(query);
                       if (outcome.success) {
                         response.answers = outcome.answers;
                       }
                       stamp(response);
                       // An honest resolver reports resolution failures; a
                       // stamped rcode override wins either way.
                       if (profile_.rcode == dns::Rcode::kNoError &&
                           !outcome.success) {
                         response.header.flags.rcode = outcome.rcode;
                       }
                       emit(std::move(response), to, false,
                            dns::response_size_budget(query));
                     });
  }
}

void ResolverHost::respond_forwarded(const dns::Message& query,
                                     net::Endpoint client) {
  ++stats_.forwarded;
  const std::uint16_t port = next_port_++;
  if (next_port_ >= 20000) next_port_ = 10000;
  const net::Endpoint local{addr_, port};
  network_.bind(local, [this, query, client, local](const net::Datagram& d) {
    network_.unbind(local);
    const auto upstream_response = dns::decode(d.payload);
    if (!upstream_response) return;
    dns::Message response = dns::make_response(query);
    response.answers = upstream_response->answers;
    stamp(response);
    emit(std::move(response), ReplyTo{client}, false,
         dns::response_size_budget(query));
  });
  dns::Message upstream_q =
      dns::make_query(query.header.id, query.questions.front().qname,
                      query.questions.front().qtype);
  const auto wire = dns::encode_into(upstream_q, codec_scratch_);
  network_.send(local, net::Endpoint{profile_.upstream, net::kDnsPort}, wire);
}

void ResolverHost::emit(dns::Message response, ReplyTo to, bool raw_counts,
                        std::size_t budget) {
  if (to.via_stream()) {
    // DNS over TCP: the 64 KiB frame is the only size bound, so neither the
    // client's UDP budget nor the profile's udp_limit applies — and RRL is
    // a UDP-amplification mitigation with nothing to mitigate here (the
    // connection proves the client is return-routable).
    ++stats_.responses;
    ++stats_.tcp_responses;
    const auto wire =
        raw_counts ? dns::encode_raw_counts_into(response, codec_scratch_)
                   : dns::encode_into(response, codec_scratch_);
    net::PayloadRef payload = network_.pool().acquire(wire);
    network_.loop().schedule_in(
        profile_.response_delay,
        [this, conn = to.conn, payload = std::move(payload)]() {
          // A client that closed or reset while we worked makes this a
          // validated no-op inside the stream layer.
          network_.streams().send_message(conn, payload.span());
        });
    return;
  }
  switch (rrl_.check(to.client.addr, network_.loop().now())) {
    case RrlAction::kSend:
      break;
    case RrlAction::kDrop:
      ++stats_.rrl_dropped;
      return;
    case RrlAction::kSlip: {
      // Minimal TC=1 nudge: question echoed, all data sections dropped. A
      // legitimate client retries over TCP; a spoofed victim gets ~0 bytes
      // of amplification.
      ++stats_.rrl_slipped;
      response.answers.clear();
      response.authority.clear();
      response.additional.clear();
      response.header.flags.tc = true;
      raw_counts = false;
      break;
    }
  }
  ++stats_.responses;
  // Honor the client's advertised UDP budget (512 for classic DNS).
  if (!raw_counts && dns::truncate_to_fit(response, budget))
    ++stats_.truncated;
  auto wire = raw_counts
                  ? dns::encode_raw_counts_into(response, codec_scratch_)
                  : dns::encode_into(response, codec_scratch_);
  // The profile's server-side cap cuts the encoded wire at the largest
  // whole-record boundary (TC=1). Wire-level on purpose: a size-capping
  // server chops the packet it already built, it does not re-plan the
  // message the way the EDNS budget pass above does.
  if (!raw_counts && profile_.udp_limit != 0 &&
      wire.size() > profile_.udp_limit) {
    const std::span<std::uint8_t> mut{codec_scratch_.out.data(), wire.size()};
    const std::size_t cut = dns::Truncator::truncate(mut, profile_.udp_limit);
    if (cut < wire.size()) {
      wire = wire.first(cut);
      ++stats_.truncated;
    }
  }
  // Acquire the pooled buffer now (while the scratch bytes are live) and let
  // the delayed event carry only the ref — no payload copy at fire time.
  net::PayloadRef payload = network_.pool().acquire(wire);
  network_.loop().schedule_in(
      profile_.response_delay,
      [this, client = to.client, payload = std::move(payload)]() mutable {
        network_.send(net::Datagram{net::Endpoint{addr_, net::kDnsPort},
                                    client, std::move(payload)});
      });
}

}  // namespace orp::resolver
