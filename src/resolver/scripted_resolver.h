// A simulated host executing one BehaviorProfile on port 53.
#pragma once

#include <cstdint>
#include <memory>

#include "resolver/behavior.h"
#include "resolver/recursive_resolver.h"
#include "resolver/rrl.h"

namespace orp::resolver {

struct HostStats {
  std::uint64_t queries = 0;
  std::uint64_t responses = 0;
  std::uint64_t recursions = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t truncated = 0;      // responses cut to the client's UDP budget
  std::uint64_t rrl_dropped = 0;    // suppressed by response-rate limiting
  std::uint64_t rrl_slipped = 0;    // replaced by a minimal TC=1 nudge
};

class ResolverHost {
 public:
  /// `engine_config` supplies root hints for profiles that genuinely
  /// recurse; it is unused (and the engine never instantiated) otherwise.
  /// `codec_scratch`, when given, is the shard-shared encode buffer (all
  /// hosts of one SimulatedInternet run on one event loop); each host owns
  /// a buffer otherwise.
  ResolverHost(net::Network& network, net::IPv4Addr addr,
               BehaviorProfile profile, EngineConfig engine_config,
               std::uint64_t seed, dns::EncodeBuffer* codec_scratch = nullptr);
  ~ResolverHost();

  ResolverHost(const ResolverHost&) = delete;
  ResolverHost& operator=(const ResolverHost&) = delete;

  net::IPv4Addr address() const noexcept { return addr_; }
  const BehaviorProfile& profile() const noexcept { return profile_; }
  const HostStats& stats() const noexcept { return stats_; }
  /// The host's iterative engine, or null if this profile never recursed
  /// (the engine is instantiated lazily on first genuine recursion).
  const IterativeEngine* engine() const noexcept { return engine_.get(); }

 private:
  void on_query(const net::Datagram& d);
  /// Grouped-delivery entry point: span-order per-query processing,
  /// equivalent to one on_query call per item.
  void on_query_batch(const net::DatagramBatch& b);
  void respond_chaos(const dns::Message& query, net::Endpoint client);
  void respond_fabricated(const dns::Message& query, net::Endpoint client);
  void respond_recursive(const dns::Message& query, net::Endpoint client);
  void respond_forwarded(const dns::Message& query, net::Endpoint client);
  void emit(dns::Message response, net::Endpoint client, bool raw_counts,
            std::size_t budget);

  /// Apply this profile's header stamping to a response under construction.
  void stamp(dns::Message& response) const;

  net::Network& network_;
  net::IPv4Addr addr_;
  dns::EncodeBuffer own_scratch_;
  dns::EncodeBuffer& codec_scratch_;
  BehaviorProfile profile_;
  EngineConfig engine_config_;
  std::uint64_t seed_;
  std::unique_ptr<IterativeEngine> engine_;  // lazily created
  std::uint16_t next_port_ = 10000;
  ResponseRateLimiter rrl_;
  HostStats stats_;
};

}  // namespace orp::resolver
