// A simulated host executing one BehaviorProfile on port 53.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "dns/wire_template.h"
#include "net/stream.h"
#include "resolver/behavior.h"
#include "resolver/recursive_resolver.h"
#include "resolver/rrl.h"

namespace orp::resolver {

struct HostStats {
  std::uint64_t queries = 0;
  std::uint64_t responses = 0;
  std::uint64_t recursions = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t truncated = 0;      // responses cut to the client's UDP budget
  std::uint64_t rrl_dropped = 0;    // suppressed by response-rate limiting
  std::uint64_t rrl_slipped = 0;    // replaced by a minimal TC=1 nudge
  std::uint64_t template_stamped = 0;   // responses stamped from a template
  std::uint64_t template_fallback = 0;  // queries through the full path
  std::uint64_t tcp_queries = 0;    // queries arriving over a stream
  std::uint64_t tcp_responses = 0;  // responses served over a stream
};

/// Header stamping shared by every fabricating path and the template
/// factory (Tables IV-VI bit lies).
void stamp_profile(const BehaviorProfile& profile, dns::Message& response);

/// The full fabricated response for `profile` answering `query` (§IV answer
/// modes + header stamping). Sets `raw_counts` when the message must be
/// encoded with its forged header counts (AnswerMode::kUndecodable). The
/// per-query slow path and the template factory both call this, so the two
/// can never drift.
dns::Message build_fabricated_response(const BehaviorProfile& profile,
                                       const dns::Message& query,
                                       bool& raw_counts);

/// Pre-encoded templates for one fabricating profile. The response bytes
/// depend only on the profile and the probe vars — not on the host address —
/// so one ResponseTemplates instance is shared by every host running the
/// profile (the builder caches by shaping key).
struct ResponseTemplates {
  dns::WireTemplate query;     // recognizes an in-width probe A query
  dns::WireTemplate response;  // the profile's fabricated response
  dns::WireTemplate slip;      // the RRL slip: sections cleared, TC=1
  bool raw_counts = false;     // response encodes through raw header counts
  bool usable = false;
  bool ok() const noexcept { return usable; }
};

/// Renders the probe qname for (cluster, index) — the builder passes the
/// campaign's SubdomainScheme::qname.
using ProbeQnameFactory =
    std::function<dns::DnsName(std::uint32_t cluster, std::uint32_t index)>;

/// Derive the template set for `profile`. Returns not-usable for profiles
/// the fast path cannot serve (non-responding, forwarders, genuine
/// recursion) and for any shape the differential derivation declines.
ResponseTemplates build_response_templates(const BehaviorProfile& profile,
                                           const ProbeQnameFactory& qname,
                                           dns::EncodeBuffer& scratch);

/// Where a response goes: back out the UDP socket (conn == kNilConn) or
/// down the stream connection the query arrived on. Small enough to ride in
/// the resolution callbacks unchanged.
struct ReplyTo {
  net::Endpoint client;
  net::ConnId conn = net::kNilConn;
  bool via_stream() const noexcept { return conn != net::kNilConn; }
};

class ResolverHost : private net::StreamHandler {
 public:
  /// `engine_config` supplies root hints for profiles that genuinely
  /// recurse; it is unused (and the engine never instantiated) otherwise.
  /// `codec_scratch`, when given, is the shard-shared encode buffer (all
  /// hosts of one SimulatedInternet run on one event loop); each host owns
  /// a buffer otherwise. `templates`, when given and usable, enables the
  /// stamp fast path for in-width probe queries; it must outlive the host
  /// and match this profile's shaping key. Either way the wire bytes and
  /// stats are identical, minus the template_* counters themselves.
  ResolverHost(net::Network& network, net::IPv4Addr addr,
               BehaviorProfile profile, EngineConfig engine_config,
               std::uint64_t seed, dns::EncodeBuffer* codec_scratch = nullptr,
               const ResponseTemplates* templates = nullptr);
  ~ResolverHost();

  ResolverHost(const ResolverHost&) = delete;
  ResolverHost& operator=(const ResolverHost&) = delete;

  net::IPv4Addr address() const noexcept { return addr_; }
  const BehaviorProfile& profile() const noexcept { return profile_; }
  const HostStats& stats() const noexcept { return stats_; }
  /// The host's iterative engine, or null if this profile never recursed
  /// (the engine is instantiated lazily on first genuine recursion).
  const IterativeEngine* engine() const noexcept { return engine_.get(); }

 private:
  void on_query(const net::Datagram& d);
  /// Grouped-delivery entry point: span-order per-query processing,
  /// equivalent to one on_query call per item.
  void on_query_batch(const net::DatagramBatch& b);
  /// DNS-over-TCP entry point (profile.tcp): one whole query message per
  /// on_message, answered over the same connection — full answers, no
  /// truncation, no RRL (TCP clients are return-routable by construction,
  /// which is the entire point of the TC=1 nudge).
  void on_message(net::ConnId c, net::SimTime at,
                  const net::PayloadRef& msg) override;
  void handle_query(std::span<const std::uint8_t> wire, ReplyTo to);
  void respond_chaos(const dns::Message& query, ReplyTo to);
  void respond_fabricated(const dns::Message& query, ReplyTo to);
  /// Template fast path: the RRL gate + stamp of emit(), minus the
  /// decode/build/encode round it makes unnecessary.
  void fast_respond(const dns::StampVars& v, net::Endpoint client);
  void respond_recursive(const dns::Message& query, ReplyTo to);
  void respond_forwarded(const dns::Message& query, net::Endpoint client);
  void emit(dns::Message response, ReplyTo to, bool raw_counts,
            std::size_t budget);

  /// Apply this profile's header stamping to a response under construction.
  void stamp(dns::Message& response) const;

  net::Network& network_;
  net::IPv4Addr addr_;
  dns::EncodeBuffer own_scratch_;
  dns::EncodeBuffer& codec_scratch_;
  BehaviorProfile profile_;
  EngineConfig engine_config_;
  std::uint64_t seed_;
  std::unique_ptr<IterativeEngine> engine_;  // lazily created
  std::uint16_t next_port_ = 10000;
  ResponseRateLimiter rrl_;
  const ResponseTemplates* tpl_ = nullptr;
  HostStats stats_;
};

}  // namespace orp::resolver
