#include "util/apportion.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace orp::util {

std::vector<std::uint64_t> apportion(const std::vector<std::uint64_t>& counts,
                                     std::uint64_t target_total,
                                     bool keep_nonzero) {
  std::vector<std::uint64_t> out(counts.size(), 0);
  const auto source_total =
      std::accumulate(counts.begin(), counts.end(), std::uint64_t{0});
  if (source_total == 0 || target_total == 0) return out;

  struct Cell {
    std::size_t idx;
    double remainder;
  };
  std::vector<Cell> cells;
  cells.reserve(counts.size());

  std::uint64_t assigned = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const __uint128_t prod = static_cast<__uint128_t>(counts[i]) * target_total;
    auto floor_share = static_cast<std::uint64_t>(prod / source_total);
    const auto rem_num = static_cast<std::uint64_t>(prod % source_total);
    if (keep_nonzero && floor_share == 0) {
      // Reserve the floor of 1 now; these cells still compete for remainders.
      floor_share = 1;
      out[i] = 1;
      assigned += 1;
      continue;
    }
    out[i] = floor_share;
    assigned += floor_share;
    cells.push_back(
        {i, static_cast<double>(rem_num) / static_cast<double>(source_total)});
  }

  if (assigned > target_total) {
    // keep_nonzero floors over-committed (only possible when target_total is
    // smaller than the number of nonzero cells). Repeatedly take one unit
    // from the currently largest cell so the floored rare cells survive as
    // long as anything larger remains.
    while (assigned > target_total) {
      std::size_t largest = 0;
      for (std::size_t i = 1; i < out.size(); ++i)
        if (out[i] > out[largest]) largest = i;
      if (out[largest] == 0) break;  // nothing left to trim
      --out[largest];
      --assigned;
    }
    return out;
  }

  // Distribute the leftover units to the largest remainders (ties broken by
  // index for determinism).
  std::sort(cells.begin(), cells.end(), [](const Cell& a, const Cell& b) {
    if (a.remainder != b.remainder) return a.remainder > b.remainder;
    return a.idx < b.idx;
  });
  std::uint64_t leftover = target_total - assigned;
  for (std::size_t k = 0; leftover > 0 && !cells.empty(); ++k) {
    ++out[cells[k % cells.size()].idx];
    --leftover;
  }
  return out;
}

std::uint64_t scale_count(std::uint64_t count, std::uint64_t numer,
                          std::uint64_t denom) {
  if (denom == 0) throw std::invalid_argument("scale_count: zero denominator");
  const __uint128_t prod = static_cast<__uint128_t>(count) * numer;
  return static_cast<std::uint64_t>((prod + denom / 2) / denom);
}

double percent(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return 0.0;
  return 100.0 * static_cast<double>(part) / static_cast<double>(whole);
}

}  // namespace orp::util
