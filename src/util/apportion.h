// Integer apportionment utilities.
//
// The paper reports full-scale packet counts (billions of Q1, millions of R2).
// Our benches run at a configurable scale factor; to keep every table's
// *proportions* intact after integer rounding we use largest-remainder
// (Hamilton) apportionment rather than naive per-cell rounding, which would
// let small cells (e.g. the 10 NXDomain-with-answer packets of Table VI)
// vanish or the row totals drift from the column totals.
#pragma once

#include <cstdint>
#include <vector>

namespace orp::util {

/// Scale `counts` so they sum exactly to `target_total`, preserving the
/// original proportions as closely as integer arithmetic allows
/// (largest-remainder method). Zero-count cells stay zero.
///
/// If `keep_nonzero` is true, every cell that was nonzero in the input is
/// guaranteed at least 1 in the output (provided target_total >= number of
/// nonzero cells); this keeps rare-but-load-bearing behaviors (the paper's
/// single YXDomain packet, the 2 YXRRSet packets) represented at any scale.
std::vector<std::uint64_t> apportion(const std::vector<std::uint64_t>& counts,
                                     std::uint64_t target_total,
                                     bool keep_nonzero = true);

/// Scale a single count by `numer/denom` with round-half-up.
std::uint64_t scale_count(std::uint64_t count, std::uint64_t numer,
                          std::uint64_t denom);

/// Percentage helper: 100 * part / whole, 0 when whole == 0.
double percent(std::uint64_t part, std::uint64_t whole);

}  // namespace orp::util
