// A minimal expected<T, E> (C++23 std::expected is unavailable on this
// toolchain). Used for fallible decode paths where exceptions would be both
// slow (billions of packets) and wrong (a malformed packet is data, not a
// program error — the 2013 corpus contains 8,764 of them).
#pragma once

#include <cassert>
#include <utility>
#include <variant>

namespace orp::util {

template <typename T, typename E>
class Expected {
 public:
  Expected(T value) : storage_(std::in_place_index<0>, std::move(value)) {}
  Expected(E error) : storage_(std::in_place_index<1>, std::move(error)) {}

  bool has_value() const noexcept { return storage_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  T& value() & {
    assert(has_value());
    return std::get<0>(storage_);
  }
  const T& value() const& {
    assert(has_value());
    return std::get<0>(storage_);
  }
  T&& value() && {
    assert(has_value());
    return std::get<0>(std::move(storage_));
  }

  const E& error() const {
    assert(!has_value());
    return std::get<1>(storage_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, E> storage_;
};

}  // namespace orp::util
