// One FNV-1a, three folding styles.
//
// The project digests bytes in three places that historically each hand-rolled
// the same constants: capture_store's packet hash (64-bit fields folded as
// little-endian bytes, then raw payload bytes), flow's behavior digest (whole
// 64-bit words in a single xor-multiply step), and rng's fnv1a64 over label
// strings. Fnv1a is the single accumulator behind all of them; the distinct
// folding styles are kept as distinct methods because they produce *different*
// (and separately pinned) digests — do not "unify" word() and word_bytes().
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace orp::util {

inline constexpr std::uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ULL;

class Fnv1a {
 public:
  /// Fold one byte (the canonical FNV-1a step).
  constexpr Fnv1a& byte(std::uint8_t b) noexcept {
    h_ = (h_ ^ b) * kFnv1aPrime;
    return *this;
  }

  constexpr Fnv1a& bytes(std::span<const std::uint8_t> s) noexcept {
    for (const std::uint8_t b : s) byte(b);
    return *this;
  }

  constexpr Fnv1a& bytes(std::string_view s) noexcept {
    for (const char c : s) byte(static_cast<unsigned char>(c));
    return *this;
  }

  /// Fold a 64-bit value as its 8 little-endian bytes (packet-hash style).
  constexpr Fnv1a& word_bytes(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) byte((v >> (8 * i)) & 0xff);
    return *this;
  }

  /// Fold a whole 64-bit value in one xor-multiply (behavior-digest style).
  constexpr Fnv1a& word(std::uint64_t v) noexcept {
    h_ = (h_ ^ v) * kFnv1aPrime;
    return *this;
  }

  constexpr std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = kFnv1aOffsetBasis;
};

}  // namespace orp::util
