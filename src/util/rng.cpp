#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace orp::util {

std::uint64_t Rng::bounded(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method, widened to 64x64 -> 128.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = -bound % bound;
    while (l < t) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::size_t sample_cumulative(Rng& rng, const std::vector<double>& cumulative) {
  if (cumulative.empty()) throw std::invalid_argument("empty cumulative weights");
  const double total = cumulative.back();
  if (!(total > 0.0)) throw std::invalid_argument("non-positive total weight");
  const double u = rng.uniform01() * total;
  const auto it = std::upper_bound(cumulative.begin(), cumulative.end(), u);
  const auto idx = static_cast<std::size_t>(it - cumulative.begin());
  return std::min(idx, cumulative.size() - 1);
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be positive");
  cumulative_.reserve(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cumulative_.push_back(acc);
  }
}

std::size_t ZipfSampler::operator()(Rng& rng) const {
  return sample_cumulative(rng, cumulative_);
}

}  // namespace orp::util
