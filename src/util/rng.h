// Deterministic pseudo-random number generation for reproducible simulation.
//
// Every stochastic component in this repository draws from an explicitly
// seeded Rng so that a (seed, scale) pair fully determines a simulated
// Internet, a scan, and every downstream table. We deliberately avoid
// std::mt19937 default-seeding and std::random_device: reproducibility is a
// correctness property of a measurement-replication system.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "util/hash.h"

namespace orp::util {

/// splitmix64: used to expand a single 64-bit seed into a well-distributed
/// state vector (the construction recommended by the xoshiro authors).
constexpr std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// 64-bit mixing function (Stafford variant 13). Useful for hashing small
/// integers into pseudo-random but stable values, e.g. deriving a per-host
/// seed from (global seed, host address).
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// xoshiro256** 1.0 — fast, high-quality, 256-bit state generator.
/// Satisfies the C++ UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedcafef00dULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64_next(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + bounded(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform01() < p; }

  /// Fork a statistically independent child generator. The child's stream is
  /// a pure function of the parent seed and the label, so adding draws to one
  /// component never perturbs another (stream-splitting discipline).
  Rng fork(std::uint64_t label) noexcept {
    return Rng(mix64(state_[0] ^ mix64(label + 0x517cc1b727220a95ULL)));
  }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[bounded(i)]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Stable 64-bit FNV-1a hash of a string (for deriving seeds from labels).
constexpr std::uint64_t fnv1a64(std::string_view s) noexcept {
  return Fnv1a().bytes(s).value();
}

/// Draw an index from a discrete distribution given cumulative weights.
/// `cumulative` must be non-empty and non-decreasing with positive total.
std::size_t sample_cumulative(Rng& rng, const std::vector<double>& cumulative);

/// Zipf-like rank sampler: P(rank k) proportional to 1/(k+1)^s over [0, n).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);
  std::size_t operator()(Rng& rng) const;
  std::size_t size() const noexcept { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

}  // namespace orp::util
