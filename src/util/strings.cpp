#include "util/strings.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

namespace orp::util {

std::string with_commas(std::uint64_t n) {
  std::string digits = std::to_string(n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  const std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fixed(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string human_duration(double seconds) {
  if (seconds < 0) seconds = 0;
  const auto total = static_cast<std::uint64_t>(seconds + 0.5);
  const std::uint64_t days = total / 86400;
  const std::uint64_t hours = (total % 86400) / 3600;
  const std::uint64_t mins = (total % 3600) / 60;
  const std::uint64_t secs = total % 60;
  std::string out;
  if (days > 0) out += std::to_string(days) + "d ";
  if (hours > 0 || days > 0) out += std::to_string(hours) + "h ";
  if (days == 0 && (mins > 0 || hours > 0)) out += std::to_string(mins) + "m ";
  if (days == 0 && hours == 0) out += std::to_string(secs) + "s";
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out.empty() ? "0s" : out;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string pad_left(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(width - s.size(), ' ') + std::string(s);
}

std::string pad_right(std::string_view s, std::size_t width) {
  if (s.size() >= width) return std::string(s);
  return std::string(s) + std::string(width - s.size(), ' ');
}

bool all_digits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isdigit(c) != 0; });
}

std::string zero_pad(std::uint64_t n, int width) {
  std::string digits = std::to_string(n);
  if (static_cast<int>(digits.size()) >= width) return digits;
  return std::string(static_cast<std::size_t>(width) - digits.size(), '0') +
         digits;
}

}  // namespace orp::util
