// Small string/format helpers shared across the project.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

namespace orp::util {

/// 1234567 -> "1,234,567".
std::string with_commas(std::uint64_t n);

/// Fixed-precision double formatting ("3.879").
std::string fixed(double v, int precision = 3);

/// Duration in seconds -> "7d 5h", "11h", "35m 12s" style.
std::string human_duration(double seconds);

/// Lower-case ASCII copy.
std::string to_lower(std::string_view s);

/// Split on a delimiter character; empty fields preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Left/right padding to a column width.
std::string pad_left(std::string_view s, std::size_t width);
std::string pad_right(std::string_view s, std::size_t width);

/// True if every character is an ASCII digit (and s is non-empty).
bool all_digits(std::string_view s);

/// Zero-padded decimal rendering of `n` to exactly `width` digits.
std::string zero_pad(std::uint64_t n, int width);

/// Hash enabling heterogeneous (string_view) lookup in unordered maps keyed
/// by std::string, so hot-path lookups need not materialize a key. Pair with
/// std::equal_to<> as the key-equality functor.
struct TransparentStringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};

}  // namespace orp::util
