#include "util/table.h"

#include <algorithm>

#include "util/strings.h"

namespace orp::util {

TextTable::TextTable(std::vector<std::string> headers) {
  set_headers(std::move(headers));
}

void TextTable::set_headers(std::vector<std::string> headers) {
  headers_ = std::move(headers);
  aligns_.assign(headers_.size(), Align::kRight);
  if (!aligns_.empty()) aligns_[0] = Align::kLeft;
}

void TextTable::set_align(std::size_t column, Align align) {
  if (column >= aligns_.size()) aligns_.resize(column + 1, Align::kRight);
  aligns_[column] = align;
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back({std::move(row), pending_separator_});
  pending_separator_ = false;
}

void TextTable::add_separator() { pending_separator_ = true; }

std::string TextTable::render() const {
  std::size_t ncols = headers_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());
  if (ncols == 0) return {};

  std::vector<std::size_t> widths(ncols, 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = std::max(widths[c], headers_[c].size());
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      widths[c] = std::max(widths[c], r.cells[c].size());

  auto rule = [&] {
    std::string line = "+";
    for (std::size_t c = 0; c < ncols; ++c)
      line += std::string(widths[c] + 2, '-') + "+";
    line += "\n";
    return line;
  };
  static const std::string kEmpty;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    std::string line = "|";
    for (std::size_t c = 0; c < ncols; ++c) {
      // Bind to lvalues on both branches: a mixed string/char* ternary would
      // materialize a temporary and leave the view dangling.
      const std::string& cell = c < cells.size() ? cells[c] : kEmpty;
      const Align a = c < aligns_.size() ? aligns_[c] : Align::kRight;
      line += " ";
      line += a == Align::kLeft ? pad_right(cell, widths[c])
                                : pad_left(cell, widths[c]);
      line += " |";
    }
    line += "\n";
    return line;
  };

  std::string out = rule();
  if (!headers_.empty()) {
    out += emit_row(headers_);
    out += rule();
  }
  for (const auto& r : rows_) {
    if (r.separator_before) out += rule();
    out += emit_row(r.cells);
  }
  out += rule();
  return out;
}

std::string section_title(std::string_view title) {
  std::string bar(title.size() + 4, '=');
  return bar + "\n= " + std::string(title) + " =\n" + bar + "\n";
}

}  // namespace orp::util
