// ASCII table renderer used by the bench harness to print paper-style tables
// ("paper value | measured value" rows for Tables II–X).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace orp::util {

enum class Align { kLeft, kRight };

/// A simple monospace table: set headers, add rows, render with box-drawing
/// ASCII. Column widths auto-fit content.
class TextTable {
 public:
  TextTable() = default;
  explicit TextTable(std::vector<std::string> headers);

  void set_headers(std::vector<std::string> headers);
  void set_align(std::size_t column, Align align);
  void add_row(std::vector<std::string> row);
  /// Insert a horizontal separator before the next added row.
  void add_separator();

  std::string render() const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator_before = false;
  };

  std::vector<std::string> headers_;
  std::vector<Align> aligns_;
  std::vector<Row> rows_;
  bool pending_separator_ = false;
};

/// Render a titled section header for bench output.
std::string section_title(std::string_view title);

}  // namespace orp::util
