#include "zone/cluster.h"

#include <charconv>
#include <cstdio>

#include "net/reserved.h"
#include "util/rng.h"
#include "util/strings.h"

namespace orp::zone {
namespace {

/// Shared by the DnsName and NameView overloads of parse(): checks the
/// "or<cluster>.<index>.<sld>" shape and extracts the two numeric labels.
/// `Name` only needs label_count() / label(i) returning a string_view.
template <typename Name>
std::optional<SubdomainId> parse_probe_name(const Name& qname,
                                            const dns::DnsName& sld) {
  if (qname.label_count() != sld.label_count() + 2) return std::nullopt;
  for (std::size_t i = 0; i < sld.label_count(); ++i)
    if (!dns::label_equals_ci(qname.label(i + 2), sld.label(i)))
      return std::nullopt;
  const std::string_view first = qname.label(0);
  const std::string_view second = qname.label(1);
  if (first.size() < 3 || first.compare(0, 2, "or") != 0) return std::nullopt;
  if (!util::all_digits(first.substr(2)) || !util::all_digits(second))
    return std::nullopt;
  SubdomainId id;
  std::from_chars(first.data() + 2, first.data() + first.size(), id.cluster);
  std::from_chars(second.data(), second.data() + second.size(), id.index);
  return id;
}

}  // namespace

SubdomainScheme::SubdomainScheme(dns::DnsName sld, std::uint32_t cluster_size,
                                 std::uint64_t seed)
    : sld_(std::move(sld)), cluster_size_(cluster_size), seed_(seed) {}

dns::DnsName SubdomainScheme::qname(SubdomainId id) const {
  // Both labels rendered into stack buffers; prefixed() builds the final
  // name in a single allocation (the old child().child() chain took ~6).
  char cluster_label[16];
  char index_label[16];
  const int cn = std::snprintf(cluster_label, sizeof(cluster_label), "or%03u",
                               id.cluster);
  const int in = std::snprintf(index_label, sizeof(index_label), "%07u",
                               id.index);
  return sld_.prefixed({std::string_view(cluster_label, cn),
                        std::string_view(index_label, in)});
}

std::optional<SubdomainId> SubdomainScheme::parse(
    const dns::DnsName& qname) const {
  return parse_probe_name(qname, sld_);
}

std::optional<SubdomainId> SubdomainScheme::parse(
    const dns::NameView& qname) const {
  return parse_probe_name(qname, sld_);
}

net::IPv4Addr SubdomainScheme::ground_truth(SubdomainId id) const {
  // Deterministic pseudo-random mapping, avoiding reserved space so that a
  // "correct" answer is never confusable with the private-network redirects
  // the analysis flags (Table VIII).
  std::uint64_t h = util::mix64(
      seed_ ^ (static_cast<std::uint64_t>(id.cluster) << 32) ^ id.index);
  net::IPv4Addr addr(static_cast<std::uint32_t>(h));
  while (net::is_reserved(addr)) {
    h = util::mix64(h + 0x9e3779b97f4a7c15ULL);
    addr = net::IPv4Addr(static_cast<std::uint32_t>(h));
  }
  return addr;
}

ClusterManager::ClusterManager(SubdomainScheme scheme,
                               net::SimTime load_latency)
    : scheme_(std::move(scheme)), load_latency_(load_latency) {
  rotate();  // initial zone load
  current_cluster_ = 0;
}

SubdomainId ClusterManager::acquire() {
  if (next_index_ < scheme_.cluster_size()) {
    ++stats_.subdomains_issued;
    return SubdomainId{current_cluster_, next_index_++};
  }
  if (!reusable_.empty()) {
    const SubdomainId id = reusable_.back();
    reusable_.pop_back();
    ++stats_.subdomains_reused;
    return id;
  }
  ++current_cluster_;
  next_index_ = 0;
  rotate();
  ++stats_.subdomains_issued;
  return SubdomainId{current_cluster_, next_index_++};
}

void ClusterManager::release_unanswered(SubdomainId id) {
  // Only names the auth server still serves can be reused (it keeps the
  // current and the previous cluster resident); a name from an older,
  // unloaded cluster would draw NXDomain.
  if (id.cluster + 1 < current_cluster_) return;
  reusable_.push_back(id);
}

void ClusterManager::retire_answered(SubdomainId) {
  // Answered subdomains may live in resolver caches; never reuse them.
}

void ClusterManager::rotate() {
  ++stats_.clusters_loaded;
  stats_.load_time_total += load_latency_;
  // Names whose cluster just lost residency can no longer be reused.
  std::erase_if(reusable_, [this](SubdomainId id) {
    return id.cluster + 1 < current_cluster_;
  });
}

}  // namespace orp::zone
