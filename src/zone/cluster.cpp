#include "zone/cluster.h"

#include <charconv>

#include "net/reserved.h"
#include "util/rng.h"
#include "util/strings.h"

namespace orp::zone {

SubdomainScheme::SubdomainScheme(dns::DnsName sld, std::uint32_t cluster_size,
                                 std::uint64_t seed)
    : sld_(std::move(sld)), cluster_size_(cluster_size), seed_(seed) {}

dns::DnsName SubdomainScheme::qname(SubdomainId id) const {
  return sld_.child(util::zero_pad(id.index, 7))
      .child("or" + util::zero_pad(id.cluster, 3));
}

std::optional<SubdomainId> SubdomainScheme::parse(
    const dns::DnsName& qname) const {
  if (!qname.is_subdomain_of(sld_)) return std::nullopt;
  if (qname.label_count() != sld_.label_count() + 2) return std::nullopt;
  const std::string& first = qname.labels()[0];
  const std::string& second = qname.labels()[1];
  if (first.size() < 3 || first.compare(0, 2, "or") != 0) return std::nullopt;
  if (!util::all_digits({first.data() + 2, first.size() - 2}) ||
      !util::all_digits(second))
    return std::nullopt;
  SubdomainId id;
  std::from_chars(first.data() + 2, first.data() + first.size(), id.cluster);
  std::from_chars(second.data(), second.data() + second.size(), id.index);
  return id;
}

net::IPv4Addr SubdomainScheme::ground_truth(SubdomainId id) const {
  // Deterministic pseudo-random mapping, avoiding reserved space so that a
  // "correct" answer is never confusable with the private-network redirects
  // the analysis flags (Table VIII).
  std::uint64_t h = util::mix64(
      seed_ ^ (static_cast<std::uint64_t>(id.cluster) << 32) ^ id.index);
  net::IPv4Addr addr(static_cast<std::uint32_t>(h));
  while (net::is_reserved(addr)) {
    h = util::mix64(h + 0x9e3779b97f4a7c15ULL);
    addr = net::IPv4Addr(static_cast<std::uint32_t>(h));
  }
  return addr;
}

ClusterManager::ClusterManager(SubdomainScheme scheme,
                               net::SimTime load_latency)
    : scheme_(std::move(scheme)), load_latency_(load_latency) {
  rotate();  // initial zone load
  current_cluster_ = 0;
}

SubdomainId ClusterManager::acquire() {
  if (next_index_ < scheme_.cluster_size()) {
    ++stats_.subdomains_issued;
    return SubdomainId{current_cluster_, next_index_++};
  }
  if (!reusable_.empty()) {
    const SubdomainId id = reusable_.back();
    reusable_.pop_back();
    ++stats_.subdomains_reused;
    return id;
  }
  ++current_cluster_;
  next_index_ = 0;
  rotate();
  ++stats_.subdomains_issued;
  return SubdomainId{current_cluster_, next_index_++};
}

void ClusterManager::release_unanswered(SubdomainId id) {
  // Only names the auth server still serves can be reused (it keeps the
  // current and the previous cluster resident); a name from an older,
  // unloaded cluster would draw NXDomain.
  if (id.cluster + 1 < current_cluster_) return;
  reusable_.push_back(id);
}

void ClusterManager::retire_answered(SubdomainId) {
  // Answered subdomains may live in resolver caches; never reuse them.
}

void ClusterManager::rotate() {
  ++stats_.clusters_loaded;
  stats_.load_time_total += load_latency_;
  // Names whose cluster just lost residency can no longer be reused.
  std::erase_if(reusable_, [this](SubdomainId id) {
    return id.cluster + 1 < current_cluster_;
  });
}

}  // namespace orp::zone
