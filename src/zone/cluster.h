// The paper's two-tier subdomain scheme (Fig. 3) and cluster lifecycle.
//
// Probe qnames look like  or<CCC>.<NNNNNNN>.<sld>  — a 3-digit cluster
// number and a 7-digit per-subdomain number. One cluster holds the
// `cluster_size` (paper: 5,000,000) subdomains the authoritative server can
// reliably load at once; exhausting a cluster triggers a zone reload
// (~1 minute at full scale), so the prober's *subdomain reuse* strategy
// (only retire a subdomain once a response consumed it) cuts total loads
// from a theoretical ~800 to ~4.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "dns/decode_view.h"
#include "dns/name.h"
#include "net/ipv4.h"
#include "net/sim_time.h"

namespace orp::zone {

/// Identifies one probe subdomain: (cluster number, index within cluster).
struct SubdomainId {
  std::uint32_t cluster = 0;
  std::uint32_t index = 0;

  friend constexpr auto operator<=>(const SubdomainId&,
                                    const SubdomainId&) noexcept = default;
};

/// Deterministic naming + ground-truth mapping for probe subdomains.
/// Both the authoritative server (to answer) and the analyzer (to judge
/// correctness) derive the expected A record from the qname alone, exactly
/// as the paper's pipeline matched flows by qname.
class SubdomainScheme {
 public:
  /// `sld` is the controlled second-level domain (paper:
  /// ucfsealresearch.net). `cluster_size` defaults to the paper's 5M but is
  /// scaled down alongside everything else in scaled runs.
  SubdomainScheme(dns::DnsName sld, std::uint32_t cluster_size,
                  std::uint64_t seed);

  const dns::DnsName& sld() const noexcept { return sld_; }
  std::uint32_t cluster_size() const noexcept { return cluster_size_; }

  /// "or012.0034567.<sld>"
  dns::DnsName qname(SubdomainId id) const;

  /// Parse a probe qname back to its id; nullopt if not one of ours.
  std::optional<SubdomainId> parse(const dns::DnsName& qname) const;

  /// Same, reading the qname straight out of a zero-copy DecodeView —
  /// the analyzer's hot path never materializes a DnsName.
  std::optional<SubdomainId> parse(const dns::NameView& qname) const;

  /// The correct (ground-truth) answer the authoritative server publishes
  /// for this subdomain: a deterministic pseudo-random public IPv4 address.
  net::IPv4Addr ground_truth(SubdomainId id) const;

 private:
  dns::DnsName sld_;
  std::uint32_t cluster_size_;
  std::uint64_t seed_;
};

/// Statistics of the cluster lifecycle — what Fig. 3 / §III-B quantify.
struct ClusterStats {
  std::uint32_t clusters_loaded = 0;
  std::uint64_t subdomains_issued = 0;
  std::uint64_t subdomains_reused = 0;
  net::SimTime load_time_total;

  /// Merge another shard's lifecycle counters (one ClusterManager per shard).
  ClusterStats& operator+=(const ClusterStats& o) noexcept {
    clusters_loaded += o.clusters_loaded;
    subdomains_issued += o.subdomains_issued;
    subdomains_reused += o.subdomains_reused;
    load_time_total += o.load_time_total;
    return *this;
  }
};

/// Allocates subdomains to probe targets and manages cluster rotation.
///
/// Allocation policy (paper §III-B "Subdomain Reuse"): hand out fresh
/// subdomains from the current cluster; when the cluster is exhausted,
/// prefer *reusing* subdomains whose earlier probe never produced an R2
/// (they are guaranteed uncached anywhere), and only rotate to a new
/// cluster when the reusable pool is empty too.
class ClusterManager {
 public:
  /// `load_latency` is the zone-load pause charged per rotation
  /// (paper: ~1 minute for 5M names).
  ClusterManager(SubdomainScheme scheme, net::SimTime load_latency);

  /// Get a subdomain for the next probe. May trigger a rotation.
  SubdomainId acquire();

  /// Report that subdomain `id` produced no R2 — it becomes reusable.
  void release_unanswered(SubdomainId id);

  /// Report that subdomain `id` was consumed by an R2 — never reused.
  void retire_answered(SubdomainId id);

  const SubdomainScheme& scheme() const noexcept { return scheme_; }
  const ClusterStats& stats() const noexcept { return stats_; }
  std::uint32_t current_cluster() const noexcept { return current_cluster_; }

 private:
  void rotate();

  SubdomainScheme scheme_;
  net::SimTime load_latency_;
  std::uint32_t current_cluster_ = 0;
  std::uint32_t next_index_ = 0;
  std::vector<SubdomainId> reusable_;
  ClusterStats stats_;
};

}  // namespace orp::zone
