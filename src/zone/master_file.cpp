#include "zone/master_file.h"

#include <algorithm>
#include <charconv>
#include <sstream>

#include "util/strings.h"

namespace orp::zone {
namespace {

struct Token {
  std::string text;
  bool quoted = false;
};

/// Strip comments and tokenize one logical line; quoted strings keep spaces.
std::vector<Token> tokenize(std::string_view line) {
  std::vector<Token> tokens;
  std::string current;
  bool in_quotes = false;
  bool have_current = false;
  auto flush = [&](bool quoted) {
    if (have_current || quoted) tokens.push_back({current, quoted});
    current.clear();
    have_current = false;
  };
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        in_quotes = false;
        flush(true);
      } else {
        current.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      flush(false);
      in_quotes = true;
      continue;
    }
    if (c == ';') break;  // comment to end of line
    if (c == ' ' || c == '\t' || c == '\r') {
      flush(false);
      continue;
    }
    current.push_back(c);
    have_current = true;
  }
  flush(false);
  return tokens;
}

/// Join physical lines into logical lines across ( ... ) groups.
std::vector<std::pair<int, std::string>> logical_lines(std::string_view text) {
  std::vector<std::pair<int, std::string>> out;
  int line_no = 0;
  int open_line = 0;
  int depth = 0;
  std::string pending;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string_view raw =
        nl == std::string_view::npos ? text.substr(start)
                                     : text.substr(start, nl - start);
    ++line_no;
    // Count parens outside quotes/comments; strip them (they only group).
    std::string cleaned;
    bool in_quotes = false;
    for (const char c : raw) {
      if (c == '"') in_quotes = !in_quotes;
      if (!in_quotes) {
        if (c == ';') break;
        if (c == '(') {
          ++depth;
          cleaned.push_back(' ');
          continue;
        }
        if (c == ')') {
          --depth;
          cleaned.push_back(' ');
          continue;
        }
      }
      cleaned.push_back(c);
    }
    if (pending.empty()) open_line = line_no;
    pending += cleaned;
    pending.push_back(' ');
    if (depth == 0) {
      out.emplace_back(open_line, pending);
      pending.clear();
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  if (!pending.empty()) out.emplace_back(open_line, pending);
  return out;
}

bool parse_u32(const std::string& s, std::uint32_t& out) {
  const auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc{} && p == s.data() + s.size();
}

/// Resolve a presentation-form name against $ORIGIN.
std::optional<dns::DnsName> resolve_name(const std::string& text,
                                         const dns::DnsName& origin) {
  if (text == "@") return origin;
  if (!text.empty() && text.back() == '.') return dns::DnsName::parse(text);
  auto relative = dns::DnsName::parse(text);
  if (!relative) return std::nullopt;
  for (std::size_t i = 0; i < origin.label_count(); ++i)
    if (!relative->append_label(origin.label(i))) return std::nullopt;
  return relative;
}

struct PendingRecord {
  int line;
  dns::ResourceRecord rr;
};

}  // namespace

util::Expected<Zone, ParseError> parse_master_file(
    std::string_view text, const dns::DnsName& default_origin) {
  dns::DnsName origin = default_origin;
  std::uint32_t default_ttl = 3600;
  std::optional<dns::DnsName> last_owner;
  std::vector<PendingRecord> records;
  std::optional<dns::SoaRdata> soa;
  std::optional<dns::DnsName> soa_owner;
  std::uint32_t soa_ttl = 3600;

  for (const auto& [line_no, line] : logical_lines(text)) {
    auto tokens = tokenize(line);
    if (tokens.empty()) continue;

    // Directives.
    if (tokens[0].text == "$ORIGIN") {
      if (tokens.size() < 2)
        return ParseError{line_no, "$ORIGIN needs a name"};
      const auto parsed = dns::DnsName::parse(tokens[1].text);
      if (!parsed) return ParseError{line_no, "bad $ORIGIN name"};
      origin = *parsed;
      continue;
    }
    if (tokens[0].text == "$TTL") {
      if (tokens.size() < 2 || !parse_u32(tokens[1].text, default_ttl))
        return ParseError{line_no, "bad $TTL"};
      continue;
    }
    if (tokens[0].text.starts_with("$"))
      return ParseError{line_no, "unsupported directive " + tokens[0].text};

    // Owner: present unless the physical line began with whitespace.
    std::size_t cursor = 0;
    dns::DnsName owner;
    const bool line_starts_blank =
        !line.empty() && (line[0] == ' ' || line[0] == '\t');
    if (line_starts_blank) {
      if (!last_owner)
        return ParseError{line_no, "continuation line with no prior owner"};
      owner = *last_owner;
    } else {
      const auto parsed = resolve_name(tokens[cursor].text, origin);
      if (!parsed) return ParseError{line_no, "bad owner name"};
      owner = *parsed;
      ++cursor;
    }
    last_owner = owner;

    // Optional TTL and class, in either order.
    std::uint32_t ttl = default_ttl;
    for (int i = 0; i < 2 && cursor < tokens.size(); ++i) {
      std::uint32_t maybe_ttl = 0;
      if (tokens[cursor].text == "IN" || tokens[cursor].text == "in") {
        ++cursor;
      } else if (parse_u32(tokens[cursor].text, maybe_ttl)) {
        ttl = maybe_ttl;
        ++cursor;
      }
    }
    if (cursor >= tokens.size())
      return ParseError{line_no, "missing record type"};
    const std::string type = util::to_lower(tokens[cursor].text);
    ++cursor;
    const auto remaining = tokens.size() - cursor;

    dns::ResourceRecord rr;
    rr.name = owner;
    rr.ttl = ttl;
    rr.rrclass = dns::RRClass::kIN;

    if (type == "soa") {
      if (remaining < 7) return ParseError{line_no, "SOA needs 7 fields"};
      dns::SoaRdata data;
      const auto mname = resolve_name(tokens[cursor].text, origin);
      const auto rname = resolve_name(tokens[cursor + 1].text, origin);
      if (!mname || !rname) return ParseError{line_no, "bad SOA names"};
      data.mname = *mname;
      data.rname = *rname;
      std::uint32_t* fields[] = {&data.serial, &data.refresh, &data.retry,
                                 &data.expire, &data.minimum};
      for (int f = 0; f < 5; ++f) {
        if (!parse_u32(tokens[cursor + 2 + f].text, *fields[f]))
          return ParseError{line_no, "bad SOA counter"};
      }
      if (soa) return ParseError{line_no, "duplicate SOA"};
      soa = data;
      soa_owner = owner;
      soa_ttl = ttl;
      continue;  // the Zone constructor emits the apex SOA record
    }
    if (type == "a") {
      if (remaining < 1) return ParseError{line_no, "A needs an address"};
      const auto addr = net::IPv4Addr::parse(tokens[cursor].text);
      if (!addr) return ParseError{line_no, "bad IPv4 address"};
      rr.type = dns::RRType::kA;
      rr.rdata = dns::ARdata{*addr};
    } else if (type == "ns" || type == "cname" || type == "ptr") {
      if (remaining < 1) return ParseError{line_no, "missing target name"};
      const auto target = resolve_name(tokens[cursor].text, origin);
      if (!target) return ParseError{line_no, "bad target name"};
      rr.type = type == "ns" ? dns::RRType::kNS
                             : (type == "cname" ? dns::RRType::kCNAME
                                                : dns::RRType::kPTR);
      rr.rdata = dns::NameRdata{*target};
    } else if (type == "mx") {
      if (remaining < 2) return ParseError{line_no, "MX needs pref + host"};
      std::uint32_t pref = 0;
      if (!parse_u32(tokens[cursor].text, pref) || pref > 65535)
        return ParseError{line_no, "bad MX preference"};
      const auto target = resolve_name(tokens[cursor + 1].text, origin);
      if (!target) return ParseError{line_no, "bad MX exchange"};
      rr.type = dns::RRType::kMX;
      rr.rdata = dns::MxRdata{static_cast<std::uint16_t>(pref), *target};
    } else if (type == "txt") {
      if (remaining < 1) return ParseError{line_no, "TXT needs a string"};
      dns::TxtRdata data;
      for (std::size_t i = cursor; i < tokens.size(); ++i)
        data.strings.push_back(tokens[i].text);
      rr.type = dns::RRType::kTXT;
      rr.rdata = std::move(data);
    } else {
      return ParseError{line_no, "unsupported record type " + type};
    }
    records.push_back({line_no, std::move(rr)});
  }

  if (!soa) return ParseError{0, "zone has no SOA record"};
  Zone zone(*soa_owner, *soa);
  (void)soa_ttl;
  for (auto& pending : records) {
    if (!pending.rr.name.is_subdomain_of(*soa_owner))
      return ParseError{pending.line, "record outside zone origin"};
    zone.add(std::move(pending.rr));
  }
  return zone;
}

std::string master_file_line(const dns::ResourceRecord& rr) {
  std::ostringstream out;
  out << rr.name.to_string() << ". " << rr.ttl << " IN "
      << dns::to_string(rr.type) << " ";
  std::visit(
      [&](const auto& data) {
        using T = std::decay_t<decltype(data)>;
        if constexpr (std::is_same_v<T, dns::ARdata>) {
          out << data.addr.to_string();
        } else if constexpr (std::is_same_v<T, dns::NameRdata>) {
          out << data.name.to_string() << ".";
        } else if constexpr (std::is_same_v<T, dns::SoaRdata>) {
          out << data.mname.to_string() << ". " << data.rname.to_string()
              << ". " << data.serial << " " << data.refresh << " "
              << data.retry << " " << data.expire << " " << data.minimum;
        } else if constexpr (std::is_same_v<T, dns::MxRdata>) {
          out << data.preference << " " << data.exchange.to_string() << ".";
        } else if constexpr (std::is_same_v<T, dns::TxtRdata>) {
          for (std::size_t i = 0; i < data.strings.size(); ++i) {
            if (i) out << " ";
            out << '"' << data.strings[i] << '"';
          }
        } else {
          out << "\\# " << 0;  // unsupported types serialize as empty
        }
      },
      rr.rdata);
  return out.str();
}

std::string to_master_file(const Zone& zone) {
  std::ostringstream out;
  out << "$ORIGIN " << zone.origin().to_string() << ".\n";
  out << "$TTL 3600\n";

  // SOA first, then everything else in a stable sorted order.
  std::vector<std::string> lines;
  zone.visit_records([&](const dns::ResourceRecord& rr) {
    if (rr.type == dns::RRType::kSOA) return;
    lines.push_back(master_file_line(rr));
  });
  std::sort(lines.begin(), lines.end());

  dns::ResourceRecord soa_rr{zone.origin(), dns::RRType::kSOA,
                             dns::RRClass::kIN, 3600, zone.soa()};
  out << master_file_line(soa_rr) << "\n";
  for (const auto& line : lines) out << line << "\n";
  return out.str();
}

}  // namespace orp::zone
