// RFC 1035 §5 master-file (zone file) parsing and serialization.
//
// The measurement's authoritative server was BIND 9 loading generated zone
// files of five million subdomains (§III-B); this module speaks that format:
// $ORIGIN/$TTL directives, comments, relative and absolute owner names, the
// record types this study uses (SOA, NS, A, CNAME, TXT, MX, PTR), and
// round-trips a Zone to text and back.
#pragma once

#include <string>
#include <string_view>

#include "util/expected.h"
#include "zone/zone.h"

namespace orp::zone {

struct ParseError {
  int line = 0;
  std::string message;
};

/// Parse master-file text into a Zone. The file must contain exactly one SOA
/// record (at the zone apex). `default_origin` seeds $ORIGIN resolution when
/// the file does not open with a directive.
util::Expected<Zone, ParseError> parse_master_file(
    std::string_view text, const dns::DnsName& default_origin = dns::DnsName());

/// Serialize a zone in canonical master-file form ($ORIGIN + $TTL header,
/// absolute owner names, one record per line).
std::string to_master_file(const Zone& zone);

/// Render a single record as one master-file line (absolute names).
std::string master_file_line(const dns::ResourceRecord& rr);

}  // namespace orp::zone
