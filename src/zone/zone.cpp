#include "zone/zone.h"

#include <stdexcept>

namespace orp::zone {

Zone::Zone(dns::DnsName origin, dns::SoaRdata soa)
    : origin_(std::move(origin)), soa_(std::move(soa)) {
  // Apex SOA record.
  rrsets_[origin_.canonical_key()][dns::RRType::kSOA].push_back(
      dns::ResourceRecord{origin_, dns::RRType::kSOA, dns::RRClass::kIN, 3600,
                          soa_});
}

void Zone::add(dns::ResourceRecord rr) {
  if (!rr.name.is_subdomain_of(origin_))
    throw std::invalid_argument("record owner outside zone origin");
  rrsets_[rr.name.canonical_key()][rr.type].push_back(std::move(rr));
}

void Zone::add_a_records(
    const std::vector<std::pair<dns::DnsName, net::IPv4Addr>>& entries,
    std::uint32_t ttl) {
  for (const auto& [name, addr] : entries) {
    rrsets_[name.canonical_key()][dns::RRType::kA].push_back(
        dns::ResourceRecord{name, dns::RRType::kA, dns::RRClass::kIN, ttl,
                            dns::ARdata{addr}});
  }
}

void Zone::visit_records(
    const std::function<void(const dns::ResourceRecord&)>& fn) const {
  for (const auto& [name, sets] : rrsets_)
    for (const auto& [type, records] : sets)
      for (const auto& rr : records) fn(rr);
}

LookupResult Zone::lookup(const dns::DnsName& qname, dns::RRType qtype) const {
  LookupResult result;
  if (!qname.is_subdomain_of(origin_)) {
    result.status = LookupStatus::kOutOfZone;
    return result;
  }
  const auto node = rrsets_.find(qname.canonical_key());
  if (node == rrsets_.end()) {
    result.status = LookupStatus::kNXDomain;
    return result;
  }
  if (qtype == dns::RRType::kANY) {
    for (const auto& [type, records] : node->second)
      result.records.insert(result.records.end(), records.begin(),
                            records.end());
    result.status = result.records.empty() ? LookupStatus::kNoData
                                           : LookupStatus::kAnswer;
    return result;
  }
  const auto set = node->second.find(qtype);
  if (set == node->second.end() || set->second.empty()) {
    result.status = LookupStatus::kNoData;
    return result;
  }
  result.records = set->second;
  result.status = LookupStatus::kAnswer;
  return result;
}

}  // namespace orp::zone
