// Authoritative zone data model: an origin, its SOA/NS apex records, and a
// store of owned RRsets. Lookup implements RFC 1034 §4.3.2 semantics for the
// cases this study needs: authoritative answer, authoritative NXDomain, and
// out-of-zone refusal.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "dns/message.h"

namespace orp::zone {

enum class LookupStatus {
  kAnswer,      // name exists and has records of the requested type
  kNoData,      // name exists, no records of the requested type (NOERROR/0)
  kNXDomain,    // name does not exist in the zone
  kOutOfZone,   // name is not under this zone's origin
};

struct LookupResult {
  LookupStatus status = LookupStatus::kOutOfZone;
  std::vector<dns::ResourceRecord> records;
};

class Zone {
 public:
  Zone(dns::DnsName origin, dns::SoaRdata soa);

  const dns::DnsName& origin() const noexcept { return origin_; }
  const dns::SoaRdata& soa() const noexcept { return soa_; }

  /// Add a record; owner must be at or under the origin.
  void add(dns::ResourceRecord rr);

  /// Bulk-add A records. Used by the cluster loader (5M names per load).
  void add_a_records(const std::vector<std::pair<dns::DnsName, net::IPv4Addr>>&
                         entries,
                     std::uint32_t ttl);

  LookupResult lookup(const dns::DnsName& qname, dns::RRType qtype) const;

  /// Visit every record in the zone (apex SOA included). Iteration order is
  /// unspecified; serializers sort for themselves.
  void visit_records(
      const std::function<void(const dns::ResourceRecord&)>& fn) const;

  std::size_t name_count() const noexcept { return rrsets_.size(); }
  std::uint32_t serial() const noexcept { return soa_.serial; }
  void bump_serial() noexcept { ++soa_.serial; }

 private:
  struct TypeHash {
    std::size_t operator()(dns::RRType t) const noexcept {
      return static_cast<std::size_t>(t);
    }
  };
  using RRsetMap =
      std::unordered_map<dns::RRType, std::vector<dns::ResourceRecord>,
                         TypeHash>;

  dns::DnsName origin_;
  dns::SoaRdata soa_;
  std::unordered_map<std::string, RRsetMap> rrsets_;  // canonical name -> sets
};

}  // namespace orp::zone
